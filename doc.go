// Package repro reproduces "The Computational Power of Distributed
// Shared-Memory Models with Bounded-Size Registers" (Delporte,
// Fauconnier, Fraigniaud, Rajsbaum, Travers; PODC 2024,
// arXiv:2309.13977) as an executable Go library.
//
// The model, every algorithm of the paper (Algorithms 1-6), every
// substrate they depend on, and one experiment per figure/theorem live
// under internal/; see DESIGN.md for the package inventory, the
// E1..E15 experiment index, and the concurrent experiment engine that
// cmd/figures drives. The benchmarks in bench_test.go regenerate each
// experiment's series; BenchmarkSweep compares the serial and
// concurrent engine on the full E1..E15 sweep.
package repro
