// Package repro reproduces "The Computational Power of Distributed
// Shared-Memory Models with Bounded-Size Registers" (Delporte,
// Fauconnier, Fraigniaud, Rajsbaum, Travers; PODC 2024,
// arXiv:2309.13977) as an executable Go library.
//
// The model, every algorithm of the paper (Algorithms 1-6), every
// substrate they depend on, and one experiment per figure/theorem live
// under internal/; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment's series.
package repro
