#!/usr/bin/env bash
# reduce-gate: the deterministic equivalence gate for the memoized
# explorer. Runs the two reduced-capable experiments (E2, the
# exhaustive k=4 Algorithm 1 sweep; E15, the exhaustive Theorem 1.2
# run) both exhaustively and with `figures -reduce`, and asserts:
#
#   1. the tables are byte-identical in text, json, and csv;
#   2. each reduced run visited strictly fewer states than it
#      accounted executions, pruned at least one subtree, and
#      replayed strictly fewer executions than it accounted
#      (the counters come from the `figures: reduce <id> ...`
#      stderr lines the CLI emits per reduced experiment);
#   3. the accounted execution counts match the committed
#      BENCH_explore.json baseline exactly — the execution count is
#      part of the experiment's meaning, so a drift here is a
#      correctness regression, not a perf change.
#
# It then reruns the explore microbenchmarks and rewrites
# BENCH_explore.json (counters + ns/op + speedup), so the committed
# file tracks exploration throughput the same way BENCH_load.json
# tracks serving latency. CI runs exactly this via `make reduce-gate`;
# humans run it the same way. Knobs (all optional): OUT, TIMEOUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_explore.json}
TIMEOUT=${TIMEOUT:-10m}

# Baseline execution counts, read before the run overwrites $OUT.
# Bracket indexing, not .E2: jq lexes a bare `E2` as a malformed
# float exponent and rejects the whole filter.
base_e2_execs=""
base_e15_execs=""
if [ -f "$OUT" ]; then
  base_e2_execs=$(jq -r '.experiments["E2"].executions // empty' "$OUT" 2>/dev/null || true)
  base_e15_execs=$(jq -r '.experiments["E15"].executions // empty' "$OUT" 2>/dev/null || true)
fi

tmp=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "reduce-gate: FAILED (exit $status)" >&2
    tail -5 "$tmp"/reduce-*.log >&2 2>/dev/null || true
  fi
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/figures" ./cmd/figures

# The exhaustive side runs cold once and serves the other two formats
# from its own cache — the bytes are deterministic, re-exploring per
# format would triple the slow half. The reduced side re-executes per
# format by design (reduced-capable experiments bypass the cache), so
# every format's counter lines come from a real memoized exploration.
for fmt in text json csv; do
  "$tmp/figures" -run E2,E15 -jobs 2 -timeout "$TIMEOUT" -format "$fmt" \
    -cache-dir "$tmp/cache" -o "$tmp/exhaustive.$fmt"
  "$tmp/figures" -run E2,E15 -timeout "$TIMEOUT" -format "$fmt" \
    -reduce -o "$tmp/reduced.$fmt" 2> "$tmp/reduce-$fmt.log"
  cmp "$tmp/exhaustive.$fmt" "$tmp/reduced.$fmt"
done

# One counter line per reduced experiment per run:
#   figures: reduce E2 visited=242 pruned=126 replays=146 executions=22080
counter() { # counter <id> <field>
  awk -v id="$1" -v field="$2=" \
    '$1 == "figures:" && $2 == "reduce" && $3 == id {
       for (i = 4; i <= NF; i++) if (index($i, field) == 1) {
         sub(field, "", $i); print $i; exit
       }
     }' "$tmp/reduce-text.log"
}

declare -A visited pruned replays execs
for id in E2 E15; do
  visited[$id]=$(counter "$id" visited)
  pruned[$id]=$(counter "$id" pruned)
  replays[$id]=$(counter "$id" replays)
  execs[$id]=$(counter "$id" executions)
  if [ -z "${visited[$id]}" ] || [ -z "${pruned[$id]}" ] ||
     [ -z "${replays[$id]}" ] || [ -z "${execs[$id]}" ]; then
    echo "reduce-gate: missing reduce counters for $id in reduce stderr" >&2
    exit 1
  fi
  if [ "${visited[$id]}" -ge "${execs[$id]}" ]; then
    echo "reduce-gate: $id visited ${visited[$id]} states, not below ${execs[$id]} executions" >&2
    exit 1
  fi
  if [ "${pruned[$id]}" -eq 0 ]; then
    echo "reduce-gate: $id pruned no subtrees" >&2
    exit 1
  fi
  if [ "${replays[$id]}" -ge "${execs[$id]}" ]; then
    echo "reduce-gate: $id replayed ${replays[$id]}, memoization saved nothing over ${execs[$id]}" >&2
    exit 1
  fi
  echo "reduce-gate: $id ${execs[$id]} executions accounted from ${replays[$id]} replays" \
    "(${visited[$id]} states visited, ${pruned[$id]} pruned), tables byte-identical"
done

# Execution counts are pinned to the committed baseline: they encode
# what the experiment enumerates, so only a deliberate registry change
# may move them (update $OUT in the same commit).
if [ -n "$base_e2_execs" ] && [ "${execs[E2]}" -ne "$base_e2_execs" ]; then
  echo "reduce-gate: E2 accounted ${execs[E2]} executions, baseline says $base_e2_execs" >&2
  exit 1
fi
if [ -n "$base_e15_execs" ] && [ "${execs[E15]}" -ne "$base_e15_execs" ]; then
  echo "reduce-gate: E15 accounted ${execs[E15]} executions, baseline says $base_e15_execs" >&2
  exit 1
fi
if [ -z "$base_e2_execs" ]; then
  echo "reduce-gate: no committed baseline, skipping execution-count pin"
fi

# The throughput half: serial exhaustive vs memoized on the same E2
# space. workers=1 is the apples-to-apples reference (the memoized
# explorer is serial); the workers=N line still runs but is not read.
go test -run='^$' -bench='^BenchmarkExplore(Parallel|Memoized)$' \
  -benchtime=1x . | tee "$tmp/bench.txt"
exhaustive_ns=$(awk '$1 ~ /^BenchmarkExploreParallel\/workers=1/ { print $3; exit }' "$tmp/bench.txt")
memoized_ns=$(awk '$1 ~ /^BenchmarkExploreMemoized/ { print $3; exit }' "$tmp/bench.txt")
if [ -z "$exhaustive_ns" ] || [ -z "$memoized_ns" ]; then
  echo "reduce-gate: could not parse explore benchmark output" >&2
  exit 1
fi

jq -n \
  --argjson e2_visited "${visited[E2]}" --argjson e2_pruned "${pruned[E2]}" \
  --argjson e2_replays "${replays[E2]}" --argjson e2_execs "${execs[E2]}" \
  --argjson e15_visited "${visited[E15]}" --argjson e15_pruned "${pruned[E15]}" \
  --argjson e15_replays "${replays[E15]}" --argjson e15_execs "${execs[E15]}" \
  --argjson exhaustive_ns "$exhaustive_ns" --argjson memoized_ns "$memoized_ns" \
  '{
    experiments: {
      E2:  {executions: $e2_execs,  replays: $e2_replays,
            states_visited: $e2_visited,  states_pruned: $e2_pruned},
      E15: {executions: $e15_execs, replays: $e15_replays,
            states_visited: $e15_visited, states_pruned: $e15_pruned}
    },
    bench: {
      exhaustive_serial_ns_per_op: $exhaustive_ns,
      memoized_ns_per_op: $memoized_ns,
      speedup: (($exhaustive_ns / $memoized_ns * 10 | round) / 10)
    }
  }' > "$OUT"

echo "reduce-gate: OK (E2 ${replays[E2]}/${execs[E2]} replays," \
  "E15 ${replays[E15]}/${execs[E15]} replays," \
  "$(jq -r '.bench.speedup' "$OUT")x serial speedup) -> $OUT"
