#!/usr/bin/env bash
# reduce-gate: the deterministic equivalence gate for the memoized
# explorer. Runs the two reduced-capable experiments (E2, the
# exhaustive k=4 Algorithm 1 sweep; E15, the exhaustive Theorem 1.2
# run) exhaustively, with serial `figures -reduce`, and with the
# parallel `figures -reduce -jobs 4` path, and asserts:
#
#   1. the tables are byte-identical in text, json, and csv across
#      all three arms — exhaustive, serial memo, parallel memo;
#   2. each reduced run visited strictly fewer states than it
#      accounted executions, pruned at least one subtree, and
#      replayed strictly fewer executions than it accounted
#      (the counters come from the `figures: reduce <id> ...`
#      stderr lines the CLI emits per reduced experiment);
#   3. the parallel arm really fanned out (workers=4) and really
#      shared memo entries across its prefix ranges (shared > 0),
#      while accounting exactly the serial arm's execution count;
#   4. the accounted execution counts — including the reduced-only
#      heavy experiment E16 (k=5 Algorithm 1 sweep) — match the
#      committed BENCH_explore.json baseline exactly: the execution
#      count is part of the experiment's meaning, so a drift here is
#      a correctness regression, not a perf change.
#
# E16 has no exhaustive twin (that is its point), so its gate is
# serial-memo vs parallel-memo byte-identity plus the pinned count.
#
# It then reruns the explore microbenchmarks and rewrites
# BENCH_explore.json (counters + ns/op + speedup), so the committed
# file tracks exploration throughput the same way BENCH_load.json
# tracks serving latency. CI runs exactly this via `make reduce-gate`;
# humans run it the same way. Knobs (all optional): OUT, TIMEOUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_explore.json}
TIMEOUT=${TIMEOUT:-10m}

# Baseline execution counts, read before the run overwrites $OUT.
# Bracket indexing, not .E2: jq lexes a bare `E2` as a malformed
# float exponent and rejects the whole filter.
base_e2_execs=""
base_e15_execs=""
base_e16_execs=""
if [ -f "$OUT" ]; then
  base_e2_execs=$(jq -r '.experiments["E2"].executions // empty' "$OUT" 2>/dev/null || true)
  base_e15_execs=$(jq -r '.experiments["E15"].executions // empty' "$OUT" 2>/dev/null || true)
  base_e16_execs=$(jq -r '.experiments["E16"].executions // empty' "$OUT" 2>/dev/null || true)
fi

tmp=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "reduce-gate: FAILED (exit $status)" >&2
    tail -5 "$tmp"/reduce-*.log >&2 2>/dev/null || true
  fi
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/figures" ./cmd/figures

# The exhaustive side runs cold once and serves the other two formats
# from its own cache — the bytes are deterministic, re-exploring per
# format would triple the slow half. The reduced sides re-execute per
# format by design (reduced-capable experiments bypass the cache), so
# every format's counter lines come from a real memoized exploration.
# The -jobs 4 arm drives the parallel explorer: four workers over
# carved prefix ranges sharing one memo table.
for fmt in text json csv; do
  "$tmp/figures" -run E2,E15 -jobs 2 -timeout "$TIMEOUT" -format "$fmt" \
    -cache-dir "$tmp/cache" -o "$tmp/exhaustive.$fmt"
  "$tmp/figures" -run E2,E15 -timeout "$TIMEOUT" -format "$fmt" \
    -reduce -o "$tmp/reduced.$fmt" 2> "$tmp/reduce-$fmt.log"
  "$tmp/figures" -run E2,E15 -jobs 4 -timeout "$TIMEOUT" -format "$fmt" \
    -reduce -o "$tmp/reduced-par.$fmt" 2> "$tmp/reduce-par-$fmt.log"
  cmp "$tmp/exhaustive.$fmt" "$tmp/reduced.$fmt"
  cmp "$tmp/exhaustive.$fmt" "$tmp/reduced-par.$fmt"
  # E16 is reduced-only: the serial and parallel memo runs gate each
  # other instead of an exhaustive twin.
  "$tmp/figures" -run E16 -timeout "$TIMEOUT" -format "$fmt" \
    -reduce -o "$tmp/e16-serial.$fmt" 2>> "$tmp/reduce-$fmt.log"
  "$tmp/figures" -run E16 -jobs 4 -timeout "$TIMEOUT" -format "$fmt" \
    -reduce -o "$tmp/e16-par.$fmt" 2>> "$tmp/reduce-par-$fmt.log"
  cmp "$tmp/e16-serial.$fmt" "$tmp/e16-par.$fmt"
done

# One counter line per reduced experiment per run:
#   figures: reduce E2 visited=227 pruned=142 replays=162 executions=22080 workers=4 shared=40
counter() { # counter <log> <id> <field>
  awk -v id="$2" -v field="$3=" \
    '$1 == "figures:" && $2 == "reduce" && $3 == id {
       for (i = 4; i <= NF; i++) if (index($i, field) == 1) {
         sub(field, "", $i); print $i; exit
       }
     }' "$tmp/$1"
}

declare -A visited pruned replays execs par_execs par_workers par_shared
for id in E2 E15 E16; do
  visited[$id]=$(counter reduce-text.log "$id" visited)
  pruned[$id]=$(counter reduce-text.log "$id" pruned)
  replays[$id]=$(counter reduce-text.log "$id" replays)
  execs[$id]=$(counter reduce-text.log "$id" executions)
  par_execs[$id]=$(counter reduce-par-text.log "$id" executions)
  par_workers[$id]=$(counter reduce-par-text.log "$id" workers)
  par_shared[$id]=$(counter reduce-par-text.log "$id" shared)
  if [ -z "${visited[$id]}" ] || [ -z "${pruned[$id]}" ] ||
     [ -z "${replays[$id]}" ] || [ -z "${execs[$id]}" ] ||
     [ -z "${par_execs[$id]}" ] || [ -z "${par_workers[$id]}" ] ||
     [ -z "${par_shared[$id]}" ]; then
    echo "reduce-gate: missing reduce counters for $id in reduce stderr" >&2
    exit 1
  fi
  if [ "${visited[$id]}" -ge "${execs[$id]}" ]; then
    echo "reduce-gate: $id visited ${visited[$id]} states, not below ${execs[$id]} executions" >&2
    exit 1
  fi
  if [ "${pruned[$id]}" -eq 0 ]; then
    echo "reduce-gate: $id pruned no subtrees" >&2
    exit 1
  fi
  if [ "${replays[$id]}" -ge "${execs[$id]}" ]; then
    echo "reduce-gate: $id replayed ${replays[$id]}, memoization saved nothing over ${execs[$id]}" >&2
    exit 1
  fi
  # The parallel arm must account exactly what the serial arm did:
  # execution counts are deterministic; only the timing-dependent
  # counters (replays, visited, shared) may move between runs.
  if [ "${par_execs[$id]}" -ne "${execs[$id]}" ]; then
    echo "reduce-gate: $id parallel accounted ${par_execs[$id]} executions, serial ${execs[$id]}" >&2
    exit 1
  fi
  if [ "${par_workers[$id]}" -ne 4 ]; then
    echo "reduce-gate: $id parallel ran workers=${par_workers[$id]}, want 4" >&2
    exit 1
  fi
  if [ "${par_shared[$id]}" -eq 0 ]; then
    echo "reduce-gate: $id parallel shared no memo entries across prefix ranges" >&2
    exit 1
  fi
  echo "reduce-gate: $id ${execs[$id]} executions accounted from ${replays[$id]} replays" \
    "(${visited[$id]} states visited, ${pruned[$id]} pruned;" \
    "parallel workers=${par_workers[$id]} shared=${par_shared[$id]}), tables byte-identical"
done

# Execution counts are pinned to the committed baseline: they encode
# what the experiment enumerates, so only a deliberate registry change
# may move them (update $OUT in the same commit).
if [ -n "$base_e2_execs" ] && [ "${execs[E2]}" -ne "$base_e2_execs" ]; then
  echo "reduce-gate: E2 accounted ${execs[E2]} executions, baseline says $base_e2_execs" >&2
  exit 1
fi
if [ -n "$base_e15_execs" ] && [ "${execs[E15]}" -ne "$base_e15_execs" ]; then
  echo "reduce-gate: E15 accounted ${execs[E15]} executions, baseline says $base_e15_execs" >&2
  exit 1
fi
if [ -n "$base_e16_execs" ] && [ "${execs[E16]}" -ne "$base_e16_execs" ]; then
  echo "reduce-gate: E16 accounted ${execs[E16]} executions, baseline says $base_e16_execs" >&2
  exit 1
fi
if [ -z "$base_e2_execs" ]; then
  echo "reduce-gate: no committed baseline, skipping execution-count pin"
fi

# The throughput half: serial exhaustive vs memoized vs parallel memo
# on the same E2 space. workers=1 is the apples-to-apples serial
# reference; the parallel line reads workers=8. On a single-core host
# the parallel speedup hovers around (or below) 1x — the byte-identity
# and shared-entry gates above carry the correctness claim either way.
go test -run='^$' -bench='^BenchmarkExplore(Parallel|Memoized|MemoParallel)$' \
  -benchtime=1x . | tee "$tmp/bench.txt"
exhaustive_ns=$(awk '$1 ~ /^BenchmarkExploreParallel\/workers=1/ { print $3; exit }' "$tmp/bench.txt")
memoized_ns=$(awk '$1 ~ /^BenchmarkExploreMemoized/ { print $3; exit }' "$tmp/bench.txt")
parallel_ns=$(awk '$1 ~ /^BenchmarkExploreMemoParallel\/workers=8/ { print $3; exit }' "$tmp/bench.txt")
parallel_shared=$(awk '$1 ~ /^BenchmarkExploreMemoParallel\/workers=8/ {
  for (i = 4; i <= NF; i++) if ($i == "states_shared") { print $(i-1); exit }
}' "$tmp/bench.txt")
if [ -z "$exhaustive_ns" ] || [ -z "$memoized_ns" ] ||
   [ -z "$parallel_ns" ] || [ -z "$parallel_shared" ]; then
  echo "reduce-gate: could not parse explore benchmark output" >&2
  exit 1
fi

jq -n \
  --argjson e2_visited "${visited[E2]}" --argjson e2_pruned "${pruned[E2]}" \
  --argjson e2_replays "${replays[E2]}" --argjson e2_execs "${execs[E2]}" \
  --argjson e15_visited "${visited[E15]}" --argjson e15_pruned "${pruned[E15]}" \
  --argjson e15_replays "${replays[E15]}" --argjson e15_execs "${execs[E15]}" \
  --argjson e16_visited "${visited[E16]}" --argjson e16_pruned "${pruned[E16]}" \
  --argjson e16_replays "${replays[E16]}" --argjson e16_execs "${execs[E16]}" \
  --argjson exhaustive_ns "$exhaustive_ns" --argjson memoized_ns "$memoized_ns" \
  --argjson parallel_ns "$parallel_ns" --argjson parallel_shared "$parallel_shared" \
  '{
    experiments: {
      E2:  {executions: $e2_execs,  replays: $e2_replays,
            states_visited: $e2_visited,  states_pruned: $e2_pruned},
      E15: {executions: $e15_execs, replays: $e15_replays,
            states_visited: $e15_visited, states_pruned: $e15_pruned},
      E16: {executions: $e16_execs, replays: $e16_replays,
            states_visited: $e16_visited, states_pruned: $e16_pruned}
    },
    bench: {
      exhaustive_serial_ns_per_op: $exhaustive_ns,
      memoized_ns_per_op: $memoized_ns,
      parallel_ns_per_op: $parallel_ns,
      workers: 8,
      states_shared: $parallel_shared,
      speedup: (($exhaustive_ns / $memoized_ns * 10 | round) / 10),
      parallel_speedup: (($memoized_ns / $parallel_ns * 10 | round) / 10)
    }
  }' > "$OUT"

echo "reduce-gate: OK (E2 ${replays[E2]}/${execs[E2]} replays," \
  "E15 ${replays[E15]}/${execs[E15]} replays," \
  "E16 ${replays[E16]}/${execs[E16]} replays," \
  "$(jq -r '.bench.speedup' "$OUT")x serial speedup," \
  "$(jq -r '.bench.parallel_speedup' "$OUT")x parallel-over-memo at 8 workers) -> $OUT"
