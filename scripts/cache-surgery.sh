#!/usr/bin/env bash
# cache-surgery: prove that bumping one experiment family's code
# version cold-starts that family alone — the per-family cache
# identity contract. A two-worker figuresd fleet plus a front cache is
# warmed over E1,E2,E7,E15; then the whole fleet is swapped for
# binaries built with
#   -ldflags "-X repro/internal/experiments.spaceVersionBump=E2=v2"
# (the link-time simulation of deploying a surgical E2 edit) and the
# same run must hit the front cache for every family except E2 —
# 3/4 hits, byte-identical output, and the workers' /stats showing E2
# as the only experiment that reached the fleet. A second bumped run
# is 4/4 warm again: the new E2 space is an ordinary cached space.
# CI runs exactly this via `make cache-surgery`; humans run it the
# same way. Knobs (optional): PORT1/PORT2.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${PORT1:-8251}
PORT2=${PORT2:-8252}
IDS="E1,E2,E7,E15"

tmp=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "cache-surgery: FAILED (exit $status); logs:" >&2
    tail -5 "$tmp"/worker*.log "$tmp"/*.log >&2 2>/dev/null || true
  fi
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/figuresd" ./cmd/figuresd
go build -o "$tmp/figures" ./cmd/figures
# The bumped build: identical source, one family's space version moved
# at link time. Front and workers must agree on the space, so both
# binaries carry the bump.
bump="-X repro/internal/experiments.spaceVersionBump=E2=v2"
go build -ldflags "$bump" -o "$tmp/figuresd-bumped" ./cmd/figuresd
go build -ldflags "$bump" -o "$tmp/figures-bumped" ./cmd/figures

start_fleet() {
  "$1" -addr "localhost:$PORT1" -cache-dir "$tmp/worker1" > "$tmp/worker1.log" 2>&1 &
  "$1" -addr "localhost:$PORT2" -cache-dir "$tmp/worker2" > "$tmp/worker2.log" 2>&1 &
  for port in "$PORT1" "$PORT2"; do
    for _ in $(seq 1 50); do
      curl -fs "http://localhost:$port/healthz" > /dev/null && break
      sleep 0.2
    done
    curl -fs "http://localhost:$port/healthz" > /dev/null
  done
}

stop_fleet() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
}

run_figures() { # $1 = figures binary, $2 = output file, $3 = log file
  "$1" -run "$IDS" -timeout 2m -cache-dir "$tmp/front" \
    -workers "localhost:$PORT1,localhost:$PORT2" \
    -o "$2" 2> "$3"
}

# Phase 1: warm everything with the unbumped build.
start_fleet "$tmp/figuresd"
run_figures "$tmp/figures" "$tmp/cold.txt" "$tmp/cold.log"
grep -F 'figures: cache 0/4 hits' "$tmp/cold.log"
run_figures "$tmp/figures" "$tmp/warm.txt" "$tmp/warm.log"
grep -F 'figures: cache 4/4 hits (100.0%)' "$tmp/warm.log"
cmp "$tmp/cold.txt" "$tmp/warm.txt"
stop_fleet

# Phase 2: deploy the E2-bumped fleet over the same cache
# directories. Every family but E2 must stay warm.
start_fleet "$tmp/figuresd-bumped"
run_figures "$tmp/figures-bumped" "$tmp/bumped.txt" "$tmp/bumped.log"
grep -F 'figures: cache 3/4 hits (75.0%)' "$tmp/bumped.log"
cmp "$tmp/cold.txt" "$tmp/bumped.txt"

# The fleet saw E2 and nothing else: the other families never left
# the front cache.
e2_count=0
for port in "$PORT1" "$PORT2"; do
  curl -fs "http://localhost:$port/stats" > "$tmp/stats$port.json"
  jq -e '.experiments | del(.["E2"]) | length == 0' "$tmp/stats$port.json" > /dev/null
  n=$(jq -r '.experiments["E2"].count // 0' "$tmp/stats$port.json")
  e2_count=$((e2_count + n))
done
echo "cache-surgery: bumped fleet served $e2_count E2 requests, 0 of any other family"
test "$e2_count" -gt 0

# Phase 3: the bumped generation is itself an ordinary cached space.
run_figures "$tmp/figures-bumped" "$tmp/bumped-warm.txt" "$tmp/bumped-warm.log"
grep -F 'figures: cache 4/4 hits (100.0%)' "$tmp/bumped-warm.log"
cmp "$tmp/cold.txt" "$tmp/bumped-warm.txt"
stop_fleet

echo "cache-surgery: OK (E2 bump re-ran E2 only; bytes identical across all runs)"
