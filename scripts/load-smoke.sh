#!/usr/bin/env bash
# load-smoke: boot a two-worker figuresd fleet and drive a short mixed
# whole/slice load through it with `figures load`, writing the
# machine-readable summary to BENCH_load.json and asserting the run
# was healthy: zero errors, non-zero achieved QPS, sane client-side
# quantiles, per-endpoint p50/p95/p99 on the workers' /stats,
# well-formed Prometheus exposition on /metrics, a retrievable
# /trace/{id} span for one of the load requests, and achieved QPS
# within 5% of the committed baseline (tracing on costs < 5%).
# CI runs exactly this via `make load-smoke`; humans run it the same
# way. Knobs (all optional): PORT1/PORT2, QPS, DURATION, WARMUP, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${PORT1:-8241}
PORT2=${PORT2:-8242}
OUT=${OUT:-BENCH_load.json}
QPS=${QPS:-40}
DURATION=${DURATION:-5s}
WARMUP=${WARMUP:-2s}

# The committed baseline's achieved QPS, read before the run
# overwrites $OUT — the reference for the <5% regression gate below.
baseline_qps=""
if [ -f "$OUT" ]; then
  baseline_qps=$(jq -r '.achieved_qps // empty' "$OUT" 2>/dev/null || true)
fi

tmp=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "load-smoke: FAILED (exit $status); worker logs:" >&2
    tail -5 "$tmp"/worker*.log >&2 2>/dev/null || true
  fi
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/figuresd" ./cmd/figuresd
go build -o "$tmp/figures" ./cmd/figures

# Each worker gets its own artifact cache so the warmup phase warms
# them and the measured phase exercises the read path.
"$tmp/figuresd" -addr "localhost:$PORT1" -cache-dir "$tmp/cache1" > "$tmp/worker1.log" 2>&1 &
"$tmp/figuresd" -addr "localhost:$PORT2" -cache-dir "$tmp/cache2" > "$tmp/worker2.log" 2>&1 &
for port in "$PORT1" "$PORT2"; do
  for _ in $(seq 1 50); do
    curl -fs "http://localhost:$port/healthz" > /dev/null && break
    sleep 0.2
  done
  curl -fs "http://localhost:$port/healthz" > /dev/null
done

"$tmp/figures" load -addr "localhost:$PORT1,localhost:$PORT2" \
  -qps "$QPS" -duration "$DURATION" -warmup "$WARMUP" \
  -mix whole:3,slice:1 -experiments E1,E7,E2 -o "$OUT"

# The run was healthy…
jq -e '.errors == 0' "$OUT" > /dev/null
jq -e '.achieved_qps > 0' "$OUT" > /dev/null
jq -e '.requests > 0' "$OUT" > /dev/null
# …both traffic kinds flowed with ordered client-side quantiles…
jq -e '.kinds.whole.latency.p50_ms > 0 and
       .kinds.whole.latency.p95_ms >= .kinds.whole.latency.p50_ms and
       .kinds.whole.latency.p99_ms >= .kinds.whole.latency.p95_ms' "$OUT" > /dev/null
jq -e '.kinds.slice.requests > 0' "$OUT" > /dev/null
# …and the servers expose per-endpoint p50/p95/p99 on /stats.
for port in "$PORT1" "$PORT2"; do
  curl -fs "http://localhost:$port/stats" | jq -e \
    '.endpoints.experiment.p50_ms > 0 and
     .endpoints.experiment.p95_ms > 0 and
     .endpoints.experiment.p99_ms > 0 and
     .endpoints.slice.count > 0' > /dev/null
done

# Both workers expose Prometheus text exposition on /metrics:
# well-formed # TYPE lines, and a nonzero cumulative _count for both
# endpoint classes (the same accumulators /stats renders as JSON).
for port in "$PORT1" "$PORT2"; do
  curl -fs "http://localhost:$port/metrics" > "$tmp/metrics$port.txt"
  grep -Eq '^# TYPE repro_request_duration_seconds histogram$' "$tmp/metrics$port.txt"
  grep -Eq '^# TYPE repro_requests_total counter$' "$tmp/metrics$port.txt"
  for endpoint in experiment slice; do
    count=$(awk -v ep="endpoint=\"$endpoint\"" \
      '$1 ~ /^repro_request_duration_seconds_count\{/ && index($1, ep) { print $2; exit }' \
      "$tmp/metrics$port.txt")
    if [ -z "$count" ] || [ "$count" -eq 0 ]; then
      echo "load-smoke: /metrics on :$port has no $endpoint request count" >&2
      exit 1
    fi
  done
done

# One of the load harness's own request IDs resolves to a span on the
# worker that served it: the request/done bracket plus the per-request
# decisions the tracing layer journals.
trace_id=$(jq -r '.trace_samples[0].request_id // empty' "$OUT")
trace_target=$(jq -r '.trace_samples[0].target // empty' "$OUT")
if [ -z "$trace_id" ] || [ -z "$trace_target" ]; then
  echo "load-smoke: summary has no trace samples" >&2
  exit 1
fi
curl -fs "$trace_target/trace/$trace_id" | jq -e \
  --arg id "$trace_id" \
  '.id == $id and (.events | length >= 2)
   and (.events | map(.kind) | index("request") != null)
   and (.events | map(.kind) | index("done") != null)' > /dev/null

# The achieved-QPS trajectory: with tracing always on, the run must
# stay within 5% of the committed baseline. A missing or pre-tracing
# baseline (no achieved_qps) skips the gate rather than failing it.
achieved_qps=$(jq -r '.achieved_qps' "$OUT")
if [ -n "$baseline_qps" ]; then
  awk -v got="$achieved_qps" -v base="$baseline_qps" 'BEGIN {
    floor = base * 0.95
    if (got + 0 < floor) {
      printf "load-smoke: achieved %.1f qps, >5%% below baseline %.1f\n", got, base
      exit 1
    }
    printf "load-smoke: qps %.1f vs baseline %.1f (floor %.1f)\n", got, base, floor
  }'
else
  echo "load-smoke: no committed baseline, skipping qps regression gate"
fi

echo "load-smoke: OK ($(jq -r '.requests' "$OUT") requests," \
  "$(jq -r '.achieved_qps | round' "$OUT") qps achieved, 0 errors) -> $OUT"
