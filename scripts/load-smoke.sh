#!/usr/bin/env bash
# load-smoke: boot a two-worker figuresd fleet and drive a short mixed
# whole/slice load through it with `figures load`, writing the
# machine-readable summary to BENCH_load.json and asserting the run
# was healthy: zero errors, non-zero achieved QPS, sane client-side
# quantiles, and per-endpoint p50/p95/p99 on the workers' /stats.
# CI runs exactly this via `make load-smoke`; humans run it the same
# way. Knobs (all optional): PORT1/PORT2, QPS, DURATION, WARMUP, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${PORT1:-8241}
PORT2=${PORT2:-8242}
OUT=${OUT:-BENCH_load.json}
QPS=${QPS:-40}
DURATION=${DURATION:-5s}
WARMUP=${WARMUP:-2s}

tmp=$(mktemp -d)
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "load-smoke: FAILED (exit $status); worker logs:" >&2
    tail -5 "$tmp"/worker*.log >&2 2>/dev/null || true
  fi
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/figuresd" ./cmd/figuresd
go build -o "$tmp/figures" ./cmd/figures

# Each worker gets its own artifact cache so the warmup phase warms
# them and the measured phase exercises the read path.
"$tmp/figuresd" -addr "localhost:$PORT1" -cache-dir "$tmp/cache1" > "$tmp/worker1.log" 2>&1 &
"$tmp/figuresd" -addr "localhost:$PORT2" -cache-dir "$tmp/cache2" > "$tmp/worker2.log" 2>&1 &
for port in "$PORT1" "$PORT2"; do
  for _ in $(seq 1 50); do
    curl -fs "http://localhost:$port/healthz" > /dev/null && break
    sleep 0.2
  done
  curl -fs "http://localhost:$port/healthz" > /dev/null
done

"$tmp/figures" load -addr "localhost:$PORT1,localhost:$PORT2" \
  -qps "$QPS" -duration "$DURATION" -warmup "$WARMUP" \
  -mix whole:3,slice:1 -experiments E1,E7,E2 -o "$OUT"

# The run was healthy…
jq -e '.errors == 0' "$OUT" > /dev/null
jq -e '.achieved_qps > 0' "$OUT" > /dev/null
jq -e '.requests > 0' "$OUT" > /dev/null
# …both traffic kinds flowed with ordered client-side quantiles…
jq -e '.kinds.whole.latency.p50_ms > 0 and
       .kinds.whole.latency.p95_ms >= .kinds.whole.latency.p50_ms and
       .kinds.whole.latency.p99_ms >= .kinds.whole.latency.p95_ms' "$OUT" > /dev/null
jq -e '.kinds.slice.requests > 0' "$OUT" > /dev/null
# …and the servers expose per-endpoint p50/p95/p99 on /stats.
for port in "$PORT1" "$PORT2"; do
  curl -fs "http://localhost:$port/stats" | jq -e \
    '.endpoints.experiment.p50_ms > 0 and
     .endpoints.experiment.p95_ms > 0 and
     .endpoints.experiment.p99_ms > 0 and
     .endpoints.slice.count > 0' > /dev/null
done

echo "load-smoke: OK ($(jq -r '.requests' "$OUT") requests," \
  "$(jq -r '.achieved_qps | round' "$OUT") qps achieved, 0 errors) -> $OUT"
