# Makefile — the commands CI runs are exactly the commands humans run.
GO ?= go

.PHONY: build test test-short bench bench-json lint figures cover fuzz-smoke load-smoke reduce-gate cache-surgery

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-short is the CI gate: skips the exhaustive explorations
# (internal/task, internal/impossibility, internal/snapshot) and runs
# everything else under the race detector.
test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json emits the same sweep as test2json events (one JSON object
# per line), the machine-readable form tooling can track over time.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -json ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# cover reports internal/sched + internal/shard + internal/cache +
# internal/hist + internal/trace coverage — the packages the
# prefix-sharding protocol, the artifact-cache hierarchy, and the
# latency/tracing observability layer live in. CI enforces a floor on
# the combined total.
cover:
	$(GO) test -short -cover -coverprofile=cover.out ./internal/sched ./internal/shard ./internal/cache ./internal/hist ./internal/trace
	$(GO) tool cover -func=cover.out | tail -1

# load-smoke boots a two-worker figuresd fleet and drives a short
# mixed whole/slice load through `figures load`, writing
# BENCH_load.json and asserting zero errors and per-endpoint
# p50/p95/p99 on /stats — the latency-trajectory gate CI runs on
# every push.
load-smoke:
	./scripts/load-smoke.sh

# cache-surgery proves per-family cache identity on a live fleet: warm
# a two-worker fleet plus front cache over E1,E2,E7,E15, swap in
# binaries built with an E2-only space-version bump (ldflags), and the
# same run must re-execute E2 alone — 3/4 front-cache hits, the other
# families never reaching the fleet, bytes identical throughout.
cache-surgery:
	./scripts/cache-surgery.sh

# reduce-gate proves the memoized explorer equivalent on the real
# experiments: E2 and E15 run exhaustively, with serial `figures
# -reduce`, and with the parallel `-reduce -jobs 4` path, and must
# emit byte-identical tables in every format while visiting strictly
# fewer states than they account executions; the parallel arm must
# share memo entries across its prefix ranges. The reduced-only heavy
# sweep E16 gates serial-memo against parallel-memo the same way.
# Execution counts are pinned to the committed BENCH_explore.json
# baseline (which the gate rewrites with fresh counters and ns/op).
reduce-gate:
	./scripts/reduce-gate.sh

# fuzz-smoke runs each fuzz target briefly: arbitrary bytes must never
# panic the results decoder, the cache read path, the canonical-state
# fingerprint, or the prefixes-to-memoized-exploration pipeline, and
# random (system, workers, carve) points must keep the parallel memo
# byte-identical to the serial one.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeJSON$$' -fuzztime=10s ./internal/experiments
	$(GO) test -run='^$$' -fuzz='^FuzzCacheGet$$' -fuzztime=10s ./internal/cache
	$(GO) test -run='^$$' -fuzz='^FuzzCanonicalState$$' -fuzztime=10s ./internal/memory
	$(GO) test -run='^$$' -fuzz='^FuzzPrefixesMemoExplore$$' -fuzztime=10s ./internal/experiments
	$(GO) test -run='^$$' -fuzz='^FuzzMemoParallelDeterminism$$' -fuzztime=10s ./internal/sched

figures:
	$(GO) run ./cmd/figures
