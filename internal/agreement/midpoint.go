package agreement

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/snapshot"
)

// Midpoint is the n-process wait-free binary ε-agreement of Lemma 2.2 in
// the non-iterated shared-memory model: `rounds` rounds, each built on a
// fresh one-shot immediate-snapshot object (Borowsky-Gafni, Lemma 2.3 —
// package snapshot implements it from plain reads and writes). In round
// r a process announces its estimate through the IS object and adopts
// the midpoint of the estimates it sees; because IS views are totally
// ordered by inclusion, the estimate spread at least halves per round,
// so the decision solves 1/2^rounds-agreement.
//
// With unbounded registers the r per-round objects are legitimately
// separate (a single register can hold all of a process's fields, §2) —
// which is exactly the unboundedness Theorem 1.1 shows cannot be
// dispensed with when a majority may crash.
type Midpoint struct {
	N      int
	Rounds int
	mems   []*memory.Shared
}

// NewMidpoint allocates the per-round immediate-snapshot memories.
func NewMidpoint(n, rounds int) *Midpoint {
	m := &Midpoint{N: n, Rounds: rounds, mems: make([]*memory.Shared, rounds)}
	for r := range m.mems {
		m.mems[r] = memory.New(n, 0)
	}
	return m
}

// estCell carries a round estimate through the IS object.
type estCell struct {
	Num int
}

// Proc returns process me's code with the given binary input; the
// decision (denominator 2^Rounds) is stored through out.
func (mp *Midpoint) Proc(input uint64, out *Decision, decided *bool) sched.ProcFunc {
	return func(p *sched.Proc) error {
		if input > 1 {
			return fmt.Errorf("midpoint: input %d not binary", input)
		}
		est := int(input) // numerator over 2^0
		for r := 0; r < mp.Rounds; r++ {
			obj := snapshot.NewImmediate(memory.Bind(p, mp.mems[r]))
			view, err := obj.WriteSnapshot(estCell{Num: est})
			if err != nil {
				return err
			}
			lo, hi := 0, 0
			first := true
			for _, v := range view {
				if v == nil {
					continue
				}
				c, ok := v.(estCell)
				if !ok {
					return fmt.Errorf("midpoint: IS view holds %T", v)
				}
				if first || c.Num < lo {
					lo = c.Num
				}
				if first || c.Num > hi {
					hi = c.Num
				}
				first = false
			}
			if first {
				return fmt.Errorf("midpoint: empty immediate snapshot")
			}
			est = lo + hi // midpoint; the denominator doubles
		}
		*out = Dec(est, 1<<mp.Rounds)
		*decided = true
		return nil
	}
}

// MidpointRun is one execution of the protocol.
type MidpointRun struct {
	Inputs  []uint64
	Outs    []Decision
	Decided []bool
	Result  *sched.Result
}

// Check validates binary ε-agreement with ε = 1/2^rounds.
func (mr *MidpointRun) Check(rounds int) error {
	return CheckBinaryEps(mr.Inputs, mr.Outs, mr.Decided, 1, 1<<rounds)
}

// RunMidpoint executes the protocol for all n processes.
func RunMidpoint(n, rounds int, inputs []uint64, scheduler sched.Scheduler) (*MidpointRun, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("midpoint: %d inputs for n=%d", len(inputs), n)
	}
	mp := NewMidpoint(n, rounds)
	mr := &MidpointRun{
		Inputs:  append([]uint64(nil), inputs...),
		Outs:    make([]Decision, n),
		Decided: make([]bool, n),
	}
	procs := make([]sched.ProcFunc, n)
	for i := 0; i < n; i++ {
		procs[i] = mp.Proc(inputs[i], &mr.Outs[i], &mr.Decided[i])
	}
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		return nil, err
	}
	mr.Result = res
	return mr, nil
}
