package agreement

import (
	"testing"

	"repro/internal/sched"
)

func TestMidpointExhaustiveTwoProcsOneRound(t *testing.T) {
	// One IS round for two processes: C(12,6) = 924 interleavings at
	// most; the decision spread must be ≤ 1/2.
	for _, inputs := range binaryInputPairs {
		var mr *MidpointRun
		factory := func() []sched.ProcFunc {
			mp := NewMidpoint(2, 1)
			mr = &MidpointRun{
				Inputs:  inputs[:],
				Outs:    make([]Decision, 2),
				Decided: make([]bool, 2),
			}
			return []sched.ProcFunc{
				mp.Proc(inputs[0], &mr.Outs[0], &mr.Decided[0]),
				mp.Proc(inputs[1], &mr.Outs[1], &mr.Decided[1]),
			}
		}
		runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
			if e := r.Err(); e != nil {
				t.Fatalf("inputs %v: %v", inputs, e)
			}
			mr.Result = r
			if err := mr.Check(1); err != nil {
				t.Fatalf("inputs %v: %v", inputs, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if runs == 0 {
			t.Fatal("no runs")
		}
	}
}

func TestMidpointSampledLargerSystems(t *testing.T) {
	cases := []struct {
		n, rounds int
	}{
		{3, 3}, {4, 3}, {5, 2},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 30; seed++ {
			inputs := make([]uint64, c.n)
			for i := range inputs {
				inputs[i] = uint64((int(seed) >> i) & 1)
			}
			mr, err := RunMidpoint(c.n, c.rounds, inputs, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if e := mr.Result.Err(); e != nil {
				t.Fatalf("n=%d seed=%d: %v", c.n, seed, e)
			}
			if err := mr.Check(c.rounds); err != nil {
				t.Fatalf("n=%d rounds=%d seed=%d: %v", c.n, c.rounds, seed, err)
			}
			for i, d := range mr.Decided {
				if !d {
					t.Fatalf("n=%d seed=%d: process %d undecided", c.n, seed, i)
				}
			}
		}
	}
}

func TestMidpointWaitFreeUnderCrashes(t *testing.T) {
	// Wait-freedom: with up to n-1 crashes the survivors still decide.
	n, rounds := 4, 2
	inputs := []uint64{0, 1, 1, 0}
	for seed := int64(0); seed < 20; seed++ {
		crashes := map[int]int{
			int(seed) % n:       int(seed),
			(int(seed) + 1) % n: int(seed * 2),
			(int(seed) + 2) % n: int(seed*3) + 1,
		}
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), crashes)
		mr, err := RunMidpoint(n, rounds, inputs, scheduler)
		if err != nil {
			t.Fatal(err)
		}
		if err := mr.Check(rounds); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < n; i++ {
			if mr.Result.Correct(i) && !mr.Decided[i] {
				t.Fatalf("seed %d: correct process %d undecided", seed, i)
			}
		}
	}
}

func TestMidpointSolo(t *testing.T) {
	// A solo process decides its own input exactly.
	for _, x := range []uint64{0, 1} {
		inputs := []uint64{x, 1 - x, 1 - x}
		mr, err := RunMidpoint(3, 3, inputs, sched.Solo{Pid: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !mr.Decided[0] {
			t.Fatal("solo process undecided")
		}
		want := Dec(int(x)*8, 8)
		if mr.Outs[0] != want {
			t.Fatalf("solo decided %v, want %v", mr.Outs[0], want)
		}
	}
}

func TestMidpointValidity(t *testing.T) {
	for _, x := range []uint64{0, 1} {
		inputs := []uint64{x, x, x}
		mr, err := RunMidpoint(3, 3, inputs, sched.NewRandom(7))
		if err != nil {
			t.Fatal(err)
		}
		if e := mr.Result.Err(); e != nil {
			t.Fatal(e)
		}
		for i, d := range mr.Outs {
			if d.Num != int(x)*d.Den {
				t.Fatalf("process %d decided %v with unanimous input %d", i, d, x)
			}
		}
	}
}

func TestMidpointPrecisionSeries(t *testing.T) {
	// More rounds, finer agreement: the worst observed spread over many
	// schedules shrinks as 1/2^rounds.
	n := 3
	inputs := []uint64{0, 1, 1}
	for _, rounds := range []int{1, 2, 4} {
		for seed := int64(0); seed < 15; seed++ {
			mr, err := RunMidpoint(n, rounds, inputs, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := mr.Check(rounds); err != nil {
				t.Fatalf("rounds=%d seed=%d: %v", rounds, seed, err)
			}
		}
	}
}
