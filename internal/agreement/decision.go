// Package agreement implements the approximate-agreement protocols of the
// paper: Algorithm 1 (2-process binary ε-agreement on 1-bit registers,
// §5.1), the generic midpoint protocol behind Lemma 2.2, and the checkers
// used by every experiment to validate agreement, validity, and output
// domains exactly (in rational arithmetic, no floats).
package agreement

import (
	"fmt"
)

// Decision is an exact rational output y = Num/Den ∈ [0,1] of an
// approximate-agreement protocol. All decisions of one protocol run share
// the same denominator (2k+1 for Algorithm 1, 3^r for the IIS protocols).
type Decision struct {
	Num int
	Den int
}

// Dec builds a decision num/den.
func Dec(num, den int) Decision { return Decision{Num: num, Den: den} }

// Float returns the decision as a float64 (for display only; comparisons
// use exact arithmetic).
func (d Decision) Float() float64 { return float64(d.Num) / float64(d.Den) }

// String formats the decision as "num/den".
func (d Decision) String() string { return fmt.Sprintf("%d/%d", d.Num, d.Den) }

// InUnitInterval reports 0 ≤ d ≤ 1.
func (d Decision) InUnitInterval() bool { return d.Den > 0 && d.Num >= 0 && d.Num <= d.Den }

// IsZero reports d == 0 and IsOne reports d == 1.
func (d Decision) IsZero() bool { return d.Num == 0 }

// IsOne reports d == 1.
func (d Decision) IsOne() bool { return d.Num == d.Den }

// WithinEps reports |a - b| ≤ epsNum/epsDen, exactly.
func WithinEps(a, b Decision, epsNum, epsDen int) bool {
	// |a.Num/a.Den - b.Num/b.Den| ≤ epsNum/epsDen
	// ⇔ |a.Num·b.Den - b.Num·a.Den| · epsDen ≤ epsNum · a.Den · b.Den
	lhs := int64(a.Num)*int64(b.Den) - int64(b.Num)*int64(a.Den)
	if lhs < 0 {
		lhs = -lhs
	}
	return lhs*int64(epsDen) <= int64(epsNum)*int64(a.Den)*int64(b.Den)
}

// CheckBinaryEps validates the binary ε-agreement task specification for
// the decisions of the correct processes (§2 "Approximate Agreement"):
//
//  1. every output lies in [0,1];
//  2. if all inputs are the same value x ∈ {0,1}, every output equals x;
//  3. any two outputs are at most ε = epsNum/epsDen apart.
//
// inputs[i] and decided[i] describe process i; only indices with
// decided[i] == true are checked as outputs. It returns a descriptive
// error on the first violation.
func CheckBinaryEps(inputs []uint64, outs []Decision, decided []bool, epsNum, epsDen int) error {
	allSame := true
	var first uint64
	for i, x := range inputs {
		if x > 1 {
			return fmt.Errorf("input of process %d is %d, want binary", i, x)
		}
		if i == 0 {
			first = x
		} else if x != first {
			allSame = false
		}
	}
	for i, ok := range decided {
		if !ok {
			continue
		}
		d := outs[i]
		if !d.InUnitInterval() {
			return fmt.Errorf("process %d decided %v outside [0,1]", i, d)
		}
		if allSame {
			want := Dec(int(first)*d.Den, d.Den)
			if d != want {
				return fmt.Errorf("validity: all inputs %d but process %d decided %v", first, i, d)
			}
		}
		for j := i + 1; j < len(decided); j++ {
			if !decided[j] {
				continue
			}
			if !WithinEps(d, outs[j], epsNum, epsDen) {
				return fmt.Errorf("agreement: |%v - %v| > %d/%d (procs %d,%d)",
					d, outs[j], epsNum, epsDen, i, j)
			}
		}
	}
	return nil
}

// CheckConsensus validates binary consensus for the correct processes:
// every decided value is some process's input, and all decided values are
// identical. It is used as the reduction target in the Theorem 1.1
// experiment (Claim 4.1) and as a negative control for the task solver.
func CheckConsensus(inputs []uint64, outs []uint64, decided []bool) error {
	has := map[uint64]bool{}
	for _, x := range inputs {
		has[x] = true
	}
	firstSet := false
	var first uint64
	for i, ok := range decided {
		if !ok {
			continue
		}
		if !has[outs[i]] {
			return fmt.Errorf("consensus validity: process %d decided %d, not an input", i, outs[i])
		}
		if !firstSet {
			first, firstSet = outs[i], true
		} else if outs[i] != first {
			return fmt.Errorf("consensus agreement: decisions %d and %d differ", first, outs[i])
		}
	}
	return nil
}

func asWord(v any) (uint64, error) {
	w, ok := v.(uint64)
	if !ok {
		return 0, fmt.Errorf("agreement: register holds %T (%v), want uint64", v, v)
	}
	return w, nil
}
