package agreement

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/sched/schedtest"
)

// alg1FP fingerprints one completed Algorithm 1 execution in
// relabelling-invariant terms: the per-process (input, decision,
// decided, final register) tuples, sorted. Sorting is what makes the
// fingerprint legal under the memoized explorer's symmetry reduction —
// a pruned subtree's leaves may differ from their memoized twins
// exactly by a process relabelling.
func alg1FP(ar *Alg1Run) string {
	regs := ar.FinalRegisters()
	pair := make([]string, 2)
	for i := 0; i < 2; i++ {
		pair[i] = fmt.Sprintf("in%d out%d/%d dec%v reg%d",
			ar.Inputs[i], ar.Outs[i].Num, ar.Outs[i].Den, ar.Decided[i], regs[i])
	}
	sort.Strings(pair)
	return fmt.Sprint(pair)
}

// alg1Exhaustive collects the exhaustive fingerprint multiset and run
// count for one (k, inputs) cell.
func alg1Exhaustive(t *testing.T, k int, inputs [2]uint64) (schedtest.Counts, int) {
	t.Helper()
	counts := schedtest.Counts{}
	runs, err := ExploreAlg1(k, inputs, func(ar *Alg1Run) {
		counts.Add(alg1FP(ar))
	})
	if err != nil {
		t.Fatalf("ExploreAlg1(k=%d, %v): %v", k, inputs, err)
	}
	return counts, runs
}

func alg1MemoGrid() []struct {
	k      int
	inputs [2]uint64
} {
	return []struct {
		k      int
		inputs [2]uint64
	}{
		{1, [2]uint64{0, 1}},
		{1, [2]uint64{1, 1}},
		{2, [2]uint64{0, 1}},
		{2, [2]uint64{0, 0}},
		{3, [2]uint64{0, 1}},
	}
}

// TestAlg1MemoMatchesExhaustive pins the memoized Algorithm 1 sweep to
// the exhaustive one on a (k, inputs) grid: identical fingerprint
// multisets, identical execution counts, and genuinely fewer replays.
func TestAlg1MemoMatchesExhaustive(t *testing.T) {
	for _, tc := range alg1MemoGrid() {
		name := fmt.Sprintf("k%d_in%d%d", tc.k, tc.inputs[0], tc.inputs[1])
		t.Run(name, func(t *testing.T) {
			want, runs := alg1Exhaustive(t, tc.k, tc.inputs)
			agg, stats, err := ExploreAlg1Memo(tc.k, tc.inputs,
				func(ar *Alg1Run) any { return schedtest.Counts{alg1FP(ar): 1} },
				schedtest.Merge)
			if err != nil {
				t.Fatalf("ExploreAlg1Memo: %v", err)
			}
			got := schedtest.AsCounts(agg)
			if d := schedtest.Diff(got, want); d != "" {
				t.Fatalf("fingerprint multisets diverge:\n%s", d)
			}
			if stats.Executions != runs {
				t.Fatalf("memo accounts for %d executions, exhaustive ran %d", stats.Executions, runs)
			}
			if stats.Replays >= runs {
				t.Errorf("memoization saved nothing: %d replays for %d executions", stats.Replays, runs)
			}
			if stats.StatesPruned == 0 {
				t.Errorf("no subtree was pruned on a %d-execution space", runs)
			}
		})
	}
}

// TestAlg1MemoPrefixUnion pins the sharded memoized mode: for every cut
// depth, the memoized union over the Alg1Roots partition equals the
// exhaustive whole-tree multiset — the property that lets a distributed
// sweep adopt the reduced mode slice by slice.
func TestAlg1MemoPrefixUnion(t *testing.T) {
	k, inputs := 2, [2]uint64{0, 1}
	want, runs := alg1Exhaustive(t, k, inputs)
	leaf := func(ar *Alg1Run) any { return schedtest.Counts{alg1FP(ar): 1} }
	for _, depth := range []int{0, 2, 4} {
		roots, err := Alg1Roots(k, inputs, depth)
		if err != nil {
			t.Fatal(err)
		}
		if depth > 0 && len(roots) < 2 {
			t.Fatalf("depth %d partition has %d roots", depth, len(roots))
		}

		// One call over the whole partition.
		agg, stats, err := ExploreAlg1MemoPrefixes(k, inputs, roots, leaf, schedtest.Merge)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
			t.Fatalf("depth %d one-call union diverges:\n%s", depth, d)
		}
		if stats.Executions != runs {
			t.Fatalf("depth %d: %d executions, want %d", depth, stats.Executions, runs)
		}

		// Separate calls per root (each shard its own memo), merged by hand.
		union := schedtest.Counts{}
		total := 0
		for _, root := range roots {
			agg, stats, err := ExploreAlg1MemoPrefixes(k, inputs, [][]int{root}, leaf, schedtest.Merge)
			if err != nil {
				t.Fatalf("depth %d root %v: %v", depth, root, err)
			}
			for fp, n := range schedtest.AsCounts(agg) {
				union[fp] += n
			}
			total += stats.Executions
		}
		if d := schedtest.Diff(union, want); d != "" {
			t.Fatalf("depth %d per-root union diverges:\n%s", depth, d)
		}
		if total != runs {
			t.Fatalf("depth %d: per-root executions sum to %d, want %d", depth, total, runs)
		}
	}
}

// TestAlg1MemoAggregatesSpec runs the memoized sweep with a
// specification-checking leaf: every visited execution must satisfy
// 1/(2k+1)-agreement, mirroring how the experiment layer consumes the
// reduced mode.
func TestAlg1MemoAggregatesSpec(t *testing.T) {
	for _, tc := range alg1MemoGrid() {
		var checkErr error
		_, stats, err := ExploreAlg1Memo(tc.k, tc.inputs, func(ar *Alg1Run) any {
			if checkErr == nil {
				checkErr = ar.Check(tc.k)
			}
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("k=%d inputs=%v: %v", tc.k, tc.inputs, err)
		}
		if checkErr != nil {
			t.Fatalf("k=%d inputs=%v: visited execution violates spec: %v", tc.k, tc.inputs, checkErr)
		}
		if stats.Executions == 0 {
			t.Fatalf("k=%d inputs=%v: no executions", tc.k, tc.inputs)
		}
	}
}
