package agreement

import (
	"fmt"
	"sort"
	"testing"
)

// alg1Fingerprints collects a sorted fingerprint multiset of every
// visited execution: the scheduler-decision sequence (the execution's
// identity on the deterministic system) plus the decided pair.
func alg1Fingerprints(t *testing.T, explore func(visit func(*Alg1Run)) (int, error)) []string {
	t.Helper()
	var fps []string
	n, err := explore(func(ar *Alg1Run) {
		fp := ""
		for _, d := range ar.Result.Decisions {
			fp += fmt.Sprintf("%d.", d.Pid)
		}
		fps = append(fps, fp+" "+ar.Outs[0].String()+"|"+ar.Outs[1].String())
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(fps) {
		t.Fatalf("explorer reported %d runs, visited %d", n, len(fps))
	}
	sort.Strings(fps)
	return fps
}

// TestAlg1PrefixUnionMatchesExplore: the union of ExploreAlg1Prefixes
// over an Alg1Roots partition visits exactly the ExploreAlg1 execution
// set — the agreement-layer instance of the sched differential
// property, on the protocol the sharded E2 experiment explores.
func TestAlg1PrefixUnionMatchesExplore(t *testing.T) {
	const k = 2
	inputs := [2]uint64{0, 1}
	want := alg1Fingerprints(t, func(visit func(*Alg1Run)) (int, error) {
		return ExploreAlg1(k, inputs, visit)
	})
	for _, depth := range []int{0, 1, 3, 6} {
		roots, err := Alg1Roots(k, inputs, depth)
		if err != nil {
			t.Fatal(err)
		}
		var union []string
		for _, root := range roots {
			root := root
			union = append(union, alg1Fingerprints(t, func(visit func(*Alg1Run)) (int, error) {
				return ExploreAlg1Prefixes(k, inputs, 2, [][]int{root}, visit)
			})...)
		}
		sort.Strings(union)
		if len(union) != len(want) {
			t.Fatalf("depth %d: union visits %d executions, want %d", depth, len(union), len(want))
		}
		for i := range want {
			if union[i] != want[i] {
				t.Fatalf("depth %d: fingerprint multiset differs at %d: %q vs %q", depth, i, union[i], want[i])
			}
		}
	}
}
