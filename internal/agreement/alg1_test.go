package agreement

import (
	"testing"

	"repro/internal/sched"
)

var binaryInputPairs = [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}

// TestAlg1Exhaustive validates Proposition 5.1 over every crash-free
// interleaving for k = 1..4 and all binary input pairs: outputs are valid
// decisions with denominator 2k+1, within 1/(2k+1) of each other, equal to
// the common input when inputs agree, and each process performs at most
// 2k+3 steps.
func TestAlg1Exhaustive(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for _, inputs := range binaryInputPairs {
			runs, err := ExploreAlg1(k, inputs, func(ar *Alg1Run) {
				if e := ar.Result.Err(); e != nil {
					t.Fatalf("k=%d inputs=%v: execution error: %v", k, inputs, e)
				}
				if !ar.Decided[0] || !ar.Decided[1] {
					t.Fatalf("k=%d inputs=%v: a process terminated without deciding", k, inputs)
				}
				if err := ar.Check(k); err != nil {
					t.Fatalf("k=%d inputs=%v schedule=%v: %v", k, inputs, pids(ar.Result), err)
				}
				for i := 0; i < 2; i++ {
					if ar.Outs[i].Den != Alg1Den(k) {
						t.Fatalf("k=%d: process %d denominator %d", k, i, ar.Outs[i].Den)
					}
					if ar.Result.Steps[i] > Alg1MaxSteps(k) {
						t.Fatalf("k=%d inputs=%v: process %d took %d steps > 2k+3 = %d",
							k, inputs, i, ar.Result.Steps[i], Alg1MaxSteps(k))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if runs == 0 {
				t.Fatalf("k=%d inputs=%v: no executions explored", k, inputs)
			}
		}
	}
}

// TestAlg1Lemma56 checks Lemma 5.6 exhaustively: a process that decides a
// boundary value y ∈ {0,1} has input y.
func TestAlg1Lemma56(t *testing.T) {
	k := 3
	for _, inputs := range binaryInputPairs {
		_, err := ExploreAlg1(k, inputs, func(ar *Alg1Run) {
			for i := 0; i < 2; i++ {
				if !ar.Decided[i] {
					continue
				}
				d := ar.Outs[i]
				if d.IsZero() && inputs[i] != 0 {
					t.Fatalf("inputs=%v: process %d decided 0 with input 1", inputs, i)
				}
				if d.IsOne() && inputs[i] != 1 {
					t.Fatalf("inputs=%v: process %d decided 1 with input 0", inputs, i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlg1Solo checks that a process running solo decides its own input
// (the other process never takes a step).
func TestAlg1Solo(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for pid := 0; pid < 2; pid++ {
			for _, x := range []uint64{0, 1} {
				inputs := [2]uint64{x, x}
				inputs[1-pid] = 1 - x // the crashed process's input is irrelevant
				ar, err := RunAlg1(k, inputs, sched.Solo{Pid: pid})
				if err != nil {
					t.Fatal(err)
				}
				if !ar.Decided[pid] {
					t.Fatalf("solo process %d did not decide", pid)
				}
				want := Dec(int(x)*Alg1Den(k), Alg1Den(k))
				if ar.Outs[pid] != want {
					t.Fatalf("k=%d solo %d input %d: decided %v, want %v",
						k, pid, x, ar.Outs[pid], want)
				}
			}
		}
	}
}

// TestAlg1WaitFreeUnderCrashes checks wait-freedom: whatever step the
// adversary crashes one process at, the other still decides, and the
// surviving decision is valid.
func TestAlg1WaitFreeUnderCrashes(t *testing.T) {
	k := 3
	for _, inputs := range binaryInputPairs {
		for victim := 0; victim < 2; victim++ {
			for crashAt := 0; crashAt <= Alg1MaxSteps(k); crashAt++ {
				scheduler := sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{victim: crashAt})
				ar, err := RunAlg1(k, inputs, scheduler)
				if err != nil {
					t.Fatal(err)
				}
				survivor := 1 - victim
				if !ar.Decided[survivor] {
					t.Fatalf("inputs=%v victim=%d crashAt=%d: survivor did not decide",
						inputs, victim, crashAt)
				}
				if err := ar.Check(k); err != nil {
					t.Fatalf("inputs=%v victim=%d crashAt=%d: %v", inputs, victim, crashAt, err)
				}
			}
		}
	}
}

// TestAlg1RandomSchedules samples many random fair schedules at larger k
// (exhaustive enumeration would be too big) and validates each run.
func TestAlg1RandomSchedules(t *testing.T) {
	for _, k := range []int{8, 16, 40} {
		for _, inputs := range binaryInputPairs {
			for seed := int64(0); seed < 25; seed++ {
				ar, err := RunAlg1(k, inputs, sched.NewRandom(seed))
				if err != nil {
					t.Fatal(err)
				}
				if e := ar.Result.Err(); e != nil {
					t.Fatal(e)
				}
				if err := ar.Check(k); err != nil {
					t.Fatalf("k=%d inputs=%v seed=%d: %v", k, inputs, seed, err)
				}
			}
		}
	}
}

// TestAlg1OutputRangeCoverage reproduces the Figure 2 structure: with
// inputs (0,1) and k=4, the decisions observed across all executions cover
// the full discretized range {0, 1/9, ..., 9/9}.
func TestAlg1OutputRangeCoverage(t *testing.T) {
	k := 4
	seen := map[int]bool{}
	_, err := ExploreAlg1(k, [2]uint64{0, 1}, func(ar *Alg1Run) {
		for i := 0; i < 2; i++ {
			if ar.Decided[i] {
				seen[ar.Outs[i].Num] = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for num := 0; num <= Alg1Den(k); num++ {
		if !seen[num] {
			t.Errorf("value %d/%d never decided in any execution", num, Alg1Den(k))
		}
	}
}

// TestAlg1LockstepPrecision checks the paper's remark that Θ(1/ε) rounds
// give precision exactly 1/(2k+1) when the two processes run in lockstep.
func TestAlg1Lockstep(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		ar, err := RunAlg1(k, [2]uint64{0, 1}, &sched.RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		if e := ar.Result.Err(); e != nil {
			t.Fatal(e)
		}
		if err := ar.Check(k); err != nil {
			t.Fatal(err)
		}
		if ar.Outs[0] == ar.Outs[1] {
			continue // agreement can be exact; nothing more to check
		}
		if !WithinEps(ar.Outs[0], ar.Outs[1], 1, Alg1Den(k)) {
			t.Fatalf("k=%d: lockstep outputs %v %v too far", k, ar.Outs[0], ar.Outs[1])
		}
	}
}

// TestAlg1RegisterWidthNeverViolated confirms the protocol really lives in
// 1-bit registers: no width violations occur in any explored execution
// (a violation would surface as a process error).
func TestAlg1RegisterWidthNeverViolated(t *testing.T) {
	_, err := ExploreAlg1(2, [2]uint64{1, 0}, func(ar *Alg1Run) {
		for i, e := range ar.Result.Errs {
			if e != nil {
				t.Fatalf("process %d error: %v", i, e)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlg1StepComplexityGrowth records that the step complexity grows
// linearly in k = Θ(1/ε), the paper's exponential gap with Theorem 8.1.
func TestAlg1StepComplexityGrowth(t *testing.T) {
	prev := 0
	for _, k := range []int{2, 4, 8, 16} {
		ar, err := RunAlg1(k, [2]uint64{0, 1}, &sched.RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		steps := ar.Result.Steps[0]
		if steps <= prev {
			t.Fatalf("k=%d: steps %d did not grow (prev %d)", k, steps, prev)
		}
		if steps > Alg1MaxSteps(k) {
			t.Fatalf("k=%d: steps %d exceed 2k+3", k, steps)
		}
		prev = steps
	}
}

func pids(r *sched.Result) []int {
	out := make([]int, len(r.Decisions))
	for i, d := range r.Decisions {
		out[i] = d.Pid
	}
	return out
}

func TestWithinEps(t *testing.T) {
	tests := []struct {
		a, b           Decision
		epsNum, epsDen int
		want           bool
	}{
		{Dec(0, 9), Dec(1, 9), 1, 9, true},
		{Dec(0, 9), Dec(2, 9), 1, 9, false},
		{Dec(3, 9), Dec(3, 9), 0, 1, true},
		{Dec(1, 3), Dec(3, 9), 0, 1, true},  // equal rationals, different den
		{Dec(1, 2), Dec(2, 3), 1, 6, true},  // |1/2-2/3| = 1/6
		{Dec(1, 2), Dec(2, 3), 1, 7, false}, // 1/6 > 1/7
	}
	for _, tc := range tests {
		if got := WithinEps(tc.a, tc.b, tc.epsNum, tc.epsDen); got != tc.want {
			t.Errorf("WithinEps(%v,%v,%d/%d) = %v, want %v",
				tc.a, tc.b, tc.epsNum, tc.epsDen, got, tc.want)
		}
	}
}

func TestCheckConsensus(t *testing.T) {
	if err := CheckConsensus([]uint64{0, 1}, []uint64{1, 1}, []bool{true, true}); err != nil {
		t.Errorf("valid consensus rejected: %v", err)
	}
	if err := CheckConsensus([]uint64{0, 1}, []uint64{0, 1}, []bool{true, true}); err == nil {
		t.Error("disagreement accepted")
	}
	if err := CheckConsensus([]uint64{0, 0}, []uint64{1, 1}, []bool{true, true}); err == nil {
		t.Error("non-input decision accepted")
	}
	if err := CheckConsensus([]uint64{0, 1}, []uint64{0, 1}, []bool{true, false}); err != nil {
		t.Errorf("single decider rejected: %v", err)
	}
}
