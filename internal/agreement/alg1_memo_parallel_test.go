package agreement

import (
	"fmt"
	"testing"

	"repro/internal/sched/schedtest"
)

// TestAlg1MemoParallelMatchesExhaustive extends the memoized
// differential grid across worker counts: the parallel memo's
// fingerprint multiset and execution count equal the exhaustive
// sweep's — and the serial memo's — for jobs ∈ {1, 2, 8}.
func TestAlg1MemoParallelMatchesExhaustive(t *testing.T) {
	leaf := func(ar *Alg1Run) any { return schedtest.Counts{alg1FP(ar): 1} }
	for _, tc := range alg1MemoGrid() {
		name := fmt.Sprintf("k%d_in%d%d", tc.k, tc.inputs[0], tc.inputs[1])
		t.Run(name, func(t *testing.T) {
			want, runs := alg1Exhaustive(t, tc.k, tc.inputs)
			for _, workers := range []int{1, 2, 8} {
				agg, stats, err := ExploreAlg1MemoParallel(tc.k, tc.inputs, workers, leaf, schedtest.Merge)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
					t.Fatalf("workers=%d: multisets diverge:\n%s", workers, d)
				}
				if stats.Executions != runs {
					t.Fatalf("workers=%d: %d executions accounted, exhaustive ran %d", workers, stats.Executions, runs)
				}
			}
		})
	}
}

// TestAlg1MemoParallelPrefixUnion pins the parallel memo over the
// Alg1Roots carve at several depths, including the cross-range
// sharing counter on a multi-range carve.
func TestAlg1MemoParallelPrefixUnion(t *testing.T) {
	k, inputs := 2, [2]uint64{0, 1}
	want, runs := alg1Exhaustive(t, k, inputs)
	leaf := func(ar *Alg1Run) any { return schedtest.Counts{alg1FP(ar): 1} }
	for _, depth := range []int{0, 2, 4} {
		roots, err := Alg1Roots(k, inputs, depth)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			agg, stats, err := ExploreAlg1MemoParallelPrefixes(k, inputs, workers, roots, leaf, schedtest.Merge)
			if err != nil {
				t.Fatalf("depth %d workers %d: %v", depth, workers, err)
			}
			if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
				t.Fatalf("depth %d workers %d: union diverges:\n%s", depth, workers, d)
			}
			if stats.Executions != runs {
				t.Fatalf("depth %d workers %d: %d executions, want %d", depth, workers, stats.Executions, runs)
			}
			if depth == 4 && stats.Workers > 1 && stats.StatesShared == 0 {
				t.Errorf("depth %d workers %d: no cross-range sharing on a %d-range carve", depth, workers, len(roots))
			}
		}
	}
}
