package agreement

import (
	"fmt"
	"sort"
	"testing"
)

// TestExploreAlg1ParallelMatchesSerial checks that the parallel
// enumeration of Algorithm 1 visits the same multiset of completed runs
// (outputs and final register contents) as the serial one.
func TestExploreAlg1ParallelMatchesSerial(t *testing.T) {
	collect := func(explore func(func(*Alg1Run)) (int, error)) ([]string, int) {
		var keys []string
		runs, err := explore(func(ar *Alg1Run) {
			keys = append(keys, fmt.Sprintf("%v|%v|%v", ar.Outs, ar.Decided, ar.FinalRegisters()))
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(keys)
		return keys, runs
	}

	for _, k := range []int{1, 2, 3} {
		for _, inputs := range [][2]uint64{{0, 1}, {1, 1}} {
			want, serialRuns := collect(func(visit func(*Alg1Run)) (int, error) {
				return ExploreAlg1(k, inputs, visit)
			})
			got, parallelRuns := collect(func(visit func(*Alg1Run)) (int, error) {
				return ExploreAlg1Parallel(k, inputs, 4, visit)
			})
			if serialRuns != parallelRuns {
				t.Fatalf("k=%d inputs=%v: %d parallel runs, %d serial", k, inputs, parallelRuns, serialRuns)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d inputs=%v: %d visits, want %d", k, inputs, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d inputs=%v: run multiset differs at %d: %s vs %s",
						k, inputs, i, got[i], want[i])
				}
			}
		}
	}
}
