package agreement

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
)

// Alg1Bits is the width of the coordination registers used by Algorithm 1.
const Alg1Bits = 1

// Alg1MaxSteps returns the paper's worst-case step complexity of
// Algorithm 1 per process: 2k+3 read/write operations (k loop iterations
// of one write and one read, plus the input write and the two input
// reads).
func Alg1MaxSteps(k int) int { return 2*k + 3 }

// Alg1Den returns the common denominator 2k+1 of all Algorithm 1 outputs.
func Alg1Den(k int) int { return 2*k + 1 }

// NewAlg1Memory returns the shared memory Algorithm 1 runs on: two 1-bit
// SWMR registers (plus the two write-once input registers).
func NewAlg1Memory() *memory.Shared { return memory.New(2, Alg1Bits) }

// Alg1Proc returns the code of process me ∈ {0,1} running the paper's
// Algorithm 1 (approximate agreement protocol A_k for two processes) with
// the given binary input. The decision y = out.Num/out.Den with
// out.Den == 2k+1 is stored through out before the process returns;
// *decided is set once the decision is made.
//
// The protocol solves 1/(2k+1)-agreement wait-free (Proposition 5.1):
// each process alternates writing 0 and 1 into its 1-bit register and
// reads the other register, leaving the loop when it reads the same value
// twice; the exit round's parity determines how the output is interpolated
// between the two inputs.
func Alg1Proc(m *memory.Shared, k int, input uint64, out *Decision, decided *bool) sched.ProcFunc {
	return func(p *sched.Proc) error {
		d, err := Alg1Inline(p, m, k, input)
		if err != nil {
			return err
		}
		*out = d
		*decided = true
		return nil
	}
}

// Alg1Inline runs Algorithm 1 inside an already-scheduled process p, on the
// dedicated 2-process memory m (1-bit registers). It is the form used when
// Algorithm 1 serves as a subprotocol, as in the paper's Algorithm 2 (§5.2)
// where its two per-process registers (the {⊥,0,1} input field and the
// 1-bit coordination bit) account for 3 of the 3 register bits.
func Alg1Inline(p *sched.Proc, m *memory.Shared, k int, input uint64) (Decision, error) {
	if input > 1 {
		return Decision{}, fmt.Errorf("alg1: input %d not binary", input)
	}
	pm := memory.Bind(p, m)
	me, other := p.ID, 1-p.ID
	den := Alg1Den(k)

	// Line 2: publish the input.
	if err := pm.WriteInput(input); err != nil {
		return Decision{}, err
	}

	// Lines 3-7: alternate writing r mod 2, read the other register,
	// break on reading the same value twice.
	prec := uint64(0)
	var newv uint64
	r := 0
	broke := false
	for r = 1; r <= k; r++ {
		if err := pm.Write(uint64(r % 2)); err != nil {
			return Decision{}, err
		}
		nv, err := asWord(pm.Read(other))
		if err != nil {
			return Decision{}, err
		}
		newv = nv
		if newv != prec {
			prec = newv
		} else {
			broke = true
			break
		}
	}
	if !broke {
		r = k
	}

	// Lines 8-9: read both inputs.
	xme, err := asWord(pm.ReadInput(me))
	if err != nil {
		return Decision{}, err
	}
	xotherAny := pm.ReadInput(other)

	// Line 10: same input seen (or none): decide own input.
	if xotherAny == nil {
		return Dec(int(xme)*den, den), nil
	}
	xother, err := asWord(xotherAny)
	if err != nil {
		return Decision{}, err
	}
	if xme == xother {
		return Dec(int(xme)*den, den), nil
	}

	xof := func(who int) uint64 {
		if who == me {
			return xme
		}
		return xother
	}

	// Lines 12-14: the for-loop completed all k iterations normally.
	if r == k && newv == uint64(k%2) {
		var who int
		if r%2 == 0 {
			who = me
		} else {
			who = other
		}
		return Dec(int(xof(who))+k, den), nil
	}

	// Lines 15-17: left the loop after reading the same value twice.
	var who int
	if r%2 == 0 {
		who = other
	} else {
		who = me
	}
	if xof(who) == 0 {
		return Dec(r-1, den), nil
	}
	return Dec(den-(r-1), den), nil
}

// Alg1Run describes one complete execution of Algorithm 1.
type Alg1Run struct {
	Inputs  [2]uint64
	Outs    [2]Decision
	Decided [2]bool
	Result  *sched.Result
	// Mem is the shared memory of the run (for inspecting final register
	// contents, as the Theorem 1.1 pigeonhole experiment does).
	Mem *memory.Shared
}

// FinalRegisters returns the contents of the two coordination registers
// at the end of the execution.
func (ar *Alg1Run) FinalRegisters() [2]uint64 {
	var out [2]uint64
	for i := 0; i < 2; i++ {
		if w, ok := ar.Mem.Peek(i).(uint64); ok {
			out[i] = w
		}
	}
	return out
}

// Check validates the run against the 1/(2k+1)-agreement specification.
func (ar *Alg1Run) Check(k int) error {
	return CheckBinaryEps(ar.Inputs[:], ar.Outs[:], ar.Decided[:], 1, Alg1Den(k))
}

// newAlg1Run builds a fresh Algorithm 1 system: the run record (with its
// own shared memory) and the two process closures wired into it. Every
// runner and explorer goes through it, so the serial and parallel
// enumerations execute identical systems.
func newAlg1Run(k int, inputs [2]uint64) (*Alg1Run, []sched.ProcFunc) {
	m := NewAlg1Memory()
	ar := &Alg1Run{Inputs: inputs, Mem: m}
	return ar, []sched.ProcFunc{
		Alg1Proc(m, k, inputs[0], &ar.Outs[0], &ar.Decided[0]),
		Alg1Proc(m, k, inputs[1], &ar.Outs[1], &ar.Decided[1]),
	}
}

// RunAlg1 executes Algorithm 1 for both processes under the given
// scheduler and returns the run.
func RunAlg1(k int, inputs [2]uint64, scheduler sched.Scheduler) (*Alg1Run, error) {
	ar, procs := newAlg1Run(k, inputs)
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		return nil, err
	}
	ar.Result = res
	return ar, nil
}

// ExploreAlg1 enumerates every crash-free interleaving of Algorithm 1 for
// the given inputs and calls visit on each completed run. It returns the
// number of executions explored.
func ExploreAlg1(k int, inputs [2]uint64, visit func(*Alg1Run)) (int, error) {
	var cur *Alg1Run
	factory := func() []sched.ProcFunc {
		var procs []sched.ProcFunc
		cur, procs = newAlg1Run(k, inputs)
		return procs
	}
	return sched.ExploreAll(factory, 0, func(r *sched.Result) {
		cur.Result = r
		visit(cur)
	})
}

// ExploreAlg1Parallel enumerates the same executions as ExploreAlg1 with
// a bounded goroutine fan-out over disjoint schedule prefixes
// (sched.ExploreParallel). visit is called serially under the explorer's
// lock — it may mutate shared state freely — but in nondeterministic
// order, so it must aggregate order-insensitively. workers <= 0 means
// sched.DefaultExploreWorkers.
func ExploreAlg1Parallel(k int, inputs [2]uint64, workers int, visit func(*Alg1Run)) (int, error) {
	return ExploreAlg1Prefixes(k, inputs, workers, [][]int{{}}, visit)
}

// ExploreAlg1Prefixes explores exactly the Algorithm 1 executions
// extending the given schedule prefixes (sched.ExplorePrefixes): the
// slice of the exploration space one shard of a distributed run owns.
// Roots come from Alg1Roots; the union of visits over any partition of
// those roots is exactly the ExploreAlg1 execution set.
func ExploreAlg1Prefixes(k int, inputs [2]uint64, workers int, roots [][]int, visit func(*Alg1Run)) (int, error) {
	factory := func() sched.Instance {
		cur, procs := newAlg1Run(k, inputs)
		return sched.Instance{
			Procs: procs,
			Done: func(r *sched.Result) {
				cur.Result = r
				visit(cur)
			},
		}
	}
	return sched.ExplorePrefixes(factory, 0, workers, roots)
}

// ExploreAlg1Memo is the memoized analogue of ExploreAlg1
// (sched.ExploreMemo): it explores the same schedule tree through the
// canonical-state memo, merging leaf's per-execution contributions
// with merge instead of visiting every execution. The aggregate —
// and the reported execution count — are exactly the exhaustive
// ones, at a fraction of the replays.
//
// leaf runs on each *visited* leaf and must obey the memo contract
// (sched.MemoInstance.Leaf): return a fresh value determined by the
// run's final state, never retain the Alg1Run or its pooled
// Result, and — because the memory's canonical key applies the
// process-relabelling reduction — be invariant under swapping the two
// processes' roles whenever the inputs are equal. merge must be pure
// (sched.MemoOptions.Merge).
func ExploreAlg1Memo(k int, inputs [2]uint64, leaf func(*Alg1Run) any, merge func(a, b any) any) (any, sched.MemoStats, error) {
	return ExploreAlg1MemoPrefixes(k, inputs, [][]int{{}}, leaf, merge)
}

// ExploreAlg1MemoPrefixes is ExploreAlg1Memo restricted to the
// subtrees under the given schedule prefixes
// (sched.ExploreMemoPrefixes): the memoized form of the slice a shard
// of a distributed run owns. The memoized union over any partition of
// Alg1Roots equals the exhaustive whole-tree aggregate.
func ExploreAlg1MemoPrefixes(k int, inputs [2]uint64, roots [][]int, leaf func(*Alg1Run) any, merge func(a, b any) any) (any, sched.MemoStats, error) {
	return sched.ExploreMemoPrefixes(alg1MemoFactory(k, inputs, leaf), sched.MemoOptions{Merge: merge}, roots)
}

// alg1MemoFactory builds the MemoInstance factory the memoized
// explorers (serial and parallel) share: a fresh Algorithm 1 run per
// instance, fingerprinted by the memory's canonical (relabelling-
// reduced) key, with leaf wrapped to see the current run.
func alg1MemoFactory(k int, inputs [2]uint64, leaf func(*Alg1Run) any) func() sched.MemoInstance {
	return func() sched.MemoInstance {
		cur, procs := newAlg1Run(k, inputs)
		inst := sched.MemoInstance{
			Procs: procs,
			State: cur.Mem.CanonicalKey,
		}
		if leaf != nil {
			inst.Leaf = func(r *sched.Result) any {
				cur.Result = r
				defer func() { cur.Result = nil }()
				return leaf(cur)
			}
		}
		return inst
	}
}

// ExploreAlg1MemoParallel is ExploreAlg1Memo across workers goroutines
// sharing one concurrent memo table (sched.ExploreMemoParallel): the
// same aggregate and execution count, byte-identical to the serial
// memo and to the exhaustive sweep, with the replays spread over
// cores. leaf and merge keep the memo contract and must additionally
// be safe to call from concurrent workers (leaf receives a worker-
// private Alg1Run, so pure extractors — the normal shape — qualify
// as-is). workers <= 0 means sched.DefaultExploreWorkers.
func ExploreAlg1MemoParallel(k int, inputs [2]uint64, workers int, leaf func(*Alg1Run) any, merge func(a, b any) any) (any, sched.MemoStats, error) {
	return sched.ExploreMemoParallel(alg1MemoFactory(k, inputs, leaf), sched.MemoOptions{Merge: merge}, workers)
}

// ExploreAlg1MemoParallelPrefixes is ExploreAlg1MemoPrefixes across
// workers goroutines sharing one memo table
// (sched.ExploreMemoParallelPrefixes).
func ExploreAlg1MemoParallelPrefixes(k int, inputs [2]uint64, workers int, roots [][]int, leaf func(*Alg1Run) any, merge func(a, b any) any) (any, sched.MemoStats, error) {
	return sched.ExploreMemoParallelPrefixes(alg1MemoFactory(k, inputs, leaf), sched.MemoOptions{Merge: merge}, workers, roots)
}

// Alg1Roots enumerates the live schedule prefixes of the Algorithm 1
// exploration at the given cut depth (sched.PartitionRoots): the
// deterministic partition a coordinator carves into per-worker ranges.
func Alg1Roots(k int, inputs [2]uint64, depth int) ([][]int, error) {
	factory := func() []sched.ProcFunc {
		_, procs := newAlg1Run(k, inputs)
		return procs
	}
	return sched.PartitionRoots(factory, 0, depth)
}
