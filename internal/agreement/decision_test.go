package agreement

import (
	"testing"
	"testing/quick"
)

func TestWithinEpsSymmetric(t *testing.T) {
	f := func(an, bn uint8, den uint8, en uint8) bool {
		d := int(den%50) + 1
		a := Dec(int(an)%(d+1), d)
		b := Dec(int(bn)%(d+1), d)
		return WithinEps(a, b, int(en%10), 10) == WithinEps(b, a, int(en%10), 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinEpsReflexive(t *testing.T) {
	f := func(n, den uint8) bool {
		d := int(den%50) + 1
		a := Dec(int(n)%(d+1), d)
		return WithinEps(a, a, 0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinEpsScaleInvariant(t *testing.T) {
	// Multiplying numerator and denominator by a constant changes nothing.
	f := func(n, den, scale uint8) bool {
		d := int(den%50) + 1
		s := int(scale%5) + 1
		a := Dec(int(n)%(d+1), d)
		b := Dec(a.Num*s, a.Den*s)
		return WithinEps(a, b, 0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecisionPredicates(t *testing.T) {
	if !Dec(0, 9).IsZero() || Dec(1, 9).IsZero() {
		t.Error("IsZero")
	}
	if !Dec(9, 9).IsOne() || Dec(8, 9).IsOne() {
		t.Error("IsOne")
	}
	if !Dec(5, 9).InUnitInterval() || Dec(10, 9).InUnitInterval() || Dec(-1, 9).InUnitInterval() {
		t.Error("InUnitInterval")
	}
	if Dec(1, 3).String() != "1/3" {
		t.Errorf("String = %q", Dec(1, 3).String())
	}
	if Dec(1, 2).Float() != 0.5 {
		t.Error("Float")
	}
}

func TestCheckBinaryEpsRejections(t *testing.T) {
	dec := []bool{true, true}
	tests := []struct {
		name   string
		inputs []uint64
		outs   []Decision
		ok     bool
	}{
		{"valid mixed", []uint64{0, 1}, []Decision{Dec(4, 9), Dec(5, 9)}, true},
		{"agreement violated", []uint64{0, 1}, []Decision{Dec(2, 9), Dec(5, 9)}, false},
		{"validity violated", []uint64{1, 1}, []Decision{Dec(8, 9), Dec(8, 9)}, false},
		{"valid equal inputs", []uint64{1, 1}, []Decision{Dec(9, 9), Dec(9, 9)}, true},
		{"out of range", []uint64{0, 1}, []Decision{Dec(10, 9), Dec(9, 9)}, false},
		{"non-binary input", []uint64{0, 2}, []Decision{Dec(0, 9), Dec(0, 9)}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckBinaryEps(tc.inputs, tc.outs, dec, 1, 9)
			if (err == nil) != tc.ok {
				t.Errorf("err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestCheckBinaryEpsSkipsUndecided(t *testing.T) {
	// Undecided slots are ignored even if their Decision field is junk.
	err := CheckBinaryEps(
		[]uint64{0, 1},
		[]Decision{Dec(4, 9), Dec(77, 9)},
		[]bool{true, false}, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlg1DenAndSteps(t *testing.T) {
	f := func(k uint8) bool {
		kk := int(k%100) + 1
		return Alg1Den(kk) == 2*kk+1 && Alg1MaxSteps(kk) == 2*kk+3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
