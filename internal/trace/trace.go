// Package trace is the fleet's request-tracing plane: a bounded
// in-memory journal of per-request span events, the request-ID scheme
// that ties one request's events together across processes, and the
// context/header plumbing that carries the ID from the edge that
// minted it (cmd/figures, internal/load, or internal/server) through
// the shard coordinator to every worker that served a piece of it.
//
// The latency histograms (internal/hist) say how slow a request was;
// the journal says why: every load-bearing decision on the serving
// path — worker chosen and at what in-flight count, cache and
// slice-cache outcome, retry, transport eviction, revival,
// registry-version rejection, local-range fallback, singleflight
// coalesce — is one timestamped Event tagged with the prefix range it
// concerns. GET /trace/{id} (internal/server) exposes a process's
// journal; `figures trace` fetches the same ID from several processes
// and merges the events into one timeline, so a slow sharded request
// is explainable after the fact without reproducing it.
//
// The journal is an observability buffer, not a durable log: it holds
// the most recent maxRequests requests (oldest-request-out at the
// ring cap) with at most maxEvents events each (later events are
// counted as dropped, never reallocated), so a load test cannot grow
// it without bound and recording stays O(1) per event. Recording is
// mutex-serialized per journal — decision events are orders of
// magnitude rarer than the lock-free histogram samples, so a mutex is
// cheap where it matters and keeps eviction trivially correct.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the HTTP header that carries a request ID
// coordinator→worker (and back on every traced response), so one ID
// names the same request in every process's journal.
const Header = "Repro-Request-ID"

// Default journal bounds: enough to hold a whole load-smoke run's
// tail without letting a long-lived daemon accumulate traces forever.
const (
	// DefaultMaxRequests is the journal's ring cap: the number of
	// distinct request IDs retained before the oldest is evicted.
	DefaultMaxRequests = 256
	// DefaultMaxEvents caps events retained per request; a request
	// that records more keeps its first DefaultMaxEvents events and
	// counts the rest as dropped.
	DefaultMaxEvents = 512
)

// Event kinds: the load-bearing decisions of the serving path. The
// strings are the wire form (/trace/{id}) and the vocabulary the
// timeline renderer annotates with, so they change as deliberately as
// any other schema.
const (
	// KindRequest marks a request's arrival at a process.
	KindRequest = "request"
	// KindCarve records a shardable experiment's space being split
	// into prefix ranges by the coordinator.
	KindCarve = "carve"
	// KindWorkerSelected records least-loaded selection: a worker
	// chosen for a whole fetch or one range, with its in-flight count.
	KindWorkerSelected = "worker_selected"
	// KindFetch records one remote fetch's outcome (success only;
	// failures are KindRetry), with its duration.
	KindFetch = "fetch"
	// KindCacheHit / KindCacheMiss are whole-result cache outcomes.
	KindCacheHit  = "cache_hit"
	KindCacheMiss = "cache_miss"
	// KindSliceCacheHit / KindSliceCacheMiss / KindSliceCacheStore are
	// artifact-store outcomes for one prefix range.
	KindSliceCacheHit   = "slice_cache_hit"
	KindSliceCacheMiss  = "slice_cache_miss"
	KindSliceCacheStore = "slice_cache_store"
	// KindExplore records a slice exploration actually executing (on a
	// worker, or locally on the coordinator's fallback path).
	KindExplore = "explore"
	// KindRetry records a failed attempt moving work to another
	// worker — a whole-fetch failover or a range reassignment.
	KindRetry = "retry"
	// KindEvict records a transport failure taking a worker out of
	// rotation; KindRevive records a success restoring one.
	KindEvict  = "evict"
	KindRevive = "revive"
	// KindRegistryReject records a worker's response being refused for
	// serving a different experiment generation.
	KindRegistryReject = "registry_reject"
	// KindLocalFallback records work that exhausted the fleet running
	// on the local engine instead — a whole experiment or one range.
	KindLocalFallback = "local_fallback"
	// KindCoalesce records a request joining another request's
	// in-flight singleflight execution instead of starting its own.
	KindCoalesce = "coalesce"
	// KindDone marks a request completing, with status and duration.
	KindDone = "done"
)

// Event is one timestamped decision on a request's path. Range names
// the prefix range the event concerns (canonical
// experiments.FormatPrefixes rendering; empty for whole-request
// events), Worker the fleet member involved (empty when none).
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Range  string    `json:"range,omitempty"`
	Worker string    `json:"worker,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Trace is one request's recorded span: the wire form GET /trace/{id}
// serves. Events are in recording order — which is chronological per
// process, the only clock a single journal has.
type Trace struct {
	ID     string    `json:"id"`
	What   string    `json:"what,omitempty"`
	Start  time.Time `json:"start"`
	Events []Event   `json:"events"`
	// Dropped counts events past the per-request cap that were
	// discarded rather than retained.
	Dropped int `json:"dropped,omitempty"`
}

// record is the journal's mutable per-request state.
type record struct {
	what    string
	start   time.Time
	events  []Event
	dropped int
}

// Journal is a bounded in-memory span journal. All methods are safe
// for concurrent use and nil-safe: a nil *Journal records nothing, so
// call sites need no tracing-enabled checks.
type Journal struct {
	mu          sync.Mutex
	maxRequests int
	maxEvents   int
	reqs        map[string]*record
	order       []string // insertion order; order[0] is evicted first
	evicted     atomic.Int64
}

// NewJournal builds a journal retaining at most maxRequests requests
// of at most maxEvents events each; values <= 0 take the defaults.
func NewJournal(maxRequests, maxEvents int) *Journal {
	if maxRequests <= 0 {
		maxRequests = DefaultMaxRequests
	}
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Journal{
		maxRequests: maxRequests,
		maxEvents:   maxEvents,
		reqs:        make(map[string]*record),
	}
}

// Start opens (or annotates) the trace for id: a no-op on a nil
// journal or empty id, idempotent on an already-started trace except
// that an empty What is filled in — so a worker that Starts on the
// header-carried ID and a recording that auto-created the trace agree.
func (j *Journal) Start(id, what string) {
	if j == nil || id == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.ensure(id)
	if r.what == "" {
		r.what = what
	}
}

// Add appends one event to id's trace, stamping At with the current
// time when the event carries none. Unknown ids auto-start (a
// recording site never needs to know whether the edge Started first);
// events past the per-request cap are counted as dropped.
func (j *Journal) Add(id string, ev Event) {
	if j == nil || id == "" {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.ensure(id)
	if len(r.events) >= j.maxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// ensure returns id's record, creating it (and evicting the oldest
// request past the ring cap) if absent. Callers hold j.mu.
func (j *Journal) ensure(id string) *record {
	if r, ok := j.reqs[id]; ok {
		return r
	}
	if len(j.order) >= j.maxRequests {
		oldest := j.order[0]
		j.order = j.order[1:]
		delete(j.reqs, oldest)
		j.evicted.Add(1)
	}
	r := &record{start: time.Now()}
	j.reqs[id] = r
	j.order = append(j.order, id)
	return r
}

// Get returns a snapshot of id's trace. The snapshot's event slice is
// a copy: the caller can render it while recording continues.
func (j *Journal) Get(id string) (Trace, bool) {
	if j == nil {
		return Trace{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.reqs[id]
	if !ok {
		return Trace{}, false
	}
	return j.snapshot(id, r), true
}

// Traces returns a snapshot of every retained trace in insertion
// order — the order requests arrived, oldest first.
func (j *Journal) Traces() []Trace {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Trace, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.snapshot(id, j.reqs[id]))
	}
	return out
}

// Len reports how many requests the journal currently retains.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.order)
}

// Evicted reports how many requests have been evicted at the ring cap
// since the journal was built.
func (j *Journal) Evicted() int64 {
	if j == nil {
		return 0
	}
	return j.evicted.Load()
}

// snapshot copies one record into its wire form. Callers hold j.mu.
func (j *Journal) snapshot(id string, r *record) Trace {
	events := make([]Event, len(r.events))
	copy(events, r.events)
	return Trace{
		ID:      id,
		What:    r.what,
		Start:   r.start,
		Events:  events,
		Dropped: r.dropped,
	}
}

// NewID mints a request ID: 16 hex characters of crypto/rand — long
// enough that IDs never collide within a journal's retention window,
// short enough to read off a log line. The rare entropy failure falls
// back to a timestamp rather than failing the request being traced.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the request ID in a context.
type ctxKey struct{}

// WithID returns ctx carrying the request ID, the form every
// recording site reads it back with IDFrom. An empty id returns ctx
// unchanged.
func WithID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// IDFrom extracts the request ID from ctx; empty when none was
// attached (recording then no-ops — untraced paths stay untraced).
func IDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
