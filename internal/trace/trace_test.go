package trace

import (
	"context"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"
)

// TestJournalBasics: Start sets What, Add appends in order, Get
// snapshots, unknown ids report absent.
func TestJournalBasics(t *testing.T) {
	j := NewJournal(4, 8)
	if _, ok := j.Get("nope"); ok {
		t.Fatal("Get on an empty journal reported a trace")
	}
	j.Start("r1", "GET /experiments/E2")
	j.Add("r1", Event{Kind: KindCacheMiss})
	j.Add("r1", Event{Kind: KindDone, Detail: "status 200"})
	tr, ok := j.Get("r1")
	if !ok {
		t.Fatal("trace r1 missing")
	}
	if tr.ID != "r1" || tr.What != "GET /experiments/E2" {
		t.Fatalf("trace header = %q %q", tr.ID, tr.What)
	}
	if len(tr.Events) != 2 || tr.Events[0].Kind != KindCacheMiss || tr.Events[1].Kind != KindDone {
		t.Fatalf("events = %+v", tr.Events)
	}
	for i, ev := range tr.Events {
		if ev.At.IsZero() {
			t.Errorf("event %d not timestamped", i)
		}
	}
	if tr.Start.IsZero() {
		t.Error("trace start not stamped")
	}
	// Start is idempotent: a second Start neither resets events nor
	// overwrites a non-empty What.
	j.Start("r1", "something else")
	tr, _ = j.Get("r1")
	if tr.What != "GET /experiments/E2" || len(tr.Events) != 2 {
		t.Fatalf("re-Start mutated the trace: %+v", tr)
	}
}

// TestJournalAutoStart: recording against an unknown id creates the
// trace — a coordinator deep in the stack never has to know whether
// the edge Started first — and a later Start fills in What.
func TestJournalAutoStart(t *testing.T) {
	j := NewJournal(4, 8)
	j.Add("r9", Event{Kind: KindRetry})
	tr, ok := j.Get("r9")
	if !ok || len(tr.Events) != 1 {
		t.Fatalf("auto-started trace = %+v, ok=%v", tr, ok)
	}
	j.Start("r9", "run E2")
	if tr, _ := j.Get("r9"); tr.What != "run E2" {
		t.Fatalf("late Start did not fill What: %q", tr.What)
	}
}

// TestJournalRingEviction: past the ring cap the oldest request is
// evicted — and only the oldest, in insertion order, no matter which
// trace events keep landing on.
func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3, 8)
	for i := 1; i <= 3; i++ {
		j.Start(fmt.Sprintf("r%d", i), "w")
	}
	// Recording on the oldest does not refresh its position: the ring
	// is insertion-ordered, not recency-ordered.
	j.Add("r1", Event{Kind: KindRetry})
	j.Start("r4", "w")
	if _, ok := j.Get("r1"); ok {
		t.Fatal("oldest request survived past the ring cap")
	}
	for i := 2; i <= 4; i++ {
		if _, ok := j.Get(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("r%d evicted out of order", i)
		}
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}
	if j.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", j.Evicted())
	}
	// Traces lists the survivors oldest-first.
	trs := j.Traces()
	if len(trs) != 3 || trs[0].ID != "r2" || trs[2].ID != "r4" {
		t.Fatalf("Traces order = %v", []string{trs[0].ID, trs[1].ID, trs[2].ID})
	}
}

// TestJournalEventCap: events past the per-request cap are dropped
// and counted, never retained — the journal's memory is bounded even
// against a pathological request.
func TestJournalEventCap(t *testing.T) {
	j := NewJournal(4, 3)
	for i := 0; i < 10; i++ {
		j.Add("r1", Event{Kind: KindRetry, Detail: fmt.Sprintf("attempt %d", i)})
	}
	tr, _ := j.Get("r1")
	if len(tr.Events) != 3 {
		t.Fatalf("retained %d events, cap 3", len(tr.Events))
	}
	if tr.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped)
	}
	// The first events are the ones kept: the start of a request
	// explains it better than the tail of a retry storm.
	if tr.Events[0].Detail != "attempt 0" {
		t.Fatalf("kept events = %+v", tr.Events)
	}
}

// TestJournalConcurrentIsolation: parallel requests recording into
// one journal must never interleave events across request IDs — the
// per-request streams stay exactly what each goroutine recorded, in
// its order. Run with -race, this is also the data-race gate for the
// whole recording path (Start, Add, Get, Traces, eviction).
func TestJournalConcurrentIsolation(t *testing.T) {
	const (
		writers       = 8
		eventsPer     = 200
		journalCap    = writers // every live writer's trace stays resident
		eventCap      = eventsPer
		readerPollMax = 50
	)
	j := NewJournal(journalCap, eventCap)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("req-%d", g)
			j.Start(id, fmt.Sprintf("writer %d", g))
			for i := 0; i < eventsPer; i++ {
				j.Add(id, Event{
					Kind:   KindWorkerSelected,
					Range:  fmt.Sprintf("range-%d", g),
					Detail: fmt.Sprintf("w%d-%d", g, i),
				})
			}
		}(g)
	}
	// Concurrent readers exercise snapshotting under recording.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < readerPollMax; i++ {
			j.Traces()
			j.Len()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done

	for g := 0; g < writers; g++ {
		id := fmt.Sprintf("req-%d", g)
		tr, ok := j.Get(id)
		if !ok {
			t.Fatalf("trace %s missing", id)
		}
		if len(tr.Events) != eventsPer {
			t.Fatalf("%s: %d events, want %d", id, len(tr.Events), eventsPer)
		}
		wantRange := fmt.Sprintf("range-%d", g)
		for i, ev := range tr.Events {
			if ev.Range != wantRange {
				t.Fatalf("%s event %d leaked from another request: %+v", id, i, ev)
			}
			if want := fmt.Sprintf("w%d-%d", g, i); ev.Detail != want {
				t.Fatalf("%s event %d out of order: got %q, want %q", id, i, ev.Detail, want)
			}
		}
	}
}

// TestNilJournalAndEmptyID: a nil journal and an empty request ID are
// both inert — recording sites carry no enabled-checks.
func TestNilJournalAndEmptyID(t *testing.T) {
	var j *Journal
	j.Start("r1", "w")
	j.Add("r1", Event{Kind: KindDone})
	if _, ok := j.Get("r1"); ok {
		t.Fatal("nil journal returned a trace")
	}
	if j.Len() != 0 || j.Evicted() != 0 || j.Traces() != nil {
		t.Fatal("nil journal reported state")
	}
	j2 := NewJournal(2, 2)
	j2.Start("", "w")
	j2.Add("", Event{Kind: KindDone})
	if j2.Len() != 0 {
		t.Fatal("empty id created a trace")
	}
}

// TestGetSnapshotIsolation: the snapshot Get returns must not alias
// the journal's live event slice.
func TestGetSnapshotIsolation(t *testing.T) {
	j := NewJournal(2, 8)
	j.Add("r1", Event{Kind: KindCacheHit})
	tr, _ := j.Get("r1")
	tr.Events[0].Kind = "mutated"
	if tr2, _ := j.Get("r1"); tr2.Events[0].Kind != KindCacheHit {
		t.Fatal("snapshot aliases journal state")
	}
}

// TestNewID: ids are 16 lowercase hex chars and do not collide over a
// journal-retention-sized sample.
func TestNewID(t *testing.T) {
	form := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if !form.MatchString(id) {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("NewID() collided after %d draws: %q", i, id)
		}
		seen[id] = true
	}
}

// TestContextPlumbing: WithID/IDFrom round-trip, empty id is a no-op,
// and an ID survives context derivation the way it must to cross the
// singleflight's detached-context boundary.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := IDFrom(ctx); got != "" {
		t.Fatalf("IDFrom(background) = %q", got)
	}
	if got := IDFrom(WithID(ctx, "")); got != "" {
		t.Fatalf("empty WithID attached an id: %q", got)
	}
	ctx = WithID(ctx, "abc123")
	if got := IDFrom(ctx); got != "abc123" {
		t.Fatalf("IDFrom = %q", got)
	}
	child, cancel := context.WithTimeout(ctx, time.Hour)
	defer cancel()
	if got := IDFrom(child); got != "abc123" {
		t.Fatalf("IDFrom(derived) = %q", got)
	}
}
