// Package load is the load harness: it drives a figuresd fleet with a
// configurable traffic mix at a target rate and reports the latency
// distributions — the instrument every performance claim about the
// serving stack is judged with. `figures load` is its CLI front end;
// CI's load-smoke gate and the committed BENCH_load.json trajectory
// come from here.
//
// The generator is open-loop: request arrival times are fixed on a
// schedule (one every 1/QPS seconds) before any response comes back,
// so a slow server faces the arrival rate a real population would
// produce instead of a rate politely throttled by its own latency.
// Concurrency is still bounded — at most Concurrency requests are in
// flight, and when the bound is hit the dispatcher blocks, late
// arrivals fire immediately (catch-up), and the achieved-QPS figure
// honestly records the shortfall. The run loop is context-cancellable:
// cancelling stops dispatch, drains in-flight requests, and the
// partial summary is still returned.
//
// The mix is deterministic, not sampled: weights expand into a fixed
// rotation (whole:3,slice:1 → W W W S repeating), experiment ids and
// targets round-robin independently, so two runs of the same config
// issue the same request sequence — load results diff cleanly across
// PRs for the same reason experiment tables do.
//
// Latency is recorded client-side into the same log-bucket histograms
// (internal/hist) the servers keep per endpoint, and each target's
// /stats is scraped before and after the run — so coordinator/network
// overhead (client-side minus server-side quantiles) and cache
// behaviour (hit-rate delta) are separable in one summary.
package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/hist"
	"repro/internal/server"
	"repro/internal/trace"
)

// Request kinds: the serving paths a figuresd fleet exposes. The
// labels deliberately differ from the server's endpoint labels
// ("experiment"/"param"/"slice") only where the wire does: KindWhole
// hits the whole-experiment endpoint, KindParam a parameterized point
// of a family, KindSlice the prefix-slice one.
const (
	// KindWhole fetches a whole experiment table.
	KindWhole = "whole"
	// KindParam fetches one parameter point of an experiment family
	// (GET /experiments/{family}?k=...).
	KindParam = "param"
	// KindSlice fetches one prefix range of a shardable experiment's
	// exploration space.
	KindSlice = "slice"
)

// DefaultRequestTimeout bounds one load-harness request. Shorter than
// the server's execution timeout on purpose: a load test measures
// serving latency, and a request this far into the tail is better
// recorded as an error than waited out.
const DefaultRequestTimeout = 60 * time.Second

// MixEntry is one weighted request kind of the traffic mix.
type MixEntry struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

// ParseMix parses the -mix flag form "whole:3,slice:1" (a bare kind
// means weight 1) into mix entries. A kind listed more than once has
// its weights summed into one entry at its first position —
// "whole:2,slice:1,whole:1" is the rotation of "whole:3,slice:1", not
// two interleaved whole entries (which would silently skew the
// rotation's period).
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	index := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, hasWeight := strings.Cut(part, ":")
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("load: mix weight %q: want a positive integer", part)
			}
			weight = w
		}
		if kind != KindWhole && kind != KindParam && kind != KindSlice {
			return nil, fmt.Errorf("load: unknown mix kind %q (want %s, %s, or %s)", kind, KindWhole, KindParam, KindSlice)
		}
		if i, ok := index[kind]; ok {
			mix[i].Weight += weight
			continue
		}
		index[kind] = len(mix)
		mix = append(mix, MixEntry{Kind: kind, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	return mix, nil
}

// Options configures Run. Targets, QPS, Duration, Mix, and
// Experiments are required.
type Options struct {
	// Targets lists the fleet members to drive, as host:port addresses
	// or scheme-full URLs; requests round-robin across them.
	Targets []string
	// QPS is the target arrival rate across all targets.
	QPS float64
	// Duration is how long arrivals are generated; in-flight requests
	// are drained afterwards and still counted.
	Duration time.Duration
	// Warmup, when positive, runs the same mix unmeasured first — the
	// knob that separates cold-cache from warm-cache measurements
	// (there is no remote cache flush, so "cold" means a fresh store
	// and "warm" means warmed by this phase).
	Warmup time.Duration
	// Concurrency bounds in-flight requests; <= 0 means 4×GOMAXPROCS.
	Concurrency int
	// RequestTimeout bounds one request; <= 0 means
	// DefaultRequestTimeout. Ignored when Client is set.
	RequestTimeout time.Duration
	// Mix is the weighted request-kind rotation (see ParseMix).
	Mix []MixEntry
	// Experiments lists the experiment ids to spread whole-experiment
	// fetches over, optionally weighted ("E1:3"); slice fetches use
	// the shardable subset of the same list.
	Experiments []string
	// ParamPoints lists the parameter points KindParam requests cycle
	// through, as "family:k=3,i0=0" entries (the family id, a colon,
	// then the -param list form). Empty means one point per listed
	// parameterized family: its defaults spelled out explicitly — the
	// request exercises the validation and canonicalization path while
	// sharing the fixed experiment's cache entry.
	ParamPoints []string
	// Families maps ids to parameter schemas for param planning; nil
	// means the default experiments.Families().
	Families map[string]experiments.Family
	// SliceRanges is how many contiguous ranges each shardable
	// experiment's partition is carved into for slice requests; <= 0
	// means 4 (the two-worker fleet's natural carve).
	SliceRanges int
	// Format is the whole-experiment fetch format; empty means json,
	// the format the shard coordinator itself fetches.
	Format string
	// Shardables maps ids to partial-run seams for slice planning; nil
	// means the default experiments.Shardables().
	Shardables map[string]experiments.Shardable
	// Client overrides the HTTP client; nil means one with
	// RequestTimeout. Tests inject httptest clients here.
	Client *http.Client
	// Logf receives progress lines; nil means silent.
	Logf func(format string, args ...any)
}

// KindSummary is one request kind's share of a Summary.
type KindSummary struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Latency is the client-observed distribution: network and
	// coordinator overhead included, which is exactly what a user of
	// the fleet experiences.
	Latency hist.Snapshot `json:"latency"`
}

// TargetSummary is one fleet member's view of the run, scraped from
// its /stats before and after.
type TargetSummary struct {
	// Requests counts what this harness sent to the target (the
	// target's own counters include traffic from anyone).
	Requests int64 `json:"requests"`
	// CacheBefore/CacheAfter are the target's cache counters around
	// the measured phase (warmup included in Before's baseline);
	// absent when the target runs cacheless or the scrape failed.
	CacheBefore *server.StatsCache `json:"cache_before,omitempty"`
	CacheAfter  *server.StatsCache `json:"cache_after,omitempty"`
	// CacheHitRate is the hit rate over the run itself: the delta in
	// hits (whole + slice) over the delta in lookups. -1 when the
	// target saw no cache lookups or reports no cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Endpoints is the target's server-side latency distribution
	// after the run — subtracting these quantiles from the
	// client-side ones isolates coordinator/network overhead.
	Endpoints map[string]hist.Snapshot `json:"endpoints,omitempty"`
	// ScrapeError records a failed /stats scrape instead of failing
	// the whole run over an observability endpoint.
	ScrapeError string `json:"scrape_error,omitempty"`
}

// ErrorSample ties one failed request to the trace ID the harness
// minted for it, so a red run's failures can be looked up in the
// fleet's journals (/trace/{id}) instead of guessed at.
type ErrorSample struct {
	RequestID string `json:"request_id"`
	Error     string `json:"error"`
}

// TraceSample names one successful measured request: the trace ID the
// harness sent in the Repro-Request-ID header and where it went. The
// journal is a bounded ring, so the samples kept are the most recent
// ones — the IDs most likely to still be resident when a consumer
// (CI's load-smoke gate) fetches /trace/{id} after the run.
type TraceSample struct {
	RequestID string `json:"request_id"`
	Kind      string `json:"kind"`
	Target    string `json:"target"`
	Path      string `json:"path"`
}

// Summary is the machine-readable result of one load run — the
// BENCH_load.json schema.
type Summary struct {
	StartedAt   time.Time `json:"started_at"`
	TargetQPS   float64   `json:"target_qps"`
	AchievedQPS float64   `json:"achieved_qps"`
	// DurationSeconds is the configured arrival window;
	// ElapsedSeconds adds the drain tail (in-flight requests finishing
	// past the window). AchievedQPS is requests/elapsed.
	DurationSeconds float64 `json:"duration_s"`
	ElapsedSeconds  float64 `json:"elapsed_s"`
	WarmupSeconds   float64 `json:"warmup_s"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	// Cancelled reports an early stop via context cancellation; the
	// counts above cover what actually ran.
	Cancelled bool `json:"cancelled,omitempty"`
	// ErrorSamples holds the first few failures with their trace IDs —
	// enough to diagnose a red run without scrolling thousands of
	// lines, and enough to pull each failure's span from the fleet.
	ErrorSamples []ErrorSample `json:"error_samples,omitempty"`
	// TraceSamples holds the most recent few successful requests'
	// trace IDs, one handle per kind/target mix into the fleet's
	// journals.
	TraceSamples []TraceSample            `json:"trace_samples,omitempty"`
	Kinds        map[string]KindSummary   `json:"kinds"`
	Targets      map[string]TargetSummary `json:"targets"`
}

// plan is the deterministic request schedule: expanded kind rotation
// and per-kind round-robin paths.
type plan struct {
	kinds  []string // weight-expanded rotation
	whole  []string // request paths for whole fetches
	param  []string // request paths for parameterized fetches
	slice  []string // request paths for slice fetches
	wholeN atomic.Int64
	paramN atomic.Int64
	sliceN atomic.Int64
}

// next returns the kind, path, and per-kind sequence number of
// arrival i. The sequence number — not the arrival index — drives
// target round-robin: the mix rotation's period can share a factor
// with the fleet size (whole:3,slice:1 against two targets puts every
// slice on an odd arrival index), and indexing targets by arrival
// would then starve some workers of a whole kind.
func (p *plan) next(i int64) (kind, path string, seq int64) {
	kind = p.kinds[i%int64(len(p.kinds))]
	switch kind {
	case KindSlice:
		seq = p.sliceN.Add(1)
		return kind, p.slice[seq%int64(len(p.slice))], seq
	case KindParam:
		seq = p.paramN.Add(1)
		return kind, p.param[seq%int64(len(p.param))], seq
	}
	seq = p.wholeN.Add(1)
	return kind, p.whole[seq%int64(len(p.whole))], seq
}

// buildPlan validates the mix against the experiment list and
// precomputes every request path, carving each shardable experiment's
// partition once (Roots is deterministic, so every run of the same
// config requests the same ranges — the ranges a two-worker
// coordinator would carve when SliceRanges is 4).
func buildPlan(opts *Options) (*plan, error) {
	p := &plan{}
	for _, m := range opts.Mix {
		for i := 0; i < m.Weight; i++ {
			p.kinds = append(p.kinds, m.Kind)
		}
	}
	format := opts.Format
	if format == "" {
		format = "json"
	}
	if _, err := experiments.LookupEncoder(format); err != nil {
		return nil, err
	}
	shardables := opts.Shardables
	if shardables == nil {
		shardables = experiments.Shardables()
	}
	families := opts.Families
	if families == nil {
		families = experiments.Families()
	}
	needSlice, needParam := false, false
	for _, m := range opts.Mix {
		needSlice = needSlice || m.Kind == KindSlice
		needParam = needParam || m.Kind == KindParam
	}
	// Explicit param points are planned once, independent of the
	// experiment list; without them each listed parameterized family
	// contributes its default point (planned inside the loop below).
	if needParam && len(opts.ParamPoints) > 0 {
		for _, entry := range opts.ParamPoints {
			famID, list, ok := strings.Cut(entry, ":")
			if !ok || famID == "" {
				return nil, fmt.Errorf("load: param point %q: want family:name=value,...", entry)
			}
			fam, ok := families[famID]
			if !ok {
				return nil, fmt.Errorf("load: param point %q: %q is not a parameterized family", entry, famID)
			}
			ps, err := experiments.ParseParamList(fam, list)
			if err != nil {
				return nil, fmt.Errorf("load: param point %q: %w", entry, err)
			}
			p.param = append(p.param, "/experiments/"+famID+"?"+ps.Query()+"&format="+format)
		}
	}
	for _, entry := range opts.Experiments {
		id, weightStr, hasWeight := strings.Cut(entry, ":")
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("load: experiment weight %q: want a positive integer", entry)
			}
			weight = w
		}
		for i := 0; i < weight; i++ {
			p.whole = append(p.whole, "/experiments/"+id+"?format="+format)
		}
		if needParam && len(opts.ParamPoints) == 0 {
			if fam, ok := families[id]; ok {
				ps, err := experiments.DefaultParams(fam)
				if err != nil {
					return nil, fmt.Errorf("load: defaults for %s: %w", id, err)
				}
				for i := 0; i < weight; i++ {
					p.param = append(p.param, "/experiments/"+id+"?"+ps.Query()+"&format="+format)
				}
			}
		}
		sh, ok := shardables[id]
		if !ok || !needSlice {
			continue
		}
		roots, err := sh.Roots()
		if err != nil {
			return nil, fmt.Errorf("load: carving %s: %w", id, err)
		}
		n := opts.SliceRanges
		if n <= 0 {
			n = 4
		}
		if n > len(roots) {
			n = len(roots)
		}
		for i := 0; i < n; i++ {
			lo, hi := i*len(roots)/n, (i+1)*len(roots)/n
			if lo == hi {
				continue
			}
			prefixes := experiments.FormatPrefixes(roots[lo:hi])
			for w := 0; w < weight; w++ {
				p.slice = append(p.slice, "/experiments/"+id+"?prefixes="+prefixes)
			}
		}
	}
	if len(p.whole) == 0 {
		return nil, fmt.Errorf("load: no experiments to fetch")
	}
	if needSlice && len(p.slice) == 0 {
		return nil, fmt.Errorf("load: mix includes %q but no listed experiment is shardable", KindSlice)
	}
	if needParam && len(p.param) == 0 {
		return nil, fmt.Errorf("load: mix includes %q but no listed experiment is parameterized", KindParam)
	}
	return p, nil
}

// baseURL normalizes a target address to a scheme-full base URL.
func baseURL(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// normalizeTargets canonicalizes the target list at configuration
// time: every address trimmed and normalized to a scheme-full base
// URL, empties rejected, and duplicates rejected after normalization —
// "host:1" and "http://host:1/" are the same member, and letting both
// through would silently skew the round-robin (one server counted as
// two fleet slots) and double-scrape its /stats.
func normalizeTargets(targets []string) ([]string, error) {
	out := make([]string, 0, len(targets))
	seen := make(map[string]int, len(targets))
	for i, t := range targets {
		trimmed := strings.TrimSpace(t)
		if trimmed == "" {
			return nil, fmt.Errorf("load: target %d is empty", i+1)
		}
		base := baseURL(trimmed)
		u, err := url.Parse(base)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("load: target %q is not a valid address", t)
		}
		if j, ok := seen[base]; ok {
			return nil, fmt.Errorf("load: duplicate target %q (same as target %d after normalization)", t, j+1)
		}
		seen[base] = i
		out = append(out, base)
	}
	return out, nil
}

// harness is one run's mutable state.
type harness struct {
	opts    *Options
	plan    *plan
	client  *http.Client
	targets []string
	logf    func(format string, args ...any)

	kindLat  map[string]*hist.Histogram
	kindReqs map[string]*atomic.Int64
	kindErrs map[string]*atomic.Int64
	perTgt   []atomic.Int64

	errMu      sync.Mutex
	errSamples []ErrorSample

	traceMu      sync.Mutex
	traceSamples []TraceSample
	traceSeq     int
}

// sampleCap bounds both sample lists: error samples keep the first
// few failures (the start of an outage explains it best), trace
// samples keep the most recent few successes (the IDs still resident
// in the fleet's bounded journals).
const sampleCap = 5

// Run drives the configured load and returns the summary. Errors are
// configuration mistakes only; request failures are counted in the
// summary instead. Cancelling ctx stops dispatch early, drains, and
// returns the partial summary with Cancelled set.
func Run(ctx context.Context, opts Options) (*Summary, error) {
	if len(opts.Targets) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	targets, err := normalizeTargets(opts.Targets)
	if err != nil {
		return nil, err
	}
	if opts.QPS <= 0 {
		return nil, fmt.Errorf("load: qps must be positive")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be positive")
	}
	if len(opts.Experiments) == 0 {
		return nil, fmt.Errorf("load: no experiments")
	}
	if len(opts.Mix) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	p, err := buildPlan(&opts)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		timeout := opts.RequestTimeout
		if timeout <= 0 {
			timeout = DefaultRequestTimeout
		}
		client = &http.Client{Timeout: timeout}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &harness{
		opts:     &opts,
		plan:     p,
		client:   client,
		targets:  targets,
		logf:     logf,
		kindLat:  map[string]*hist.Histogram{KindWhole: hist.New(), KindParam: hist.New(), KindSlice: hist.New()},
		kindReqs: map[string]*atomic.Int64{KindWhole: {}, KindParam: {}, KindSlice: {}},
		kindErrs: map[string]*atomic.Int64{KindWhole: {}, KindParam: {}, KindSlice: {}},
		perTgt:   make([]atomic.Int64, len(targets)),
	}

	if opts.Warmup > 0 {
		logf("load: warming up for %v", opts.Warmup)
		h.generate(ctx, opts.Warmup, false)
	}

	before := h.scrapeAll()
	started := time.Now()
	cancelled := h.generate(ctx, opts.Duration, true)
	elapsed := time.Since(started)
	after := h.scrapeAll()

	sum := &Summary{
		StartedAt:       started,
		TargetQPS:       opts.QPS,
		DurationSeconds: opts.Duration.Seconds(),
		ElapsedSeconds:  elapsed.Seconds(),
		WarmupSeconds:   opts.Warmup.Seconds(),
		Cancelled:       cancelled,
		ErrorSamples:    h.errSamples,
		TraceSamples:    h.traceSamples,
		Kinds:           map[string]KindSummary{},
		Targets:         map[string]TargetSummary{},
	}
	for kind, lat := range h.kindLat {
		reqs := h.kindReqs[kind].Load()
		if reqs == 0 {
			continue
		}
		sum.Kinds[kind] = KindSummary{
			Requests: reqs,
			Errors:   h.kindErrs[kind].Load(),
			Latency:  lat.Snapshot(),
		}
		sum.Requests += reqs
		sum.Errors += h.kindErrs[kind].Load()
	}
	if elapsed > 0 {
		sum.AchievedQPS = float64(sum.Requests) / elapsed.Seconds()
	}
	for i, base := range h.targets {
		ts := TargetSummary{Requests: h.perTgt[i].Load(), CacheHitRate: -1}
		b, a := before[i], after[i]
		if a.err != nil {
			ts.ScrapeError = a.err.Error()
		} else {
			ts.Endpoints = a.stats.Endpoints
			ts.CacheAfter = a.stats.Cache
		}
		if b.err == nil {
			ts.CacheBefore = b.stats.Cache
		}
		if ts.CacheBefore != nil && ts.CacheAfter != nil {
			hits := (ts.CacheAfter.Hits + ts.CacheAfter.SliceHits) - (ts.CacheBefore.Hits + ts.CacheBefore.SliceHits)
			lookups := hits + (ts.CacheAfter.Misses + ts.CacheAfter.SliceMisses) -
				(ts.CacheBefore.Misses + ts.CacheBefore.SliceMisses)
			if lookups > 0 {
				ts.CacheHitRate = float64(hits) / float64(lookups)
			}
		}
		sum.Targets[base] = ts
	}
	return sum, nil
}

// generate runs one phase of open-loop arrivals for the given window,
// recording measurements only when measured is true. It returns
// whether the phase was cut short by ctx.
func (h *harness) generate(ctx context.Context, window time.Duration, measured bool) (cancelled bool) {
	concurrency := h.opts.Concurrency
	if concurrency <= 0 {
		concurrency = 4 * runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, concurrency)
	interval := time.Duration(float64(time.Second) / h.opts.QPS)
	start := time.Now()
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	var wg sync.WaitGroup

dispatch:
	for i := int64(0); ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if !next.Before(start.Add(window)) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				cancelled = true
				break dispatch
			}
		}
		// Late arrivals (the loop running behind the schedule, or a
		// full semaphore) fire as soon as they can — open-loop catch-up
		// — but never past the window.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cancelled = true
			break dispatch
		case <-deadline.C:
			break dispatch
		}
		kind, path, seq := h.plan.next(i)
		tgtIdx := int(seq % int64(len(h.targets)))
		target := h.targets[tgtIdx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			h.do(kind, target, tgtIdx, path, measured)
		}()
	}
	wg.Wait()
	return cancelled
}

// do performs one request and records its outcome. The measured
// latency spans request start to body fully read — the user-visible
// cost of the response, not just its first byte. Every request
// carries a freshly minted trace ID, so any request in the run —
// failed or not — can be looked up in the target's journal while it
// stays resident.
func (h *harness) do(kind, target string, tgtIdx int, path string, measured bool) {
	reqID := trace.NewID()
	start := time.Now()
	err := h.get(reqID, target+path)
	d := time.Since(start)
	if !measured {
		return
	}
	h.kindReqs[kind].Add(1)
	h.perTgt[tgtIdx].Add(1)
	h.kindLat[kind].Record(d)
	if err != nil {
		h.kindErrs[kind].Add(1)
		h.errMu.Lock()
		if len(h.errSamples) < sampleCap {
			h.errSamples = append(h.errSamples, ErrorSample{RequestID: reqID, Error: err.Error()})
		}
		h.errMu.Unlock()
		h.logf("load: %s: %v (trace %s)", path, err, reqID)
		return
	}
	h.traceMu.Lock()
	s := TraceSample{RequestID: reqID, Kind: kind, Target: target, Path: path}
	if len(h.traceSamples) < sampleCap {
		h.traceSamples = append(h.traceSamples, s)
	} else {
		h.traceSamples[h.traceSeq%sampleCap] = s
	}
	h.traceSeq++
	h.traceMu.Unlock()
}

// get fetches one URL under the given trace ID, draining the body;
// any transport error or non-200 status is a request failure.
func (h *harness) get(reqID, url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(trace.Header, reqID)
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("GET %s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// scrape is one target's /stats snapshot or the error that prevented
// it.
type scrape struct {
	stats server.StatsResponse
	err   error
}

// scrapeAll fetches every target's /stats concurrently, best-effort.
func (h *harness) scrapeAll() []scrape {
	out := make([]scrape, len(h.targets))
	var wg sync.WaitGroup
	for i, base := range h.targets {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			resp, err := h.client.Get(base + "/stats")
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out[i].err = fmt.Errorf("GET %s/stats: status %d", base, resp.StatusCode)
				return
			}
			out[i].err = json.NewDecoder(resp.Body).Decode(&out[i].stats)
		}(i, base)
	}
	wg.Wait()
	return out
}
