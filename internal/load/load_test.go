package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/trace"
)

// fakeShardables returns a shardable seam whose partition has four
// roots — enough for the planner to carve slice request paths without
// running any real exploration.
func fakeShardables() map[string]experiments.Shardable {
	return map[string]experiments.Shardable{
		"S1": {Roots: func() ([][]int, error) {
			return [][]int{{0}, {1}, {2}, {3}}, nil
		}},
	}
}

// fakeFleet is an httptest figuresd: instant 200s for whole and slice
// fetches, counting each kind, with a /stats body whose cache
// counters advance between scrapes.
type fakeFleet struct {
	whole, slice atomic.Int64
	scrapes      atomic.Int64
	traced       atomic.Int64 // experiment requests carrying a trace header
	failID       string
}

func (f *fakeFleet) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(trace.Header) != "" {
			f.traced.Add(1)
		}
		if r.PathValue("id") == f.failID {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("prefixes") != "" {
			f.slice.Add(1)
		} else {
			f.whole.Add(1)
		}
		fmt.Fprint(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		n := f.scrapes.Add(1)
		st := server.StatsResponse{Requests: f.whole.Load() + f.slice.Load()}
		if n > 1 { // later scrapes report cache traffic
			st.Cache = &server.StatsCache{Hits: 8, Misses: 2}
		} else {
			st.Cache = &server.StatsCache{}
		}
		json.NewEncoder(w).Encode(st)
	})
	return mux
}

// TestMixWeightingAndPacing: the deterministic mix rotation issues
// whole and slice requests in exactly the configured ratio, and the
// open-loop pacer stays within tolerance of target QPS against an
// instant server — the arrival count is bounded above by the schedule
// and below by a generous slow-CI floor.
func TestMixWeightingAndPacing(t *testing.T) {
	fleet := &fakeFleet{}
	ts := httptest.NewServer(fleet.handler())
	defer ts.Close()

	const qps, window = 200.0, 600 * time.Millisecond
	sum, err := Run(context.Background(), Options{
		Targets:     []string{ts.URL},
		QPS:         qps,
		Duration:    window,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 3}, {Kind: KindSlice, Weight: 1}},
		Experiments: []string{"E1", "S1"},
		Shardables:  fakeShardables(),
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	maxArrivals := int64(qps * window.Seconds())
	if sum.Requests > maxArrivals || sum.Requests < maxArrivals/2 {
		t.Errorf("requests = %d, want within (%d, %d]", sum.Requests, maxArrivals/2, maxArrivals)
	}
	if sum.Errors != 0 {
		t.Fatalf("errors = %d (%v)", sum.Errors, sum.ErrorSamples)
	}
	if sum.AchievedQPS <= 0 {
		t.Errorf("achieved_qps = %v", sum.AchievedQPS)
	}
	whole, slice := sum.Kinds[KindWhole], sum.Kinds[KindSlice]
	if whole.Requests+slice.Requests != sum.Requests {
		t.Errorf("kind counts %d+%d don't sum to %d", whole.Requests, slice.Requests, sum.Requests)
	}
	// The rotation is W W W S: across any prefix the ratio is exact to
	// within one rotation's worth of requests.
	if diff := whole.Requests - 3*slice.Requests; diff < -3 || diff > 3 {
		t.Errorf("mix ratio off: whole=%d slice=%d", whole.Requests, slice.Requests)
	}
	if got := fleet.whole.Load() + fleet.slice.Load(); got != sum.Requests {
		t.Errorf("server saw %d requests, summary says %d", got, sum.Requests)
	}
	// Client-side latency histograms recorded every request.
	if whole.Latency.Count != whole.Requests || whole.Latency.P50Millis < 0 {
		t.Errorf("whole latency = %+v", whole.Latency)
	}
	if whole.Latency.P99Millis < whole.Latency.P50Millis {
		t.Errorf("quantiles out of order: %+v", whole.Latency)
	}
}

// TestErrorPropagation: request failures (HTTP 500) are counted per
// kind and sampled, never silently dropped — and they don't abort the
// run.
func TestErrorPropagation(t *testing.T) {
	fleet := &fakeFleet{failID: "E1"}
	ts := httptest.NewServer(fleet.handler())
	defer ts.Close()

	sum, err := Run(context.Background(), Options{
		Targets:     []string{ts.URL},
		QPS:         100,
		Duration:    200 * time.Millisecond,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}},
		Experiments: []string{"E1"},
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if sum.Errors != sum.Requests {
		t.Errorf("errors = %d, want every request (%d)", sum.Errors, sum.Requests)
	}
	if sum.Kinds[KindWhole].Errors != sum.Errors {
		t.Errorf("kind errors = %d, want %d", sum.Kinds[KindWhole].Errors, sum.Errors)
	}
	if len(sum.ErrorSamples) == 0 || !strings.Contains(sum.ErrorSamples[0].Error, "status 500") {
		t.Errorf("error samples = %v", sum.ErrorSamples)
	}
	// Every failure is addressable in the fleet's journals: the sample
	// carries the trace ID the harness sent with the request.
	for _, s := range sum.ErrorSamples {
		if s.RequestID == "" {
			t.Errorf("error sample without a request id: %+v", s)
		}
	}
	// An all-errors run has no successful requests to sample traces of.
	if len(sum.TraceSamples) != 0 {
		t.Errorf("trace samples on an all-errors run: %+v", sum.TraceSamples)
	}
}

// TestTraceIDsOnWire: every request the harness issues carries a
// Repro-Request-ID header, and a healthy run's summary samples a few
// of them — the handles CI uses to fetch /trace/{id} after the run.
func TestTraceIDsOnWire(t *testing.T) {
	fleet := &fakeFleet{}
	ts := httptest.NewServer(fleet.handler())
	defer ts.Close()

	sum, err := Run(context.Background(), Options{
		Targets:     []string{ts.URL},
		QPS:         100,
		Duration:    200 * time.Millisecond,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}},
		Experiments: []string{"E1"},
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleet.traced.Load(); got != sum.Requests {
		t.Errorf("%d of %d requests carried a trace header", got, sum.Requests)
	}
	if len(sum.TraceSamples) == 0 {
		t.Fatal("healthy run produced no trace samples")
	}
	if want := min(int(sum.Requests), sampleCap); len(sum.TraceSamples) != want {
		t.Errorf("trace samples = %d, want %d", len(sum.TraceSamples), want)
	}
	for _, s := range sum.TraceSamples {
		if s.RequestID == "" || s.Kind != KindWhole || s.Target != ts.URL || s.Path == "" {
			t.Errorf("malformed trace sample: %+v", s)
		}
	}
}

// TestStatsScrape: each target's /stats is scraped before and after
// the measured phase, and the cache hit rate over the run is computed
// from the deltas.
func TestStatsScrape(t *testing.T) {
	fleet := &fakeFleet{}
	ts := httptest.NewServer(fleet.handler())
	defer ts.Close()

	sum, err := Run(context.Background(), Options{
		Targets:     []string{ts.URL},
		QPS:         50,
		Duration:    100 * time.Millisecond,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}},
		Experiments: []string{"E1"},
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := sum.Targets[ts.URL]
	if !ok {
		t.Fatalf("targets = %+v, want %s", sum.Targets, ts.URL)
	}
	if tgt.ScrapeError != "" {
		t.Fatalf("scrape error: %s", tgt.ScrapeError)
	}
	if tgt.Requests != sum.Requests {
		t.Errorf("target requests = %d, want %d", tgt.Requests, sum.Requests)
	}
	if tgt.CacheBefore == nil || tgt.CacheAfter == nil {
		t.Fatalf("cache snapshots missing: %+v", tgt)
	}
	// before: 0 hits / 0 misses; after: 8/2 → run hit rate 0.8.
	if tgt.CacheHitRate != 0.8 {
		t.Errorf("cache_hit_rate = %v, want 0.8", tgt.CacheHitRate)
	}
}

// TestCancellation: cancelling the context stops dispatch long before
// the configured duration and still returns a (partial) summary.
func TestCancellation(t *testing.T) {
	fleet := &fakeFleet{}
	ts := httptest.NewServer(fleet.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	sum, err := Run(ctx, Options{
		Targets:     []string{ts.URL},
		QPS:         20,
		Duration:    30 * time.Second,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}},
		Experiments: []string{"E1"},
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if !sum.Cancelled {
		t.Error("summary not marked cancelled")
	}
}

// TestConfigErrors: misconfiguration fails Run up front instead of
// producing a meaningless summary.
func TestConfigErrors(t *testing.T) {
	base := Options{
		Targets:     []string{"localhost:1"},
		QPS:         10,
		Duration:    time.Second,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}},
		Experiments: []string{"E1"},
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no targets", func(o *Options) { o.Targets = nil }},
		{"zero qps", func(o *Options) { o.QPS = 0 }},
		{"zero duration", func(o *Options) { o.Duration = 0 }},
		{"no experiments", func(o *Options) { o.Experiments = nil }},
		{"empty mix", func(o *Options) { o.Mix = nil }},
		{"bad format", func(o *Options) { o.Format = "xml" }},
		{"bad experiment weight", func(o *Options) { o.Experiments = []string{"E1:zero"} }},
		{"slice without shardables", func(o *Options) {
			o.Mix = []MixEntry{{Kind: KindSlice, Weight: 1}}
			o.Shardables = map[string]experiments.Shardable{}
		}},
	}
	for _, tc := range cases {
		opts := base
		tc.mutate(&opts)
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("%s: Run succeeded", tc.name)
		}
	}
}

// TestParseMix: the flag syntax round-trips weights and rejects
// garbage.
func TestParseMix(t *testing.T) {
	mix, err := ParseMix("whole:3, slice:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{{Kind: KindWhole, Weight: 3}, {Kind: KindSlice, Weight: 1}}
	if len(mix) != 2 || mix[0] != want[0] || mix[1] != want[1] {
		t.Errorf("mix = %+v, want %+v", mix, want)
	}
	if mix, err := ParseMix("whole"); err != nil || mix[0].Weight != 1 {
		t.Errorf("bare kind: %+v, %v", mix, err)
	}
	for _, bad := range []string{"", "bogus:1", "whole:0", "whole:-2", "whole:x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded", bad)
		}
	}
}
