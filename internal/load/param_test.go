package load

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// loadFamilies returns a synthetic parameterized family for planner
// tests: one integer parameter x, default 1.
func loadFamilies(id string) map[string]experiments.Family {
	return map[string]experiments.Family{
		id: {
			ID: id,
			Params: []experiments.ParamSpec{
				{Name: "x", Kind: experiments.ParamInt, Default: "1", Min: 0, Max: 9},
			},
			Run: func(ps experiments.ParamSet) (*experiments.Table, error) {
				return &experiments.Table{ID: id}, nil
			},
		},
	}
}

// TestParseMixMergesDuplicates: a repeated kind folds its weights into
// the first occurrence instead of erroring or double-rotating — so
// "whole:2,slice:1,whole:3" is the 5:1 mix the operator summed up.
func TestParseMixMergesDuplicates(t *testing.T) {
	mix, err := ParseMix("whole:2,slice:1,whole:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{{Kind: KindWhole, Weight: 5}, {Kind: KindSlice, Weight: 1}}
	if len(mix) != 2 || mix[0] != want[0] || mix[1] != want[1] {
		t.Fatalf("mix = %+v, want %+v", mix, want)
	}
	mix, err = ParseMix("param:1,whole:1,param:2")
	if err != nil {
		t.Fatal(err)
	}
	want = []MixEntry{{Kind: KindParam, Weight: 3}, {Kind: KindWhole, Weight: 1}}
	if len(mix) != 2 || mix[0] != want[0] || mix[1] != want[1] {
		t.Fatalf("mix = %+v, want %+v", mix, want)
	}
}

// TestMixRotationWithParamKind pins the deterministic rotation across
// all three kinds: arrivals walk the weighted kind cycle in order, and
// each kind's paths cycle independently — the same config always
// issues the same request sequence.
func TestMixRotationWithParamKind(t *testing.T) {
	opts := &Options{
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 2}, {Kind: KindParam, Weight: 1}},
		Experiments: []string{"P1"},
		Families:    loadFamilies("P1"),
		ParamPoints: []string{"P1:x=3", "P1:x=4"},
	}
	p, err := buildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var paramPaths []string
	for i := int64(0); i < 9; i++ {
		kind, path, _ := p.next(i)
		counts[kind]++
		if kind == KindParam {
			paramPaths = append(paramPaths, path)
		}
	}
	if counts[KindWhole] != 6 || counts[KindParam] != 3 {
		t.Fatalf("rotation counts = %v, want whole 6, param 3", counts)
	}
	// Two planned points, three param arrivals: the rotation wraps in
	// plan order.
	for i, path := range paramPaths {
		wantX := []string{"4", "3", "4"}[i%3] // paramN pre-increments, so the cycle starts at the second point
		if !strings.Contains(path, "x="+wantX) {
			t.Fatalf("param arrival %d hit %q, want x=%s", i, path, wantX)
		}
	}
}

// TestBuildPlanParamDefaults: with no explicit points, every listed
// parameterized family contributes its default point, spelled out.
func TestBuildPlanParamDefaults(t *testing.T) {
	opts := &Options{
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}, {Kind: KindParam, Weight: 1}},
		Experiments: []string{"P1", "E9"},
		Families:    loadFamilies("P1"),
	}
	p, err := buildPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.param) != 1 || !strings.Contains(p.param[0], "/experiments/P1?x=1") {
		t.Fatalf("param paths = %v, want P1's spelled-out default", p.param)
	}
}

func TestBuildPlanParamErrors(t *testing.T) {
	base := func() *Options {
		return &Options{
			Mix:         []MixEntry{{Kind: KindParam, Weight: 1}},
			Experiments: []string{"P1"},
			Families:    loadFamilies("P1"),
		}
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"entry without family", func(o *Options) { o.ParamPoints = []string{"x=3"} }},
		{"unknown family", func(o *Options) { o.ParamPoints = []string{"Q9:x=3"} }},
		{"bad point", func(o *Options) { o.ParamPoints = []string{"P1:x=99"} }},
		{"no parameterized experiment", func(o *Options) { o.Experiments = []string{"E9"} }},
	}
	for _, tc := range cases {
		opts := base()
		tc.mutate(opts)
		if _, err := buildPlan(opts); err == nil {
			t.Errorf("%s: buildPlan succeeded", tc.name)
		}
	}
}

func TestNormalizeTargets(t *testing.T) {
	got, err := normalizeTargets([]string{" localhost:8080 ", "https://h:1/"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://localhost:8080", "https://h:1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("normalized = %v, want %v", got, want)
	}
	cases := []struct {
		name    string
		targets []string
		wantErr string
	}{
		{"empty target", []string{"localhost:1", "  "}, "is empty"},
		{"no host", []string{"//"}, "not a valid address"},
		{"unparseable", []string{"ht tp"}, "not a valid address"},
		{"duplicate after normalization", []string{"localhost:1", "http://localhost:1/"}, "duplicate target"},
	}
	for _, tc := range cases {
		if _, err := normalizeTargets(tc.targets); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestParamRequestsOnWire: a param-mix run sends the planned explicit
// queries to the fleet and reports the kind in the summary.
func TestParamRequestsOnWire(t *testing.T) {
	var whole, param atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/experiments/") {
			if r.URL.Query().Get("x") != "" {
				param.Add(1)
			} else {
				whole.Add(1)
			}
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()
	sum, err := Run(context.Background(), Options{
		Targets:     []string{ts.URL},
		QPS:         200,
		Duration:    300 * time.Millisecond,
		Mix:         []MixEntry{{Kind: KindWhole, Weight: 1}, {Kind: KindParam, Weight: 1}},
		Experiments: []string{"P1"},
		Families:    loadFamilies("P1"),
		ParamPoints: []string{"P1:x=2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("summary reported %d errors", sum.Errors)
	}
	if param.Load() == 0 || whole.Load() == 0 {
		t.Fatalf("wire counts: whole %d, param %d — both kinds must flow", whole.Load(), param.Load())
	}
	k, ok := sum.Kinds[KindParam]
	if !ok || k.Requests != param.Load() {
		t.Fatalf("summary kind %q = %+v, wire count %d", KindParam, k, param.Load())
	}
}
