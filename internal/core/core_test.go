package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/task"
)

func TestClassifyFigure1(t *testing.T) {
	tests := []struct {
		n, t      int
		regime    Regime
		universal bool
		open      bool
		bits      int
	}{
		{2, 1, RegimeTwoProc, true, false, 1},
		{3, 1, RegimeMinority, true, false, 6},
		{5, 2, RegimeMinority, true, false, 9},
		{7, 3, RegimeMinority, true, false, 12},
		{4, 2, RegimeHalf, false, true, 0},
		{6, 3, RegimeHalf, false, true, 0},
		{3, 2, RegimeMajority, false, false, 0},
		{4, 3, RegimeMajority, false, false, 0},
		{7, 4, RegimeMajority, false, false, 0},
		{8, 7, RegimeMajority, false, false, 0},
	}
	for _, tc := range tests {
		v, err := Classify(Model{N: tc.n, T: tc.t})
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if v.Regime != tc.regime || v.Universal != tc.universal || v.Open != tc.open || v.SufficientBits != tc.bits {
			t.Errorf("n=%d t=%d: got %+v", tc.n, tc.t, v)
		}
	}
}

func TestClassifyRejectsBadModels(t *testing.T) {
	for _, m := range []Model{{N: 1, T: 1}, {N: 3, T: 0}, {N: 3, T: 3}} {
		if _, err := Classify(m); err == nil {
			t.Errorf("Classify(%+v) accepted", m)
		}
	}
}

func TestClassifyWaitFreeNotUniversalBeyondTwo(t *testing.T) {
	// The headline: wait-free with n > 2 is never universal; n = 2 is.
	for n := 3; n <= 10; n++ {
		v, err := Classify(Model{N: n, T: n - 1})
		if err != nil {
			t.Fatal(err)
		}
		if v.Universal {
			t.Errorf("n=%d wait-free classified universal", n)
		}
	}
	v, err := Classify(Model{N: 2, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Universal || !v.Model.WaitFree() {
		t.Error("n=2 wait-free should be universal")
	}
}

func TestEpsAgreement1BitFacade(t *testing.T) {
	run, err := EpsAgreement1Bit(3, [2]uint64{0, 1}, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Check(3); err != nil {
		t.Fatal(err)
	}
}

func TestFastEpsAgreementFacade(t *testing.T) {
	fa, err := FastEpsAgreement(4)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fa.Run([2]uint64{1, 0}, sched.NewRandom(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Check(fr); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTask2ProcFacade(t *testing.T) {
	tk := task.DiscreteEpsAgreement(4)
	sys, err := SolveTask2Proc(tk, task.Pair{0, 1}, sched.NewRandom(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := task.CheckRun(tk, task.Pair{0, 1}, sys); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTask2ProcRejectsConsensus(t *testing.T) {
	if _, err := SolveTask2Proc(task.BinaryConsensus(), task.Pair{0, 1}, sched.NewRandom(0)); err == nil {
		t.Fatal("consensus accepted")
	}
}

func TestSolveMinorityFacade(t *testing.T) {
	inputs := []int64{0, 1, 0}
	pr, err := SolveMinority(3, 1, 2, inputs, sched.NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	if pr.RegisterBits != 6 {
		t.Fatalf("register bits = %d", pr.RegisterBits)
	}
	if err := pr.Check(inputs, 2); err != nil {
		t.Fatal(err)
	}
}
