// Package core is the public facade of the reproduction: the paper's
// model parameters, the Figure 1 universality classification, and
// convenience entry points into the constructions of Theorems 1.2-1.4.
package core

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/labelling"
	"repro/internal/msgpass"
	"repro/internal/sched"
	"repro/internal/task"
)

// Model describes a t-resilient n-process read/write shared-memory system.
type Model struct {
	// N is the number of processes (N ≥ 2).
	N int
	// T is the resilience: at most T processes crash (1 ≤ T ≤ N-1).
	// T = N-1 is the wait-free model.
	T int
}

// Validate checks the parameter ranges.
func (m Model) Validate() error {
	if m.N < 2 {
		return fmt.Errorf("core: need n ≥ 2, got %d", m.N)
	}
	if m.T < 1 || m.T > m.N-1 {
		return fmt.Errorf("core: need 1 ≤ t ≤ n-1, got t=%d n=%d", m.T, m.N)
	}
	return nil
}

// WaitFree reports t = n-1.
func (m Model) WaitFree() bool { return m.T == m.N-1 }

// Regime is a region of Figure 1.
type Regime int

// The regimes of Figure 1.
const (
	// RegimeTwoProc: n = 2, where 1-resilient and wait-free computing
	// coincide and 1-bit registers are universal (Theorem 1.2).
	RegimeTwoProc Regime = iota + 1
	// RegimeMinority: t < n/2, where registers of O(t) bits are
	// universal (Theorem 1.3).
	RegimeMinority
	// RegimeHalf: t = n/2, left open by the paper.
	RegimeHalf
	// RegimeMajority: t > n/2 (including wait-free with n > 2), where
	// bounded registers are not universal for any bound f(n)
	// (Theorem 1.1).
	RegimeMajority
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeTwoProc:
		return "two-process"
	case RegimeMinority:
		return "minority-failures"
	case RegimeHalf:
		return "half-failures (open)"
	case RegimeMajority:
		return "majority-failures"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Verdict is the classification of a model in Figure 1.
type Verdict struct {
	Model  Model
	Regime Regime
	// Universal reports whether bounded registers are universal: every
	// task solvable with unbounded registers stays solvable. Open = not
	// decided by the paper (t = n/2).
	Universal bool
	Open      bool
	// SufficientBits is a register width sufficient for universality
	// (as realized by this repository's constructions): 1 for n = 2,
	// 3(t+1) for t < n/2. 0 when not universal or open.
	SufficientBits int
	// Theorem names the paper result that decides the regime.
	Theorem string
}

// Classify places the model in Figure 1.
func Classify(m Model) (Verdict, error) {
	if err := m.Validate(); err != nil {
		return Verdict{}, err
	}
	v := Verdict{Model: m}
	switch {
	case m.N == 2:
		v.Regime = RegimeTwoProc
		v.Universal = true
		v.SufficientBits = 1
		v.Theorem = "Theorem 1.2"
	case 2*m.T < m.N:
		v.Regime = RegimeMinority
		v.Universal = true
		v.SufficientBits = 3 * (m.T + 1)
		v.Theorem = "Theorem 1.3"
	case 2*m.T == m.N:
		v.Regime = RegimeHalf
		v.Open = true
		v.Theorem = "open problem (§9)"
	default:
		v.Regime = RegimeMajority
		v.Universal = false
		v.Theorem = "Theorem 1.1"
	}
	return v, nil
}

// EpsAgreement1Bit solves binary 1/(2k+1)-agreement for two processes on
// 1-bit registers (Algorithm 1) under the given scheduler.
func EpsAgreement1Bit(k int, inputs [2]uint64, scheduler sched.Scheduler) (*agreement.Alg1Run, error) {
	return agreement.RunAlg1(k, inputs, scheduler)
}

// FastEpsAgreement solves binary ε-agreement for two processes on 6-bit
// registers with O(log 1/ε) steps (Theorem 8.1). r is the number of
// simulated rounds; the precision is at least 1/2^r.
func FastEpsAgreement(r int) (*labelling.FastAgreement, error) {
	return labelling.NewFastAgreement(r)
}

// SolveTask2Proc solves an arbitrary 2-process wait-free solvable task
// with 3-bit registers (Theorem 1.2 / Algorithm 2). It returns an error
// if the task fails the Biran-Moran-Zaks solvability conditions.
func SolveTask2Proc(tk *task.Task, input task.Pair, scheduler sched.Scheduler) (*task.Alg2System, error) {
	sub, ok := tk.FindSolvableSubset()
	if !ok {
		return nil, fmt.Errorf("core: task %s is not wait-free solvable (BMZ conditions fail)", tk.Name)
	}
	plan, err := tk.BuildPlan(sub)
	if err != nil {
		return nil, err
	}
	sys, _, err := task.RunAlg2(plan, input, scheduler)
	return sys, err
}

// SolveMinority solves binary 1/2^rounds-agreement for n processes with
// t < n/2 failures on registers of 3(t+1) bits, through the full
// Theorem 1.3 pipeline (ABD over the t-augmented ring with
// alternating-bit links).
func SolveMinority(n, t, rounds int, inputs []int64, scheduler sched.Scheduler) (*msgpass.PipelineResult, error) {
	return msgpass.RunPipeline(msgpass.PipelineConfig{
		Stage: msgpass.StageBitRing, N: n, T: t, Rounds: rounds,
		Inputs: inputs, Scheduler: scheduler,
	})
}
