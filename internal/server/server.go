// Package server is the HTTP serving layer over the experiment engine:
// cmd/figuresd mounts it as a daemon. It serves the experiment index,
// individual experiment tables in every encoder format, a health
// probe, and an operational /stats snapshot (cache hit/miss/eviction
// counters, per-experiment latency with full log-bucket histograms,
// per-endpoint p50/p95/p99 — the distributions internal/load's
// harness measures against — and the in-flight count internal/shard
// ranks workers by), with three protections a CLI run does not need:
//
//   - singleflight deduplication: N concurrent requests for a cold
//     experiment trigger exactly one execution, and all N responses
//     are rendered from the one result;
//   - a per-execution timeout detached from the request context, so a
//     client disconnect cannot poison the result other waiters share;
//   - optional cache backing (internal/cache): warm experiments are
//     served from disk without executing anything.
//
// Execution is pluggable through Options.Backend: cmd/figuresd -peers
// installs a shard.Coordinator there, turning one daemon into the
// front door of a fleet while keeping every serving-layer guarantee.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/hist"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefaultTimeout bounds one experiment execution when Options.Timeout
// is zero — generous because the exhaustive explorations are the slow
// tail, and a timeout that fires mid-exploration wastes the work.
const DefaultTimeout = 2 * time.Minute

// RegistryVersionHeader carries experiments.RegistryVersion on every
// experiment and slice response, so a shard coordinator can refuse to
// merge bytes from a worker serving a different experiment generation
// (the /stats and /experiments bodies expose it too, but the header
// travels with the very response being merged).
const RegistryVersionHeader = "Repro-Registry-Version"

// Options configures New. The zero value serves the real registry
// with no cache and DefaultTimeout.
type Options struct {
	// Registry overrides the experiment registry; nil means
	// experiments.Registry().
	Registry map[string]experiments.Runner
	// Cache, when non-nil, backs every execution (see
	// experiments.Options.Cache). When it is an artifact store
	// (experiments.SliceCache), prefix-slice requests are served from
	// and stored into it too.
	Cache experiments.Cache
	// Timeout bounds each experiment execution; 0 means
	// DefaultTimeout, negative means no limit.
	Timeout time.Duration
	// Backend, when non-nil, replaces the in-process engine for
	// experiment execution: the singleflight, detached timeout (via
	// the context's deadline), and cooldown still apply, but the
	// result comes from the backend — cmd/figuresd -peers wires a
	// shard coordinator in here so one daemon fronts a fleet. A
	// backend owns its own caching; Options.Cache is not consulted
	// around it. Prefix-slice requests (?prefixes=) never go through
	// the backend: a slice is this worker's own share of a space
	// someone upstream already carved, so re-delegating it would
	// bounce work around the fleet instead of doing it.
	Backend func(ctx context.Context, id string) (experiments.Result, error)
	// ParamBackend, when non-nil, replaces in-process evaluation of
	// parameterized points (GET /experiments/{family}?k=...) the way
	// Backend replaces fixed experiments: cmd/figuresd -peers wires
	// shard.Coordinator.RunParam in here so non-default points fan out
	// across the fleet too. Default-point requests never reach it —
	// they alias the fixed experiment and follow Backend.
	ParamBackend func(ctx context.Context, id string, ps experiments.ParamSet) (experiments.Result, error)
	// Shardables maps prefix-shardable experiment ids to their
	// partial-run seams, enabling GET /experiments/{id}?prefixes=...
	// (one slice of one experiment's exploration space). nil means the
	// default experiments.Shardables() when Registry is nil, and none
	// otherwise — an override's ids are not the real experiments, so
	// it opts in explicitly.
	Shardables map[string]experiments.Shardable
	// Families maps experiment ids to their parameterized spaces,
	// enabling GET /experiments/{family}?param=... nil means
	// experiments.FamiliesFor(Registry) — the real families when the
	// registry is the real one, none under an override unless the
	// override opts in here.
	Families map[string]experiments.Family
	// Reduce runs reduced-capable experiments
	// (experiments.Reduced()) through the canonical-state memoized
	// explorer (experiments.Options.Reduce). Tables and wire bytes are
	// unchanged; the explorer's counters accumulate into the /stats
	// exploration section. Backend execution and prefix slices are
	// unaffected — slices keep their exhaustive byte-identical
	// contract.
	Reduce bool
	// Journal receives one span per request (keyed by the
	// Repro-Request-ID header, minted here when absent) and backs
	// GET /trace/{id}; nil means a private journal with the default
	// bounds. cmd/figuresd shares one journal between this server and
	// its -peers coordinator so a front-door trace shows both layers.
	Journal *trace.Journal
	// Logf receives one line per request; nil means silent.
	Logf func(format string, args ...any)
}

// Server handles the figuresd HTTP API:
//
//	GET /experiments                         the experiment index (JSON)
//	GET /experiments/{id}?format=text|json|csv   one experiment's table
//	GET /experiments/{id}?prefixes=...       one slice of a shardable
//	                                         experiment's space (JSON
//	                                         shard envelope)
//	GET /healthz                             liveness probe
//	GET /stats                               operational counters (JSON)
type Server struct {
	reg          map[string]experiments.Runner
	ids          []string
	cache        experiments.Cache
	timeout      time.Duration
	backend      func(ctx context.Context, id string) (experiments.Result, error)
	paramBackend func(ctx context.Context, id string, ps experiments.ParamSet) (experiments.Result, error)
	shardables   map[string]experiments.Shardable
	families     map[string]experiments.Family
	exploreSem   chan struct{}
	journal      *trace.Journal
	logf         func(format string, args ...any)
	flights      flightGroup
	mux          *http.ServeMux

	mu        sync.Mutex
	cooldowns map[string]cooldownEntry

	reduce bool

	inFlight atomic.Int64
	requests atomic.Int64
	statsMu  sync.Mutex
	perExp   map[string]*expStat
	// memoMu guards the accumulated reduced-exploration counters
	// (reducedRuns plus the summed MemoStats) behind /stats.
	memoMu      sync.Mutex
	reducedRuns int64
	memoTotals  sched.MemoStats
	// endpointLat holds the per-endpoint latency histograms (fixed
	// key set, built at New): recording is lock-free on the request
	// path, /stats snapshots them.
	endpointLat map[string]*hist.Histogram
}

// New builds a server over the given registry and cache.
func New(opts Options) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = experiments.Registry()
		// Heavy opt-in experiments (E16) are served on demand like any
		// other id; they stay out of the default engine sweep because
		// requests name experiments explicitly here.
		for id, r := range experiments.Heavy() {
			reg[id] = r
		}
	}
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	shardables := opts.Shardables
	if shardables == nil {
		shardables = experiments.ShardablesFor(opts.Registry)
	}
	families := opts.Families
	if families == nil {
		families = experiments.FamiliesFor(opts.Registry)
	}
	journal := opts.Journal
	if journal == nil {
		journal = trace.NewJournal(0, 0)
	}
	s := &Server{
		reg:          reg,
		ids:          ids,
		cache:        opts.Cache,
		timeout:      timeout,
		backend:      opts.Backend,
		paramBackend: opts.ParamBackend,
		reduce:       opts.Reduce,
		shardables:   shardables,
		families:     families,
		exploreSem:   make(chan struct{}, sliceExploreSlots),
		journal:      journal,
		logf:         logf,
		mux:          http.NewServeMux(),
		cooldowns:    make(map[string]cooldownEntry),
		perExp:       make(map[string]*expStat),
		endpointLat: map[string]*hist.Histogram{
			EndpointExperiment: hist.New(),
			EndpointParam:      hist.New(),
			EndpointSlice:      hist.New(),
		},
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /experiments", s.handleIndex)
	s.mux.HandleFunc("GET /experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// indexResponse is the /experiments body. Families describes the
// parameterized spaces this process serves — the discoverable schema
// behind GET /experiments/{family}?param=...; experiments without a
// family entry take no parameters.
type indexResponse struct {
	RegistryVersion string                 `json:"registry_version"`
	Experiments     []string               `json:"experiments"`
	Families        map[string]indexFamily `json:"families,omitempty"`
}

// indexFamily is one family's index entry: its doc line, space version
// (the per-family cache-identity generation), and parameter schema.
type indexFamily struct {
	Doc          string       `json:"doc,omitempty"`
	SpaceVersion string       `json:"space_version"`
	Params       []indexParam `json:"params"`
}

// indexParam is one parameter's published schema.
type indexParam struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Default string  `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Doc     string  `json:"doc,omitempty"`
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	var families map[string]indexFamily
	if len(s.families) > 0 {
		families = make(map[string]indexFamily, len(s.families))
		for id, fam := range s.families {
			entry := indexFamily{
				Doc:          fam.Doc,
				SpaceVersion: experiments.SpaceVersion(id),
				Params:       make([]indexParam, 0, len(fam.Params)),
			}
			for _, spec := range fam.Params {
				entry.Params = append(entry.Params, indexParam{
					Name:    spec.Name,
					Kind:    spec.Kind.String(),
					Default: spec.Default,
					Min:     spec.Min,
					Max:     spec.Max,
					Doc:     spec.Doc,
				})
			}
			sort.Slice(entry.Params, func(a, b int) bool { return entry.Params[a].Name < entry.Params[b].Name })
			families[id] = entry
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(indexResponse{
		RegistryVersion: experiments.RegistryVersion,
		Experiments:     s.ids,
		Families:        families,
	})
}

// contentTypes maps encoder formats to their media type.
var contentTypes = map[string]string{
	"text": "text/plain; charset=utf-8",
	"json": "application/json",
	"csv":  "text/csv",
}

// requestID extracts the request's trace ID from the Repro-Request-ID
// header, minting one when the server is the edge, and echoes it on
// the response so the client can fetch /trace/{id} afterwards even
// when it did not mint.
func (s *Server) requestID(w http.ResponseWriter, r *http.Request) string {
	reqID := r.Header.Get(trace.Header)
	if reqID == "" {
		reqID = trace.NewID()
	}
	w.Header().Set(trace.Header, reqID)
	s.journal.Start(reqID, "GET "+r.URL.RequestURI())
	s.journal.Add(reqID, trace.Event{Kind: trace.KindRequest, Detail: "GET " + r.URL.RequestURI()})
	return reqID
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	if _, ok := s.reg[id]; !ok {
		http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	// Every query key that is not serving machinery (format, prefixes)
	// is a parameter of the experiment's family. Parsing validates and
	// canonicalizes the point; a spelled-out default point comes back
	// with Canonical "" and follows the fixed experiment's path — one
	// cache entry, one singleflight — no matter how it was spelled.
	paramQuery := url.Values{}
	for name, vals := range q {
		if name == "format" || name == "prefixes" {
			continue
		}
		paramQuery[name] = vals
	}
	var ps experiments.ParamSet
	if len(paramQuery) > 0 {
		fam, ok := s.families[id]
		if !ok {
			http.Error(w, fmt.Sprintf("experiment %q takes no parameters", id), http.StatusBadRequest)
			return
		}
		var err error
		ps, err = experiments.ParseParams(fam, paramQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if prefixes := q.Get("prefixes"); prefixes != "" {
		s.handlePrefixes(w, r, id, ps, prefixes, start)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "text"
	}
	encode, err := experiments.LookupEncoder(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reqID := s.requestID(w, r)

	s.requests.Add(1)
	s.inFlight.Add(1)
	var res experiments.Result
	var shared bool
	endpoint := EndpointExperiment
	if ps.Canonical() != "" {
		endpoint = EndpointParam
		res, shared, err = s.executeParam(reqID, id, ps)
	} else {
		res, shared, err = s.execute(reqID, id)
	}
	s.inFlight.Add(-1)
	s.record(endpoint, id, time.Since(start), err != nil || res.Err != nil)
	switch {
	case shared:
		s.journal.Add(reqID, trace.Event{Kind: trace.KindCoalesce,
			Detail: "joined an in-flight execution or cooldown window"})
	case err == nil && res.Cached:
		s.journal.Add(reqID, trace.Event{Kind: trace.KindCacheHit})
	case err == nil:
		s.journal.Add(reqID, trace.Event{Kind: trace.KindCacheMiss})
	}
	if err != nil {
		// Engine configuration errors only; the id was validated, so
		// this is a server bug rather than a client mistake.
		s.traceDone(reqID, http.StatusInternalServerError, start)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	// Encode before writing headers so an encoder error cannot corrupt
	// a 200 response, and a failed experiment can carry a 500 status
	// around its encoded error form.
	var body bytes.Buffer
	if err := encode(&body, []experiments.Result{res}); err != nil {
		s.traceDone(reqID, http.StatusInternalServerError, start)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusOK
	if res.Err != nil {
		status = http.StatusInternalServerError
	}
	s.traceDone(reqID, status, start)
	w.Header().Set("Content-Type", contentTypes[format])
	w.Header().Set(RegistryVersionHeader, experiments.RegistryVersion)
	w.WriteHeader(status)
	w.Write(body.Bytes())
	s.logf("figuresd: GET %s format=%s status=%d cached=%v shared=%v trace=%s in %v",
		r.URL.Path, format, status, res.Cached, shared, reqID, time.Since(start).Round(time.Millisecond))
}

// traceDone closes a request's span with its status and duration.
func (s *Server) traceDone(reqID string, status int, start time.Time) {
	s.journal.Add(reqID, trace.Event{Kind: trace.KindDone,
		Detail: fmt.Sprintf("status %d in %v", status, time.Since(start).Round(time.Microsecond))})
}

// sliceOutcome is the singleflight value of one slice request: the
// wire envelope, and whether it came from the artifact store.
type sliceOutcome struct {
	env    experiments.ShardEnvelope
	cached bool
}

// handlePrefixes serves one slice of a shardable experiment's
// exploration space: GET /experiments/{id}?prefixes=... parses the
// forced-prefix ranges, explores exactly those subtrees, and responds
// with the JSON shard envelope (experiments.EncodeShard). When the
// cache is an artifact store (experiments.SliceCache), the store is
// consulted first and populated after — repeated sharded runs of the
// same space hit disk instead of re-exploring, the worker-level half
// of the fleet's read-through cache hierarchy. Identical slice
// requests share one execution through the singleflight group (keyed
// by the canonical prefix rendering, so equivalent spellings share
// too), and a timed-out slice starts the same cooldown as a timed-out
// experiment: a coordinator retry (and any future run of the same
// experiment) re-sends the byte-identical prefixes string, and
// without the cooldown each retry would stack another abandoned
// full-width explorer pool on the worker.
func (s *Server) handlePrefixes(w http.ResponseWriter, r *http.Request, id string, ps experiments.ParamSet, prefixes string, start time.Time) {
	if format := r.URL.Query().Get("format"); format != "" && format != "json" {
		http.Error(w, fmt.Sprintf("prefix slices are JSON only, not %q", format), http.StatusBadRequest)
		return
	}
	// At the default point the registered shardable serves (identical
	// bytes, shared cache entries); a non-default point carves its
	// family's space at that point.
	params := ps.Canonical()
	var sh experiments.Shardable
	if params == "" {
		var ok bool
		sh, ok = s.shardables[id]
		if !ok {
			http.Error(w, fmt.Sprintf("experiment %q is not prefix-shardable", id), http.StatusBadRequest)
			return
		}
	} else {
		fam := s.families[id] // present: handleExperiment parsed ps from it
		if fam.Shardable == nil {
			http.Error(w, fmt.Sprintf("experiment %q is not prefix-shardable", id), http.StatusBadRequest)
			return
		}
		sh = fam.Shardable(ps)
	}
	roots, err := experiments.ParsePrefixes(prefixes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	canonical := experiments.FormatPrefixes(roots)
	reqID := s.requestID(w, r)

	s.requests.Add(1)
	s.inFlight.Add(1)
	key := id + "\x00" + params + "\x00" + canonical
	var val any
	var shared bool
	if res, cooling := s.coolingDown(key); cooling {
		err, shared = res.Err, true
	} else {
		val, err, shared = s.flights.Do(key, func() (any, error) {
			return s.sliceEnvelope(reqID, sh, id, params, canonical, roots)
		})
		if err != nil && !shared && errors.Is(err, context.DeadlineExceeded) {
			s.startCooldown(key, experiments.Result{Err: err})
		}
	}
	s.inFlight.Add(-1)
	s.record(EndpointSlice, id, time.Since(start), err != nil)
	if shared {
		s.journal.Add(reqID, trace.Event{Kind: trace.KindCoalesce, Range: canonical,
			Detail: "joined an in-flight execution or cooldown window"})
	}
	if err != nil {
		// A prefix the scheduler cannot follow is the client's
		// mistake, not the server's: ParsePrefixes can only check
		// syntax and overlap, liveness is known after the replay.
		status := http.StatusInternalServerError
		if errors.Is(err, sched.ErrPrefixNotLive) {
			status = http.StatusBadRequest
		}
		s.traceDone(reqID, status, start)
		http.Error(w, err.Error(), status)
		return
	}
	out := val.(sliceOutcome)

	var body bytes.Buffer
	if err := experiments.EncodeShardEnvelope(&body, out.env); err != nil {
		s.traceDone(reqID, http.StatusInternalServerError, start)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.traceDone(reqID, http.StatusOK, start)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(RegistryVersionHeader, experiments.RegistryVersion)
	w.Write(body.Bytes())
	s.logf("figuresd: GET %s prefixes=%s roots=%d cached=%v shared=%v trace=%s in %v",
		r.URL.Path, canonical, len(roots), out.cached, shared, reqID, time.Since(start).Round(time.Millisecond))
}

// sliceEnvelope produces one slice's wire envelope: from the artifact
// store when a trustworthy entry exists, by exploring otherwise (and
// storing the fresh envelope back, best-effort). A stored envelope
// whose aggregate the experiment's own Decode rejects is treated as a
// miss and overwritten by the recomputation — the payload checksum
// guards the bytes, Decode guards the semantics. Each decision lands
// in the journal under reqID — the leader request's ID, since the
// singleflight runs this once per flight.
func (s *Server) sliceEnvelope(reqID string, sh experiments.Shardable, id, params, canonical string, roots [][]int) (sliceOutcome, error) {
	store, _ := s.cache.(experiments.SliceCache)
	if store != nil {
		if env, ok := store.GetSlice(id, params, canonical); ok {
			if _, err := sh.Decode(env.Aggregate); err == nil {
				s.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheHit, Range: canonical})
				return sliceOutcome{env: env, cached: true}, nil
			}
		}
		s.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheMiss, Range: canonical})
	}
	exploreStart := time.Now()
	agg, err := s.exploreSlice(sh, roots)
	if err != nil {
		return sliceOutcome{}, err
	}
	s.journal.Add(reqID, trace.Event{Kind: trace.KindExplore, Range: canonical,
		Detail: fmt.Sprintf("explored in %v", time.Since(exploreStart).Round(time.Microsecond))})
	env, err := experiments.NewShardEnvelope(id, params, roots, agg)
	if err != nil {
		return sliceOutcome{}, err
	}
	if store != nil {
		if err := store.PutSlice(env); err == nil { // best-effort, like the engine's Put
			s.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheStore, Range: canonical})
		}
	}
	return sliceOutcome{env: env}, nil
}

// sliceExploreSlots bounds concurrent slice explorations per server.
// Each Explore fans out across every core, so unbounded concurrent
// slices would stack full-width explorer pools; two slots match the
// coordinator's ~two-ranges-per-worker carve (its normal load runs
// uncontended), and anything beyond queues into the timeout window —
// backpressure the coordinator answers by failing over to a
// less-loaded worker.
const sliceExploreSlots = 2

// exploreSlice runs one Shardable.Explore under the per-execution
// timeout, holding one of the server's exploration slots (queue time
// counts toward the timeout). Like the engine's runners, an
// exploration takes no context: on timeout its goroutine is abandoned
// until it returns.
func (s *Server) exploreSlice(sh experiments.Shardable, roots [][]int) (experiments.Aggregate, error) {
	type outcome struct {
		agg experiments.Aggregate
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- outcome{err: fmt.Errorf("slice exploration panicked: %v", rec)}
			}
		}()
		s.exploreSem <- struct{}{}
		defer func() { <-s.exploreSem }()
		agg, err := sh.Explore(roots)
		if err == nil && agg == nil {
			err = fmt.Errorf("slice exploration returned no aggregate")
		}
		ch <- outcome{agg: agg, err: err}
	}()
	var timer <-chan time.Time
	if s.timeout > 0 {
		t := time.NewTimer(s.timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case o := <-ch:
		return o.agg, o.err
	case <-timer:
		return nil, fmt.Errorf("slice timed out after %v: %w", s.timeout, context.DeadlineExceeded)
	}
}

// execute runs one experiment through the singleflight group. The
// execution uses a context detached from any request so that the
// result every waiter shares cannot be cancelled by whichever client
// happened to arrive first; the per-execution timeout bounds it
// instead.
//
// A timed-out execution abandons its runner goroutine (the engine's
// documented behavior for runners, which take no context), so an
// immediate retry would stack a second copy of the same computation
// on top of the first. The cooldown guards against that: after a
// timeout, requests for the same experiment are served the recorded
// timeout failure — without executing — until one timeout period has
// passed, bounding the abandoned work to at most one runner per
// experiment per period no matter how aggressively clients retry.
//
// reqID is the calling request's trace ID; the detached execution
// context carries it (and nothing else from the request), so a
// backend coordinator's decisions land in the leader's span while a
// client disconnect still cannot cancel the shared execution.
func (s *Server) execute(reqID, id string) (experiments.Result, bool, error) {
	if res, ok := s.coolingDown(id); ok {
		return res, true, nil
	}
	val, err, shared := s.flights.Do(id, func() (any, error) {
		timeout := s.timeout
		if timeout < 0 {
			timeout = 0
		}
		if s.backend != nil {
			ctx := trace.WithID(context.Background(), reqID)
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			res, err := s.backend(ctx, id)
			return res, err
		}
		// Jobs <= 0 means GOMAXPROCS: irrelevant to this single-id run's
		// experiment pool, but in reduced mode it is also the memoized
		// explorer's worker fan-out, so the server's reduced runs scale
		// across cores (bytes are worker-count-invariant).
		results, err := experiments.Run(context.Background(), experiments.Options{
			IDs:      []string{id},
			Timeout:  timeout,
			Registry: s.reg,
			Cache:    s.cache,
			Reduce:   s.reduce,
		})
		if err != nil {
			return experiments.Result{}, err
		}
		if results[0].Reduced {
			// Inside the flight: counted once per execution, not once
			// per waiter sharing it.
			s.recordReduced(results[0].Memo)
		}
		return results[0], nil
	})
	if err != nil {
		return experiments.Result{}, shared, err
	}
	res := val.(experiments.Result)
	if !shared && res.Err != nil && errors.Is(res.Err, context.DeadlineExceeded) {
		s.startCooldown(id, res)
	}
	return res, shared, nil
}

// executeParam runs one non-default parameter point through the
// singleflight group, with the same detached context, timeout, and
// cooldown contract as execute. The flight and cooldown key is the
// family id plus the point's canonical rendering, so every spelling of
// a point shares one execution — and never collides with the fixed
// experiment's key or a slice's (the literal "params" segment cannot
// appear in either).
func (s *Server) executeParam(reqID, id string, ps experiments.ParamSet) (experiments.Result, bool, error) {
	key := id + "\x00params\x00" + ps.Canonical()
	if res, ok := s.coolingDown(key); ok {
		return res, true, nil
	}
	val, err, shared := s.flights.Do(key, func() (any, error) {
		timeout := s.timeout
		if timeout < 0 {
			timeout = 0
		}
		if s.paramBackend != nil {
			ctx := trace.WithID(context.Background(), reqID)
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			return s.paramBackend(ctx, id, ps)
		}
		fam := s.families[id]
		res := experiments.RunParam(context.Background(), fam, ps, experiments.Options{
			Timeout: timeout,
			Cache:   s.cache,
		})
		return res, nil
	})
	if err != nil {
		return experiments.Result{}, shared, err
	}
	res := val.(experiments.Result)
	if !shared && res.Err != nil && errors.Is(res.Err, context.DeadlineExceeded) {
		s.startCooldown(key, res)
	}
	return res, shared, nil
}

// cooldownEntry records a timed-out execution to serve in place of
// re-execution until the deadline passes.
type cooldownEntry struct {
	until time.Time
	res   experiments.Result
}

// coolingDown reports whether key — an experiment id, or a slice's
// id+prefixes flight key — recently timed out, returning the recorded
// failure to serve instead of executing again.
func (s *Server) coolingDown(id string) (experiments.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cooldowns[id]
	if !ok {
		return experiments.Result{}, false
	}
	if time.Now().After(e.until) {
		delete(s.cooldowns, id)
		return experiments.Result{}, false
	}
	return e.res, true
}

// startCooldown opens a one-timeout-long window during which id's
// recorded timeout failure is served without executing. The window
// matches the execution timeout: by then the abandoned runner has
// either finished (freeing its core) or proven the experiment needs a
// bigger -timeout, and one more probe per window is an acceptable
// cost either way.
func (s *Server) startCooldown(id string, res experiments.Result) {
	window := s.timeout
	if window <= 0 {
		return // no timeout configured, so nothing can have timed out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cooldowns[id] = cooldownEntry{until: time.Now().Add(window), res: res}
}
