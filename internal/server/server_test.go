package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
)

// countingRegistry wraps a single synthetic experiment and counts how
// many times its runner actually executes.
func countingRegistry(id string, delay time.Duration, executions *atomic.Int64) map[string]experiments.Runner {
	return map[string]experiments.Runner{
		id: func() (*experiments.Table, error) {
			executions.Add(1)
			time.Sleep(delay)
			return &experiments.Table{
				ID:      id,
				Title:   "synthetic",
				Headers: []string{"h"},
				Rows:    [][]string{{"v"}},
			}, nil
		},
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSingleflightColdExperiment is the server's core guarantee: k
// concurrent requests for one cold experiment trigger exactly one
// execution, every response is identical, and /healthz stays 200
// while the experiment is in flight.
func TestSingleflightColdExperiment(t *testing.T) {
	var executions atomic.Int64
	// The runner holds the flight long enough for every request below
	// to join it even on a loaded CI machine.
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 500*time.Millisecond, &executions),
	}))
	defer ts.Close()

	const k = 16
	bodies := make([]string, k)
	statuses := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = get(t, ts, "/experiments/E1?format=json")
		}(i)
	}
	// Probe liveness while the cold experiment holds the flight.
	time.Sleep(50 * time.Millisecond)
	if status, body := get(t, ts, "/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz during load = %d %q", status, body)
	}
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("cold experiment executed %d times, want 1 (singleflight)", n)
	}
	for i := 0; i < k; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if !strings.Contains(bodies[0], "synthetic") {
		t.Fatalf("body = %q", bodies[0])
	}
}

// TestCacheBackedServing: with a cache, the second server instance
// (fresh singleflight, same directory) serves without executing.
func TestCacheBackedServing(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	reg := countingRegistry("E1", 0, &executions)

	first := httptest.NewServer(New(Options{Registry: reg, Cache: store}))
	if status, _ := get(t, first, "/experiments/E1"); status != http.StatusOK {
		t.Fatalf("cold status = %d", status)
	}
	_, coldBody := get(t, first, "/experiments/E1?format=json")
	first.Close()

	second := httptest.NewServer(New(Options{Registry: reg, Cache: store}))
	defer second.Close()
	status, warmBody := get(t, second, "/experiments/E1?format=json")
	if status != http.StatusOK {
		t.Fatalf("warm status = %d", status)
	}
	if warmBody != coldBody {
		t.Fatalf("warm body differs:\n%s\nvs\n%s", warmBody, coldBody)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (second server cache-backed)", n)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("cache stats = %+v, want a hit", st)
	}
}

func TestIndexEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	status, body := get(t, ts, "/experiments")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	for _, want := range []string{experiments.RegistryVersion, `"E1"`, `"E15"`} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
}

func TestNotFoundAndBadRequest(t *testing.T) {
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 0, &executions),
	}))
	defer ts.Close()
	if status, _ := get(t, ts, "/experiments/E99"); status != http.StatusNotFound {
		t.Errorf("unknown id status = %d", status)
	}
	if status, _ := get(t, ts, "/experiments/E1?format=yaml"); status != http.StatusBadRequest {
		t.Errorf("bad format status = %d", status)
	}
	if n := executions.Load(); n != 0 {
		t.Errorf("invalid requests executed %d experiments", n)
	}
}

// TestFailedExperimentIs500: an experiment failure surfaces as a 500
// whose body still carries the encoded error form.
func TestFailedExperimentIs500(t *testing.T) {
	reg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) { return nil, errors.New("reactor meltdown") },
	}
	ts := httptest.NewServer(New(Options{Registry: reg}))
	defer ts.Close()
	for _, format := range []string{"text", "json", "csv"} {
		status, body := get(t, ts, "/experiments/E1?format="+format)
		if status != http.StatusInternalServerError {
			t.Errorf("%s: status = %d", format, status)
		}
		if !strings.Contains(body, "reactor meltdown") {
			t.Errorf("%s: error lost: %q", format, body)
		}
	}
}

// TestExecutionTimeout: a runner slower than the server's timeout
// yields a 500, not a hung request — and retries inside the cooldown
// window are served the recorded failure instead of stacking another
// abandoned runner goroutine.
func TestExecutionTimeout(t *testing.T) {
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 10*time.Second, &executions),
		Timeout:  300 * time.Millisecond,
	}))
	defer ts.Close()
	done := make(chan struct{})
	var status int
	var body string
	go func() {
		status, body = get(t, ts, "/experiments/E1")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request hung past the execution timeout")
	}
	if status != http.StatusInternalServerError || !strings.Contains(body, "timed out") {
		t.Fatalf("got %d %q, want 500 with timeout error", status, body)
	}
	// Immediate retries must not re-execute: the first abandoned
	// runner is still burning its core.
	for i := 0; i < 3; i++ {
		status, body := get(t, ts, "/experiments/E1")
		if status != http.StatusInternalServerError || !strings.Contains(body, "timed out") {
			t.Fatalf("retry %d: got %d %q", i, status, body)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("retries during cooldown executed %d runners, want 1 total", n)
	}
}

// TestCooldownExpires: after the window passes, the experiment is
// eligible to execute again.
func TestCooldownExpires(t *testing.T) {
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 10*time.Second, &executions),
		Timeout:  50 * time.Millisecond,
	}))
	defer ts.Close()
	get(t, ts, "/experiments/E1")
	time.Sleep(120 * time.Millisecond) // past the 50ms window
	get(t, ts, "/experiments/E1")
	if n := executions.Load(); n != 2 {
		t.Fatalf("executions = %d, want 2 (cooldown must expire)", n)
	}
}

func TestContentTypes(t *testing.T) {
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 0, &executions),
	}))
	defer ts.Close()
	// Range over the encoder registry, not contentTypes, so a format
	// added to experiments.Encoders without a media type fails here
	// instead of shipping with a sniffed Content-Type.
	for format := range experiments.Encoders {
		want := contentTypes[format]
		if want == "" {
			t.Errorf("format %q has no content type", format)
			continue
		}
		resp, err := ts.Client().Get(ts.URL + "/experiments/E1?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != want {
			t.Errorf("%s: Content-Type = %q, want %q", format, got, want)
		}
	}
}

// TestFlightGroupSharedResult pins the singleflight primitive itself.
func TestFlightGroupSharedResult(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	const k = 8
	results := make([]any, k)
	shared := make([]bool, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, shared[i] = g.Do("key", func() (any, error) {
				calls.Add(1)
				<-release
				return "value", nil
			})
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times", n)
	}
	leaders := 0
	for i := 0; i < k; i++ {
		if results[i] != "value" {
			t.Fatalf("result %d = %v", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	// After the flight lands, a new call runs fresh.
	if _, _, wasShared := g.Do("key", func() (any, error) { calls.Add(1); return "again", nil }); wasShared {
		t.Fatal("post-flight call marked shared")
	}
	if calls.Load() != 2 {
		t.Fatal("post-flight call did not run")
	}
}

// TestFlightGroupPanicDoesNotWedgeKey: a panicking fn surfaces as an
// error to the leader and every waiter, and the key stays usable.
func TestFlightGroupPanicDoesNotWedgeKey(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i], _ = g.Do("key", func() (any, error) {
				<-release
				panic("runner exploded")
			})
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "runner exploded") {
			t.Fatalf("caller %d got %v, want the panic as an error", i, err)
		}
	}
	// The key must not be wedged: a fresh call runs and succeeds.
	val, err, _ := g.Do("key", func() (any, error) { return "recovered", nil })
	if err != nil || val != "recovered" {
		t.Fatalf("post-panic call = %v, %v", val, err)
	}
}

// TestFlightGroupErrorPropagates: every waiter sees the leader's error.
func TestFlightGroupErrorPropagates(t *testing.T) {
	var g flightGroup
	wantErr := fmt.Errorf("leader failed")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i], _ = g.Do("key", func() (any, error) {
				<-release
				return nil, wantErr
			})
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("waiter %d got %v", i, err)
		}
	}
}
