package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sched"
)

// prefixAgg is the synthetic aggregate served by the test shardable.
type prefixAgg struct {
	Count int `json:"count"`
	Sum   int `json:"sum"`
}

func (a *prefixAgg) Merge(o experiments.Aggregate) error {
	b, ok := o.(*prefixAgg)
	if !ok {
		return fmt.Errorf("cannot merge %T", o)
	}
	a.Count += b.Count
	a.Sum += b.Sum
	return nil
}

// newPrefixServer stands up a server with one synthetic shardable
// experiment S1 (and a plain experiment P1 with no seam).
func newPrefixServer(t *testing.T) *httptest.Server {
	t.Helper()
	table := func(id string) experiments.Runner {
		return func() (*experiments.Table, error) {
			return &experiments.Table{ID: id, Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		}
	}
	reg := map[string]experiments.Runner{"S1": table("S1"), "P1": table("P1")}
	shs := map[string]experiments.Shardable{
		"S1": {
			Roots: func() ([][]int, error) { return [][]int{{0}, {1}}, nil },
			Explore: func(roots [][]int) (experiments.Aggregate, error) {
				a := &prefixAgg{}
				for _, r := range roots {
					if len(r) > 0 && r[0] > 1 {
						// What a real explorer reports for a forced
						// pid that is never enabled.
						return nil, fmt.Errorf("%w: %v", sched.ErrPrefixNotLive, r)
					}
					a.Count++
					if len(r) > 0 {
						a.Sum += r[0]
					}
				}
				return a, nil
			},
			Decode: func(data []byte) (experiments.Aggregate, error) {
				var a prefixAgg
				if err := json.Unmarshal(data, &a); err != nil {
					return nil, err
				}
				return &a, nil
			},
			Finish: func(agg experiments.Aggregate) (*experiments.Table, error) {
				return nil, fmt.Errorf("not used by the slice endpoint")
			},
		},
	}
	ts := httptest.NewServer(New(Options{Registry: reg, Shardables: shs}))
	t.Cleanup(ts.Close)
	return ts
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestPrefixSliceEndpoint: a ?prefixes= request explores exactly the
// requested slice and answers the JSON shard envelope.
func TestPrefixSliceEndpoint(t *testing.T) {
	ts := newPrefixServer(t)
	status, body := httpGet(t, ts.URL+"/experiments/S1?prefixes=1.0,0")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	env, err := experiments.DecodeShard(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if env.ID != "S1" || env.Prefixes != "1.0,0" || env.SpaceVersion != experiments.RegistryVersion {
		t.Fatalf("envelope = %+v", env)
	}
	var a prefixAgg
	if err := json.Unmarshal(env.Aggregate, &a); err != nil {
		t.Fatal(err)
	}
	// Roots {1,0} and {0}: two ranges, first pids 1 + 0.
	if a.Count != 2 || a.Sum != 1 {
		t.Fatalf("aggregate = %+v", a)
	}
	// The explicit empty prefix is the whole space.
	status, body = httpGet(t, ts.URL+"/experiments/S1?prefixes=-&format=json")
	if status != http.StatusOK {
		t.Fatalf("whole-space slice status %d: %s", status, body)
	}
}

// TestPrefixSliceRejections pins the 4xx surface: unknown experiment,
// unshardable experiment, malformed prefixes, non-JSON format.
func TestPrefixSliceRejections(t *testing.T) {
	ts := newPrefixServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/experiments/NOPE?prefixes=0", http.StatusNotFound},
		{"/experiments/P1?prefixes=0", http.StatusBadRequest},
		{"/experiments/S1?prefixes=0..1", http.StatusBadRequest},
		{"/experiments/S1?prefixes=x", http.StatusBadRequest},
		{"/experiments/S1?prefixes=0&format=csv", http.StatusBadRequest},
		{"/experiments/S1?prefixes=0&format=text", http.StatusBadRequest},
		// Syntactically fine but not a live path of the decision
		// tree: the explorer detects it, the server answers 400.
		{"/experiments/S1?prefixes=7", http.StatusBadRequest},
	} {
		if status, body := httpGet(t, ts.URL+tc.path); status != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, status, body, tc.want)
		}
	}
	// And without the parameter, the plain table path still serves.
	if status, _ := httpGet(t, ts.URL+"/experiments/S1"); status != http.StatusOK {
		t.Errorf("plain GET broken: %d", status)
	}
}

// TestPrefixSliceTimeoutCooldown: a timed-out slice starts a cooldown
// keyed by id + prefixes — the coordinator retries the byte-identical
// prefixes string, and each retry must be served the recorded failure
// instead of stacking another abandoned full-width exploration.
func TestPrefixSliceTimeoutCooldown(t *testing.T) {
	explores := make(chan struct{}, 16)
	reg := map[string]experiments.Runner{"S1": func() (*experiments.Table, error) {
		return &experiments.Table{ID: "S1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
	}}
	shs := map[string]experiments.Shardable{
		"S1": {
			Roots: func() ([][]int, error) { return [][]int{{0}}, nil },
			Explore: func(roots [][]int) (experiments.Aggregate, error) {
				explores <- struct{}{}
				time.Sleep(30 * time.Second) // far past the server timeout
				return &prefixAgg{}, nil
			},
		},
	}
	ts := httptest.NewServer(New(Options{
		Registry:   reg,
		Shardables: shs,
		Timeout:    100 * time.Millisecond,
	}))
	t.Cleanup(ts.Close)

	status, body := httpGet(t, ts.URL+"/experiments/S1?prefixes=0")
	if status != http.StatusInternalServerError || !strings.Contains(body, "timed out") {
		t.Fatalf("first slice = %d %q, want a timeout 500", status, body)
	}
	if len(explores) != 1 {
		t.Fatalf("first request launched %d explorations, want 1", len(explores))
	}
	// An immediate identical retry is served from the cooldown: same
	// failure, no second exploration stacked on the abandoned one.
	status, body = httpGet(t, ts.URL+"/experiments/S1?prefixes=0")
	if status != http.StatusInternalServerError || !strings.Contains(body, "timed out") {
		t.Fatalf("retried slice = %d %q, want the recorded timeout", status, body)
	}
	if len(explores) != 1 {
		t.Fatalf("retry launched another exploration (%d total)", len(explores))
	}
}

// TestPrefixSliceCountsInStats: slice requests show up in the same
// request/latency counters as whole-table requests.
func TestPrefixSliceCountsInStats(t *testing.T) {
	ts := newPrefixServer(t)
	if status, _ := httpGet(t, ts.URL+"/experiments/S1?prefixes=0"); status != http.StatusOK {
		t.Fatal("slice request failed")
	}
	status, body := httpGet(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 {
		t.Fatalf("requests = %d, want 1", st.Requests)
	}
	if st.Experiments["S1"].Count != 1 {
		t.Fatalf("experiments stats = %+v", st.Experiments)
	}
	// Slice traffic lands on the slice endpoint's histogram, not the
	// whole-experiment one.
	ep, ok := st.Endpoints[EndpointSlice]
	if !ok || ep.Count != 1 {
		t.Fatalf("endpoints = %+v, want a %q entry with count 1", st.Endpoints, EndpointSlice)
	}
	if ep.P50Millis < 0 || ep.P99Millis < ep.P50Millis {
		t.Fatalf("slice endpoint quantiles = %+v", ep)
	}
	if _, ok := st.Endpoints[EndpointExperiment]; ok {
		t.Fatalf("experiment endpoint reported without whole-table traffic: %+v", st.Endpoints)
	}
}
