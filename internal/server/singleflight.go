package server

import (
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent work by key: while one call for
// a key is in flight, later callers wait for its outcome instead of
// starting their own. It is the minimal subset of
// golang.org/x/sync/singleflight the server needs (the module has no
// external dependencies).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per key at a time. Callers that join an in-flight
// key receive the leader's result and shared == true.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// A panicking fn must not wedge the key forever (entry never
	// deleted, done never closed, every later caller blocked), so the
	// bookkeeping runs in a defer and the panic is delivered to the
	// leader and all waiters as an error (via the named returns — on
	// a panic the normal return below never executes).
	defer func() {
		if rec := recover(); rec != nil {
			c.err = fmt.Errorf("singleflight: fn panicked: %v", rec)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		val, err = c.val, c.err
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}
