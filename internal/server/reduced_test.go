package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestReducedServerBytesAndStats pins the serving-layer half of the
// reduced mode: a -reduce server returns byte-identical experiment
// bodies to an exhaustive one, and its /stats grows an exploration
// section whose counters show real pruning.
func TestReducedServerBytesAndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	plain := httptest.NewServer(New(Options{}))
	defer plain.Close()
	reduced := httptest.NewServer(New(Options{Reduce: true}))
	defer reduced.Close()

	for _, format := range []string{"text", "json", "csv"} {
		path := "/experiments/E2?format=" + format
		st1, body1 := get(t, plain, path)
		st2, body2 := get(t, reduced, path)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: statuses %d and %d", path, st1, st2)
		}
		if body1 != body2 {
			t.Errorf("%s: reduced body diverges from exhaustive:\n--- exhaustive ---\n%s--- reduced ---\n%s",
				path, body1, body2)
		}
	}

	// The exhaustive server must not report an exploration section...
	var stats StatsResponse
	_, body := get(t, plain, "/stats")
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Exploration != nil {
		t.Errorf("exhaustive server reports exploration stats: %+v", stats.Exploration)
	}

	// ...and the reduced one must report real pruning. E2 was fetched
	// three times but singleflight/format sharing does not apply across
	// sequential requests, so just require at least one reduced run.
	stats = StatsResponse{}
	_, body = get(t, reduced, "/stats")
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	ex := stats.Exploration
	if ex == nil {
		t.Fatal("reduced server has no exploration stats after serving E2")
	}
	if ex.ReducedRuns < 1 {
		t.Errorf("reduced_runs = %d, want >= 1", ex.ReducedRuns)
	}
	if ex.Executions == 0 || ex.StatesVisited == 0 || ex.StatesPruned == 0 {
		t.Errorf("counters missing: %+v", ex)
	}
	if ex.Replays >= ex.Executions {
		t.Errorf("replays %d not below executions %d — memoization saved nothing", ex.Replays, ex.Executions)
	}
}
