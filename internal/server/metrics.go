package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/hist"
)

// handleTrace serves one request's recorded span from this process's
// journal: GET /trace/{id} → the trace.Trace wire form, 404 when the
// journal no longer (or never) held the ID. The journal is a bounded
// ring, so a 404 on a once-valid ID means the trace aged out — the
// client-facing contract is "recent requests", not "all requests".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.journal.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no trace for request %q (it may have aged out of the journal)", id),
			http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(tr)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4). Every series is a re-rendering of counters
// the process already keeps — the /stats accumulators, the hist
// log-buckets, the cache store's counters, the journal's gauges — so
// scraping adds no new counting to any hot path. Histograms map
// exactly: each non-empty hist bucket becomes a cumulative
// `_bucket{le="<seconds>"}` line, `+Inf` is the total count, and
// `_sum`/`_count` come from the same snapshot, which is what lets a
// Prometheus quantile over these series agree with /stats' own
// quantiles to within hist.Growth.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	writeMetric(&b, "repro_registry_info", "gauge",
		"Always 1; the registry_version label names the experiment generation served.",
		sample{labels: fmt.Sprintf("registry_version=%q", experiments.RegistryVersion), value: 1})
	writeMetric(&b, "repro_requests_total", "counter",
		"Experiment and slice requests accepted since startup.",
		sample{value: float64(s.requests.Load())})
	writeMetric(&b, "repro_in_flight", "gauge",
		"Requests currently between arrival and response.",
		sample{value: float64(s.inFlight.Load())})

	s.writeEndpointHistograms(&b)
	s.writeExperimentMetrics(&b)

	if cs, ok := s.cache.(interface{ Stats() cache.Stats }); ok {
		st := cs.Stats()
		writeMetric(&b, "repro_cache_hits_total", "counter",
			"Whole-result cache hits.", sample{value: float64(st.Hits)})
		writeMetric(&b, "repro_cache_misses_total", "counter",
			"Whole-result cache misses.", sample{value: float64(st.Misses)})
		writeMetric(&b, "repro_cache_slice_hits_total", "counter",
			"Prefix-slice cache hits.", sample{value: float64(st.SliceHits)})
		writeMetric(&b, "repro_cache_slice_misses_total", "counter",
			"Prefix-slice cache misses.", sample{value: float64(st.SliceMisses)})
		writeMetric(&b, "repro_cache_slice_stores_total", "counter",
			"Prefix-slice envelopes stored.", sample{value: float64(st.SliceStores)})
		writeMetric(&b, "repro_cache_corrupt_total", "counter",
			"Cache entries rejected as corrupt.", sample{value: float64(st.Corrupt)})
		writeMetric(&b, "repro_cache_evicted_total", "counter",
			"Cache entries evicted.", sample{value: float64(st.Evicted)})
	}

	writeMetric(&b, "repro_trace_requests", "gauge",
		"Request traces currently retained in the journal.",
		sample{value: float64(s.journal.Len())})
	writeMetric(&b, "repro_trace_evicted_total", "counter",
		"Request traces evicted at the journal's ring cap.",
		sample{value: float64(s.journal.Evicted())})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// writeEndpointHistograms renders the per-endpoint latency histograms
// as one Prometheus histogram family labeled by endpoint.
func (s *Server) writeEndpointHistograms(b *strings.Builder) {
	endpoints := make([]string, 0, len(s.endpointLat))
	for name, h := range s.endpointLat {
		if h.Count() != 0 {
			endpoints = append(endpoints, name)
		}
	}
	if len(endpoints) == 0 {
		return
	}
	sort.Strings(endpoints)
	writeHeader(b, "repro_request_duration_seconds", "histogram",
		"Request latency by endpoint (experiment = whole fetch, slice = prefix slice).")
	for _, name := range endpoints {
		writeHistogram(b, "repro_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", name), s.endpointLat[name].Snapshot())
	}
}

// writeExperimentMetrics renders the per-experiment accumulators:
// request/error counters and the full latency histogram, labeled by
// experiment id.
func (s *Server) writeExperimentMetrics(b *strings.Builder) {
	stats := s.experimentStats()
	if len(stats) == 0 {
		return
	}
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	reqs := make([]sample, 0, len(ids))
	errs := make([]sample, 0, len(ids))
	for _, id := range ids {
		st := stats[id]
		label := fmt.Sprintf("id=%q", id)
		reqs = append(reqs, sample{labels: label, value: float64(st.Count)})
		errs = append(errs, sample{labels: label, value: float64(st.Errors)})
	}
	writeMetric(b, "repro_experiment_requests_total", "counter",
		"Requests served per experiment.", reqs...)
	writeMetric(b, "repro_experiment_errors_total", "counter",
		"Failed requests per experiment.", errs...)

	writeHeader(b, "repro_experiment_duration_seconds", "histogram",
		"Request latency per experiment.")
	for _, id := range ids {
		if h := stats[id].Histogram; h != nil {
			writeHistogram(b, "repro_experiment_duration_seconds",
				fmt.Sprintf("id=%q", id), *h)
		}
	}
}

// sample is one exposition line's labels and value. labels is the
// pre-rendered `name="value"` list without braces (empty for an
// unlabeled series); values render via %g, which matches the format's
// required float form.
type sample struct {
	labels string
	value  float64
}

// writeHeader emits one metric family's # HELP / # TYPE preamble —
// once per name, which is why callers with multiple label sets emit
// the header themselves and then the samples.
func writeHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writeMetric emits a full single-family metric: header plus every
// sample.
func writeMetric(b *strings.Builder, name, typ, help string, samples ...sample) {
	writeHeader(b, name, typ, help)
	for _, s := range samples {
		if s.labels == "" {
			fmt.Fprintf(b, "%s %g\n", name, s.value)
		} else {
			fmt.Fprintf(b, "%s{%s} %g\n", name, s.labels, s.value)
		}
	}
}

// writeHistogram maps one hist.Snapshot to the Prometheus histogram
// convention: cumulative `_bucket` lines at each non-empty bucket's
// upper bound in seconds, the mandatory `+Inf` bucket carrying the
// total count, and `_sum`/`_count`. hist buckets are disjoint counts
// in ascending bound order, so a running sum is exactly the
// cumulative form Prometheus requires; seconds = UpperMillis / 1000.
func writeHistogram(b *strings.Builder, name, labels string, snap hist.Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for _, bucket := range snap.Buckets {
		cum += bucket.Count
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%g\"} %d\n",
			name, labels, sep, bucket.UpperMillis/1000, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, snap.Count)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n", name, snap.SumMillis/1000)
		fmt.Fprintf(b, "%s_count %d\n", name, snap.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, snap.SumMillis/1000)
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, snap.Count)
	}
}
