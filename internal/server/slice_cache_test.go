package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
)

// newCachedPrefixServer stands up a server whose cache is a real
// artifact store, serving one synthetic shardable experiment with an
// exploration counter.
func newCachedPrefixServer(t *testing.T) (*httptest.Server, *cache.Store, *atomic.Int64) {
	t.Helper()
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	explores := new(atomic.Int64)
	reg := map[string]experiments.Runner{"S1": func() (*experiments.Table, error) {
		return &experiments.Table{ID: "S1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
	}}
	shs := map[string]experiments.Shardable{
		"S1": {
			Roots: func() ([][]int, error) { return [][]int{{0}, {1}}, nil },
			Explore: func(roots [][]int) (experiments.Aggregate, error) {
				explores.Add(1)
				a := &prefixAgg{}
				for _, r := range roots {
					a.Count++
					a.Sum += r[0]
				}
				return a, nil
			},
			Decode: func(data []byte) (experiments.Aggregate, error) {
				var a prefixAgg
				if err := json.Unmarshal(data, &a); err != nil {
					return nil, err
				}
				if a.Count < 0 {
					return nil, fmt.Errorf("negative count")
				}
				return &a, nil
			},
		},
	}
	ts := httptest.NewServer(New(Options{Registry: reg, Shardables: shs, Cache: store}))
	t.Cleanup(ts.Close)
	return ts, store, explores
}

// TestSliceServedFromStore: the worker-level half of the cache
// hierarchy — a repeated slice request is answered from the artifact
// store, byte-identically, without re-exploring.
func TestSliceServedFromStore(t *testing.T) {
	ts, store, explores := newCachedPrefixServer(t)
	status, cold := httpGet(t, ts.URL+"/experiments/S1?prefixes=0,1")
	if status != http.StatusOK {
		t.Fatalf("cold slice status %d: %s", status, cold)
	}
	if n := explores.Load(); n != 1 {
		t.Fatalf("cold slice ran %d explorations, want 1", n)
	}
	status, warm := httpGet(t, ts.URL+"/experiments/S1?prefixes=0,1")
	if status != http.StatusOK {
		t.Fatalf("warm slice status %d: %s", status, warm)
	}
	if n := explores.Load(); n != 1 {
		t.Fatalf("warm slice re-explored (%d total)", n)
	}
	if warm != cold {
		t.Fatalf("cached slice bytes differ:\n%s\nvs\n%s", warm, cold)
	}
	if st := store.Stats(); st.SliceMisses != 1 || st.SliceStores != 1 || st.SliceHits != 1 {
		t.Fatalf("store stats = %+v", st)
	}
	// A different slice of the same space is its own artifact.
	if status, _ := httpGet(t, ts.URL+"/experiments/S1?prefixes=1"); status != http.StatusOK {
		t.Fatal("disjoint slice failed")
	}
	if n := explores.Load(); n != 2 {
		t.Fatalf("disjoint slice served from the wrong entry (%d explorations)", n)
	}
}

// TestSliceStatsOnWire: the /stats cache section carries the slice
// counters the fleet summary and CI gates read.
func TestSliceStatsOnWire(t *testing.T) {
	ts, _, _ := newCachedPrefixServer(t)
	for i := 0; i < 2; i++ {
		if status, _ := httpGet(t, ts.URL+"/experiments/S1?prefixes=0,1"); status != http.StatusOK {
			t.Fatal("slice request failed")
		}
	}
	status, body := httpGet(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("stats missing the cache section")
	}
	if st.Cache.SliceHits != 1 || st.Cache.SliceMisses != 1 || st.Cache.SliceStores != 1 {
		t.Fatalf("slice counters = %+v", st.Cache)
	}
}

// TestSliceStoreRejectedAggregateRecomputed: an entry whose bytes are
// intact (checksum passes) but whose aggregate the experiment's own
// Decode refuses is treated as a miss — the slice recomputes and the
// recomputation overwrites the bad entry.
func TestSliceStoreRejectedAggregateRecomputed(t *testing.T) {
	ts, store, explores := newCachedPrefixServer(t)
	if err := store.PutSlice(experiments.ShardEnvelope{
		ID:           "S1",
		SpaceVersion: experiments.RegistryVersion,
		Prefixes:     "0,1",
		Aggregate:    json.RawMessage(`{"count":-5,"sum":0}`),
	}); err != nil {
		t.Fatal(err)
	}
	status, body := httpGet(t, ts.URL+"/experiments/S1?prefixes=0,1")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if n := explores.Load(); n != 1 {
		t.Fatalf("rejected aggregate served without recomputing (%d explorations)", n)
	}
	var a prefixAgg
	env, err := experiments.DecodeShard(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(env.Aggregate, &a); err != nil || a.Count != 2 {
		t.Fatalf("recomputed aggregate = %+v (%v)", a, err)
	}
	// The overwrite took: the next request is a pure store hit.
	if status, _ := httpGet(t, ts.URL+"/experiments/S1?prefixes=0,1"); status != http.StatusOK {
		t.Fatal("followup failed")
	}
	if n := explores.Load(); n != 1 {
		t.Fatalf("overwritten entry not served (%d explorations)", n)
	}
}
