package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
)

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/stats Content-Type = %q", ct)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/stats body: %v", err)
	}
	return st
}

// TestStatsCountersAndCache: /stats reports request totals, cache
// hit/miss counters, and per-experiment latency after real traffic —
// a cold request (miss + store) followed by a warm one (hit).
func TestStatsCountersAndCache(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 10*time.Millisecond, &executions),
		Cache:    store,
	}))
	defer ts.Close()

	if st := getStats(t, ts); st.Requests != 0 || len(st.Experiments) != 0 {
		t.Fatalf("fresh server stats = %+v", st)
	}
	for i := 0; i < 2; i++ { // cold then warm
		if status, _ := get(t, ts, "/experiments/E1"); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}

	st := getStats(t, ts)
	if st.RegistryVersion != experiments.RegistryVersion {
		t.Errorf("registry_version = %q", st.RegistryVersion)
	}
	if st.Requests != 2 {
		t.Errorf("requests = %d, want 2", st.Requests)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight at rest = %d", st.InFlight)
	}
	if st.Cache == nil {
		t.Fatal("cache counters missing despite a cache-backed server")
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache = %+v, want 1 hit / 1 miss", st.Cache)
	}
	if st.Cache.HitRate != 0.5 {
		t.Errorf("hit_rate = %v, want 0.5", st.Cache.HitRate)
	}
	e1, ok := st.Experiments["E1"]
	if !ok {
		t.Fatalf("experiments = %+v, want an E1 entry", st.Experiments)
	}
	if e1.Count != 2 || e1.Errors != 0 {
		t.Errorf("E1 = %+v, want count 2, errors 0", e1)
	}
	// The cold request ran a 10ms runner, so the latency counters
	// must have registered real time.
	if e1.TotalMillis <= 0 || e1.MaxMillis <= 0 || e1.LastMillis < 0 {
		t.Errorf("E1 latency = %+v, want positive totals", e1)
	}
	if e1.MaxMillis > e1.TotalMillis {
		t.Errorf("E1 max %v exceeds total %v", e1.MaxMillis, e1.TotalMillis)
	}
	// The histogram block rides alongside the legacy count/total/max
	// fields and must agree with them.
	if e1.Histogram == nil {
		t.Fatal("E1 histogram block missing")
	}
	if e1.Histogram.Count != e1.Count {
		t.Errorf("histogram count %d != field count %d", e1.Histogram.Count, e1.Count)
	}
	if e1.Histogram.P50Millis <= 0 || e1.Histogram.P95Millis < e1.Histogram.P50Millis ||
		e1.Histogram.P99Millis < e1.Histogram.P95Millis {
		t.Errorf("histogram quantiles out of order: %+v", e1.Histogram)
	}
	if len(e1.Histogram.Buckets) == 0 {
		t.Errorf("histogram has no buckets: %+v", e1.Histogram)
	}
	// The whole-experiment endpoint saw both requests; the slice
	// endpoint saw none and is omitted rather than reported empty.
	ep, ok := st.Endpoints[EndpointExperiment]
	if !ok {
		t.Fatalf("endpoints = %+v, want an %q entry", st.Endpoints, EndpointExperiment)
	}
	if ep.Count != 2 || ep.P50Millis <= 0 || ep.P95Millis <= 0 || ep.P99Millis <= 0 {
		t.Errorf("experiment endpoint = %+v, want count 2 and positive quantiles", ep)
	}
	if _, ok := st.Endpoints[EndpointSlice]; ok {
		t.Errorf("slice endpoint reported without slice traffic: %+v", st.Endpoints)
	}
}

// TestStatsErrorsCounted: a failing experiment increments its error
// counter alongside its request count.
func TestStatsErrorsCounted(t *testing.T) {
	reg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) { return nil, errors.New("defect") },
	}
	ts := httptest.NewServer(New(Options{Registry: reg}))
	defer ts.Close()
	if status, _ := get(t, ts, "/experiments/E1"); status != http.StatusInternalServerError {
		t.Fatalf("status = %d", status)
	}
	st := getStats(t, ts)
	if e1 := st.Experiments["E1"]; e1.Count != 1 || e1.Errors != 1 {
		t.Errorf("E1 = %+v, want count 1, errors 1", e1)
	}
	if st.Cache != nil {
		t.Errorf("cache counters = %+v on a cacheless server", st.Cache)
	}
}

// TestStatsInFlight: while an experiment executes, /stats reports it
// in flight — the load signal the shard coordinator ranks workers by.
func TestStatsInFlight(t *testing.T) {
	var executions atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 500*time.Millisecond, &executions),
	}))
	defer ts.Close()
	// The request runs in a goroutine, so failures are reported back
	// over the channel rather than t.Fatal-ing off the test goroutine.
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/experiments/E1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request enter execution
	if st := getStats(t, ts); st.InFlight != 1 {
		t.Errorf("in_flight during execution = %d, want 1", st.InFlight)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if st := getStats(t, ts); st.InFlight != 0 {
		t.Errorf("in_flight after completion = %d, want 0", st.InFlight)
	}
}

// TestBackendReplacesEngine: with Options.Backend set, the serving
// path renders the backend's result and the in-process registry never
// executes — the seam figuresd -peers mounts a shard coordinator on.
func TestBackendReplacesEngine(t *testing.T) {
	var executions atomic.Int64
	var backendCalls atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 0, &executions),
		Backend: func(ctx context.Context, id string) (experiments.Result, error) {
			backendCalls.Add(1)
			return experiments.Result{ID: id, Table: &experiments.Table{
				ID:      id,
				Title:   "from the fleet",
				Headers: []string{"h"},
				Rows:    [][]string{{"v"}},
			}}, nil
		},
	}))
	defer ts.Close()
	status, body := get(t, ts, "/experiments/E1")
	if status != http.StatusOK || !strings.Contains(body, "from the fleet") {
		t.Fatalf("backend-served response = %d %q", status, body)
	}
	if n := executions.Load(); n != 0 {
		t.Errorf("local registry executed %d times despite a backend", n)
	}
	if n := backendCalls.Load(); n != 1 {
		t.Errorf("backend called %d times, want 1", n)
	}
	// Unknown ids are still rejected by the registry before the
	// backend is consulted.
	if status, _ := get(t, ts, "/experiments/E99"); status != http.StatusNotFound {
		t.Errorf("unknown id with backend: status %d", status)
	}
	if n := backendCalls.Load(); n != 1 {
		t.Errorf("backend consulted for an unknown id")
	}
}
