package server

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/hist"
	"repro/internal/sched"
)

// Endpoint labels for the per-endpoint latency histograms: the two
// serving paths whose latency distributions matter under load. The
// same labels key StatsResponse.Endpoints and the load harness's
// client-side histograms, so server- and client-side distributions
// line up by name.
const (
	// EndpointExperiment is a whole-experiment fetch:
	// GET /experiments/{id}[?format=...].
	EndpointExperiment = "experiment"
	// EndpointParam is a non-default parameterized fetch:
	// GET /experiments/{family}?k=... (a default point, however
	// spelled, counts under EndpointExperiment — it is the fixed
	// experiment).
	EndpointParam = "param"
	// EndpointSlice is a prefix-slice fetch:
	// GET /experiments/{id}?prefixes=...
	EndpointSlice = "slice"
)

// StatsResponse is the GET /stats body: one process's operational
// counters since startup. It exists so operators can watch a figuresd
// instance and so a shard coordinator can rank workers — InFlight is
// the load signal least-loaded selection seeds from. Counters only
// ever grow (except InFlight, which tracks the instant); the response
// is a snapshot, not an atomic cut across fields.
type StatsResponse struct {
	// RegistryVersion identifies the experiment generation this
	// process serves (cache keys depend on it).
	RegistryVersion string `json:"registry_version"`
	// InFlight is the number of experiment requests currently between
	// arrival and response — including time spent waiting on another
	// request's singleflight execution.
	InFlight int64 `json:"in_flight"`
	// Requests counts experiment requests accepted (valid id and
	// format) since startup, whatever their outcome.
	Requests int64 `json:"requests"`
	// Cache carries the result store's counters; absent when the
	// process runs cacheless or the store does not report stats.
	Cache *StatsCache `json:"cache,omitempty"`
	// Experiments holds per-experiment latency counters, keyed by id;
	// an experiment never requested has no entry.
	Experiments map[string]StatsExperiment `json:"experiments"`
	// Endpoints holds per-endpoint latency histograms
	// (EndpointExperiment, EndpointSlice), keyed by endpoint label; an
	// endpoint never hit has no entry. Quantiles follow internal/hist's
	// contract: bucket upper bounds, overshooting the true value by at
	// most hist.Growth (≈18.9%).
	Endpoints map[string]hist.Snapshot `json:"endpoints"`
	// Exploration accumulates the memoized explorer's counters over
	// every reduced run served (Options.Reduce); absent until the first
	// reduced run.
	Exploration *StatsExploration `json:"exploration,omitempty"`
}

// StatsExploration sums the memoized exploration counters
// (sched.MemoStats) across the reduced runs this process executed —
// the observability half of the reduced mode: executions accounted,
// replays actually performed, and the visited/pruned state totals.
// StatesShared counts memo entries reused across the parallel
// explorer's prefix ranges (0 on serial runs); Workers sums each
// run's goroutine fan-out, so workers/reduced_runs is the average
// parallelism the reduced path actually got.
type StatsExploration struct {
	ReducedRuns   int64 `json:"reduced_runs"`
	Executions    int64 `json:"executions"`
	Replays       int64 `json:"replays"`
	StatesVisited int64 `json:"states_visited"`
	StatesPruned  int64 `json:"states_pruned"`
	StatesShared  int64 `json:"states_shared"`
	Workers       int64 `json:"workers"`
}

// StatsCache mirrors cache.Stats on the wire. The slice_* counters
// track the artifact store's prefix-slice traffic (the worker-level
// half of the fleet cache hierarchy); they stay zero on stores that
// only ever see whole results.
type StatsCache struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	SliceHits   int64   `json:"slice_hits"`
	SliceMisses int64   `json:"slice_misses"`
	SliceStores int64   `json:"slice_stores"`
	Corrupt     int64   `json:"corrupt"`
	Evicted     int64   `json:"evicted"`
	HitRate     float64 `json:"hit_rate"`
}

// StatsExperiment is one experiment's request-latency record. Times
// are wall-clock milliseconds as observed by the serving path, so a
// request that joined an in-flight execution or hit the cache reports
// its (short) wait, not the runner's cost.
type StatsExperiment struct {
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	TotalMillis float64 `json:"total_ms"`
	MaxMillis   float64 `json:"max_ms"`
	LastMillis  float64 `json:"last_ms"`
	// Histogram is the experiment's full latency distribution. The
	// count/total/max fields above predate it and keep their exact
	// wire form; the histogram is additive, so existing consumers
	// (the shard coordinator's probe, old dashboards) parse unchanged.
	Histogram *hist.Snapshot `json:"histogram,omitempty"`
}

// expStat is the internal accumulator behind StatsExperiment.
type expStat struct {
	count, errors    int64
	total, max, last time.Duration
	lat              hist.Histogram
}

// record folds one served experiment request into the counters: the
// per-experiment accumulator and the per-endpoint histogram.
func (s *Server) record(endpoint, id string, d time.Duration, failed bool) {
	if h := s.endpointLat[endpoint]; h != nil {
		h.Record(d)
	}
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.perExp[id]
	if st == nil {
		st = &expStat{}
		s.perExp[id] = st
	}
	st.count++
	if failed {
		st.errors++
	}
	st.total += d
	st.last = d
	if d > st.max {
		st.max = d
	}
	st.lat.Record(d)
}

// recordReduced folds one reduced run's explorer counters into the
// /stats exploration totals.
func (s *Server) recordReduced(m sched.MemoStats) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	s.reducedRuns++
	s.memoTotals.Executions += m.Executions
	s.memoTotals.Replays += m.Replays
	s.memoTotals.StatesVisited += m.StatesVisited
	s.memoTotals.StatesPruned += m.StatesPruned
	s.memoTotals.StatesShared += m.StatesShared
	s.memoTotals.Workers += m.Workers
}

// explorationStats snapshots the reduced-run totals, nil before the
// first reduced run so the section stays absent on exhaustive-only
// processes.
func (s *Server) explorationStats() *StatsExploration {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if s.reducedRuns == 0 {
		return nil
	}
	return &StatsExploration{
		ReducedRuns:   s.reducedRuns,
		Executions:    int64(s.memoTotals.Executions),
		Replays:       int64(s.memoTotals.Replays),
		StatesVisited: int64(s.memoTotals.StatesVisited),
		StatesPruned:  int64(s.memoTotals.StatesPruned),
		StatesShared:  int64(s.memoTotals.StatesShared),
		Workers:       int64(s.memoTotals.Workers),
	}
}

func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func (s *Server) experimentStats() map[string]StatsExperiment {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := make(map[string]StatsExperiment, len(s.perExp))
	for id, st := range s.perExp {
		snap := st.lat.Snapshot()
		out[id] = StatsExperiment{
			Count:       st.count,
			Errors:      st.errors,
			TotalMillis: millis(st.total),
			MaxMillis:   millis(st.max),
			LastMillis:  millis(st.last),
			Histogram:   &snap,
		}
	}
	return out
}

// endpointStats snapshots the per-endpoint histograms, dropping
// endpoints that never saw a request.
func (s *Server) endpointStats() map[string]hist.Snapshot {
	out := make(map[string]hist.Snapshot, len(s.endpointLat))
	for name, h := range s.endpointLat {
		if h.Count() == 0 {
			continue
		}
		out[name] = h.Snapshot()
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		RegistryVersion: experiments.RegistryVersion,
		InFlight:        s.inFlight.Load(),
		Requests:        s.requests.Load(),
		Experiments:     s.experimentStats(),
		Endpoints:       s.endpointStats(),
		Exploration:     s.explorationStats(),
	}
	// The engine-facing cache interface has no counters; only stores
	// that report them (internal/cache.Store) appear in the response.
	if cs, ok := s.cache.(interface{ Stats() cache.Stats }); ok {
		st := cs.Stats()
		resp.Cache = &StatsCache{
			Hits:        st.Hits,
			Misses:      st.Misses,
			SliceHits:   st.SliceHits,
			SliceMisses: st.SliceMisses,
			SliceStores: st.SliceStores,
			Corrupt:     st.Corrupt,
			Evicted:     st.Evicted,
			HitRate:     st.HitRate(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
