package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// getWithHeader is get plus the response headers, for asserting the
// trace-ID echo.
func getWithHeader(t *testing.T, ts *httptest.Server, path string, reqHeader map[string]string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range reqHeader {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestTraceEndpoint: a served request's span is fetchable at
// /trace/{id} using the ID the response echoed, opens with the request
// event and closes with a done event carrying the status; an unknown
// ID is a 404.
func TestTraceEndpoint(t *testing.T) {
	ts := newPrefixServer(t)
	status, _, hdr := getWithHeader(t, ts, "/experiments/S1?format=json", nil)
	if status != http.StatusOK {
		t.Fatalf("experiment request failed: %d", status)
	}
	id := hdr.Get(trace.Header)
	if id == "" {
		t.Fatalf("response carries no %s header", trace.Header)
	}

	status, body, _ := getWithHeader(t, ts, "/trace/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /trace/%s = %d: %s", id, status, body)
	}
	var tr trace.Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != id || !strings.Contains(tr.What, "/experiments/S1") {
		t.Fatalf("trace header = %q %q", tr.ID, tr.What)
	}
	if len(tr.Events) < 2 {
		t.Fatalf("events = %+v, want at least request+done", tr.Events)
	}
	if tr.Events[0].Kind != trace.KindRequest {
		t.Fatalf("first event = %+v, want %s", tr.Events[0], trace.KindRequest)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != trace.KindDone || !strings.Contains(last.Detail, "status 200") {
		t.Fatalf("last event = %+v, want a done with status 200", last)
	}
	// The cacheless run records its cache outcome as a miss.
	var sawMiss bool
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindCacheMiss {
			sawMiss = true
		}
	}
	if !sawMiss {
		t.Fatalf("no cache_miss event in %+v", tr.Events)
	}

	if status, _, _ := getWithHeader(t, ts, "/trace/nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", status)
	}
}

// TestTraceHeaderPropagation: a client-supplied Repro-Request-ID is
// honored — journaled under, echoed back — so a coordinator's ID names
// the same request in the worker's journal.
func TestTraceHeaderPropagation(t *testing.T) {
	ts := newPrefixServer(t)
	const id = "deadbeef00112233"
	status, _, hdr := getWithHeader(t, ts, "/experiments/S1?prefixes=0", map[string]string{trace.Header: id})
	if status != http.StatusOK {
		t.Fatalf("slice request failed: %d", status)
	}
	if got := hdr.Get(trace.Header); got != id {
		t.Fatalf("echoed trace id = %q, want the supplied %q", got, id)
	}
	status, body, _ := getWithHeader(t, ts, "/trace/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /trace/%s = %d", id, status)
	}
	var tr trace.Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	// The slice path records its exploration, tagged with the range.
	var sawExplore bool
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindExplore && ev.Range == "0" {
			sawExplore = true
		}
	}
	if !sawExplore {
		t.Fatalf("no explore event for range 0 in %+v", tr.Events)
	}
}

// TestMetricsExposition: /metrics renders the Prometheus text format —
// # TYPE preambles, counters matching the request traffic, and per-
// endpoint histogram series whose cumulative buckets are monotone and
// whose +Inf bucket equals _count. This is the schema CI's load-smoke
// scrape asserts against, so it changes as deliberately as /stats.
func TestMetricsExposition(t *testing.T) {
	ts := newPrefixServer(t)
	if status, _, _ := getWithHeader(t, ts, "/experiments/S1?format=json", nil); status != http.StatusOK {
		t.Fatal("experiment request failed")
	}
	if status, _, _ := getWithHeader(t, ts, "/experiments/S1?prefixes=0", nil); status != http.StatusOK {
		t.Fatal("slice request failed")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE repro_registry_info gauge",
		"# TYPE repro_requests_total counter",
		"# TYPE repro_in_flight gauge",
		"# TYPE repro_request_duration_seconds histogram",
		"# TYPE repro_experiment_requests_total counter",
		"# TYPE repro_experiment_errors_total counter",
		"# TYPE repro_experiment_duration_seconds histogram",
		"# TYPE repro_trace_requests gauge",
		"repro_requests_total 2",
		`repro_experiment_requests_total{id="S1"} 2`,
		`repro_experiment_errors_total{id="S1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// A # TYPE line appears exactly once per family.
	if n := strings.Count(body, "# TYPE repro_request_duration_seconds histogram"); n != 1 {
		t.Errorf("duration # TYPE emitted %d times, want 1", n)
	}

	for _, endpoint := range []string{EndpointExperiment, EndpointSlice} {
		assertHistogramSeries(t, body, "repro_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", endpoint), 1)
	}
	assertHistogramSeries(t, body, "repro_experiment_duration_seconds", `id="S1"`, 2)
}

// assertHistogramSeries checks one labeled histogram's invariants in
// the exposition body: at least one finite bucket, cumulative counts
// monotone, +Inf bucket == _count == wantCount.
func assertHistogramSeries(t *testing.T, body, name, label string, wantCount int64) {
	t.Helper()
	bucketRe := regexp.MustCompile(
		`(?m)^` + regexp.QuoteMeta(name+"_bucket{"+label+",le=") + `"([^"]+)"\} (\d+)$`)
	matches := bucketRe.FindAllStringSubmatch(body, -1)
	if len(matches) < 2 {
		t.Fatalf("%s{%s}: %d bucket lines, want ≥ 2 (finite + +Inf)", name, label, len(matches))
	}
	var prev int64 = -1
	var inf int64 = -1
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("%s{%s}: bucket counts not cumulative: %d after %d", name, label, n, prev)
		}
		prev = n
		if m[1] == "+Inf" {
			inf = n
		}
	}
	if inf != wantCount {
		t.Fatalf("%s{%s}: +Inf bucket = %d, want %d", name, label, inf, wantCount)
	}
	countRe := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name+"_count{"+label+"}") + ` (\d+)$`)
	cm := countRe.FindStringSubmatch(body)
	if cm == nil {
		t.Fatalf("%s{%s}: no _count line", name, label)
	}
	if n, _ := strconv.ParseInt(cm[1], 10, 64); n != wantCount {
		t.Fatalf("%s{%s}: _count = %d, want %d", name, label, n, wantCount)
	}
}

// TestMetricsSliceCacheTrace: with an artifact store behind the
// server, a cold slice records miss+store and a warm identical slice
// records a hit — the journal evidence for the read-through hierarchy.
func TestMetricsSliceCacheTrace(t *testing.T) {
	ts, _, _ := newCachedPrefixServer(t)
	const cold, warm = "aaaa000000000001", "aaaa000000000002"
	if status, _, _ := getWithHeader(t, ts, "/experiments/S1?prefixes=0",
		map[string]string{trace.Header: cold}); status != http.StatusOK {
		t.Fatal("cold slice failed")
	}
	if status, _, _ := getWithHeader(t, ts, "/experiments/S1?prefixes=0",
		map[string]string{trace.Header: warm}); status != http.StatusOK {
		t.Fatal("warm slice failed")
	}
	kinds := func(id string) map[string]bool {
		_, body, _ := getWithHeader(t, ts, "/trace/"+id, nil)
		var tr trace.Trace
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Fatalf("trace %s: %v", id, err)
		}
		out := make(map[string]bool)
		for _, ev := range tr.Events {
			out[ev.Kind] = true
		}
		return out
	}
	coldKinds := kinds(cold)
	if !coldKinds[trace.KindSliceCacheMiss] || !coldKinds[trace.KindSliceCacheStore] {
		t.Fatalf("cold slice kinds = %v, want miss+store", coldKinds)
	}
	warmKinds := kinds(warm)
	if !warmKinds[trace.KindSliceCacheHit] || warmKinds[trace.KindExplore] {
		t.Fatalf("warm slice kinds = %v, want a hit and no exploration", warmKinds)
	}
}
