package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
)

// paramServer stands up a server over one synthetic parameterized
// family (integer x, default 1) and returns it with the point
// execution counter.
func paramServer(t *testing.T, opts Options) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	execs := new(atomic.Int64)
	fam := experiments.Family{
		ID:  "P1",
		Doc: "synthetic parameterized family",
		Params: []experiments.ParamSpec{
			{Name: "x", Kind: experiments.ParamInt, Default: "1", Min: 0, Max: 9, Doc: "the point"},
			{Name: "eps", Kind: experiments.ParamFloat, Default: "0.5", Min: 0, Max: 1, Doc: "a float knob"},
		},
		Run: func(ps experiments.ParamSet) (*experiments.Table, error) {
			execs.Add(1)
			return &experiments.Table{
				ID:      "P1",
				Title:   fmt.Sprintf("point x=%d eps=%g", ps.Int("x"), ps.Float("eps")),
				Headers: []string{"x"},
				Rows:    [][]string{{fmt.Sprint(ps.Int("x"))}},
			}, nil
		},
	}
	defaults, err := experiments.DefaultParams(fam)
	if err != nil {
		t.Fatal(err)
	}
	opts.Registry = map[string]experiments.Runner{
		"P1": func() (*experiments.Table, error) { return fam.Run(defaults) },
	}
	opts.Families = map[string]experiments.Family{"P1": fam}
	ts := httptest.NewServer(New(opts))
	t.Cleanup(ts.Close)
	return ts, execs
}

// TestParamEndpointOrderIndependent: ?x=3&eps=0.25 and ?eps=0.25&x=3
// are one point — identical bytes and a single execution (the second
// request is a cache hit under the canonical identity).
func TestParamEndpointOrderIndependent(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, execs := paramServer(t, Options{Cache: store})
	code1, body1 := get(t, ts, "/experiments/P1?x=3&eps=0.25")
	code2, body2 := get(t, ts, "/experiments/P1?eps=0.25&x=3")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("codes = %d, %d", code1, code2)
	}
	if body1 != body2 {
		t.Fatalf("parameter order changed the bytes:\n%s\nvs\n%s", body1, body2)
	}
	if !strings.Contains(body1, "point x=3 eps=0.25") {
		t.Fatalf("body = %q", body1)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (reordered request must hit the cache)", n)
	}
}

// TestParamEndpointDefaultAliasesFixed: spelling out the defaults
// serves the fixed experiment's identity — bytes equal to the bare
// request, one execution total.
func TestParamEndpointDefaultAliasesFixed(t *testing.T) {
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, execs := paramServer(t, Options{Cache: store})
	_, fixed := get(t, ts, "/experiments/P1")
	_, spelled := get(t, ts, "/experiments/P1?x=1&eps=0.5")
	if fixed != spelled {
		t.Fatalf("spelled-out defaults differ from the fixed experiment:\n%s\nvs\n%s", fixed, spelled)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (default point shares the fixed cache entry)", n)
	}
}

// TestParamEndpointValidation: a bad point is a field-level 400, not a
// 500 and not an execution.
func TestParamEndpointValidation(t *testing.T) {
	ts, execs := paramServer(t, Options{})
	cases := []struct {
		path    string
		wantSub string
	}{
		{"/experiments/P1?q=1", `unknown parameter "q"`},
		{"/experiments/P1?x=11", `parameter "x"`},
		{"/experiments/P1?x=1.5", `parameter "x"`},
		{"/experiments/P1?eps=2", `parameter "eps"`},
		{"/experiments/P1?x=1&x=2", `parameter "x"`},
	}
	for _, tc := range cases {
		code, body := get(t, ts, tc.path)
		if code != http.StatusBadRequest || !strings.Contains(body, tc.wantSub) {
			t.Errorf("GET %s = %d %q, want 400 naming %q", tc.path, code, body, tc.wantSub)
		}
	}
	if n := execs.Load(); n != 0 {
		t.Errorf("invalid requests executed %d times", n)
	}
}

// TestParamOnUnparameterizedExperiment: parameters against an
// experiment with no family are a client error.
func TestParamOnUnparameterizedExperiment(t *testing.T) {
	var execs atomic.Int64
	ts := httptest.NewServer(New(Options{
		Registry: countingRegistry("E1", 0, &execs),
	}))
	defer ts.Close()
	code, body := get(t, ts, "/experiments/E1?k=3")
	if code != http.StatusBadRequest || !strings.Contains(body, "takes no parameters") {
		t.Fatalf("GET /experiments/E1?k=3 = %d %q", code, body)
	}
}

// TestParamEndpointStats: non-default points count under the "param"
// endpoint label; default and bare requests stay under "experiment".
func TestParamEndpointStats(t *testing.T) {
	ts, _ := paramServer(t, Options{})
	get(t, ts, "/experiments/P1?x=2")
	get(t, ts, "/experiments/P1")
	code, body := get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints == nil {
		t.Fatal("no endpoint section in /stats")
	}
	if _, ok := st.Endpoints[EndpointParam]; !ok {
		t.Fatalf("endpoints = %v, want a %q entry", st.Endpoints, EndpointParam)
	}
}

// TestIndexListsFamilies: the index advertises each family's schema —
// the discoverable surface of the parameterized API.
func TestIndexListsFamilies(t *testing.T) {
	ts, _ := paramServer(t, Options{})
	code, body := get(t, ts, "/experiments")
	if code != http.StatusOK {
		t.Fatalf("/experiments = %d", code)
	}
	var idx struct {
		Families map[string]struct {
			Doc          string `json:"doc"`
			SpaceVersion string `json:"space_version"`
			Params       []struct {
				Name    string  `json:"name"`
				Kind    string  `json:"kind"`
				Default string  `json:"default"`
				Min     float64 `json:"min"`
				Max     float64 `json:"max"`
			} `json:"params"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatal(err)
	}
	fam, ok := idx.Families["P1"]
	if !ok {
		t.Fatalf("families = %v, want P1", idx.Families)
	}
	if len(fam.Params) != 2 || fam.Params[0].Name != "eps" || fam.Params[1].Name != "x" {
		t.Fatalf("params = %+v, want eps then x (sorted)", fam.Params)
	}
	if fam.Params[0].Kind != "float" || fam.Params[1].Kind != "int" {
		t.Fatalf("kinds = %+v", fam.Params)
	}
	if fam.SpaceVersion == "" {
		t.Fatal("family has no space version in the index")
	}
}

// TestParamBackendRoutes: with a ParamBackend configured (the -peers
// deployment), non-default points go through it, not the local engine.
func TestParamBackendRoutes(t *testing.T) {
	var backendCalls atomic.Int64
	var backendParams string
	ts, execs := paramServer(t, Options{
		ParamBackend: func(ctx context.Context, id string, ps experiments.ParamSet) (experiments.Result, error) {
			backendCalls.Add(1)
			backendParams = ps.Canonical()
			return experiments.Result{ID: id, Table: &experiments.Table{ID: id, Title: "from backend"}}, nil
		},
	})
	code, body := get(t, ts, "/experiments/P1?x=4")
	if code != http.StatusOK || !strings.Contains(body, "from backend") {
		t.Fatalf("GET = %d %q", code, body)
	}
	if backendCalls.Load() != 1 || execs.Load() != 0 {
		t.Fatalf("backend calls = %d, local executions = %d", backendCalls.Load(), execs.Load())
	}
	if backendParams != "eps=0.5,x=4" {
		t.Fatalf("backend saw params %q", backendParams)
	}
}
