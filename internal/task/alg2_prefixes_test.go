package task

import "testing"

// TestAlg2PrefixShardingDifferential: the exhaustive Algorithm 2
// validation sweep splits over an Alg2Roots partition exactly like the
// Algorithm 1 spaces — per-slice run counts sum to the ExploreAlg2
// total (the order-insensitive aggregate of this space), and every
// slice validates its executions.
func TestAlg2PrefixShardingDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	task := ChoiceTask(2)
	plan := planFor(t, task)
	input := task.Inputs[0]
	whole, err := ExploreAlg2(plan, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 4} {
		roots, err := Alg2Roots(plan, input, depth)
		if err != nil {
			t.Fatal(err)
		}
		if depth > 0 && len(roots) < 2 {
			t.Fatalf("depth %d partition has %d roots", depth, len(roots))
		}
		total := 0
		for _, root := range roots {
			n, err := ExploreAlg2Prefixes(plan, input, 2, [][]int{root})
			if err != nil {
				t.Fatalf("slice %v: %v", root, err)
			}
			total += n
		}
		if total != whole {
			t.Fatalf("depth %d: slices sum to %d executions, ExploreAlg2 visits %d", depth, total, whole)
		}
	}
}
