package task

import (
	"strings"
	"testing"
)

// coveringFailureTask is solvable per-input (connected Δ(X)) but fails
// the covering condition: a process that only knows x_0 = 1 cannot
// commit to an output value safe for both extensions.
func coveringFailureTask() *Task {
	return &Task{
		Name:    "covering-failure",
		Inputs:  []Pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		Outputs: []Pair{{0, 0}, {1, 1}},
		Delta: map[Pair][]Pair{
			{0, 0}: {{0, 0}},
			{0, 1}: {{1, 1}},
			{1, 0}: {{0, 0}},
			{1, 1}: {{1, 1}},
		},
	}
}

func TestCoveringConditionFailsAlone(t *testing.T) {
	tk := coveringFailureTask()
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
	err := tk.CheckSolvable(tk.Outputs)
	if err == nil {
		t.Fatal("covering-failure task accepted")
	}
	if !strings.Contains(err.Error(), "covering") {
		t.Fatalf("expected a covering failure, got: %v", err)
	}
	if _, ok := tk.FindSolvableSubset(); ok {
		t.Fatal("covering-failure task reported solvable via a subset")
	}
}

func TestConnectivityFailureReported(t *testing.T) {
	c := BinaryConsensus()
	err := c.CheckSolvable(c.Outputs)
	if err == nil {
		t.Fatal("consensus accepted")
	}
	if !strings.Contains(err.Error(), "connectivity") {
		t.Fatalf("expected a connectivity failure, got: %v", err)
	}
}

func TestValidateCatchesBrokenTasks(t *testing.T) {
	broken := &Task{
		Name:    "broken",
		Inputs:  []Pair{{0, 0}},
		Outputs: []Pair{{0, 0}},
		Delta:   map[Pair][]Pair{{0, 0}: {{9, 9}}},
	}
	if err := broken.Validate(); err == nil {
		t.Fatal("Delta value outside outputs accepted")
	}
	empty := &Task{
		Name:    "empty-delta",
		Inputs:  []Pair{{0, 0}},
		Outputs: []Pair{{0, 0}},
		Delta:   map[Pair][]Pair{},
	}
	if err := empty.Validate(); err == nil {
		t.Fatal("input without Delta entry accepted")
	}
	stray := &Task{
		Name:    "stray-key",
		Inputs:  []Pair{{0, 0}},
		Outputs: []Pair{{0, 0}},
		Delta:   map[Pair][]Pair{{0, 0}: {{0, 0}}, {5, 5}: {{0, 0}}},
	}
	if err := stray.Validate(); err == nil {
		t.Fatal("Delta key outside inputs accepted")
	}
}

func TestPartialInputsAndExtensions(t *testing.T) {
	tk := DiscreteEpsAgreement(2)
	p1 := tk.PartialInputs(1) // missing process 1's input
	if len(p1) != 2 {
		t.Fatalf("partials = %v", p1)
	}
	for _, p := range p1 {
		if p[1] != Bot {
			t.Fatalf("partial %v keeps component 1", p)
		}
		exts := tk.Extensions(p)
		if len(exts) != 2 {
			t.Fatalf("extensions of %v = %v", p, exts)
		}
	}
}

func TestLegalPartial(t *testing.T) {
	tk := DiscreteEpsAgreement(2)
	// With input (0,1), a lone decision 0 by p0 extends to (0,0) or (0,1).
	if !tk.LegalPartial(Pair{0, 1}, 0, 0) {
		t.Error("decision 0 by p0 should be extendable")
	}
	// With input (0,0), the only legal output is (0,0): value 2 is not
	// extendable.
	if tk.LegalPartial(Pair{0, 0}, 0, 2) {
		t.Error("decision 2 by p0 should not be extendable for (0,0)")
	}
}

func TestPlanPathsPaddedFront(t *testing.T) {
	// Padding duplicates Y_0 at the front, never disturbing the tail
	// invariants (already checked elsewhere); the first two nodes of a
	// padded path are equal iff padding occurred.
	tk := CycleAgreement(6)
	sub, ok := tk.FindSolvableSubset()
	if !ok {
		t.Fatal("cycle task unsolvable")
	}
	plan, err := tk.BuildPlan(sub)
	if err != nil {
		t.Fatal(err)
	}
	padded := 0
	for _, x := range tk.Inputs {
		for i := 0; i < 2; i++ {
			path, _ := plan.Path(x, i)
			if path[0] == path[1] {
				padded++
			}
		}
	}
	if padded == 0 {
		t.Skip("no padding needed for this task/plan size")
	}
}

func TestChoiceTaskAlwaysLegal(t *testing.T) {
	tk := ChoiceTask(3)
	for _, x := range tk.Inputs {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if !tk.Legal(x, Pair{a, b}) {
					t.Fatalf("choice task rejected (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestAdjacencyIsSymmetric(t *testing.T) {
	pairs := []Pair{{0, 0}, {0, 1}, {1, 0}, {2, 2}, {1, 2}}
	for _, a := range pairs {
		for _, b := range pairs {
			if AdjacentOrEqual(a, b) != AdjacentOrEqual(b, a) {
				t.Fatalf("asymmetric adjacency %v %v", a, b)
			}
		}
	}
}
