package task

import (
	"testing"

	"repro/internal/sched"
)

// planFor builds a plan for the task using the full output set (or the
// first solvable subset).
func planFor(t *testing.T, task *Task) *Plan {
	t.Helper()
	sub, ok := task.FindSolvableSubset()
	if !ok {
		t.Fatalf("task %s not solvable", task.Name)
	}
	plan, err := task.BuildPlan(sub)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestAlg2Exhaustive validates Theorem 1.2 constructively: Algorithm 2
// solves solvable tasks over every interleaving and every input.
func TestAlg2Exhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	for _, task := range []*Task{
		DiscreteEpsAgreement(2),
		ChoiceTask(2),
	} {
		plan := planFor(t, task)
		for _, input := range task.Inputs {
			runs, err := ExploreAlg2(plan, input)
			if err != nil {
				t.Fatalf("%s input %v after %d runs: %v", task.Name, input, runs, err)
			}
			if runs == 0 {
				t.Fatalf("%s input %v: no runs", task.Name, input)
			}
		}
	}
}

// TestAlg2LargerTasksSampled validates Algorithm 2 on larger tasks under
// many random schedules (exhaustive exploration would be too large).
func TestAlg2LargerTasksSampled(t *testing.T) {
	for _, task := range []*Task{
		DiscreteEpsAgreement(6),
		CycleAgreement(6),
	} {
		plan := planFor(t, task)
		for _, input := range task.Inputs {
			for seed := int64(0); seed < 30; seed++ {
				sys, res, err := RunAlg2(plan, input, sched.NewRandom(seed))
				if err != nil {
					t.Fatal(err)
				}
				if e := res.Err(); e != nil {
					t.Fatalf("%s input %v seed %d: %v", task.Name, input, seed, e)
				}
				if !sys.Decided[0] || !sys.Decided[1] {
					t.Fatalf("%s input %v seed %d: undecided process", task.Name, input, seed)
				}
				if err := CheckRun(task, input, sys); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

// TestAlg2Solo checks that a process running solo still decides, and its
// decision extends to a legal output for every possible input of the
// crashed process (wait-freedom of the universal construction).
func TestAlg2Solo(t *testing.T) {
	task := DiscreteEpsAgreement(4)
	plan := planFor(t, task)
	for _, input := range task.Inputs {
		for pid := 0; pid < 2; pid++ {
			sys, res, err := RunAlg2(plan, input, sched.Solo{Pid: pid})
			if err != nil {
				t.Fatal(err)
			}
			_ = res
			if !sys.Decided[pid] {
				t.Fatalf("solo %d input %v: no decision", pid, input)
			}
			if err := CheckRun(task, input, sys); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAlg2UnderCrashes checks every crash point of either process under a
// round-robin schedule: the survivor decides a value extendable to a legal
// output.
func TestAlg2UnderCrashes(t *testing.T) {
	task := DiscreteEpsAgreement(4)
	plan := planFor(t, task)
	maxSteps := 2*(plan.L/2) + 3 + 4 // Alg1 steps + input ops bound
	for _, input := range task.Inputs {
		for victim := 0; victim < 2; victim++ {
			for crashAt := 0; crashAt <= maxSteps; crashAt++ {
				scheduler := sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{victim: crashAt})
				sys, res, err := RunAlg2(plan, input, scheduler)
				if err != nil {
					t.Fatal(err)
				}
				if e := res.Errs[1-victim]; e != nil {
					t.Fatalf("input %v victim %d crashAt %d: survivor error %v",
						input, victim, crashAt, e)
				}
				if !sys.Decided[1-victim] {
					t.Fatalf("input %v victim %d crashAt %d: survivor undecided",
						input, victim, crashAt)
				}
				if err := CheckRun(task, input, sys); err != nil {
					t.Fatalf("input %v victim %d crashAt %d: %v", input, victim, crashAt, err)
				}
			}
		}
	}
}

// TestAlg2ValidityOnAgreement checks the ε-agreement-specific validity:
// with equal inputs x both processes decide exactly xL.
func TestAlg2ValidityOnAgreement(t *testing.T) {
	l := 4
	task := DiscreteEpsAgreement(l)
	plan := planFor(t, task)
	for _, x := range []int{0, 1} {
		input := Pair{x, x}
		for seed := int64(0); seed < 20; seed++ {
			sys, res, err := RunAlg2(plan, input, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatal(e)
			}
			want := x * l
			if sys.Outs[0] != want || sys.Outs[1] != want {
				t.Fatalf("input %v: outputs %v, want both %d", input, sys.Outs, want)
			}
		}
	}
}
