package task

import (
	"testing"
)

func TestPairPartialExtends(t *testing.T) {
	x := Pair{3, 5}
	p := x.Partial(1)
	if p != (Pair{3, Bot}) {
		t.Fatalf("Partial = %v", p)
	}
	if !x.Extends(p) {
		t.Fatal("x should extend its own partial")
	}
	if (Pair{4, 5}).Extends(p) {
		t.Fatal("(4,5) should not extend (3,⊥)")
	}
	if !(Pair{3, 9}).Extends(p) {
		t.Fatal("(3,9) should extend (3,⊥)")
	}
}

func TestAdjacentOrEqual(t *testing.T) {
	tests := []struct {
		a, b Pair
		want bool
	}{
		{Pair{1, 2}, Pair{1, 2}, true},
		{Pair{1, 2}, Pair{1, 3}, true},
		{Pair{1, 2}, Pair{0, 2}, true},
		{Pair{1, 2}, Pair{0, 3}, false},
	}
	for _, tc := range tests {
		if got := AdjacentOrEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("AdjacentOrEqual(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestValidateExamples(t *testing.T) {
	for _, task := range []*Task{
		BinaryConsensus(),
		DiscreteEpsAgreement(4),
		DiscreteEpsAgreement(9),
		ChoiceTask(2),
		CycleAgreement(6),
	} {
		if err := task.Validate(); err != nil {
			t.Errorf("%s: %v", task.Name, err)
		}
	}
}

func TestConsensusNotSolvable(t *testing.T) {
	// Lemma 2.1 via Lemma 5.7: binary consensus fails the BMZ conditions
	// for every output subset — its output graph for mixed inputs is
	// {(0,0),(1,1)}, disconnected.
	c := BinaryConsensus()
	if err := c.CheckSolvable(c.Outputs); err == nil {
		t.Fatal("consensus passed BMZ check with full outputs")
	}
	if _, ok := c.FindSolvableSubset(); ok {
		t.Fatal("consensus reported 1-resilient solvable")
	}
}

func TestEpsAgreementSolvable(t *testing.T) {
	// Lemma 2.2: ε-agreement is solvable; the full output set works.
	for _, l := range []int{2, 4, 9} {
		task := DiscreteEpsAgreement(l)
		if err := task.CheckSolvable(task.Outputs); err != nil {
			t.Errorf("L=%d: %v", l, err)
		}
	}
}

func TestChoiceAndCycleSolvable(t *testing.T) {
	for _, task := range []*Task{ChoiceTask(2), ChoiceTask(3), CycleAgreement(6), CycleAgreement(8)} {
		if _, ok := task.FindSolvableSubset(); !ok {
			t.Errorf("%s reported unsolvable", task.Name)
		}
	}
}

func TestBuildPlanShape(t *testing.T) {
	task := DiscreteEpsAgreement(4)
	plan, err := task.BuildPlan(task.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.L < 4 || plan.L%2 != 0 {
		t.Fatalf("L = %d, want even ≥ 4", plan.L)
	}
	for _, x := range task.Inputs {
		for i := 0; i < 2; i++ {
			path, ok := plan.Path(x, i)
			if !ok {
				t.Fatalf("missing path (%v,%d)", x, i)
			}
			if len(path) != plan.L+1 {
				t.Fatalf("path (%v,%d) has %d nodes, want L+1=%d", x, i, len(path), plan.L+1)
			}
			if path[0] != plan.DeltaFull[x] {
				t.Errorf("path (%v,%d) does not start at δ(X)", x, i)
			}
			if path[plan.L] != plan.DeltaPartial[x.Partial(i)] {
				t.Errorf("path (%v,%d) does not end at δ(X^i)", x, i)
			}
			// Y_0..Y_{L-1} legal for X; consecutive nodes adjacent/equal.
			for j := 0; j <= plan.L-1; j++ {
				if !task.Legal(x, path[j]) {
					t.Errorf("path (%v,%d) node %d = %v not legal", x, i, j, path[j])
				}
			}
			for j := 0; j < plan.L; j++ {
				if !AdjacentOrEqual(path[j], path[j+1]) {
					t.Errorf("path (%v,%d) nodes %d,%d not adjacent", x, i, j, j+1)
				}
			}
			// Y_{L-1} and Y_L agree outside component i.
			if path[plan.L-1][1-i] != path[plan.L][1-i] {
				t.Errorf("path (%v,%d): Y_{L-1}=%v and Y_L=%v differ in kept component",
					x, i, path[plan.L-1], path[plan.L])
			}
		}
	}
}

func TestBuildPlanRejectsConsensus(t *testing.T) {
	c := BinaryConsensus()
	if _, err := c.BuildPlan(c.Outputs); err == nil {
		t.Fatal("BuildPlan accepted consensus")
	}
}

func TestPlanDeltaPartialIndependentOfExtension(t *testing.T) {
	// δ(X^i) must depend only on the partial input, never on which
	// extension the other process holds — Algorithm 2's d=1 branch knows
	// only the partial input.
	task := DiscreteEpsAgreement(4)
	plan, err := task.BuildPlan(task.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for _, xp := range task.PartialInputs(i) {
			yl, ok := plan.DeltaPartial[xp]
			if !ok {
				t.Fatalf("no δ for partial %v", xp)
			}
			// The kept component must be extendable for every extension.
			for _, x := range task.Extensions(xp) {
				if !task.LegalPartial(x, 1-i, yl[1-i]) {
					t.Errorf("δ(%v)=%v not extendable for %v", xp, yl, x)
				}
			}
		}
	}
}
