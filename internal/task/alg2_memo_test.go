package task

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/sched"
	"repro/internal/sched/schedtest"
)

// alg2FP fingerprints one completed Algorithm 2 execution in
// relabelling-invariant terms: per-process (task input, output,
// decided, final register contents across both memories) tuples,
// sorted — the multiset the memoized explorer is allowed to preserve.
func alg2FP(sys *Alg2System, input Pair) string {
	pair := make([]string, 2)
	for i := 0; i < 2; i++ {
		pair[i] = fmt.Sprintf("in%d out%d dec%v task%v agree%v itask%v iagree%v",
			input[i], sys.Outs[i], sys.Decided[i],
			sys.memTask.Peek(i), sys.memAgree.Peek(i),
			sys.memTask.InputWritten(i), sys.memAgree.InputWritten(i))
	}
	sort.Strings(pair)
	return fmt.Sprint(pair)
}

// TestAlg2MemoMatchesExhaustive pins the memoized Algorithm 2
// exploration to the exhaustive one across tasks and inputs: identical
// fingerprint multisets (via a sched-level differential on the same
// system factory), identical execution counts from the public
// ExploreAlg2Memo, and real pruning.
func TestAlg2MemoMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	for _, tk := range []*Task{ChoiceTask(2), CycleAgreement(6)} {
		plan := planFor(t, tk)
		for _, input := range plan.Task.Inputs {
			name := fmt.Sprintf("%s_in%d%d", tk.Name, input[0], input[1])
			t.Run(name, func(t *testing.T) {
				// Exhaustive fingerprint multiset.
				want := schedtest.Counts{}
				var cur *Alg2System
				factory := func() []sched.ProcFunc {
					cur = NewAlg2System(plan)
					return []sched.ProcFunc{cur.Proc(0, input[0]), cur.Proc(1, input[1])}
				}
				runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
					want.Add(alg2FP(cur, input))
				})
				if err != nil {
					t.Fatal(err)
				}

				// Memoized multiset over the identical system.
				memoFactory := func() sched.MemoInstance {
					sys := NewAlg2System(plan)
					return sched.MemoInstance{
						Procs: []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])},
						State: sys.StateKey,
						Leaf: func(*sched.Result) any {
							return schedtest.Counts{alg2FP(sys, input): 1}
						},
					}
				}
				agg, stats, err := sched.ExploreMemo(memoFactory, sched.MemoOptions{Merge: schedtest.Merge})
				if err != nil {
					t.Fatal(err)
				}
				if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
					t.Fatalf("fingerprint multisets diverge:\n%s", d)
				}
				if stats.Executions != runs {
					t.Fatalf("memo accounts for %d executions, exhaustive ran %d", stats.Executions, runs)
				}
				if stats.Replays >= runs {
					t.Errorf("memoization saved nothing: %d replays for %d executions", stats.Replays, runs)
				}
				if stats.StatesPruned == 0 {
					t.Errorf("no subtree pruned on a %d-execution space", runs)
				}

				// The public validating sweep agrees on the count.
				mstats, err := ExploreAlg2Memo(plan, input)
				if err != nil {
					t.Fatalf("ExploreAlg2Memo: %v", err)
				}
				if mstats.Executions != runs {
					t.Fatalf("ExploreAlg2Memo accounts for %d executions, want %d", mstats.Executions, runs)
				}
			})
		}
	}
}

// TestAlg2MemoPrefixUnion pins the sharded memoized validation sweep:
// per-slice execution counts over any Alg2Roots partition sum to the
// ExploreAlg2 total, with every visited leaf validated.
func TestAlg2MemoPrefixUnion(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	task := ChoiceTask(2)
	plan := planFor(t, task)
	input := task.Inputs[0]
	whole, err := ExploreAlg2(plan, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 4} {
		roots, err := Alg2Roots(plan, input, depth)
		if err != nil {
			t.Fatal(err)
		}
		if depth > 0 && len(roots) < 2 {
			t.Fatalf("depth %d partition has %d roots", depth, len(roots))
		}
		stats, err := ExploreAlg2MemoPrefixes(plan, input, roots)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if stats.Executions != whole {
			t.Fatalf("depth %d one-call union: %d executions, want %d", depth, stats.Executions, whole)
		}
		total := 0
		for _, root := range roots {
			s, err := ExploreAlg2MemoPrefixes(plan, input, [][]int{root})
			if err != nil {
				t.Fatalf("depth %d root %v: %v", depth, root, err)
			}
			total += s.Executions
		}
		if total != whole {
			t.Fatalf("depth %d: per-root executions sum to %d, want %d", depth, total, whole)
		}
	}
}

// TestAlg2MemoSurfacesViolation ensures a validation failure in a
// visited leaf is not silently pruned away: a plan doctored to emit an
// illegal output must fail the memoized sweep.
func TestAlg2MemoSurfacesViolation(t *testing.T) {
	task := ChoiceTask(2)
	plan := planFor(t, task)
	input := task.Inputs[0]

	// Doctor a copy of the task spec so every full output is illegal,
	// while the plan still runs the original protocol paths.
	bad := *task
	bad.Delta = map[Pair][]Pair{}
	doctored := *plan
	doctored.Task = &bad

	if _, err := ExploreAlg2Memo(&doctored, input); err == nil {
		t.Fatal("memoized sweep accepted a plan whose outputs are all illegal")
	}
}
