// Package task implements distributed tasks for two processes and the
// paper's universal construction (§5.2): the Biran-Moran-Zaks graph
// characterization of 1-resilient solvability (Lemma 5.7), the δ-map and
// path machinery of §5.2.2, and Algorithm 2, which solves any wait-free
// solvable 2-process task with registers of 3 bits (Theorem 1.2).
package task

import (
	"fmt"
	"sort"
)

// Bot is the missing component of a partial configuration (the paper's ⊥).
const Bot = -1

// Pair is a 2-process configuration: Pair[i] is process i's value, Bot if
// missing. Inputs and outputs of a task are pairs of non-negative ints.
type Pair [2]int

// String formats the pair, showing ⊥ for missing components.
func (p Pair) String() string {
	f := func(v int) string {
		if v == Bot {
			return "⊥"
		}
		return fmt.Sprint(v)
	}
	return "(" + f(p[0]) + "," + f(p[1]) + ")"
}

// Partial returns the partial configuration X^i obtained from p by
// removing component i.
func (p Pair) Partial(i int) Pair {
	q := p
	q[i] = Bot
	return q
}

// Extends reports whether p extends partial q (they agree wherever q is
// not Bot).
func (p Pair) Extends(q Pair) bool {
	for i := 0; i < 2; i++ {
		if q[i] != Bot && p[i] != q[i] {
			return false
		}
	}
	return true
}

// AdjacentOrEqual reports whether two full configurations differ in at
// most one component (the edge relation of the graph G(O′) of §5.2.1,
// plus equality).
func AdjacentOrEqual(a, b Pair) bool {
	diff := 0
	for i := 0; i < 2; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	return diff <= 1
}

// Task is a 2-process task Π = (I, O, Δ). Delta maps each input
// configuration to its set of legal output configurations.
type Task struct {
	Name    string
	Inputs  []Pair
	Outputs []Pair
	Delta   map[Pair][]Pair
}

// Validate checks internal consistency: every Delta key is an input,
// every Delta value is an output, every input has at least one legal
// output.
func (t *Task) Validate() error {
	out := make(map[Pair]bool, len(t.Outputs))
	for _, o := range t.Outputs {
		out[o] = true
	}
	in := make(map[Pair]bool, len(t.Inputs))
	for _, x := range t.Inputs {
		in[x] = true
	}
	for x, ys := range t.Delta {
		if !in[x] {
			return fmt.Errorf("task %s: Delta key %v not an input", t.Name, x)
		}
		if len(ys) == 0 {
			return fmt.Errorf("task %s: input %v has no legal output", t.Name, x)
		}
		for _, y := range ys {
			if !out[y] {
				return fmt.Errorf("task %s: Delta(%v) contains %v, not an output", t.Name, x, y)
			}
		}
	}
	for _, x := range t.Inputs {
		if len(t.Delta[x]) == 0 {
			return fmt.Errorf("task %s: input %v has no Delta entry", t.Name, x)
		}
	}
	return nil
}

// Legal reports whether output configuration y is legal for input x.
func (t *Task) Legal(x, y Pair) bool {
	for _, cand := range t.Delta[x] {
		if cand == y {
			return true
		}
	}
	return false
}

// LegalPartial reports whether a single decided value v by process i is
// extendable to a legal output for input x (the correctness condition when
// the other process crashed before deciding).
func (t *Task) LegalPartial(x Pair, i, v int) bool {
	for _, cand := range t.Delta[x] {
		if cand[i] == v {
			return true
		}
	}
	return false
}

// PartialInputs returns the set I^i of partial inputs missing component i,
// sorted deterministically.
func (t *Task) PartialInputs(i int) []Pair {
	seen := map[Pair]bool{}
	var out []Pair
	for _, x := range t.Inputs {
		p := x.Partial(i)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sortPairs(out)
	return out
}

// Extensions returns the inputs of t extending partial p.
func (t *Task) Extensions(p Pair) []Pair {
	var out []Pair
	for _, x := range t.Inputs {
		if x.Extends(p) {
			out = append(out, x)
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a][0] != ps[b][0] {
			return ps[a][0] < ps[b][0]
		}
		return ps[a][1] < ps[b][1]
	})
}

// --- Example tasks ---------------------------------------------------------

// BinaryConsensus is the binary consensus task: both processes decide a
// common input value. It is not 1-resilient solvable (Lemma 2.1); the BMZ
// check (FindSolvableSubset) correctly rejects it, which the paper uses as
// the engine of its impossibility results.
func BinaryConsensus() *Task {
	return &Task{
		Name:    "binary-consensus",
		Inputs:  []Pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		Outputs: []Pair{{0, 0}, {1, 1}},
		Delta: map[Pair][]Pair{
			{0, 0}: {{0, 0}},
			{1, 1}: {{1, 1}},
			{0, 1}: {{0, 0}, {1, 1}},
			{1, 0}: {{0, 0}, {1, 1}},
		},
	}
}

// DiscreteEpsAgreement is the discretized binary ε-agreement task with
// ε = 1/L (§2): inputs are binary; outputs are values m ∈ {0..L} standing
// for m/L; if both inputs are x, both must decide xL; otherwise any two
// outputs at distance ≤ 1 are legal. It is wait-free solvable.
func DiscreteEpsAgreement(l int) *Task {
	t := &Task{
		Name:   fmt.Sprintf("eps-agreement-1/%d", l),
		Inputs: []Pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
	}
	var mixed []Pair
	for a := 0; a <= l; a++ {
		for b := 0; b <= l; b++ {
			d := a - b
			if d < 0 {
				d = -d
			}
			if d <= 1 {
				t.Outputs = append(t.Outputs, Pair{a, b})
				mixed = append(mixed, Pair{a, b})
			}
		}
	}
	t.Delta = map[Pair][]Pair{
		{0, 0}: {{0, 0}},
		{1, 1}: {{l, l}},
		{0, 1}: mixed,
		{1, 0}: mixed,
	}
	return t
}

// ChoiceTask is a trivially solvable task: every combination of outputs
// from {0..m-1} is legal for every input. Used as a positive control.
func ChoiceTask(m int) *Task {
	t := &Task{
		Name:   fmt.Sprintf("choice-%d", m),
		Inputs: []Pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
	}
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			t.Outputs = append(t.Outputs, Pair{a, b})
		}
	}
	t.Delta = map[Pair][]Pair{}
	for _, x := range t.Inputs {
		t.Delta[x] = t.Outputs
	}
	return t
}

// CycleAgreement is approximate agreement on a cycle of m ≥ 4 vertices:
// each process starts at vertex 0 or vertex m/2 and must decide vertices
// that are equal or adjacent on the cycle; with equal inputs, both decide
// that input. Like path-based agreement it is solvable, but the output
// graph is a cycle rather than a path, exercising the BFS path machinery
// on a non-tree graph.
func CycleAgreement(m int) *Task {
	half := m / 2
	t := &Task{
		Name:   fmt.Sprintf("cycle-agreement-%d", m),
		Inputs: []Pair{{0, 0}, {0, half}, {half, 0}, {half, half}},
	}
	var mixed []Pair
	for a := 0; a < m; a++ {
		for _, b := range []int{a, (a + 1) % m, (a + m - 1) % m} {
			p := Pair{a, b}
			t.Outputs = append(t.Outputs, p)
			mixed = append(mixed, p)
		}
	}
	t.Delta = map[Pair][]Pair{
		{0, 0}:       {{0, 0}},
		{half, half}: {{half, half}},
		{0, half}:    mixed,
		{half, 0}:    mixed,
	}
	return t
}
