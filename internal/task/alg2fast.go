package task

import (
	"fmt"

	"repro/internal/labelling"
	"repro/internal/memory"
	"repro/internal/sched"
)

// Alg2FastSystem is the §8-accelerated universal construction: Algorithm 2
// with the Theorem 8.1 fast ε-agreement in place of Algorithm 1. The
// agreement subprotocol then costs O(log L) steps instead of Θ(L), while
// the registers stay constant-size: 6 coordination bits (Algorithm 6)
// plus the {⊥,0,1} ε-input field — 8 bits per process in place of 3.
// This realizes the paper's remark that the exponential slowdown of the
// 1-bit construction "is not inherent to the fact that each register has
// constant size".
//
// Soundness of the substitution: co-final fast decisions are at most one
// path position apart, so mapping a decision num/den to the path index
// min(⌊num·L/den⌋, L-1) sends co-final decisions to equal or adjacent
// indices; and the protocol satisfies the Lemma 5.6 analogue (a boundary
// decision implies that own ε-input), so the d = 0 and d = 1 branches
// retain their meaning.
type Alg2FastSystem struct {
	Plan *Plan
	FA   *labelling.FastAgreement

	memTask  *memory.Shared
	memAgree *memory.Shared

	Outs    [2]int
	Decided [2]bool
}

// Alg2FastBits is the coordination-register width of the accelerated
// construction: Algorithm 6's 6 bits plus the 2-bit {⊥,0,1} ε-input
// field.
const Alg2FastBits = 8

// FastAgreementFor builds a fast ε-agreement protocol precise enough for
// the plan: its precision denominator must be at least L+1 so that
// adjacent decisions map to adjacent path indices; rounds R is grown
// until it is. The result is schedule-independent and can be shared by
// any number of Alg2FastSystem instances over the same plan.
func FastAgreementFor(plan *Plan) (*labelling.FastAgreement, error) {
	for r := 3; ; r++ {
		fa, err := labelling.NewFastAgreement(r)
		if err != nil {
			return nil, err
		}
		if fa.EpsDen() >= plan.L+1 {
			return fa, nil
		}
	}
}

// NewAlg2FastSystem builds an instance for one execution, reusing a
// protocol built by FastAgreementFor.
func NewAlg2FastSystem(plan *Plan, fa *labelling.FastAgreement) *Alg2FastSystem {
	return &Alg2FastSystem{
		Plan:     plan,
		FA:       fa,
		memTask:  memory.New(2, 1),
		memAgree: labelling.NewAlg6Memory(fa.Cfg),
	}
}

// Proc returns the code of process me with the given task input.
func (s *Alg2FastSystem) Proc(me int, input int) sched.ProcFunc {
	return func(p *sched.Proc) error {
		if p.ID != me {
			return fmt.Errorf("alg2fast: process handle %d for code %d", p.ID, me)
		}
		out, err := s.run(p, input)
		if err != nil {
			return err
		}
		s.Outs[me] = out
		s.Decided[me] = true
		return nil
	}
}

func (s *Alg2FastSystem) run(p *sched.Proc, input int) (int, error) {
	plan := s.Plan
	pm := memory.Bind(p, s.memTask)
	me, other := p.ID, 1-p.ID
	l := plan.L

	if err := pm.WriteInput(input); err != nil {
		return 0, err
	}
	xotherAny := pm.ReadInput(other)
	var myInput uint64
	if xotherAny == nil {
		myInput = 1
	}

	d, err := s.FA.Inline(p, s.memAgree, myInput)
	if err != nil {
		return 0, err
	}

	switch {
	case d.Num == 0:
		if xotherAny == nil {
			return 0, fmt.Errorf("alg2fast: decided 0 without seeing the other input")
		}
		fullX, err := pairOf(me, input, xotherAny)
		if err != nil {
			return 0, err
		}
		y0, ok := plan.DeltaFull[fullX]
		if !ok {
			return 0, fmt.Errorf("alg2fast: input %v not in task %s", fullX, plan.Task.Name)
		}
		return y0[me], nil

	case d.Num == d.Den:
		var partial Pair
		partial[me] = input
		partial[other] = Bot
		yl, ok := plan.DeltaPartial[partial]
		if !ok {
			return 0, fmt.Errorf("alg2fast: partial input %v not in plan", partial)
		}
		return yl[me], nil

	default:
		xotherAny = pm.ReadInput(other)
		if xotherAny == nil {
			return 0, fmt.Errorf("alg2fast: 0<d<1 but other input still missing")
		}
		fullX, err := pairOf(me, input, xotherAny)
		if err != nil {
			return 0, err
		}
		missing := me
		if myInput == 1 {
			missing = other
		}
		path, ok := plan.Path(fullX, missing)
		if !ok {
			return 0, fmt.Errorf("alg2fast: no path for (%v, %d)", fullX, missing)
		}
		// Map num/den to an index in 0..L-1: co-final decisions differ
		// by at most 1/den ≤ 1/(L+1), so indices differ by at most 1,
		// and Y_L stays reachable only via d = 1.
		idx := d.Num * l / d.Den
		if idx > l-1 {
			idx = l - 1
		}
		return path[idx][me], nil
	}
}

func pairOf(me, input int, otherVal any) (Pair, error) {
	xo, ok := otherVal.(int)
	if !ok {
		return Pair{}, fmt.Errorf("task: input register holds %T, want int", otherVal)
	}
	var x Pair
	x[me] = input
	x[1-me] = xo
	return x, nil
}

// RunAlg2Fast executes the accelerated construction for both processes.
// For repeated runs over the same plan, build the protocol once with
// FastAgreementFor and use NewAlg2FastSystem directly.
func RunAlg2Fast(plan *Plan, input Pair, scheduler sched.Scheduler) (*Alg2FastSystem, *sched.Result, error) {
	fa, err := FastAgreementFor(plan)
	if err != nil {
		return nil, nil, err
	}
	sys := NewAlg2FastSystem(plan, fa)
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, []sched.ProcFunc{
		sys.Proc(0, input[0]),
		sys.Proc(1, input[1]),
	})
	if err != nil {
		return nil, nil, err
	}
	return sys, res, nil
}

// CheckFastRun validates the decisions like CheckRun.
func CheckFastRun(t *Task, input Pair, sys *Alg2FastSystem) error {
	switch {
	case sys.Decided[0] && sys.Decided[1]:
		y := Pair{sys.Outs[0], sys.Outs[1]}
		if !t.Legal(input, y) {
			return fmt.Errorf("task %s: output %v illegal for input %v", t.Name, y, input)
		}
	case sys.Decided[0]:
		if !t.LegalPartial(input, 0, sys.Outs[0]) {
			return fmt.Errorf("task %s: partial output %d by p0 not extendable", t.Name, sys.Outs[0])
		}
	case sys.Decided[1]:
		if !t.LegalPartial(input, 1, sys.Outs[1]) {
			return fmt.Errorf("task %s: partial output %d by p1 not extendable", t.Name, sys.Outs[1])
		}
	}
	return nil
}
