package task

import (
	"fmt"
	"sort"
)

// CheckSolvable checks the Biran-Moran-Zaks conditions of Lemma 5.7 for a
// candidate output subset O′:
//
//   - Connectivity: for every input X, the graph G(Δ(X) ∩ O′) is connected
//     (and non-empty);
//   - Covering: for every partial input X^i there is a partial output Y^i
//     such that every extension X of X^i has an extension of Y^i in
//     Δ(X) ∩ O′.
//
// A nil error means the task is 1-resilient (= 2-process wait-free)
// solvable using O′.
func (t *Task) CheckSolvable(oprime []Pair) error {
	inO := make(map[Pair]bool, len(oprime))
	for _, y := range oprime {
		inO[y] = true
	}

	// Connectivity.
	for _, x := range t.Inputs {
		legal := t.legalIn(x, inO)
		if len(legal) == 0 {
			return fmt.Errorf("connectivity: Δ(%v) ∩ O′ is empty", x)
		}
		if !connected(legal) {
			return fmt.Errorf("connectivity: G(Δ(%v) ∩ O′) is disconnected", x)
		}
	}

	// Covering.
	for i := 0; i < 2; i++ {
		for _, xp := range t.PartialInputs(i) {
			if _, ok := t.coverWitness(xp, i, inO); !ok {
				return fmt.Errorf("covering: no partial output covers partial input %v (missing %d)", xp, i)
			}
		}
	}
	return nil
}

// legalIn returns Δ(x) ∩ O′, sorted.
func (t *Task) legalIn(x Pair, inO map[Pair]bool) []Pair {
	var out []Pair
	for _, y := range t.Delta[x] {
		if inO[y] {
			out = append(out, y)
		}
	}
	sortPairs(out)
	return out
}

// coverWitness finds a value w for component j = 1-i such that every
// extension X of partial input xp has some Y ∈ Δ(X) ∩ O′ with Y[j] == w.
func (t *Task) coverWitness(xp Pair, i int, inO map[Pair]bool) (int, bool) {
	j := 1 - i
	exts := t.Extensions(xp)
	// Candidate witnesses: component-j values available for every extension.
	var candidates []int
	seen := map[int]bool{}
	for _, y := range t.legalIn(exts[0], inO) {
		if !seen[y[j]] {
			seen[y[j]] = true
			candidates = append(candidates, y[j])
		}
	}
	sort.Ints(candidates)
	for _, w := range candidates {
		ok := true
		for _, x := range exts {
			found := false
			for _, y := range t.legalIn(x, inO) {
				if y[j] == w {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return w, true
		}
	}
	return 0, false
}

// connected reports whether the graph on nodes (edges: differ in exactly
// one component) is connected.
func connected(nodes []Pair) bool {
	if len(nodes) == 0 {
		return false
	}
	idx := make(map[Pair]int, len(nodes))
	for i, p := range nodes {
		idx[p] = i
	}
	seen := make([]bool, len(nodes))
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next, p := range nodes {
			if !seen[next] && AdjacentOrEqual(nodes[cur], p) {
				seen[next] = true
				count++
				queue = append(queue, next)
			}
		}
	}
	return count == len(nodes)
}

// bfsPath returns a path (sequence of nodes, consecutive ones adjacent or
// equal) from a to b within nodes, or nil if unreachable.
func bfsPath(nodes []Pair, a, b Pair) []Pair {
	prev := map[Pair]Pair{a: a}
	queue := []Pair{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			var path []Pair
			for at := b; ; at = prev[at] {
				path = append([]Pair{at}, path...)
				if at == prev[at] {
					return path
				}
			}
		}
		for _, next := range nodes {
			if _, ok := prev[next]; !ok && AdjacentOrEqual(cur, next) {
				prev[next] = cur
				queue = append(queue, next)
			}
		}
	}
	return nil
}

// FindSolvableSubset searches for an output subset O′ satisfying the BMZ
// conditions, trying O = O′ first and then all non-empty subsets (the
// tasks in this repository have small output sets). It returns the subset
// and true, or nil and false if the task is not 1-resilient solvable
// (e.g. consensus).
func (t *Task) FindSolvableSubset() ([]Pair, bool) {
	if err := t.CheckSolvable(t.Outputs); err == nil {
		return t.Outputs, true
	}
	n := len(t.Outputs)
	if n > 16 {
		return nil, false // exhaustive subset search too large; O failed
	}
	for mask := 1; mask < 1<<n; mask++ {
		var sub []Pair
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sub = append(sub, t.Outputs[b])
			}
		}
		if err := t.CheckSolvable(sub); err == nil {
			return sub, true
		}
	}
	return nil, false
}

// Plan is the pre-processing both processes of Algorithm 2 share: the
// common map δ from inputs and partial inputs to outputs in O′, and for
// every (input X, missing index i) a path of L+1 outputs
// (Y_0, ..., Y_L) with Y_0 = δ(X), Y_L = δ(X^i), such that
// Y_0..Y_{L-1} ∈ Δ(X) ∩ O′ and Y_{L-1}, Y_L differ only in component i.
// All paths share the same even length L ≥ 4 (so that k = L/2 is a valid
// Algorithm 1 parameter).
type Plan struct {
	Task   *Task
	Oprime []Pair
	// L is the common path length; paths have L+1 nodes.
	L int
	// DeltaFull maps each input X to δ(X) = Y_0.
	DeltaFull map[Pair]Pair
	// DeltaPartial maps each partial input X^i to δ(X^i) = Y_L.
	DeltaPartial map[Pair]Pair
	// Paths maps (X, i) to the padded path.
	Paths map[pathKey][]Pair
}

type pathKey struct {
	X       Pair
	Missing int
}

// BuildPlan constructs the plan of §5.2.2 for a solvable output subset.
// It fails if the BMZ conditions do not hold for oprime.
func (t *Task) BuildPlan(oprime []Pair) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := t.CheckSolvable(oprime); err != nil {
		return nil, fmt.Errorf("task %s not solvable with given O′: %w", t.Name, err)
	}
	inO := make(map[Pair]bool, len(oprime))
	for _, y := range oprime {
		inO[y] = true
	}

	plan := &Plan{
		Task:         t,
		Oprime:       oprime,
		DeltaFull:    make(map[Pair]Pair),
		DeltaPartial: make(map[Pair]Pair),
		Paths:        make(map[pathKey][]Pair),
	}

	// δ on full inputs: deterministic first element of Δ(X) ∩ O′.
	for _, x := range t.Inputs {
		plan.DeltaFull[x] = t.legalIn(x, inO)[0]
	}

	// δ on partial inputs: an O′ extension of the covering witness.
	witness := map[Pair]int{} // partial input -> witness value w (component j)
	for i := 0; i < 2; i++ {
		j := 1 - i
		for _, xp := range t.PartialInputs(i) {
			w, ok := t.coverWitness(xp, i, inO)
			if !ok {
				return nil, fmt.Errorf("covering witness vanished for %v", xp)
			}
			witness[xp] = w
			found := false
			for _, y := range oprime {
				if y[j] == w {
					plan.DeltaPartial[xp] = y
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("no O′ extension of witness %d for %v", w, xp)
			}
		}
	}

	// Raw paths.
	raw := map[pathKey][]Pair{}
	maxLen := 0 // number of edges
	for _, x := range t.Inputs {
		for i := 0; i < 2; i++ {
			j := 1 - i
			xp := x.Partial(i)
			w := witness[xp]
			legal := t.legalIn(x, inO)
			// Y_{L-1}: a legal output for X extending the witness.
			var yl1 Pair
			found := false
			for _, y := range legal {
				if y[j] == w {
					yl1 = y
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("no Y_{L-1} for input %v missing %d", x, i)
			}
			body := bfsPath(legal, plan.DeltaFull[x], yl1)
			if body == nil {
				return nil, fmt.Errorf("no path from %v to %v in Δ(%v) ∩ O′", plan.DeltaFull[x], yl1, x)
			}
			path := append(body, plan.DeltaPartial[xp])
			raw[pathKey{x, i}] = path
			if len(path)-1 > maxLen {
				maxLen = len(path) - 1
			}
		}
	}

	// Common even length L ≥ 4. Pad by repeating Y_0 at the front: the
	// duplicate is adjacent-or-equal to itself and stays in Δ(X) ∩ O′.
	l := maxLen
	if l < 4 {
		l = 4
	}
	if l%2 == 1 {
		l++
	}
	plan.L = l
	for key, path := range raw {
		pad := l + 1 - len(path)
		padded := make([]Pair, 0, l+1)
		for p := 0; p < pad; p++ {
			padded = append(padded, path[0])
		}
		padded = append(padded, path...)
		plan.Paths[key] = padded
	}
	return plan, nil
}

// Path returns the padded path for (x, missing). The boolean reports
// whether the plan has it (it always does for valid inputs).
func (pl *Plan) Path(x Pair, missing int) ([]Pair, bool) {
	p, ok := pl.Paths[pathKey{x, missing}]
	return p, ok
}
