package task

import (
	"fmt"
	"sync"

	"repro/internal/agreement"
	"repro/internal/memory"
	"repro/internal/sched"
)

// Alg2Bits is the number of coordination-register bits per process used by
// Algorithm 2: the 1-bit alternating register of the ε-agreement
// subprotocol plus its {⊥,0,1} input field (2 bits), per §5.2.3. Task
// inputs travel through the write-once input registers, which carry no
// width restriction.
const Alg2Bits = 3

// Alg2System is one instance of Algorithm 2: the plan shared by both
// processes plus the shared memories. The ε-agreement subprotocol runs on
// its own 2-register memory of 1-bit registers (its {⊥,0,1} input field is
// the subprotocol's write-once register); per §2 a constant number of
// SWMR registers per process is emulated by a single register, giving the
// 3-bit bound.
type Alg2System struct {
	Plan *Plan
	// memTask carries the task input registers I_1, I_2 (write-once).
	memTask *memory.Shared
	// memAgree carries Algorithm 1's registers.
	memAgree *memory.Shared

	Outs    [2]int
	Decided [2]bool
}

// NewAlg2System builds a fresh instance for one execution.
func NewAlg2System(plan *Plan) *Alg2System {
	return &Alg2System{
		Plan:     plan,
		memTask:  memory.New(2, 1), // coordination registers unused; only I_i
		memAgree: memory.New(2, agreement.Alg1Bits),
	}
}

// StateKey fingerprints the system's global state for the memoized
// explorer (sched.ExploreMemo): each process's component combines its
// observation history and register contents across both shared
// memories, and the canonicalizer applies the process-relabelling
// reduction over the combined components. A process's local state —
// including a decided output — is a function of the fixed plan, its
// input, and its joint observation history, all of which the
// components capture, so equal keys at equal depth imply isomorphic
// continuations.
func (s *Alg2System) StateKey() sched.StateKey {
	var c sched.Canonicalizer
	for i := 0; i < 2; i++ {
		c.Proc(sched.MixKey(s.memTask.Component(i), s.memAgree.Component(i)))
	}
	return c.Key()
}

// Proc returns the code of process me ∈ {0,1} with the given task input.
func (s *Alg2System) Proc(me int, input int) sched.ProcFunc {
	return func(p *sched.Proc) error {
		if p.ID != me {
			return fmt.Errorf("alg2: process handle %d for code %d", p.ID, me)
		}
		out, err := s.run(p, input)
		if err != nil {
			return err
		}
		s.Outs[me] = out
		s.Decided[me] = true
		return nil
	}
}

func (s *Alg2System) run(p *sched.Proc, input int) (int, error) {
	plan := s.Plan
	pm := memory.Bind(p, s.memTask)
	me, other := p.ID, 1-p.ID
	l := plan.L

	// Lines 2-4: publish the task input, read the other one, derive the
	// ε-agreement input (1 = the other input is missing).
	if err := pm.WriteInput(input); err != nil {
		return 0, err
	}
	xotherAny := pm.ReadInput(other)
	var myInput uint64
	if xotherAny == nil {
		myInput = 1
	}

	// Line 5: ε-agreement with ε = 1/(L+1) via Algorithm 1 with k = L/2.
	d, err := agreement.Alg1Inline(p, s.memAgree, l/2, myInput)
	if err != nil {
		return 0, err
	}
	num := d.Num // decision is num/(L+1), num ∈ {0..L+1}

	switch {
	case num == 0:
		// Lines 6-8: full input seen (Lemma 5.6: ε-input was 0).
		if xotherAny == nil {
			return 0, fmt.Errorf("alg2: decided 0 in ε-agreement without seeing the other input")
		}
		fullX, err := s.pairOf(me, input, xotherAny)
		if err != nil {
			return 0, err
		}
		y0, ok := plan.DeltaFull[fullX]
		if !ok {
			return 0, fmt.Errorf("alg2: input %v not in task %s", fullX, plan.Task.Name)
		}
		return y0[me], nil

	case num == l+1:
		// Lines 19-21: d = 1, the other input was never seen.
		var partial Pair
		partial[me] = input
		partial[other] = Bot
		yl, ok := plan.DeltaPartial[partial]
		if !ok {
			return 0, fmt.Errorf("alg2: partial input %v not in plan", partial)
		}
		return yl[me], nil

	default:
		// Lines 10-18: 0 < d < 1. The other process participated, so its
		// input is now published (§5.2.4).
		xotherAny = pm.ReadInput(other)
		if xotherAny == nil {
			return 0, fmt.Errorf("alg2: 0<d<1 but other input still missing")
		}
		fullX, err := s.pairOf(me, input, xotherAny)
		if err != nil {
			return 0, err
		}
		missing := me
		if myInput == 1 {
			missing = other
		}
		path, ok := plan.Path(fullX, missing)
		if !ok {
			return 0, fmt.Errorf("alg2: no path for (%v, %d)", fullX, missing)
		}
		// Map the decision num/(L+1) to a path index in 0..L-1:
		// consecutive decisions map to equal or adjacent indices, and
		// Y_L is only reachable via d = 1.
		idx := num
		if idx > l-1 {
			idx = l - 1
		}
		return path[idx][me], nil
	}
}

func (s *Alg2System) pairOf(me, input int, otherVal any) (Pair, error) {
	xo, ok := otherVal.(int)
	if !ok {
		return Pair{}, fmt.Errorf("alg2: input register holds %T, want int", otherVal)
	}
	var x Pair
	x[me] = input
	x[1-me] = xo
	return x, nil
}

// Run executes Algorithm 2 for both processes on the given input under
// the scheduler.
func RunAlg2(plan *Plan, input Pair, scheduler sched.Scheduler) (*Alg2System, *sched.Result, error) {
	sys := NewAlg2System(plan)
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, []sched.ProcFunc{
		sys.Proc(0, input[0]),
		sys.Proc(1, input[1]),
	})
	if err != nil {
		return nil, nil, err
	}
	return sys, res, nil
}

// CheckRun validates the decisions of one execution against the task:
// if both processes decided, the pair must be legal for the input; if one
// decided, its value must extend to a legal output.
func CheckRun(t *Task, input Pair, sys *Alg2System) error {
	switch {
	case sys.Decided[0] && sys.Decided[1]:
		y := Pair{sys.Outs[0], sys.Outs[1]}
		if !t.Legal(input, y) {
			return fmt.Errorf("task %s: output %v illegal for input %v", t.Name, y, input)
		}
	case sys.Decided[0]:
		if !t.LegalPartial(input, 0, sys.Outs[0]) {
			return fmt.Errorf("task %s: partial output %d by p0 not extendable for %v", t.Name, sys.Outs[0], input)
		}
	case sys.Decided[1]:
		if !t.LegalPartial(input, 1, sys.Outs[1]) {
			return fmt.Errorf("task %s: partial output %d by p1 not extendable for %v", t.Name, sys.Outs[1], input)
		}
	}
	return nil
}

// ExploreAlg2 enumerates all crash-free interleavings of Algorithm 2 on
// the given input and validates each execution, returning the number of
// executions explored.
func ExploreAlg2(plan *Plan, input Pair) (int, error) {
	var sys *Alg2System
	factory := func() []sched.ProcFunc {
		sys = NewAlg2System(plan)
		return []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])}
	}
	var checkErr error
	runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
		if checkErr != nil {
			return
		}
		if e := r.Err(); e != nil {
			checkErr = e
			return
		}
		if e := CheckRun(plan.Task, input, sys); e != nil {
			checkErr = fmt.Errorf("schedule %v: %w", r.Decisions, e)
		}
	})
	if err != nil {
		return runs, err
	}
	return runs, checkErr
}

// Alg2Roots enumerates the live schedule prefixes of the exhaustive
// Algorithm 2 exploration at the given cut depth
// (sched.PartitionRoots), so the validation sweep can be carved into
// disjoint ranges like any other exploration space.
func Alg2Roots(plan *Plan, input Pair, depth int) ([][]int, error) {
	factory := func() []sched.ProcFunc {
		sys := NewAlg2System(plan)
		return []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])}
	}
	return sched.PartitionRoots(factory, 0, depth)
}

// ExploreAlg2Prefixes validates exactly the Algorithm 2 executions
// extending the given schedule prefixes, with a bounded goroutine
// fan-out (sched.ExplorePrefixes). The run count is the shard's
// order-insensitive aggregate: counts from any partition of an
// Alg2Roots root set sum to the ExploreAlg2 total, and a violation in
// any slice surfaces as that slice's error.
func ExploreAlg2Prefixes(plan *Plan, input Pair, workers int, roots [][]int) (int, error) {
	// Done runs serially under the explorer's lock, so checkErr needs
	// no further synchronization.
	var checkErr error
	factory := func() sched.Instance {
		sys := NewAlg2System(plan)
		return sched.Instance{
			Procs: []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])},
			Done: func(r *sched.Result) {
				if checkErr != nil {
					return
				}
				if e := r.Err(); e != nil {
					checkErr = e
					return
				}
				if e := CheckRun(plan.Task, input, sys); e != nil {
					checkErr = fmt.Errorf("schedule %v: %w", r.Decisions, e)
				}
			},
		}
	}
	runs, err := sched.ExplorePrefixes(factory, 0, workers, roots)
	if err != nil {
		return runs, err
	}
	return runs, checkErr
}

// ExploreAlg2Memo is the memoized analogue of ExploreAlg2
// (sched.ExploreMemo): the same execution count, with each *visited*
// leaf validated by CheckRun and pruned subtrees vouched for by their
// memoized twins — a pruned leaf's canonical state equals a validated
// one's, and the CheckRun verdict is a function of that state.
func ExploreAlg2Memo(plan *Plan, input Pair) (sched.MemoStats, error) {
	return ExploreAlg2MemoPrefixes(plan, input, [][]int{{}})
}

// ExploreAlg2MemoPrefixes is ExploreAlg2Memo restricted to the
// subtrees under the given schedule prefixes
// (sched.ExploreMemoPrefixes). Stats.Executions from any partition of
// an Alg2Roots root set sum to the ExploreAlg2 total, and a
// validation violation in any visited leaf surfaces as the slice's
// error.
func ExploreAlg2MemoPrefixes(plan *Plan, input Pair, roots [][]int) (sched.MemoStats, error) {
	// Leaf runs serially inside the explorer's DFS, so checkErr needs
	// no synchronization. It returns no contribution: the execution
	// count in MemoStats is the aggregate.
	var checkErr error
	factory := func() sched.MemoInstance {
		sys := NewAlg2System(plan)
		return sched.MemoInstance{
			Procs: []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])},
			State: sys.StateKey,
			Leaf: func(r *sched.Result) any {
				if checkErr != nil {
					return nil
				}
				if e := r.Err(); e != nil {
					checkErr = e
					return nil
				}
				if e := CheckRun(plan.Task, input, sys); e != nil {
					checkErr = fmt.Errorf("schedule %v: %w", r.Decisions, e)
				}
				return nil
			},
		}
	}
	_, stats, err := sched.ExploreMemoPrefixes(factory, sched.MemoOptions{}, roots)
	if err != nil {
		return stats, err
	}
	return stats, checkErr
}

// ExploreAlg2MemoParallel is ExploreAlg2Memo across workers goroutines
// sharing one concurrent memo table (sched.ExploreMemoParallel): the
// identical execution count, with visited leaves validated from
// whichever worker reaches them. workers <= 0 means
// sched.DefaultExploreWorkers.
func ExploreAlg2MemoParallel(plan *Plan, input Pair, workers int) (sched.MemoStats, error) {
	factory, check := alg2MemoFactory(plan, input)
	stats, err := runAlg2Memo(func() (sched.MemoStats, error) {
		_, s, e := sched.ExploreMemoParallel(factory, sched.MemoOptions{}, workers)
		return s, e
	}, check)
	return stats, err
}

// ExploreAlg2MemoParallelPrefixes is ExploreAlg2MemoPrefixes across
// workers goroutines sharing one memo table
// (sched.ExploreMemoParallelPrefixes).
func ExploreAlg2MemoParallelPrefixes(plan *Plan, input Pair, workers int, roots [][]int) (sched.MemoStats, error) {
	factory, check := alg2MemoFactory(plan, input)
	return runAlg2Memo(func() (sched.MemoStats, error) {
		_, s, e := sched.ExploreMemoParallelPrefixes(factory, sched.MemoOptions{}, workers, roots)
		return s, e
	}, check)
}

// alg2MemoFactory builds the validating MemoInstance factory the
// parallel explorers use. Unlike the serial path's closure, leaves run
// from concurrent workers, so the first-violation record is mutex-
// guarded; check() reads it after the exploration quiesces.
func alg2MemoFactory(plan *Plan, input Pair) (factory func() sched.MemoInstance, check func() error) {
	var mu sync.Mutex
	var checkErr error
	factory = func() sched.MemoInstance {
		sys := NewAlg2System(plan)
		return sched.MemoInstance{
			Procs: []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])},
			State: sys.StateKey,
			Leaf: func(r *sched.Result) any {
				var e error
				if e = r.Err(); e == nil {
					if e = CheckRun(plan.Task, input, sys); e != nil {
						e = fmt.Errorf("schedule %v: %w", r.Decisions, e)
					}
				}
				if e != nil {
					mu.Lock()
					if checkErr == nil {
						checkErr = e
					}
					mu.Unlock()
				}
				return nil
			},
		}
	}
	check = func() error {
		mu.Lock()
		defer mu.Unlock()
		return checkErr
	}
	return factory, check
}

// runAlg2Memo runs one memoized exploration and folds the deferred
// validation verdict in, explorer errors first.
func runAlg2Memo(explore func() (sched.MemoStats, error), check func() error) (sched.MemoStats, error) {
	stats, err := explore()
	if err != nil {
		return stats, err
	}
	return stats, check()
}
