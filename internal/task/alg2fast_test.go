package task

import (
	"testing"

	"repro/internal/sched"
)

func TestAlg2FastSampled(t *testing.T) {
	for _, tk := range []*Task{
		DiscreteEpsAgreement(4),
		DiscreteEpsAgreement(6),
		CycleAgreement(6),
		ChoiceTask(2),
	} {
		plan := planFor(t, tk)
		for _, input := range tk.Inputs {
			for seed := int64(0); seed < 25; seed++ {
				sys, res, err := RunAlg2Fast(plan, input, sched.NewRandom(seed))
				if err != nil {
					t.Fatal(err)
				}
				if e := res.Err(); e != nil {
					t.Fatalf("%s input %v seed %d: %v", tk.Name, input, seed, e)
				}
				if !sys.Decided[0] || !sys.Decided[1] {
					t.Fatalf("%s input %v seed %d: undecided", tk.Name, input, seed)
				}
				if err := CheckFastRun(tk, input, sys); err != nil {
					t.Fatalf("%s input %v seed %d: %v", tk.Name, input, seed, err)
				}
			}
		}
	}
}

func TestAlg2FastExhaustiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	tk := DiscreteEpsAgreement(2)
	plan := planFor(t, tk)
	fa, err := FastAgreementFor(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Two representative inputs (mixed and equal) keep the enumeration
	// near 700k interleavings total.
	for _, input := range []Pair{{0, 1}, {1, 1}} {
		var sys *Alg2FastSystem
		factory := func() []sched.ProcFunc {
			sys = NewAlg2FastSystem(plan, fa)
			return []sched.ProcFunc{sys.Proc(0, input[0]), sys.Proc(1, input[1])}
		}
		runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
			if e := r.Err(); e != nil {
				t.Fatalf("input %v: %v", input, e)
			}
			if err := CheckFastRun(tk, input, sys); err != nil {
				t.Fatalf("input %v: %v", input, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if runs == 0 {
			t.Fatal("no runs")
		}
	}
}

func TestAlg2FastSoloAndCrashes(t *testing.T) {
	tk := DiscreteEpsAgreement(4)
	plan := planFor(t, tk)
	for _, input := range tk.Inputs {
		for pid := 0; pid < 2; pid++ {
			sys, _, err := RunAlg2Fast(plan, input, sched.Solo{Pid: pid})
			if err != nil {
				t.Fatal(err)
			}
			if !sys.Decided[pid] {
				t.Fatalf("solo %d undecided", pid)
			}
			if err := CheckFastRun(tk, input, sys); err != nil {
				t.Fatal(err)
			}
		}
		for victim := 0; victim < 2; victim++ {
			for crashAt := 0; crashAt <= 20; crashAt++ {
				scheduler := sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{victim: crashAt})
				sys, _, err := RunAlg2Fast(plan, input, scheduler)
				if err != nil {
					t.Fatal(err)
				}
				if !sys.Decided[1-victim] {
					t.Fatalf("input %v victim %d crashAt %d: survivor undecided", input, victim, crashAt)
				}
				if err := CheckFastRun(tk, input, sys); err != nil {
					t.Fatalf("input %v victim %d crashAt %d: %v", input, victim, crashAt, err)
				}
			}
		}
	}
}

func TestAlg2FastStepAdvantage(t *testing.T) {
	// On a task with a long path (fine-grained agreement), the fast
	// construction takes fewer agreement steps than the classic one:
	// O(log L) vs Θ(L).
	tk := DiscreteEpsAgreement(40)
	plan := planFor(t, tk)
	input := Pair{0, 1}

	classic, resC, err := RunAlg2(plan, input, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRun(tk, input, classic); err != nil {
		t.Fatal(err)
	}
	fast, resF, err := RunAlg2Fast(plan, input, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFastRun(tk, input, fast); err != nil {
		t.Fatal(err)
	}
	if resF.Steps[0] >= resC.Steps[0] {
		t.Fatalf("no speedup: fast %d steps vs classic %d", resF.Steps[0], resC.Steps[0])
	}
}

func TestAlg2FastValidity(t *testing.T) {
	l := 4
	tk := DiscreteEpsAgreement(l)
	plan := planFor(t, tk)
	for _, x := range []int{0, 1} {
		input := Pair{x, x}
		for seed := int64(0); seed < 15; seed++ {
			sys, res, err := RunAlg2Fast(plan, input, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatal(e)
			}
			want := x * l
			if sys.Outs[0] != want || sys.Outs[1] != want {
				t.Fatalf("input %v: outputs %v, want both %d", input, sys.Outs, want)
			}
		}
	}
}
