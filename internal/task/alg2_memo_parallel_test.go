package task

import (
	"testing"
)

// TestAlg2MemoParallelMatchesSerial pins the parallel validating sweep
// to the serial one across worker counts: the identical execution
// count (the E15 aggregate), every visited leaf validated, and
// cross-range sharing on multi-range carves.
func TestAlg2MemoParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	task := ChoiceTask(2)
	plan := planFor(t, task)
	input := task.Inputs[0]
	whole, err := ExploreAlg2(plan, input)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		stats, err := ExploreAlg2MemoParallel(plan, input, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Executions != whole {
			t.Fatalf("workers=%d: %d executions accounted, exhaustive ran %d", workers, stats.Executions, whole)
		}
	}
	for _, depth := range []int{2, 4} {
		roots, err := Alg2Roots(plan, input, depth)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := ExploreAlg2MemoParallelPrefixes(plan, input, 4, roots)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if stats.Executions != whole {
			t.Fatalf("depth %d: %d executions, want %d", depth, stats.Executions, whole)
		}
		if stats.Workers > 1 && stats.StatesShared == 0 {
			t.Errorf("depth %d: no cross-range sharing over %d ranges", depth, len(roots))
		}
	}
}

// TestAlg2MemoParallelSurfacesViolation: a validation failure in any
// worker's visited leaf fails the whole parallel sweep.
func TestAlg2MemoParallelSurfacesViolation(t *testing.T) {
	task := ChoiceTask(2)
	plan := planFor(t, task)
	input := task.Inputs[0]

	bad := *task
	bad.Delta = map[Pair][]Pair{}
	doctored := *plan
	doctored.Task = &bad

	if _, err := ExploreAlg2MemoParallel(&doctored, input, 4); err == nil {
		t.Fatal("parallel memoized sweep accepted a plan whose outputs are all illegal")
	}
}
