package memory

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/sched"
)

// fuzzKeys records every canonical key the fuzzer has produced and the
// canonical description of the memory state it fingerprinted: two
// different descriptions landing on one key would be a genuine hash
// collision on the small spaces the fuzzer explores.
var fuzzKeys = struct {
	sync.Mutex
	m map[sched.StateKey]string
}{m: map[sched.StateKey]string{}}

// FuzzCanonicalState drives random operation streams against a small
// 2-process bounded memory and checks the canonicalization contract:
// idempotent, invariant under process relabelling (the mirrored
// stream lands on the same key), and collision-free across every
// distinct state the corpus reaches.
func FuzzCanonicalState(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x29, 0x12, 0x3b, 0x04})
	f.Add([]byte{0x23, 0x23, 0x01, 0x18, 0x30, 0x0a})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		m := New(2, 1)
		mir := New(2, 1)
		// logs[i] is the shadow model of process i's observations,
		// written in relabelling-invariant terms (relative indices).
		logs := [2][]string{}
		regs := [2]uint64{}
		inputs := [2]*uint64{}

		for _, b := range ops {
			pid := int(b>>3) & 1
			j := int(b>>4) & 1
			val := uint64(b>>5) & 1
			rel := (j - pid + 2) % 2
			switch b % 5 {
			case 0: // write own register
				if err := m.write(pid, val); err != nil {
					t.Fatalf("width-1 write of %d failed: %v", val, err)
				}
				if err := mir.write(pid^1, val); err != nil {
					t.Fatal(err)
				}
				regs[pid] = val
				logs[pid] = append(logs[pid], fmt.Sprintf("w%d", val))
			case 1: // read register j
				m.read(pid, j)
				mir.read(pid^1, j^1)
				logs[pid] = append(logs[pid], fmt.Sprintf("r%d=%d", rel, regs[j]))
			case 2: // snapshot
				m.snapshot(pid)
				mir.snapshot(pid ^ 1)
				logs[pid] = append(logs[pid], fmt.Sprintf("s%d,%d", regs[pid], regs[pid^1]))
			case 3: // write input
				err := m.writeInput(pid, val)
				merr := mir.writeInput(pid^1, val)
				if (err == nil) != (merr == nil) {
					t.Fatalf("mirror diverged on writeInput: %v vs %v", err, merr)
				}
				if err != nil {
					logs[pid] = append(logs[pid], fmt.Sprintf("wi!%d", val))
				} else {
					inputs[pid] = &val
					logs[pid] = append(logs[pid], fmt.Sprintf("wi%d", val))
				}
			case 4: // read input j
				m.readInput(pid, j)
				mir.readInput(pid^1, j^1)
				if inputs[j] == nil {
					logs[pid] = append(logs[pid], fmt.Sprintf("ri%d=bot", rel))
				} else {
					logs[pid] = append(logs[pid], fmt.Sprintf("ri%d=%d", rel, *inputs[j]))
				}
			}
		}

		key := m.CanonicalKey()
		if again := m.CanonicalKey(); again != key {
			t.Fatalf("canonicalization not idempotent: %x then %x", key, again)
		}
		if mk := mir.CanonicalKey(); mk != key {
			t.Fatalf("mirrored stream landed on %x, original on %x", mk, key)
		}

		// Collision check: the canonical description (sorted
		// per-process components in relabelling-invariant terms) must
		// map one-to-one onto keys across the whole corpus.
		desc := make([]string, 2)
		for i := 0; i < 2; i++ {
			in := "bot"
			if inputs[i] != nil {
				in = fmt.Sprint(*inputs[i])
			}
			desc[i] = fmt.Sprintf("reg=%d in=%s log=%v", regs[i], in, logs[i])
		}
		sort.Strings(desc)
		state := fmt.Sprint(desc)
		fuzzKeys.Lock()
		defer fuzzKeys.Unlock()
		if prev, ok := fuzzKeys.m[key]; ok {
			if prev != state {
				t.Fatalf("canonical key collision on %x:\n  %s\n  %s", key, prev, state)
			}
		} else {
			fuzzKeys.m[key] = state
		}
	})
}
