// Package memory implements the shared memory of the model: one SWMR
// register per process (bounded or unbounded), the write-once input
// registers I_1..I_n, and the derived operations collect and atomic
// snapshot. The sched-aware bindings in this package charge exactly one
// scheduler step per atomic operation.
package memory

import (
	"fmt"

	"repro/internal/register"
	"repro/internal/sched"
)

// Value is a register content (alias of register.Value).
type Value = register.Value

// Shared is the shared memory for n processes: registers R_1..R_n of a
// common width, and input registers I_1..I_n. It performs no internal
// locking: atomicity comes from the scheduler runtime, which lets only one
// process take a step at a time.
type Shared struct {
	regs   []*register.SWMR
	inputs []*register.WriteOnce

	reads, writes, snapshots int
}

// New returns a shared memory for n processes with registers of the given
// width in bits (0 = unbounded). Coordination registers are initialized to
// the zero word for bounded memories and to nil for unbounded ones,
// matching the paper's initializations.
func New(n, width int) *Shared {
	m := &Shared{
		regs:   make([]*register.SWMR, n),
		inputs: make([]*register.WriteOnce, n),
	}
	for i := range m.regs {
		var initial Value
		if width > 0 {
			initial = uint64(0)
		}
		m.regs[i] = register.NewSWMR(width, initial)
		m.inputs[i] = register.NewWriteOnce()
	}
	return m
}

// N returns the number of processes (and registers).
func (m *Shared) N() int { return len(m.regs) }

// Width returns the register width in bits (0 = unbounded).
func (m *Shared) Width() int { return m.regs[0].Width() }

// Ops returns the operation counters (reads, writes, snapshots) accumulated
// so far. Collect counts as one read per register.
func (m *Shared) Ops() (reads, writes, snapshots int) {
	return m.reads, m.writes, m.snapshots
}

// write stores v in register i (no scheduling; use Mem for model runs).
func (m *Shared) write(i int, v Value) error {
	m.writes++
	if err := m.regs[i].Write(v); err != nil {
		return fmt.Errorf("R%d: %w", i, err)
	}
	return nil
}

// read returns the content of register j.
func (m *Shared) read(j int) Value {
	m.reads++
	return m.regs[j].Read()
}

// snapshot returns an atomic copy of all registers.
func (m *Shared) snapshot() []Value {
	m.snapshots++
	out := make([]Value, len(m.regs))
	for i, r := range m.regs {
		out[i] = r.Read()
	}
	return out
}

// writeInput stores v in input register i (write-once).
func (m *Shared) writeInput(i int, v Value) error {
	if err := m.inputs[i].Write(v); err != nil {
		return fmt.Errorf("I%d: %w", i, err)
	}
	return nil
}

// readInput returns the content of input register j, nil (⊥) if unwritten.
func (m *Shared) readInput(j int) Value {
	return m.inputs[j].Read()
}

// Peek returns the current content of register j without counting an
// operation. It is intended for test assertions and StepWhen conditions,
// not for protocol steps.
func (m *Shared) Peek(j int) Value { return m.regs[j].Read() }

// InputWritten reports whether input register I_j has been written. Like
// Peek it counts no operation and is meant for StepWhen conditions.
func (m *Shared) InputWritten(j int) bool { return m.inputs[j].Written() }

// PeekAll returns a copy of all register contents without counting an
// operation (for assertions).
func (m *Shared) PeekAll() []Value {
	out := make([]Value, len(m.regs))
	for i, r := range m.regs {
		out[i] = r.Read()
	}
	return out
}

// Mem binds a process handle to a shared memory. Every method performs
// exactly one scheduler step, making it one atomic operation of the model.
type Mem struct {
	P *sched.Proc
	S *Shared
}

// Bind returns the memory binding for process p.
func Bind(p *sched.Proc, s *Shared) Mem { return Mem{P: p, S: s} }

// Write writes v to the process's own register R_me (one step).
func (pm Mem) Write(v Value) error {
	pm.P.Step()
	return pm.S.write(pm.P.ID, v)
}

// Read returns the content of register R_j (one step).
func (pm Mem) Read(j int) Value {
	pm.P.Step()
	return pm.S.read(j)
}

// Snapshot returns an atomic snapshot of all registers (one step). The
// model grants snapshot as a primitive; Lemma 2.3 (Borowsky-Gafni) shows
// it is implementable from read/write, and package iis contains that
// implementation in the iterated setting.
func (pm Mem) Snapshot() []Value {
	pm.P.Step()
	return pm.S.snapshot()
}

// Collect reads all n registers one by one in index order (n steps).
func (pm Mem) Collect() []Value {
	out := make([]Value, pm.S.N())
	for j := range out {
		out[j] = pm.Read(j)
	}
	return out
}

// WriteInput writes the process's input to its write-once register I_me
// (one step).
func (pm Mem) WriteInput(v Value) error {
	pm.P.Step()
	return pm.S.writeInput(pm.P.ID, v)
}

// ReadInput returns the content of input register I_j (one step).
func (pm Mem) ReadInput(j int) Value {
	pm.P.Step()
	return pm.S.readInput(j)
}

// AwaitRead blocks until cond holds of register R_j's content, then reads
// it (one step). It stands for the fair busy-wait loops of the paper's
// §6 constructions: the process is simply not enabled until the condition
// holds, which keeps executions finite while preserving solvability.
func (pm Mem) AwaitRead(j int, cond func(Value) bool) Value {
	pm.P.StepWhen(func() bool { return cond(pm.S.Peek(j)) })
	return pm.S.read(j)
}
