// Package memory implements the shared memory of the model: one SWMR
// register per process (bounded or unbounded), the write-once input
// registers I_1..I_n, and the derived operations collect and atomic
// snapshot. The sched-aware bindings in this package charge exactly one
// scheduler step per atomic operation.
//
// The memory is also the canonical-state seam of the memoized explorer
// (sched.ExploreMemo): alongside the register contents it maintains one
// rolling observation-history hash per process. A deterministic process
// is a function of its parameters and the sequence of values it has
// observed, so (register contents, per-process history hashes) is a
// sound fingerprint of the global state — it can over-distinguish
// states (costing only reduction, never correctness) and under-
// distinguishes only on 64-bit hash collisions. Histories record
// register indices relative to the acting process, which makes the
// per-process components invariant under process relabelling and lets
// CanonicalKey apply the symmetry reduction for id-symmetric protocols.
package memory

import (
	"fmt"
	"hash/fnv"

	"repro/internal/register"
	"repro/internal/sched"
)

// Value is a register content (alias of register.Value).
type Value = register.Value

// Operation tags folded into the per-process history hash. Distinct
// tags keep e.g. "read R_other = 0" and "read I_other = 0" apart.
const (
	opWrite uint64 = iota + 1
	opRead
	opSnapshot
	opWriteInput
	opReadInput
	opError
)

// Shared is the shared memory for n processes: registers R_1..R_n of a
// common width, and input registers I_1..I_n. It performs no internal
// locking: atomicity comes from the scheduler runtime, which lets only one
// process take a step at a time.
type Shared struct {
	regs   []*register.SWMR
	inputs []*register.WriteOnce

	// hist[i] is process i's rolling observation-history hash: every
	// operation i performs folds in the operation tag, the register
	// index relative to i, and the value observed or written.
	hist []uint64

	reads, writes, snapshots int

	canon sched.Canonicalizer
}

// New returns a shared memory for n processes with registers of the given
// width in bits (0 = unbounded). Coordination registers are initialized to
// the zero word for bounded memories and to nil for unbounded ones,
// matching the paper's initializations.
func New(n, width int) *Shared {
	m := &Shared{
		regs:   make([]*register.SWMR, n),
		inputs: make([]*register.WriteOnce, n),
		hist:   make([]uint64, n),
	}
	for i := range m.regs {
		var initial Value
		if width > 0 {
			initial = uint64(0)
		}
		m.regs[i] = register.NewSWMR(width, initial)
		m.inputs[i] = register.NewWriteOnce()
		m.hist[i] = sched.KeySeed()
	}
	return m
}

// N returns the number of processes (and registers).
func (m *Shared) N() int { return len(m.regs) }

// Width returns the register width in bits (0 = unbounded).
func (m *Shared) Width() int { return m.regs[0].Width() }

// Ops returns the operation counters (reads, writes, snapshots) accumulated
// so far. Collect counts as one read per register.
func (m *Shared) Ops() (reads, writes, snapshots int) {
	return m.reads, m.writes, m.snapshots
}

// rel maps register index j to its offset from process pid, so that the
// history hash of a process never mentions absolute process ids.
func (m *Shared) rel(pid, j int) uint64 {
	n := len(m.regs)
	return uint64(((j-pid)%n + n) % n)
}

// observe folds one operation into process pid's history hash.
func (m *Shared) observe(pid int, words ...uint64) {
	m.hist[pid] = sched.MixKey(m.hist[pid], words...)
}

// valueSeed domain-separates value words from observation-history
// chains. Both are MixKey chains over small tags, and with a shared
// seed a history prefix can equal a value word exactly — e.g.
// MixKey(seed, opRead, rel=1) == valueWord(uint64(1)) when opRead and
// the uint64 tag are both 2 — at which point the xor step cancels the
// chain to zero and distinct histories collapse (the memory fuzzer
// found exactly that, colliding "read own register = 0" with "read
// other's register = 1"). Any constant other than sched.KeySeed()
// restores independence; this is the splitmix64 increment.
const valueSeed = 0x9e3779b97f4a7c15

// valueWord compresses a register content into one hash word. Bounded
// registers hold uint64 words; unbounded ones may hold any comparable
// value, hashed through its printed form on the (rare) slow path.
func valueWord(v Value) uint64 {
	// Tag and payload fold as two separate hash steps: a single
	// (tag ^ word) step would collide whenever tag-xor-word ties
	// (e.g. uint64(1) under tag 2 vs int(0) under tag 3).
	seed := uint64(valueSeed)
	switch x := v.(type) {
	case nil:
		return sched.MixKey(seed, 1)
	case uint64:
		return sched.MixKey(seed, 2, x)
	case int:
		return sched.MixKey(seed, 3, uint64(x))
	case bool:
		if x {
			return sched.MixKey(seed, 4, 1)
		}
		return sched.MixKey(seed, 4, 0)
	case string:
		h := fnv.New64a()
		h.Write([]byte(x))
		return sched.MixKey(seed, 5, h.Sum64())
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%T:%v", v, v)
		return sched.MixKey(seed, 6, h.Sum64())
	}
}

// write stores v in register i (no scheduling; use Mem for model runs).
func (m *Shared) write(i int, v Value) error {
	m.writes++
	if err := m.regs[i].Write(v); err != nil {
		m.observe(i, opError, opWrite, valueWord(v))
		return fmt.Errorf("R%d: %w", i, err)
	}
	m.observe(i, opWrite, valueWord(v))
	return nil
}

// read returns the content of register j as observed by process pid.
func (m *Shared) read(pid, j int) Value {
	m.reads++
	v := m.regs[j].Read()
	m.observe(pid, opRead, m.rel(pid, j), valueWord(v))
	return v
}

// snapshot returns an atomic copy of all registers, observed by pid.
// The history records the values rotated to start at pid's own
// register, keeping the hash relabelling-invariant.
func (m *Shared) snapshot(pid int) []Value {
	m.snapshots++
	n := len(m.regs)
	out := make([]Value, n)
	words := make([]uint64, 0, n+1)
	words = append(words, opSnapshot)
	for i := 0; i < n; i++ {
		out[i] = m.regs[i].Read()
	}
	for off := 0; off < n; off++ {
		words = append(words, valueWord(out[(pid+off)%n]))
	}
	m.observe(pid, words...)
	return out
}

// writeInput stores v in input register i (write-once).
func (m *Shared) writeInput(i int, v Value) error {
	if err := m.inputs[i].Write(v); err != nil {
		m.observe(i, opError, opWriteInput, valueWord(v))
		return fmt.Errorf("I%d: %w", i, err)
	}
	m.observe(i, opWriteInput, valueWord(v))
	return nil
}

// readInput returns the content of input register j, nil (⊥) if unwritten,
// as observed by process pid.
func (m *Shared) readInput(pid, j int) Value {
	v := m.inputs[j].Read()
	m.observe(pid, opReadInput, m.rel(pid, j), valueWord(v))
	return v
}

// Component returns process i's canonical-state component: its history
// hash folded with its register and input-register contents. Absolute
// process ids appear nowhere in it, so for id-symmetric protocols the
// multiset of components determines the global state up to relabelling.
func (m *Shared) Component(i int) uint64 {
	w := sched.MixKey(m.hist[i], valueWord(m.regs[i].Read()))
	if m.inputs[i].Written() {
		return sched.MixKey(w, 1, valueWord(m.inputs[i].Read()))
	}
	return sched.MixKey(w, 0)
}

// CanonicalKey fingerprints the global state (register contents plus
// per-process local state via history hashes), with process-relabelling
// symmetry reduction. It must be called only while no process is mid-
// operation — in explorations, from a Scheduler.Next hook, where every
// live process is parked. Sound as a memo key for id-symmetric systems
// with relabelling-invariant aggregates; see sched.Canonicalizer.
func (m *Shared) CanonicalKey() sched.StateKey {
	m.canon.Reset()
	for i := range m.regs {
		m.canon.Proc(m.Component(i))
	}
	return m.canon.Key()
}

// Peek returns the current content of register j without counting an
// operation. It is intended for test assertions and StepWhen conditions,
// not for protocol steps.
func (m *Shared) Peek(j int) Value { return m.regs[j].Read() }

// InputWritten reports whether input register I_j has been written. Like
// Peek it counts no operation and is meant for StepWhen conditions.
func (m *Shared) InputWritten(j int) bool { return m.inputs[j].Written() }

// PeekAll returns a copy of all register contents without counting an
// operation (for assertions).
func (m *Shared) PeekAll() []Value {
	out := make([]Value, len(m.regs))
	for i, r := range m.regs {
		out[i] = r.Read()
	}
	return out
}

// Mem binds a process handle to a shared memory. Every method performs
// exactly one scheduler step, making it one atomic operation of the model.
type Mem struct {
	P *sched.Proc
	S *Shared
}

// Bind returns the memory binding for process p.
func Bind(p *sched.Proc, s *Shared) Mem { return Mem{P: p, S: s} }

// Write writes v to the process's own register R_me (one step).
func (pm Mem) Write(v Value) error {
	pm.P.Step()
	return pm.S.write(pm.P.ID, v)
}

// Read returns the content of register R_j (one step).
func (pm Mem) Read(j int) Value {
	pm.P.Step()
	return pm.S.read(pm.P.ID, j)
}

// Snapshot returns an atomic snapshot of all registers (one step). The
// model grants snapshot as a primitive; Lemma 2.3 (Borowsky-Gafni) shows
// it is implementable from read/write, and package iis contains that
// implementation in the iterated setting.
func (pm Mem) Snapshot() []Value {
	pm.P.Step()
	return pm.S.snapshot(pm.P.ID)
}

// Collect reads all n registers one by one in index order (n steps).
func (pm Mem) Collect() []Value {
	out := make([]Value, pm.S.N())
	for j := range out {
		out[j] = pm.Read(j)
	}
	return out
}

// WriteInput writes the process's input to its write-once register I_me
// (one step).
func (pm Mem) WriteInput(v Value) error {
	pm.P.Step()
	return pm.S.writeInput(pm.P.ID, v)
}

// ReadInput returns the content of input register I_j (one step).
func (pm Mem) ReadInput(j int) Value {
	pm.P.Step()
	return pm.S.readInput(pm.P.ID, j)
}

// AwaitRead blocks until cond holds of register R_j's content, then reads
// it (one step). It stands for the fair busy-wait loops of the paper's
// §6 constructions: the process is simply not enabled until the condition
// holds, which keeps executions finite while preserving solvability.
func (pm Mem) AwaitRead(j int, cond func(Value) bool) Value {
	pm.P.StepWhen(func() bool { return cond(pm.S.Peek(j)) })
	return pm.S.read(pm.P.ID, j)
}
