package memory

import "testing"

// TestCanonicalKeyIdempotent: fingerprinting is a pure observation —
// repeated calls agree and leave the memory untouched.
func TestCanonicalKeyIdempotent(t *testing.T) {
	m := New(2, 1)
	if err := m.write(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	m.read(1, 0)
	k1 := m.CanonicalKey()
	k2 := m.CanonicalKey()
	if k1 != k2 {
		t.Fatalf("keys differ across calls: %x vs %x", k1, k2)
	}
	if got := m.Peek(0); got != uint64(1) {
		t.Fatalf("CanonicalKey mutated the memory: R0 = %v", got)
	}
}

// TestCanonicalKeyMirrorInvariance: the same operation sequence with
// the two process roles swapped (and register targets swapped to
// match) lands on the same canonical key — the relabelling reduction.
func TestCanonicalKeyMirrorInvariance(t *testing.T) {
	type op struct {
		kind string
		pid  int
		j    int
		val  uint64
	}
	script := []op{
		{kind: "wi", pid: 0, val: 0},
		{kind: "wi", pid: 1, val: 1},
		{kind: "w", pid: 0, val: 1},
		{kind: "r", pid: 1, j: 0},
		{kind: "snap", pid: 0},
		{kind: "ri", pid: 1, j: 0},
		{kind: "w", pid: 1, val: 1},
		{kind: "r", pid: 0, j: 1},
	}
	apply := func(mirror int) *Shared {
		m := New(2, 1)
		for _, o := range script {
			pid, j := o.pid^mirror, o.j^mirror
			switch o.kind {
			case "w":
				if err := m.write(pid, o.val); err != nil {
					t.Fatal(err)
				}
			case "r":
				m.read(pid, j)
			case "snap":
				m.snapshot(pid)
			case "wi":
				if err := m.writeInput(pid, o.val); err != nil {
					t.Fatal(err)
				}
			case "ri":
				m.readInput(pid, j)
			}
		}
		return m
	}
	a, b := apply(0), apply(1)
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("mirrored runs disagree: %x vs %x", a.CanonicalKey(), b.CanonicalKey())
	}
}

// TestCanonicalKeyCommutingWrites: independent steps of different
// processes commute into the same canonical state — the property the
// memoized explorer's pruning feeds on.
func TestCanonicalKeyCommutingWrites(t *testing.T) {
	ab := New(2, 1)
	if err := ab.write(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if err := ab.write(1, uint64(1)); err != nil {
		t.Fatal(err)
	}
	ba := New(2, 1)
	if err := ba.write(1, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if err := ba.write(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if ab.CanonicalKey() != ba.CanonicalKey() {
		t.Fatal("commuting writes produced different canonical states")
	}
}

// TestCanonicalKeyHistoryMatters: same register contents, different
// observation histories — genuinely different local states — must get
// different keys. Here p0 reads R1 either before or after p1's write;
// the final memory is identical but p0 observed different values.
func TestCanonicalKeyHistoryMatters(t *testing.T) {
	after := New(2, 1)
	if err := after.write(1, uint64(1)); err != nil {
		t.Fatal(err)
	}
	after.read(0, 1)
	before := New(2, 1)
	before.read(0, 1)
	if err := before.write(1, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if got, want := before.PeekAll(), after.PeekAll(); got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("setup broken: register contents differ, %v vs %v", got, want)
	}
	if after.CanonicalKey() == before.CanonicalKey() {
		t.Fatal("different observation histories collapsed to one key")
	}
}

// TestCanonicalKeyDistinguishesContents: distinct register or input
// contents get distinct keys.
func TestCanonicalKeyDistinguishesContents(t *testing.T) {
	base := New(2, 1)
	written := New(2, 1)
	if err := written.write(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if base.CanonicalKey() == written.CanonicalKey() {
		t.Fatal("register content not reflected in key")
	}
	in0 := New(2, 1)
	if err := in0.writeInput(0, uint64(0)); err != nil {
		t.Fatal(err)
	}
	in1 := New(2, 1)
	if err := in1.writeInput(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if in0.CanonicalKey() == in1.CanonicalKey() {
		t.Fatal("input register content not reflected in key")
	}
	if base.CanonicalKey() == in0.CanonicalKey() {
		t.Fatal("written vs unwritten input not reflected in key")
	}
}

// TestValueWordKinds pins the value hashing across the content kinds a
// register can hold (bounded word, nil ⊥, unbounded Go values).
func TestValueWordKinds(t *testing.T) {
	words := []uint64{
		valueWord(nil),
		valueWord(uint64(0)),
		valueWord(uint64(1)),
		valueWord(int(0)),
		valueWord(true),
		valueWord(false),
		valueWord("x"),
		valueWord("y"),
		valueWord(struct{ A int }{1}),
	}
	seen := map[uint64]int{}
	for i, w := range words {
		if prev, ok := seen[w]; ok {
			t.Fatalf("value words %d and %d collide: %x", prev, i, w)
		}
		seen[w] = i
	}
	if valueWord("x") != valueWord("x") {
		t.Fatal("string hashing unstable")
	}
}
