package memory

import (
	"errors"
	"testing"

	"repro/internal/register"
	"repro/internal/sched"
)

func TestSharedBoundedInit(t *testing.T) {
	m := New(3, 2)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Width() != 2 {
		t.Fatalf("Width = %d", m.Width())
	}
	for j := 0; j < 3; j++ {
		if got := m.Peek(j); got != uint64(0) {
			t.Fatalf("R%d initial = %v, want 0", j, got)
		}
	}
}

func TestSharedUnboundedInit(t *testing.T) {
	m := New(2, 0)
	for j := 0; j < 2; j++ {
		if got := m.Peek(j); got != nil {
			t.Fatalf("R%d initial = %v, want nil", j, got)
		}
	}
}

// runOne runs a single process against the memory with a trivial scheduler.
func runOne(t *testing.T, m *Shared, n int, body func(pm Mem) error) *sched.Result {
	t.Helper()
	procs := make([]sched.ProcFunc, n)
	for i := range procs {
		procs[i] = func(p *sched.Proc) error {
			if p.ID == 0 {
				return body(Bind(p, m))
			}
			return nil
		}
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMemWriteReadSteps(t *testing.T) {
	m := New(2, 3)
	res := runOne(t, m, 2, func(pm Mem) error {
		if err := pm.Write(uint64(5)); err != nil {
			return err
		}
		if got := pm.Read(0); got != uint64(5) {
			t.Errorf("Read(0) = %v", got)
		}
		if got := pm.Read(1); got != uint64(0) {
			t.Errorf("Read(1) = %v", got)
		}
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 3 {
		t.Fatalf("Steps[0] = %d, want 3 (1 write + 2 reads)", res.Steps[0])
	}
}

func TestMemBoundedViolation(t *testing.T) {
	m := New(2, 1)
	res := runOne(t, m, 2, func(pm Mem) error {
		return pm.Write(uint64(2)) // 2 bits into a 1-bit register
	})
	if err := res.Errs[0]; !errors.Is(err, register.ErrTooWide) {
		t.Fatalf("Errs[0] = %v, want ErrTooWide", err)
	}
}

func TestMemSnapshotAtomicSingleStep(t *testing.T) {
	m := New(3, 4)
	res := runOne(t, m, 3, func(pm Mem) error {
		if err := pm.Write(uint64(7)); err != nil {
			return err
		}
		s := pm.Snapshot()
		if len(s) != 3 {
			t.Errorf("snapshot len = %d", len(s))
		}
		if s[0] != uint64(7) || s[1] != uint64(0) || s[2] != uint64(0) {
			t.Errorf("snapshot = %v", s)
		}
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 2 {
		t.Fatalf("Steps[0] = %d, want 2 (write + snapshot)", res.Steps[0])
	}
}

func TestMemCollectCostsNSteps(t *testing.T) {
	m := New(4, 0)
	res := runOne(t, m, 4, func(pm Mem) error {
		_ = pm.Collect()
		return nil
	})
	if res.Steps[0] != 4 {
		t.Fatalf("Steps[0] = %d, want 4 (one read per register)", res.Steps[0])
	}
}

func TestMemInputRegisters(t *testing.T) {
	m := New(2, 1)
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			pm := Bind(p, m)
			if err := pm.WriteInput("left"); err != nil {
				return err
			}
			if got := pm.ReadInput(1); got != nil {
				t.Errorf("ReadInput(1) before write = %v, want ⊥", got)
			}
			return nil
		},
		func(p *sched.Proc) error {
			pm := Bind(p, m)
			if err := pm.WriteInput("right"); err != nil {
				return err
			}
			if got := pm.ReadInput(0); got != "left" {
				t.Errorf("ReadInput(0) = %v, want left", got)
			}
			return nil
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMemInputWriteOnce(t *testing.T) {
	m := New(1, 1)
	res := runOne(t, m, 1, func(pm Mem) error {
		if err := pm.WriteInput(uint64(1)); err != nil {
			return err
		}
		return pm.WriteInput(uint64(0))
	})
	if !errors.Is(res.Errs[0], register.ErrAlreadyWritten) {
		t.Fatalf("Errs[0] = %v, want ErrAlreadyWritten", res.Errs[0])
	}
}

func TestMemAwaitRead(t *testing.T) {
	m := New(2, 1)
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			pm := Bind(p, m)
			got := pm.AwaitRead(1, func(v Value) bool { return v == uint64(1) })
			if got != uint64(1) {
				t.Errorf("AwaitRead = %v", got)
			}
			return nil
		},
		func(p *sched.Proc) error {
			pm := Bind(p, m)
			pm.P.Step() // burn a step so the waiter parks first under RR
			return pm.Write(uint64(1))
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: &sched.RoundRobin{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMemOpCounters(t *testing.T) {
	m := New(2, 0)
	res := runOne(t, m, 2, func(pm Mem) error {
		if err := pm.Write("v"); err != nil {
			return err
		}
		_ = pm.Read(1)
		_ = pm.Snapshot()
		return nil
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	r, w, s := m.Ops()
	if r != 1 || w != 1 || s != 1 {
		t.Fatalf("Ops = (%d,%d,%d), want (1,1,1)", r, w, s)
	}
}

func TestMemInterleavedVisibility(t *testing.T) {
	// Under exhaustive exploration, a reader sees either the old or the
	// new value, and after the writer's write has been scheduled it always
	// sees the new one.
	factory := func() []sched.ProcFunc {
		m := New(2, 1)
		return []sched.ProcFunc{
			func(p *sched.Proc) error {
				return Bind(p, m).Write(uint64(1))
			},
			func(p *sched.Proc) error {
				pm := Bind(p, m)
				v := pm.Read(0)
				if v != uint64(0) && v != uint64(1) {
					t.Errorf("impossible read %v", v)
				}
				return nil
			},
		}
	}
	runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
		if e := r.Err(); e != nil {
			t.Errorf("execution failed: %v", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}
