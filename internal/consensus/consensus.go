// Package consensus demonstrates the boundary that drives the whole
// paper: binary consensus is not solvable 1-resiliently (Lemma 2.1), and
// this impossibility is what connects the execution graph of §3.1 and
// forces the ε-agreement structure everything else builds on.
//
// Impossibility itself is a theorem; what this package runs is its
// observable face:
//
//   - RoundedAgreement — the natural attempt "solve ε-agreement, round
//     the output to {0,1}" — is refuted by the exhaustive explorer,
//     which finds a concrete interleaving where the two processes round
//     to different values (the path of §3.1 must cross 1/2 somewhere);
//   - WaitingConsensus — "process 1 waits for process 0's input and
//     adopts it" — is correct while nobody crashes, and the explorer
//     confirms it over every crash-free interleaving; but a single
//     crash of process 0 leaves process 1 waiting forever, which the
//     runtime reports as a deadlock: waiting is exactly what crash
//     resilience forbids.
package consensus

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/memory"
	"repro/internal/sched"
)

// Violation describes a concrete execution refuting a consensus attempt.
type Violation struct {
	// Inputs of the two processes.
	Inputs [2]uint64
	// Outs are the decided values.
	Outs [2]uint64
	// Schedule is the pid sequence of the refuting interleaving.
	Schedule []int
	// Reason is the checker's message.
	Reason string
}

// RoundedAgreementProc is the doomed consensus attempt: run Algorithm 1
// (ε = 1/(2k+1)) and round the decision to the nearest binary value.
func RoundedAgreementProc(m *memory.Shared, k int, input uint64, out *uint64, decided *bool) sched.ProcFunc {
	return func(p *sched.Proc) error {
		d, err := agreement.Alg1Inline(p, m, k, input)
		if err != nil {
			return err
		}
		// Round num/den to {0,1}: den = 2k+1 is odd, no ties.
		if 2*d.Num > d.Den {
			*out = 1
		} else {
			*out = 0
		}
		*decided = true
		return nil
	}
}

// FindRoundingViolation explores the interleavings of the rounded
// ε-agreement attempt with mixed inputs and returns the first execution
// where consensus fails. By Lemma 2.1 one must exist for every k; the
// §3.1 connectivity argument says the adversary can park the two
// processes on the path edge that straddles 1/2.
func FindRoundingViolation(k int) (*Violation, error) {
	inputs := [2]uint64{0, 1}
	var outs [2]uint64
	var decided [2]bool
	factory := func() []sched.ProcFunc {
		outs = [2]uint64{}
		decided = [2]bool{}
		m := agreement.NewAlg1Memory()
		return []sched.ProcFunc{
			RoundedAgreementProc(m, k, inputs[0], &outs[0], &decided[0]),
			RoundedAgreementProc(m, k, inputs[1], &outs[1], &decided[1]),
		}
	}
	var found *Violation
	_, err := sched.Explore(factory, 0, 0, func(r *sched.Result) bool {
		if e := r.Err(); e != nil {
			return true
		}
		if err := agreement.CheckConsensus(inputs[:], outs[:], decided[:]); err != nil {
			sched := make([]int, len(r.Decisions))
			for i, d := range r.Decisions {
				sched[i] = d.Pid
			}
			found = &Violation{Inputs: inputs, Outs: outs, Schedule: sched, Reason: err.Error()}
			return false
		}
		return true
	})
	if err != nil && err != sched.ErrExploreLimit {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("consensus: no violation found for k=%d — Lemma 2.1 falsified?!", k)
	}
	return found, nil
}

// WaitingConsensusProcs is the 0-resilient protocol: process 0 decides
// its input and publishes it; process 1 waits for it and adopts it. It
// solves consensus when no process crashes — and blocks forever when
// process 0 does, which is why it is no counterexample to Lemma 2.1.
func WaitingConsensusProcs(m *memory.Shared, inputs [2]uint64, outs *[2]uint64, decided *[2]bool) []sched.ProcFunc {
	return []sched.ProcFunc{
		func(p *sched.Proc) error {
			pm := memory.Bind(p, m)
			if err := pm.WriteInput(inputs[0]); err != nil {
				return err
			}
			outs[0] = inputs[0]
			decided[0] = true
			return nil
		},
		func(p *sched.Proc) error {
			pm := memory.Bind(p, m)
			if err := pm.WriteInput(inputs[1]); err != nil {
				return err
			}
			v := pm.AwaitRead(0, func(memory.Value) bool { return m.InputWritten(0) })
			_ = v
			x, ok := pm.ReadInput(0).(uint64)
			if !ok {
				return fmt.Errorf("consensus: input register 0 empty after wait")
			}
			outs[1] = x
			decided[1] = true
			return nil
		},
	}
}
