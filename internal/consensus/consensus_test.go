package consensus

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/memory"
	"repro/internal/sched"
)

func TestRoundingViolationExists(t *testing.T) {
	// Lemma 2.1 made visible: for every k there is an interleaving where
	// rounding ε-agreement splits the decision.
	for k := 1; k <= 4; k++ {
		v, err := FindRoundingViolation(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if v.Outs[0] == v.Outs[1] {
			t.Fatalf("k=%d: violation reported but outputs agree: %+v", k, v)
		}
		if len(v.Schedule) == 0 {
			t.Fatalf("k=%d: empty schedule", k)
		}
	}
}

func TestRoundingViolationReplayable(t *testing.T) {
	// The reported schedule is a real witness: replaying it reproduces
	// the disagreement.
	k := 3
	v, err := FindRoundingViolation(k)
	if err != nil {
		t.Fatal(err)
	}
	var outs [2]uint64
	var decided [2]bool
	m := agreement.NewAlg1Memory()
	procs := []sched.ProcFunc{
		RoundedAgreementProc(m, k, v.Inputs[0], &outs[0], &decided[0]),
		RoundedAgreementProc(m, k, v.Inputs[1], &outs[1], &decided[1]),
	}
	res, err := sched.Run(sched.Config{Scheduler: &sched.Replay{Prefix: v.Schedule}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	if outs != v.Outs {
		t.Fatalf("replay outputs %v, recorded %v", outs, v.Outs)
	}
	if outs[0] == outs[1] {
		t.Fatal("replay did not reproduce the disagreement")
	}
}

func TestRoundingStillValid(t *testing.T) {
	// The rounding attempt never violates validity (outputs are inputs);
	// only agreement fails — exactly the consensus condition that is
	// unattainable.
	k := 2
	inputs := [2]uint64{0, 1}
	var outs [2]uint64
	var decided [2]bool
	factory := func() []sched.ProcFunc {
		outs, decided = [2]uint64{}, [2]bool{}
		m := agreement.NewAlg1Memory()
		return []sched.ProcFunc{
			RoundedAgreementProc(m, k, inputs[0], &outs[0], &decided[0]),
			RoundedAgreementProc(m, k, inputs[1], &outs[1], &decided[1]),
		}
	}
	_, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
		for i := 0; i < 2; i++ {
			if decided[i] && outs[i] != 0 && outs[i] != 1 {
				t.Fatalf("non-binary decision %d", outs[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoundingAgreesOnEqualInputs(t *testing.T) {
	// With equal inputs the attempt succeeds everywhere (validity of the
	// underlying ε-agreement pins both outputs to the input).
	k := 2
	for _, x := range []uint64{0, 1} {
		inputs := [2]uint64{x, x}
		var outs [2]uint64
		var decided [2]bool
		factory := func() []sched.ProcFunc {
			outs, decided = [2]uint64{}, [2]bool{}
			m := agreement.NewAlg1Memory()
			return []sched.ProcFunc{
				RoundedAgreementProc(m, k, inputs[0], &outs[0], &decided[0]),
				RoundedAgreementProc(m, k, inputs[1], &outs[1], &decided[1]),
			}
		}
		_, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
			if err := agreement.CheckConsensus(inputs[:], outs[:], decided[:]); err != nil {
				t.Fatalf("input %d: %v", x, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWaitingConsensusCrashFree(t *testing.T) {
	// Waiting solves consensus over every crash-free interleaving...
	for _, inputs := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		var outs [2]uint64
		var decided [2]bool
		factory := func() []sched.ProcFunc {
			outs, decided = [2]uint64{}, [2]bool{}
			m := memory.New(2, 1)
			return WaitingConsensusProcs(m, inputs, &outs, &decided)
		}
		_, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
			if e := r.Err(); e != nil {
				t.Fatalf("inputs %v: %v", inputs, e)
			}
			if !decided[0] || !decided[1] {
				t.Fatalf("inputs %v: undecided", inputs)
			}
			if err := agreement.CheckConsensus(inputs[:], outs[:], decided[:]); err != nil {
				t.Fatalf("inputs %v: %v", inputs, err)
			}
			if outs[0] != outs[1] || outs[0] != inputs[0] {
				t.Fatalf("inputs %v: outputs %v", inputs, outs)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWaitingConsensusBlocksOnCrash(t *testing.T) {
	// ...but one crash of process 0 leaves process 1 blocked forever:
	// the runtime reports deadlock, and process 1 never decides. This is
	// why waiting protocols do not contradict Lemma 2.1.
	inputs := [2]uint64{0, 1}
	var outs [2]uint64
	var decided [2]bool
	m := memory.New(2, 1)
	procs := WaitingConsensusProcs(m, inputs, &outs, &decided)
	scheduler := sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{0: 0})
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected process 1 to block forever")
	}
	if decided[1] {
		t.Fatal("process 1 decided despite the missing input")
	}
}
