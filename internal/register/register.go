// Package register models the single-writer/multi-reader (SWMR) registers
// of the asynchronous shared-memory model studied in the paper, including
// bounded-size registers (the paper's central object) and the special
// write-once input registers used by the constant-size constructions.
//
// A register value is any Go value for unbounded registers. Bounded
// registers restrict values to uint64 words whose bit-width fits the
// configured budget: a register of s bits stores exactly the values
// 0 .. 2^s-1.
package register

import (
	"errors"
	"fmt"
	"math/bits"
)

// Value is the content of a register. Unbounded registers accept any value;
// bounded registers accept only uint64 words within their width.
type Value = any

// ErrTooWide is returned when a write exceeds a bounded register's width.
var ErrTooWide = errors.New("register: value exceeds register width")

// ErrAlreadyWritten is returned when a write-once register is written twice.
var ErrAlreadyWritten = errors.New("register: write-once register already written")

// BitWidth returns the minimal number of bits needed to represent w.
// BitWidth(0) == 0, so 0 fits in a register of any width.
func BitWidth(w uint64) int {
	return bits.Len64(w)
}

// Fits reports whether value v fits in a register of the given width.
// width == 0 means unbounded (everything fits). For bounded registers, only
// uint64 values of bit-width at most width fit; any other Go type is
// considered too wide (it has no bounded encoding).
func Fits(v Value, width int) bool {
	if width <= 0 {
		return true
	}
	w, ok := v.(uint64)
	if !ok {
		return false
	}
	return BitWidth(w) <= width
}

// SWMR is a single-writer/multi-reader atomic register. Atomicity is not
// enforced here: the scheduler runtime (package sched) guarantees that
// only one process takes a step at a time, so plain field access is atomic
// in the model's sense.
type SWMR struct {
	width  int // bits; 0 = unbounded
	val    Value
	writes int
}

// NewSWMR returns a register of the given width in bits (0 = unbounded),
// initialized to initial. Registers in the paper are initialized to 0
// (bounded coordination registers) or ⊥/nil (input registers, views).
func NewSWMR(width int, initial Value) *SWMR {
	return &SWMR{width: width, val: initial}
}

// Width returns the register width in bits (0 = unbounded).
func (r *SWMR) Width() int { return r.width }

// Write replaces the register content with v. It returns ErrTooWide if v
// does not fit the register's width; the register is left unchanged in
// that case, and the caller (a protocol under test) has violated the
// bounded-register model.
func (r *SWMR) Write(v Value) error {
	if !Fits(v, r.width) {
		return fmt.Errorf("%w: %v in %d bits", ErrTooWide, v, r.width)
	}
	r.val = v
	r.writes++
	return nil
}

// Read returns the current register content.
func (r *SWMR) Read() Value { return r.val }

// Writes returns how many successful writes this register has received.
func (r *SWMR) Writes() int { return r.writes }

// WriteOnce is the special input register I_i of the paper (§2 "Size of the
// Registers"): process i writes its input once; the register can be read
// at will but never rewritten, and carries no width restriction. Its
// initial content is ⊥, represented as nil.
type WriteOnce struct {
	val     Value
	written bool
}

// NewWriteOnce returns an unwritten input register (content ⊥ / nil).
func NewWriteOnce() *WriteOnce { return &WriteOnce{} }

// Write stores the input value. A second write returns ErrAlreadyWritten.
func (r *WriteOnce) Write(v Value) error {
	if r.written {
		return ErrAlreadyWritten
	}
	r.val = v
	r.written = true
	return nil
}

// Read returns the stored input, or nil (⊥) if not yet written.
func (r *WriteOnce) Read() Value { return r.val }

// Written reports whether the register has been written.
func (r *WriteOnce) Written() bool { return r.written }
