package register

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBitWidth(t *testing.T) {
	tests := []struct {
		w    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{63, 6},
		{64, 7},
		{1 << 62, 63},
		{^uint64(0), 64},
	}
	for _, tc := range tests {
		if got := BitWidth(tc.w); got != tc.want {
			t.Errorf("BitWidth(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
}

func TestBitWidthMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return BitWidth(a) <= BitWidth(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFits(t *testing.T) {
	tests := []struct {
		name  string
		v     Value
		width int
		want  bool
	}{
		{"unbounded accepts anything", []int{1, 2}, 0, true},
		{"unbounded accepts nil", nil, 0, true},
		{"one bit accepts 0", uint64(0), 1, true},
		{"one bit accepts 1", uint64(1), 1, true},
		{"one bit rejects 2", uint64(2), 1, false},
		{"three bits accept 7", uint64(7), 3, true},
		{"three bits reject 8", uint64(8), 3, false},
		{"bounded rejects non-word", "hello", 8, false},
		{"bounded rejects int", int(1), 8, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Fits(tc.v, tc.width); got != tc.want {
				t.Errorf("Fits(%v, %d) = %v, want %v", tc.v, tc.width, got, tc.want)
			}
		})
	}
}

func TestFitsExactBoundary(t *testing.T) {
	// A register of s bits stores exactly the values 0..2^s-1.
	f := func(s uint8) bool {
		width := int(s%63) + 1
		limit := uint64(1) << width
		return Fits(limit-1, width) && !Fits(limit, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSWMRWriteRead(t *testing.T) {
	r := NewSWMR(2, uint64(0))
	if got := r.Read(); got != uint64(0) {
		t.Fatalf("initial Read = %v, want 0", got)
	}
	if err := r.Write(uint64(3)); err != nil {
		t.Fatalf("Write(3): %v", err)
	}
	if got := r.Read(); got != uint64(3) {
		t.Fatalf("Read = %v, want 3", got)
	}
	if r.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", r.Writes())
	}
}

func TestSWMRWidthViolation(t *testing.T) {
	r := NewSWMR(1, uint64(0))
	if err := r.Write(uint64(2)); !errors.Is(err, ErrTooWide) {
		t.Fatalf("Write(2) err = %v, want ErrTooWide", err)
	}
	// Register unchanged after rejected write.
	if got := r.Read(); got != uint64(0) {
		t.Fatalf("Read after rejected write = %v, want 0", got)
	}
	if r.Writes() != 0 {
		t.Fatalf("Writes after rejected write = %d, want 0", r.Writes())
	}
}

func TestSWMRUnbounded(t *testing.T) {
	r := NewSWMR(0, nil)
	type view struct{ a, b int }
	if err := r.Write(view{1, 2}); err != nil {
		t.Fatalf("unbounded Write: %v", err)
	}
	if got := r.Read(); got != (view{1, 2}) {
		t.Fatalf("Read = %v", got)
	}
}

func TestSWMRWriteErasesPrevious(t *testing.T) {
	// §2: "the content of the register is erased and replaced".
	r := NewSWMR(4, uint64(0))
	for v := uint64(0); v < 16; v++ {
		if err := r.Write(v); err != nil {
			t.Fatalf("Write(%d): %v", v, err)
		}
		if got := r.Read(); got != v {
			t.Fatalf("Read = %v, want %d", got, v)
		}
	}
}

func TestWriteOnce(t *testing.T) {
	r := NewWriteOnce()
	if r.Read() != nil {
		t.Fatal("initial input register not ⊥")
	}
	if r.Written() {
		t.Fatal("Written before any write")
	}
	if err := r.Write("input-x"); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	if got := r.Read(); got != "input-x" {
		t.Fatalf("Read = %v", got)
	}
	if !r.Written() {
		t.Fatal("Written false after write")
	}
	if err := r.Write("other"); !errors.Is(err, ErrAlreadyWritten) {
		t.Fatalf("second Write err = %v, want ErrAlreadyWritten", err)
	}
	if got := r.Read(); got != "input-x" {
		t.Fatalf("Read after rejected rewrite = %v", got)
	}
}
