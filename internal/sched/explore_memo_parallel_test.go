package sched_test

// Differential suite for the parallel memoized explorer: for the same
// grid of small deterministic systems as explore_memo_test.go, the
// parallel explorer must reproduce the exhaustive leaf-fingerprint
// multiset and execution count exactly — whole-tree and over
// PartitionRoots partitions at several depths — for every worker
// count, while sharing memo entries across ranges (StatesShared).

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/sched/schedtest"
)

var parallelWorkerGrid = []int{1, 2, 8}

// TestMemoParallelMatchesExhaustive: same multiset, same execution
// count as the exhaustive DFS for jobs ∈ {1, 2, 8}, with the worker
// count reported in the stats.
func TestMemoParallelMatchesExhaustive(t *testing.T) {
	for _, mc := range memoGrid() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			want, runs := exhaustiveCounts(t, mc)
			for _, workers := range parallelWorkerGrid {
				agg, stats, err := sched.ExploreMemoParallel(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
					t.Fatalf("workers=%d: fingerprint multisets differ:\n%s", workers, d)
				}
				if stats.Executions != runs {
					t.Fatalf("workers=%d: %d executions accounted, exhaustive ran %d", workers, stats.Executions, runs)
				}
				if stats.Workers < 1 || stats.Workers > workers {
					t.Fatalf("workers=%d: stats report %d workers", workers, stats.Workers)
				}
				if workers == 1 && stats.Workers != 1 {
					t.Fatalf("workers=1 must run serially, stats report %d workers", stats.Workers)
				}
				// On tiny trees the automatic carve can deepen to
				// leaf-grained ranges (no interior left to memoize), so
				// unlike the serial test this allows equality: the
				// parallel explorer never does MORE replays than the
				// exhaustive run count.
				if stats.Replays > runs {
					t.Fatalf("workers=%d: %d replays for %d exhaustive runs", workers, stats.Replays, runs)
				}
			}
		})
	}
}

// TestMemoParallelDeterministicAggregate: two runs at the same worker
// count produce identical aggregates and execution counts, whatever
// the scheduling — the byte-identity property the experiment layer
// builds on.
func TestMemoParallelDeterministicAggregate(t *testing.T) {
	for _, mc := range memoGrid() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			for _, workers := range []int{2, 8} {
				a1, s1, err := sched.ExploreMemoParallel(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, workers)
				if err != nil {
					t.Fatal(err)
				}
				a2, s2, err := sched.ExploreMemoParallel(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, workers)
				if err != nil {
					t.Fatal(err)
				}
				if d := schedtest.Diff(schedtest.AsCounts(a1), schedtest.AsCounts(a2)); d != "" {
					t.Fatalf("workers=%d: two runs disagree:\n%s", workers, d)
				}
				if s1.Executions != s2.Executions {
					t.Fatalf("workers=%d: executions %d vs %d across runs", workers, s1.Executions, s2.Executions)
				}
			}
		})
	}
}

// TestMemoParallelPrefixesUnionEqualsExploreAll: the parallel explorer
// over every PartitionRoots carve at depths 0..4 reproduces the
// exhaustive multiset and count, for each worker count.
func TestMemoParallelPrefixesUnionEqualsExploreAll(t *testing.T) {
	for _, mc := range memoGrid() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			want, runs := exhaustiveCounts(t, mc)
			for depth := 0; depth <= 4; depth++ {
				roots, err := sched.PartitionRoots(mc.factory, 0, depth)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range parallelWorkerGrid {
					agg, stats, err := sched.ExploreMemoParallelPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, workers, roots)
					if err != nil {
						t.Fatalf("depth %d workers %d: %v", depth, workers, err)
					}
					if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
						t.Fatalf("depth %d workers %d: multiset differs:\n%s", depth, workers, d)
					}
					if stats.Executions != runs {
						t.Fatalf("depth %d workers %d: %d executions, want %d", depth, workers, stats.Executions, runs)
					}
				}
			}
		})
	}
}

// TestMemoParallelSharesStates: on a branchy space carved into many
// ranges, workers must reuse entries published under other ranges —
// the StatesShared counter is the cross-range half of the pruning.
func TestMemoParallelSharesStates(t *testing.T) {
	mc := memoGrid()[1] // ring n=2,k=3: deep enough for rich cross-range overlap
	roots, err := sched.PartitionRoots(mc.factory, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 4 {
		t.Fatalf("depth-3 carve yields %d roots; test needs ≥ 4", len(roots))
	}
	want, runs := exhaustiveCounts(t, mc)
	agg, stats, err := sched.ExploreMemoParallelPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, 4, roots)
	if err != nil {
		t.Fatal(err)
	}
	if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
		t.Fatalf("multiset differs:\n%s", d)
	}
	if stats.Executions != runs {
		t.Fatalf("executions = %d, want %d", stats.Executions, runs)
	}
	if stats.Workers != 4 {
		t.Fatalf("stats.Workers = %d, want 4", stats.Workers)
	}
	if stats.StatesShared == 0 {
		t.Fatalf("no cross-range sharing on a %d-range carve: %+v", len(roots), stats)
	}
	if stats.StatesShared > stats.StatesPruned {
		t.Fatalf("shared %d exceeds pruned %d", stats.StatesShared, stats.StatesPruned)
	}
}

// TestMemoParallelWorkerClamp: more workers than ranges clamps to the
// range count; a single root runs serially.
func TestMemoParallelWorkerClamp(t *testing.T) {
	mc := memoGrid()[0]
	roots, err := sched.PartitionRoots(mc.factory, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := sched.ExploreMemoParallelPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, 64, roots)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != len(roots) {
		t.Fatalf("stats.Workers = %d, want clamp to %d roots", stats.Workers, len(roots))
	}
	_, stats, err = sched.ExploreMemoParallelPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, 8, [][]int{{}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 {
		t.Fatalf("single root: stats.Workers = %d, want serial fallback", stats.Workers)
	}
}

// TestMemoParallelErrors: the parallel explorer propagates the serial
// contracts — dead seed roots, missing State seam, Leaf without Merge
// — and releases every worker (no hangs) when a range fails.
func TestMemoParallelErrors(t *testing.T) {
	memo := func() sched.MemoInstance {
		s := newAsymSys([]int{2, 2})
		return sched.MemoInstance{Procs: s.procs(), State: s.state, Leaf: schedtest.Leaf(s.leafFP)}
	}
	factory := func() []sched.ProcFunc { return newAsymSys([]int{2, 2}).procs() }
	roots, err := sched.PartitionRoots(factory, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A dead root among live ones: the whole exploration fails.
	bad := append(append([][]int{}, roots...), []int{5})
	if _, _, err := sched.ExploreMemoParallelPrefixes(memo, sched.MemoOptions{Merge: schedtest.Merge}, 2, bad); !errors.Is(err, sched.ErrPrefixNotLive) {
		t.Errorf("dead root: err = %v, want ErrPrefixNotLive", err)
	}
	// Missing State seam.
	if _, _, err := sched.ExploreMemoParallelPrefixes(func() sched.MemoInstance {
		return sched.MemoInstance{Procs: newAsymSys([]int{2, 2}).procs()}
	}, sched.MemoOptions{}, 2, roots); err == nil {
		t.Error("missing State seam not rejected")
	}
	// Leaf contributions without a Merge.
	if _, _, err := sched.ExploreMemoParallelPrefixes(func() sched.MemoInstance {
		s := newAsymSys([]int{2, 2})
		return sched.MemoInstance{Procs: s.procs(), State: s.state, Leaf: schedtest.Leaf(s.leafFP)}
	}, sched.MemoOptions{}, 2, roots); err == nil {
		t.Error("Leaf without Merge not rejected")
	}
	// Empty roots explore nothing.
	agg, stats, err := sched.ExploreMemoParallelPrefixes(func() sched.MemoInstance {
		t.Fatal("factory called with no roots")
		return sched.MemoInstance{}
	}, sched.MemoOptions{}, 4, nil)
	if err != nil || agg != nil || stats.Executions != 0 {
		t.Fatalf("empty roots = (%v, %+v, %v); want nil aggregate, zero stats, nil error", agg, stats, err)
	}
}
