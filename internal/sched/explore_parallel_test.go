package sched

import (
	"fmt"
	"sort"
	"testing"
)

// stepper builds n processes that each take steps plain steps.
func stepper(n, steps int) func() []ProcFunc {
	return func() []ProcFunc {
		procs := make([]ProcFunc, n)
		for i := range procs {
			procs[i] = func(p *Proc) error {
				for s := 0; s < steps; s++ {
					p.Step()
				}
				return nil
			}
		}
		return procs
	}
}

// schedule renders a result's decision sequence as a comparable key.
func schedule(r *Result) string {
	out := ""
	for _, d := range r.Decisions {
		out += fmt.Sprintf("%d,", d.Pid)
	}
	return out
}

// TestExploreParallelMatchesSerial checks that the parallel explorer
// visits exactly the serial explorer's executions — same count, same
// multiset of schedules — for several worker counts.
func TestExploreParallelMatchesSerial(t *testing.T) {
	for _, cfg := range []struct{ n, steps int }{{2, 3}, {3, 2}} {
		var want []string
		serialRuns, err := ExploreAll(stepper(cfg.n, cfg.steps), 0, func(r *Result) {
			want = append(want, schedule(r))
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(want)

		for _, workers := range []int{1, 2, 8} {
			var got []string
			factory := func() Instance {
				procs := stepper(cfg.n, cfg.steps)()
				return Instance{Procs: procs, Done: func(r *Result) {
					got = append(got, schedule(r))
				}}
			}
			runs, err := ExploreParallel(factory, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if runs != serialRuns {
				t.Fatalf("n=%d steps=%d workers=%d: %d runs, serial %d",
					cfg.n, cfg.steps, workers, runs, serialRuns)
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d schedules, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: schedule multiset differs at %d: %q vs %q",
						workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExploreParallelDefaultWorkers exercises the workers <= 0 default.
func TestExploreParallelDefaultWorkers(t *testing.T) {
	factory := func() Instance {
		return Instance{Procs: stepper(2, 2)()}
	}
	runs, err := ExploreParallel(factory, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	serialRuns, err := ExploreAll(stepper(2, 2), 0, func(*Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if runs != serialRuns {
		t.Fatalf("default workers: %d runs, serial %d", runs, serialRuns)
	}
}

// TestExploreParallelPropagatesError: a scheduler configuration error
// inside a run surfaces instead of deadlocking the pool.
func TestExploreParallelPropagatesError(t *testing.T) {
	factory := func() Instance {
		return Instance{Procs: nil} // Run rejects empty process lists
	}
	if _, err := ExploreParallel(factory, 0, 4); err == nil {
		t.Fatal("empty system accepted")
	}
}
