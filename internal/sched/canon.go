package sched

import "sort"

// This file is the canonical-state seam of the memoized explorer
// (explore_memo.go). A system opting into memoization exposes a
// State() function returning a StateKey: a compact fingerprint of
// (shared-memory contents, per-process local state) computed while
// every process is parked between steps. Two nodes of the schedule
// tree with equal keys at equal depth have isomorphic subtrees, so
// the DFS explores one and reuses its aggregate for the other.
//
// Keys are built from one component word per process (the process's
// register content, input register, and observation history folded
// together — internal/memory computes these) plus optional global
// words. Key() sorts the per-process components before folding: that
// is the process-relabelling symmetry reduction, sound exactly when
// the system is id-symmetric (every process runs the same code, with
// per-process parameters observable only through writes that the
// history hash records) and the exploration's aggregate is invariant
// under relabelling outcomes. Systems that do not satisfy that
// contract fold the process id into each component (or use
// KeyOrdered), which disables the reduction but keeps keys sound.

// StateKey is a canonical fingerprint of one global state of an
// explored system, bit-packed into a single word.
type StateKey uint64

// keySeed is the FNV-64 offset basis, kept as a conventional nonzero
// starting point for rolling hashes.
const keySeed = 14695981039346656037

// KeySeed returns the initial value of a rolling key hash.
func KeySeed() uint64 { return keySeed }

// MixKey folds words into a rolling hash, one xor + full 64-bit
// finalization per word. It is the building block for per-process
// history hashes and for combining the components of systems spanning
// several memories. Two cautions for callers. First, the xor step
// cancels when the rolling hash happens to equal the next word, so a
// nested MixKey chain folded as a word into an outer chain must start
// from its own seed (see internal/memory's valueSeed — the memory
// fuzzer found a real state collision when value words and history
// chains shared KeySeed). Second, the per-word finalizer is a full
// avalanche mix rather than an FNV-style multiply: the words folded
// here often differ only in their lowest bits (relative register
// indices, 0/1 register contents), which a multiply alone disperses
// poorly; mix64 makes every input bit flip ~half the output bits,
// keeping residual collisions at the generic 2^-64.
func MixKey(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		h = mix64(h ^ w)
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Canonicalizer accumulates one state fingerprint: per-process
// component words plus optional global words. The zero value is
// ready to use; Reset recycles the buffers for the next state.
type Canonicalizer struct {
	global uint64
	nglob  int
	comps  []uint64
}

// Reset clears the accumulated state.
func (c *Canonicalizer) Reset() {
	c.global = keySeed
	c.nglob = 0
	c.comps = c.comps[:0]
}

// Global folds shared words not owned by any process (order matters).
func (c *Canonicalizer) Global(words ...uint64) {
	if c.nglob == 0 && c.global == 0 {
		c.global = keySeed
	}
	c.global = MixKey(c.global, words...)
	c.nglob += len(words)
}

// Proc adds one process's component word.
func (c *Canonicalizer) Proc(comp uint64) {
	c.comps = append(c.comps, comp)
}

// Key folds the accumulated state into a fingerprint, sorting the
// per-process components first: states that differ only by a
// relabelling of id-symmetric processes collapse to one key.
func (c *Canonicalizer) Key() StateKey {
	sortWords(c.comps)
	return c.fold()
}

// KeyOrdered folds without sorting: components keep their process
// positions, so no relabelling reduction is applied. For systems
// whose processes run different code, or whose aggregates distinguish
// processes, this is the sound choice.
func (c *Canonicalizer) KeyOrdered() StateKey {
	return c.fold()
}

func (c *Canonicalizer) fold() StateKey {
	h := uint64(keySeed)
	if c.nglob > 0 {
		h = MixKey(h, c.global)
	}
	h = MixKey(h, uint64(len(c.comps)))
	h = MixKey(h, c.comps...)
	return StateKey(h)
}

// sortWords sorts a small slice of words ascending (insertion sort:
// component counts are process counts, typically 2 or 3).
func sortWords(ws []uint64) {
	if len(ws) < 16 {
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && ws[j] < ws[j-1]; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
		return
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
}
