package sched

import "fmt"

// Explore enumerates every crash-free interleaving of a deterministic
// system and calls visit on each complete execution. Because processes are
// deterministic, the execution space is the tree of scheduler choices; the
// explorer walks it by replay DFS, re-running the system once per leaf
// with a forced prefix of choices.
//
// factory must build a fresh, deterministic instance of the system (fresh
// shared memory and process closures) on every call.
//
// Explore stops early and returns ErrExploreLimit if more than maxRuns
// executions are visited (maxRuns <= 0 means no limit). If visit returns
// false, exploration stops without error.
func Explore(factory func() []ProcFunc, maxSteps, maxRuns int, visit func(*Result) bool) (int, error) {
	runs := 0
	var dfs func(prefix []int) (bool, error)
	dfs = func(prefix []int) (bool, error) {
		if maxRuns > 0 && runs >= maxRuns {
			return false, ErrExploreLimit
		}
		sch := &Replay{Prefix: prefix}
		res, err := Run(Config{Scheduler: sch, MaxSteps: maxSteps}, factory())
		if err != nil {
			return false, err
		}
		runs++
		if !visit(res) {
			return false, nil
		}
		// Branch on every decision point after the forced prefix, deepest
		// first so that prefixes are extended before siblings (ordering is
		// irrelevant for coverage; this keeps the recursion simple).
		for i := len(res.Decisions) - 1; i >= len(prefix); i-- {
			chosen := res.Decisions[i].Pid
			for _, alt := range res.EnabledSets[i] {
				if alt <= chosen {
					continue
				}
				branch := make([]int, i+1)
				for j := 0; j < i; j++ {
					branch[j] = res.Decisions[j].Pid
				}
				branch[i] = alt
				if cont, err := dfs(branch); err != nil || !cont {
					return cont, err
				}
			}
		}
		return true, nil
	}
	_, err := dfs(nil)
	return runs, err
}

// ErrExploreLimit reports that Explore hit its maxRuns bound.
var ErrExploreLimit = fmt.Errorf("sched: exploration run limit reached")

// ExploreAll is Explore with visit always continuing and no run limit.
func ExploreAll(factory func() []ProcFunc, maxSteps int, visit func(*Result)) (int, error) {
	return Explore(factory, maxSteps, 0, func(r *Result) bool {
		visit(r)
		return true
	})
}
