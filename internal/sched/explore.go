package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Explore enumerates every crash-free interleaving of a deterministic
// system and calls visit on each complete execution. Because processes are
// deterministic, the execution space is the tree of scheduler choices; the
// explorer walks it by replay DFS, re-running the system once per leaf
// with a forced prefix of choices.
//
// factory must build a fresh, deterministic instance of the system (fresh
// shared memory and process closures) on every call.
//
// Explore stops early and returns ErrExploreLimit if more than maxRuns
// executions are visited (maxRuns <= 0 means no limit). If visit returns
// false, exploration stops without error.
func Explore(factory func() []ProcFunc, maxSteps, maxRuns int, visit func(*Result) bool) (int, error) {
	runs := 0
	var dfs func(prefix []int) (bool, error)
	dfs = func(prefix []int) (bool, error) {
		if maxRuns > 0 && runs >= maxRuns {
			return false, ErrExploreLimit
		}
		sch := &Replay{Prefix: prefix}
		res, err := Run(Config{Scheduler: sch, MaxSteps: maxSteps}, factory())
		if err != nil {
			return false, err
		}
		runs++
		if !visit(res) {
			return false, nil
		}
		cont, cerr := true, error(nil)
		expandBranches(res, len(prefix), func(branch []int) bool {
			cont, cerr = dfs(branch)
			return cont && cerr == nil
		})
		return cont, cerr
	}
	_, err := dfs(nil)
	return runs, err
}

// ErrExploreLimit reports that Explore hit its maxRuns bound.
var ErrExploreLimit = fmt.Errorf("sched: exploration run limit reached")

// ErrPrefixNotLive reports that a forced prefix handed to
// ExplorePrefixes is not a live path of the system's decision tree —
// some forced pid was not enabled at its turn, so Replay substituted
// another process and the run left the claimed subtree. Serving such
// a run would double-count executions, so it is an error instead.
var ErrPrefixNotLive = errors.New("sched: forced prefix is not a live path of the decision tree")

// expandBranches enumerates the child prefixes of a completed execution:
// one per scheduler branch not taken after the forced prefix, deepest
// decision point first (ordering is irrelevant for coverage). It stops
// early if emit returns false. The serial and parallel explorers share
// this rule — that is what makes their coverage identical.
func expandBranches(res *Result, prefixLen int, emit func([]int) bool) {
	expandBranchesAlloc(res, prefixLen, func(n int) []int { return make([]int, n) }, emit)
}

// expandBranchesAlloc is expandBranches with a caller-supplied buffer
// allocator, letting the frontier loop recycle spent prefix buffers
// instead of allocating one per branch.
func expandBranchesAlloc(res *Result, prefixLen int, alloc func(int) []int, emit func([]int) bool) {
	for i := len(res.Decisions) - 1; i >= prefixLen; i-- {
		chosen := res.Decisions[i].Pid
		for _, alt := range res.EnabledSets[i] {
			if alt <= chosen {
				continue
			}
			branch := alloc(i + 1)
			for j := 0; j < i; j++ {
				branch[j] = res.Decisions[j].Pid
			}
			branch[i] = alt
			if !emit(branch) {
				return
			}
		}
	}
}

// ExploreAll is Explore with visit always continuing and no run limit.
func ExploreAll(factory func() []ProcFunc, maxSteps int, visit func(*Result)) (int, error) {
	return Explore(factory, maxSteps, 0, func(r *Result) bool {
		visit(r)
		return true
	})
}

// Instance is one fresh system build for the parallel explorer: the
// process closures plus a completion callback receiving the run's Result.
// Done is always invoked under the explorer's lock, so its body may
// mutate shared state without further synchronization. The Result is
// pooled: the explorer reuses it for the worker's next replay as soon
// as Done returns, so Done must copy anything it wants to keep (values
// read out of Steps/Outs-style fields are fine; retaining the *Result
// or its slices is not).
type Instance struct {
	Procs []ProcFunc
	Done  func(*Result)
}

// DefaultExploreWorkers is the fan-out ExploreParallel uses when workers
// is zero or negative.
func DefaultExploreWorkers() int { return runtime.GOMAXPROCS(0) }

// ExploreParallel enumerates exactly the executions ExploreAll visits,
// fanning the replay DFS out over disjoint schedule prefixes with a
// bounded pool of worker goroutines. The frontier is a shared stack of
// forced prefixes: a worker pops a prefix, replays one execution under
// it, reports the result, and pushes one child prefix per untaken
// scheduler branch — the same branching rule as the serial DFS, so
// every interleaving is visited exactly once.
//
// factory is called once per execution, possibly from several
// goroutines concurrently, and must build a fully independent system
// (fresh shared memory and closures). Each instance's Done callback
// runs serially under a global lock, but in nondeterministic order:
// only order-insensitive aggregations produce deterministic results.
//
// On an execution error the explorer drains and returns the first
// error; visits already made are not undone. workers <= 0 means
// DefaultExploreWorkers.
func ExploreParallel(factory func() Instance, maxSteps, workers int) (int, error) {
	return ExplorePrefixes(factory, maxSteps, workers, [][]int{{}})
}

// ExplorePrefixes is ExploreParallel restricted to the subtrees under
// the given forced prefixes: it visits exactly the executions whose
// scheduler-decision sequence extends one of roots. With the single
// empty prefix it is ExploreParallel; with a PartitionRoots partition
// split across calls (or machines), the union of all visits is exactly
// the ExploreAll execution set, each execution visited once — the
// property the distributed sharding layers are built on.
//
// Roots must be live prefixes of the system's decision tree, none a
// strict prefix of another — exactly what PartitionRoots returns (any
// subset or regrouping of one partition qualifies). A root the
// scheduler cannot follow (a forced pid not enabled at its turn)
// fails the exploration with ErrPrefixNotLive rather than silently
// exploring a different subtree; overlap between roots remains the
// caller's contract. An empty roots slice explores nothing and
// returns 0.
func ExplorePrefixes(factory func() Instance, maxSteps, workers int, roots [][]int) (int, error) {
	if len(roots) == 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = DefaultExploreWorkers()
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier [][]int
		freeBufs [][]int // spent prefix buffers, recycled for branches (mu held)
		pending  int     // prefixes popped but not yet expanded, plus frontier
		runs     int
		firstErr error
	)
	// Copy the seed roots into explorer-owned buffers so every prefix
	// in the frontier — seed or expanded branch — can be recycled
	// without aliasing caller memory.
	for _, root := range roots {
		frontier = append(frontier, append(make([]int, 0, len(root)), root...))
	}
	pending = len(frontier)

	// takeBuf hands out a recycled prefix buffer of length n (mu held).
	// Children are longer than the parents they recycle, so undersized
	// buffers are dropped and the pool converges on tree-height sizes.
	takeBuf := func(n int) []int {
		if k := len(freeBufs); k > 0 {
			b := freeBufs[k-1]
			freeBufs = freeBufs[:k-1]
			if cap(b) >= n {
				return b[:n]
			}
		}
		return make([]int, n)
	}

	worker := func() {
		// Per-worker pooled replay state: one Result (decision and
		// enabled-set buffers), one runner (handshake channels), one
		// Replay scheduler, reused across every run this worker does.
		res := &Result{}
		sch := &Replay{}
		var rn *runner
		for {
			mu.Lock()
			for len(frontier) == 0 && pending > 0 && firstErr == nil {
				cond.Wait()
			}
			if pending == 0 || firstErr != nil {
				mu.Unlock()
				return
			}
			prefix := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			mu.Unlock()

			inst := factory()
			if rn == nil || rn.n != len(inst.Procs) {
				rn = newRunner(len(inst.Procs))
			}
			sch.Prefix, sch.pos = prefix, 0
			_, err := runInto(Config{Scheduler: sch, MaxSteps: maxSteps}, inst.Procs, res, rn)
			if err == nil && !replayedExactly(res, prefix) {
				// Only seed roots can fail this: child prefixes are
				// observed paths of the deterministic system. A seed
				// that Replay could not follow is a caller mistake
				// (or a hostile ?prefixes= request upstream).
				err = fmt.Errorf("%w: %v", ErrPrefixNotLive, prefix)
			}

			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				pending--
				cond.Broadcast()
				mu.Unlock()
				return
			}
			runs++
			if inst.Done != nil {
				inst.Done(res)
			}
			expandBranchesAlloc(res, len(prefix), takeBuf, func(branch []int) bool {
				frontier = append(frontier, branch)
				pending++
				return true
			})
			freeBufs = append(freeBufs, prefix)
			pending--
			cond.Broadcast()
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	return runs, firstErr
}

// replayedExactly reports whether an execution actually took every
// step of its forced prefix — the witness that the prefix is a live
// path and the run stayed inside the claimed subtree.
func replayedExactly(res *Result, prefix []int) bool {
	if len(res.Decisions) < len(prefix) {
		return false
	}
	for i, pid := range prefix {
		if res.Decisions[i].Pid != pid {
			return false
		}
	}
	return true
}

// PartitionRoots enumerates the live prefixes of the decision tree at
// the given cut depth: every prefix of exactly depth scheduler choices
// that some execution realizes, plus the full decision sequence of any
// execution that terminates in fewer than depth choices. The returned
// roots are pairwise prefix-free and their subtrees partition the
// ExploreAll execution set, so a coordinator can carve them into
// disjoint ranges, hand each range to ExplorePrefixes on a different
// worker, and know the union of visits is the whole space.
//
// Roots are returned in deterministic DFS order (enabled sets are
// sorted), so every caller carves the same tree identically. depth <=
// 0 returns the single empty prefix (the whole tree as one range); a
// depth beyond the tree height returns one root per execution. The
// cost is one replay run per interior node above the cut — for a
// shallow cut, a vanishing fraction of the exploration it partitions.
func PartitionRoots(factory func() []ProcFunc, maxSteps, depth int) ([][]int, error) {
	if depth <= 0 {
		return [][]int{{}}, nil
	}
	var roots [][]int
	var descend func(prefix []int, res *Result) error
	descend = func(prefix []int, res *Result) error {
		if len(prefix) >= depth || len(res.Decisions) <= len(prefix) {
			// At the cut, or the execution ends here: this prefix's
			// subtree is one partition cell.
			roots = append(roots, prefix)
			return nil
		}
		for _, pid := range res.EnabledSets[len(prefix)] {
			child := append(prefix[:len(prefix):len(prefix)], pid)
			cres := res
			if pid != res.Decisions[len(prefix)].Pid {
				// Off the observed path: replay the sibling branch.
				r, err := Run(Config{Scheduler: &Replay{Prefix: child}, MaxSteps: maxSteps}, factory())
				if err != nil {
					return err
				}
				cres = r
			}
			if err := descend(child, cres); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(Config{Scheduler: &Replay{}, MaxSteps: maxSteps}, factory())
	if err != nil {
		return nil, err
	}
	if err := descend(nil, res); err != nil {
		return nil, err
	}
	return roots, nil
}
