package sched

import "math/rand"

// Lowest always grants the lowest-numbered enabled process. It is the
// canonical deterministic policy and the default continuation used by the
// exhaustive explorer.
type Lowest struct{}

// Next implements Scheduler.
func (Lowest) Next(enabled []int) Decision { return Decision{Pid: enabled[0]} }

// RoundRobin cycles through process ids, granting the next enabled process
// after the previously granted one. It is a fair scheduler.
type RoundRobin struct {
	last int // last granted pid; zero value starts at process 0
	init bool
}

// Next implements Scheduler.
func (s *RoundRobin) Next(enabled []int) Decision {
	if !s.init {
		s.init = true
		s.last = enabled[0]
		return Decision{Pid: s.last}
	}
	for _, pid := range enabled {
		if pid > s.last {
			s.last = pid
			return Decision{Pid: pid}
		}
	}
	s.last = enabled[0]
	return Decision{Pid: s.last}
}

// Random grants a uniformly random enabled process. It is fair with
// probability 1. The seed makes runs reproducible.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *Random) Next(enabled []int) Decision {
	return Decision{Pid: enabled[s.rng.Intn(len(enabled))]}
}

// Solo runs process Pid alone while it is enabled, then halts the
// execution (everyone else is considered crashed from the start). It
// realizes the paper's solo executions.
type Solo struct {
	// Pid is the process that runs solo.
	Pid int
}

// Next implements Scheduler.
func (s Solo) Next(enabled []int) Decision {
	for _, pid := range enabled {
		if pid == s.Pid {
			return Decision{Pid: pid}
		}
	}
	return Decision{Pid: Halt}
}

// Sequential runs the processes one after the other in the given order:
// each process runs to completion (or until it blocks forever) before the
// next one starts. It realizes the paper's "p3 starts after p1 and p2 have
// terminated" scenarios.
type Sequential struct {
	// Order lists the pids in activation order. Processes not listed are
	// never scheduled (crashed at start).
	Order []int
}

// Next implements Scheduler.
func (s Sequential) Next(enabled []int) Decision {
	for _, want := range s.Order {
		for _, pid := range enabled {
			if pid == want {
				return Decision{Pid: pid}
			}
		}
	}
	return Decision{Pid: Halt}
}

// CrashAt wraps a scheduler and crashes given processes when their step
// counter reaches a threshold: process pid is crashed just before taking
// its Steps[pid]-th step (0 = crashed initially, before any step).
type CrashAt struct {
	// Inner chooses steps among processes not yet crashed.
	Inner Scheduler
	// Steps maps pid -> step index at which to crash it.
	Steps map[int]int

	taken   map[int]int
	crashed map[int]bool
}

// NewCrashAt returns a crash-injecting wrapper around inner.
func NewCrashAt(inner Scheduler, steps map[int]int) *CrashAt {
	return &CrashAt{
		Inner:   inner,
		Steps:   steps,
		taken:   make(map[int]int),
		crashed: make(map[int]bool),
	}
}

// Next implements Scheduler.
func (s *CrashAt) Next(enabled []int) Decision {
	// Crash any enabled process that has reached its threshold.
	for _, pid := range enabled {
		limit, ok := s.Steps[pid]
		if ok && !s.crashed[pid] && s.taken[pid] >= limit {
			s.crashed[pid] = true
			return Decision{Pid: pid, Crash: true}
		}
	}
	d := s.Inner.Next(enabled)
	if d.Pid >= 0 && !d.Crash {
		s.taken[d.Pid]++
	}
	return d
}

// Replay forces a prefix of pid choices, then delegates to Fallback
// (Lowest if nil). If a forced pid is not enabled, the lowest enabled
// process is chosen instead (the explorer never triggers this: it replays
// prefixes observed on the same deterministic system).
type Replay struct {
	// Prefix is the forced sequence of pids.
	Prefix []int
	// Fallback continues after the prefix; Lowest{} if nil.
	Fallback Scheduler

	pos int
}

// Next implements Scheduler.
func (s *Replay) Next(enabled []int) Decision {
	if s.pos < len(s.Prefix) {
		want := s.Prefix[s.pos]
		s.pos++
		if contains(enabled, want) {
			return Decision{Pid: want}
		}
		return Decision{Pid: enabled[0]}
	}
	if s.Fallback == nil {
		return Decision{Pid: enabled[0]}
	}
	return s.Fallback.Next(enabled)
}
