package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file parallelizes the memoized explorer (explore_memo.go):
// worker goroutines fan out over disjoint schedule-prefix ranges from
// the PartitionRoots carve, all sharing one concurrent memo table so a
// canonical state explored under one range is reused — not re-explored
// — under every other. The table is lock-striped (memoStripes shards,
// hash-distributed by key) and each entry has once-semantics via a
// claim-then-publish protocol:
//
//   - The first worker to probe a (state, depth) key *claims* it: an
//     unpublished slot with an open done channel is inserted, and the
//     claimer explores the subtree itself.
//   - A later prober finds the slot and *awaits* its done channel; on
//     publish it adopts the entry exactly as a serial memo hit would.
//   - The claimer publishes the completed entry (contribution + leaf
//     count) by closing the channel, on its bottom-up walk.
//
// Deadlock-freedom: claims are made at strictly increasing depths
// along a replay, and a frame only awaits keys at depths strictly
// *above* every claim it still holds unpublished (its own claims sit
// at shallower depths of the same path; sibling descents claim only
// deeper keys). Every await edge therefore strictly increases in
// depth, so the waits-for graph is acyclic. Terminal keys are never
// claimed-in-progress — they are published atomically on insert —
// and an exploration error closes the abort channel, waking every
// waiter.
//
// Determinism: a published entry is a function of its (canonical
// state, depth) key alone, whichever worker computed it, and Merge is
// pure and order-insensitive up to the final aggregate's equality
// (the MemoOptions contract). Per-range results are merged in root
// index order, so the final aggregate — and the bytes rendered from
// it — are identical to the serial memo's and to the exhaustive
// explorer's, even though halt points and the visited/pruned/shared
// counters are timing-dependent. Executions is exact: every leaf is
// accounted once, whichever range reached its subtree first.

// memoStripes is the number of lock stripes in the shared memo table.
// A power of two well above any plausible worker count, so stripes
// rarely contend.
const memoStripes = 64

// memoCarve* bound the automatic prefix carve of ExploreMemoParallel:
// the cut depth is deepened until the carve yields at least
// memoCarveFactor roots per worker (so range sizes average out) or
// the depth cap is hit.
const (
	memoCarveFactor   = 4
	memoCarveDepthCap = 8
)

// errMemoAborted is the internal sentinel a worker returns when it was
// woken by the abort channel: the real error is already recorded, this
// frame just unwinds.
var errMemoAborted = errors.New("sched: memo exploration aborted")

// memoClosed is a pre-closed channel for entries published on insert
// (terminal states), so awaiting them never blocks.
var memoClosed = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// memoSlot is one entry of the shared table. entry is written exactly
// once, before done is closed; readers load it only after <-done, so
// the channel close is the publication barrier.
type memoSlot struct {
	done  chan struct{}
	owner int // root-range index of the claiming worker
	entry memoEntry
}

// memoStripe is one lock stripe of the shared table.
type memoStripe struct {
	mu sync.Mutex
	m  map[memoKey]*memoSlot
}

// memoTable is the sharded concurrent memo: memoStripes independent
// map+mutex stripes, plus the abort channel that wakes awaiting
// workers when any range fails.
type memoTable struct {
	stripes [memoStripes]memoStripe
	abort   chan struct{}
}

func newMemoTable() *memoTable {
	t := &memoTable{abort: make(chan struct{})}
	for i := range t.stripes {
		t.stripes[i].m = make(map[memoKey]*memoSlot)
	}
	return t
}

// stripe picks the lock stripe for a key. StateKey is already
// avalanche-mixed (MixKey), so folding in the depth with an odd
// multiplier distributes (state, depth) pairs evenly.
func (t *memoTable) stripe(k memoKey) *memoStripe {
	h := uint64(k.state) ^ uint64(k.depth)*0x9e3779b97f4a7c15
	return &t.stripes[h&(memoStripes-1)]
}

// lookupOrClaim returns the key's slot and whether this caller claimed
// it. A claimed slot MUST eventually be published (or the exploration
// aborted) — awaiting workers block on it.
func (t *memoTable) lookupOrClaim(k memoKey, owner int) (slot *memoSlot, claimed bool) {
	s := t.stripe(k)
	s.mu.Lock()
	if slot = s.m[k]; slot != nil {
		s.mu.Unlock()
		return slot, false
	}
	slot = &memoSlot{done: make(chan struct{}), owner: owner}
	s.m[k] = slot
	s.mu.Unlock()
	return slot, true
}

// publish completes a claimed slot: entry becomes visible to every
// awaiter, exactly once.
func (t *memoTable) publish(slot *memoSlot, e memoEntry) {
	slot.entry = e
	close(slot.done)
}

// putTerminal stores a completed leaf's entry if the key is absent,
// already published (terminal keys have no subtree to await). Reports
// whether the insert happened.
func (t *memoTable) putTerminal(k memoKey, e memoEntry, owner int) bool {
	s := t.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = &memoSlot{done: memoClosed, owner: owner, entry: e}
	return true
}

// await blocks until the slot publishes or the exploration aborts.
// The second return is false only on abort.
func (t *memoTable) await(slot *memoSlot) (memoEntry, bool) {
	select {
	case <-slot.done:
		return slot.entry, true
	case <-t.abort:
		// The slot may have published concurrently with the abort;
		// prefer the real entry when both are ready.
		select {
		case <-slot.done:
			return slot.entry, true
		default:
			return memoEntry{}, false
		}
	}
}

// memoParProbe is the parallel analogue of memoProbe: it forces the
// prefix, claims every new (state, depth) key on the path, and halts
// on a hit — awaiting the entry if another worker is still exploring
// that subtree.
type memoParProbe struct {
	replay  Replay
	state   func() StateKey
	table   *memoTable
	owner   int
	from    int
	depth   int
	keys    []StateKey  // keys[d-from] is the state before decision d
	claimed []*memoSlot // claimed[d-from] is its unpublished slot
	hit     bool
	shared  bool // the hit entry was published by another range
	entry   memoEntry
	aborted bool
}

func (m *memoParProbe) Next(enabled []int) Decision {
	if m.depth >= m.from {
		k := m.state()
		slot, claimed := m.table.lookupOrClaim(memoKey{state: k, depth: m.depth}, m.owner)
		if !claimed {
			entry, ok := m.table.await(slot)
			if !ok {
				m.aborted = true
				return Decision{Pid: Halt}
			}
			m.hit = true
			m.shared = slot.owner != m.owner
			m.entry = entry
			return Decision{Pid: Halt}
		}
		m.keys = append(m.keys, k)
		m.claimed = append(m.claimed, slot)
	}
	m.depth++
	return m.replay.Next(enabled)
}

// memoWorkerPools is one worker's free lists: the serial explorer's
// Result/runner recycling plus prefix buffers, per worker so the hot
// replay path never crosses a lock.
type memoWorkerPools struct {
	freeRes []*Result
	freeRun []*runner
	freeBuf [][]int
}

func (w *memoWorkerPools) getRes() *Result {
	if k := len(w.freeRes); k > 0 {
		r := w.freeRes[k-1]
		w.freeRes = w.freeRes[:k-1]
		return r
	}
	return &Result{}
}

func (w *memoWorkerPools) getRun(n int) *runner {
	if k := len(w.freeRun); k > 0 {
		r := w.freeRun[k-1]
		w.freeRun = w.freeRun[:k-1]
		if r.n == n {
			return r
		}
	}
	return newRunner(n)
}

func (w *memoWorkerPools) getBuf(n int) []int {
	if k := len(w.freeBuf); k > 0 {
		b := w.freeBuf[k-1]
		w.freeBuf = w.freeBuf[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]int, n)
}

func (w *memoWorkerPools) putBuf(b []int) {
	w.freeBuf = append(w.freeBuf, b)
}

// memoParRun is one parallel exploration's shared state.
type memoParRun struct {
	factory func() MemoInstance
	opts    MemoOptions
	table   *memoTable

	replays, visited, pruned, shared atomic.Int64

	errMu    sync.Mutex
	firstErr error
}

// fail records the first error and closes the abort channel, waking
// every awaiting worker. Later errors (including the abort unwinds
// the close itself triggers) are dropped.
func (e *memoParRun) fail(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
		close(e.table.abort)
	}
	e.errMu.Unlock()
}

func (e *memoParRun) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

func (e *memoParRun) aborted() bool {
	select {
	case <-e.table.abort:
		return true
	default:
		return false
	}
}

// mergeInto is the serial explorer's nil-tolerant merge; a missing
// Merge on real contributions aborts the exploration.
func (e *memoParRun) mergeInto(into, from any) any {
	switch {
	case from == nil:
		return into
	case into == nil:
		return from
	case e.opts.Merge == nil:
		e.fail(errors.New("sched: MemoOptions.Merge is required to combine non-nil Leaf contributions"))
		return into
	default:
		return e.opts.Merge(into, from)
	}
}

// dfs is the serial explorer's bottom-up walk against the shared
// table. Every claim this frame makes is published before it returns
// nil error; on error the abort channel releases any awaiters.
func (e *memoParRun) dfs(w *memoWorkerPools, owner int, prefix []int, seed bool) (any, int, error) {
	inst := e.factory()
	if inst.State == nil {
		return nil, 0, errMemoState
	}
	probe := &memoParProbe{
		replay: Replay{Prefix: prefix},
		state:  inst.State,
		table:  e.table,
		owner:  owner,
		from:   len(prefix),
	}
	res := w.getRes()
	rn := w.getRun(len(inst.Procs))
	if _, err := runInto(Config{Scheduler: probe, MaxSteps: e.opts.MaxSteps}, inst.Procs, res, rn); err != nil {
		return nil, 0, err
	}
	e.replays.Add(1)
	if probe.aborted {
		return nil, 0, errMemoAborted
	}
	if seed && !replayedExactly(res, prefix) {
		return nil, 0, fmt.Errorf("%w: %v", ErrPrefixNotLive, prefix)
	}

	top := len(res.Decisions)
	var contrib any
	var leaves int
	if probe.hit {
		e.pruned.Add(1)
		if probe.shared {
			e.shared.Add(1)
		}
		contrib, leaves = probe.entry.contrib, probe.entry.leaves
	} else {
		if inst.Leaf != nil {
			contrib = inst.Leaf(res)
		}
		leaves = 1
		if e.table.putTerminal(memoKey{state: inst.State(), depth: top}, memoEntry{contrib: contrib, leaves: leaves}, owner) {
			e.visited.Add(1)
		}
	}

	for i := top - 1; i >= len(prefix); i-- {
		chosen := res.Decisions[i].Pid
		for _, alt := range res.EnabledSets[i] {
			if alt <= chosen {
				continue
			}
			branch := w.getBuf(i + 1)
			for j := 0; j < i; j++ {
				branch[j] = res.Decisions[j].Pid
			}
			branch[i] = alt
			sub, subLeaves, err := e.dfs(w, owner, branch, false)
			w.putBuf(branch)
			if err != nil {
				return nil, 0, err
			}
			contrib = e.mergeInto(contrib, sub)
			leaves += subLeaves
		}
		e.table.publish(probe.claimed[i-len(prefix)], memoEntry{contrib: contrib, leaves: leaves})
		e.visited.Add(1)
	}

	w.freeRes = append(w.freeRes, res)
	w.freeRun = append(w.freeRun, rn)
	return contrib, leaves, nil
}

// ExploreMemoParallel is ExploreMemo fanned out over workers
// goroutines: the schedule tree is carved into disjoint prefix ranges
// (PartitionRoots, deepening the cut until there are enough roots to
// balance), and the ranges are explored concurrently against one
// shared memo table. workers <= 0 means DefaultExploreWorkers;
// workers == 1 is exactly the serial ExploreMemo. The aggregate,
// Executions, and the resulting output bytes are identical to the
// serial memo's and to the exhaustive explorer's; Replays,
// StatesVisited, StatesPruned, and StatesShared depend on timing.
func ExploreMemoParallel(factory func() MemoInstance, opts MemoOptions, workers int) (any, MemoStats, error) {
	if workers <= 0 {
		workers = DefaultExploreWorkers()
	}
	if workers == 1 {
		return ExploreMemo(factory, opts)
	}
	procs := func() []ProcFunc { return factory().Procs }
	roots := [][]int{{}}
	for depth := 1; len(roots) < memoCarveFactor*workers && depth <= memoCarveDepthCap; depth++ {
		r, err := PartitionRoots(procs, opts.MaxSteps, depth)
		if err != nil {
			return nil, MemoStats{}, err
		}
		if len(r) == len(roots) && depth > 1 {
			// Deepening stopped splitting: the tree is exhausted.
			break
		}
		roots = r
	}
	return ExploreMemoParallelPrefixes(factory, opts, workers, roots)
}

// ExploreMemoParallelPrefixes is ExploreMemoPrefixes across workers
// goroutines sharing one memo table. Roots follow the
// ExploreMemoPrefixes contract (live, pairwise prefix-free); ranges
// are handed to workers dynamically and their contributions merged in
// root index order, so the aggregate is deterministic — byte-identical
// to the serial memo over the same roots — while the visited/pruned/
// shared counters remain timing-dependent. workers is clamped to
// len(roots); workers <= 1 (after clamping) runs serially.
func ExploreMemoParallelPrefixes(factory func() MemoInstance, opts MemoOptions, workers int, roots [][]int) (any, MemoStats, error) {
	if workers <= 0 {
		workers = DefaultExploreWorkers()
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers <= 1 {
		return ExploreMemoPrefixes(factory, opts, roots)
	}

	e := &memoParRun{factory: factory, opts: opts, table: newMemoTable()}
	type rangeOut struct {
		contrib any
		leaves  int
	}
	outs := make([]rangeOut, len(roots))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pools := &memoWorkerPools{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(roots) || e.aborted() {
					return
				}
				contrib, leaves, err := e.dfs(pools, i, roots[i], true)
				if err != nil {
					e.fail(err)
					return
				}
				outs[i] = rangeOut{contrib: contrib, leaves: leaves}
			}
		}()
	}
	wg.Wait()

	stats := MemoStats{
		Replays:       int(e.replays.Load()),
		StatesVisited: int(e.visited.Load()),
		StatesPruned:  int(e.pruned.Load()),
		StatesShared:  int(e.shared.Load()),
		Workers:       workers,
	}
	if err := e.err(); err != nil {
		return nil, stats, err
	}
	var total any
	for i := range outs {
		total = e.mergeInto(total, outs[i].contrib)
		stats.Executions += outs[i].leaves
	}
	if err := e.err(); err != nil {
		return nil, stats, err
	}
	return total, stats, nil
}
