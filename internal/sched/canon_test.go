package sched

import "testing"

// TestCanonicalizerIdempotent: folding the same components yields the
// same key, call after call and instance after instance.
func TestCanonicalizerIdempotent(t *testing.T) {
	build := func() StateKey {
		var c Canonicalizer
		c.Global(7, 9)
		c.Proc(101)
		c.Proc(55)
		c.Proc(MixKey(KeySeed(), 3))
		return c.Key()
	}
	k1, k2 := build(), build()
	if k1 != k2 {
		t.Fatalf("same state, different keys: %x vs %x", k1, k2)
	}
	// Reuse after Reset matches a fresh instance.
	var c Canonicalizer
	c.Proc(1)
	c.Key()
	c.Reset()
	c.Global(7, 9)
	c.Proc(101)
	c.Proc(55)
	c.Proc(MixKey(KeySeed(), 3))
	if got := c.Key(); got != k1 {
		t.Fatalf("reused canonicalizer key %x, fresh %x", got, k1)
	}
}

// TestCanonicalizerRelabellingInvariance: Key is invariant under any
// permutation of the per-process components — the symmetry reduction —
// while KeyOrdered distinguishes them.
func TestCanonicalizerRelabellingInvariance(t *testing.T) {
	comps := []uint64{42, 7, 42, 99}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	keys := make([]StateKey, len(perms))
	ordered := make([]StateKey, len(perms))
	for pi, perm := range perms {
		var c, co Canonicalizer
		for _, i := range perm {
			c.Proc(comps[i])
			co.Proc(comps[i])
		}
		keys[pi] = c.Key()
		ordered[pi] = co.KeyOrdered()
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("Key not permutation-invariant: %v", keys)
		}
	}
	if ordered[0] == ordered[1] {
		t.Fatalf("KeyOrdered collapsed a reordering: %x", ordered[0])
	}
}

// TestCanonicalizerDistinguishes: states differing in component
// values, component count, or global words get distinct keys.
func TestCanonicalizerDistinguishes(t *testing.T) {
	key := func(global []uint64, comps ...uint64) StateKey {
		var c Canonicalizer
		c.Global(global...)
		for _, w := range comps {
			c.Proc(w)
		}
		return c.Key()
	}
	a := key(nil, 1, 2)
	for name, b := range map[string]StateKey{
		"component value": key(nil, 1, 3),
		"component count": key(nil, 1, 2, 2),
		"global word":     key([]uint64{5}, 1, 2),
	} {
		if a == b {
			t.Errorf("%s not distinguished: both %x", name, a)
		}
	}
	// Empty-global and no-global fold identically only when no Global
	// words were added at all.
	if key(nil, 1, 2) != a {
		t.Error("no-global key unstable")
	}
}

// TestCanonicalizerManyComponents exercises the sort fallback past the
// insertion-sort cutoff.
func TestCanonicalizerManyComponents(t *testing.T) {
	var fwd, rev Canonicalizer
	for i := 0; i < 40; i++ {
		fwd.Proc(uint64(i * 31))
	}
	for i := 39; i >= 0; i-- {
		rev.Proc(uint64(i * 31))
	}
	if fwd.Key() != rev.Key() {
		t.Fatal("large component sets not permutation-invariant")
	}
}

// TestMixKeyDisperses pins the word-folding basics: order sensitivity
// and no trivial fixed points.
func TestMixKeyDisperses(t *testing.T) {
	if MixKey(KeySeed(), 1, 2) == MixKey(KeySeed(), 2, 1) {
		t.Fatal("MixKey is order-insensitive")
	}
	if MixKey(KeySeed(), 0) == KeySeed() {
		t.Fatal("zero word is a fixed point")
	}
	if MixKey(KeySeed()) != KeySeed() {
		t.Fatal("empty fold must be identity")
	}
}
