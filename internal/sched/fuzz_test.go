package sched_test

// FuzzMemoParallelDeterminism: random small step systems explored at
// random worker counts must reproduce the serial memo's aggregate
// byte-for-byte and conserve the exhaustive execution count, with the
// accounting identities the counters promise. This is the fuzz half
// of the parallel-memo differential layer: the structured tests pin a
// fixed grid, the fuzzer walks the (system, workers, carve) space.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/sched"
	"repro/internal/sched/schedtest"
)

// countsFingerprint renders a Counts multiset in sorted order — equal
// strings iff equal aggregates, the byte-identity the experiment
// tables inherit.
func countsFingerprint(agg any) string {
	c := schedtest.AsCounts(agg)
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, c[k])
	}
	return out
}

func FuzzMemoParallelDeterminism(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(0), uint8(2), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(8), uint8(2))
	f.Add(uint8(3), uint8(2), uint8(2), uint8(4), uint8(0))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, t0, t1, t2, workers, depth uint8) {
		// A 2- or 3-process step system with 1..3 steps per process:
		// small enough to explore exhaustively every iteration, branchy
		// enough to exercise claim/publish and cross-range sharing.
		totals := []int{1 + int(t0)%3, 1 + int(t1)%3}
		if t2%2 == 1 {
			totals = append(totals, 1+int(t2)%3)
		}
		w := 1 + int(workers)%8
		factory := func() []sched.ProcFunc { return newAsymSys(totals).procs() }
		memo := func() sched.MemoInstance {
			s := newAsymSys(totals)
			return sched.MemoInstance{Procs: s.procs(), State: s.state, Leaf: schedtest.Leaf(s.leafFP)}
		}

		runs, err := sched.ExploreAll(factory, 0, func(*sched.Result) {})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := sched.ExploreMemo(memo, sched.MemoOptions{Merge: schedtest.Merge})
		if err != nil {
			t.Fatal(err)
		}
		wantFP := countsFingerprint(want)

		check := func(label string, agg any, stats sched.MemoStats) {
			t.Helper()
			if got := countsFingerprint(agg); got != wantFP {
				t.Fatalf("%s: aggregate diverged from serial memo:\n got %s\nwant %s", label, got, wantFP)
			}
			if stats.Executions != runs {
				t.Fatalf("%s: %d executions accounted, exhaustive ran %d", label, stats.Executions, runs)
			}
			// Every replay halts on a memo hit or explores a distinct
			// execution, so replays − pruned can never exceed the runs.
			if stats.Replays-stats.StatesPruned > runs || stats.Replays < 1 {
				t.Fatalf("%s: replay accounting broken: %+v for %d runs", label, stats, runs)
			}
			if stats.StatesShared > stats.StatesPruned {
				t.Fatalf("%s: shared %d exceeds pruned %d", label, stats.StatesShared, stats.StatesPruned)
			}
			if stats.StatesVisited < 1 {
				t.Fatalf("%s: no states stored: %+v", label, stats)
			}
		}

		agg, stats, err := sched.ExploreMemoParallel(memo, sched.MemoOptions{Merge: schedtest.Merge}, w)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("auto-carve workers=%d", w), agg, stats)

		roots, err := sched.PartitionRoots(factory, 0, int(depth)%4)
		if err != nil {
			t.Fatal(err)
		}
		agg, stats, err = sched.ExploreMemoParallelPrefixes(memo, sched.MemoOptions{Merge: schedtest.Merge}, w, roots)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("depth-%d carve workers=%d", int(depth)%4, w), agg, stats)
	})
}
