package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stepSystem builds a deterministic n-process system where process i
// takes steps[i] plain steps and records the global grant order into
// trace (appended under the explorer's Done lock by the caller). The
// decision tree is the full interleaving tree of the step counts —
// branchy enough to exercise every partition shape.
func stepSystem(steps []int) []ProcFunc {
	procs := make([]ProcFunc, len(steps))
	for i, k := range steps {
		k := k
		procs[i] = func(p *Proc) error {
			for s := 0; s < k; s++ {
				p.Step()
			}
			return nil
		}
	}
	return procs
}

// fingerprint renders an execution's decision sequence — the identity
// of one interleaving on the deterministic system.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "%d.", d.Pid)
	}
	return b.String()
}

// collectAll runs the serial exhaustive explorer and returns the
// fingerprint multiset (as a sorted slice) of every execution.
func collectAll(t *testing.T, steps []int) []string {
	t.Helper()
	var fps []string
	n, err := ExploreAll(func() []ProcFunc { return stepSystem(steps) }, 0, func(r *Result) {
		fps = append(fps, fingerprint(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(fps) {
		t.Fatalf("ExploreAll reported %d runs, visited %d", n, len(fps))
	}
	sort.Strings(fps)
	return fps
}

// collectPrefixes runs ExplorePrefixes over the given roots and
// returns the sorted fingerprint multiset.
func collectPrefixes(t *testing.T, steps []int, workers int, roots [][]int) []string {
	t.Helper()
	var (
		mu  sync.Mutex
		fps []string
	)
	factory := func() Instance {
		return Instance{
			Procs: stepSystem(steps),
			Done: func(r *Result) {
				mu.Lock()
				fps = append(fps, fingerprint(r))
				mu.Unlock()
			},
		}
	}
	n, err := ExplorePrefixes(factory, 0, workers, roots)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(fps) {
		t.Fatalf("ExplorePrefixes reported %d runs, visited %d", n, len(fps))
	}
	sort.Strings(fps)
	return fps
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPartitionUnionEqualsExploreAll is the differential property the
// distributed sharding layers rest on: for every cut depth — including
// the degenerate depth 0 (one root, the whole tree) and depths beyond
// the tree height (one root per execution) — the union of
// ExplorePrefixes over the PartitionRoots partition visits exactly the
// ExploreAll execution set, execution count and fingerprint multiset
// alike. Each root is also explored as its own one-element range, so
// any regrouping of the partition into ranges covers the same set.
func TestPartitionUnionEqualsExploreAll(t *testing.T) {
	for _, steps := range [][]int{{3, 3}, {2, 2, 2}} {
		steps := steps
		want := collectAll(t, steps)
		height := 0
		for _, s := range steps {
			height += s
		}
		for depth := 0; depth <= height+2; depth++ {
			roots, err := PartitionRoots(func() []ProcFunc { return stepSystem(steps) }, 0, depth)
			if err != nil {
				t.Fatal(err)
			}
			// Roots must be pairwise prefix-free: disjoint subtrees.
			for i := range roots {
				for k := i + 1; k < len(roots); k++ {
					if isPrefix(roots[i], roots[k]) || isPrefix(roots[k], roots[i]) {
						t.Fatalf("steps=%v depth=%d: roots %v and %v overlap", steps, depth, roots[i], roots[k])
					}
				}
			}
			// The whole partition in one call...
			got := collectPrefixes(t, steps, 4, roots)
			if !equalStrings(got, want) {
				t.Fatalf("steps=%v depth=%d: partition visits %d executions, want %d",
					steps, depth, len(got), len(want))
			}
			// ...and as single-root ranges whose union is the space —
			// the sharded shape, one call per range.
			var union []string
			for _, root := range roots {
				union = append(union, collectPrefixes(t, steps, 2, [][]int{root})...)
			}
			sort.Strings(union)
			if !equalStrings(union, want) {
				t.Fatalf("steps=%v depth=%d: single-root union visits %d executions, want %d",
					steps, depth, len(union), len(want))
			}
		}
	}
}

func isPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExplorePrefixesRejectsDeadPrefix: a forced prefix the scheduler
// cannot follow (a pid never enabled, or a prefix longer than its
// execution) must fail with ErrPrefixNotLive, never silently explore
// the substituted subtree.
func TestExplorePrefixesRejectsDeadPrefix(t *testing.T) {
	factory := func() Instance {
		return Instance{Procs: stepSystem([]int{1, 1})}
	}
	for _, root := range [][]int{
		{5},          // pid 5 does not exist
		{0, 0, 0, 0}, // longer than any execution
	} {
		_, err := ExplorePrefixes(factory, 0, 2, [][]int{root})
		if !errors.Is(err, ErrPrefixNotLive) {
			t.Errorf("root %v: err = %v, want ErrPrefixNotLive", root, err)
		}
	}
	// And a live prefix still explores cleanly.
	if _, err := ExplorePrefixes(factory, 0, 2, [][]int{{1}}); err != nil {
		t.Errorf("live root: %v", err)
	}
}

// TestExplorePrefixesEmptyRoots pins the no-op contract.
func TestExplorePrefixesEmptyRoots(t *testing.T) {
	n, err := ExplorePrefixes(func() Instance {
		t.Fatal("factory called with no roots")
		return Instance{}
	}, 0, 2, nil)
	if err != nil || n != 0 {
		t.Fatalf("ExplorePrefixes(nil roots) = %d, %v; want 0, nil", n, err)
	}
}

// TestPartitionRootsDepthZero pins the degenerate whole-tree range.
func TestPartitionRootsDepthZero(t *testing.T) {
	roots, err := PartitionRoots(func() []ProcFunc { return stepSystem([]int{1, 1}) }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || len(roots[0]) != 0 {
		t.Fatalf("depth-0 roots = %v, want the single empty prefix", roots)
	}
}

// TestPartitionRootsDeterministic: two enumerations of the same system
// carve identical ranges — the property that lets a coordinator and a
// worker agree on the partition without exchanging it.
func TestPartitionRootsDeterministic(t *testing.T) {
	factory := func() []ProcFunc { return stepSystem([]int{2, 3}) }
	a, err := PartitionRoots(factory, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionRoots(factory, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("partitions differ:\n%v\n%v", a, b)
	}
	if len(a) < 2 {
		t.Fatalf("depth-3 partition of a branchy tree has %d roots, want several", len(a))
	}
}
