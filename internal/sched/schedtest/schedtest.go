// Package schedtest provides the shared vocabulary of the memoized-vs-
// exhaustive differential test suites (sched, agreement, task): a
// multiset of outcome fingerprints used as the exploration aggregate
// on both sides of each comparison.
//
// The exhaustive side visits every leaf and counts its fingerprint;
// the memoized side produces the same Counts through Leaf/Merge
// contributions, reusing memoized subtree counts instead of
// re-visiting. The two multisets — and the execution totals — must be
// identical. Fingerprints must be determined by the leaf's canonical
// state and invariant under process relabelling (sorted outputs,
// sorted per-process aggregates), never raw decision sequences: a
// pruned subtree's leaves are reached through different decision
// sequences than the memoized twin that stands in for them.
package schedtest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// Counts is a multiset of outcome fingerprints: the differential
// suites' exploration aggregate.
type Counts map[string]int

// Add counts one outcome.
func (c Counts) Add(fp string) { c[fp]++ }

// Total returns the multiset's cardinality (the execution count).
func (c Counts) Total() int {
	n := 0
	for _, k := range c {
		n += k
	}
	return n
}

// Leaf adapts a fingerprint function into a MemoInstance.Leaf
// contribution: a fresh one-element Counts per leaf.
func Leaf(fp func(*sched.Result) string) func(*sched.Result) any {
	return func(r *sched.Result) any {
		return Counts{fp(r): 1}
	}
}

// Merge is the pure MemoOptions.Merge for Counts contributions: it
// returns a new multiset and never mutates its arguments, which stay
// live inside the memo table.
func Merge(a, b any) any {
	ca, cb := a.(Counts), b.(Counts)
	out := make(Counts, len(ca)+len(cb))
	for fp, n := range ca {
		out[fp] += n
	}
	for fp, n := range cb {
		out[fp] += n
	}
	return out
}

// AsCounts converts a memoized exploration's aggregate back to Counts,
// treating nil (an empty exploration) as the empty multiset.
func AsCounts(v any) Counts {
	if v == nil {
		return Counts{}
	}
	return v.(Counts)
}

// Diff renders the difference between two multisets, empty when equal.
func Diff(got, want Counts) string {
	keys := map[string]bool{}
	for fp := range got {
		keys[fp] = true
	}
	for fp := range want {
		keys[fp] = true
	}
	var lines []string
	for fp := range keys {
		if got[fp] != want[fp] {
			lines = append(lines, fmt.Sprintf("  %q: got %d, want %d", fp, got[fp], want[fp]))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
