package sched_test

// The sched half of the memoized-vs-exhaustive differential layer
// (PR 4's partition gates, re-aimed at the memo table): for a grid of
// small deterministic systems, the memoized explorer must produce the
// exact leaf-fingerprint multiset and execution count of the
// exhaustive replay DFS — whole-tree, and as a union over every
// PartitionRoots partition — while actually replaying fewer runs.
//
// Fingerprints are state-determined and relabelling-invariant (sorted
// per-process outcomes), never decision sequences: a pruned subtree's
// leaves are reached through other decision sequences than the
// memoized twin standing in for them.

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/sched"
	"repro/internal/sched/schedtest"
)

// ringSys is a deterministic n-process system rich enough to make
// leaves differ: each process alternates reading its clockwise
// neighbour's register and writing its own accumulator back, all
// under step-handshake atomicity. Its State seam fingerprints
// (ops-done, accumulator, register) per process.
type ringSys struct {
	regs []uint64
	acc  []uint64
	ops  []int
	k    int
	mod  uint64
	// ordered disables the relabelling reduction: the ring's
	// neighbour relation is only rotation-symmetric, so for n > 2 the
	// sorted (arbitrary-permutation) reduction would be unsound.
	ordered bool
}

func newRingSys(n, k int, mod uint64, ordered bool) *ringSys {
	return &ringSys{
		regs:    make([]uint64, n),
		acc:     make([]uint64, n),
		ops:     make([]int, n),
		k:       k,
		mod:     mod,
		ordered: ordered,
	}
}

func (s *ringSys) procs() []sched.ProcFunc {
	n := len(s.regs)
	procs := make([]sched.ProcFunc, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = func(p *sched.Proc) error {
			for r := 0; r < s.k; r++ {
				p.Step()
				v := s.regs[(i+1)%n]
				s.acc[i] = (s.acc[i] + v + 1) % s.mod
				s.ops[i]++
				p.Step()
				s.regs[i] = s.acc[i]
				s.ops[i]++
			}
			return nil
		}
	}
	return procs
}

func (s *ringSys) state() sched.StateKey {
	var c sched.Canonicalizer
	for i := range s.regs {
		c.Proc(sched.MixKey(sched.KeySeed(), uint64(s.ops[i]), s.acc[i], s.regs[i]))
	}
	if s.ordered {
		return c.KeyOrdered()
	}
	return c.Key()
}

// leafFP is the relabelling-invariant outcome fingerprint: the sorted
// per-process (acc, reg) pairs plus the run flags.
func (s *ringSys) leafFP(r *sched.Result) string {
	pairs := make([]string, len(s.regs))
	for i := range s.regs {
		pairs[i] = fmt.Sprintf("%d/%d", s.acc[i], s.regs[i])
	}
	if !s.ordered {
		sort.Strings(pairs)
	}
	return fmt.Sprintf("%v d=%v b=%v", pairs, r.Deadlocked, r.BudgetExceeded)
}

// asymSys is a plain step system with per-process step counts. Its
// per-process component folds the process's remaining program (total
// step count) in, which is what keeps the sorted reduction sound for
// asymmetric counts: components of processes running different
// programs can never be confused.
type asymSys struct {
	taken  []int
	totals []int
}

func newAsymSys(totals []int) *asymSys {
	return &asymSys{taken: make([]int, len(totals)), totals: totals}
}

func (s *asymSys) procs() []sched.ProcFunc {
	procs := make([]sched.ProcFunc, len(s.totals))
	for i := range s.totals {
		i := i
		procs[i] = func(p *sched.Proc) error {
			for k := 0; k < s.totals[i]; k++ {
				p.Step()
				s.taken[i]++
			}
			return nil
		}
	}
	return procs
}

func (s *asymSys) state() sched.StateKey {
	var c sched.Canonicalizer
	for i := range s.totals {
		c.Proc(sched.MixKey(sched.KeySeed(), uint64(s.taken[i]), uint64(s.totals[i])))
	}
	return c.Key()
}

func (s *asymSys) leafFP(r *sched.Result) string {
	fin := make([]string, len(s.totals))
	for i := range s.totals {
		fin[i] = fmt.Sprintf("%d/%d", s.taken[i], s.totals[i])
	}
	sort.Strings(fin)
	return fmt.Sprintf("%v d=%v b=%v", fin, r.Deadlocked, r.BudgetExceeded)
}

// memoCase is one row of the differential grid: a factory for the
// plain explorers, and a memo factory exposing the State seam.
type memoCase struct {
	name    string
	factory func() []sched.ProcFunc
	memo    func() sched.MemoInstance
}

func memoGrid() []memoCase {
	var cases []memoCase
	for _, cfg := range []struct {
		n, k    int
		mod     uint64
		ordered bool
	}{
		{n: 2, k: 2, mod: 3, ordered: false},
		{n: 2, k: 3, mod: 5, ordered: false},
		{n: 2, k: 2, mod: 2, ordered: false},
		{n: 3, k: 2, mod: 3, ordered: true},
	} {
		cfg := cfg
		cases = append(cases, memoCase{
			name: fmt.Sprintf("ring/n=%d,k=%d,mod=%d,ordered=%v", cfg.n, cfg.k, cfg.mod, cfg.ordered),
			factory: func() []sched.ProcFunc {
				return newRingSys(cfg.n, cfg.k, cfg.mod, cfg.ordered).procs()
			},
			memo: func() sched.MemoInstance {
				s := newRingSys(cfg.n, cfg.k, cfg.mod, cfg.ordered)
				return sched.MemoInstance{
					Procs: s.procs(),
					State: s.state,
					Leaf:  schedtest.Leaf(s.leafFP),
				}
			},
		})
	}
	for _, totals := range [][]int{{2, 3}, {3, 3}, {2, 2, 2}} {
		totals := totals
		cases = append(cases, memoCase{
			name: fmt.Sprintf("steps/%v", totals),
			factory: func() []sched.ProcFunc {
				return newAsymSys(totals).procs()
			},
			memo: func() sched.MemoInstance {
				s := newAsymSys(totals)
				return sched.MemoInstance{
					Procs: s.procs(),
					State: s.state,
					Leaf:  schedtest.Leaf(s.leafFP),
				}
			},
		})
	}
	return cases
}

// exhaustiveCounts runs the serial exhaustive explorer, fingerprinting
// each leaf with the same function the memo side uses. The factory
// must expose the current instance's fingerprint through cur.
func exhaustiveCounts(t *testing.T, mc memoCase) (schedtest.Counts, int) {
	t.Helper()
	want := schedtest.Counts{}
	var curFP func(*sched.Result) string
	factory := func() []sched.ProcFunc {
		// Rebuild through the memo factory so both sides run the
		// identical system; use its Leaf for the fingerprint.
		inst := mc.memo()
		leaf := inst.Leaf
		curFP = func(r *sched.Result) string {
			for fp := range leaf(r).(schedtest.Counts) {
				return fp
			}
			panic("empty leaf contribution")
		}
		return inst.Procs
	}
	runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
		want.Add(curFP(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	return want, runs
}

// TestMemoMatchesExhaustive is the core differential property: same
// aggregate multiset, same execution count, strictly fewer replays
// than exhaustive runs, and real pruning on every grid row.
func TestMemoMatchesExhaustive(t *testing.T) {
	for _, mc := range memoGrid() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			want, runs := exhaustiveCounts(t, mc)
			agg, stats, err := sched.ExploreMemo(mc.memo, sched.MemoOptions{Merge: schedtest.Merge})
			if err != nil {
				t.Fatal(err)
			}
			got := schedtest.AsCounts(agg)
			if d := schedtest.Diff(got, want); d != "" {
				t.Fatalf("fingerprint multisets differ:\n%s", d)
			}
			if stats.Executions != runs {
				t.Fatalf("memo accounts for %d executions, exhaustive ran %d", stats.Executions, runs)
			}
			if stats.Replays >= runs {
				t.Fatalf("memoized mode replayed %d times for %d exhaustive runs — no savings", stats.Replays, runs)
			}
			if stats.StatesPruned == 0 {
				t.Fatalf("no subtrees pruned on a branchy grid row (visited %d states)", stats.StatesVisited)
			}
			if stats.StatesVisited == 0 {
				t.Fatal("no states recorded")
			}
		})
	}
}

// TestMemoPrefixesUnionEqualsExploreAll mirrors the PR 4 partition
// gate in memoized mode: for every cut depth, the union of
// per-root memoized explorations (separate calls, separate memo
// tables — the sharded shape) and the single whole-partition call
// both reproduce the exhaustive multiset exactly.
func TestMemoPrefixesUnionEqualsExploreAll(t *testing.T) {
	for _, mc := range memoGrid() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			want, runs := exhaustiveCounts(t, mc)
			for depth := 0; depth <= 4; depth++ {
				roots, err := sched.PartitionRoots(mc.factory, 0, depth)
				if err != nil {
					t.Fatal(err)
				}
				// Whole partition, one call (one shared memo table).
				agg, stats, err := sched.ExploreMemoPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, roots)
				if err != nil {
					t.Fatal(err)
				}
				if d := schedtest.Diff(schedtest.AsCounts(agg), want); d != "" {
					t.Fatalf("depth %d: one-call partition multiset differs:\n%s", depth, d)
				}
				if stats.Executions != runs {
					t.Fatalf("depth %d: one-call partition accounts for %d executions, want %d", depth, stats.Executions, runs)
				}
				// Per-root calls, merged by hand (the sharded union).
				union := schedtest.Counts{}
				total := 0
				for _, root := range roots {
					agg, stats, err := sched.ExploreMemoPrefixes(mc.memo, sched.MemoOptions{Merge: schedtest.Merge}, [][]int{root})
					if err != nil {
						t.Fatalf("depth %d root %v: %v", depth, root, err)
					}
					union = schedtest.Merge(union, schedtest.AsCounts(agg)).(schedtest.Counts)
					total += stats.Executions
				}
				if d := schedtest.Diff(union, want); d != "" {
					t.Fatalf("depth %d: per-root union multiset differs:\n%s", depth, d)
				}
				if total != runs {
					t.Fatalf("depth %d: per-root union accounts for %d executions, want %d", depth, total, runs)
				}
			}
		})
	}
}

// TestMemoRejectsDeadPrefix: the memoized explorer enforces the same
// liveness contract on seed roots as ExplorePrefixes.
func TestMemoRejectsDeadPrefix(t *testing.T) {
	memo := func() sched.MemoInstance {
		s := newAsymSys([]int{1, 1})
		return sched.MemoInstance{Procs: s.procs(), State: s.state, Leaf: schedtest.Leaf(s.leafFP)}
	}
	for _, root := range [][]int{
		{5},          // pid 5 does not exist
		{0, 0, 0, 0}, // longer than any execution
	} {
		_, _, err := sched.ExploreMemoPrefixes(memo, sched.MemoOptions{Merge: schedtest.Merge}, [][]int{root})
		if !errors.Is(err, sched.ErrPrefixNotLive) {
			t.Errorf("root %v: err = %v, want ErrPrefixNotLive", root, err)
		}
	}
	if _, _, err := sched.ExploreMemoPrefixes(memo, sched.MemoOptions{Merge: schedtest.Merge}, [][]int{{1}}); err != nil {
		t.Errorf("live root: %v", err)
	}
}

// TestMemoEmptyRootsAndConfigErrors pins the degenerate contracts.
func TestMemoEmptyRootsAndConfigErrors(t *testing.T) {
	agg, stats, err := sched.ExploreMemoPrefixes(func() sched.MemoInstance {
		t.Fatal("factory called with no roots")
		return sched.MemoInstance{}
	}, sched.MemoOptions{}, nil)
	if err != nil || agg != nil || stats.Executions != 0 {
		t.Fatalf("empty roots = (%v, %+v, %v); want nil aggregate, zero stats, nil error", agg, stats, err)
	}

	s := newAsymSys([]int{1, 1})
	if _, _, err := sched.ExploreMemo(func() sched.MemoInstance {
		return sched.MemoInstance{Procs: s.procs()}
	}, sched.MemoOptions{}); err == nil {
		t.Fatal("missing State seam not rejected")
	}
	if _, _, err := sched.ExploreMemo(func() sched.MemoInstance {
		sys := newAsymSys([]int{1, 1})
		return sched.MemoInstance{Procs: sys.procs(), State: sys.state, Leaf: schedtest.Leaf(sys.leafFP)}
	}, sched.MemoOptions{}); err == nil {
		t.Fatal("Leaf without Merge not rejected")
	}
}

// TestMemoCountsAloneWithoutLeaf: nil Leaf explores for the counters
// alone (the E15 shape, where only the execution count and the
// per-leaf validation matter).
func TestMemoCountsAloneWithoutLeaf(t *testing.T) {
	factory := func() []sched.ProcFunc { return newAsymSys([]int{3, 3}).procs() }
	runs, err := sched.ExploreAll(factory, 0, func(*sched.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	agg, stats, err := sched.ExploreMemo(func() sched.MemoInstance {
		s := newAsymSys([]int{3, 3})
		return sched.MemoInstance{Procs: s.procs(), State: s.state}
	}, sched.MemoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg != nil {
		t.Fatalf("nil-Leaf aggregate = %v, want nil", agg)
	}
	if stats.Executions != runs {
		t.Fatalf("memo counts %d executions, exhaustive ran %d", stats.Executions, runs)
	}
	if stats.Replays >= runs || stats.StatesPruned == 0 {
		t.Fatalf("no memoization savings: %+v for %d runs", stats, runs)
	}
}
