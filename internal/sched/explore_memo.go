package sched

import (
	"errors"
	"fmt"
)

// This file implements the memoized exploration mode: a replay DFS
// that consults a visited-set keyed by (canonical state, depth) and
// prunes subtrees whose aggregate contribution is already known.
//
// The exhaustive explorers replay the system once per leaf. The
// memoized explorer replays once per *node*: a recorder scheduler
// fingerprints the global state (via the instance's State seam) at
// every decision point past the forced prefix, and the moment a
// fingerprint is found in the memo the run halts — the common prefix
// is never re-run to a leaf, the memo supplies the whole subtree's
// contribution and leaf count. Unexplored sibling branches are then
// descended bottom-up, and the completed contribution of every node
// on the path is stored at its depth on the way back. Determinism
// makes this sound: equal canonical state at equal depth implies an
// isomorphic remaining subtree, so contributions transfer — exactly
// (for states reached by commuting independent steps) or up to
// process relabelling (when the State seam applies the symmetry
// reduction, see Canonicalizer), which is why Leaf contributions and
// Merge must be relabelling-invariant for reduced systems.

// MemoInstance is one fresh system build for the memoized explorer.
type MemoInstance struct {
	// Procs are the process closures, as for the other explorers.
	Procs []ProcFunc
	// State fingerprints the instance's current global state. It is
	// called by the explorer only while every live process is parked
	// between steps (from the scheduler's Next hook, and once after
	// the run completes), so it may read shared state freely.
	// Required.
	State func() StateKey
	// Leaf extracts one complete execution's contribution to the
	// exploration's aggregate. The Result is pooled — Leaf must not
	// retain it or its slices — and the returned value becomes shared
	// immutable memo state: it must be fresh on every call, must be
	// determined by the leaf's canonical state, and is never mutated
	// by the explorer afterwards. Nil Leaf — or a Leaf used only for
	// per-execution validation, returning nil — explores for the
	// counts alone.
	Leaf func(*Result) any
}

// MemoOptions configures a memoized exploration.
type MemoOptions struct {
	// MaxSteps bounds each replay as in Config (0 = DefaultMaxSteps).
	MaxSteps int
	// Merge combines two subtree contributions into a new value. It
	// must be pure: no mutation of either argument (they remain live
	// as memoized contributions of other nodes), associativity and
	// commutativity up to the final aggregate's equality — the same
	// order-insensitivity the parallel explorers demand. Required
	// whenever Leaf returns non-nil contributions.
	Merge func(a, b any) any
}

// MemoStats counts the work a memoized exploration did and saved.
type MemoStats struct {
	// Executions is the number of leaves of the exhaustive tree the
	// aggregate accounts for — equal to the run count ExploreAll
	// would report.
	Executions int
	// Replays is the number of system runs actually performed (one
	// per explored node, halted early on memo hits). The memoized
	// win is Replays ≪ Executions·avg-depth replay steps.
	Replays int
	// StatesVisited is the number of distinct (canonical state,
	// depth) nodes stored in the memo.
	StatesVisited int
	// StatesPruned is the number of subtrees reused from the memo
	// instead of re-explored.
	StatesPruned int
	// StatesShared is the number of memo hits on entries another
	// worker's range published — the reuse a purely per-range memo
	// would have re-explored. Always 0 for serial explorations.
	StatesShared int
	// Workers is the number of worker goroutines the exploration ran
	// with (1 for the serial explorer).
	Workers int
}

// errMemoState reports a MemoInstance without the required State seam.
var errMemoState = errors.New("sched: MemoInstance.State is required")

// memoKey identifies a node of the schedule tree up to canonical-state
// equivalence: same fingerprint at the same depth ⇒ same subtree
// contribution (depth pins the remaining step budget).
type memoKey struct {
	state StateKey
	depth int
}

// memoEntry is a completed node: its subtree's merged contribution and
// leaf count. contrib is immutable once stored.
type memoEntry struct {
	contrib any
	leaves  int
}

// memoProbe is the recorder scheduler of one replay: it forces the
// prefix, records the canonical state at every decision point at or
// past the prefix, and halts the run the moment a state is already in
// the memo.
type memoProbe struct {
	replay Replay
	state  func() StateKey
	memo   map[memoKey]memoEntry
	from   int // depth of the first decision not forced by the prefix
	depth  int
	keys   []StateKey // keys[d-from] is the state before decision d
	hit    bool
	entry  memoEntry
}

func (m *memoProbe) Next(enabled []int) Decision {
	if m.depth >= m.from {
		k := m.state()
		if e, ok := m.memo[memoKey{state: k, depth: m.depth}]; ok {
			m.hit, m.entry = true, e
			return Decision{Pid: Halt}
		}
		m.keys = append(m.keys, k)
	}
	m.depth++
	return m.replay.Next(enabled)
}

// ExploreMemo explores the whole schedule tree of a deterministic
// system in memoized mode, returning the merged contribution of every
// leaf, the exploration counters, and the first error. factory must
// build a fresh, fully deterministic instance on every call.
func ExploreMemo(factory func() MemoInstance, opts MemoOptions) (any, MemoStats, error) {
	return ExploreMemoPrefixes(factory, opts, [][]int{{}})
}

// ExploreMemoPrefixes is ExploreMemo restricted to the subtrees under
// the given forced prefixes (the memoized analogue of
// ExplorePrefixes): the aggregate covers exactly the executions whose
// decision sequence extends one of roots, each counted once. Roots
// follow the ExplorePrefixes contract — live, pairwise prefix-free
// (PartitionRoots output qualifies); a root the scheduler cannot
// follow fails with ErrPrefixNotLive. The memoized union over any
// partition of roots equals the exhaustive whole-tree aggregate,
// which is what lets the sharded layers adopt the mode slice by
// slice. An empty roots slice explores nothing.
func ExploreMemoPrefixes(factory func() MemoInstance, opts MemoOptions, roots [][]int) (any, MemoStats, error) {
	stats := MemoStats{Workers: 1}
	if len(roots) == 0 {
		return nil, stats, nil
	}

	memo := make(map[memoKey]memoEntry)
	var mergeErr error
	mergeInto := func(into, from any) any {
		switch {
		case from == nil:
			return into
		case into == nil:
			return from
		case opts.Merge == nil:
			// Leaves that only validate (returning nil) need no Merge;
			// combining real contributions without one is a mistake.
			if mergeErr == nil {
				mergeErr = errors.New("sched: MemoOptions.Merge is required to combine non-nil Leaf contributions")
			}
			return into
		default:
			return opts.Merge(into, from)
		}
	}

	// Replay state pools, as in the frontier loop: one Result and one
	// runner per active DFS frame, recycled across sibling subtrees.
	var (
		freeRes []*Result
		freeRun []*runner
	)
	getRes := func() *Result {
		if k := len(freeRes); k > 0 {
			r := freeRes[k-1]
			freeRes = freeRes[:k-1]
			return r
		}
		return &Result{}
	}
	getRun := func() *runner {
		if k := len(freeRun); k > 0 {
			r := freeRun[k-1]
			freeRun = freeRun[:k-1]
			return r
		}
		return nil
	}

	var dfs func(prefix []int, seed bool) (any, int, error)
	dfs = func(prefix []int, seed bool) (any, int, error) {
		inst := factory()
		if inst.State == nil {
			return nil, 0, errMemoState
		}
		probe := &memoProbe{
			replay: Replay{Prefix: prefix},
			state:  inst.State,
			memo:   memo,
			from:   len(prefix),
		}
		res, rn := getRes(), getRun()
		if rn == nil || rn.n != len(inst.Procs) {
			rn = newRunner(len(inst.Procs))
		}
		if _, err := runInto(Config{Scheduler: probe, MaxSteps: opts.MaxSteps}, inst.Procs, res, rn); err != nil {
			return nil, 0, err
		}
		stats.Replays++
		if seed && !replayedExactly(res, prefix) {
			return nil, 0, fmt.Errorf("%w: %v", ErrPrefixNotLive, prefix)
		}

		// top is the depth the replay reached: the depth of the memo
		// hit, or the leaf's depth on a complete execution.
		top := len(res.Decisions)
		var contrib any
		var leaves int
		if probe.hit {
			stats.StatesPruned++
			contrib, leaves = probe.entry.contrib, probe.entry.leaves
		} else {
			// A complete execution: one leaf. Store its terminal state
			// too, so sibling paths converging on it halt immediately.
			// (The probe never fingerprints terminal states — they have
			// no decision point — so an equivalent leaf may already be
			// stored; keep the first.)
			if inst.Leaf != nil {
				contrib = inst.Leaf(res)
			}
			leaves = 1
			tk := memoKey{state: inst.State(), depth: top}
			if _, ok := memo[tk]; !ok {
				memo[tk] = memoEntry{contrib: contrib, leaves: leaves}
				stats.StatesVisited++
			}
		}

		// Bottom-up: descend every untaken branch below each decision
		// point, deepest first, folding sibling subtrees into this
		// path's contribution; each node's completed entry is stored at
		// its depth. Sibling recursions store only at depths strictly
		// below their own prefix length (> i), so no entry written here
		// is ever overwritten.
		for i := top - 1; i >= len(prefix); i-- {
			chosen := res.Decisions[i].Pid
			for _, alt := range res.EnabledSets[i] {
				if alt <= chosen {
					continue
				}
				branch := make([]int, i+1)
				for j := 0; j < i; j++ {
					branch[j] = res.Decisions[j].Pid
				}
				branch[i] = alt
				sub, subLeaves, err := dfs(branch, false)
				if err != nil {
					return nil, 0, err
				}
				contrib = mergeInto(contrib, sub)
				leaves += subLeaves
			}
			memo[memoKey{state: probe.keys[i-len(prefix)], depth: i}] = memoEntry{contrib: contrib, leaves: leaves}
			stats.StatesVisited++
		}

		freeRes = append(freeRes, res)
		freeRun = append(freeRun, rn)
		return contrib, leaves, nil
	}

	var total any
	for _, root := range roots {
		contrib, leaves, err := dfs(root, true)
		if err == nil {
			err = mergeErr
		}
		if err != nil {
			return nil, stats, err
		}
		total = mergeInto(total, contrib)
		stats.Executions += leaves
	}
	if mergeErr != nil {
		return nil, stats, mergeErr
	}
	return total, stats, nil
}
