package sched

import (
	"testing"
)

// TestExploreAsymmetricMultinomial: 3 processes with 1, 2, 3 steps have
// 6!/(1!·2!·3!) = 60 interleavings.
func TestExploreAsymmetricMultinomial(t *testing.T) {
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(1, &sink), counterProc(2, &sink), counterProc(3, &sink)}
	}
	runs, err := ExploreAll(factory, 0, func(*Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 60 {
		t.Fatalf("runs = %d, want 60", runs)
	}
}

// TestExploreVisitStops: returning false stops exploration without error.
func TestExploreVisitStops(t *testing.T) {
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(3, &sink), counterProc(3, &sink)}
	}
	seen := 0
	runs, err := Explore(factory, 0, 0, func(*Result) bool {
		seen++
		return seen < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}

// TestCrashAtMultipleVictims crashes two of three processes.
func TestCrashAtMultipleVictims(t *testing.T) {
	var log []int
	sch := NewCrashAt(&RoundRobin{}, map[int]int{0: 1, 2: 2})
	procs := []ProcFunc{counterProc(5, &log), counterProc(5, &log), counterProc(5, &log)}
	res, err := Run(Config{Scheduler: sch}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || !res.Crashed[2] {
		t.Fatalf("crashed = %v", res.Crashed)
	}
	if res.Steps[0] != 1 || res.Steps[2] != 2 {
		t.Fatalf("steps = %v", res.Steps)
	}
	if !res.Correct(1) || res.Steps[1] != 5 {
		t.Fatalf("survivor steps = %d", res.Steps[1])
	}
}

// TestReplayWithFallback: after the forced prefix the fallback policy
// takes over.
func TestReplayWithFallback(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(2, &log), counterProc(2, &log)}
	sch := &Replay{Prefix: []int{1}, Fallback: Lowest{}}
	res, err := Run(Config{Scheduler: sch}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	want := []int{1, 0, 0, 1}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

// TestRoundRobinFairness: within any window of n grants every enabled
// process appears.
func TestRoundRobinFairness(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(10, &log), counterProc(10, &log), counterProc(10, &log)}
	if _, err := Run(Config{Scheduler: &RoundRobin{}}, procs); err != nil {
		t.Fatal(err)
	}
	for start := 0; start+3 <= len(log); start += 3 {
		seen := map[int]bool{}
		for _, pid := range log[start : start+3] {
			seen[pid] = true
		}
		if len(seen) != 3 {
			t.Fatalf("window %v not fair", log[start:start+3])
		}
	}
}

// TestRandomFairnessEventually: under the seeded random scheduler every
// process completes (probabilistic fairness holds on finite programs).
func TestRandomFairnessEventually(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var log []int
		procs := []ProcFunc{counterProc(20, &log), counterProc(20, &log), counterProc(20, &log), counterProc(20, &log)}
		res, err := Run(Config{Scheduler: NewRandom(seed)}, procs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if res.Steps[i] != 20 {
				t.Fatalf("seed %d: steps = %v", seed, res.Steps)
			}
		}
	}
}

// TestProgramOrderPreserved: each process's steps occur in program order
// regardless of the interleaving (sanity of the step machinery).
func TestProgramOrderPreserved(t *testing.T) {
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(3, &sink), counterProc(2, &sink)}
	}
	_, err := ExploreAll(factory, 0, func(r *Result) {
		count := map[int]int{}
		for _, d := range r.Decisions {
			count[d.Pid]++
		}
		if count[0] != 3 || count[1] != 2 {
			t.Fatalf("decision counts %v", count)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSoloOnFinishedProcessHalts: Solo halts once its process is done,
// crashing the rest.
func TestSoloOnFinishedProcessHalts(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(2, &log), counterProc(2, &log), counterProc(2, &log)}
	res, err := Run(Config{Scheduler: Solo{Pid: 2}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct(2) {
		t.Fatal("solo process should complete")
	}
	if !res.Crashed[0] || !res.Crashed[1] {
		t.Fatal("other processes should be crashed at halt")
	}
}

// TestStepWhenManyWaiters: several processes blocked on conditions that
// unlock in sequence.
func TestStepWhenManyWaiters(t *testing.T) {
	stage := 0
	order := []int{}
	mk := func(want int) ProcFunc {
		return func(p *Proc) error {
			p.StepWhen(func() bool { return stage == want })
			order = append(order, want)
			stage++
			return nil
		}
	}
	// Processes wait for stages 2, 1, 0 respectively; they must complete
	// in reverse pid order.
	procs := []ProcFunc{mk(2), mk(1), mk(0)}
	res, err := Run(Config{Scheduler: Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestDecisionTraceMatchesSteps: Decisions and EnabledSets line up and
// only contain legal picks.
func TestDecisionTraceMatchesSteps(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(3, &log), counterProc(4, &log)}
	res, err := Run(Config{Scheduler: NewRandom(3)}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != len(res.EnabledSets) {
		t.Fatal("trace length mismatch")
	}
	if len(res.Decisions) != res.TotalSteps {
		t.Fatalf("decisions %d vs steps %d", len(res.Decisions), res.TotalSteps)
	}
	for i, d := range res.Decisions {
		found := false
		for _, pid := range res.EnabledSets[i] {
			if pid == d.Pid {
				found = true
			}
		}
		if !found {
			t.Fatalf("decision %d picked %d outside enabled %v", i, d.Pid, res.EnabledSets[i])
		}
	}
}
