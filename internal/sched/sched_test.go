package sched

import (
	"errors"
	"testing"
)

// counterProc takes k plain steps and records the order of its step grants
// into the shared log (safe: only one process runs at a time).
func counterProc(k int, log *[]int) ProcFunc {
	return func(p *Proc) error {
		for i := 0; i < k; i++ {
			p.Step()
			*log = append(*log, p.ID)
		}
		return nil
	}
}

func TestRunRoundRobin(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(3, &log), counterProc(3, &log), counterProc(3, &log)}
	res, err := Run(Config{Scheduler: &RoundRobin{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 9 {
		t.Fatalf("TotalSteps = %d, want 9", res.TotalSteps)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	for i := 0; i < 3; i++ {
		if !res.Correct(i) {
			t.Errorf("process %d not correct", i)
		}
		if res.Steps[i] != 3 {
			t.Errorf("Steps[%d] = %d, want 3", i, res.Steps[i])
		}
	}
}

func TestRunLowestSerializes(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(2, &log), counterProc(2, &log)}
	res, err := Run(Config{Scheduler: Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if res.TotalSteps != 4 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
}

func TestRunSolo(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(4, &log), counterProc(4, &log)}
	res, err := Run(Config{Scheduler: Solo{Pid: 1}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[1] != 4 || res.Steps[0] != 0 {
		t.Fatalf("Steps = %v, want [0 4]", res.Steps)
	}
	if !res.Crashed[0] {
		t.Fatal("process 0 should be crashed (never scheduled)")
	}
	if !res.Correct(1) {
		t.Fatal("process 1 should be correct")
	}
}

func TestRunSequential(t *testing.T) {
	var log []int
	procs := []ProcFunc{counterProc(2, &log), counterProc(2, &log), counterProc(2, &log)}
	res, err := Run(Config{Scheduler: Sequential{Order: []int{2, 0}}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 0, 0}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if !res.Crashed[1] {
		t.Fatal("process 1 should be crashed (not in order)")
	}
}

func TestRunCrashAt(t *testing.T) {
	var log []int
	inner := &RoundRobin{}
	sch := NewCrashAt(inner, map[int]int{1: 2})
	procs := []ProcFunc{counterProc(5, &log), counterProc(5, &log)}
	res, err := Run(Config{Scheduler: sch}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[1] {
		t.Fatal("process 1 should have crashed")
	}
	if res.Steps[1] != 2 {
		t.Fatalf("process 1 took %d steps, want 2 before crash", res.Steps[1])
	}
	if !res.Correct(0) || res.Steps[0] != 5 {
		t.Fatalf("process 0 should complete 5 steps, got %d", res.Steps[0])
	}
}

func TestRunCrashAtStart(t *testing.T) {
	var log []int
	sch := NewCrashAt(Lowest{}, map[int]int{0: 0})
	procs := []ProcFunc{counterProc(3, &log), counterProc(3, &log)}
	res, err := Run(Config{Scheduler: sch}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Steps[0] != 0 {
		t.Fatalf("process 0 should crash before any step, Steps=%v", res.Steps)
	}
	if res.Steps[1] != 3 {
		t.Fatalf("process 1 took %d steps", res.Steps[1])
	}
}

func TestRunStepWhen(t *testing.T) {
	// Process 1 waits for the flag that process 0 sets after two steps.
	var flag bool
	order := []int{}
	procs := []ProcFunc{
		func(p *Proc) error {
			p.Step()
			order = append(order, 0)
			p.Step()
			flag = true
			order = append(order, 0)
			return nil
		},
		func(p *Proc) error {
			p.StepWhen(func() bool { return flag })
			order = append(order, 1)
			return nil
		},
	}
	// Even a scheduler that would prefer process 1 cannot schedule it
	// before the flag is set.
	res, err := Run(Config{Scheduler: Sequential{Order: []int{1, 0}}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	want := []int{0, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunDeadlock(t *testing.T) {
	procs := []ProcFunc{
		func(p *Proc) error {
			p.StepWhen(func() bool { return false })
			return nil
		},
	}
	res, err := Run(Config{Scheduler: Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock")
	}
	if !errors.Is(res.Err(), ErrDeadlock) {
		t.Fatalf("Err = %v", res.Err())
	}
}

func TestRunBudget(t *testing.T) {
	procs := []ProcFunc{
		func(p *Proc) error {
			for {
				p.Step()
			}
		},
	}
	res, err := Run(Config{Scheduler: Lowest{}, MaxSteps: 100}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetExceeded {
		t.Fatal("expected budget exceeded")
	}
	if !errors.Is(res.Err(), ErrBudget) {
		t.Fatalf("Err = %v", res.Err())
	}
}

func TestRunProcError(t *testing.T) {
	wantErr := errors.New("boom")
	procs := []ProcFunc{
		func(p *Proc) error { p.Step(); return wantErr },
	}
	res, err := Run(Config{Scheduler: Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errs[0], wantErr) {
		t.Fatalf("Errs[0] = %v", res.Errs[0])
	}
	if res.Correct(0) {
		t.Fatal("errored process reported correct")
	}
}

func TestRunRandomSeedsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		var log []int
		procs := []ProcFunc{counterProc(5, &log), counterProc(5, &log), counterProc(5, &log)}
		if _, err := Run(Config{Scheduler: NewRandom(seed)}, procs); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes with a and b steps have C(a+b, a) interleavings.
	binom := func(n, k int) int {
		res := 1
		for i := 0; i < k; i++ {
			res = res * (n - i) / (i + 1)
		}
		return res
	}
	tests := []struct{ a, b int }{{1, 1}, {2, 2}, {3, 2}, {3, 3}, {4, 4}}
	for _, tc := range tests {
		factory := func() []ProcFunc {
			var sink []int
			return []ProcFunc{counterProc(tc.a, &sink), counterProc(tc.b, &sink)}
		}
		runs, err := ExploreAll(factory, 0, func(*Result) {})
		if err != nil {
			t.Fatal(err)
		}
		if want := binom(tc.a+tc.b, tc.a); runs != want {
			t.Errorf("a=%d b=%d: %d interleavings, want %d", tc.a, tc.b, runs, want)
		}
	}
}

func TestExploreThreeProcs(t *testing.T) {
	// Multinomial (2+2+2)! / (2!·2!·2!) = 90 interleavings.
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(2, &sink), counterProc(2, &sink), counterProc(2, &sink)}
	}
	runs, err := ExploreAll(factory, 0, func(*Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 90 {
		t.Fatalf("runs = %d, want 90", runs)
	}
}

func TestExploreDistinctSchedules(t *testing.T) {
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(2, &sink), counterProc(2, &sink)}
	}
	seen := map[string]bool{}
	_, err := ExploreAll(factory, 0, func(r *Result) {
		key := ""
		for _, d := range r.Decisions {
			key += string(rune('0' + d.Pid))
		}
		if seen[key] {
			t.Errorf("schedule %q visited twice", key)
		}
		seen[key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("distinct schedules = %d, want 6", len(seen))
	}
}

func TestExploreRunLimit(t *testing.T) {
	factory := func() []ProcFunc {
		var sink []int
		return []ProcFunc{counterProc(4, &sink), counterProc(4, &sink)}
	}
	runs, err := Explore(factory, 0, 3, func(*Result) bool { return true })
	if !errors.Is(err, ErrExploreLimit) {
		t.Fatalf("err = %v, want ErrExploreLimit", err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
}
