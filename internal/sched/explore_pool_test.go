package sched

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestExplorePrefixesPooledFrontier hammers the pooled replay path:
// many workers share the frontier's recycled prefix buffers while each
// worker reuses one Result and one runner across every replay. Done
// must observe each run's data intact (the pooling contract: valid
// until Done returns), and repeated runs must agree with the serial
// explorer exactly. Run under -race in CI (make test-short), this is
// the pooled-frontier race gate.
func TestExplorePrefixesPooledFrontier(t *testing.T) {
	steps := []int{3, 3, 2}
	want := collectAll(t, steps)
	for round := 0; round < 3; round++ {
		var (
			mu  sync.Mutex
			fps []string
		)
		factory := func() Instance {
			return Instance{
				Procs: stepSystem(steps),
				Done: func(r *Result) {
					// Read everything Done is entitled to: the full
					// decision sequence, enabled sets, and counters —
					// stale pooled data would corrupt the fingerprint.
					fp := fingerprint(r)
					total := 0
					for i, s := range r.Steps {
						if r.Crashed[i] || r.Errs[i] != nil {
							t.Errorf("unexpected crash/error for pid %d", i)
						}
						total += s
					}
					if total != r.TotalSteps {
						t.Errorf("Steps sum %d != TotalSteps %d", total, r.TotalSteps)
					}
					if len(r.Decisions) != len(r.EnabledSets) {
						t.Errorf("%d decisions, %d enabled sets", len(r.Decisions), len(r.EnabledSets))
					}
					mu.Lock()
					fps = append(fps, fp)
					mu.Unlock()
				},
			}
		}
		n, err := ExplorePrefixes(factory, 0, 8, [][]int{{}})
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("round %d: %d runs, want %d", round, n, len(want))
		}
		sort.Strings(fps)
		if !equalStrings(fps, want) {
			t.Fatalf("round %d: pooled fingerprint multiset diverged from serial", round)
		}
	}
}

// TestRunIntoReuse pins the runInto contract directly: one Result and
// one runner recycled across differently-shaped runs keep every field
// consistent with a fresh Run.
func TestRunIntoReuse(t *testing.T) {
	res := &Result{}
	var rn *runner
	for _, steps := range [][]int{{2, 2}, {3, 1}, {1, 1, 1}, {2, 2}} {
		procs := stepSystem(steps)
		if rn == nil || rn.n != len(procs) {
			rn = newRunner(len(procs))
		}
		got, err := runInto(Config{Scheduler: Lowest{}}, procs, res, rn)
		if err != nil {
			t.Fatal(err)
		}
		if got != res {
			t.Fatal("runInto did not reuse the provided Result")
		}
		want, err := Run(Config{Scheduler: Lowest{}}, stepSystem(steps))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Steps) != fmt.Sprint(want.Steps) ||
			fingerprint(res) != fingerprint(want) ||
			res.TotalSteps != want.TotalSteps {
			t.Fatalf("steps %v: reused result %v/%v diverges from fresh %v/%v",
				steps, res.Steps, fingerprint(res), want.Steps, fingerprint(want))
		}
	}
}
