// Package sched implements the asynchronous execution model of the paper:
// n deterministic processes take atomic steps on a shared memory, with the
// interleaving chosen by an adversary (the Scheduler), and crash failures
// that permanently stop a process.
//
// Each process runs in its own goroutine (goroutines model asynchrony) but
// every shared-memory operation is gated by a step handshake with a central
// runner: the process announces that it is ready, blocks, and proceeds only
// when the scheduler grants it the step. Only the granted process runs
// between grants, so register operations are atomic exactly as in the
// paper's model (§2: "two concurrent accesses to a same register never
// occur").
//
// Crashes are scheduler decisions: a process whose step request is answered
// with a crash unwinds its goroutine and never takes another step.
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// Decision is a scheduler's answer: which process takes the next step, and
// whether that process instead crashes (takes no step, now or ever).
// Pid == Halt stops the execution, crashing every remaining process.
type Decision struct {
	Pid   int
	Crash bool
}

// Halt is the Decision.Pid value that stops the execution.
const Halt = -1

// Scheduler chooses the next step among the enabled processes. enabled is
// sorted ascending and non-empty. The returned Pid must be an element of
// enabled, or Halt.
type Scheduler interface {
	Next(enabled []int) Decision
}

// ProcFunc is the code of one process. It must perform every shared-memory
// operation through the Proc handle (directly or via a memory binding).
// Returning a non-nil error marks the process as failed in the Result.
type ProcFunc func(p *Proc) error

// Config configures a run.
type Config struct {
	// Scheduler chooses interleavings and crashes. Required.
	Scheduler Scheduler
	// MaxSteps bounds the total number of steps across all processes; the
	// run is aborted (Result.BudgetExceeded) beyond it. 0 means a default
	// of 1<<22.
	MaxSteps int
}

// DefaultMaxSteps is the step budget used when Config.MaxSteps is 0.
const DefaultMaxSteps = 1 << 22

// Result describes a completed execution.
type Result struct {
	// Steps[i] is the number of steps taken by process i.
	Steps []int
	// TotalSteps is the sum of Steps.
	TotalSteps int
	// Crashed[i] reports whether process i was crashed by the adversary.
	Crashed []bool
	// Errs[i] is the error returned by process i (nil for crashed procs).
	Errs []error
	// Decisions is the sequence of scheduler decisions, in order.
	Decisions []Decision
	// EnabledSets[k] is the sorted enabled set presented to the scheduler
	// for Decisions[k]. Used by the exhaustive explorer.
	EnabledSets [][]int
	// Deadlocked reports that at some point every live process was blocked
	// on an unsatisfied StepWhen condition. Remaining processes were
	// crashed to unwind.
	Deadlocked bool
	// BudgetExceeded reports that MaxSteps was hit.
	BudgetExceeded bool

	// enabledArena backs the EnabledSets slices when the Result is
	// reused across replays (runInto): one flat append-only buffer per
	// run instead of one allocation per scheduler decision.
	enabledArena []int
}

// reset prepares a Result for reuse by runInto, keeping every backing
// array (Steps, Decisions, EnabledSets, the enabled-set arena) so a
// replay loop settles into zero per-run allocations.
func (r *Result) reset(n int) {
	if cap(r.Steps) < n {
		r.Steps = make([]int, n)
		r.Crashed = make([]bool, n)
		r.Errs = make([]error, n)
	} else {
		r.Steps = r.Steps[:n]
		r.Crashed = r.Crashed[:n]
		r.Errs = r.Errs[:n]
		for i := 0; i < n; i++ {
			r.Steps[i] = 0
			r.Crashed[i] = false
			r.Errs[i] = nil
		}
	}
	r.TotalSteps = 0
	r.Decisions = r.Decisions[:0]
	r.EnabledSets = r.EnabledSets[:0]
	r.Deadlocked = false
	r.BudgetExceeded = false
	r.enabledArena = r.enabledArena[:0]
}

// Correct reports whether process i is correct in this execution: it was
// not crashed and returned no error.
func (r *Result) Correct(i int) bool {
	return !r.Crashed[i] && r.Errs[i] == nil
}

// Err returns the first process error, the deadlock error, or the budget
// error, if any.
func (r *Result) Err() error {
	if r.BudgetExceeded {
		return ErrBudget
	}
	if r.Deadlocked {
		return ErrDeadlock
	}
	for i, err := range r.Errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}
	return nil
}

var (
	// ErrDeadlock reports that all live processes were blocked on
	// unsatisfiable StepWhen conditions.
	ErrDeadlock = errors.New("sched: deadlock (all live processes blocked)")
	// ErrBudget reports that the step budget was exhausted.
	ErrBudget = errors.New("sched: step budget exceeded")
)

// crashSignal unwinds a crashed process's goroutine. It never escapes the
// package: the per-process wrapper recovers it.
type crashSignal struct{}

type announceMsg struct {
	pid   int
	ready func() bool // nil: always enabled
}

type exitMsg struct {
	pid     int
	err     error
	crashed bool
}

// Proc is a process's handle onto the runtime. Shared-memory bindings call
// Step (or StepWhen) exactly once per atomic operation.
type Proc struct {
	// ID is the process index in 0..n-1.
	ID int
	// N is the number of processes in the system.
	N int

	r *runner
}

// Step blocks until the scheduler grants this process its next atomic step.
// If the adversary crashes the process instead, the goroutine unwinds (the
// process function never resumes).
func (p *Proc) Step() { p.StepWhen(nil) }

// StepWhen is Step with an enabling condition: the scheduler will only
// grant the step while ready() holds. It models waiting (e.g. for a
// message or a register change) without unbounded busy-wait polling: the
// process is simply not enabled until the condition is true. ready is
// evaluated by the runner while all processes are parked, so it may read
// shared state without races.
func (p *Proc) StepWhen(ready func() bool) {
	p.r.announce <- announceMsg{pid: p.ID, ready: ready}
	if granted := <-p.r.grants[p.ID]; !granted {
		panic(crashSignal{})
	}
}

type runner struct {
	n        int
	announce chan announceMsg
	grants   []chan bool
	exit     chan exitMsg
	parked   map[int]func() bool
}

// newRunner builds the handshake channels for an n-process run. The
// channels are unbuffered and drained by the time a run returns, so a
// runner is reusable across replays of same-arity systems.
func newRunner(n int) *runner {
	r := &runner{
		n:        n,
		announce: make(chan announceMsg),
		grants:   make([]chan bool, n),
		exit:     make(chan exitMsg),
		parked:   make(map[int]func() bool, n),
	}
	for i := range r.grants {
		r.grants[i] = make(chan bool)
	}
	return r
}

// Run executes the processes under the configured scheduler until every
// process has returned, crashed, or the run is aborted (deadlock/budget).
// The returned error is non-nil only for configuration mistakes; execution
// outcomes (including deadlock) are reported in the Result.
func Run(cfg Config, procs []ProcFunc) (*Result, error) {
	return runInto(cfg, procs, nil, nil)
}

// runInto is Run with reusable buffers for replay loops: res is reset
// and reused when non-nil (its contents are valid until the next
// runInto call with the same res), and rn's handshake channels are
// reused when its process count matches. Passing nil for both is Run.
func runInto(cfg Config, procs []ProcFunc, res *Result, rn *runner) (*Result, error) {
	n := len(procs)
	if n == 0 {
		return nil, errors.New("sched: no processes")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sched: nil scheduler")
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	r := rn
	if r == nil || r.n != n {
		r = newRunner(n)
	}

	for i, fn := range procs {
		go runProc(r, i, n, fn)
	}

	if res == nil {
		res = &Result{}
	}
	res.reset(n)

	live := n
	parked := r.parked
	for live > 0 {
		// Gather until every live process is parked at a step request.
		for len(parked) < live {
			select {
			case m := <-r.announce:
				parked[m.pid] = m.ready
			case e := <-r.exit:
				live--
				if e.crashed {
					res.Crashed[e.pid] = true
				} else {
					res.Errs[e.pid] = e.err
				}
			}
		}
		if live == 0 {
			break
		}

		// Build the enabled set in the Result's flat arena. The
		// three-index slice keeps later appends from aliasing this
		// set; sets already stored in EnabledSets stay valid even if
		// the arena grows (they keep pointing at the old array).
		base := len(res.enabledArena)
		for pid, cond := range parked {
			if cond == nil || cond() {
				res.enabledArena = append(res.enabledArena, pid)
			}
		}
		enabled := res.enabledArena[base:len(res.enabledArena):len(res.enabledArena)]
		sort.Ints(enabled)

		abort := false
		var d Decision
		switch {
		case len(enabled) == 0:
			res.Deadlocked = true
			abort = true
		case res.TotalSteps >= maxSteps:
			res.BudgetExceeded = true
			abort = true
		default:
			d = cfg.Scheduler.Next(enabled)
			if d.Pid == Halt {
				abort = true
			} else if !contains(enabled, d.Pid) {
				return nil, fmt.Errorf("sched: scheduler chose pid %d not in enabled set %v", d.Pid, enabled)
			}
		}

		if abort {
			// Crash every parked process to unwind its goroutine.
			for pid := range parked {
				delete(parked, pid)
				r.grants[pid] <- false
				e := <-r.exit
				live--
				res.Crashed[e.pid] = true
			}
			// Any processes currently running an op will park or exit.
			for live > 0 {
				select {
				case m := <-r.announce:
					r.grants[m.pid] <- false
					e := <-r.exit
					live--
					res.Crashed[e.pid] = true
				case e := <-r.exit:
					live--
					if e.crashed {
						res.Crashed[e.pid] = true
					} else {
						res.Errs[e.pid] = e.err
					}
				}
			}
			break
		}

		res.Decisions = append(res.Decisions, d)
		res.EnabledSets = append(res.EnabledSets, enabled)
		delete(parked, d.Pid)
		if d.Crash {
			r.grants[d.Pid] <- false
			e := <-r.exit
			live--
			res.Crashed[e.pid] = true
			continue
		}
		res.Steps[d.Pid]++
		res.TotalSteps++
		r.grants[d.Pid] <- true
	}
	return res, nil
}

func runProc(r *runner, id, n int, fn ProcFunc) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(crashSignal); ok {
				r.exit <- exitMsg{pid: id, crashed: true}
				return
			}
			panic(rec)
		}
	}()
	err := fn(&Proc{ID: id, N: n, r: r})
	r.exit <- exitMsg{pid: id, err: err}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
