package iis

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// --- Algorithm 3 (IC full-information) on the scheduler runtime ----------

func TestICFullInfoExhaustiveTwoProcs(t *testing.T) {
	// Every operational interleaving of the write-collect rounds lands in
	// the combinatorially enumerated universe (and decides within ε).
	u := NewUniverse(2, 2, BinaryInputVectors(2), CollectOutcomes(2))
	for _, inputs := range [][]int{{0, 1}, {1, 0}, {0, 0}} {
		runs, err := ExploreICFullInfo(u, inputs, func(final Config, r *sched.Result) {
			if e := r.Err(); e != nil {
				t.Fatalf("inputs %v: %v", inputs, e)
			}
			if !u.HasConfig(2, final) {
				t.Fatalf("inputs %v: final config %v unreachable", inputs, final)
			}
			num, den := u.EstimateSpread(final)
			if num*4 > den {
				t.Fatalf("inputs %v: spread %d/%d > 1/4", inputs, num, den)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if runs == 0 {
			t.Fatal("no runs")
		}
	}
}

func TestICFullInfoThreeProcsSampled(t *testing.T) {
	u := NewUniverse(3, 2, BinaryInputVectors(3), CollectOutcomes(3))
	for seed := int64(0); seed < 40; seed++ {
		inputs := []int{int(seed) & 1, int(seed>>1) & 1, int(seed>>2) & 1}
		final, res, err := RunICFullInfo(u, inputs, sched.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		if e := res.Err(); e != nil {
			t.Fatalf("seed %d: %v", seed, e)
		}
		if !u.HasConfig(2, final) {
			t.Fatalf("seed %d: final config unreachable", seed)
		}
	}
}

// --- Algorithm 4 (IC simulated in IIS with 1-bit registers) --------------

func TestAlg4ExhaustiveOneRound(t *testing.T) {
	// n=2, k=1: N = |C_0| = 4 iterations, 3^4 = 81 IIS schedules, all
	// enumerated. Every simulated configuration must be IC-reachable
	// (Lemma 7.1) and the decision must solve 1/2-agreement.
	u := NewUniverse(2, 1, BinaryInputVectors(2), CollectOutcomes(2))
	n := Alg4Iterations(u)
	if n != 4 {
		t.Fatalf("N = %d, want 4", n)
	}
	for _, inputs := range [][]int{{0, 1}, {1, 0}, {1, 1}} {
		count := 0
		ForEachSchedule(2, n, func(s Schedule) bool {
			count++
			res, err := RunAlg4(u, inputs, s)
			if err != nil {
				t.Fatalf("inputs %v schedule %v: %v", inputs, s, err)
			}
			if !u.HasConfig(1, res.Final) {
				t.Fatalf("inputs %v: unreachable final config", inputs)
			}
			num, den := u.EstimateSpread(res.Final)
			if num*2 > den {
				t.Fatalf("inputs %v: spread %d/%d > 1/2", inputs, num, den)
			}
			return true
		})
		if count != 81 {
			t.Fatalf("enumerated %d schedules, want 81", count)
		}
	}
}

func TestAlg4TwoRoundsSampled(t *testing.T) {
	u := NewUniverse(2, 2, BinaryInputVectors(2), CollectOutcomes(2))
	n := Alg4Iterations(u)
	if n != 4+12 {
		t.Fatalf("N = %d, want 16", n)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		inputs := []int{rng.Intn(2), rng.Intn(2)}
		s := RandomSchedule(2, n, rng)
		res, err := RunAlg4(u, inputs, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		num, den := u.EstimateSpread(res.Final)
		if num*4 > den {
			t.Fatalf("trial %d: spread %d/%d > 1/4", trial, num, den)
		}
		if inputs[0] == inputs[1] {
			for _, id := range res.Final {
				en, ed := u.Estimate(id)
				if en != inputs[0]*ed {
					t.Fatalf("trial %d: validity broken: %d/%d", trial, en, ed)
				}
			}
		}
	}
}

func TestAlg4ThreeProcsSampled(t *testing.T) {
	u := NewUniverse(3, 1, BinaryInputVectors(3), CollectOutcomes(3))
	n := Alg4Iterations(u)
	if n != 8 {
		t.Fatalf("N = %d, want |C_0| = 8", n)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		inputs := []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		s := RandomSchedule(3, n, rng)
		res, err := RunAlg4(u, inputs, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		num, den := u.EstimateSpread(res.Final)
		if num*2 > den {
			t.Fatalf("trial %d: spread %d/%d > 1/2", trial, num, den)
		}
	}
}

func TestAlg4RejectsWrongScheduleLength(t *testing.T) {
	u := NewUniverse(2, 1, BinaryInputVectors(2), CollectOutcomes(2))
	if _, err := RunAlg4(u, []int{0, 1}, RandomSchedule(2, 2, rand.New(rand.NewSource(1)))); err == nil {
		t.Fatal("expected schedule-length error")
	}
}

// --- Algorithm 5 (Borowsky-Gafni snapshot in IC) --------------------------

func TestAlg5ExhaustiveTwoProcs(t *testing.T) {
	outcomes := map[string]bool{}
	runs, err := ExploreAlg5([]int{10, 20}, func(sys *Alg5System, r *sched.Result) {
		if e := r.Err(); e != nil {
			t.Fatalf("%v", e)
		}
		correct := []bool{true, true}
		if err := CheckImmediateSnapshots(sys.Inputs, sys.Snaps, correct); err != nil {
			t.Fatalf("schedule: %v", err)
		}
		key := ""
		for _, s := range sys.Snaps {
			for _, v := range s {
				key += string(rune('A' + v%64))
			}
			key += "|"
		}
		outcomes[key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Fatal("no runs")
	}
	// The 2-process one-round IS complex has exactly 3 facets.
	if len(outcomes) != 3 {
		t.Fatalf("distinct snapshot outcomes = %d, want 3", len(outcomes))
	}
}

func TestAlg5ThreeProcsSampled(t *testing.T) {
	outcomes := map[string]bool{}
	for seed := int64(0); seed < 400; seed++ {
		sys, res, err := RunAlg5([]int{1, 2, 3}, sched.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		if e := res.Err(); e != nil {
			t.Fatalf("seed %d: %v", seed, e)
		}
		if err := CheckImmediateSnapshots(sys.Inputs, sys.Snaps, []bool{true, true, true}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		key := ""
		for _, s := range sys.Snaps {
			for _, v := range s {
				key += string(rune('A' + (v+1)%64))
			}
			key += "|"
		}
		outcomes[key] = true
	}
	// The 3-process one-round IS complex has 13 facets; random sampling
	// should find several distinct ones.
	if len(outcomes) < 3 {
		t.Fatalf("only %d distinct outcomes sampled", len(outcomes))
	}
}

func TestAlg5RoundRobinGivesFullSnapshot(t *testing.T) {
	// Under lockstep round-robin, all processes write before anyone's
	// last collect in iteration 1, so everyone adopts the full snapshot.
	sys, res, err := RunAlg5([]int{5, 6, 7}, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	for i, s := range sys.Snaps {
		for j, v := range s {
			if v != sys.Inputs[j] {
				t.Fatalf("snapshot %d entry %d = %d, want full", i, j, v)
			}
		}
	}
}

func TestAlg5SequentialGivesNestedSnapshots(t *testing.T) {
	// If process 0 runs alone first, it must obtain... actually process 0
	// cannot finish iteration 1 with a snapshot of size 3, it sees only
	// itself (count 1 ≠ 3), and terminates with the singleton snapshot at
	// iteration 3. The later processes see more. Snapshots are nested.
	sys, res, err := RunAlg5([]int{5, 6, 7}, sched.Sequential{Order: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	if err := CheckImmediateSnapshots(sys.Inputs, sys.Snaps, []bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
	// Process 0 ran solo: its snapshot is the singleton {x_0}.
	if sys.Snaps[0][0] != 5 || sys.Snaps[0][1] != NoValue || sys.Snaps[0][2] != NoValue {
		t.Fatalf("solo snapshot = %v", sys.Snaps[0])
	}
}
