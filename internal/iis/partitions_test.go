package iis

import (
	"testing"
)

func TestOrderedPartitionCounts(t *testing.T) {
	// Fubini numbers: the number of one-round IIS schedules.
	want := map[int]int{1: 1, 2: 3, 3: 13, 4: 75}
	for n, count := range want {
		if got := len(OrderedPartitions(n)); got != count {
			t.Errorf("OrderedPartitions(%d) = %d, want %d", n, got, count)
		}
	}
}

func TestBlocksSeen(t *testing.T) {
	bl := Blocks{{1}, {0, 2}}
	seen := bl.Seen(3)
	if len(seen[1]) != 1 || seen[1][0] != 1 {
		t.Errorf("seen[1] = %v, want [1]", seen[1])
	}
	for _, pid := range []int{0, 2} {
		if len(seen[pid]) != 3 {
			t.Errorf("seen[%d] = %v, want all three", pid, seen[pid])
		}
	}
}

func TestBlocksSeenSelfContained(t *testing.T) {
	for _, bl := range OrderedPartitions(3) {
		seen := bl.Seen(3)
		for pid := 0; pid < 3; pid++ {
			found := false
			for _, j := range seen[pid] {
				if j == pid {
					found = true
				}
			}
			if !found {
				t.Fatalf("partition %v: process %d does not see itself", bl, pid)
			}
		}
	}
}

func TestBlocksSeenInclusion(t *testing.T) {
	// Immediate-snapshot outcomes are totally ordered by inclusion.
	for _, bl := range OrderedPartitions(3) {
		seen := bl.Seen(3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !subsetInts(seen[i], seen[j]) && !subsetInts(seen[j], seen[i]) {
					t.Fatalf("partition %v: views %v and %v incomparable", bl, seen[i], seen[j])
				}
			}
		}
	}
}

func subsetInts(a, b []int) bool {
	set := map[int]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

func TestCollectOutcomesTwoProcsMatchIS(t *testing.T) {
	// For n = 2, one IC round has exactly the 3 immediate-snapshot
	// outcomes: the two solo views and the mutual view (§8, Figure 4).
	ic := CollectOutcomes(2)
	if len(ic) != 3 {
		t.Fatalf("CollectOutcomes(2) = %d outcomes, want 3", len(ic))
	}
	is := ISOutcomes(2)
	if len(is) != 3 {
		t.Fatalf("ISOutcomes(2) = %d outcomes, want 3", len(is))
	}
	if !sameOutcomeSets(ic, is) {
		t.Fatal("IC and IS one-round complexes differ for n = 2")
	}
}

func TestCollectOutcomesContainIS(t *testing.T) {
	// Every immediate-snapshot outcome is realizable as a collect, but for
	// n ≥ 3 collects admit strictly more outcomes (non-nested views) —
	// the IC/IS gap that Algorithm 5 bridges.
	for _, n := range []int{2, 3} {
		ic := outcomeSet(CollectOutcomes(n))
		for _, o := range ISOutcomes(n) {
			if !ic[outcomeKey(o)] {
				t.Errorf("n=%d: IS outcome %v not an IC outcome", n, o.Sees)
			}
		}
	}
	if len(CollectOutcomes(3)) <= len(ISOutcomes(3)) {
		t.Error("n=3: expected strictly more IC outcomes than IS outcomes")
	}
}

func TestCollectOutcomesNonNestedExists(t *testing.T) {
	found := false
	for _, o := range CollectOutcomes(3) {
		ordered := true
		for i := 0; i < 3 && ordered; i++ {
			for j := 0; j < 3; j++ {
				if !subsetInts(o.Sees[i], o.Sees[j]) && !subsetInts(o.Sees[j], o.Sees[i]) {
					ordered = false
					break
				}
			}
		}
		if !ordered {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no non-nested collect outcome for n=3; IC executor would equal IS")
	}
}

func TestCollectOutcomesMandatoryPrefix(t *testing.T) {
	// In every outcome, exactly one process may see only itself... at
	// most one: two distinct processes cannot both miss everyone, since
	// one of them writes first.
	for _, o := range CollectOutcomes(3) {
		soloCount := 0
		for i := 0; i < 3; i++ {
			if len(o.Sees[i]) == 1 {
				soloCount++
			}
		}
		if soloCount > 1 {
			t.Fatalf("outcome %v has %d solo views", o.Sees, soloCount)
		}
	}
}

func outcomeKey(o CollectOutcome) string {
	key := ""
	for _, s := range o.Sees {
		for _, v := range s {
			key += string(rune('a' + v))
		}
		key += "|"
	}
	return key
}

func outcomeSet(os []CollectOutcome) map[string]bool {
	m := make(map[string]bool, len(os))
	for _, o := range os {
		m[outcomeKey(o)] = true
	}
	return m
}

func sameOutcomeSets(a, b []CollectOutcome) bool {
	sa, sb := outcomeSet(a), outcomeSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
