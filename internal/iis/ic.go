package iis

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
)

// icSystem builds the processes of the generic full-information protocol
// (Algorithm 3) in the IC model: k rounds, each on a fresh array of n
// unbounded SWMR registers; in round r every process writes its view and
// collects the array, reading the registers one by one. Views are looked
// up in the universe (never interned), so membership in the reachable set
// is part of every run: the combinatorial one-round outcome enumeration
// (CollectOutcomes) must cover everything the operational model produces.
func icSystem(u *Universe, inputs []int) ([]sched.ProcFunc, Config) {
	n, k := u.N, u.K
	mems := make([]*memory.Shared, k)
	for r := range mems {
		mems[r] = memory.New(n, 0)
	}
	final := make(Config, n)

	procs := make([]sched.ProcFunc, n)
	for i := 0; i < n; i++ {
		procs[i] = func(p *sched.Proc) error {
			me := p.ID
			view := u.Lookup(0, me, inputs[me], nil)
			if view < 0 {
				return fmt.Errorf("ic: input %d of process %d not in universe", inputs[me], me)
			}
			for r := 1; r <= k; r++ {
				pm := memory.Bind(p, mems[r-1])
				if err := pm.Write(view); err != nil {
					return err
				}
				vals := pm.Collect()
				var seen []SeenEntry
				for j := 0; j < n; j++ {
					if vals[j] == nil {
						continue
					}
					id, ok := vals[j].(int)
					if !ok {
						return fmt.Errorf("ic: register %d holds %T", j, vals[j])
					}
					seen = append(seen, SeenEntry{Pid: j, View: id})
				}
				next := u.Lookup(r, me, 0, seen)
				if next < 0 {
					return fmt.Errorf("ic: process %d reached a round-%d view outside the universe (seen %v)", me, r, seen)
				}
				view = next
			}
			final[me] = view
			return nil
		}
	}
	return procs, final
}

// RunICFullInfo executes Algorithm 3 on the scheduler runtime and returns
// the final configuration.
func RunICFullInfo(u *Universe, inputs []int, scheduler sched.Scheduler) (Config, *sched.Result, error) {
	procs, final := icSystem(u, inputs)
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		return nil, nil, err
	}
	return final, res, nil
}

// ExploreICFullInfo exhaustively enumerates the interleavings of
// Algorithm 3 (feasible for n = 2 and small k) and calls visit with each
// final configuration.
func ExploreICFullInfo(u *Universe, inputs []int, visit func(Config, *sched.Result)) (int, error) {
	var final Config
	factory := func() []sched.ProcFunc {
		var procs []sched.ProcFunc
		procs, final = icSystem(u, inputs)
		return procs
	}
	return sched.ExploreAll(factory, 0, func(r *sched.Result) {
		visit(final, r)
	})
}
