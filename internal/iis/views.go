package iis

import (
	"fmt"
	"sort"
	"strings"
)

// Universe is the state space of a full-information protocol (Algorithm 3)
// over a finite input domain: the interned set of views reachable in any
// execution, and the round-indexed configuration sets
// C_0, C_1, ..., C_k of §7.1 used by Algorithm 4's round-preserving
// enumeration (Eq. 1).
//
// Views are interned: each distinct view gets an integer id, and a view at
// round r is the set of (process, round-(r-1) view id) pairs it saw.
// Alongside each view the universe tracks the midpoint estimate used by
// the ε-agreement decision map, as an exact rational num/2^round.
type Universe struct {
	// N is the number of processes.
	N int
	// K is the number of rounds enumerated.
	K int

	views []ViewInfo
	byKey map[string]int

	// Configs[r] lists the configurations (one view id per process)
	// reachable at round r, in canonical order. Configs[0] is the set of
	// initial configurations.
	Configs [][]Config

	cfgSets []map[string]bool
}

// Config is a global configuration: entry i is the view id of process i.
type Config []int

// ViewInfo describes one interned view.
type ViewInfo struct {
	// ID is the view's index in the universe.
	ID int
	// Round of the view (0 = initial/input view).
	Round int
	// Pid is the process holding the view.
	Pid int
	// Input is the process input (round 0 only).
	Input int
	// Seen lists (pid, view id) pairs of the previous round (round ≥ 1),
	// sorted by pid.
	Seen []SeenEntry
	// EstNum is the numerator of the midpoint estimate; the denominator
	// is 2^Round. Estimates realize the ε-agreement decision map.
	EstNum int
}

// SeenEntry is one component of a view: process Pid's previous-round view.
type SeenEntry struct {
	Pid  int
	View int
}

// key builds the canonical intern key of a view.
func viewKey(round, pid, input int, seen []SeenEntry) string {
	if round == 0 {
		return fmt.Sprintf("0|%d|%d", pid, input)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|", round, pid)
	for _, s := range seen {
		fmt.Fprintf(&sb, "%d:%d,", s.Pid, s.View)
	}
	return sb.String()
}

// NewUniverse enumerates the full-information protocol's reachable
// configurations for k rounds over all the given initial input vectors,
// with one-round branching given by outcomes (use CollectOutcomes(n) for
// the IC model, ISOutcomes(n) for the IIS model).
func NewUniverse(n, k int, inputVectors [][]int, outcomes []CollectOutcome) *Universe {
	u := &Universe{N: n, K: k, byKey: map[string]int{}}

	// Round 0: input views.
	var c0 []Config
	seenCfg := map[string]bool{}
	for _, xs := range inputVectors {
		cfg := make(Config, n)
		for i := 0; i < n; i++ {
			cfg[i] = u.intern(ViewInfo{Round: 0, Pid: i, Input: xs[i], EstNum: xs[i]})
		}
		key := cfg.key()
		if !seenCfg[key] {
			seenCfg[key] = true
			c0 = append(c0, cfg)
		}
	}
	sortConfigs(c0)
	u.Configs = append(u.Configs, c0)
	u.cfgSets = append(u.cfgSets, seenCfg)

	for r := 1; r <= k; r++ {
		var next []Config
		nextSeen := map[string]bool{}
		for _, cfg := range u.Configs[r-1] {
			for _, oc := range outcomes {
				ncfg := make(Config, n)
				for i := 0; i < n; i++ {
					ncfg[i] = u.successorView(r, i, cfg, oc.Sees[i])
				}
				key := ncfg.key()
				if !nextSeen[key] {
					nextSeen[key] = true
					next = append(next, ncfg)
				}
			}
		}
		sortConfigs(next)
		u.Configs = append(u.Configs, next)
		u.cfgSets = append(u.cfgSets, nextSeen)
	}
	return u
}

// successorView interns the round-r view of process i that saw the
// previous-round views cfg[j] for j in sees.
func (u *Universe) successorView(r, i int, cfg Config, sees []int) int {
	seen := make([]SeenEntry, len(sees))
	for idx, j := range sees {
		seen[idx] = SeenEntry{Pid: j, View: cfg[j]}
	}
	// Midpoint estimate: (min+max)/2 of the seen estimates, scaled to
	// denominator 2^r. A previous-round estimate a/2^(r-1) becomes 2a/2^r.
	lo, hi := 0, 0
	for idx, s := range seen {
		e := u.views[s.View].EstNum
		if idx == 0 || e < lo {
			lo = e
		}
		if idx == 0 || e > hi {
			hi = e
		}
	}
	return u.intern(ViewInfo{Round: r, Pid: i, Seen: seen, EstNum: lo + hi})
}

// intern returns the id of the view, adding it if new.
func (u *Universe) intern(v ViewInfo) int {
	key := viewKey(v.Round, v.Pid, v.Input, v.Seen)
	if id, ok := u.byKey[key]; ok {
		return id
	}
	v.ID = len(u.views)
	u.views = append(u.views, v)
	u.byKey[key] = v.ID
	return v.ID
}

// Lookup returns the id of an already-interned view, or -1.
func (u *Universe) Lookup(round, pid, input int, seen []SeenEntry) int {
	if id, ok := u.byKey[viewKey(round, pid, input, seen)]; ok {
		return id
	}
	return -1
}

// View returns the interned view with the given id.
func (u *Universe) View(id int) ViewInfo { return u.views[id] }

// NumViews returns the number of distinct views across all rounds.
func (u *Universe) NumViews() int { return len(u.views) }

// Estimate returns the midpoint estimate of view id as (num, den).
func (u *Universe) Estimate(id int) (num, den int) {
	v := u.views[id]
	return v.EstNum, 1 << v.Round
}

// HasConfig reports whether cfg is a reachable round-r configuration.
func (u *Universe) HasConfig(r int, cfg Config) bool {
	return u.cfgSets[r][cfg.key()]
}

// FlatConfigs returns the round-preserving enumeration (Eq. 1) of all
// configurations of rounds 0..k-1, the iteration space of Algorithm 4:
// iteration ρ (1-based in the paper, 0-based here) corresponds to
// FlatConfigs()[ρ], and the window for simulated round r is exactly the
// block of round-(r-1) configurations.
func (u *Universe) FlatConfigs() []Config {
	var out []Config
	for r := 0; r < u.K; r++ {
		out = append(out, u.Configs[r]...)
	}
	return out
}

// RoundWindow returns the half-open iteration interval [lo, hi) of
// FlatConfigs holding the round-(r-1) configurations used to simulate
// round r ∈ 1..K.
func (u *Universe) RoundWindow(r int) (lo, hi int) {
	for i := 0; i < r-1; i++ {
		lo += len(u.Configs[i])
	}
	return lo, lo + len(u.Configs[r-1])
}

func (c Config) key() string {
	var sb strings.Builder
	for _, id := range c {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

func sortConfigs(cs []Config) {
	sort.Slice(cs, func(a, b int) bool { return cs[a].key() < cs[b].key() })
}

// BinaryInputVectors returns all 2^n binary input assignments.
func BinaryInputVectors(n int) [][]int {
	var out [][]int
	for mask := 0; mask < 1<<n; mask++ {
		xs := make([]int, n)
		for i := 0; i < n; i++ {
			xs[i] = (mask >> i) & 1
		}
		out = append(out, xs)
	}
	return out
}
