package iis

import (
	"math/rand"
	"testing"
)

func TestUniverseTwoProcGrowth(t *testing.T) {
	// Figure 4: the 2-process IS protocol complex triples every round;
	// with all 4 binary input vectors there are 4·3^r configurations.
	u := NewUniverse(2, 3, BinaryInputVectors(2), ISOutcomes(2))
	want := 4
	for r := 0; r <= 3; r++ {
		if got := len(u.Configs[r]); got != want {
			t.Errorf("round %d: %d configurations, want %d", r, got, want)
		}
		want *= 3
	}
}

func TestUniverseSingleInputGrowth(t *testing.T) {
	// From a single mixed input, exactly 3^r configurations (executions).
	u := NewUniverse(2, 4, [][]int{{0, 1}}, ISOutcomes(2))
	want := 1
	for r := 0; r <= 4; r++ {
		if got := len(u.Configs[r]); got != want {
			t.Errorf("round %d: %d configurations, want 3^r = %d", r, got, want)
		}
		want *= 3
	}
}

func TestUniverseMidpointContraction(t *testing.T) {
	// Lemma 2.2 engine: the midpoint protocol's estimate spread halves
	// every round, in both the IS and the IC one-round complexes.
	for name, outcomes := range map[string][]CollectOutcome{
		"is-2": ISOutcomes(2),
		"ic-2": CollectOutcomes(2),
	} {
		u := NewUniverse(2, 4, BinaryInputVectors(2), outcomes)
		for r := 0; r <= 4; r++ {
			num, den := u.MaxRoundSpread(r)
			// num/den ≤ 1/2^r  ⇔  num·2^r ≤ den
			if num*(1<<r) > den {
				t.Errorf("%s round %d: spread %d/%d exceeds 1/2^%d", name, r, num, den, r)
			}
		}
	}
}

func TestUniverseMidpointContractionThreeProcs(t *testing.T) {
	u := NewUniverse(3, 2, BinaryInputVectors(3), CollectOutcomes(3))
	for r := 0; r <= 2; r++ {
		num, den := u.MaxRoundSpread(r)
		if num*(1<<r) > den {
			t.Errorf("round %d: spread %d/%d exceeds 1/2^%d", r, num, den, r)
		}
	}
}

func TestUniverseValidity(t *testing.T) {
	// With equal inputs x, every reachable estimate equals x.
	for _, x := range []int{0, 1} {
		u := NewUniverse(2, 3, [][]int{{x, x}}, ISOutcomes(2))
		for r := 0; r <= 3; r++ {
			for _, cfg := range u.Configs[r] {
				for _, id := range cfg {
					num, den := u.Estimate(id)
					if num != x*den {
						t.Fatalf("input %d round %d: estimate %d/%d", x, r, num, den)
					}
				}
			}
		}
	}
}

func TestApplyScheduleMatchesEnumeration(t *testing.T) {
	// Every schedule leads to a reachable configuration, and all
	// reachable configurations are hit by some schedule.
	u := NewUniverse(2, 3, [][]int{{0, 1}}, ISOutcomes(2))
	init, err := u.InitialConfig([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	ForEachSchedule(2, 3, func(s Schedule) bool {
		final := u.ApplySchedule(init, s)
		if !u.HasConfig(3, final) {
			t.Fatalf("schedule %v: final config unreachable", s)
		}
		hit[final.key()] = true
		return true
	})
	if len(hit) != len(u.Configs[3]) {
		t.Errorf("schedules hit %d configs, enumeration has %d", len(hit), len(u.Configs[3]))
	}
}

func TestCountSchedules(t *testing.T) {
	if got := CountSchedules(2, 4); got != 81 {
		t.Errorf("CountSchedules(2,4) = %d, want 81", got)
	}
	if got := CountSchedules(3, 2); got != 169 {
		t.Errorf("CountSchedules(3,2) = %d, want 169", got)
	}
}

func TestRandomScheduleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := RandomSchedule(3, 5, rng)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	for _, bl := range s {
		total := 0
		for _, b := range bl {
			total += len(b)
		}
		if total != 3 {
			t.Fatalf("partition %v does not cover 3 processes", bl)
		}
	}
}

func TestEstimateSpreadSingleConfig(t *testing.T) {
	u := NewUniverse(2, 1, [][]int{{0, 1}}, ISOutcomes(2))
	// Round-1 configs: p0 solo (ests 0, 1/2), p1 solo (1/2, 1), both
	// (1/2, 1/2). Max spread = 1/2.
	num, den := u.MaxRoundSpread(1)
	if num*2 != den {
		t.Errorf("round-1 max spread = %d/%d, want 1/2", num, den)
	}
}
