// Package iis implements the iterated models of §7 and their
// inter-simulations: the iterated immediate snapshot (IIS) model as
// ordered partitions (the one-round immediate-snapshot complex), the
// iterated collect (IC) model, the generic full-information protocol
// (Algorithm 3), the simulation of IC protocols in the IIS model with
// 1-bit registers (Algorithm 4, the engine of Theorem 1.4), and the
// Borowsky-Gafni snapshot in the IC model (Algorithm 5, Proposition 7.2).
package iis

import "sort"

// Blocks is one round of the IIS model: an ordered partition of the n
// processes. A process in block b obtains an immediate snapshot containing
// exactly the values written by processes in blocks 0..b.
type Blocks [][]int

// Seen returns, for each process, the sorted set of processes whose
// round-values it sees under this ordered partition.
func (bl Blocks) Seen(n int) [][]int {
	seen := make([][]int, n)
	var sofar []int
	for _, block := range bl {
		sofar = append(sofar, block...)
		cur := make([]int, len(sofar))
		copy(cur, sofar)
		sort.Ints(cur)
		for _, pid := range block {
			seen[pid] = cur
		}
	}
	return seen
}

// OrderedPartitions enumerates all ordered partitions of {0..n-1} (the
// one-round IIS schedules). Their number is the Fubini number: 1, 3, 13,
// 75, ... For two processes this is the 3-way branching of Figure 4.
func OrderedPartitions(n int) []Blocks {
	pids := make([]int, n)
	for i := range pids {
		pids[i] = i
	}
	var out []Blocks
	var rec func(rest []int, acc Blocks)
	rec = func(rest []int, acc Blocks) {
		if len(rest) == 0 {
			cp := make(Blocks, len(acc))
			for i, b := range acc {
				cb := make([]int, len(b))
				copy(cb, b)
				cp[i] = cb
			}
			out = append(out, cp)
			return
		}
		// Choose any non-empty subset of rest as the next block.
		m := len(rest)
		for mask := 1; mask < 1<<m; mask++ {
			var block, remain []int
			for b := 0; b < m; b++ {
				if mask&(1<<b) != 0 {
					block = append(block, rest[b])
				} else {
					remain = append(remain, rest[b])
				}
			}
			rec(remain, append(acc, block))
		}
	}
	rec(pids, nil)
	return out
}

// CollectOutcome is one possible result of a write-collect round of the IC
// model: Sees[i] is the sorted set of processes whose round-values process
// i read (always including i itself).
type CollectOutcome struct {
	Sees [][]int
}

// CollectOutcomes enumerates the possible outcomes of one IC round for n
// processes, each performing one write followed by reads of all registers.
// An outcome (S_1..S_n) is realizable iff there is a linear order π of the
// writes with S_i ⊇ {j : π(j) ≤ π(i)}: process i's reads happen after its
// own write, so it necessarily sees every earlier writer, and may or may
// not see later ones. For n = 2 this coincides with the 3 immediate
// snapshot outcomes; for n ≥ 3 it is strictly larger (views need not be
// ordered by inclusion), which is exactly the IC/IS gap of §7.
func CollectOutcomes(n int) []CollectOutcome {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	seenKeys := map[string]bool{}
	var out []CollectOutcome

	emit := func(sees [][]int) {
		key := ""
		for _, s := range sees {
			for _, v := range s {
				key += string(rune('a' + v))
			}
			key += "|"
		}
		if !seenKeys[key] {
			seenKeys[key] = true
			cp := make([][]int, n)
			for i, s := range sees {
				cs := make([]int, len(s))
				copy(cs, s)
				cp[i] = cs
			}
			out = append(out, CollectOutcome{Sees: cp})
		}
	}

	var permute func(k int)
	var withExtras func(order []int)

	withExtras = func(order []int) {
		// pos[j] = position of j's write in the order.
		pos := make([]int, n)
		for idx, pid := range order {
			pos[pid] = idx
		}
		// For process i, mandatory set = writers at positions ≤ pos[i];
		// optional set = later writers, each seen or not independently.
		type choice struct {
			pid      int
			optional []int
		}
		choices := make([]choice, n)
		for i := 0; i < n; i++ {
			var opt []int
			for j := 0; j < n; j++ {
				if pos[j] > pos[i] {
					opt = append(opt, j)
				}
			}
			choices[i] = choice{pid: i, optional: opt}
		}
		sees := make([][]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				emit(sees)
				return
			}
			opt := choices[i].optional
			for mask := 0; mask < 1<<len(opt); mask++ {
				var s []int
				for j := 0; j < n; j++ {
					if pos[j] <= pos[i] {
						s = append(s, j)
					}
				}
				for b, j := range opt {
					if mask&(1<<b) != 0 {
						s = append(s, j)
					}
				}
				sort.Ints(s)
				sees[i] = s
				rec(i + 1)
			}
		}
		rec(0)
	}

	permute = func(k int) {
		if k == n {
			withExtras(perm)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return out
}

// ISOutcomes converts ordered partitions into the same shape as
// CollectOutcomes, for comparing the two one-round complexes.
func ISOutcomes(n int) []CollectOutcome {
	parts := OrderedPartitions(n)
	out := make([]CollectOutcome, len(parts))
	for i, bl := range parts {
		out[i] = CollectOutcome{Sees: bl.Seen(n)}
	}
	return out
}
