package iis

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
)

// bgCell is the (value, done) pair written by Algorithm 5 in every
// iteration: the process's input for the simulated IS round and whether it
// has already obtained its snapshot.
type bgCell struct {
	Val  int
	Done bool
}

// NoValue marks an absent entry (⊥) in a snapshot vector.
const NoValue = -1

// Alg5System is one instance of the Borowsky-Gafni snapshot algorithm
// adapted to the IC model (Algorithm 5): n processes simulate one round of
// the IS model with n write/collect iterations on fresh memories
// M_1..M_n. Snaps[i][j] is x_j if process i's simulated immediate snapshot
// contains process j's input, NoValue (⊥) otherwise.
type Alg5System struct {
	N      int
	Inputs []int
	Snaps  [][]int
	mems   []*memory.Shared
}

// NewAlg5System builds a fresh instance.
func NewAlg5System(inputs []int) *Alg5System {
	n := len(inputs)
	s := &Alg5System{
		N:      n,
		Inputs: append([]int(nil), inputs...),
		Snaps:  make([][]int, n),
		mems:   make([]*memory.Shared, n),
	}
	for rho := range s.mems {
		s.mems[rho] = memory.New(n, 0)
	}
	return s
}

// Procs returns the n process functions.
func (s *Alg5System) Procs() []sched.ProcFunc {
	procs := make([]sched.ProcFunc, s.N)
	for i := range procs {
		procs[i] = s.proc
	}
	return procs
}

func (s *Alg5System) proc(p *sched.Proc) error {
	n, i := s.N, p.ID
	si := make([]int, n)
	for j := range si {
		si[j] = NoValue
	}
	done := false
	for rho := 1; rho <= n; rho++ {
		pm := memory.Bind(p, s.mems[rho-1])
		// Line 3: write (x_i, b_i).
		if err := pm.Write(bgCell{Val: s.Inputs[i], Done: done}); err != nil {
			return err
		}
		// Line 4: collect.
		vals := pm.Collect()
		if done {
			continue
		}
		// Line 5: exactly n+1-ρ processes seen without a snapshot?
		var fresh []int
		for j := 0; j < n; j++ {
			cell, ok := vals[j].(bgCell)
			if !ok {
				continue // ⊥
			}
			if cell.Val != s.Inputs[j] {
				return fmt.Errorf("alg5: register %d holds input %d, want %d", j, cell.Val, s.Inputs[j])
			}
			if !cell.Done {
				fresh = append(fresh, j)
			}
		}
		if len(fresh) == n+1-rho {
			// Lines 6-11: adopt the fresh entries as the snapshot.
			for _, j := range fresh {
				si[j] = s.Inputs[j]
			}
			done = true
		}
	}
	if !done {
		return fmt.Errorf("alg5: process %d finished %d iterations without a snapshot", i, n)
	}
	s.Snaps[i] = si
	return nil
}

// RunAlg5 executes Algorithm 5 under the scheduler and returns the system.
func RunAlg5(inputs []int, scheduler sched.Scheduler) (*Alg5System, *sched.Result, error) {
	sys := NewAlg5System(inputs)
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, sys.Procs())
	if err != nil {
		return nil, nil, err
	}
	return sys, res, nil
}

// ExploreAlg5 enumerates all interleavings (feasible for n = 2) and calls
// visit on each completed system.
func ExploreAlg5(inputs []int, visit func(*Alg5System, *sched.Result)) (int, error) {
	var sys *Alg5System
	factory := func() []sched.ProcFunc {
		sys = NewAlg5System(inputs)
		return sys.Procs()
	}
	return sched.ExploreAll(factory, 0, func(r *sched.Result) {
		visit(sys, r)
	})
}

// CheckImmediateSnapshots validates the immediate-snapshot properties of
// §7 ("Preliminaries") on the snapshots of the correct processes:
//
//   - Validity:          S_i[j] ∈ {x_j, ⊥};
//   - Self-containment:  S_i[i] ≠ ⊥;
//   - Inclusion:         S_i ⊆ S_j or S_j ⊆ S_i;
//   - Immediacy:         S_i[j] ≠ ⊥ ⇒ S_j ⊆ S_i.
func CheckImmediateSnapshots(inputs []int, snaps [][]int, correct []bool) error {
	n := len(inputs)
	subset := func(a, b []int) bool {
		for j := 0; j < n; j++ {
			if a[j] != NoValue && b[j] != a[j] {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		if !correct[i] {
			continue
		}
		si := snaps[i]
		if si == nil {
			return fmt.Errorf("process %d has no snapshot", i)
		}
		if si[i] != inputs[i] {
			return fmt.Errorf("self-containment: S_%d[%d] = %d", i, i, si[i])
		}
		for j := 0; j < n; j++ {
			if si[j] != NoValue && si[j] != inputs[j] {
				return fmt.Errorf("validity: S_%d[%d] = %d, want %d or ⊥", i, j, si[j], inputs[j])
			}
		}
		for j := 0; j < n; j++ {
			if i == j || !correct[j] || snaps[j] == nil {
				continue
			}
			if !subset(si, snaps[j]) && !subset(snaps[j], si) {
				return fmt.Errorf("inclusion: S_%d and S_%d incomparable: %v vs %v", i, j, si, snaps[j])
			}
			if si[j] != NoValue && !subset(snaps[j], si) {
				return fmt.Errorf("immediacy: S_%d contains %d but S_%d ⊄ S_%d", i, j, j, i)
			}
		}
	}
	return nil
}
