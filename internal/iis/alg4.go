package iis

import (
	"fmt"
	"sort"
)

// Alg4Result is the outcome of one run of Algorithm 4: the simulated
// final configuration of the IC protocol, plus the per-round simulated
// configurations for inspection.
type Alg4Result struct {
	// Final is the simulated round-K configuration.
	Final Config
	// PerRound[r] is the simulated configuration after round r
	// (PerRound[0] is the initial configuration).
	PerRound []Config
	// Iterations is the number of 1-bit immediate-snapshot iterations
	// executed (N = Σ_{0≤ℓ<K} |C_ℓ|, the paper's Eq. 1 enumeration).
	Iterations int
	// Bits is the register width used per iteration memory (always 1).
	Bits int
}

// Alg4Iterations returns N, the number of 1-bit IIS iterations Algorithm 4
// needs to simulate all K rounds of the IC protocol enumerated by u.
func Alg4Iterations(u *Universe) int {
	total := 0
	for r := 0; r < u.K; r++ {
		total += len(u.Configs[r])
	}
	return total
}

// RunAlg4 simulates the full-information IC protocol in the IIS model with
// 1-bit registers (Algorithm 4, Proposition 7.1), under the given IIS
// schedule: one ordered partition per iteration, len(schedule) == N.
//
// Round r of the IC protocol is simulated by |C_{r-1}| iterations, one per
// round-(r-1) configuration c_ρ in the round-preserving enumeration. In
// iteration ρ, process i writes the single bit [c_ρ[i] == W_i^{r-1}] into
// its 1-bit register of memory M_ρ and takes an immediate snapshot; every
// j with bit 1 contributes the view c_ρ[j] to W_i^r. The simulated views
// are validated against the universe at every round: Lemma 7.1 asserts
// they are reachable by the IC protocol, and a lookup failure would
// falsify it.
func RunAlg4(u *Universe, inputs []int, schedule Schedule) (*Alg4Result, error) {
	n := u.N
	needed := Alg4Iterations(u)
	if len(schedule) != needed {
		return nil, fmt.Errorf("alg4: schedule has %d iterations, need N = %d", len(schedule), needed)
	}
	init, err := u.InitialConfig(inputs)
	if err != nil {
		return nil, err
	}

	flat := u.FlatConfigs()
	w := make(Config, n)
	copy(w, init)
	result := &Alg4Result{PerRound: []Config{append(Config(nil), w...)}, Iterations: needed, Bits: 1}

	for r := 1; r <= u.K; r++ {
		lo, hi := u.RoundWindow(r)
		// acc[i] maps pid j -> contributed view id (W_i^r as a set).
		acc := make([]map[int]int, n)
		for i := range acc {
			acc[i] = make(map[int]int)
		}
		for rho := lo; rho < hi; rho++ {
			cfg := flat[rho]
			// Line 7-10: the bit each process writes into M_ρ[i].
			bits := make([]int, n)
			for i := 0; i < n; i++ {
				if cfg[i] == w[i] {
					bits[i] = 1
				}
			}
			// Line 11: immediate snapshot of the 1-bit memory under the
			// adversary's ordered partition for this iteration.
			seen := schedule[rho].Seen(n)
			// Line 12: collect the views encoded by 1-bits.
			for i := 0; i < n; i++ {
				for _, j := range seen[i] {
					if bits[j] != 1 {
						continue
					}
					if prev, ok := acc[i][j]; ok && prev != cfg[j] {
						return nil, fmt.Errorf("alg4: process %d collected two views for %d (round %d)", i, j, r)
					}
					acc[i][j] = cfg[j]
				}
			}
		}
		// End of the round window: intern-free lookup of each W_i^r.
		next := make(Config, n)
		for i := 0; i < n; i++ {
			seen := make([]SeenEntry, 0, len(acc[i]))
			for j, id := range acc[i] {
				seen = append(seen, SeenEntry{Pid: j, View: id})
			}
			sort.Slice(seen, func(a, b int) bool { return seen[a].Pid < seen[b].Pid })
			id := u.Lookup(r, i, 0, seen)
			if id < 0 {
				return nil, fmt.Errorf("alg4: process %d simulated an unreachable round-%d view %v (Lemma 7.1 violated)", i, r, seen)
			}
			next[i] = id
		}
		if !u.HasConfig(r, next) {
			return nil, fmt.Errorf("alg4: simulated round-%d configuration %v unreachable (Lemma 7.1 violated)", r, next)
		}
		w = next
		result.PerRound = append(result.PerRound, append(Config(nil), w...))
	}
	result.Final = w
	return result, nil
}
