package iis

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// TestUniverseTernaryRangeContraction: the midpoint protocol contracts
// any integer input range, not just binary — spread ≤ range/2^r.
func TestUniverseTernaryRangeContraction(t *testing.T) {
	inputs := [][]int{{0, 4}, {4, 0}, {0, 0}, {4, 4}, {0, 2}, {2, 4}}
	u := NewUniverse(2, 3, inputs, ISOutcomes(2))
	for r := 0; r <= 3; r++ {
		num, den := u.MaxRoundSpread(r)
		// num/den ≤ 4/2^r ⇔ num·2^r ≤ 4·den
		if num*(1<<r) > 4*den {
			t.Errorf("round %d: spread %d/%d exceeds 4/2^%d", r, num, den, r)
		}
	}
}

// TestUniverseViewsNested: a round-r view's seen entries reference only
// round-(r-1) views of the right processes.
func TestUniverseViewsNested(t *testing.T) {
	u := NewUniverse(2, 3, BinaryInputVectors(2), ISOutcomes(2))
	for id := 0; id < u.NumViews(); id++ {
		v := u.View(id)
		if v.Round == 0 {
			continue
		}
		selfSeen := false
		for _, s := range v.Seen {
			sub := u.View(s.View)
			if sub.Round != v.Round-1 {
				t.Fatalf("view %d at round %d references round-%d view", id, v.Round, sub.Round)
			}
			if sub.Pid != s.Pid {
				t.Fatalf("view %d: seen entry pid %d holds view of pid %d", id, s.Pid, sub.Pid)
			}
			if s.Pid == v.Pid {
				selfSeen = true
			}
		}
		if !selfSeen {
			t.Fatalf("view %d does not contain its own previous view", id)
		}
	}
}

// TestUniverseLookupConsistency: Lookup finds exactly the interned views.
func TestUniverseLookupConsistency(t *testing.T) {
	u := NewUniverse(2, 2, BinaryInputVectors(2), ISOutcomes(2))
	for id := 0; id < u.NumViews(); id++ {
		v := u.View(id)
		got := u.Lookup(v.Round, v.Pid, v.Input, v.Seen)
		if got != id {
			t.Fatalf("Lookup of view %d returned %d", id, got)
		}
	}
	if u.Lookup(0, 0, 99, nil) != -1 {
		t.Fatal("Lookup invented a view")
	}
}

// TestRoundWindowPartition: the windows tile 0..N exactly.
func TestRoundWindowPartition(t *testing.T) {
	u := NewUniverse(2, 3, BinaryInputVectors(2), CollectOutcomes(2))
	pos := 0
	for r := 1; r <= u.K; r++ {
		lo, hi := u.RoundWindow(r)
		if lo != pos {
			t.Fatalf("round %d window starts at %d, want %d", r, lo, pos)
		}
		if hi-lo != len(u.Configs[r-1]) {
			t.Fatalf("round %d window size %d, want %d", r, hi-lo, len(u.Configs[r-1]))
		}
		pos = hi
	}
	if pos != Alg4Iterations(u) {
		t.Fatalf("windows cover %d, want N = %d", pos, Alg4Iterations(u))
	}
}

// TestISOutcomesMatchPartitions: ordered partitions and their seen-sets
// are in bijection.
func TestISOutcomesMatchPartitions(t *testing.T) {
	for _, n := range []int{2, 3} {
		parts := OrderedPartitions(n)
		outs := ISOutcomes(n)
		if len(parts) != len(outs) {
			t.Fatalf("n=%d: %d partitions vs %d outcomes", n, len(parts), len(outs))
		}
		dedup := outcomeSet(outs)
		if len(dedup) != len(outs) {
			t.Fatalf("n=%d: duplicate IS outcomes", n)
		}
	}
}

// TestApplyScheduleDeterministic: same schedule, same final config.
func TestApplyScheduleDeterministic(t *testing.T) {
	u := NewUniverse(2, 4, [][]int{{0, 1}}, ISOutcomes(2))
	init, err := u.InitialConfig([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		s := RandomSchedule(2, 4, rng)
		a := u.ApplySchedule(init, s)
		b := u.ApplySchedule(init, s)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("nondeterministic ApplySchedule")
			}
		}
	}
}

// TestInitialConfigRejectsUnknownInput: inputs outside the universe fail.
func TestInitialConfigRejectsUnknownInput(t *testing.T) {
	u := NewUniverse(2, 1, BinaryInputVectors(2), ISOutcomes(2))
	if _, err := u.InitialConfig([]int{0, 7}); err == nil {
		t.Fatal("unknown input accepted")
	}
}

// TestAlg4SoloLateProcess: an IIS schedule in which process 0 is always
// in the first block alone — process 1 still simulates correctly
// (validity: its decision is within the input range).
func TestAlg4SoloLateProcess(t *testing.T) {
	u := NewUniverse(2, 2, BinaryInputVectors(2), CollectOutcomes(2))
	n := Alg4Iterations(u)
	s := make(Schedule, n)
	for i := range s {
		s[i] = Blocks{{0}, {1}}
	}
	res, err := RunAlg4(u, []int{0, 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	// Process 0 never sees process 1: its estimate must remain 0.
	num, den := u.Estimate(res.Final[0])
	if num != 0 {
		t.Fatalf("solo-ahead process estimate %d/%d, want 0", num, den)
	}
	// Process 1 sees process 0 in every iteration where 0 writes 1.
	n1, d1 := u.Estimate(res.Final[1])
	if n1 < 0 || n1 > d1 {
		t.Fatalf("late process estimate %d/%d out of range", n1, d1)
	}
}

// TestAlg5InputsPreserved: the snapshot vectors only ever contain the
// actual inputs.
func TestAlg5InputsPreserved(t *testing.T) {
	inputs := []int{100, 200, 300}
	for seed := int64(0); seed < 50; seed++ {
		sys, res, err := RunAlg5(inputs, sched.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		if e := res.Err(); e != nil {
			t.Fatal(e)
		}
		for i, s := range sys.Snaps {
			for j, v := range s {
				if v != NoValue && v != inputs[j] {
					t.Fatalf("seed %d: S_%d[%d] = %d", seed, i, j, v)
				}
			}
		}
	}
}
