package iis

import (
	"fmt"
	"math/rand"
)

// Schedule is one IIS execution: one ordered partition per round (or per
// iteration, for iterated simulations like Algorithm 4).
type Schedule []Blocks

// RandomSchedule draws a schedule of the given length uniformly over
// ordered partitions of n processes.
func RandomSchedule(n, rounds int, rng *rand.Rand) Schedule {
	parts := OrderedPartitions(n)
	s := make(Schedule, rounds)
	for r := range s {
		s[r] = parts[rng.Intn(len(parts))]
	}
	return s
}

// ForEachSchedule enumerates all |OrderedPartitions(n)|^rounds schedules
// and calls visit on each; visit returning false stops the enumeration.
// For n = 2 this is the 3^rounds executions of Figure 4.
func ForEachSchedule(n, rounds int, visit func(Schedule) bool) {
	parts := OrderedPartitions(n)
	s := make(Schedule, rounds)
	var rec func(r int) bool
	rec = func(r int) bool {
		if r == rounds {
			return visit(s)
		}
		for _, p := range parts {
			s[r] = p
			if !rec(r + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// CountSchedules returns |OrderedPartitions(n)|^rounds.
func CountSchedules(n, rounds int) int {
	per := len(OrderedPartitions(n))
	total := 1
	for i := 0; i < rounds; i++ {
		total *= per
	}
	return total
}

// ApplySchedule runs the full-information protocol from the initial
// configuration cfg under the given IIS schedule, interning any new views,
// and returns the resulting configuration (round len(schedule)).
func (u *Universe) ApplySchedule(cfg Config, schedule Schedule) Config {
	cur := cfg
	for r, bl := range schedule {
		seen := bl.Seen(u.N)
		next := make(Config, u.N)
		for i := 0; i < u.N; i++ {
			next[i] = u.successorView(r+1, i, cur, seen[i])
		}
		cur = next
	}
	return cur
}

// InitialConfig returns the round-0 configuration for the given inputs,
// or an error if it was not part of the universe's input vectors.
func (u *Universe) InitialConfig(inputs []int) (Config, error) {
	cfg := make(Config, u.N)
	for i := 0; i < u.N; i++ {
		id := u.Lookup(0, i, inputs[i], nil)
		if id < 0 {
			return nil, fmt.Errorf("iis: input %d of process %d not in universe", inputs[i], i)
		}
		cfg[i] = id
	}
	return cfg, nil
}

// EstimateSpread returns the maximum pairwise distance between the
// midpoint estimates of a configuration's views, as an exact rational
// (num, den). All views of one configuration share the round, hence the
// denominator.
func (u *Universe) EstimateSpread(cfg Config) (num, den int) {
	lo, hi := 0, 0
	den = 1
	for idx, id := range cfg {
		e, d := u.Estimate(id)
		den = d
		if idx == 0 || e < lo {
			lo = e
		}
		if idx == 0 || e > hi {
			hi = e
		}
	}
	return hi - lo, den
}

// MaxRoundSpread returns the worst estimate spread over all reachable
// round-r configurations whose inputs were mixed, as (num, den). It is
// the empirical contraction curve of the midpoint protocol: the paper's
// Lemma 2.2 machinery guarantees spread ≤ den/2^r... i.e. num/den ≤ 1/2^r.
func (u *Universe) MaxRoundSpread(r int) (num, den int) {
	worstNum, worstDen := 0, 1
	for _, cfg := range u.Configs[r] {
		n, d := u.EstimateSpread(cfg)
		// Compare n/d > worstNum/worstDen.
		if n*worstDen > worstNum*d {
			worstNum, worstDen = n, d
		}
	}
	return worstNum, worstDen
}
