package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

// syntheticRegistry builds a registry of deterministic experiments
// (distinct tables per id) and an execution counter shared by all of
// its runners.
func syntheticRegistry(ids ...string) (map[string]experiments.Runner, *atomic.Int64) {
	executions := new(atomic.Int64)
	reg := make(map[string]experiments.Runner, len(ids))
	for _, id := range ids {
		id := id
		reg[id] = func() (*experiments.Table, error) {
			executions.Add(1)
			return &experiments.Table{
				ID:      id,
				Title:   "synthetic " + id,
				Headers: []string{"k", "v"},
				Rows:    [][]string{{id, "value-of-" + id}},
				Notes:   []string{"note for " + id},
			}, nil
		}
	}
	return reg, executions
}

// newWorker stands up one figuresd-equivalent worker over reg.
func newWorker(t *testing.T, reg map[string]experiments.Runner) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Options{Registry: reg}))
	t.Cleanup(ts.Close)
	return ts
}

// encodeAll renders results in every format, concatenated — a single
// byte string to compare sharded output against local output with.
func encodeAll(t *testing.T, results []experiments.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, format := range []string{"text", "json", "csv"} {
		encode, err := experiments.LookupEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		if err := encode(&buf, results); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// localBaseline runs ids through the in-process engine on a fresh
// (uncounted) copy of the synthetic registry.
func localBaseline(t *testing.T, ids []string) []byte {
	t.Helper()
	reg, _ := syntheticRegistry(ids...)
	results, err := experiments.Run(context.Background(), experiments.Options{
		IDs: ids, Jobs: 1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return encodeAll(t, results)
}

// deadAddr returns a host:port that is guaranteed closed: it was just
// listened on and released.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestShardedRunByteIdentical is the coordinator's core guarantee: a
// run fanned out over a two-worker fleet merges to bytes identical to
// a serial local run, in every format, with nothing executed locally.
func TestShardedRunByteIdentical(t *testing.T) {
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6"}
	fleetReg, fleetExecs := syntheticRegistry(ids...)
	w1 := newWorker(t, fleetReg)
	w2 := newWorker(t, fleetReg)

	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{w1.URL, w2.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("sharded output differs from local run:\n%s\nvs\n%s", got, want)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("healthy fleet, but %d experiments ran locally", n)
	}
	if n := fleetExecs.Load(); n != int64(len(ids)) {
		t.Errorf("fleet executed %d runners, want %d", n, len(ids))
	}
	st := coord.Stats()
	if st.WorkersHealthy != 2 || st.Remote != int64(len(ids)) || st.Local != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Per-worker fetch accounting: every attempt landed on some worker,
	// none failed, and each worker's latency histogram saw exactly its
	// fetches.
	if len(st.Workers) != 2 {
		t.Fatalf("worker stats = %+v, want 2 entries", st.Workers)
	}
	var fetches int64
	for _, w := range st.Workers {
		fetches += w.Fetches
		if w.Errors != 0 {
			t.Errorf("worker %s: %d fetch errors on a healthy fleet", w.Addr, w.Errors)
		}
		if w.Latency.Count != w.Fetches {
			t.Errorf("worker %s: histogram count %d != fetches %d", w.Addr, w.Latency.Count, w.Fetches)
		}
		if w.Fetches > 0 && w.Latency.P95Millis < w.Latency.P50Millis {
			t.Errorf("worker %s: quantiles out of order: %+v", w.Addr, w.Latency)
		}
	}
	if fetches != int64(len(ids)) {
		t.Errorf("fleet fetch total = %d, want %d", fetches, len(ids))
	}
}

// TestServerErrorFailsOver: a worker that answers 500 to every
// experiment request loses each experiment to the healthy worker, and
// the merged output is unchanged.
func TestServerErrorFailsOver(t *testing.T) {
	ids := []string{"E1", "E2", "E3"}
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "internal meltdown", http.StatusInternalServerError)
	}))
	defer broken.Close()
	fleetReg, fleetExecs := syntheticRegistry(ids...)
	healthy := newWorker(t, fleetReg)

	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{broken.URL, healthy.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("output differs after 500-failover:\n%s\nvs\n%s", got, want)
	}
	if n := fleetExecs.Load(); n != int64(len(ids)) {
		t.Errorf("healthy worker executed %d, want %d", n, len(ids))
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d experiments fell back locally despite a healthy worker", n)
	}
	st := coord.Stats()
	if st.Failovers == 0 {
		t.Errorf("stats = %+v, want failovers > 0", st)
	}
	// A 500 is an HTTP-level failure, not a dead worker: the broken
	// worker must still count as healthy (it answered).
	if st.WorkersHealthy != 2 {
		t.Errorf("healthy = %d, want 2 (500s must not mark a worker dead)", st.WorkersHealthy)
	}
	// The broken worker's failures are on its record — fetches,
	// errors, and latency observations alike — so a fast-failing
	// worker is visibly failing, not suspiciously idle.
	for _, w := range st.Workers {
		if w.Addr != broken.URL {
			continue
		}
		if w.Fetches == 0 || w.Errors != w.Fetches || w.Latency.Count != w.Fetches {
			t.Errorf("broken worker record = %+v, want every fetch errored and recorded", w)
		}
	}
}

// TestGarbageJSONFailsOver: a worker that answers 200 with an
// undecodable body is failed over exactly like a 500.
func TestGarbageJSONFailsOver(t *testing.T) {
	ids := []string{"E1", "E2"}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		fmt.Fprint(w, `{"this is": ["not a result slice`)
	}))
	defer garbage.Close()
	fleetReg, _ := syntheticRegistry(ids...)
	healthy := newWorker(t, fleetReg)

	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{garbage.URL, healthy.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("output differs after garbage-JSON failover:\n%s\nvs\n%s", got, want)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d experiments fell back locally despite a healthy worker", n)
	}
}

// TestDeadFleetFallsBackLocal: with every worker unreachable, the run
// degrades to local execution and still produces the exact local
// bytes.
func TestDeadFleetFallsBackLocal(t *testing.T) {
	ids := []string{"E1", "E2", "E3"}
	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{deadAddr(t), deadAddr(t)},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.WorkersHealthy != 0 {
		t.Fatalf("probe marked %d dead workers healthy", st.WorkersHealthy)
	}
	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("local-fallback output differs:\n%s\nvs\n%s", got, want)
	}
	if n := localExecs.Load(); n != int64(len(ids)) {
		t.Errorf("local executions = %d, want %d", n, len(ids))
	}
	st = coord.Stats()
	if st.Remote != 0 || st.Local != int64(len(ids)) {
		t.Errorf("stats = %+v, want all local", st)
	}
}

// TestWorkerKilledMidRun: a worker that dies after the coordinator's
// probe is marked unhealthy on its first transport error and the rest
// of the run flows to the survivor — output unchanged.
func TestWorkerKilledMidRun(t *testing.T) {
	ids := []string{"E1", "E2", "E3", "E4"}
	fleetReg, _ := syntheticRegistry(ids...)
	doomed := newWorker(t, fleetReg)
	survivor := newWorker(t, fleetReg)

	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{doomed.URL, survivor.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord.Stats().WorkersHealthy; got != 2 {
		t.Fatalf("healthy before kill = %d", got)
	}
	doomed.CloseClientConnections()
	doomed.Close()

	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("output differs after mid-run kill:\n%s\nvs\n%s", got, want)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d experiments fell back locally despite a survivor", n)
	}
	st := coord.Stats()
	if st.WorkersHealthy != 1 {
		t.Errorf("healthy after kill = %d, want 1 (dead worker must be evicted)", st.WorkersHealthy)
	}
	if st.Remote != int64(len(ids)) {
		t.Errorf("remote = %d, want %d", st.Remote, len(ids))
	}
}

// TestDeterministicFailureReproducedLocally: an experiment that fails
// on the worker (500) and fails locally too merges as the same failed
// Result a pure local run produces — byte-identical even for errors.
func TestDeterministicFailureReproducedLocally(t *testing.T) {
	reg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) {
			return nil, fmt.Errorf("deterministic defect")
		},
	}
	w := newWorker(t, reg)
	coord, err := New(Options{
		Workers: []string{w.URL},
		Local:   experiments.Options{Registry: reg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{"E1"})
	if err != nil {
		t.Fatal(err)
	}
	local, err := experiments.Run(context.Background(), experiments.Options{
		IDs: []string{"E1"}, Jobs: 1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), encodeAll(t, local); !bytes.Equal(got, want) {
		t.Errorf("failed-experiment bytes differ:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.Local != 1 {
		t.Errorf("stats = %+v, want the failure re-run locally", st)
	}
}

// TestRunUnknownID mirrors the engine contract: configuration
// mistakes are errors, not failed results.
func TestRunUnknownID(t *testing.T) {
	reg, _ := syntheticRegistry("E1")
	w := newWorker(t, reg)
	coord, err := New(Options{
		Workers: []string{w.URL},
		Local:   experiments.Options{Registry: reg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background(), []string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestNewRejectsEmptyFleet: a coordinator with no workers is a
// configuration mistake (callers run the engine directly instead).
func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty worker list accepted")
	}
}

// TestRunDefaultsToRegistryOrder: empty ids means the whole local
// registry in index order, matching the engine.
func TestRunDefaultsToRegistryOrder(t *testing.T) {
	ids := []string{"E1", "E2", "E10"} // E2 must sort before E10
	fleetReg, _ := syntheticRegistry(ids...)
	w := newWorker(t, fleetReg)
	localReg, _ := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{w.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range results {
		got = append(got, r.ID)
	}
	if strings.Join(got, ",") != "E1,E2,E10" {
		t.Fatalf("default order = %v", got)
	}
}

// TestPickLeastLoaded pins the selection rule: the healthy untried
// worker with the fewest in-flight requests wins, charged one slot.
func TestPickLeastLoaded(t *testing.T) {
	busy := &worker{base: "http://busy"}
	busy.healthy.Store(true)
	busy.inflight.Store(7) // the coordinator's own outstanding requests
	idle := &worker{base: "http://idle"}
	idle.healthy.Store(true)
	dead := &worker{base: "http://dead"}
	c := &Coordinator{workers: []*worker{busy, idle, dead}, now: time.Now}

	if w := c.pick(nil); w != idle {
		t.Fatalf("pick = %v, want the idle worker", w)
	}
	if n := idle.inflight.Load(); n != 1 {
		t.Fatalf("picked worker charged %d in-flight, want 1", n)
	}
	// With the idle worker already tried, load must route to busy —
	// never to the unhealthy one.
	if w := c.pick(map[*worker]bool{idle: true}); w != busy {
		t.Fatalf("second pick = %v, want the busy worker", w)
	}
	if w := c.pick(map[*worker]bool{idle: true, busy: true}); w != nil {
		t.Fatalf("exhausted pick = %v, want nil", w)
	}
}

// TestProbeSeedsBaselineLoad: a worker busy serving other clients at
// probe time starts deprioritized — its /stats in-flight count is the
// seed the first pick sees.
func TestProbeSeedsBaselineLoad(t *testing.T) {
	reg, _ := syntheticRegistry("E1")
	quiet := newWorker(t, reg)

	// A fake worker whose /stats reports heavy in-flight load.
	loaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, "ok")
		case "/stats":
			fmt.Fprint(w, `{"registry_version":"x","in_flight":42,"requests":100,"experiments":{}}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer loaded.Close()

	coord, err := New(Options{
		Workers: []string{loaded.URL, quiet.URL},
		Local:   experiments.Options{Registry: reg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := coord.pick(nil)
	if w == nil || w.base != quiet.URL {
		t.Fatalf("first pick = %+v, want the quiet worker (baseline 42 vs 0)", w)
	}
}

// TestBaselineExpires: the scraped /stats in-flight count describes
// startup, not steady state — once its TTL passes it stops inflating
// the worker's load.
func TestBaselineExpires(t *testing.T) {
	w := &worker{base: "http://w", baseline: 42}
	now := time.Now()
	w.baselineUntil = now.Add(time.Minute)
	if got := w.load(now); got != 42 {
		t.Fatalf("fresh baseline load = %d, want 42", got)
	}
	w.baselineUntil = now.Add(-time.Second)
	if got := w.load(now); got != 0 {
		t.Fatalf("expired baseline load = %d, want 0", got)
	}
}

// fakeClock is an injectable coordinator clock (Options.Now) that
// tests advance manually, so eviction-revival and baseline-expiry
// behavior is asserted without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestEvictedWorkerRevives: eviction is not forever — after
// ReviveAfter a live request may re-try the worker, and one success
// restores it to full rotation (the property that lets a figuresd
// -peers front daemon survive worker restarts). The coordinator runs
// on an injected clock: no real sleeps.
func TestEvictedWorkerRevives(t *testing.T) {
	reg, _ := syntheticRegistry("E1")
	w := newWorker(t, reg)
	localReg, _ := syntheticRegistry("E1")
	clk := newFakeClock()
	coord, err := New(Options{
		Workers:     []string{w.URL},
		ReviveAfter: time.Minute,
		Now:         clk.Now,
		Local:       experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wk := coord.workers[0]
	coord.evict(wk)
	if wk.selectable(clk.Now()) {
		t.Fatal("just-evicted worker is selectable")
	}
	if got := coord.pick(nil); got != nil {
		got.inflight.Add(-1)
		t.Fatal("pick returned an evicted worker inside the revive window")
	}
	clk.Advance(time.Minute + time.Second)
	got := coord.pick(nil)
	if got != wk {
		t.Fatal("evicted worker not offered for revival after ReviveAfter")
	}
	got.inflight.Add(-1)
	// A real request through the revival path restores full health.
	results, err := coord.Run(context.Background(), []string{"E1"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("revival run failed: %v", results[0].Err)
	}
	st := coord.Stats()
	if st.WorkersHealthy != 1 || st.Remote != 1 {
		t.Fatalf("stats after revival = %+v, want the worker healthy and serving", st)
	}
}

// TestFetchTimeoutDoesNotKillWorker: a single slow experiment hits
// the per-request timeout and fails over, but the worker stays
// healthy — slow is not dead.
func TestFetchTimeoutDoesNotKillWorker(t *testing.T) {
	slowReg := map[string]experiments.Runner{
		"E1": func() (*experiments.Table, error) {
			time.Sleep(2 * time.Second)
			return &experiments.Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	// The worker's own execution timeout is shorter than the runner so
	// its handler (which test cleanup waits on) returns promptly; the
	// coordinator's request timeout still fires first.
	slow := httptest.NewServer(server.New(server.Options{
		Registry: slowReg,
		Timeout:  500 * time.Millisecond,
	}))
	defer slow.Close()
	localReg, localExecs := syntheticRegistry("E1")
	coord, err := New(Options{
		Workers:        []string{slow.URL},
		RequestTimeout: 200 * time.Millisecond,
		Local:          experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{"E1"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("result = %+v, want the local fallback's success", results[0])
	}
	if n := localExecs.Load(); n != 1 {
		t.Fatalf("local executions = %d, want 1 (timeout falls back)", n)
	}
	st := coord.Stats()
	if st.WorkersHealthy != 1 {
		t.Fatalf("healthy = %d, want 1 (a timeout must not mark the worker dead)", st.WorkersHealthy)
	}
}
