package shard

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/server"

	"net/http/httptest"
)

// openFrontStore opens an artifact store with pinned build versions,
// so tests can compute entry paths and surgically remove or corrupt
// individual artifacts. The registry version stays the real one: the
// store must accept the envelopes real workers serve.
func openFrontStore(t *testing.T) (*cache.Store, string, cache.ArtifactKey) {
	t.Helper()
	dir := t.TempDir()
	store, err := cache.Open(dir, cache.Options{GoVersion: "gotest", ModuleVersion: "repro@test"})
	if err != nil {
		t.Fatal(err)
	}
	wholeKey := cache.ArtifactKey{
		ID:            "E2",
		SpaceVersion:  experiments.RegistryVersion,
		GoVersion:     "gotest",
		ModuleVersion: "repro@test",
	}
	return store, dir, wholeKey
}

// hierarchyFixture stands up a two-worker fleet plus a coordinator
// whose Local.Cache is a real artifact store — the read-through
// hierarchy under test.
func hierarchyFixture(t *testing.T) (*Coordinator, *cache.Store, string, cache.ArtifactKey, func() int64) {
	t.Helper()
	const id = "E2"
	w1, execs1 := newShardableWorker(t, id)
	w2, execs2 := newShardableWorker(t, id)
	store, dir, wholeKey := openFrontStore(t)
	localReg, localShs, localExecs := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1, Cache: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetExecs := func() int64 { return execs1.Load() + execs2.Load() + localExecs.Load() }
	return coord, store, dir, wholeKey, fleetExecs
}

// removeWholeEntry deletes the merged whole-result artifact, leaving
// only the slice artifacts — the state that forces the coordinator to
// carve again and exercise per-range read-through.
func removeWholeEntry(t *testing.T, dir string, wholeKey cache.ArtifactKey) {
	t.Helper()
	if err := os.Remove(filepath.Join(dir, wholeKey.Fingerprint()+".json")); err != nil {
		t.Fatalf("whole-result artifact not found: %v", err)
	}
}

// TestRangesServedFromFrontStore: with the whole result gone but the
// slices warm, a sharded run executes zero explorations anywhere —
// every range is read through the front store — and still emits the
// single-process bytes; the merged whole is stored back.
func TestRangesServedFromFrontStore(t *testing.T) {
	const id = "E2"
	coord, store, dir, wholeKey, fleetExecs := hierarchyFixture(t)
	cold, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	coldExecs := fleetExecs()
	if coldExecs == 0 {
		t.Fatal("cold run explored nothing")
	}
	if st := store.Stats(); st.SliceStores != 4 {
		t.Fatalf("cold run stored %d slices, want 4", st.SliceStores)
	}
	removeWholeEntry(t, dir, wholeKey)

	warm, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if n := fleetExecs(); n != coldExecs {
		t.Errorf("warm run explored %d more slices", n-coldExecs)
	}
	if got, want := encodeAll(t, warm), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("warm bytes differ from the single-process run:\n%s\nvs\n%s", got, want)
	}
	if got, want := encodeAll(t, warm), encodeAll(t, cold); !bytes.Equal(got, want) {
		t.Errorf("warm bytes differ from cold:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.PrefixRangesCached != 4 {
		t.Errorf("ranges cached = %d, want 4", st.PrefixRangesCached)
	}
	if st.PrefixRangesRemote != 4 || st.PrefixRangesLocal != 0 {
		t.Errorf("stats = %+v, want only the cold run's 4 remote ranges", st)
	}
	// The merged whole was stored back: a third run is a whole hit.
	if _, err := os.Stat(filepath.Join(dir, wholeKey.Fingerprint()+".json")); err != nil {
		t.Errorf("merged whole result not stored back: %v", err)
	}
	third, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if !third[0].Cached {
		t.Error("third run not served from the whole-result artifact")
	}
}

// TestCorruptSliceReExploresThatRangeOnly: a corrupt slice artifact
// costs exactly one range — the other three still read through, the
// damaged one is re-fetched from the fleet (and the corruption is
// counted), and the bytes stay identical.
func TestCorruptSliceReExploresThatRangeOnly(t *testing.T) {
	const id = "E2"
	coord, store, dir, wholeKey, fleetExecs := hierarchyFixture(t)
	if _, err := coord.Run(context.Background(), []string{id}); err != nil {
		t.Fatal(err)
	}
	coldExecs := fleetExecs()
	removeWholeEntry(t, dir, wholeKey)
	// Corrupt one of the remaining artifacts — all four are slices now.
	slices, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(slices) != 4 {
		t.Fatalf("slice artifacts = %v (%v)", slices, err)
	}
	raw, err := os.ReadFile(slices[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(slices[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, warm), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("bytes differ after slice corruption:\n%s\nvs\n%s", got, want)
	}
	if n := fleetExecs(); n != coldExecs+1 {
		t.Errorf("corruption cost %d explorations, want exactly 1", n-coldExecs)
	}
	st := coord.Stats()
	if st.PrefixRangesCached != 3 {
		t.Errorf("ranges cached = %d, want 3", st.PrefixRangesCached)
	}
	if st.PrefixRangesRemote != 5 {
		t.Errorf("remote ranges = %d, want the cold 4 plus 1 re-fetch", st.PrefixRangesRemote)
	}
	if cs := store.Stats(); cs.Corrupt == 0 {
		t.Errorf("corruption not counted: %+v", cs)
	}
}

// TestLocalRangesStoredBack: ranges that fall back to local
// exploration (fleet without slice support) are stored too, so even a
// degraded run warms the hierarchy for the next one.
func TestLocalRangesStoredBack(t *testing.T) {
	const id = "E2"
	reg, _, _ := shardableFixture(id)
	w1 := httptest.NewServer(server.New(server.Options{
		Registry:   reg,
		Shardables: map[string]experiments.Shardable{},
	}))
	defer w1.Close()
	w2 := httptest.NewServer(server.New(server.Options{
		Registry:   reg,
		Shardables: map[string]experiments.Shardable{},
	}))
	defer w2.Close()
	store, dir, wholeKey := openFrontStore(t)
	localReg, localShs, localExecs := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1, Cache: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background(), []string{id}); err != nil {
		t.Fatal(err)
	}
	coldLocal := localExecs.Load()
	if coldLocal != 4 {
		t.Fatalf("cold local explorations = %d, want 4", coldLocal)
	}
	removeWholeEntry(t, dir, wholeKey)
	warm, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if n := localExecs.Load(); n != coldLocal {
		t.Errorf("warm run explored %d more ranges locally", n-coldLocal)
	}
	if got, want := encodeAll(t, warm), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("warm bytes differ:\n%s\nvs\n%s", got, want)
	}
	if st := coord.Stats(); st.PrefixRangesCached != 4 {
		t.Errorf("ranges cached = %d, want 4", st.PrefixRangesCached)
	}
}
