package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/server"
)

// sliceAgg is the synthetic order-insensitive aggregate of the test
// shardable: slices sum counts and pid totals.
type sliceAgg struct {
	Count int `json:"count"`
	Sum   int `json:"sum"`
}

func (a *sliceAgg) Merge(o experiments.Aggregate) error {
	b, ok := o.(*sliceAgg)
	if !ok {
		return fmt.Errorf("cannot merge %T", o)
	}
	a.Count += b.Count
	a.Sum += b.Sum
	return nil
}

// newTestShardable builds a synthetic prefix-shardable experiment
// over a fixed 8-root partition, plus a counter of Explore calls (the
// shard-level analogue of the registries' execution counters).
func newTestShardable(id string) (experiments.Shardable, *atomic.Int64) {
	execs := new(atomic.Int64)
	sh := experiments.Shardable{
		Roots: func() ([][]int, error) {
			return [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}, nil
		},
		Explore: func(roots [][]int) (experiments.Aggregate, error) {
			execs.Add(1)
			a := &sliceAgg{}
			for _, r := range roots {
				a.Count++
				a.Sum += r[0]
			}
			return a, nil
		},
		Decode: func(data []byte) (experiments.Aggregate, error) {
			var a sliceAgg
			if err := json.Unmarshal(data, &a); err != nil {
				return nil, err
			}
			return &a, nil
		},
		Finish: func(agg experiments.Aggregate) (*experiments.Table, error) {
			a, ok := agg.(*sliceAgg)
			if !ok {
				return nil, fmt.Errorf("finish on %T", agg)
			}
			return &experiments.Table{
				ID:      id,
				Title:   "synthetic shardable " + id,
				Headers: []string{"quantity", "value"},
				Rows: [][]string{
					{"ranges", fmt.Sprint(a.Count)},
					{"pid sum", fmt.Sprint(a.Sum)},
				},
				Notes: []string{"aggregate must cover the whole partition"},
			}, nil
		},
	}
	return sh, execs
}

// shardableRunner is the whole-space Runner of a Shardable — the local
// baseline a sharded run must re-encode byte-identically.
func shardableRunner(sh experiments.Shardable) experiments.Runner {
	return func() (*experiments.Table, error) {
		roots, err := sh.Roots()
		if err != nil {
			return nil, err
		}
		agg, err := sh.Explore(roots)
		if err != nil {
			return nil, err
		}
		return sh.Finish(agg)
	}
}

// shardableFixture stands up a registry + shardable pair for one
// synthetic prefix-shardable experiment.
func shardableFixture(id string) (map[string]experiments.Runner, map[string]experiments.Shardable, *atomic.Int64) {
	sh, execs := newTestShardable(id)
	reg := map[string]experiments.Runner{id: shardableRunner(sh)}
	return reg, map[string]experiments.Shardable{id: sh}, execs
}

// prefixBaseline renders the local single-process bytes of the
// synthetic shardable experiment.
func prefixBaseline(t *testing.T, id string) []byte {
	t.Helper()
	reg, _, _ := shardableFixture(id)
	results, err := experiments.Run(context.Background(), experiments.Options{
		IDs: []string{id}, Jobs: 1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return encodeAll(t, results)
}

// newShardableWorker stands up a worker that serves both whole
// experiments and prefix slices of the synthetic shardable.
func newShardableWorker(t *testing.T, id string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	reg, shs, execs := shardableFixture(id)
	ts := httptest.NewServer(server.New(server.Options{Registry: reg, Shardables: shs}))
	t.Cleanup(ts.Close)
	return ts, execs
}

// TestPrefixShardedByteIdentical: with two healthy workers, a
// shardable experiment is split into prefix ranges across the fleet
// and the merged table re-encodes byte-identically to a local run,
// with nothing explored locally.
func TestPrefixShardedByteIdentical(t *testing.T) {
	const id = "E2"
	w1, execs1 := newShardableWorker(t, id)
	w2, execs2 := newShardableWorker(t, id)

	localReg, localShs, localExecs := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("prefix-sharded output differs from local run:\n%s\nvs\n%s", got, want)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d slices explored locally despite a healthy fleet", n)
	}
	if execs1.Load()+execs2.Load() == 0 {
		t.Error("no worker explored any slice")
	}
	st := coord.Stats()
	if st.PrefixSharded != 1 || st.PrefixRangesLocal != 0 || st.RangesReassigned != 0 {
		t.Errorf("stats = %+v", st)
	}
	// 8 roots over 2 selectable workers carve into 4 ranges.
	if st.PrefixRangesRemote != 4 {
		t.Errorf("remote ranges = %d, want 4", st.PrefixRangesRemote)
	}
	if st.Remote != 0 || st.Local != 0 {
		t.Errorf("whole-experiment counters moved on a prefix-sharded run: %+v", st)
	}
}

// TestPrefixRangeFailoverMidBatch is the failover gate: a worker that
// passes the startup probe and then dies before serving its prefix
// ranges has every range reassigned to the survivor — the merged
// table stays byte-identical, no range is dropped, and the dead
// worker leaves the healthy set.
func TestPrefixRangeFailoverMidBatch(t *testing.T) {
	const id = "E2"
	reg, shs, _ := shardableFixture(id)
	inner := server.New(server.Options{Registry: reg, Shardables: shs})
	doomed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/experiments/") {
			// Dead mid-batch: cut the connection so the coordinator
			// sees a transport error, not an HTTP failure.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer doomed.Close()
	survivor, survivorExecs := newShardableWorker(t, id)

	localReg, localShs, localExecs := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{doomed.URL, survivor.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord.Stats().WorkersHealthy; got != 2 {
		t.Fatalf("healthy before batch = %d", got)
	}
	results, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("output differs after mid-batch kill:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.RangesReassigned == 0 {
		t.Error("no range reassigned despite a dead worker")
	}
	if st.PrefixRangesRemote != 4 {
		t.Errorf("remote ranges = %d, want all 4 served by the survivor", st.PrefixRangesRemote)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d slices explored locally despite a survivor", n)
	}
	if survivorExecs.Load() == 0 {
		t.Error("survivor explored nothing")
	}
	if st.WorkersHealthy != 1 {
		t.Errorf("healthy after batch = %d, want 1", st.WorkersHealthy)
	}
	if st.PrefixSharded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPrefixFleetWithoutSliceSupport: a fleet that rejects ?prefixes=
// (version skew: workers predate the protocol, spelled here as an
// empty Shardables map) fails every range attempt, and each range is
// explored locally — reassigned, never dropped, bytes unchanged.
func TestPrefixFleetWithoutSliceSupport(t *testing.T) {
	const id = "E2"
	reg, _, _ := shardableFixture(id)
	w1 := httptest.NewServer(server.New(server.Options{
		Registry:   reg,
		Shardables: map[string]experiments.Shardable{},
	}))
	defer w1.Close()
	w2 := httptest.NewServer(server.New(server.Options{
		Registry:   reg,
		Shardables: map[string]experiments.Shardable{},
	}))
	defer w2.Close()

	localReg, localShs, localExecs := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("output differs when fleet lacks slice support:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.PrefixRangesLocal != 4 || st.PrefixRangesRemote != 0 {
		t.Errorf("stats = %+v, want all 4 ranges local", st)
	}
	if n := localExecs.Load(); n != 4 {
		t.Errorf("local slice explorations = %d, want 4", n)
	}
	// A 400 is an HTTP-level failure: the workers stay healthy.
	if st.WorkersHealthy != 2 {
		t.Errorf("healthy = %d, want 2", st.WorkersHealthy)
	}
}

// TestPrefixShardingNeedsTwoWorkers: with a single worker there is no
// intra-experiment parallelism to win, so the shardable experiment is
// fetched whole (keeping the worker's cache in play).
func TestPrefixShardingNeedsTwoWorkers(t *testing.T) {
	const id = "E2"
	w, execs := newShardableWorker(t, id)
	localReg, localShs, _ := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("single-worker output differs:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.PrefixSharded != 0 || st.Remote != 1 {
		t.Errorf("stats = %+v, want one whole remote fetch", st)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("worker explorations = %d, want 1 whole run", n)
	}
}

// TestPrefixDeadFleetFallsBackWhole: a shardable experiment over an
// entirely dead fleet degrades like any other — the whole experiment
// runs through the local engine, bytes unchanged.
func TestPrefixDeadFleetFallsBackWhole(t *testing.T) {
	const id = "E2"
	localReg, localShs, _ := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{deadAddr(t), deadAddr(t)},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), prefixBaseline(t, id); !bytes.Equal(got, want) {
		t.Errorf("dead-fleet output differs:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.PrefixSharded != 0 || st.Local != 1 {
		t.Errorf("stats = %+v, want one whole local run", st)
	}
}

// TestVersionSkewedWorkerRejected: a worker on a different experiment
// generation answers 200 with decodable bytes from the wrong
// registry; both defenses must hold — the probe's /stats version
// check starts it evicted, and the per-response header check fails
// any fetch that reaches it anyway — so the run flows to the
// same-generation worker and the bytes stay byte-identical.
func TestVersionSkewedWorkerRejected(t *testing.T) {
	ids := []string{"E1", "E2"}
	reg, _ := syntheticRegistry(ids...)
	current := newWorker(t, reg)

	// A worker from another generation: valid table responses, but
	// /stats and the response header advertise a different registry.
	skewReg, skewExecs := syntheticRegistry(ids...)
	skewInner := server.New(server.Options{Registry: skewReg})
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			fmt.Fprint(w, `{"registry_version":"other-gen/v9","in_flight":0,"requests":0,"experiments":{}}`)
			return
		}
		rec := httptest.NewRecorder()
		skewInner.ServeHTTP(rec, r)
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set(server.RegistryVersionHeader, "other-gen/v9")
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer skewed.Close()

	localReg, localExecs := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{skewed.URL, current.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord.Stats().WorkersHealthy; got != 1 {
		t.Fatalf("healthy after probe = %d, want 1 (skewed worker must start evicted)", got)
	}
	results, err := coord.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeAll(t, results), localBaseline(t, ids); !bytes.Equal(got, want) {
		t.Errorf("output differs with a version-skewed worker in the fleet:\n%s\nvs\n%s", got, want)
	}
	if n := skewExecs.Load(); n != 0 {
		t.Errorf("skewed worker executed %d experiments", n)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d experiments fell back locally despite a current worker", n)
	}

	// The header check alone must also reject: force a fetch at the
	// skewed worker and watch the attempt fail.
	wk := coord.workers[0]
	if _, err := coord.fetch(context.Background(), wk, "E1"); err == nil {
		t.Fatal("fetch from a version-skewed worker succeeded")
	}
}

// memCache is a minimal experiments.Cache for coordinator tests.
type memCache struct {
	mu sync.Mutex
	m  map[string]experiments.Result
}

func newMemCache() *memCache { return &memCache{m: make(map[string]experiments.Result)} }

func (c *memCache) Get(id string) (experiments.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[id]
	return r, ok
}

func (c *memCache) Put(id string, r experiments.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[id] = r
	return nil
}

// TestPrefixShardedWarmCacheHit: a warm whole result must stay a
// cache hit — the coordinator consults its own store before carving
// (slices bypass every content-addressed cache), and a sharded
// success warms that store for the next run.
func TestPrefixShardedWarmCacheHit(t *testing.T) {
	const id = "E2"
	w1, execs1 := newShardableWorker(t, id)
	w2, execs2 := newShardableWorker(t, id)
	localReg, localShs, localExecs := shardableFixture(id)
	cache := newMemCache()
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1, Cache: cache},
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	fleetCold := execs1.Load() + execs2.Load()
	if fleetCold == 0 {
		t.Fatal("cold run explored nothing remotely")
	}
	warm, err := coord.Run(context.Background(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if n := execs1.Load() + execs2.Load(); n != fleetCold {
		t.Errorf("warm run explored %d more slices on the fleet", n-fleetCold)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("warm run explored %d slices locally", n)
	}
	if !warm[0].Cached {
		t.Error("warm result not marked cached")
	}
	if got, want := encodeAll(t, warm), encodeAll(t, cold); !bytes.Equal(got, want) {
		t.Errorf("warm bytes differ from cold:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.PrefixSharded != 1 {
		t.Errorf("stats = %+v, want exactly the cold run sharded", st)
	}
}

// TestSplitRanges pins the carving rule: contiguous, near-even,
// non-empty, order-preserving.
func TestSplitRanges(t *testing.T) {
	roots := [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	for _, tc := range []struct {
		n    int
		want []int // range sizes
	}{
		{1, []int{8}},
		{2, []int{4, 4}},
		{3, []int{2, 3, 3}},
		{8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{20, []int{1, 1, 1, 1, 1, 1, 1, 1}}, // capped at len(roots)
		{0, []int{8}},                       // floor of one range
	} {
		got := splitRanges(roots, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("splitRanges(8 roots, %d) carved %d ranges, want %d", tc.n, len(got), len(tc.want))
		}
		next := 0
		for i, rng := range got {
			if len(rng) != tc.want[i] {
				t.Fatalf("splitRanges(8, %d) range %d has %d roots, want %d", tc.n, i, len(rng), tc.want[i])
			}
			for _, r := range rng {
				if r[0] != next {
					t.Fatalf("splitRanges(8, %d) not contiguous at %v", tc.n, r)
				}
				next++
			}
		}
		if next != len(roots) {
			t.Fatalf("splitRanges(8, %d) covered %d roots", tc.n, next)
		}
	}
}
