package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/trace"
)

// kindSet collapses a trace to the set of event kinds it recorded.
func kindSet(tr trace.Trace) map[string]bool {
	out := make(map[string]bool)
	for _, ev := range tr.Events {
		out[ev.Kind] = true
	}
	return out
}

// TestPrefixShardedTraceEndToEnd is the tracing tentpole's
// acceptance gate at package level: one prefix-sharded run under a
// coordinator journal produces a single trace whose ID also names the
// request in every worker's journal (header propagation), with a
// carve event, one worker_selected + fetch pair per range annotated
// with the worker and in-flight count, and worker-side explore events
// for the same ranges.
func TestPrefixShardedTraceEndToEnd(t *testing.T) {
	const id = "E2"
	j1, j2 := trace.NewJournal(0, 0), trace.NewJournal(0, 0)
	reg1, shs1, _ := shardableFixture(id)
	w1 := httptest.NewServer(server.New(server.Options{Registry: reg1, Shardables: shs1, Journal: j1}))
	t.Cleanup(w1.Close)
	reg2, shs2, _ := shardableFixture(id)
	w2 := httptest.NewServer(server.New(server.Options{Registry: reg2, Shardables: shs2, Journal: j2}))
	t.Cleanup(w2.Close)

	journal := trace.NewJournal(0, 0)
	localReg, localShs, _ := shardableFixture(id)
	coord, err := New(Options{
		Workers:    []string{w1.URL, w2.URL},
		Shardables: localShs,
		Local:      experiments.Options{Registry: localReg, Jobs: 1},
		Journal:    journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background(), []string{id}); err != nil {
		t.Fatal(err)
	}

	traces := journal.Traces()
	if len(traces) != 1 {
		t.Fatalf("coordinator journal holds %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.What != "run "+id {
		t.Fatalf("trace What = %q", tr.What)
	}
	kinds := kindSet(tr)
	if !kinds[trace.KindCarve] {
		t.Fatalf("no carve event in %+v", tr.Events)
	}
	// 8 roots over 2 workers carve into 4 ranges: each range gets a
	// selection (annotated with worker + in-flight) and a fetch, all
	// tagged with its canonical prefix rendering.
	selected := make(map[string]bool)
	fetched := make(map[string]bool)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.KindWorkerSelected:
			if ev.Worker == "" || !strings.Contains(ev.Detail, "in-flight") {
				t.Fatalf("selection event missing worker/load: %+v", ev)
			}
			selected[ev.Range] = true
		case trace.KindFetch:
			if ev.Worker == "" || ev.Range == "" {
				t.Fatalf("fetch event missing worker/range: %+v", ev)
			}
			fetched[ev.Range] = true
		}
	}
	if len(selected) != 4 || len(fetched) != 4 {
		t.Fatalf("selected %d ranges, fetched %d, want 4 each: %+v", len(selected), len(fetched), tr.Events)
	}

	// The same ID names this request on the workers: each worker's
	// journal holds the trace with explore events for the ranges it
	// served — the evidence the Repro-Request-ID header crossed over.
	workerRanges := make(map[string]bool)
	for i, wj := range []*trace.Journal{j1, j2} {
		wtr, ok := wj.Get(tr.ID)
		if !ok {
			t.Fatalf("worker %d journal has no trace %s (header not propagated?)", i+1, tr.ID)
		}
		for _, ev := range wtr.Events {
			if ev.Kind == trace.KindExplore {
				workerRanges[ev.Range] = true
			}
		}
	}
	if len(workerRanges) != 4 {
		t.Fatalf("workers journaled explorations for %d ranges, want 4", len(workerRanges))
	}
	for r := range fetched {
		if !workerRanges[r] {
			t.Fatalf("range %s fetched by the coordinator but explored by no worker", r)
		}
	}
}

// TestWholeFetchTraceRetryAndFallback: a fleet of one broken worker
// and one dead worker journals the whole story — selection, retry
// with the failure detail, eviction of the dead worker, and the local
// fallback that finally served the experiment.
func TestWholeFetchTraceRetryAndFallback(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	journal := trace.NewJournal(0, 0)
	reg, _ := syntheticRegistry("E1")
	coord, err := New(Options{
		Workers: []string{broken.URL},
		Local:   experiments.Options{Registry: reg, Jobs: 1},
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.RunOne(context.Background(), "E1")
	if err != nil || res.Err != nil {
		t.Fatalf("run = %+v, %v", res, err)
	}

	traces := journal.Traces()
	if len(traces) != 1 {
		t.Fatalf("journal holds %d traces, want 1", len(traces))
	}
	kinds := kindSet(traces[0])
	for _, want := range []string{trace.KindWorkerSelected, trace.KindRetry, trace.KindLocalFallback} {
		if !kinds[want] {
			t.Errorf("no %s event in %+v", want, traces[0].Events)
		}
	}
	var retryDetail string
	for _, ev := range traces[0].Events {
		if ev.Kind == trace.KindRetry {
			retryDetail = ev.Detail
		}
	}
	if !strings.Contains(retryDetail, "status 500") {
		t.Errorf("retry detail = %q, want the failure's status", retryDetail)
	}
}

// TestServerBackendTraceSharesID: mounted as a server backend
// (figuresd -peers), the coordinator journals under the ID the
// serving layer minted — the shared-journal wiring that makes a
// front-door /trace/{id} show both layers.
func TestServerBackendTraceSharesID(t *testing.T) {
	const id = "E1"
	fleetReg, _ := syntheticRegistry(id)
	w := newWorker(t, fleetReg)

	journal := trace.NewJournal(0, 0)
	localReg, _ := syntheticRegistry(id)
	coord, err := New(Options{
		Workers: []string{w.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	frontReg, _ := syntheticRegistry(id)
	front := httptest.NewServer(server.New(server.Options{
		Registry: frontReg,
		Backend:  coord.RunOne,
		Journal:  journal,
	}))
	t.Cleanup(front.Close)

	resp, err := http.Get(front.URL + "/experiments/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reqID := resp.Header.Get(trace.Header)
	if reqID == "" {
		t.Fatal("front door echoed no trace ID")
	}
	tr, ok := journal.Get(reqID)
	if !ok {
		t.Fatalf("shared journal has no trace %s", reqID)
	}
	kinds := kindSet(tr)
	// One span holds both layers: the serving layer's request/done and
	// the coordinator's selection/fetch.
	for _, want := range []string{trace.KindRequest, trace.KindWorkerSelected, trace.KindFetch, trace.KindDone} {
		if !kinds[want] {
			t.Errorf("no %s event in the shared span: %+v", want, tr.Events)
		}
	}
}
