// Package shard distributes an experiment run across a fleet of
// figuresd workers: the HTTP fan-out coordinator the serving layer
// (internal/server) was built for. Each experiment is fetched from a
// worker via GET /experiments/{id}?format=json, decoded with
// experiments.DecodeJSON, and merged back in request order — and
// because the JSON wire form is a pure function of experiment outputs,
// sharded output is byte-identical to a local run, the invariant every
// test and CI gate here pins.
//
// The coordinator owns worker health end to end:
//
//   - startup: every worker's /healthz is probed concurrently; a
//     worker that fails the probe starts unhealthy and is never
//     selected. Its /stats in-flight count (server.StatsResponse)
//     seeds the load accounting, so a worker that is already busy
//     serving other clients starts deprioritized.
//   - selection: least-loaded — the healthy untried worker with the
//     fewest in-flight requests (scraped baseline + the coordinator's
//     own accounting) wins. A bounded per-worker in-flight cap
//     (DefaultMaxInFlight) keeps one slow worker from serializing the
//     batch: once a worker is saturated, work flows to its peers.
//   - failure: every request carries its own timeout. A transport
//     error (connection refused, reset, EOF — a killed worker) evicts
//     the worker; an HTTP-level failure (non-200, undecodable body,
//     mismatched id) only fails the attempt. Either way the
//     experiment fails over to the next worker, bounded by
//     Options.Retries distinct workers. Eviction is not forever: a
//     coordinator can outlive a worker restart (cmd/figuresd -peers
//     runs one for the daemon's whole life), so after ReviveAfter a
//     live request is allowed to re-try an evicted worker, and one
//     success restores it to full rotation.
//   - fallback: an experiment that exhausts the fleet — including the
//     whole fleet being unreachable — runs locally through the
//     in-process engine with the coordinator's Local options, so a
//     sharded run degrades to a local run rather than failing.
//
// Deterministic experiment failures are reproduced by the fallback:
// a worker reports them as HTTP 500, the coordinator fails over and
// finally re-runs locally, producing the same failed Result (and the
// same encoded bytes) a local run would have.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

const (
	// DefaultRequestTimeout bounds one remote experiment fetch —
	// generous because a cold exhaustive exploration legitimately
	// takes up to the worker's own execution timeout (2m default).
	DefaultRequestTimeout = 3 * time.Minute
	// DefaultProbeTimeout bounds the startup /healthz and /stats
	// probes; a worker that cannot answer a liveness check in this
	// window is not worth routing experiments to.
	DefaultProbeTimeout = 5 * time.Second
	// DefaultMaxInFlight caps concurrent requests per worker so a
	// slow worker holds at most this many experiments while its
	// peers absorb the rest of the batch.
	DefaultMaxInFlight = 4
	// DefaultReviveAfter is how long an evicted worker stays out of
	// rotation before a live request may re-try it — long enough not
	// to hammer a dead host, short enough that a restarted worker
	// rejoins a long-lived coordinator promptly.
	DefaultReviveAfter = 15 * time.Second
	// baselineTTL bounds how long the /stats in-flight count scraped
	// at probe time keeps inflating a worker's load: the snapshot
	// describes startup, not steady state, so it expires rather than
	// skewing selection forever.
	baselineTTL = 30 * time.Second
)

// Options configures New. Workers is the only required field.
type Options struct {
	// Workers lists the fleet as host:port addresses (a scheme-full
	// URL is accepted too). Order is irrelevant: selection is by
	// load, not position.
	Workers []string
	// Client overrides the HTTP client; nil means a default client
	// (per-request timeouts come from RequestTimeout, not the client).
	Client *http.Client
	// RequestTimeout bounds each remote experiment fetch; <= 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// ProbeTimeout bounds the startup health probes; <= 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// MaxInFlight caps concurrent requests per worker; <= 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// Retries is the number of distinct workers tried per experiment
	// before falling back to local execution; <= 0 means every
	// worker.
	Retries int
	// ReviveAfter is how long an evicted worker stays unselectable
	// before a live request may re-try it; <= 0 means
	// DefaultReviveAfter.
	ReviveAfter time.Duration
	// Local configures the in-process fallback engine (Registry,
	// Cache, Timeout; Jobs bounds how many fallback experiments run
	// concurrently). IDs is ignored — the coordinator fills it per
	// experiment.
	Local experiments.Options
	// Logf receives one line per notable event (unreachable worker,
	// failover, fallback); nil means silent.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of a coordinator's traffic counters.
type Stats struct {
	// WorkersTotal and WorkersHealthy describe the fleet now — a
	// worker that died mid-batch has already left WorkersHealthy.
	WorkersTotal, WorkersHealthy int
	// Remote counts experiments served by the fleet, Local those that
	// fell back to the in-process engine.
	Remote, Local int64
	// Failovers counts failed attempts that moved an experiment to
	// another worker (or, when none remained, to the local fallback).
	Failovers int64
}

// worker is one fleet member and its load accounting.
type worker struct {
	base     string        // http://host:port, no trailing slash
	sem      chan struct{} // bounds in-flight requests to this worker
	inflight atomic.Int64  // the coordinator's own in-flight count
	healthy  atomic.Bool
	retryAt  atomic.Int64 // unix nanos after which eviction may be re-tried

	// baseline is the worker's /stats in-flight count at probe time
	// (load from clients this coordinator cannot see), counted toward
	// selection until baselineUntil. Written only during New's probe,
	// before any pick can run.
	baseline      int64
	baselineUntil time.Time
}

// selectable reports whether the worker may receive a request:
// healthy, or evicted long enough ago that a revival attempt is due.
func (w *worker) selectable(now time.Time) bool {
	if w.healthy.Load() {
		return true
	}
	r := w.retryAt.Load()
	return r != 0 && now.UnixNano() >= r
}

// load is the selection key: the coordinator's own in-flight count
// plus the scraped startup baseline while it is still fresh.
func (w *worker) load(now time.Time) int64 {
	l := w.inflight.Load()
	if now.Before(w.baselineUntil) {
		l += w.baseline
	}
	return l
}

// Coordinator fans experiment runs out across a figuresd fleet. It is
// safe for concurrent use; one coordinator can serve many Run/RunOne
// calls at once (cmd/figuresd -peers does exactly that).
type Coordinator struct {
	workers     []*worker
	client      *http.Client
	reqTimeout  time.Duration
	retries     int
	reviveAfter time.Duration
	local       experiments.Options
	localSem    chan struct{}
	logf        func(format string, args ...any)

	pickMu    sync.Mutex
	remote    atomic.Int64
	localRuns atomic.Int64
	failovers atomic.Int64
}

// New builds a coordinator over the given fleet and probes every
// worker's health concurrently before returning. An unreachable
// worker is not an error — it starts unhealthy and the coordinator
// degrades toward local execution — but an empty worker list is.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("shard: no workers configured")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	probeTimeout := opts.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = DefaultProbeTimeout
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = len(opts.Workers)
	}
	reviveAfter := opts.ReviveAfter
	if reviveAfter <= 0 {
		reviveAfter = DefaultReviveAfter
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	jobs := opts.Local.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	c := &Coordinator{
		client:      client,
		reqTimeout:  reqTimeout,
		retries:     retries,
		reviveAfter: reviveAfter,
		local:       opts.Local,
		localSem:    make(chan struct{}, jobs),
		logf:        logf,
	}
	for _, addr := range opts.Workers {
		c.workers = append(c.workers, &worker{
			base: baseURL(addr),
			sem:  make(chan struct{}, maxInFlight),
		})
	}
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(w, probeTimeout)
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	c.logf("shard: %d/%d workers healthy", st.WorkersHealthy, st.WorkersTotal)
	return c, nil
}

// baseURL normalizes a worker address to a scheme-full base URL.
func baseURL(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// SplitList parses a comma-separated flag value — the format the
// -workers, -peers, and -run flags share — dropping empty entries and
// surrounding whitespace.
func SplitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// probe marks w healthy if its /healthz answers 200 within the
// timeout, then seeds the load accounting from its /stats in-flight
// count (best-effort: a worker without /stats just starts at zero).
// A failed probe schedules revival like any other eviction, so a
// worker that was merely slow to boot rejoins a long-lived
// coordinator.
func (c *Coordinator) probe(w *worker, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		c.logf("shard: worker %s: bad address: %v", w.base, err)
		c.evict(w)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.logf("shard: worker %s unreachable: %v", w.base, err)
		c.evict(w)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.logf("shard: worker %s /healthz: status %d", w.base, resp.StatusCode)
		c.evict(w)
		return
	}
	w.healthy.Store(true)
	if st, err := c.scrapeStats(ctx, w); err == nil {
		w.baseline = st.InFlight
		w.baselineUntil = time.Now().Add(baselineTTL)
	}
}

// evict takes w out of rotation and schedules the moment a live
// request may try it again.
func (c *Coordinator) evict(w *worker) {
	w.healthy.Store(false)
	w.retryAt.Store(time.Now().Add(c.reviveAfter).UnixNano())
}

// revive returns w to full rotation after a successful request.
func (c *Coordinator) revive(w *worker) {
	if !w.healthy.Swap(true) {
		c.logf("shard: worker %s revived", w.base)
	}
}

// scrapeStats fetches one worker's /stats snapshot.
func (c *Coordinator) scrapeStats(ctx context.Context, w *worker) (server.StatsResponse, error) {
	var st server.StatsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("shard: worker %s /stats: status %d", w.base, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("shard: worker %s /stats: %w", w.base, err)
	}
	return st, nil
}

// Run executes the selected experiments across the fleet and returns
// one Result per requested id, in request order — the same contract as
// experiments.Run, which it degrades to when the fleet cannot serve.
// Because results are merged in request order and the JSON wire form
// is a pure function of experiment outputs, the encoded output of a
// sharded run is byte-identical to a local run of the same ids. Empty
// ids means every experiment in the local registry, in index order.
// Run errors only on configuration mistakes (an unknown id).
func (c *Coordinator) Run(ctx context.Context, ids []string) ([]experiments.Result, error) {
	reg := c.local.Registry
	if reg == nil {
		reg = experiments.Registry()
	}
	if len(ids) == 0 {
		ids = experiments.IDsOf(reg)
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			return nil, fmt.Errorf("shard: unknown experiment %q", id)
		}
	}
	results := make([]experiments.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			results[i], errs[i] = c.runOne(ctx, id)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunOne executes a single experiment through the fleet with the same
// failover and fallback rules as Run. It is the execution backend
// cmd/figuresd -peers plugs into internal/server.
func (c *Coordinator) RunOne(ctx context.Context, id string) (experiments.Result, error) {
	return c.runOne(ctx, id)
}

// runOne tries up to c.retries distinct workers, least-loaded first,
// then falls back to the local engine.
func (c *Coordinator) runOne(ctx context.Context, id string) (experiments.Result, error) {
	tried := make(map[*worker]bool)
	for attempt := 0; attempt < c.retries; attempt++ {
		w := c.pick(tried)
		if w == nil {
			break // fleet exhausted (or entirely unhealthy)
		}
		tried[w] = true
		res, err := c.fetch(ctx, w, id)
		w.inflight.Add(-1)
		if err == nil {
			c.remote.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			return experiments.Result{ID: id, Err: ctx.Err()}, nil
		}
		c.failovers.Add(1)
		c.logf("shard: %s on %s failed (%v); failing over", id, w.base, err)
	}
	return c.runLocal(ctx, id)
}

// pick returns the selectable, untried worker with the lowest load,
// charging it one in-flight slot (the caller releases it), or nil
// when no worker qualifies.
func (c *Coordinator) pick(tried map[*worker]bool) *worker {
	c.pickMu.Lock()
	defer c.pickMu.Unlock()
	now := time.Now()
	var best *worker
	for _, w := range c.workers {
		if tried[w] || !w.selectable(now) {
			continue
		}
		if best == nil || w.load(now) < best.load(now) {
			best = w
		}
	}
	if best != nil {
		best.inflight.Add(1)
	}
	return best
}

// fetch retrieves one experiment from one worker, holding a slot of
// the worker's in-flight cap for the duration. A transport failure
// evicts the worker — unless it is this request's own deadline,
// because a slow experiment is not a dead worker — and a success
// restores an evicted worker to rotation.
func (c *Coordinator) fetch(ctx context.Context, w *worker, id string) (experiments.Result, error) {
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return experiments.Result{}, ctx.Err()
	}
	defer func() { <-w.sem }()
	ctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	u := w.base + "/experiments/" + url.PathEscape(id) + "?format=json"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return experiments.Result{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			c.evict(w)
		}
		return experiments.Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return experiments.Result{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	results, err := experiments.DecodeJSON(resp.Body)
	if err != nil {
		return experiments.Result{}, err
	}
	if len(results) != 1 || results[0].ID != id || results[0].Err != nil || results[0].Table == nil {
		return experiments.Result{}, fmt.Errorf("unusable result payload")
	}
	c.revive(w)
	return results[0], nil
}

// runLocal executes one experiment through the in-process engine,
// bounded by the local-fallback concurrency (Options.Local.Jobs).
func (c *Coordinator) runLocal(ctx context.Context, id string) (experiments.Result, error) {
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return experiments.Result{ID: id, Err: ctx.Err()}, nil
	}
	defer func() { <-c.localSem }()
	opts := c.local
	opts.IDs = []string{id}
	opts.Jobs = 1
	results, err := experiments.Run(ctx, opts)
	if err != nil {
		return experiments.Result{}, err
	}
	c.localRuns.Add(1)
	c.logf("shard: %s ran locally", id)
	return results[0], nil
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		WorkersTotal: len(c.workers),
		Remote:       c.remote.Load(),
		Local:        c.localRuns.Load(),
		Failovers:    c.failovers.Load(),
	}
	for _, w := range c.workers {
		if w.healthy.Load() {
			st.WorkersHealthy++
		}
	}
	return st
}
