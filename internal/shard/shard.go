// Package shard distributes an experiment run across a fleet of
// figuresd workers: the HTTP fan-out coordinator the serving layer
// (internal/server) was built for. Each experiment is fetched from a
// worker via GET /experiments/{id}?format=json, decoded with
// experiments.DecodeJSON, and merged back in request order — and
// because the JSON wire form is a pure function of experiment outputs,
// sharded output is byte-identical to a local run, the invariant every
// test and CI gate here pins.
//
// The coordinator owns worker health end to end:
//
//   - startup: every worker's /healthz is probed concurrently; a
//     worker that fails the probe starts unhealthy and is never
//     selected. Its /stats in-flight count (server.StatsResponse)
//     seeds the load accounting, so a worker that is already busy
//     serving other clients starts deprioritized.
//   - selection: least-loaded — the healthy untried worker with the
//     fewest in-flight requests (scraped baseline + the coordinator's
//     own accounting) wins. A bounded per-worker in-flight cap
//     (DefaultMaxInFlight) keeps one slow worker from serializing the
//     batch: once a worker is saturated, work flows to its peers.
//   - failure: every request carries its own timeout. A transport
//     error (connection refused, reset, EOF — a killed worker) evicts
//     the worker; an HTTP-level failure (non-200, undecodable body,
//     mismatched id) only fails the attempt. Either way the
//     experiment fails over to the next worker, bounded by
//     Options.Retries distinct workers. Eviction is not forever: a
//     coordinator can outlive a worker restart (cmd/figuresd -peers
//     runs one for the daemon's whole life), so after ReviveAfter a
//     live request is allowed to re-try an evicted worker, and one
//     success restores it to full rotation.
//   - fallback: an experiment that exhausts the fleet — including the
//     whole fleet being unreachable — runs locally through the
//     in-process engine with the coordinator's Local options, so a
//     sharded run degrades to a local run rather than failing.
//
// Deterministic experiment failures are reproduced by the fallback:
// a worker reports them as HTTP 500, the coordinator fails over and
// finally re-runs locally, producing the same failed Result (and the
// same encoded bytes) a local run would have.
//
// Prefix-shardable experiments (experiments.Shardables) go further:
// instead of fetching the whole experiment from one worker, the
// coordinator carves the experiment's own exploration space into
// disjoint schedule-prefix ranges (sched.PartitionRoots), fans the
// ranges out with GET /experiments/{id}?prefixes=..., and merges the
// order-insensitive aggregates — so the fleet splits a single
// theorem-scale space and still emits byte-identical tables. Ranges
// inherit the failover rules above; a range whose attempts exhaust
// the fleet is explored locally, reassigned but never dropped.
//
// With an artifact store (experiments.SliceCache) as Options.Local.
// Cache, the coordinator is the top of a read-through cache
// hierarchy: the whole result is consulted before carving, every
// range is consulted before dispatch and stored back after it is
// fetched or explored, and the merged whole is stored last — so a
// repeated sharded run of the same space executes zero explorations
// fleet-wide, and a partially warm store re-explores only the ranges
// it is missing.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/hist"
	"repro/internal/server"
	"repro/internal/trace"
)

const (
	// DefaultRequestTimeout bounds one remote experiment fetch —
	// generous because a cold exhaustive exploration legitimately
	// takes up to the worker's own execution timeout (2m default).
	DefaultRequestTimeout = 3 * time.Minute
	// DefaultProbeTimeout bounds the startup /healthz and /stats
	// probes; a worker that cannot answer a liveness check in this
	// window is not worth routing experiments to.
	DefaultProbeTimeout = 5 * time.Second
	// DefaultMaxInFlight caps concurrent requests per worker so a
	// slow worker holds at most this many experiments while its
	// peers absorb the rest of the batch.
	DefaultMaxInFlight = 4
	// DefaultReviveAfter is how long an evicted worker stays out of
	// rotation before a live request may re-try it — long enough not
	// to hammer a dead host, short enough that a restarted worker
	// rejoins a long-lived coordinator promptly.
	DefaultReviveAfter = 15 * time.Second
	// baselineTTL bounds how long the /stats in-flight count scraped
	// at probe time keeps inflating a worker's load: the snapshot
	// describes startup, not steady state, so it expires rather than
	// skewing selection forever.
	baselineTTL = 30 * time.Second
)

// Options configures New. Workers is the only required field.
type Options struct {
	// Workers lists the fleet as host:port addresses (a scheme-full
	// URL is accepted too). Order is irrelevant: selection is by
	// load, not position.
	Workers []string
	// Client overrides the HTTP client; nil means a default client
	// (per-request timeouts come from RequestTimeout, not the client).
	Client *http.Client
	// RequestTimeout bounds each remote experiment fetch; <= 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// ProbeTimeout bounds the startup health probes; <= 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// MaxInFlight caps concurrent requests per worker; <= 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// Retries is the number of distinct workers tried per experiment
	// before falling back to local execution; <= 0 means every
	// worker.
	Retries int
	// ReviveAfter is how long an evicted worker stays unselectable
	// before a live request may re-try it; <= 0 means
	// DefaultReviveAfter.
	ReviveAfter time.Duration
	// Local configures the in-process fallback engine (Registry,
	// Cache, Timeout; Jobs bounds how many fallback experiments run
	// concurrently). IDs is ignored — the coordinator fills it per
	// experiment.
	Local experiments.Options
	// Shardables maps prefix-shardable experiment ids to their
	// partial-run seams: with at least two selectable workers, these
	// experiments are carved into prefix ranges and split across the
	// fleet instead of fetched whole. nil means the default
	// experiments.Shardables() when Local.Registry is nil, and none
	// otherwise — an override's ids are not the real experiments, so
	// it opts in explicitly. An explicit empty map disables prefix
	// sharding.
	Shardables map[string]experiments.Shardable
	// Families maps experiment ids to their parameterized spaces,
	// enabling RunParam — parameterized points fanned out with the same
	// carve, failover, and fallback rules as fixed experiments. nil
	// means experiments.FamiliesFor(Local.Registry): the real families
	// when the registry is the real one, none under an override unless
	// it opts in here.
	Families map[string]experiments.Family
	// Journal, when non-nil, records every load-bearing decision —
	// carve, worker selection, fetch, retry, eviction, revival,
	// registry rejection, cache outcome, local fallback — as span
	// events under the request's trace ID (trace.IDFrom on the run
	// context; minted here when the coordinator is the edge). The same
	// ID travels to every worker in the Repro-Request-ID header, so
	// one ID names the request in the coordinator's journal and each
	// worker's. nil disables coordinator-side recording; the header
	// still propagates when the context carries an ID.
	Journal *trace.Journal
	// Now injects the coordinator's clock (eviction revival, baseline
	// expiry); nil means time.Now. Tests use it to advance time
	// without sleeping.
	Now func() time.Time
	// Logf receives one line per notable event (unreachable worker,
	// failover, fallback); nil means silent.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of a coordinator's traffic counters.
type Stats struct {
	// WorkersTotal and WorkersHealthy describe the fleet now — a
	// worker that died mid-batch has already left WorkersHealthy.
	WorkersTotal, WorkersHealthy int
	// Remote counts experiments served whole by the fleet, Local those
	// that fell back whole to the in-process engine. Prefix-sharded
	// experiments are counted by PrefixSharded instead.
	Remote, Local int64
	// Failovers counts failed attempts — whole experiments or prefix
	// ranges — that moved work to another worker (or, when none
	// remained, to the local fallback).
	Failovers int64
	// PrefixSharded counts experiments whose exploration space was
	// split across the fleet as prefix ranges.
	PrefixSharded int64
	// PrefixRangesRemote and PrefixRangesLocal count the ranges of
	// prefix-sharded experiments served by workers and explored
	// locally (fleet exhausted for that range).
	PrefixRangesRemote, PrefixRangesLocal int64
	// PrefixRangesCached counts the ranges served straight from the
	// coordinator's own artifact store without touching the fleet —
	// the read-through half of the cache hierarchy.
	PrefixRangesCached int64
	// RangesReassigned counts prefix-range attempts that failed on one
	// worker and were reassigned — the "never dropped" half of the
	// failover contract.
	RangesReassigned int64
	// Workers holds one per-worker record, in configuration order —
	// the coordinator-side fetch-latency distributions that separate a
	// slow worker from a slow fleet.
	Workers []WorkerStats
}

// WorkerStats is one worker's coordinator-side record: every attempt
// through the shared fetch path (whole experiments and prefix slices
// alike, failures included) lands in the latency histogram, so a
// worker that fails fast looks exactly as suspicious as it is.
type WorkerStats struct {
	Addr    string
	Healthy bool
	// Fetches counts attempts sent to this worker; Errors the ones
	// that failed (transport, HTTP status, or decode).
	Fetches, Errors int64
	// Latency is the fetch-latency distribution as the coordinator
	// observed it — request start to body decoded.
	Latency hist.Snapshot
}

// worker is one fleet member and its load accounting.
type worker struct {
	base     string        // http://host:port, no trailing slash
	sem      chan struct{} // bounds in-flight requests to this worker
	inflight atomic.Int64  // the coordinator's own in-flight count
	healthy  atomic.Bool
	retryAt  atomic.Int64 // unix nanos after which eviction may be re-tried
	lat      hist.Histogram
	fetches  atomic.Int64
	errors   atomic.Int64

	// baseline is the worker's /stats in-flight count at probe time
	// (load from clients this coordinator cannot see), counted toward
	// selection until baselineUntil. Written only during New's probe,
	// before any pick can run.
	baseline      int64
	baselineUntil time.Time
}

// selectable reports whether the worker may receive a request:
// healthy, or evicted long enough ago that a revival attempt is due.
func (w *worker) selectable(now time.Time) bool {
	if w.healthy.Load() {
		return true
	}
	r := w.retryAt.Load()
	return r != 0 && now.UnixNano() >= r
}

// load is the selection key: the coordinator's own in-flight count
// plus the scraped startup baseline while it is still fresh.
func (w *worker) load(now time.Time) int64 {
	l := w.inflight.Load()
	if now.Before(w.baselineUntil) {
		l += w.baseline
	}
	return l
}

// Coordinator fans experiment runs out across a figuresd fleet. It is
// safe for concurrent use; one coordinator can serve many Run/RunOne
// calls at once (cmd/figuresd -peers does exactly that).
type Coordinator struct {
	workers     []*worker
	client      *http.Client
	reqTimeout  time.Duration
	retries     int
	reviveAfter time.Duration
	local       experiments.Options
	localSem    chan struct{}
	exploreSem  chan struct{}
	shardables  map[string]experiments.Shardable
	families    map[string]experiments.Family
	sliceCache  experiments.SliceCache
	paramCache  experiments.ParamCache
	journal     *trace.Journal
	now         func() time.Time
	logf        func(format string, args ...any)

	pickMu           sync.Mutex
	remote           atomic.Int64
	localRuns        atomic.Int64
	failovers        atomic.Int64
	prefixSharded    atomic.Int64
	prefixRemote     atomic.Int64
	prefixLocal      atomic.Int64
	prefixCached     atomic.Int64
	rangesReassigned atomic.Int64
}

// defaultClient builds the coordinator's HTTP client when Options
// leaves it nil: the default transport's dialer and keep-alive
// settings, with the per-host idle pool widened to the per-worker
// in-flight cap. The stock DefaultTransport keeps only 2 idle
// connections per host, so a coordinator pushing maxInFlight
// concurrent range fetches at one worker would close and re-dial the
// rest of the burst on every wave; sizing the pool to the cap lets
// the whole burst reuse warm connections.
func defaultClient(maxInFlight int) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = maxInFlight
	if tr.MaxIdleConns < maxInFlight {
		tr.MaxIdleConns = maxInFlight
	}
	tr.IdleConnTimeout = 90 * time.Second
	return &http.Client{Transport: tr}
}

// New builds a coordinator over the given fleet and probes every
// worker's health concurrently before returning. An unreachable
// worker is not an error — it starts unhealthy and the coordinator
// degrades toward local execution — but an empty worker list is.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("shard: no workers configured")
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	probeTimeout := opts.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = DefaultProbeTimeout
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	client := opts.Client
	if client == nil {
		client = defaultClient(maxInFlight)
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = len(opts.Workers)
	}
	reviveAfter := opts.ReviveAfter
	if reviveAfter <= 0 {
		reviveAfter = DefaultReviveAfter
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	jobs := opts.Local.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	shardables := opts.Shardables
	if shardables == nil {
		shardables = experiments.ShardablesFor(opts.Local.Registry)
	}
	families := opts.Families
	if families == nil {
		families = experiments.FamiliesFor(opts.Local.Registry)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	// A Local.Cache that is an artifact store makes every range
	// read-through: consulted before dispatch, populated after. A
	// parameter-aware store additionally fronts RunParam's whole
	// results; a plain cache degrades non-default points to cold.
	sliceCache, _ := opts.Local.Cache.(experiments.SliceCache)
	paramCache, _ := opts.Local.Cache.(experiments.ParamCache)
	c := &Coordinator{
		client:      client,
		reqTimeout:  reqTimeout,
		retries:     retries,
		reviveAfter: reviveAfter,
		local:       opts.Local,
		localSem:    make(chan struct{}, jobs),
		exploreSem:  make(chan struct{}, 1),
		shardables:  shardables,
		families:    families,
		sliceCache:  sliceCache,
		paramCache:  paramCache,
		journal:     opts.Journal,
		now:         now,
		logf:        logf,
	}
	for _, addr := range opts.Workers {
		c.workers = append(c.workers, &worker{
			base: baseURL(addr),
			sem:  make(chan struct{}, maxInFlight),
		})
	}
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(w, probeTimeout)
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	c.logf("shard: %d/%d workers healthy", st.WorkersHealthy, st.WorkersTotal)
	return c, nil
}

// baseURL normalizes a worker address to a scheme-full base URL.
func baseURL(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// SplitList parses a comma-separated flag value — the format the
// -workers, -peers, and -run flags share — dropping empty entries and
// surrounding whitespace.
func SplitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// probe marks w healthy if its /healthz answers 200 within the
// timeout, then seeds the load accounting from its /stats in-flight
// count (best-effort: a worker without /stats just starts at zero).
// A failed probe schedules revival like any other eviction, so a
// worker that was merely slow to boot rejoins a long-lived
// coordinator.
func (c *Coordinator) probe(w *worker, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		c.logf("shard: worker %s: bad address: %v", w.base, err)
		c.evict(w)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.logf("shard: worker %s unreachable: %v", w.base, err)
		c.evict(w)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.logf("shard: worker %s /healthz: status %d", w.base, resp.StatusCode)
		c.evict(w)
		return
	}
	w.healthy.Store(true)
	if st, err := c.scrapeStats(ctx, w); err == nil {
		// A worker serving a different experiment generation would
		// answer every fetch with bytes from the wrong registry;
		// start it evicted (the per-response header check guards the
		// revival path).
		if st.RegistryVersion != "" && st.RegistryVersion != experiments.RegistryVersion {
			c.logf("shard: worker %s serves registry %s, want %s", w.base, st.RegistryVersion, experiments.RegistryVersion)
			c.evict(w)
			return
		}
		w.baseline = st.InFlight
		w.baselineUntil = c.now().Add(baselineTTL)
	}
}

// evict takes w out of rotation and schedules the moment a live
// request may try it again.
func (c *Coordinator) evict(w *worker) {
	w.healthy.Store(false)
	w.retryAt.Store(c.now().Add(c.reviveAfter).UnixNano())
}

// revive returns w to full rotation after a successful request,
// reporting whether w was actually evicted (so callers journal real
// revivals, not every success).
func (c *Coordinator) revive(w *worker) bool {
	if !w.healthy.Swap(true) {
		c.logf("shard: worker %s revived", w.base)
		return true
	}
	return false
}

// scrapeStats fetches one worker's /stats snapshot.
func (c *Coordinator) scrapeStats(ctx context.Context, w *worker) (server.StatsResponse, error) {
	var st server.StatsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("shard: worker %s /stats: status %d", w.base, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("shard: worker %s /stats: %w", w.base, err)
	}
	return st, nil
}

// Run executes the selected experiments across the fleet and returns
// one Result per requested id, in request order — the same contract as
// experiments.Run, which it degrades to when the fleet cannot serve.
// Because results are merged in request order and the JSON wire form
// is a pure function of experiment outputs, the encoded output of a
// sharded run is byte-identical to a local run of the same ids. Empty
// ids means every experiment in the local registry, in index order.
// Run errors only on configuration mistakes (an unknown id).
func (c *Coordinator) Run(ctx context.Context, ids []string) ([]experiments.Result, error) {
	reg := c.local.Registry
	if reg == nil {
		reg = experiments.Registry()
	}
	if len(ids) == 0 {
		ids = experiments.IDsOf(reg)
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			return nil, fmt.Errorf("shard: unknown experiment %q", id)
		}
	}
	results := make([]experiments.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			results[i], errs[i] = c.runOne(ctx, id)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunOne executes a single experiment through the fleet with the same
// failover and fallback rules as Run. It is the execution backend
// cmd/figuresd -peers plugs into internal/server.
func (c *Coordinator) RunOne(ctx context.Context, id string) (experiments.Result, error) {
	return c.runOne(ctx, id)
}

// runOne executes one experiment: prefix-sharded across the fleet
// when the experiment is shardable and enough workers can take a
// range, otherwise fetched whole with per-worker failover, finally
// falling back to the local engine. The coordinator's own cache is
// consulted before carving — a warm whole result must stay a
// microsecond hit, not become a fleet-wide recompute — and a sharded
// success is stored back; below that, runRange does the same
// read-through per prefix range against the artifact store, so a
// cold whole result over warm slices still executes nothing.
func (c *Coordinator) runOne(ctx context.Context, id string) (experiments.Result, error) {
	// The trace ID arrives on the context when an upstream edge (the
	// serving layer) minted it; when the coordinator is itself the edge
	// (a CLI run), it mints one so the fleet's journals still agree on
	// a name for this request.
	reqID := trace.IDFrom(ctx)
	if reqID == "" && c.journal != nil {
		reqID = trace.NewID()
		ctx = trace.WithID(ctx, reqID)
	}
	c.journal.Start(reqID, "run "+id)
	// Front-cache read-through applies to every experiment, not just
	// the shardable ones: a warm front cache must absorb whole fetches
	// too, or one family's cold start would drag warm families back to
	// the fleet (the registry-wide cold-start failure mode).
	if cache := c.local.Cache; cache != nil {
		if res, ok := cache.Get(id); ok && res.Err == nil && res.Table != nil {
			res.ID = id
			res.Cached = true
			c.journal.Add(reqID, trace.Event{Kind: trace.KindCacheHit, Detail: "coordinator front cache"})
			return res, nil
		}
		c.journal.Add(reqID, trace.Event{Kind: trace.KindCacheMiss, Detail: "coordinator front cache"})
	}
	if sh, ok := c.shardables[id]; ok {
		if res, done := c.runPrefixSharded(ctx, id, experiments.ParamSet{}, sh); done {
			if c.local.Cache != nil && res.Err == nil {
				c.local.Cache.Put(id, res) // best-effort, like the engine
			}
			return res, nil
		}
	}
	return c.runWhole(ctx, id)
}

// RunParam executes one parameterized point of an experiment family
// through the fleet: the default point aliases the fixed experiment
// (same cache entries, same carve), a non-default point is
// prefix-sharded at that point when the family shards and enough
// workers can take a range, fetched whole with failover otherwise, and
// finally evaluated locally — a parameterized run degrades exactly
// like a fixed one. It is the execution backend cmd/figuresd -peers
// plugs into internal/server's ParamBackend.
func (c *Coordinator) RunParam(ctx context.Context, id string, ps experiments.ParamSet) (experiments.Result, error) {
	params := ps.Canonical()
	if params == "" {
		return c.runOne(ctx, id)
	}
	fam, ok := c.families[id]
	if !ok {
		return experiments.Result{}, fmt.Errorf("shard: experiment %q has no parameter family", id)
	}
	reqID := trace.IDFrom(ctx)
	if reqID == "" && c.journal != nil {
		reqID = trace.NewID()
		ctx = trace.WithID(ctx, reqID)
	}
	c.journal.Start(reqID, "run "+ps.String())
	if c.paramCache != nil {
		if res, ok := c.paramCache.GetParam(id, params); ok && res.Err == nil && res.Table != nil {
			res.ID = id
			res.Cached = true
			c.journal.Add(reqID, trace.Event{Kind: trace.KindCacheHit, Detail: "coordinator front cache"})
			return res, nil
		}
		c.journal.Add(reqID, trace.Event{Kind: trace.KindCacheMiss, Detail: "coordinator front cache"})
	}
	if fam.Shardable != nil {
		if res, done := c.runPrefixSharded(ctx, id, ps, fam.Shardable(ps)); done {
			if c.paramCache != nil && res.Err == nil {
				c.paramCache.PutParam(id, params, res) // best-effort, like the engine
			}
			return res, nil
		}
	}
	return c.runWholeParam(ctx, fam, ps)
}

// runWholeParam fetches one non-default parameter point whole, with
// the whole-experiment failover rules, then falls back to local
// evaluation through experiments.RunParam (which owns the point's
// cache read-through).
func (c *Coordinator) runWholeParam(ctx context.Context, fam experiments.Family, ps experiments.ParamSet) (experiments.Result, error) {
	id := fam.ID
	reqID := trace.IDFrom(ctx)
	tried := make(map[*worker]bool)
	for attempt := 0; attempt < c.retries; attempt++ {
		w := c.pick(tried)
		if w == nil {
			break // fleet exhausted (or entirely unhealthy)
		}
		tried[w] = true
		c.journal.Add(reqID, trace.Event{Kind: trace.KindWorkerSelected, Worker: w.base,
			Detail: fmt.Sprintf("in-flight %d", w.inflight.Load())})
		fetchStart := time.Now()
		res, err := c.fetchParam(ctx, w, id, ps)
		w.inflight.Add(-1)
		if err == nil {
			c.remote.Add(1)
			c.journal.Add(reqID, trace.Event{Kind: trace.KindFetch, Worker: w.base,
				Detail: fmt.Sprintf("fetched point in %v", time.Since(fetchStart).Round(time.Microsecond))})
			if c.paramCache != nil && res.Err == nil {
				c.paramCache.PutParam(id, ps.Canonical(), res)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return experiments.Result{ID: id, Err: ctx.Err()}, nil
		}
		c.failovers.Add(1)
		c.journal.Add(reqID, trace.Event{Kind: trace.KindRetry, Worker: w.base, Detail: err.Error()})
		c.logf("shard: %s on %s failed (%v); failing over", ps, w.base, err)
	}
	c.journal.Add(reqID, trace.Event{Kind: trace.KindLocalFallback})
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return experiments.Result{ID: id, Err: ctx.Err()}, nil
	}
	defer func() { <-c.localSem }()
	res := experiments.RunParam(ctx, fam, ps, experiments.Options{
		Timeout: c.local.Timeout,
		Cache:   c.local.Cache,
	})
	c.localRuns.Add(1)
	c.logf("shard: %s ran locally", ps)
	return res, nil
}

// fetchParam retrieves one parameter point whole from one worker, the
// explicit query spelling out every parameter so any worker resolves
// it to the same canonical point.
func (c *Coordinator) fetchParam(ctx context.Context, w *worker, id string, ps experiments.ParamSet) (experiments.Result, error) {
	var res experiments.Result
	path := "/experiments/" + url.PathEscape(id) + "?" + ps.Query() + "&format=json"
	err := c.fetchWorker(ctx, w, path, func(body io.Reader) error {
		results, err := experiments.DecodeJSON(body)
		if err != nil {
			return err
		}
		if len(results) != 1 || results[0].ID != id || results[0].Err != nil || results[0].Table == nil {
			return fmt.Errorf("unusable result payload")
		}
		res = results[0]
		return nil
	})
	return res, err
}

// runWhole tries up to c.retries distinct workers, least-loaded first,
// then falls back to the local engine.
func (c *Coordinator) runWhole(ctx context.Context, id string) (experiments.Result, error) {
	reqID := trace.IDFrom(ctx)
	tried := make(map[*worker]bool)
	for attempt := 0; attempt < c.retries; attempt++ {
		w := c.pick(tried)
		if w == nil {
			break // fleet exhausted (or entirely unhealthy)
		}
		tried[w] = true
		c.journal.Add(reqID, trace.Event{Kind: trace.KindWorkerSelected, Worker: w.base,
			Detail: fmt.Sprintf("in-flight %d", w.inflight.Load())})
		fetchStart := time.Now()
		res, err := c.fetch(ctx, w, id)
		w.inflight.Add(-1)
		if err == nil {
			c.remote.Add(1)
			c.journal.Add(reqID, trace.Event{Kind: trace.KindFetch, Worker: w.base,
				Detail: fmt.Sprintf("fetched whole in %v", time.Since(fetchStart).Round(time.Microsecond))})
			if c.local.Cache != nil && res.Err == nil && res.Table != nil {
				c.local.Cache.Put(id, res) // best-effort, like the engine
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return experiments.Result{ID: id, Err: ctx.Err()}, nil
		}
		c.failovers.Add(1)
		c.journal.Add(reqID, trace.Event{Kind: trace.KindRetry, Worker: w.base, Detail: err.Error()})
		c.logf("shard: %s on %s failed (%v); failing over", id, w.base, err)
	}
	c.journal.Add(reqID, trace.Event{Kind: trace.KindLocalFallback})
	return c.runLocal(ctx, id)
}

// minShardWorkers is the fleet size below which prefix sharding is
// not worth carving: with fewer than two selectable workers there is
// no intra-experiment parallelism to win, and a whole fetch keeps the
// worker's content-addressed cache in play.
const minShardWorkers = 2

// runPrefixSharded splits one shardable experiment's exploration
// space across the fleet: carve the deterministic partition into
// contiguous ranges (about two per selectable worker, so a slow
// worker's second helping flows to its peers), fetch every range
// concurrently with the same least-loaded selection and failover
// rules as whole experiments, merge the order-insensitive aggregates
// in range order, and render the table. A range whose attempts
// exhaust the fleet is explored locally — reassigned, never dropped —
// so the merged table is byte-identical to a local run no matter
// which workers died along the way. ps is the parameter point the
// space is carved at — the zero ParamSet for a fixed experiment. done
// reports whether the experiment was handled here; carving problems
// (partition failure, too few workers) fall back to the
// whole-experiment path.
func (c *Coordinator) runPrefixSharded(ctx context.Context, id string, ps experiments.ParamSet, sh experiments.Shardable) (experiments.Result, bool) {
	start := c.now()
	if c.selectableCount() < minShardWorkers {
		return experiments.Result{}, false
	}
	roots, err := sh.Roots()
	if err != nil || len(roots) == 0 {
		c.logf("shard: %s: partition failed (%v); fetching whole", id, err)
		return experiments.Result{}, false
	}
	ranges := splitRanges(roots, 2*c.selectableCount())
	c.journal.Add(trace.IDFrom(ctx), trace.Event{Kind: trace.KindCarve,
		Detail: fmt.Sprintf("%d roots into %d ranges across %d selectable workers",
			len(roots), len(ranges), c.selectableCount())})
	// Counted at the carve, not at success: the range counters below
	// move for this experiment either way, and the stats must agree
	// that its space was split even if a range later fails.
	c.prefixSharded.Add(1)
	aggs := make([]experiments.Aggregate, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			aggs[i], errs[i] = c.runRange(ctx, id, ps, sh, ranges[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A range that cannot be computed anywhere (local explore
			// failed, or the run was cancelled) fails the experiment:
			// merging a partial space would silently corrupt the
			// theorem-level counts the table reports.
			return experiments.Result{ID: id, Err: err, Duration: c.now().Sub(start)}, true
		}
	}
	merged := aggs[0]
	for _, agg := range aggs[1:] {
		if err := merged.Merge(agg); err != nil {
			return experiments.Result{ID: id, Err: err, Duration: c.now().Sub(start)}, true
		}
	}
	tab, err := sh.Finish(merged)
	if err != nil {
		return experiments.Result{ID: id, Err: err, Duration: c.now().Sub(start)}, true
	}
	return experiments.Result{ID: id, Table: tab, Duration: c.now().Sub(start)}, true
}

// selectableCount reports how many workers may currently receive a
// request (healthy, or due a revival probe).
func (c *Coordinator) selectableCount() int {
	now := c.now()
	n := 0
	for _, w := range c.workers {
		if w.selectable(now) {
			n++
		}
	}
	return n
}

// splitRanges carves roots into at most n contiguous, near-even,
// non-empty ranges, preserving order so every coordinator carves the
// same partition into the same ranges.
func splitRanges(roots [][]int, n int) [][][]int {
	if n > len(roots) {
		n = len(roots)
	}
	if n < 1 {
		n = 1
	}
	out := make([][][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(roots)/n, (i+1)*len(roots)/n
		out = append(out, roots[lo:hi])
	}
	return out
}

// runRange computes one prefix range's aggregate. The coordinator's
// own artifact store is consulted first (read-through: a range served
// from disk never touches the fleet), then up to c.retries distinct
// workers with the whole-experiment failover rules (a transport error
// evicts, an HTTP error only fails the attempt), then the local
// explorer. Every failed attempt reassigns the range — it is never
// dropped — and every computed aggregate, remote or local, is stored
// back so the next run of this space starts warm.
func (c *Coordinator) runRange(ctx context.Context, id string, ps experiments.ParamSet, sh experiments.Shardable, roots [][]int) (experiments.Aggregate, error) {
	reqID := trace.IDFrom(ctx)
	prefixes := experiments.FormatPrefixes(roots)
	params := ps.Canonical()
	if c.sliceCache != nil {
		if env, ok := c.sliceCache.GetSlice(id, params, prefixes); ok {
			// The store vouches for the bytes (checksum, key match);
			// Decode vouches for the semantics. A rejected aggregate
			// falls through to a fetch, whose success overwrites it.
			if agg, err := sh.Decode(env.Aggregate); err == nil {
				c.prefixCached.Add(1)
				c.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheHit, Range: prefixes,
					Detail: "coordinator artifact store"})
				return agg, nil
			}
		}
		c.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheMiss, Range: prefixes,
			Detail: "coordinator artifact store"})
	}
	tried := make(map[*worker]bool)
	for attempt := 0; attempt < c.retries; attempt++ {
		w := c.pick(tried)
		if w == nil {
			break // fleet exhausted for this range
		}
		tried[w] = true
		c.journal.Add(reqID, trace.Event{Kind: trace.KindWorkerSelected, Worker: w.base, Range: prefixes,
			Detail: fmt.Sprintf("in-flight %d", w.inflight.Load())})
		fetchStart := time.Now()
		agg, env, err := c.fetchSlice(ctx, w, id, ps, sh, prefixes)
		w.inflight.Add(-1)
		if err == nil {
			c.prefixRemote.Add(1)
			c.journal.Add(reqID, trace.Event{Kind: trace.KindFetch, Worker: w.base, Range: prefixes,
				Detail: fmt.Sprintf("fetched slice in %v", time.Since(fetchStart).Round(time.Microsecond))})
			c.storeSlice(reqID, env)
			return agg, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.failovers.Add(1)
		c.rangesReassigned.Add(1)
		c.journal.Add(reqID, trace.Event{Kind: trace.KindRetry, Worker: w.base, Range: prefixes,
			Detail: err.Error()})
		c.logf("shard: %s range %s on %s failed (%v); reassigning", id, prefixes, w.base, err)
	}
	// A local exploration fans out across every core (Explore owns the
	// whole budget, unlike the engine's serial runners), so ranges
	// falling back concurrently are serialized on a one-slot semaphore
	// rather than stacking full-width explorer pools.
	c.journal.Add(reqID, trace.Event{Kind: trace.KindLocalFallback, Range: prefixes})
	select {
	case c.exploreSem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.exploreSem }()
	exploreStart := time.Now()
	agg, err := sh.Explore(roots)
	if err != nil {
		return nil, err
	}
	c.prefixLocal.Add(1)
	c.journal.Add(reqID, trace.Event{Kind: trace.KindExplore, Range: prefixes,
		Detail: fmt.Sprintf("explored locally in %v", time.Since(exploreStart).Round(time.Microsecond))})
	c.logf("shard: %s range %s explored locally", id, prefixes)
	if env, err := experiments.NewShardEnvelope(id, params, roots, agg); err == nil {
		c.storeSlice(reqID, env)
	}
	return agg, nil
}

// storeSlice writes one computed range back to the artifact store,
// best-effort: caching is an optimisation, never a reason to fail a
// range that was just computed successfully.
func (c *Coordinator) storeSlice(reqID string, env experiments.ShardEnvelope) {
	if c.sliceCache == nil {
		return
	}
	if err := c.sliceCache.PutSlice(env); err != nil {
		c.logf("shard: storing slice %s %s: %v", env.ID, env.Prefixes, err)
		return
	}
	c.journal.Add(reqID, trace.Event{Kind: trace.KindSliceCacheStore, Range: env.Prefixes,
		Detail: "coordinator artifact store"})
}

// fetchSlice retrieves one prefix range's aggregate from one worker,
// under the same in-flight cap, timeout, eviction, and revival rules
// as a whole-experiment fetch, returning the decoded aggregate and
// the validated wire envelope (the form the artifact store keeps). A
// worker serving a different generation of this experiment's space
// (per-family SpaceVersion) fails the attempt: its numbers describe a
// different space — and because the check is per space, a fleet
// mid-rollout of one family's code keeps serving every other family.
func (c *Coordinator) fetchSlice(ctx context.Context, w *worker, id string, ps experiments.ParamSet, sh experiments.Shardable, prefixes string) (experiments.Aggregate, experiments.ShardEnvelope, error) {
	var agg experiments.Aggregate
	var env experiments.ShardEnvelope
	params := ps.Canonical()
	query := "?"
	if pq := ps.Query(); pq != "" {
		query += pq + "&"
	}
	path := "/experiments/" + url.PathEscape(id) + query + "prefixes=" + url.QueryEscape(prefixes)
	err := c.fetchWorker(ctx, w, path, func(body io.Reader) error {
		var err error
		env, err = experiments.DecodeShard(body)
		if err != nil {
			return err
		}
		if env.ID != id || env.Prefixes != prefixes || env.Params != params {
			return fmt.Errorf("shard envelope for %s %s params %q, want %s %s params %q",
				env.ID, env.Prefixes, env.Params, id, prefixes, params)
		}
		if want := experiments.SpaceVersion(id); env.SpaceVersion != want {
			return fmt.Errorf("worker space %s, want %s", env.SpaceVersion, want)
		}
		agg, err = sh.Decode(env.Aggregate)
		return err
	})
	return agg, env, err
}

// pick returns the selectable, untried worker with the lowest load,
// charging it one in-flight slot (the caller releases it), or nil
// when no worker qualifies.
func (c *Coordinator) pick(tried map[*worker]bool) *worker {
	c.pickMu.Lock()
	defer c.pickMu.Unlock()
	now := c.now()
	var best *worker
	for _, w := range c.workers {
		if tried[w] || !w.selectable(now) {
			continue
		}
		if best == nil || w.load(now) < best.load(now) {
			best = w
		}
	}
	if best != nil {
		best.inflight.Add(1)
	}
	return best
}

// fetchWorker performs one GET against a worker, holding a slot of
// the worker's in-flight cap for the duration (body read included)
// under the per-request timeout, and applies the shared failure
// policy: a transport failure evicts the worker — unless it is this
// request's own deadline, because a slow experiment is not a dead
// worker — a non-200 drains a bounded body prefix and fails the
// attempt, and a fully decoded success (decode returned nil) restores
// an evicted worker to rotation. Both the whole-experiment and the
// prefix-slice paths go through here so the failover policy cannot
// diverge between them.
func (c *Coordinator) fetchWorker(ctx context.Context, w *worker, pathAndQuery string, decode func(io.Reader) error) error {
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-w.sem }()
	// The latency record spans request start to body decoded — queue
	// time on the worker's semaphore excluded, because that measures
	// this coordinator's cap, not the worker. Failures are recorded
	// too: a worker failing fast must not look fast and healthy.
	start := time.Now()
	w.fetches.Add(1)
	err := c.fetchWorkerLocked(ctx, w, pathAndQuery, decode)
	w.lat.Record(time.Since(start))
	if err != nil {
		w.errors.Add(1)
	}
	return err
}

// fetchWorkerLocked is fetchWorker's body, split out so the latency
// and error accounting wraps every return path exactly once.
func (c *Coordinator) fetchWorkerLocked(ctx context.Context, w *worker, pathAndQuery string, decode func(io.Reader) error) error {
	ctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+pathAndQuery, nil)
	if err != nil {
		return err
	}
	// The trace ID crosses the process boundary here: the worker
	// journals its slice-cache and exploration decisions under the same
	// ID the coordinator journals selection under.
	reqID := trace.IDFrom(ctx)
	if reqID != "" {
		req.Header.Set(trace.Header, reqID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			c.evict(w)
			c.journal.Add(reqID, trace.Event{Kind: trace.KindEvict, Worker: w.base, Detail: err.Error()})
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	// A worker on a different experiment generation answers 200 with
	// perfectly decodable bytes from the wrong registry; merging them
	// would break byte-identity silently, so the attempt fails
	// instead. Workers too old to send the header are caught by the
	// probe's /stats version check.
	if v := resp.Header.Get(server.RegistryVersionHeader); v != "" && v != experiments.RegistryVersion {
		c.journal.Add(reqID, trace.Event{Kind: trace.KindRegistryReject, Worker: w.base,
			Detail: fmt.Sprintf("worker registry %s, want %s", v, experiments.RegistryVersion)})
		return fmt.Errorf("worker registry %s, want %s", v, experiments.RegistryVersion)
	}
	if err := decode(resp.Body); err != nil {
		return err
	}
	if c.revive(w) {
		c.journal.Add(reqID, trace.Event{Kind: trace.KindRevive, Worker: w.base})
	}
	return nil
}

// fetch retrieves one experiment whole from one worker.
func (c *Coordinator) fetch(ctx context.Context, w *worker, id string) (experiments.Result, error) {
	var res experiments.Result
	err := c.fetchWorker(ctx, w, "/experiments/"+url.PathEscape(id)+"?format=json", func(body io.Reader) error {
		results, err := experiments.DecodeJSON(body)
		if err != nil {
			return err
		}
		if len(results) != 1 || results[0].ID != id || results[0].Err != nil || results[0].Table == nil {
			return fmt.Errorf("unusable result payload")
		}
		res = results[0]
		return nil
	})
	return res, err
}

// runLocal executes one experiment through the in-process engine,
// bounded by the local-fallback concurrency (Options.Local.Jobs).
func (c *Coordinator) runLocal(ctx context.Context, id string) (experiments.Result, error) {
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return experiments.Result{ID: id, Err: ctx.Err()}, nil
	}
	defer func() { <-c.localSem }()
	opts := c.local
	opts.IDs = []string{id}
	opts.Jobs = 1
	results, err := experiments.Run(ctx, opts)
	if err != nil {
		return experiments.Result{}, err
	}
	c.localRuns.Add(1)
	c.logf("shard: %s ran locally", id)
	return results[0], nil
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		WorkersTotal:       len(c.workers),
		Remote:             c.remote.Load(),
		Local:              c.localRuns.Load(),
		Failovers:          c.failovers.Load(),
		PrefixSharded:      c.prefixSharded.Load(),
		PrefixRangesRemote: c.prefixRemote.Load(),
		PrefixRangesLocal:  c.prefixLocal.Load(),
		PrefixRangesCached: c.prefixCached.Load(),
		RangesReassigned:   c.rangesReassigned.Load(),
	}
	for _, w := range c.workers {
		if w.healthy.Load() {
			st.WorkersHealthy++
		}
		st.Workers = append(st.Workers, WorkerStats{
			Addr:    w.base,
			Healthy: w.healthy.Load(),
			Fetches: w.fetches.Load(),
			Errors:  w.errors.Load(),
			Latency: w.lat.Snapshot(),
		})
	}
	return st
}
