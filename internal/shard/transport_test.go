package shard

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/server"
)

// TestDefaultClientReusesConnections pins the tuned default transport:
// sequential requests against one host must ride the same kept-alive
// connection, observed through httptrace — the stock &http.Client{}
// behaviour this replaced would also reuse, but with an idle pool of 2
// per host, below the in-flight cap a coordinator pushes.
func TestDefaultClientReusesConnections(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	client := defaultClient(DefaultMaxInFlight)
	if tr, ok := client.Transport.(*http.Transport); !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", client.Transport)
	} else {
		if tr.MaxIdleConnsPerHost < DefaultMaxInFlight {
			t.Fatalf("MaxIdleConnsPerHost = %d, below the in-flight cap %d", tr.MaxIdleConnsPerHost, DefaultMaxInFlight)
		}
		if tr.DisableKeepAlives {
			t.Fatal("keep-alives disabled on the tuned transport")
		}
	}

	var reused atomic.Int64
	do := func() {
		trace := &httptrace.ClientTrace{
			GotConn: func(info httptrace.GotConnInfo) {
				if info.Reused {
					reused.Add(1)
				}
			},
		}
		req, err := http.NewRequestWithContext(httptrace.WithClientTrace(context.Background(), trace), "GET", ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	const requests = 5
	for i := 0; i < requests; i++ {
		do()
	}
	// The first request dials; every subsequent one must reuse.
	if got := reused.Load(); got != requests-1 {
		t.Errorf("%d of %d follow-up requests reused a connection, want all %d", got, requests-1, requests-1)
	}
}

// TestCoordinatorReusesConnections is the integration half: a
// coordinator built without an explicit Client, running two batches
// against one worker, must open far fewer TCP connections than it
// sends requests — the second batch rides the first batch's idle
// pool instead of re-dialing.
func TestCoordinatorReusesConnections(t *testing.T) {
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6"}
	reg, _ := syntheticRegistry(ids...)

	var conns, requests atomic.Int64
	workerHandler := server.New(server.Options{Registry: reg})
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		workerHandler.ServeHTTP(w, r)
	}))
	ts.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	localReg, _ := syntheticRegistry(ids...)
	coord, err := New(Options{
		Workers: []string{ts.URL},
		Local:   experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		if _, err := coord.Run(context.Background(), ids); err != nil {
			t.Fatal(err)
		}
	}

	gotConns, gotReqs := conns.Load(), requests.Load()
	if gotReqs < int64(2*len(ids)) {
		t.Fatalf("worker saw %d requests, want at least %d", gotReqs, 2*len(ids))
	}
	// At most one connection per in-flight slot (plus the startup
	// probe, which shares the pool): a client that re-dialed per
	// request would open one per request instead.
	if limit := int64(DefaultMaxInFlight + 1); gotConns > limit {
		t.Errorf("worker saw %d new connections over %d requests, want at most %d", gotConns, gotReqs, limit)
	}
}
