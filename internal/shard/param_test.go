package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/server"
)

// paramFixture builds one synthetic parameterized family (integer
// parameter x, default 1) plus its fixed-point registry entry and an
// execution counter. With shardable set, every point of the family
// prefix-shards over the synthetic 8-root partition, with x folded
// into the aggregate so distinct points render distinct tables.
func paramFixture(id string, shardable bool) (map[string]experiments.Runner, map[string]experiments.Family, *atomic.Int64) {
	execs := new(atomic.Int64)
	shAt := func(x int) experiments.Shardable {
		sh, _ := newTestShardable(id)
		inner := sh.Explore
		sh.Explore = func(roots [][]int) (experiments.Aggregate, error) {
			execs.Add(1)
			agg, err := inner(roots)
			if err != nil {
				return nil, err
			}
			a := agg.(*sliceAgg)
			a.Sum += x * len(roots)
			return a, nil
		}
		finish := sh.Finish
		sh.Finish = func(agg experiments.Aggregate) (*experiments.Table, error) {
			tab, err := finish(agg)
			if err != nil {
				return nil, err
			}
			tab.Title = fmt.Sprintf("%s at x=%d", tab.Title, x)
			return tab, nil
		}
		return sh
	}
	fam := experiments.Family{
		ID:  id,
		Doc: "synthetic parameterized family",
		Params: []experiments.ParamSpec{
			{Name: "x", Kind: experiments.ParamInt, Default: "1", Min: 0, Max: 9, Doc: "the point"},
		},
		Run: func(ps experiments.ParamSet) (*experiments.Table, error) {
			x := ps.Int("x")
			if shardable {
				return shardableRunner(shAt(x))()
			}
			execs.Add(1)
			return &experiments.Table{
				ID:      id,
				Title:   fmt.Sprintf("point x=%d", x),
				Headers: []string{"x"},
				Rows:    [][]string{{fmt.Sprint(x)}},
			}, nil
		},
	}
	if shardable {
		fam.Shardable = func(ps experiments.ParamSet) experiments.Shardable {
			return shAt(ps.Int("x"))
		}
	}
	defaults, err := experiments.DefaultParams(fam)
	if err != nil {
		panic(err)
	}
	reg := map[string]experiments.Runner{
		id: func() (*experiments.Table, error) { return fam.Run(defaults) },
	}
	return reg, map[string]experiments.Family{id: fam}, execs
}

// newParamWorker stands up a worker serving the synthetic family's
// points (and its fixed default).
func newParamWorker(t *testing.T, id string, shardable bool) (addr string, execs *atomic.Int64) {
	t.Helper()
	reg, fams, execs := paramFixture(id, shardable)
	ts := httptest.NewServer(server.New(server.Options{Registry: reg, Families: fams}))
	t.Cleanup(ts.Close)
	return ts.URL, execs
}

// paramPoint parses "x=N" against the fixture family.
func paramPoint(t *testing.T, fams map[string]experiments.Family, id, list string) experiments.ParamSet {
	t.Helper()
	ps, err := experiments.ParseParamList(fams[id], list)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestRunParamDefaultPointAliasesFixed: the zero ParamSet routes
// through the fixed-experiment path — remote fetch, whole-experiment
// counters, no family machinery.
func TestRunParamDefaultPointAliasesFixed(t *testing.T) {
	const id = "E1"
	w, fleetExecs := newParamWorker(t, id, false)
	localReg, localFams, localExecs := paramFixture(id, false)
	coord, err := New(Options{
		Workers:  []string{w},
		Families: localFams,
		Local:    experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.RunParam(context.Background(), id, experiments.ParamSet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Table == nil || res.Table.Title != "point x=1" {
		t.Fatalf("default point result = %+v", res)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d local executions with a healthy fleet", n)
	}
	if fleetExecs.Load() == 0 {
		t.Error("fleet executed nothing")
	}
	if st := coord.Stats(); st.Remote != 1 {
		t.Errorf("stats = %+v, want one remote whole fetch", st)
	}
}

// TestRunParamWholeFetchAndFrontCache: a non-default point of a
// non-shardable family is fetched whole from a worker, stored in the
// coordinator's front cache under id+params, and served from there on
// the second call without touching the fleet.
func TestRunParamWholeFetchAndFrontCache(t *testing.T) {
	const id = "E1"
	w, fleetExecs := newParamWorker(t, id, false)
	store, err := cache.Open(t.TempDir(), cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	localReg, localFams, localExecs := paramFixture(id, false)
	coord, err := New(Options{
		Workers:  []string{w},
		Families: localFams,
		Local:    experiments.Options{Registry: localReg, Jobs: 1, Cache: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := paramPoint(t, localFams, id, "x=7")
	res, err := coord.RunParam(context.Background(), id, ps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Table == nil || res.Table.Title != "point x=7" {
		t.Fatalf("point result = %+v", res)
	}
	if res.Cached {
		t.Error("cold point reported cached")
	}
	fetched := fleetExecs.Load()
	if fetched == 0 {
		t.Fatal("fleet executed nothing for the point")
	}
	again, err := coord.RunParam(context.Background(), id, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Table.Title != "point x=7" {
		t.Fatalf("warm point = %+v, want front-cache hit", again)
	}
	if n := fleetExecs.Load(); n != fetched {
		t.Errorf("warm call reached the fleet (%d -> %d executions)", fetched, n)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d local executions with a healthy fleet", n)
	}
}

// TestRunParamDeadFleetRunsLocally: every worker down, the point
// degrades to local evaluation exactly like a fixed experiment.
func TestRunParamDeadFleetRunsLocally(t *testing.T) {
	const id = "E1"
	localReg, localFams, localExecs := paramFixture(id, false)
	coord, err := New(Options{
		Workers:  []string{"http://" + deadAddr(t)},
		Families: localFams,
		Local:    experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := paramPoint(t, localFams, id, "x=3")
	res, err := coord.RunParam(context.Background(), id, ps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Table == nil || res.Table.Title != "point x=3" {
		t.Fatalf("fallback result = %+v", res)
	}
	if n := localExecs.Load(); n != 1 {
		t.Errorf("local executions = %d, want 1", n)
	}
	if st := coord.Stats(); st.Local != 1 {
		t.Errorf("stats = %+v, want one local run", st)
	}
}

// TestRunParamUnknownFamily: a parameterized request for an experiment
// with no registered family is a coordinator error, not a panic or a
// silent fixed-point run.
func TestRunParamUnknownFamily(t *testing.T) {
	reg, _ := syntheticRegistry("E1")
	coord, err := New(Options{
		Workers: []string{"http://" + deadAddr(t)},
		Local:   experiments.Options{Registry: reg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, fams, _ := paramFixture("E1", false)
	ps := paramPoint(t, fams, "E1", "x=2")
	if _, err := coord.RunParam(context.Background(), "E1", ps); err == nil ||
		!strings.Contains(err.Error(), "no parameter family") {
		t.Fatalf("err = %v, want a no-parameter-family error", err)
	}
}

// TestRunParamPrefixShardedByteIdentical: a non-default point of a
// shardable family carves across two workers at that point and merges
// to the bytes a local evaluation of the same point produces.
func TestRunParamPrefixShardedByteIdentical(t *testing.T) {
	const id = "E2"
	w1, execs1 := newParamWorker(t, id, true)
	w2, execs2 := newParamWorker(t, id, true)
	localReg, localFams, localExecs := paramFixture(id, true)
	coord, err := New(Options{
		Workers:  []string{w1, w2},
		Families: localFams,
		Local:    experiments.Options{Registry: localReg, Jobs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := paramPoint(t, localFams, id, "x=5")
	res, err := coord.RunParam(context.Background(), id, ps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	baselineReg, baselineFams, _ := paramFixture(id, true)
	_ = baselineReg
	want, err := baselineFams[id].Run(paramPoint(t, baselineFams, id, "x=5"))
	if err != nil {
		t.Fatal(err)
	}
	got := encodeAll(t, []experiments.Result{res})
	wantBytes := encodeAll(t, []experiments.Result{{ID: id, Table: want}})
	if !bytes.Equal(got, wantBytes) {
		t.Errorf("sharded point differs from local point:\n%s\nvs\n%s", got, wantBytes)
	}
	if n := localExecs.Load(); n != 0 {
		t.Errorf("%d local explorations with a healthy fleet", n)
	}
	if execs1.Load()+execs2.Load() == 0 {
		t.Error("no worker explored any slice of the point")
	}
	if st := coord.Stats(); st.PrefixSharded != 1 || st.PrefixRangesLocal != 0 {
		t.Errorf("stats = %+v, want a fully remote prefix-sharded run", st)
	}
}
