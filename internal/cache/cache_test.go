package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
)

func tableResult(id, title string) experiments.Result {
	return experiments.Result{ID: id, Table: &experiments.Table{
		ID:      id,
		Title:   title,
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"note"},
	}}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	want := tableResult("E1", "round trip")
	if err := s.Put("E1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("E1")
	if !ok {
		t.Fatal("Get missed a fresh Put")
	}
	if got.Err != nil || got.Table == nil {
		t.Fatalf("got %+v", got)
	}
	if got.Table.Title != want.Table.Title || len(got.Table.Rows) != 2 || got.Table.Rows[1][1] != "4" {
		t.Fatalf("table mangled: %+v", got.Table)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMissOnEmptyStore(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, ok := s.Get("E1"); ok {
		t.Fatal("hit on empty store")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefusesFailedResult(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put("E1", experiments.Result{ID: "E1", Err: errors.New("boom")}); err == nil {
		t.Fatal("stored a failed result")
	}
	if err := s.Put("E1", experiments.Result{ID: "E1"}); err == nil {
		t.Fatal("stored a result with no table")
	}
	if _, ok := s.Get("E1"); ok {
		t.Fatal("refused Put still produced a hit")
	}
}

// entryPaths returns the store's entry files.
func entryPaths(t *testing.T, s *Store) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestCorruptedEntryIsAMissAndRemoved(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":   func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b },
		"not json":   func([]byte) []byte { return []byte("garbage") },
		"empty file": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t, Options{})
			if err := s.Put("E1", tableResult("E1", "victim")); err != nil {
				t.Fatal(err)
			}
			paths := entryPaths(t, s)
			if len(paths) != 1 {
				t.Fatalf("entries = %v", paths)
			}
			raw, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(paths[0], corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("E1"); ok {
				t.Fatal("served a corrupted entry")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v", st)
			}
			if left := entryPaths(t, s); len(left) != 0 {
				t.Fatalf("corrupted entry not removed: %v", left)
			}
		})
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	bumps := map[string]Options{
		"registry": {RegistryVersion: "e1-e14/v2"},
		"go":       {GoVersion: "go9.9.9"},
		"module":   {ModuleVersion: "repro@v2.0.0"},
	}
	for name, opts := range bumps {
		t.Run(name, func(t *testing.T) {
			old, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := old.Put("E1", tableResult("E1", "old generation")); err != nil {
				t.Fatal(err)
			}
			bumped, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := bumped.Get("E1"); ok {
				t.Fatalf("%s bump still hit the old entry", name)
			}
			// The old generation remains valid for the old key.
			if _, ok := old.Get("E1"); !ok {
				t.Fatal("old-generation entry lost")
			}
		})
	}
}

// TestMismatchedEntryKeyRejected copies an entry file onto the path a
// different store generation would look up — the recorded key no
// longer matches, so it must be discarded even though the checksum is
// intact.
func TestMismatchedEntryKeyRejected(t *testing.T) {
	dir := t.TempDir()
	v1, err := Open(dir, Options{RegistryVersion: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("E1", tableResult("E1", "from v1")); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, Options{RegistryVersion: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	src := v1.path(v1.keyFor("E1", "", ""))
	dst := v2.path(v2.keyFor("E1", "", ""))
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get("E1"); ok {
		t.Fatal("served an entry recorded under a different key")
	}
	if st := v2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFingerprintSeparatesFields(t *testing.T) {
	a := ArtifactKey{ID: "E1", SpaceVersion: "v1"}
	b := ArtifactKey{ID: "E1v", SpaceVersion: "1"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("field boundaries not separated in the fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// A slice key must never collide with a whole key, including the
	// pathological spelling where the prefix set leaks into another
	// field: the part stream is length-prefixed, so the part count
	// parses unambiguously.
	s := ArtifactKey{ID: "E1", SpaceVersion: "v1", Prefixes: "0.1,1"}
	twisted := ArtifactKey{ID: "E1", SpaceVersion: "v1", ModuleVersion: "5:0.1,1"}
	if s.Fingerprint() == a.Fingerprint() || s.Fingerprint() == twisted.Fingerprint() {
		t.Fatal("slice key collides with a whole key")
	}
}

// entryBytes measures the on-disk size of one representative entry so
// the LRU tests can pick caps that fit exactly N entries.
func entryBytes(t *testing.T) int64 {
	t.Helper()
	s := mustOpen(t, Options{})
	if err := s.Put("E1", tableResult("E1", "probe")); err != nil {
		t.Fatal(err)
	}
	paths := entryPaths(t, s)
	if len(paths) != 1 {
		t.Fatalf("entries = %v", paths)
	}
	info, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestLRUEviction(t *testing.T) {
	// Cap fits one entry but not two (titles differ by a byte or two,
	// hence the slack).
	s, err := Open(t.TempDir(), Options{MaxBytes: entryBytes(t) + 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E1", tableResult("E1", "first")); err != nil {
		t.Fatal(err)
	}
	// Backdate E1 so mtime ordering is unambiguous on coarse clocks;
	// the second Put must then evict it to chase the cap.
	old := time.Now().Add(-time.Hour)
	for _, p := range entryPaths(t, s) {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("E2", tableResult("E2", "second")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("E1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get("E2"); !ok {
		t.Fatal("fresh entry evicted instead of the LRU one")
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	// Cap fits two entries but not three.
	s, err := Open(t.TempDir(), Options{MaxBytes: 2*entryBytes(t) + 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E1", tableResult("E1", "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E2", tableResult("E2", "b")); err != nil {
		t.Fatal(err)
	}
	// Backdate both, then touch E1 via Get: E2 becomes the LRU victim.
	old := time.Now().Add(-time.Hour)
	for _, p := range entryPaths(t, s) {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("warm entry missed")
	}
	if err := s.Put("E3", tableResult("E3", "c")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := s.Get("E2"); ok {
		t.Fatal("least recently used entry survived")
	}
}

// TestStaleTempSweep: orphaned temp files from crashed writes are
// removed on Open, while a fresh temp file (a live writer) survives.
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-crashed")
	fresh := filepath.Join(dir, ".tmp-live")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file not swept on Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file swept — could have been a live writer")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, Options{})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			id := []string{"E1", "E2"}[w%2]
			for i := 0; i < 25; i++ {
				if err := s.Put(id, tableResult(id, "concurrent")); err != nil {
					done <- err
					return
				}
				if r, ok := s.Get(id); ok && r.Table.Title != "concurrent" {
					done <- errors.New("torn read")
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// sliceEnvelope builds a valid slice envelope for the store's own
// registry generation.
func sliceEnvelope(t *testing.T, id, prefixes string) experiments.ShardEnvelope {
	t.Helper()
	roots, err := experiments.ParsePrefixes(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.ShardEnvelope{
		ID:           id,
		SpaceVersion: experiments.RegistryVersion,
		Prefixes:     experiments.FormatPrefixes(roots),
		Aggregate:    json.RawMessage(`{"execs":7}`),
	}
}

// TestFingerprintBackCompat pins the byte-compatibility contract of
// the artifact generalization: a whole-result key hashes exactly the
// four length-prefixed parts the pre-slice scheme hashed, so a store
// written before slice artifacts existed stays warm.
func TestFingerprintBackCompat(t *testing.T) {
	k := ArtifactKey{
		ID:            "E2",
		SpaceVersion:  "e1-e14/v1",
		GoVersion:     "go1.22.0",
		ModuleVersion: "repro@(devel)",
	}
	h := sha256.New()
	for _, part := range []string{k.ID, k.SpaceVersion, k.GoVersion, k.ModuleVersion} {
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	if want := hex.EncodeToString(h.Sum(nil)); k.Fingerprint() != want {
		t.Fatalf("whole-result fingerprint diverged from the pre-slice scheme:\n%s\nvs\n%s", k.Fingerprint(), want)
	}
}

// TestLegacyEnvelopeStillHits: an entry written by the pre-slice
// store — a four-field key object, no prefixes — must still validate
// and serve, because ArtifactKey keeps the old JSON form for whole
// results (omitempty prefixes) and the old fingerprint bytes.
func TestLegacyEnvelopeStillHits(t *testing.T) {
	s := mustOpen(t, Options{})
	var payload bytes.Buffer
	if err := experiments.EncodeJSON(&payload, []experiments.Result{tableResult("E1", "legacy")}); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(compact.Bytes())
	k := s.keyFor("E1", "", "")
	// Hand-build the old envelope shape: the key object spelled with
	// exactly the four legacy fields.
	raw, err := json.Marshal(map[string]any{
		"schema": schemaVersion,
		"key": map[string]string{
			"experiment":       k.ID,
			"registry_version": k.SpaceVersion,
			"go_version":       k.GoVersion,
			"module_version":   k.ModuleVersion,
		},
		"sha256":  hex.EncodeToString(sum[:]),
		"payload": json.RawMessage(compact.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("E1")
	if !ok {
		t.Fatal("legacy whole-result entry missed")
	}
	if got.Table == nil || got.Table.Title != "legacy" {
		t.Fatalf("legacy entry mangled: %+v", got)
	}
}

func TestSlicePutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	env := sliceEnvelope(t, "E2", "0.1,1")
	if err := s.PutSlice(env); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetSlice("E2", "", "0.1,1")
	if !ok {
		t.Fatal("GetSlice missed a fresh PutSlice")
	}
	if got.ID != "E2" || got.Prefixes != "0.1,1" || got.SpaceVersion != experiments.RegistryVersion {
		t.Fatalf("envelope mangled: %+v", got)
	}
	var agg struct {
		Execs int `json:"execs"`
	}
	if err := json.Unmarshal(got.Aggregate, &agg); err != nil || agg.Execs != 7 {
		t.Fatalf("aggregate mangled: %s (%v)", got.Aggregate, err)
	}
	if st := s.Stats(); st.SliceHits != 1 || st.SliceMisses != 0 || st.SliceStores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The slice entry must not shadow or collide with the whole key.
	if _, ok := s.Get("E2"); ok {
		t.Fatal("slice entry served as a whole result")
	}
	if _, ok := s.GetSlice("E2", "", "0.1"); ok {
		t.Fatal("wrong prefix set hit")
	}
	if _, ok := s.GetSlice("E2", "", ""); ok {
		t.Fatal("empty prefix set is not a slice")
	}
}

func TestPutSliceRefusals(t *testing.T) {
	s := mustOpen(t, Options{})
	wrongGen := sliceEnvelope(t, "E2", "0")
	wrongGen.SpaceVersion = "other-gen/v9"
	for name, env := range map[string]experiments.ShardEnvelope{
		"wrong generation": wrongGen,
		"no id":            {Prefixes: "0", SpaceVersion: experiments.RegistryVersion, Aggregate: json.RawMessage(`{}`)},
		"no prefixes":      {ID: "E2", SpaceVersion: experiments.RegistryVersion, Aggregate: json.RawMessage(`{}`)},
		"no aggregate":     {ID: "E2", Prefixes: "0", SpaceVersion: experiments.RegistryVersion},
	} {
		if err := s.PutSlice(env); err == nil {
			t.Errorf("PutSlice accepted %s", name)
		}
	}
	if st := s.Stats(); st.SliceStores != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if left := entryPaths(t, s); len(left) != 0 {
		t.Fatalf("refused PutSlice left entries: %v", left)
	}
}

// TestCorruptSliceIsAMissAndRemoved: a damaged slice entry is deleted
// and counted, and — crucially for the read-through hierarchy — the
// neighbouring slice and whole entries keep serving, so corruption
// re-explores one range, never the whole space.
func TestCorruptSliceIsAMissAndRemoved(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put("E2", tableResult("E2", "whole")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSlice(sliceEnvelope(t, "E2", "0")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSlice(sliceEnvelope(t, "E2", "1")); err != nil {
		t.Fatal(err)
	}
	victim := s.path(s.keyFor("E2", "", "1"))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSlice("E2", "", "1"); ok {
		t.Fatal("served a corrupted slice")
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("corrupted slice not removed")
	}
	if st := s.Stats(); st.SliceMisses != 1 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := s.GetSlice("E2", "", "0"); !ok {
		t.Fatal("healthy sibling slice lost")
	}
	if _, ok := s.Get("E2"); !ok {
		t.Fatal("whole entry lost to a corrupt slice")
	}
}

// TestSlicePayloadKindsDontCross: a slice envelope handcrafted onto a
// whole key (and vice versa) passes the checksum but fails the
// payload decode — rejected, removed, counted.
func TestSlicePayloadKindsDontCross(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.PutSlice(sliceEnvelope(t, "E2", "0")); err != nil {
		t.Fatal(err)
	}
	// Rewrite the slice entry under the whole key, fixing the recorded
	// key so only the payload kind is wrong.
	raw, err := os.ReadFile(s.path(s.keyFor("E2", "", "0")))
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env.Key = s.keyFor("E2", "", "")
	forged, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(env.Key), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("E2"); ok {
		t.Fatal("slice payload served as a whole result")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMixedEviction: whole results and slice aggregates share one
// byte cap and one LRU order — recently used entries of either kind
// survive, the stale ones go, whatever their kind.
func TestMixedEviction(t *testing.T) {
	// A cap that fits roughly three entries of the sizes used here.
	s, err := Open(t.TempDir(), Options{MaxBytes: 3*entryBytes(t) + 48})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E1", tableResult("E1", "whole-old")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSlice(sliceEnvelope(t, "E2", "0")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSlice(sliceEnvelope(t, "E2", "1")); err != nil {
		t.Fatal(err)
	}
	// Backdate everything, then refresh the whole entry and one slice:
	// the untouched slice becomes the LRU victim of the next write.
	old := time.Now().Add(-time.Hour)
	for _, p := range entryPaths(t, s) {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("whole entry missed")
	}
	if _, ok := s.GetSlice("E2", "", "0"); !ok {
		t.Fatal("slice entry missed")
	}
	if err := s.PutSlice(sliceEnvelope(t, "E2", "2")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSlice("E2", "", "1"); ok {
		t.Fatal("LRU slice survived a mixed eviction")
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("recently used whole entry evicted")
	}
	if _, ok := s.GetSlice("E2", "", "0"); !ok {
		t.Fatal("recently used slice evicted")
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
