package cache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
)

func tableResult(id, title string) experiments.Result {
	return experiments.Result{ID: id, Table: &experiments.Table{
		ID:      id,
		Title:   title,
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"note"},
	}}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	want := tableResult("E1", "round trip")
	if err := s.Put("E1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("E1")
	if !ok {
		t.Fatal("Get missed a fresh Put")
	}
	if got.Err != nil || got.Table == nil {
		t.Fatalf("got %+v", got)
	}
	if got.Table.Title != want.Table.Title || len(got.Table.Rows) != 2 || got.Table.Rows[1][1] != "4" {
		t.Fatalf("table mangled: %+v", got.Table)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMissOnEmptyStore(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, ok := s.Get("E1"); ok {
		t.Fatal("hit on empty store")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefusesFailedResult(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Put("E1", experiments.Result{ID: "E1", Err: errors.New("boom")}); err == nil {
		t.Fatal("stored a failed result")
	}
	if err := s.Put("E1", experiments.Result{ID: "E1"}); err == nil {
		t.Fatal("stored a result with no table")
	}
	if _, ok := s.Get("E1"); ok {
		t.Fatal("refused Put still produced a hit")
	}
}

// entryPaths returns the store's entry files.
func entryPaths(t *testing.T, s *Store) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestCorruptedEntryIsAMissAndRemoved(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":   func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b },
		"not json":   func([]byte) []byte { return []byte("garbage") },
		"empty file": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t, Options{})
			if err := s.Put("E1", tableResult("E1", "victim")); err != nil {
				t.Fatal(err)
			}
			paths := entryPaths(t, s)
			if len(paths) != 1 {
				t.Fatalf("entries = %v", paths)
			}
			raw, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(paths[0], corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("E1"); ok {
				t.Fatal("served a corrupted entry")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v", st)
			}
			if left := entryPaths(t, s); len(left) != 0 {
				t.Fatalf("corrupted entry not removed: %v", left)
			}
		})
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	bumps := map[string]Options{
		"registry": {RegistryVersion: "e1-e14/v2"},
		"go":       {GoVersion: "go9.9.9"},
		"module":   {ModuleVersion: "repro@v2.0.0"},
	}
	for name, opts := range bumps {
		t.Run(name, func(t *testing.T) {
			old, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := old.Put("E1", tableResult("E1", "old generation")); err != nil {
				t.Fatal(err)
			}
			bumped, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := bumped.Get("E1"); ok {
				t.Fatalf("%s bump still hit the old entry", name)
			}
			// The old generation remains valid for the old key.
			if _, ok := old.Get("E1"); !ok {
				t.Fatal("old-generation entry lost")
			}
		})
	}
}

// TestMismatchedEntryKeyRejected copies an entry file onto the path a
// different store generation would look up — the recorded key no
// longer matches, so it must be discarded even though the checksum is
// intact.
func TestMismatchedEntryKeyRejected(t *testing.T) {
	dir := t.TempDir()
	v1, err := Open(dir, Options{RegistryVersion: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("E1", tableResult("E1", "from v1")); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, Options{RegistryVersion: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	src := v1.path(v1.keyFor("E1"))
	dst := v2.path(v2.keyFor("E1"))
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get("E1"); ok {
		t.Fatal("served an entry recorded under a different key")
	}
	if st := v2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFingerprintSeparatesFields(t *testing.T) {
	a := Key{Experiment: "E1", RegistryVersion: "v1"}
	b := Key{Experiment: "E1v", RegistryVersion: "1"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("field boundaries not separated in the fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

// entryBytes measures the on-disk size of one representative entry so
// the LRU tests can pick caps that fit exactly N entries.
func entryBytes(t *testing.T) int64 {
	t.Helper()
	s := mustOpen(t, Options{})
	if err := s.Put("E1", tableResult("E1", "probe")); err != nil {
		t.Fatal(err)
	}
	paths := entryPaths(t, s)
	if len(paths) != 1 {
		t.Fatalf("entries = %v", paths)
	}
	info, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestLRUEviction(t *testing.T) {
	// Cap fits one entry but not two (titles differ by a byte or two,
	// hence the slack).
	s, err := Open(t.TempDir(), Options{MaxBytes: entryBytes(t) + 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E1", tableResult("E1", "first")); err != nil {
		t.Fatal(err)
	}
	// Backdate E1 so mtime ordering is unambiguous on coarse clocks;
	// the second Put must then evict it to chase the cap.
	old := time.Now().Add(-time.Hour)
	for _, p := range entryPaths(t, s) {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("E2", tableResult("E2", "second")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("E1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get("E2"); !ok {
		t.Fatal("fresh entry evicted instead of the LRU one")
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	// Cap fits two entries but not three.
	s, err := Open(t.TempDir(), Options{MaxBytes: 2*entryBytes(t) + 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E1", tableResult("E1", "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("E2", tableResult("E2", "b")); err != nil {
		t.Fatal(err)
	}
	// Backdate both, then touch E1 via Get: E2 becomes the LRU victim.
	old := time.Now().Add(-time.Hour)
	for _, p := range entryPaths(t, s) {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("warm entry missed")
	}
	if err := s.Put("E3", tableResult("E3", "c")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("E1"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := s.Get("E2"); ok {
		t.Fatal("least recently used entry survived")
	}
}

// TestStaleTempSweep: orphaned temp files from crashed writes are
// removed on Open, while a fresh temp file (a live writer) survives.
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-crashed")
	fresh := filepath.Join(dir, ".tmp-live")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file not swept on Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file swept — could have been a live writer")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, Options{})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			id := []string{"E1", "E2"}[w%2]
			for i := 0; i < 25; i++ {
				if err := s.Put(id, tableResult(id, "concurrent")); err != nil {
					done <- err
					return
				}
				if r, ok := s.Get(id); ok && r.Table.Title != "concurrent" {
					done <- errors.New("torn read")
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
