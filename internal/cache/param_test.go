package cache

import (
	"errors"
	"testing"

	"repro/internal/experiments"
)

// TestParamPutGetRoundTrip: parameter points are artifacts like any
// other — stored under id+params, invisible to other points and to the
// fixed entry.
func TestParamPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	want := tableResult("E2", "k=1 point")
	if err := s.PutParam("E2", "i0=0,i1=1,k=1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetParam("E2", "i0=0,i1=1,k=1")
	if !ok || got.Table == nil || got.Table.Title != "k=1 point" {
		t.Fatalf("param round trip: ok=%v got=%+v", ok, got)
	}
	if _, ok := s.GetParam("E2", "i0=0,i1=1,k=2"); ok {
		t.Fatal("a different point hit the k=1 entry")
	}
	if _, ok := s.Get("E2"); ok {
		t.Fatal("the fixed entry hit a parameterized artifact")
	}
}

// TestParamEmptyDelegatesToFixed pins the aliasing contract: params ""
// is the fixed experiment's slot, both directions.
func TestParamEmptyDelegatesToFixed(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.PutParam("E2", "", tableResult("E2", "via param path")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("E2"); !ok || got.Table.Title != "via param path" {
		t.Fatalf("fixed Get missed the \"\"-params Put: ok=%v got=%+v", ok, got)
	}
	if err := s.Put("E2", tableResult("E2", "via fixed path")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetParam("E2", ""); !ok || got.Table.Title != "via fixed path" {
		t.Fatalf("\"\"-params Get missed the fixed Put: ok=%v got=%+v", ok, got)
	}
}

func TestParamPutRefusesFailedResult(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.PutParam("E2", "k=1", experiments.Result{ID: "E2", Err: errors.New("boom")}); err == nil {
		t.Fatal("stored a failed parameterized result")
	}
	if err := s.PutParam("E2", "k=1", experiments.Result{ID: "E2"}); err == nil {
		t.Fatal("stored a tableless parameterized result")
	}
	if _, ok := s.GetParam("E2", "k=1"); ok {
		t.Fatal("refused PutParam still produced a hit")
	}
}

// TestParamKeySeparatesFromPrefixes: a params-only key and a
// prefixes-only key with colliding spellings must stay distinct
// fingerprints (the "params" tag parts make the streams unambiguous).
func TestParamKeySeparatesFromPrefixes(t *testing.T) {
	p := ArtifactKey{ID: "E2", SpaceVersion: "v", Params: "0.1,1"}
	sl := ArtifactKey{ID: "E2", SpaceVersion: "v", Prefixes: "0.1,1"}
	whole := ArtifactKey{ID: "E2", SpaceVersion: "v"}
	if p.Fingerprint() == sl.Fingerprint() {
		t.Fatal("params-only key collides with prefixes-only key")
	}
	if p.Fingerprint() == whole.Fingerprint() {
		t.Fatal("params key collides with the whole-result key")
	}
}

// TestParamSurvivesReopen: parameterized artifacts persist like whole
// results — same directory, new Store, still warm.
func TestParamSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PutParam("E15", "c=3,i0=0,i1=1", tableResult("E15", "c=3")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetParam("E15", "c=3,i0=0,i1=1"); !ok || got.Table.Title != "c=3" {
		t.Fatalf("reopened store missed the param entry: ok=%v got=%+v", ok, got)
	}
}

// TestSpaceVersionPartitionsParams: the same parameter point under
// different space versions is two artifacts — the per-family bump
// moves parameterized entries along with the fixed one.
func TestSpaceVersionPartitionsParams(t *testing.T) {
	dir := t.TempDir()
	v1, err := Open(dir, Options{SpaceVersion: func(string) string { return "fam/v1" }})
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.PutParam("E2", "k=1", tableResult("E2", "v1 point")); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, Options{SpaceVersion: func(string) string { return "fam/v2" }})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.GetParam("E2", "k=1"); ok {
		t.Fatal("a bumped space served the old generation's point")
	}
	if got, ok := v1.GetParam("E2", "k=1"); !ok || got.Table.Title != "v1 point" {
		t.Fatalf("old generation lost its own point: ok=%v got=%+v", ok, got)
	}
}

// TestPerFamilySpaceVersionIsSurgical is the store-level statement of
// the tentpole: a resolver that bumps one family invalidates that
// family's artifacts only.
func TestPerFamilySpaceVersionIsSurgical(t *testing.T) {
	dir := t.TempDir()
	base := func(string) string { return "gen" }
	bumped := func(id string) string {
		if id == "E2" {
			return "gen+E2/v2"
		}
		return "gen"
	}
	s1, err := Open(dir, Options{SpaceVersion: base})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E7"} {
		if err := s1.Put(id, tableResult(id, "warm "+id)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{SpaceVersion: bumped})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("E2"); ok {
		t.Fatal("bumped family served its pre-bump artifact")
	}
	for _, id := range []string{"E1", "E7"} {
		if got, ok := s2.Get(id); !ok || got.Table.Title != "warm "+id {
			t.Fatalf("unbumped %s went cold under an E2-only bump: ok=%v", id, ok)
		}
	}
}
