// Package cache is a content-addressed, on-disk store of experiment
// results. Each entry is one experiment's Result in the JSON wire form
// of internal/experiments (EncodeJSON/DecodeJSON), addressed by a
// SHA-256 fingerprint of (experiment id, registry version, Go version,
// module version): any version bump changes every fingerprint, so a
// stale store invalidates itself by missing rather than by being
// scrubbed. Writes are atomic (temp file + rename in the store
// directory), every payload carries its own checksum, and entries that
// fail any check — envelope schema, recorded key, checksum, decode —
// are deleted and reported as misses so corruption always falls back
// to re-running the experiment, never to serving bad bytes. A
// byte-size cap evicts least-recently-used entries (Get refreshes an
// entry's mtime) on write.
//
// Store implements experiments.Cache, so it plugs directly into
// experiments.Options; cmd/figures (-cache-dir) and cmd/figuresd wire
// it up. Stats counts hits, misses, corruption, and evictions since
// Open — the counters internal/server republishes on its /stats
// endpoint.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
)

// schemaVersion is the on-disk envelope format generation. Bumping it
// orphans every existing entry (they fail the envelope check and are
// removed on first read).
const schemaVersion = 1

// DefaultMaxBytes caps the store at 256 MiB unless Options.MaxBytes
// overrides it — two orders of magnitude above a full E1–E14 table
// set, so eviction only matters for long-lived shared directories.
const DefaultMaxBytes = 256 << 20

// Options configures Open. The zero value is usable: versions default
// to this build's, the size cap to DefaultMaxBytes.
type Options struct {
	// MaxBytes caps the total size of stored entries; <= 0 means
	// DefaultMaxBytes. The cap is enforced on Put by evicting the
	// least-recently-used entries.
	MaxBytes int64
	// RegistryVersion defaults to experiments.RegistryVersion.
	RegistryVersion string
	// GoVersion defaults to runtime.Version().
	GoVersion string
	// ModuleVersion defaults to the main module's path@version from
	// the build info ("repro@(devel)" for source builds).
	ModuleVersion string
}

// Stats counts a store's traffic since Open.
type Stats struct {
	Hits    int64 // Get served a stored result
	Misses  int64 // Get found nothing usable
	Corrupt int64 // subset of Misses: an entry existed but failed a check
	Evicted int64 // entries removed by the size cap
}

// HitRate returns hits/(hits+misses) in [0, 1], and 0 for an idle store.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Key is the full cache key of one entry. Every field participates in
// the fingerprint, and the stored copy must match the store's own key
// on read — a fingerprint collision or a file copied between stores
// with different versions is detected and discarded, never served.
type Key struct {
	Experiment      string `json:"experiment"`
	RegistryVersion string `json:"registry_version"`
	GoVersion       string `json:"go_version"`
	ModuleVersion   string `json:"module_version"`
}

// Fingerprint returns the hex SHA-256 content address of the key.
func (k Key) Fingerprint() string {
	h := sha256.New()
	for _, part := range []string{k.Experiment, k.RegistryVersion, k.GoVersion, k.ModuleVersion} {
		// Length-prefix each part so ("a", "bc") and ("ab", "c")
		// cannot collide.
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// envelope is the on-disk entry format: the key it was stored under,
// a checksum of the payload, and the payload itself — the one-element
// EncodeJSON array of the result.
type envelope struct {
	Schema  int             `json:"schema"`
	Key     Key             `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Store is an on-disk result cache. It is safe for concurrent use by
// multiple goroutines; concurrent processes sharing a directory are
// safe too (atomic renames), though their evictions race benignly.
type Store struct {
	dir      string
	maxBytes int64
	key      Key // Experiment field empty; filled per entry

	mu    sync.Mutex
	stats Stats
}

var _ experiments.Cache = (*Store)(nil)

// Open creates dir if needed and returns a store over it.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.RegistryVersion == "" {
		opts.RegistryVersion = experiments.RegistryVersion
	}
	if opts.GoVersion == "" {
		opts.GoVersion = runtime.Version()
	}
	if opts.ModuleVersion == "" {
		opts.ModuleVersion = buildModuleVersion()
	}
	sweepStaleTemps(dir)
	return &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		key: Key{
			RegistryVersion: opts.RegistryVersion,
			GoVersion:       opts.GoVersion,
			ModuleVersion:   opts.ModuleVersion,
		},
	}, nil
}

// buildModuleVersion identifies the main module of this binary.
func buildModuleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		return bi.Main.Path + "@" + bi.Main.Version
	}
	return "unknown"
}

// keyFor returns the full key for one experiment id.
func (s *Store) keyFor(id string) Key {
	k := s.key
	k.Experiment = id
	return k
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Fingerprint()+".json")
}

// Get implements experiments.Cache. Untrustworthy entries — wrong
// schema, mismatched key, bad checksum, undecodable payload, or a
// stored failure — are deleted and reported as corrupt misses.
func (s *Store) Get(id string) (experiments.Result, bool) {
	k := s.keyFor(id)
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return experiments.Result{}, false
	}
	res, err := decodeEntry(raw, k)
	if err != nil {
		os.Remove(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		return experiments.Result{}, false
	}
	// Refresh the entry's recency for LRU eviction; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return res, true
}

// decodeEntry validates an on-disk entry against the key it should
// have been stored under and returns the successful result it holds.
func decodeEntry(raw []byte, want Key) (experiments.Result, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return experiments.Result{}, fmt.Errorf("cache: bad envelope: %w", err)
	}
	if env.Schema != schemaVersion {
		return experiments.Result{}, fmt.Errorf("cache: schema %d, want %d", env.Schema, schemaVersion)
	}
	if env.Key != want {
		return experiments.Result{}, fmt.Errorf("cache: entry key %+v does not match %+v", env.Key, want)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return experiments.Result{}, fmt.Errorf("cache: payload checksum mismatch")
	}
	results, err := experiments.DecodeJSON(bytes.NewReader(env.Payload))
	if err != nil {
		return experiments.Result{}, err
	}
	if len(results) != 1 {
		return experiments.Result{}, fmt.Errorf("cache: entry holds %d results, want 1", len(results))
	}
	r := results[0]
	if r.ID != want.Experiment || r.Err != nil || r.Table == nil {
		return experiments.Result{}, fmt.Errorf("cache: entry is not a successful %s result", want.Experiment)
	}
	return r, nil
}

// Put implements experiments.Cache: it stores a successful result
// atomically (temp file + rename) and then enforces the size cap.
func (s *Store) Put(id string, r experiments.Result) error {
	if r.Err != nil || r.Table == nil {
		return fmt.Errorf("cache: refusing to store failed result %s", id)
	}
	r.ID = id
	var encoded bytes.Buffer
	if err := experiments.EncodeJSON(&encoded, []experiments.Result{r}); err != nil {
		return err
	}
	// Compact before checksumming: json.Marshal compacts RawMessage
	// fields when writing the envelope, and the checksum must cover
	// the payload bytes as they appear on disk.
	var payload bytes.Buffer
	if err := json.Compact(&payload, encoded.Bytes()); err != nil {
		return err
	}
	sum := sha256.Sum256(payload.Bytes())
	raw, err := json.Marshal(envelope{
		Schema:  schemaVersion,
		Key:     s.keyFor(id),
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload.Bytes(),
	})
	if err != nil {
		return err
	}
	if err := writeAtomic(s.dir, s.path(s.keyFor(id)), raw); err != nil {
		return err
	}
	return s.evict()
}

// writeAtomic writes data to path via a temp file in dir and a rename,
// so readers only ever observe complete entries.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// tempMaxAge is how old a .tmp-* file must be before it is presumed
// orphaned (a writer died between CreateTemp and Rename) and swept.
// Live writers hold their temp file for milliseconds, so an hour is
// safely conservative even across processes sharing the directory.
const tempMaxAge = time.Hour

// sweepStaleTemps removes orphaned temp files so crashed writes
// cannot grow the directory past the byte cap forever. Called on
// Open; eviction passes do the same check inline on their single
// directory scan. Best-effort.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tempMaxAge)
	for _, de := range entries {
		removeIfStaleTemp(dir, de, cutoff)
	}
}

// removeIfStaleTemp deletes de when it is a temp file older than
// cutoff, reporting whether de was a temp file (stale or not).
func removeIfStaleTemp(dir string, de os.DirEntry, cutoff time.Time) bool {
	if de.IsDir() || !strings.HasPrefix(de.Name(), ".tmp-") {
		return false
	}
	if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
		os.Remove(filepath.Join(dir, de.Name()))
	}
	return true
}

// evict removes least-recently-used entries until the store fits the
// byte cap, sweeping stale temp files on the same directory scan.
// Get refreshes mtimes, so mtime order is use order.
func (s *Store) evict() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		files  []entry
		total  int64
		cutoff = time.Now().Add(-tempMaxAge)
	)
	for _, de := range entries {
		if removeIfStaleTemp(s.dir, de, cutoff) {
			continue
		}
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another evictor
		}
		files = append(files, entry{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(files, func(a, b int) bool { return files[a].mtime.Before(files[b].mtime) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.count(func(st *Stats) { st.Evicted++ })
		}
	}
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
