// Package cache is a content-addressed, on-disk artifact store for
// experiment outputs. It holds two kinds of artifact behind one
// checksummed, atomically-written, LRU-capped code path:
//
//   - whole results: one experiment's Result in the JSON wire form of
//     internal/experiments (EncodeJSON/DecodeJSON);
//   - slice aggregates: one prefix range's ShardEnvelope — the wire
//     form of GET /experiments/{id}?prefixes=... — so repeated sharded
//     runs of the same exploration space are warm too.
//
// Every artifact is addressed by a SHA-256 fingerprint of its
// ArtifactKey (experiment id, prefix set, registry version, Go
// version, module version): any version bump changes every
// fingerprint, so a stale store invalidates itself by missing rather
// than by being scrubbed. An empty prefix set is a whole result, and
// its fingerprint is byte-compatible with the pre-slice key scheme,
// so stores written before slices existed stay warm. Writes are
// atomic (temp file + rename in the store directory), every payload
// carries its own checksum, and entries that fail any check —
// envelope schema, recorded key, checksum, decode — are deleted and
// reported as misses so corruption always falls back to re-computing
// that artifact (and only that artifact: a corrupt slice re-explores
// one range, not the whole space), never to serving bad bytes. A
// byte-size cap evicts least-recently-used entries of either kind
// (Get and GetSlice refresh an entry's mtime) on write.
//
// Store implements experiments.SliceCache (a superset of
// experiments.Cache), so it plugs directly into experiments.Options,
// internal/server's slice endpoint, and internal/shard's per-range
// read-through; cmd/figures (-cache-dir) and cmd/figuresd wire it up.
// Stats counts hits, misses, corruption, and evictions since Open —
// the counters internal/server republishes on its /stats endpoint.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
)

// schemaVersion is the on-disk envelope format generation. Bumping it
// orphans every existing entry (they fail the envelope check and are
// removed on first read).
const schemaVersion = 1

// DefaultMaxBytes caps the store at 256 MiB unless Options.MaxBytes
// overrides it — two orders of magnitude above a full E1–E15 table
// set, so eviction only matters for long-lived shared directories.
const DefaultMaxBytes = 256 << 20

// Options configures Open. The zero value is usable: versions default
// to this build's, the size cap to DefaultMaxBytes.
type Options struct {
	// MaxBytes caps the total size of stored entries; <= 0 means
	// DefaultMaxBytes. The cap is enforced on Put by evicting the
	// least-recently-used entries.
	MaxBytes int64
	// SpaceVersion resolves one experiment id to the version naming
	// its cache-identity generation; nil means
	// experiments.SpaceVersion, the per-family resolver — bumping one
	// family's code version moves only that family's fingerprints.
	SpaceVersion func(id string) string
	// RegistryVersion, when non-empty, pins every experiment to one
	// constant version instead (the pre-family behaviour; tests use
	// it). Ignored when SpaceVersion is set.
	RegistryVersion string
	// GoVersion defaults to runtime.Version().
	GoVersion string
	// ModuleVersion defaults to the main module's path@version from
	// the build info ("repro@(devel)" for source builds).
	ModuleVersion string
}

// Stats counts a store's traffic since Open. Whole results and slice
// aggregates are counted separately — a sharded run's warmth is
// visible even when its whole-result entry was never written.
type Stats struct {
	Hits        int64 // Get served a stored whole result
	Misses      int64 // Get found nothing usable
	SliceHits   int64 // GetSlice served a stored slice aggregate
	SliceMisses int64 // GetSlice found nothing usable
	SliceStores int64 // PutSlice wrote a slice aggregate
	Corrupt     int64 // subset of the misses: an entry existed but failed a check
	Evicted     int64 // entries removed by the size cap
}

// HitRate returns whole-result hits/(hits+misses) in [0, 1], and 0 for
// an idle store.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ArtifactKey is the full cache key of one artifact. Every field
// participates in the fingerprint, and the stored copy must match the
// store's own key on read — a fingerprint collision or a file copied
// between stores with different versions is detected and discarded,
// never served. An empty Prefixes means a whole experiment result; a
// non-empty Prefixes (the canonical experiments.FormatPrefixes
// rendering of a root set) means one slice's aggregate. An empty
// Params means the experiment's fixed point; a non-empty Params (the
// canonical experiments.ParamSet rendering) means one parameter point
// of its family. SpaceVersion is the per-experiment identity
// generation (experiments.SpaceVersion) — it keeps the pre-family
// "registry_version" JSON key, and for an experiment with no family
// version it IS the registry version, so entries written before
// per-space identity existed still validate.
type ArtifactKey struct {
	ID            string `json:"experiment"`
	Params        string `json:"params,omitempty"`
	Prefixes      string `json:"prefixes,omitempty"`
	SpaceVersion  string `json:"registry_version"`
	GoVersion     string `json:"go_version"`
	ModuleVersion string `json:"module_version"`
}

// Fingerprint returns the hex SHA-256 content address of the key.
// Fixed-point whole-result keys hash exactly the four parts the
// original scheme hashed — byte-compatible, so an existing store
// stays warm across both the artifact and the parameter
// generalizations; slice keys append the prefix set as a fifth part,
// and parameter points append the literal tag "params" plus the
// canonical rendering (the tag keeps a params-only key from ever
// colliding with a prefixes-only key). Length-prefixing makes the
// part stream unambiguous, so neither field boundaries nor the part
// count can collide.
func (k ArtifactKey) Fingerprint() string {
	h := sha256.New()
	parts := []string{k.ID, k.SpaceVersion, k.GoVersion, k.ModuleVersion}
	if k.Prefixes != "" {
		parts = append(parts, k.Prefixes)
	}
	if k.Params != "" {
		parts = append(parts, "params", k.Params)
	}
	for _, part := range parts {
		// Length-prefix each part so ("a", "bc") and ("ab", "c")
		// cannot collide.
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// envelope is the on-disk entry format: the key it was stored under,
// a checksum of the payload, and the payload itself — the one-element
// EncodeJSON array of a whole result, or the ShardEnvelope of one
// slice's aggregate.
type envelope struct {
	Schema  int             `json:"schema"`
	Key     ArtifactKey     `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Store is an on-disk artifact cache. It is safe for concurrent use by
// multiple goroutines; concurrent processes sharing a directory are
// safe too (atomic renames), though their evictions race benignly.
type Store struct {
	dir      string
	maxBytes int64
	// key is the per-artifact template (ID, Params, Prefixes, and
	// SpaceVersion filled per artifact by keyFor).
	key          ArtifactKey
	spaceVersion func(id string) string

	mu    sync.Mutex
	stats Stats
}

var (
	_ experiments.SliceCache = (*Store)(nil)
	_ experiments.ParamCache = (*Store)(nil)
)

// Open creates dir if needed and returns a store over it.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	// Identity resolution order: an explicit per-space resolver, a
	// pinned constant (tests and byte-compat callers), then the
	// per-family default.
	spaceVersion := opts.SpaceVersion
	if spaceVersion == nil {
		if opts.RegistryVersion != "" {
			pinned := opts.RegistryVersion
			spaceVersion = func(string) string { return pinned }
		} else {
			spaceVersion = experiments.SpaceVersion
		}
	}
	if opts.GoVersion == "" {
		opts.GoVersion = runtime.Version()
	}
	if opts.ModuleVersion == "" {
		opts.ModuleVersion = buildModuleVersion()
	}
	sweepStaleTemps(dir)
	return &Store{
		dir:          dir,
		maxBytes:     opts.MaxBytes,
		spaceVersion: spaceVersion,
		key: ArtifactKey{
			GoVersion:     opts.GoVersion,
			ModuleVersion: opts.ModuleVersion,
		},
	}, nil
}

// buildModuleVersion identifies the main module of this binary.
func buildModuleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		return bi.Main.Path + "@" + bi.Main.Version
	}
	return "unknown"
}

// keyFor returns the full artifact key for one experiment id,
// parameter point ("" = the fixed point), and prefix set ("" = the
// whole result), resolving the id's space version through the store's
// per-family resolver.
func (s *Store) keyFor(id, params, prefixes string) ArtifactKey {
	k := s.key
	k.ID = id
	k.Params = params
	k.Prefixes = prefixes
	k.SpaceVersion = s.spaceVersion(id)
	return k
}

func (s *Store) path(k ArtifactKey) string {
	return filepath.Join(s.dir, k.Fingerprint()+".json")
}

// readEntry loads and validates the envelope stored under k, returning
// its payload. A missing file is a plain miss (ok false, corrupt
// false); an entry failing any envelope check — schema, recorded key,
// checksum — is deleted and reported corrupt. Payload-level decoding
// belongs to the caller (the two artifact kinds decode differently);
// rejectEntry is its counterpart for payloads that fail there.
func (s *Store) readEntry(k ArtifactKey) (payload []byte, ok, corrupt bool) {
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.rejectEntry(k)
		return nil, false, true
	}
	if env.Schema != schemaVersion || env.Key != k {
		s.rejectEntry(k)
		return nil, false, true
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.rejectEntry(k)
		return nil, false, true
	}
	// Refresh the entry's recency for LRU eviction; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	return env.Payload, true, false
}

// rejectEntry removes an untrustworthy entry so the artifact silently
// recomputes instead of failing the same way on every lookup.
func (s *Store) rejectEntry(k ArtifactKey) {
	os.Remove(s.path(k))
}

// Get implements experiments.Cache. Untrustworthy entries — wrong
// schema, mismatched key, bad checksum, undecodable payload, or a
// stored failure — are deleted and reported as corrupt misses.
func (s *Store) Get(id string) (experiments.Result, bool) {
	return s.getResult(s.keyFor(id, "", ""))
}

// getResult is the shared lookup behind Get and GetParam: one whole
// result under one fully-resolved key, counted in Hits/Misses.
func (s *Store) getResult(k ArtifactKey) (experiments.Result, bool) {
	payload, ok, corrupt := s.readEntry(k)
	if ok {
		res, err := decodeResult(payload, k.ID)
		if err == nil {
			s.count(func(st *Stats) { st.Hits++ })
			return res, true
		}
		s.rejectEntry(k)
		corrupt = true
	}
	s.count(func(st *Stats) {
		st.Misses++
		if corrupt {
			st.Corrupt++
		}
	})
	return experiments.Result{}, false
}

// decodeResult parses a whole-result payload and vets that it is a
// successful result for the expected experiment.
func decodeResult(payload []byte, id string) (experiments.Result, error) {
	results, err := experiments.DecodeJSON(bytes.NewReader(payload))
	if err != nil {
		return experiments.Result{}, err
	}
	if len(results) != 1 {
		return experiments.Result{}, fmt.Errorf("cache: entry holds %d results, want 1", len(results))
	}
	r := results[0]
	if r.ID != id || r.Err != nil || r.Table == nil {
		return experiments.Result{}, fmt.Errorf("cache: entry is not a successful %s result", id)
	}
	return r, nil
}

// GetSlice implements experiments.SliceCache: it returns the stored
// shard envelope for one slice of one experiment's exploration space
// at one parameter point ("" = the fixed point). The same trust rules
// as Get apply — an entry whose payload is not a shard envelope for
// exactly this id, parameter point, prefix set, and space generation
// is deleted and reported as a corrupt miss, so a corrupt slice
// re-explores one range, never the whole space.
func (s *Store) GetSlice(id, params, prefixes string) (experiments.ShardEnvelope, bool) {
	if prefixes == "" {
		// The whole space is a whole result; there is no empty slice.
		s.count(func(st *Stats) { st.SliceMisses++ })
		return experiments.ShardEnvelope{}, false
	}
	k := s.keyFor(id, params, prefixes)
	payload, ok, corrupt := s.readEntry(k)
	if ok {
		env, err := experiments.DecodeShard(bytes.NewReader(payload))
		if err == nil && env.ID == id && env.Prefixes == prefixes &&
			env.Params == params && env.SpaceVersion == k.SpaceVersion {
			s.count(func(st *Stats) { st.SliceHits++ })
			return env, true
		}
		s.rejectEntry(k)
		corrupt = true
	}
	s.count(func(st *Stats) {
		st.SliceMisses++
		if corrupt {
			st.Corrupt++
		}
	})
	return experiments.ShardEnvelope{}, false
}

// Put implements experiments.Cache: it stores a successful result
// atomically (temp file + rename) and then enforces the size cap.
func (s *Store) Put(id string, r experiments.Result) error {
	if r.Err != nil || r.Table == nil {
		return fmt.Errorf("cache: refusing to store failed result %s", id)
	}
	r.ID = id
	var encoded bytes.Buffer
	if err := experiments.EncodeJSON(&encoded, []experiments.Result{r}); err != nil {
		return err
	}
	return s.write(s.keyFor(id, "", ""), encoded.Bytes())
}

// GetParam implements experiments.ParamCache: it returns the stored
// whole result of one experiment family at one canonical parameter
// point. The empty point is the family's fixed experiment — it
// delegates to Get, so a parameterized request at the default point
// and a fixed request share one entry.
func (s *Store) GetParam(id, params string) (experiments.Result, bool) {
	if params == "" {
		return s.Get(id)
	}
	return s.getResult(s.keyFor(id, params, ""))
}

// PutParam implements experiments.ParamCache, storing one parameter
// point's whole result; the empty point delegates to Put.
func (s *Store) PutParam(id, params string, r experiments.Result) error {
	if params == "" {
		return s.Put(id, r)
	}
	if r.Err != nil || r.Table == nil {
		return fmt.Errorf("cache: refusing to store failed result %s?%s", id, params)
	}
	r.ID = id
	var encoded bytes.Buffer
	if err := experiments.EncodeJSON(&encoded, []experiments.Result{r}); err != nil {
		return err
	}
	return s.write(s.keyFor(id, params, ""), encoded.Bytes())
}

// PutSlice implements experiments.SliceCache: it stores one slice's
// shard envelope under the artifact key derived from its id,
// parameter point, and prefix set. An envelope from a different space
// generation is refused — its numbers describe a different space, and
// storing it under this store's key would serve them as this
// generation's.
func (s *Store) PutSlice(env experiments.ShardEnvelope) error {
	if env.ID == "" || env.Prefixes == "" || len(env.Aggregate) == 0 {
		return fmt.Errorf("cache: refusing to store incomplete slice envelope %+v", env)
	}
	if want := s.spaceVersion(env.ID); env.SpaceVersion != want {
		return fmt.Errorf("cache: slice envelope space %s, store %s", env.SpaceVersion, want)
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := s.write(s.keyFor(env.ID, env.Params, env.Prefixes), payload); err != nil {
		return err
	}
	s.count(func(st *Stats) { st.SliceStores++ })
	return nil
}

// write stores one artifact payload under its key — the single code
// path both artifact kinds share: compact, checksum, envelope, atomic
// write, evict.
func (s *Store) write(k ArtifactKey, encoded []byte) error {
	// Compact before checksumming: json.Marshal compacts RawMessage
	// fields when writing the envelope, and the checksum must cover
	// the payload bytes as they appear on disk.
	var payload bytes.Buffer
	if err := json.Compact(&payload, encoded); err != nil {
		return err
	}
	sum := sha256.Sum256(payload.Bytes())
	raw, err := json.Marshal(envelope{
		Schema:  schemaVersion,
		Key:     k,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload.Bytes(),
	})
	if err != nil {
		return err
	}
	if err := writeAtomic(s.dir, s.path(k), raw); err != nil {
		return err
	}
	return s.evict()
}

// writeAtomic writes data to path via a temp file in dir and a rename,
// so readers only ever observe complete entries.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// tempMaxAge is how old a .tmp-* file must be before it is presumed
// orphaned (a writer died between CreateTemp and Rename) and swept.
// Live writers hold their temp file for milliseconds, so an hour is
// safely conservative even across processes sharing the directory.
const tempMaxAge = time.Hour

// sweepStaleTemps removes orphaned temp files so crashed writes
// cannot grow the directory past the byte cap forever. Called on
// Open; eviction passes do the same check inline on their single
// directory scan. Best-effort.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tempMaxAge)
	for _, de := range entries {
		removeIfStaleTemp(dir, de, cutoff)
	}
}

// removeIfStaleTemp deletes de when it is a temp file older than
// cutoff, reporting whether de was a temp file (stale or not).
func removeIfStaleTemp(dir string, de os.DirEntry, cutoff time.Time) bool {
	if de.IsDir() || !strings.HasPrefix(de.Name(), ".tmp-") {
		return false
	}
	if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
		os.Remove(filepath.Join(dir, de.Name()))
	}
	return true
}

// evict removes least-recently-used entries until the store fits the
// byte cap, sweeping stale temp files on the same directory scan.
// Get and GetSlice refresh mtimes, so mtime order is use order; whole
// results and slice aggregates share the one cap and the one recency
// order — a run that only ever touches slices ages whole entries out,
// and vice versa.
func (s *Store) evict() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		files  []entry
		total  int64
		cutoff = time.Now().Add(-tempMaxAge)
	)
	for _, de := range entries {
		if removeIfStaleTemp(s.dir, de, cutoff) {
			continue
		}
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another evictor
		}
		files = append(files, entry{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(files, func(a, b int) bool { return files[a].mtime.Before(files[b].mtime) })
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.count(func(st *Stats) { st.Evicted++ })
		}
	}
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
