package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// FuzzCacheGet: an on-disk entry holding arbitrary bytes — truncated
// writes, bit rot, another program's file — must never panic or serve
// bad data. Get either returns the one trustworthy outcome (a fully
// validated successful result) or reports a miss and deletes the junk
// so the engine silently re-runs the experiment.
func FuzzCacheGet(f *testing.F) {
	// Seed with a valid entry's bytes (from a scratch store), plus the
	// classic corruptions: empty, truncated JSON, wrong shapes.
	seedDir := f.TempDir()
	store, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	res := experiments.Result{ID: "E1", Table: &experiments.Table{
		ID: "E1", Title: "t", Headers: []string{"h"}, Rows: [][]string{{"v"}},
	}}
	if err := store.Put("E1", res); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(store.path(store.keyFor("E1", "", "")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"key":{},"sha256":"x","payload":[]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		path := s.path(s.keyFor("E1", "", ""))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get("E1")
		if !ok {
			// A rejected entry must be removed (silent re-run, not a
			// permanent corrupt file) and counted as a corrupt miss.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("rejected entry left on disk (stat err %v)", err)
			}
			st := s.Stats()
			if st.Misses != 1 || st.Corrupt != 1 || st.Hits != 0 {
				t.Fatalf("stats after rejection = %+v", st)
			}
			return
		}
		// The fuzzer found (or was seeded) a fully valid entry: it
		// must be a successful result for the requested id, checksum
		// and all — never a failure, never someone else's table.
		if got.ID != "E1" || got.Err != nil || got.Table == nil {
			t.Fatalf("Get served an untrustworthy result: %+v", got)
		}
		// And the store must not have grown junk siblings.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range entries {
			if filepath.Ext(de.Name()) != ".json" {
				t.Fatalf("unexpected file %s in store", de.Name())
			}
		}
	})
}
