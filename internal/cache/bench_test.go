package cache

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkCacheColdVsWarm compares one engine run of E12 (the
// midpoint-contraction sweep, the most expensive of the quick
// experiments) executed fresh against the same run served entirely
// from the store: the warm/cold gap is the value of the cache, the
// warm absolute time is the serving layer's floor per experiment.
func BenchmarkCacheColdVsWarm(b *testing.B) {
	const id = "E12"
	opts := func(s *Store) experiments.Options {
		return experiments.Options{IDs: []string{id}, Jobs: 1, Cache: s}
	}
	check := func(b *testing.B, results []experiments.Result, err error, wantCached bool) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.FirstError(results); err != nil {
			b.Fatal(err)
		}
		if results[0].Cached != wantCached {
			b.Fatalf("Cached = %v, want %v", results[0].Cached, wantCached)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			results, err := experiments.Run(context.Background(), opts(s))
			check(b, results, err, false)
		}
	})

	b.Run("warm", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Prime the store, then measure pure hits.
		results, err := experiments.Run(context.Background(), opts(s))
		check(b, results, err, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := experiments.Run(context.Background(), opts(s))
			check(b, results, err, true)
		}
	})
}

// BenchmarkSliceCacheColdVsWarm measures the slice half of the
// artifact store on a real workload: one quarter of E2's exploration
// partition (the k = 4 Algorithm 1 sweep) explored fresh versus read
// through the store (GetSlice + the experiment's own Decode — the
// exact warm path internal/shard's per-range read-through takes).
// The gap is the value of the fleet cache hierarchy per range.
func BenchmarkSliceCacheColdVsWarm(b *testing.B) {
	sh, ok := experiments.Shardables()["E2"]
	if !ok {
		b.Fatal("E2 not shardable")
	}
	roots, err := sh.Roots()
	if err != nil {
		b.Fatal(err)
	}
	slice := roots[:len(roots)/4]
	prefixes := experiments.FormatPrefixes(slice)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sh.Explore(slice); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		s, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		agg, err := sh.Explore(slice)
		if err != nil {
			b.Fatal(err)
		}
		env, err := experiments.NewShardEnvelope("E2", "", slice, agg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.PutSlice(env); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, ok := s.GetSlice("E2", "", prefixes)
			if !ok {
				b.Fatal("warm slice missed")
			}
			if _, err := sh.Decode(got.Aggregate); err != nil {
				b.Fatal(err)
			}
		}
	})
}
