// Package hist is a fixed log-bucket latency histogram: the
// observability primitive behind the /stats latency distributions
// (internal/server), the shard coordinator's per-worker fetch timings
// (internal/shard), and the load harness's client-side measurements
// (internal/load). One scheme everywhere means server-side and
// client-side distributions are directly comparable and mergeable.
//
// The bucket layout is geometric: bucket i covers durations in
// (1µs·2^((i-1)/4), 1µs·2^(i/4)] — four buckets per octave, growth
// factor 2^(1/4) ≈ 1.189 — with bucket 0 absorbing everything at or
// under 1µs and the last bucket absorbing everything past ~18 minutes.
// A reported quantile is the upper bound of the bucket holding that
// rank (capped at the observed maximum), so for any value inside the
// geometric range the estimate overshoots the true quantile by at
// most the growth factor: relative error ≤ 2^(1/4) − 1 ≈ 18.9%,
// independent of the distribution's shape.
//
// Recording is lock-free — one atomic add into the bucket array plus
// count/sum/max maintenance — so it sits on request hot paths without
// serializing them. Histograms merge by bucketwise addition, which is
// exact (no resampling error): a fleet-wide distribution is the merge
// of the per-worker ones.
package hist

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	// NumBuckets is the fixed bucket count; the scheme covers 1µs to
	// 1µs·2^(NumBuckets/4) ≈ 18 minutes before overflowing into the
	// last bucket — far past any per-request latency this repo serves.
	NumBuckets = 120
	// bucketsPerOctave sets the resolution: 4 buckets per doubling,
	// i.e. a growth factor of 2^(1/4) per bucket.
	bucketsPerOctave = 4
	// minUpperNanos is bucket 0's upper bound: 1µs. Anything faster is
	// noise at HTTP-request granularity.
	minUpperNanos = 1e3
)

// Growth is the per-bucket growth factor, 2^(1/4): the worst-case
// multiplicative overshoot of a reported quantile.
var Growth = math.Pow(2, 1.0/bucketsPerOctave)

// uppers[i] is bucket i's inclusive upper bound in nanoseconds.
var uppers [NumBuckets]float64

func init() {
	for i := range uppers {
		uppers[i] = minUpperNanos * math.Pow(2, float64(i)/bucketsPerOctave)
	}
}

// Histogram accumulates a latency distribution. The zero value is
// ready to use; all methods are safe for concurrent use. Reads taken
// while writers are active are snapshots in the loose sense — counts
// across fields may be skewed by in-flight records — which is the
// usual contract for operational counters.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= minUpperNanos {
		return 0
	}
	i := int(math.Ceil(bucketsPerOctave * math.Log2(ns/minUpperNanos)))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Record folds one observation in. Negative durations (clock
// weirdness) clamp to zero rather than corrupting a bucket index.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := d.Nanoseconds()
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max reports the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Merge folds other's observations into h, bucketwise — exact, no
// resampling. other may be recorded into concurrently; the merge then
// reflects some valid interleaving of its records.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		m, om := h.max.Load(), other.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}

// Quantile reports the q-quantile as the upper bound of the bucket
// holding that rank, capped at the observed maximum — so the estimate
// never undershoots the true value and overshoots it by at most
// Growth. It is the arbitrary-q primitive behind every hard-coded
// percentile in a Snapshot, the /metrics bucket export, and the trace
// timeline renderer. q is validated to [0,1]: out-of-range values
// clamp, and NaN (which no comparison can place) reports zero rather
// than a bucket chosen by float accident. Zero observations report
// zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if math.IsNaN(q) {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	max := time.Duration(h.max.Load())
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			ub := time.Duration(uppers[i])
			if max < ub {
				return max
			}
			return ub
		}
	}
	// Concurrent records can leave count ahead of the bucket array for
	// an instant; the maximum is the honest answer for the tail.
	return max
}

// Bucket is one non-empty bucket of a Snapshot's wire form.
type Bucket struct {
	// UpperMillis is the bucket's inclusive upper bound in
	// milliseconds; the lower bound is the previous bucket's upper
	// bound (UpperMillis / Growth for interior buckets, 0 for the
	// first).
	UpperMillis float64 `json:"le_ms"`
	Count       int64   `json:"count"`
}

// Snapshot is a histogram's wire form: summary statistics, the
// standard quantiles, and the non-empty buckets (so two snapshots can
// be diffed or re-merged offline without shipping 120 mostly-zero
// counters). All times are milliseconds, matching the /stats schema.
type Snapshot struct {
	Count     int64   `json:"count"`
	SumMillis float64 `json:"sum_ms"`
	MaxMillis float64 `json:"max_ms"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// P999Millis is the p99.9 — the deep tail a production fleet is
	// judged by; at load-smoke request counts it usually coincides
	// with the maximum, and diverges exactly when there is enough
	// traffic for it to mean something.
	P999Millis float64  `json:"p999_ms"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// millis converts nanoseconds to float milliseconds.
func millis(ns float64) float64 { return ns / 1e6 }

// Snapshot renders the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count:      h.count.Load(),
		SumMillis:  millis(float64(h.sum.Load())),
		MaxMillis:  millis(float64(h.max.Load())),
		P50Millis:  millis(float64(h.Quantile(0.50).Nanoseconds())),
		P95Millis:  millis(float64(h.Quantile(0.95).Nanoseconds())),
		P99Millis:  millis(float64(h.Quantile(0.99).Nanoseconds())),
		P999Millis: millis(float64(h.Quantile(0.999).Nanoseconds())),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperMillis: millis(uppers[i]), Count: n})
		}
	}
	return s
}
