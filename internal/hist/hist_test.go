package hist

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketEdges: the degenerate inputs land where the scheme says
// they land — zero and negative in bucket 0, values past the
// geometric range in the last bucket, and exact bucket bounds in
// their own bucket (the bounds are inclusive).
func TestBucketEdges(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(time.Microsecond); got != 0 {
		t.Errorf("bucketOf(1µs) = %d, want 0", got)
	}
	if got := bucketOf(100 * time.Hour); got != NumBuckets-1 {
		t.Errorf("bucketOf(100h) = %d, want %d", got, NumBuckets-1)
	}
	// 2µs is exactly bucket bucketsPerOctave's upper bound (one
	// octave above 1µs).
	if got := bucketOf(2 * time.Microsecond); got != bucketsPerOctave {
		t.Errorf("bucketOf(2µs) = %d, want %d", got, bucketsPerOctave)
	}
	var h Histogram
	h.Record(-time.Second) // clamps, must not panic or skew max
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("after negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

// TestQuantileErrorBounds: for random inputs spanning five orders of
// magnitude, every reported quantile is ≥ the true order statistic
// and within the documented Growth factor of it — the scheme's error
// bound, checked empirically rather than trusted.
func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	values := make([]time.Duration, 5000)
	for i := range values {
		// log-uniform over [10µs, 1s): exercises ~17 octaves
		exp := 4 + 5*rng.Float64()
		values[i] = time.Duration(math.Pow(10, exp)) * time.Microsecond / 10
	}
	for _, v := range values {
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(values))))
		if rank < 1 {
			rank = 1
		}
		truth := values[rank-1]
		got := h.Quantile(q)
		if got < truth {
			t.Errorf("q=%v: estimate %v undershoots true %v", q, got, truth)
		}
		if limit := time.Duration(float64(truth) * Growth * 1.0001); got > limit {
			t.Errorf("q=%v: estimate %v exceeds %v (true %v × growth)", q, got, limit, truth)
		}
	}
	if got, want := h.Quantile(1), values[len(values)-1]; got != want {
		t.Errorf("p100 = %v, want exact max %v", got, want)
	}
}

// TestQuantileEmpty: an empty histogram reports zero everywhere
// instead of inventing a latency.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99Millis != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

// TestMerge: merging two histograms is exact — bucketwise equal to
// recording every value into one histogram, with count/sum/max and
// every quantile agreeing.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, whole Histogram
	for i := 0; i < 2000; i++ {
		v := time.Duration(rng.Intn(50_000_000)) // up to 50ms
		whole.Record(v)
		if i%3 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.sum.Load() != whole.sum.Load() || a.Max() != whole.Max() {
		t.Fatalf("merged count/sum/max = %d/%d/%v, want %d/%d/%v",
			a.Count(), a.sum.Load(), a.Max(), whole.Count(), whole.sum.Load(), whole.Max())
	}
	for i := range whole.counts {
		if got, want := a.counts[i].Load(), whole.counts[i].Load(); got != want {
			t.Fatalf("bucket %d: merged %d, want %d", i, got, want)
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v, want %v", q, got, want)
		}
	}
	a.Merge(nil) // must be a no-op, not a panic
	if a.Count() != whole.Count() {
		t.Errorf("Merge(nil) changed count")
	}
}

// TestConcurrentRecord: hammering one histogram from many goroutines
// (the /stats hot path under load) loses no observations; run under
// -race this also proves the recording path is data-race free.
func TestConcurrentRecord(t *testing.T) {
	const goroutines, per = 8, 2000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), int64(goroutines*per); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var inBuckets int64
	for i := range h.counts {
		inBuckets += h.counts[i].Load()
	}
	if inBuckets != int64(goroutines*per) {
		t.Fatalf("bucket total = %d, want %d", inBuckets, goroutines*per)
	}
	if want := time.Duration(goroutines*per-1) * time.Microsecond; h.Max() != want {
		t.Errorf("max = %v, want %v", h.Max(), want)
	}
}

// TestSnapshotWireForm: the JSON form carries the documented keys —
// the schema /stats consumers (CI's jq checks, the load harness's
// BENCH_load.json) rely on — and only non-empty buckets.
func TestSnapshotWireForm(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "sum_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms", "buckets"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, data)
		}
	}
	s := h.Snapshot()
	if len(s.Buckets) == 0 || len(s.Buckets) > 2 {
		t.Errorf("buckets = %+v, want 1–2 non-empty", s.Buckets)
	}
	var n int64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Errorf("empty bucket emitted: %+v", b)
		}
		n += b.Count
	}
	if n != 2 {
		t.Errorf("bucket counts sum to %d, want 2", n)
	}
	if s.MaxMillis != 3 || s.SumMillis != 5 {
		t.Errorf("max/sum = %v/%v, want 3/5", s.MaxMillis, s.SumMillis)
	}
}

// TestQuantileValidation: out-of-range q clamps to the endpoints and
// NaN — which no comparison can place — reports zero instead of a
// bucket chosen by float accident.
func TestQuantileValidation(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, time.Second} {
		h.Record(d)
	}
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("q=-0.5 = %v, want clamp to q=0 (%v)", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("q=7 = %v, want clamp to q=1 (%v)", got, want)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("q=NaN = %v, want 0", got)
	}
}

// TestSnapshotP999: the snapshot carries a p99.9 that obeys the same
// never-undershoot contract as the other quantiles and orders after
// p99; with one dominant tail value it reports exactly that maximum.
func TestSnapshotP999(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	// Five 1s observations out of 1005: a ~0.5% tail, deep enough
	// that the p99.9 rank lands inside it (and is capped at the max).
	for i := 0; i < 5; i++ {
		h.Record(time.Second)
	}
	s := h.Snapshot()
	if s.P999Millis < s.P99Millis {
		t.Errorf("p999 %v < p99 %v", s.P999Millis, s.P99Millis)
	}
	if s.P999Millis != s.MaxMillis {
		t.Errorf("p999 = %vms, want the tail max %vms", s.P999Millis, s.MaxMillis)
	}
	if got := millisToDuration(s.P999Millis); got != h.Quantile(0.999) {
		t.Errorf("snapshot p999 %v != Quantile(0.999) %v", got, h.Quantile(0.999))
	}
}

// millisToDuration converts the snapshot's float milliseconds back to
// a duration for comparison against Quantile.
func millisToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
