package labelling

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/sched"
)

var fastInputPairs = [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}

func TestFastAgreementRandomSchedules(t *testing.T) {
	fa, err := NewFastAgreement(6)
	if err != nil {
		t.Fatal(err)
	}
	if fa.EpsDen() < 1<<6 {
		t.Fatalf("precision denominator %d < 2^6", fa.EpsDen())
	}
	for _, inputs := range fastInputPairs {
		for seed := int64(0); seed < 60; seed++ {
			fr, err := fa.Run(inputs, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if e := fr.Result.Err(); e != nil {
				t.Fatalf("inputs %v seed %d: %v", inputs, seed, e)
			}
			if !fr.Decided[0] || !fr.Decided[1] {
				t.Fatalf("inputs %v seed %d: undecided", inputs, seed)
			}
			if err := fa.Check(fr); err != nil {
				t.Fatalf("inputs %v seed %d: %v", inputs, seed, err)
			}
		}
	}
}

func TestFastAgreementExhaustiveSmall(t *testing.T) {
	// R = 3 keeps each process at ≤ 8 steps, so all interleavings can be
	// enumerated.
	fa, err := NewFastAgreement(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inputs := range fastInputPairs {
		var fr *FastRun
		factory := func() []sched.ProcFunc {
			fr = &FastRun{Inputs: inputs}
			m := NewAlg6Memory(fa.Cfg)
			return []sched.ProcFunc{
				fa.Proc(m, inputs[0], &fr.Outs[0], &fr.Decided[0]),
				fa.Proc(m, inputs[1], &fr.Outs[1], &fr.Decided[1]),
			}
		}
		runs, err := sched.ExploreAll(factory, 0, func(r *sched.Result) {
			if e := r.Err(); e != nil {
				t.Fatalf("inputs %v: %v", inputs, e)
			}
			fr.Result = r
			if err := fa.Check(fr); err != nil {
				t.Fatalf("inputs %v: %v", inputs, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if runs == 0 {
			t.Fatal("no runs")
		}
	}
}

func TestFastAgreementSolo(t *testing.T) {
	fa, err := NewFastAgreement(5)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 2; pid++ {
		for _, x := range []uint64{0, 1} {
			var inputs [2]uint64
			inputs[pid] = x
			inputs[1-pid] = 1 - x
			fr, err := fa.Run(inputs, sched.Solo{Pid: pid})
			if err != nil {
				t.Fatal(err)
			}
			if !fr.Decided[pid] {
				t.Fatal("solo process undecided")
			}
			if !agreement.WithinEps(fr.Outs[pid], agreement.Dec(int(x), 1), 0, 1) {
				t.Fatalf("solo %d input %d decided %v", pid, x, fr.Outs[pid])
			}
		}
	}
}

func TestFastAgreementUnderCrashes(t *testing.T) {
	fa, err := NewFastAgreement(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, inputs := range fastInputPairs {
		for victim := 0; victim < 2; victim++ {
			for crashAt := 0; crashAt <= fa.MaxSteps(); crashAt++ {
				scheduler := sched.NewCrashAt(&sched.RoundRobin{}, map[int]int{victim: crashAt})
				fr, err := fa.Run(inputs, scheduler)
				if err != nil {
					t.Fatal(err)
				}
				if !fr.Decided[1-victim] {
					t.Fatalf("inputs %v victim %d crashAt %d: survivor undecided",
						inputs, victim, crashAt)
				}
				if err := fa.Check(fr); err != nil {
					t.Fatalf("inputs %v victim %d crashAt %d: %v", inputs, victim, crashAt, err)
				}
			}
		}
	}
}

func TestFastAgreementStepComplexityLogarithmic(t *testing.T) {
	// Theorem 8.1 vs Algorithm 1: for precision 1/2^R the fast protocol
	// takes O(R) steps while Algorithm 1 needs Θ(2^R) steps — the
	// exponential separation of §8.
	for _, r := range []int{4, 6, 8} {
		fa, err := NewFastAgreement(r)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fa.Run([2]uint64{0, 1}, &sched.RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		if e := fr.Result.Err(); e != nil {
			t.Fatal(e)
		}
		fastSteps := fr.Result.Steps[0]
		if fastSteps > fa.MaxSteps() {
			t.Fatalf("R=%d: %d steps > bound %d", r, fastSteps, fa.MaxSteps())
		}
		// Algorithm 1 at the same precision 1/(2k+1) ≤ 1/EpsDen needs
		// k ≥ (EpsDen-1)/2 rounds.
		k := (fa.EpsDen() - 1) / 2
		if alg1Steps := agreement.Alg1MaxSteps(k); alg1Steps <= 2*fastSteps {
			t.Fatalf("R=%d: no separation: fast %d vs alg1 %d", r, fastSteps, alg1Steps)
		}
	}
}

func TestFastAgreementWidth6(t *testing.T) {
	// All runs above would fail on a width violation; assert the width is
	// really 6 bits.
	fa, err := NewFastAgreement(8)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Cfg.RegisterBits() != 6 {
		t.Fatalf("register width = %d bits, want 6", fa.Cfg.RegisterBits())
	}
	m := NewAlg6Memory(fa.Cfg)
	if m.Width() != 6 {
		t.Fatalf("memory width = %d", m.Width())
	}
}
