package labelling

import (
	"testing"

	"repro/internal/sched"
)

func TestAlg6RegisterBits(t *testing.T) {
	// Theorem 8.1: Δ = 2 gives two registers of size 6.
	cfg := Alg6Config{Delta: 2, R: 10}
	if got := cfg.RegisterBits(); got != 6 {
		t.Fatalf("RegisterBits = %d, want 6", got)
	}
	if got := cfg.RingSize(); got != 5 {
		t.Fatalf("RingSize = %d, want 5", got)
	}
}

func TestAlg6EncodeDecode(t *testing.T) {
	cfg := Alg6Config{Delta: 2, R: 5}
	for x := 0; x < cfg.RingSize(); x++ {
		for mask := 0; mask < 8; mask++ {
			h := []uint64{uint64(mask & 1), uint64((mask >> 1) & 1), uint64((mask >> 2) & 1)}
			gx, gh := cfg.decode(cfg.encode(x, h))
			if gx != x {
				t.Fatalf("x: got %d want %d", gx, x)
			}
			for j := range h {
				if gh[j] != h[j] {
					t.Fatalf("h[%d]: got %d want %d", j, gh[j], h[j])
				}
			}
		}
	}
}

func TestAlg6RingDist(t *testing.T) {
	cfg := Alg6Config{Delta: 2, R: 5}
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {4, 0, 1}, {3, 2, 4}, {1, 4, 3},
	}
	for _, tc := range tests {
		if got := cfg.ringDist(tc.a, tc.b); got != tc.want {
			t.Errorf("ringDist(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAlg6RoundRobinLockstep(t *testing.T) {
	// In lockstep both processes see each other every round: they
	// simulate the all-mutual IS execution and finish all R rounds.
	cfg := Alg6Config{Delta: 2, R: 6}
	labels, done, res, err := RunAlg6(cfg, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	if !done[0] || !done[1] {
		t.Fatal("processes did not finish")
	}
	for i := 0; i < 2; i++ {
		if labels[i].Round != cfg.R {
			t.Errorf("process %d finished at round %d, want %d", i, labels[i].Round, cfg.R)
		}
	}
	d := labels[0].Pos - labels[1].Pos
	if d != 1 && d != -1 {
		t.Errorf("lockstep positions %d, %d not adjacent", labels[0].Pos, labels[1].Pos)
	}
}

func TestAlg6SoloExitsAfterDelta(t *testing.T) {
	// A process running alone simulates Δ consecutive solo rounds and
	// quits, at the extreme position of its side.
	cfg := Alg6Config{Delta: 2, R: 10}
	labels, done, _, err := RunAlg6(cfg, sched.Solo{Pid: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !done[0] {
		t.Fatal("solo process did not finish")
	}
	if labels[0].Round != cfg.Delta {
		t.Errorf("solo exit round = %d, want Δ = %d", labels[0].Round, cfg.Delta)
	}
	if labels[0].Pos != 0 {
		t.Errorf("solo position = %d, want 0", labels[0].Pos)
	}
}

func TestAlg6StepComplexity(t *testing.T) {
	// O(R) steps per process: 2 register operations per simulated round.
	cfg := Alg6Config{Delta: 2, R: 12}
	_, _, res, err := RunAlg6(cfg, &sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Steps[i] > 2*cfg.R {
			t.Errorf("process %d took %d steps, want ≤ %d", i, res.Steps[i], 2*cfg.R)
		}
	}
}

func TestAlg6Lemma87DistinctExecutions(t *testing.T) {
	// Lemma 8.7: the simulation generates at least 2^R distinct IS
	// executions of length R (Δ ≥ 2). The constructed schedules yield
	// 2^R distinct final label pairs.
	for _, r := range []int{3, 5, 7} {
		cfg := Alg6Config{Delta: 2, R: r}
		seen := map[[2]Label]bool{}
		for _, seq := range Lemma87Schedules(r) {
			labels, done, res, err := RunAlg6(cfg, &sched.Replay{Prefix: seq})
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatal(e)
			}
			if !done[0] || !done[1] {
				t.Fatal("unfinished processes")
			}
			if labels[0].Round != r || labels[1].Round != r {
				t.Fatalf("R=%d: execution exited early: rounds %d, %d", r, labels[0].Round, labels[1].Round)
			}
			seen[[2]Label{labels[0], labels[1]}] = true
		}
		if len(seen) != 1<<r {
			t.Errorf("R=%d: %d distinct executions, want 2^R = %d", r, len(seen), 1<<r)
		}
	}
}

func TestAlg6RandomSchedulesLandOnPath(t *testing.T) {
	// Every concrete run's final labels appear in the abstract value map,
	// and co-final labels are path-adjacent: the exact state-graph
	// enumeration and the operational runtime agree.
	cfg := Alg6Config{Delta: 2, R: 7}
	vm, err := BuildValueMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 150; seed++ {
		labels, done, res, err := RunAlg6(cfg, sched.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		if e := res.Err(); e != nil {
			t.Fatalf("seed %d: %v", seed, e)
		}
		if !done[0] || !done[1] {
			t.Fatalf("seed %d: unfinished", seed)
		}
		i0, ok0 := vm.Index[labels[0]]
		i1, ok1 := vm.Index[labels[1]]
		if !ok0 || !ok1 {
			t.Fatalf("seed %d: labels %v, %v not in value map", seed, labels[0], labels[1])
		}
		d := i0 - i1
		if d != 1 && d != -1 {
			t.Fatalf("seed %d: path indices %d, %d not adjacent", seed, i0, i1)
		}
	}
}

func TestBuildValueMapPathShape(t *testing.T) {
	for _, r := range []int{3, 4, 6} {
		cfg := Alg6Config{Delta: 2, R: r}
		vm, err := BuildValueMap(cfg)
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		// Proposition 8.1: Ω(2^R) distinct executions, so the path has at
		// least 2^R edges.
		if vm.PairCount < 1<<r {
			t.Errorf("R=%d: %d path edges, want ≥ 2^R = %d", r, vm.PairCount, 1<<r)
		}
		if vm.Len != len(vm.Index) {
			t.Errorf("R=%d: inconsistent length", r)
		}
		// The origin endpoint is process 0's all-solo label at index 0.
		origin := Label{Pid: 0, Round: cfg.Delta, Pos: 0}
		if vm.Index[origin] != 0 {
			t.Errorf("R=%d: origin index = %d", r, vm.Index[origin])
		}
		// Colors alternate along the path.
		byIndex := make([]Label, vm.Len)
		for l, i := range vm.Index {
			byIndex[i] = l
		}
		for i := 1; i < vm.Len; i++ {
			if byIndex[i].Pid == byIndex[i-1].Pid {
				t.Fatalf("R=%d: consecutive path vertices share pid at %d", r, i)
			}
		}
	}
}

func TestBuildValueMapGrowth(t *testing.T) {
	// The path length grows exponentially in R (Ω(2^R)) but is bounded by
	// the full complex (3^R+1).
	prev := 0
	for r := 2; r <= 8; r++ {
		vm, err := BuildValueMap(Alg6Config{Delta: 2, R: r})
		if err != nil {
			t.Fatal(err)
		}
		if vm.Len <= prev {
			t.Errorf("R=%d: path length %d did not grow (prev %d)", r, vm.Len, prev)
		}
		if vm.Len > Pow3(r)+1 {
			t.Errorf("R=%d: path length %d exceeds full complex %d", r, vm.Len, Pow3(r)+1)
		}
		prev = vm.Len
	}
}
