package labelling

import (
	"fmt"
)

// procAbs is the abstract per-process state of the Algorithm 6 + labelling
// composition, sufficient to determine all future behaviour: the round in
// progress, the pending operation, the exact count of the other process's
// writes observed (Lemma 8.5: the ring arithmetic computes exactly this),
// the consecutive-solo counter, the path position, the writes performed,
// and the packed history window of the last Δ+1 bits written (bit j of
// Hist is the bit of round W-j).
type procAbs struct {
	Round int
	Phase int // 0 = write pending, 1 = read pending, 2 = done
	C     int
	Pos   int
	W     int
	Hist  uint32
	Final int // round at which the process finished (Phase == 2)
}

type jointAbs struct {
	A, B procAbs
}

// ValueMap is the label→path-position table of the simulated protocol
// complex: the final states of Algorithm 6 over all executions form a
// chromatic path (§8, "protocol graph"); Index orders it from process 0's
// all-solo endpoint. The ε-agreement of Theorem 8.1 decides
// Index[label] / (Len-1), oriented by the inputs.
type ValueMap struct {
	Cfg Alg6Config
	// Index maps each reachable final label to its path position 0..Len-1.
	Index map[Label]int
	// Len is the number of path vertices (distinct final labels).
	Len int
	// PairCount is the number of distinct co-final label pairs (path
	// edges), i.e. distinct complete executions up to indistinguishability.
	PairCount int
}

// BuildValueMap enumerates the reachable joint states of Algorithm 6 (an
// exact breadth-first search of the 2-choice transition graph — which
// process takes the next register operation) and orders the final-state
// complex as a path. It fails if the complex is not a path, which would
// falsify the §8 structure.
func BuildValueMap(cfg Alg6Config) (*ValueMap, error) {
	start := jointAbs{
		A: procAbs{Round: 1, Pos: InitialPos(0)},
		B: procAbs{Round: 1, Pos: InitialPos(1)},
	}
	seen := map[jointAbs]bool{start: true}
	queue := []jointAbs{start}
	adj := map[Label]map[Label]bool{}
	addEdge := func(a, b Label) {
		if adj[a] == nil {
			adj[a] = map[Label]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[Label]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	pairs := map[[2]Label]bool{}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.A.Phase == 2 && cur.B.Phase == 2 {
			la := Label{Pid: 0, Round: cur.A.Final, Pos: cur.A.Pos}
			lb := Label{Pid: 1, Round: cur.B.Final, Pos: cur.B.Pos}
			addEdge(la, lb)
			pairs[[2]Label{la, lb}] = true
			continue
		}
		for _, actor := range []int{0, 1} {
			next := cur
			var self, other *procAbs
			if actor == 0 {
				self, other = &next.A, &next.B
			} else {
				self, other = &next.B, &next.A
			}
			if self.Phase == 2 {
				continue
			}
			if err := stepAbs(cfg, self, other); err != nil {
				return nil, err
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}

	// The final complex must be a path; order it from process 0's
	// all-solo endpoint (solo from round 1, exits at round Δ, position 0).
	origin := Label{Pid: 0, Round: cfg.Delta, Pos: 0}
	if _, ok := adj[origin]; !ok {
		return nil, fmt.Errorf("labelling: all-solo endpoint %v unreachable", origin)
	}
	if len(adj[origin]) != 1 {
		return nil, fmt.Errorf("labelling: endpoint %v has degree %d", origin, len(adj[origin]))
	}
	index := map[Label]int{origin: 0}
	prev, cur := Label{}, origin
	hasPrev := false
	for i := 1; ; i++ {
		var nxt Label
		found := 0
		for nb := range adj[cur] {
			if hasPrev && nb == prev {
				continue
			}
			nxt = nb
			found++
		}
		if found == 0 {
			break // reached the other endpoint
		}
		if found > 1 {
			return nil, fmt.Errorf("labelling: vertex %v has degree > 2; complex is not a path", cur)
		}
		index[nxt] = i
		prev, cur, hasPrev = cur, nxt, true
	}
	if len(index) != len(adj) {
		return nil, fmt.Errorf("labelling: path covers %d of %d vertices; complex disconnected", len(index), len(adj))
	}
	return &ValueMap{Cfg: cfg, Index: index, Len: len(index), PairCount: len(pairs)}, nil
}

// stepAbs performs self's pending operation. other is read-only except
// that reads observe its W and Hist.
func stepAbs(cfg Alg6Config, self, other *procAbs) error {
	switch self.Phase {
	case 0: // write of round Round
		bit := uint32(Bit(self.Pos))
		self.Hist = ((self.Hist << 1) | bit) & ((1 << (cfg.Delta + 1)) - 1)
		self.W++
		self.Phase = 1
		return nil
	case 1: // read of round Round
		r := self.Round
		o := other.W // what the ring arithmetic computes (Lemma 8.5)
		sawOther := r <= o
		var bitVal uint64
		if sawOther {
			idx := o - r
			if idx > cfg.Delta {
				return fmt.Errorf("labelling: abstract history index %d > Δ (Corollary 8.2 violated)", idx)
			}
			bitVal = uint64((other.Hist >> idx) & 1)
			self.C = 0
		} else {
			self.C++
		}
		np, err := Step(self.Pos, sawOther, bitVal, Pow3(r-1))
		if err != nil {
			return err
		}
		self.Pos = np
		if self.C == cfg.Delta || r == cfg.R {
			self.Phase = 2
			self.Final = r
			return nil
		}
		self.Round++
		self.Phase = 0
		return nil
	default:
		return fmt.Errorf("labelling: step on finished process")
	}
}

// Value returns the path value of a label as (num, den): its index over
// the path length minus one.
func (vm *ValueMap) Value(l Label) (num, den int, err error) {
	idx, ok := vm.Index[l]
	if !ok {
		return 0, 0, fmt.Errorf("labelling: label %v not in value map", l)
	}
	return idx, vm.Len - 1, nil
}
