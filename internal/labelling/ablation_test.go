package labelling

import (
	"testing"

	"repro/internal/sched"
)

// TestDeltaAblationPathLength: a larger solo budget Δ keeps more IS
// executions in the simulated subset (fewer early exits), at the cost of
// wider registers — the design trade-off behind Theorem 8.1's choice of
// Δ = 2.
func TestDeltaAblationPathLength(t *testing.T) {
	r := 6
	vm2, err := BuildValueMap(Alg6Config{Delta: 2, R: r})
	if err != nil {
		t.Fatal(err)
	}
	vm3, err := BuildValueMap(Alg6Config{Delta: 3, R: r})
	if err != nil {
		t.Fatal(err)
	}
	if vm3.Len <= vm2.Len {
		t.Fatalf("Δ=3 path %d not longer than Δ=2 path %d", vm3.Len, vm2.Len)
	}
	if vm3.Len > Pow3(r)+1 {
		t.Fatalf("Δ=3 path %d exceeds the full complex", vm3.Len)
	}
}

// TestDeltaAblationRegisterWidth: register width is ⌈log(2Δ+1)⌉ + Δ+1.
func TestDeltaAblationRegisterWidth(t *testing.T) {
	tests := []struct {
		delta, want int
	}{
		{2, 6},  // ⌈log 5⌉=3 + 3
		{3, 7},  // ⌈log 7⌉=3 + 4
		{4, 9},  // ⌈log 9⌉=4 + 5
		{5, 10}, // ⌈log 11⌉=4 + 6
	}
	for _, tc := range tests {
		cfg := Alg6Config{Delta: tc.delta, R: 5}
		if got := cfg.RegisterBits(); got != tc.want {
			t.Errorf("Δ=%d: bits = %d, want %d", tc.delta, got, tc.want)
		}
	}
}

// TestDeltaAblationRuns: Algorithm 6 stays correct for Δ = 3, 4 — all
// runs land on the respective path with adjacent co-final labels.
func TestDeltaAblationRuns(t *testing.T) {
	for _, delta := range []int{3, 4} {
		cfg := Alg6Config{Delta: delta, R: 6}
		vm, err := BuildValueMap(cfg)
		if err != nil {
			t.Fatalf("Δ=%d: %v", delta, err)
		}
		for seed := int64(0); seed < 50; seed++ {
			labels, done, res, err := RunAlg6(cfg, sched.NewRandom(seed))
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatalf("Δ=%d seed=%d: %v", delta, seed, e)
			}
			if !done[0] || !done[1] {
				t.Fatalf("Δ=%d seed=%d: unfinished", delta, seed)
			}
			i0, ok0 := vm.Index[labels[0]]
			i1, ok1 := vm.Index[labels[1]]
			if !ok0 || !ok1 {
				t.Fatalf("Δ=%d seed=%d: labels off-path", delta, seed)
			}
			if d := i0 - i1; d != 1 && d != -1 {
				t.Fatalf("Δ=%d seed=%d: indices %d,%d not adjacent", delta, seed, i0, i1)
			}
		}
	}
}

// TestValueMapDeterministic: two builds agree exactly.
func TestValueMapDeterministic(t *testing.T) {
	a, err := BuildValueMap(Alg6Config{Delta: 2, R: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildValueMap(Alg6Config{Delta: 2, R: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len != b.Len || a.PairCount != b.PairCount {
		t.Fatal("nondeterministic value map size")
	}
	for l, i := range a.Index {
		if b.Index[l] != i {
			t.Fatalf("label %v has index %d vs %d", l, i, b.Index[l])
		}
	}
}

// TestLemma87SchedulesShape: the constructed schedule family has the
// right count and step shape.
func TestLemma87SchedulesShape(t *testing.T) {
	r := 4
	seqs := Lemma87Schedules(r)
	if len(seqs) != 1<<r {
		t.Fatalf("%d schedules, want %d", len(seqs), 1<<r)
	}
	for _, seq := range seqs {
		if len(seq) != 4*r {
			t.Fatalf("schedule length %d, want %d", len(seq), 4*r)
		}
		count := map[int]int{}
		for _, pid := range seq {
			count[pid]++
		}
		if count[0] != 2*r || count[1] != 2*r {
			t.Fatalf("unbalanced schedule %v", seq)
		}
	}
}
