// Package labelling implements §8 of the paper: the 2-process labelling
// protocol of Delporte-Fauconnier-Rajsbaum [14] in which each process
// writes a single bit per immediate-snapshot round yet the set of labels
// after r rounds has size 3^r+1 (Lemma 8.1); Algorithm 6, which simulates
// a subset of the IS executions of the labelling protocol using two
// constant-size registers (ring positions + bounded history windows); and
// the fast wait-free ε-agreement of Theorem 8.1 (O(log 1/ε) steps with
// 6-bit registers).
//
// The labelling protocol is reconstructed from the structure of the
// 2-process IS protocol complex: after r rounds the complex is a path of
// 3^r+1 vertices whose colors (process ids) alternate, and one IS round
// subdivides each edge into three. A process's state is exactly its
// position p on the path (process 0 on even positions, process 1 on odd
// ones). The bit written in round r is
//
//	b(p) = ⌊(p mod 4) / 2⌋,
//
// which lets the other process — knowing its own position q and that
// |p − q| = 1 — recover on which side its neighbour sits: p = q−1 and
// p = q+1 always have different b (they differ by 2 modulo 4). The
// position update for one IS round is
//
//	solo:              p ← 3p
//	saw other at p+1:  p ← 3p+2
//	saw other at p−1:  p ← 3p−2
//
// matching the edge subdivision {p,p+1} → {3p, 3p+1}, {3p+1, 3p+2},
// {3p+2, 3p+3}.
package labelling

import (
	"fmt"

	"repro/internal/iis"
)

// Label is a final state of the labelling protocol: process Pid stopped
// after Round rounds at position Pos ∈ {0..3^Round} of the round-Round
// path. The paper writes it (i, r, λ).
type Label struct {
	Pid   int
	Round int
	Pos   int
}

// String formats the label.
func (l Label) String() string {
	return fmt.Sprintf("(p%d,r%d,λ%d)", l.Pid, l.Round, l.Pos)
}

// Bit returns the bit the labelling protocol writes from position p:
// b(p) = ⌊(p mod 4)/2⌋. Positions q−1 and q+1 always have different bits.
func Bit(p int) uint64 {
	if p%4 >= 2 {
		return 1
	}
	return 0
}

// Pow3 returns 3^r.
func Pow3(r int) int {
	out := 1
	for i := 0; i < r; i++ {
		out *= 3
	}
	return out
}

// InitialPos returns the round-0 position of process pid on the
// single-edge round-0 path: process 0 at 0, process 1 at 1.
func InitialPos(pid int) int { return pid }

// Step advances position p by one IS round. If sawOther is false the
// round was solo. Otherwise otherBit is the bit written by the other
// process this round, and maxPos = 3^(r-1) is the top position of the
// previous round's path, used to resolve the boundary cases p = 0 and
// p = maxPos where only one neighbour exists.
func Step(p int, sawOther bool, otherBit uint64, maxPos int) (int, error) {
	if !sawOther {
		return 3 * p, nil
	}
	switch {
	case p == 0:
		return 3*p + 2, nil // neighbour must be at p+1
	case p == maxPos:
		return 3*p - 2, nil // neighbour must be at p-1
	case Bit(p+1) == otherBit && Bit(p-1) == otherBit:
		return 0, fmt.Errorf("labelling: bit %d matches both neighbours of %d", otherBit, p)
	case Bit(p+1) == otherBit:
		return 3*p + 2, nil
	case Bit(p-1) == otherBit:
		return 3*p - 2, nil
	default:
		return 0, fmt.Errorf("labelling: bit %d matches no neighbour of %d", otherBit, p)
	}
}

// RunIIS runs the labelling protocol for both processes in the IIS model
// under the given schedule (one ordered partition per round) and returns
// the two labels.
func RunIIS(schedule iis.Schedule) ([2]Label, error) {
	pos := [2]int{InitialPos(0), InitialPos(1)}
	for r, bl := range schedule {
		maxPos := Pow3(r)
		bits := [2]uint64{Bit(pos[0]), Bit(pos[1])}
		seen := bl.Seen(2)
		var next [2]int
		for i := 0; i < 2; i++ {
			sawOther := false
			for _, j := range seen[i] {
				if j != i {
					sawOther = true
				}
			}
			p, err := Step(pos[i], sawOther, bits[1-i], maxPos)
			if err != nil {
				return [2]Label{}, err
			}
			next[i] = p
		}
		pos = next
	}
	r := len(schedule)
	return [2]Label{
		{Pid: 0, Round: r, Pos: pos[0]},
		{Pid: 1, Round: r, Pos: pos[1]},
	}, nil
}

// AllLabels enumerates the labels reachable after r IIS rounds across all
// 3^r schedules. Lemma 8.1: exactly 3^r + 1 labels (the positions
// 0..3^r, with the process id determined by parity).
func AllLabels(r int) (map[Label]bool, error) {
	labels := map[Label]bool{}
	var firstErr error
	iis.ForEachSchedule(2, r, func(s iis.Schedule) bool {
		ls, err := RunIIS(s)
		if err != nil {
			firstErr = err
			return false
		}
		labels[ls[0]] = true
		labels[ls[1]] = true
		return true
	})
	return labels, firstErr
}

// F is the label-to-value map of §8.1 for full executions: position
// p over denominator 3^r. f(λ_s0) = 0 for process 0's all-solo label and
// f(λ_s1) = 1 for process 1's; co-final labels are 1/3^r apart.
func F(l Label) (num, den int) { return l.Pos, Pow3(l.Round) }

// DecideIIS is the ε-agreement decision rule of §8.1: given the process's
// binary input, the other process's input (-1 if unseen), and the label,
// it returns the decision as (num, den). With both inputs visible and
// different, the path is oriented by x_0: value f(λ) if x_0 = 0, and
// 1 − f(λ) otherwise.
func DecideIIS(pid int, myInput int, otherInput int, l Label) (num, den int) {
	if otherInput < 0 || otherInput == myInput {
		return myInput, 1
	}
	x0 := myInput
	if pid == 1 {
		x0 = otherInput
	}
	fn, fd := F(l)
	if x0 == 0 {
		return fn, fd
	}
	return fd - fn, fd
}
