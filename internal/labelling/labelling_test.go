package labelling

import (
	"testing"

	"repro/internal/iis"
)

func TestBitDistinguishesNeighbours(t *testing.T) {
	// b(q-1) ≠ b(q+1) for every q ≥ 1 — the direction-disambiguation
	// property the 1-bit protocol relies on.
	for q := 1; q < 1000; q++ {
		if Bit(q-1) == Bit(q+1) {
			t.Fatalf("Bit(%d) == Bit(%d)", q-1, q+1)
		}
	}
}

func TestStepSubdivision(t *testing.T) {
	// One IS round maps the edge {p, p+1} to the three sub-edges of the
	// tripled path.
	maxPos := 9 // round-2 path
	p := 4
	if got, _ := Step(p, false, 0, maxPos); got != 12 {
		t.Errorf("solo: %d, want 12", got)
	}
	if got, _ := Step(p, true, Bit(5), maxPos); got != 14 {
		t.Errorf("saw right neighbour: %d, want 14", got)
	}
	if got, _ := Step(p, true, Bit(3), maxPos); got != 10 {
		t.Errorf("saw left neighbour: %d, want 10", got)
	}
}

func TestStepBoundaries(t *testing.T) {
	if got, _ := Step(0, true, Bit(1), 9); got != 2 {
		t.Errorf("left boundary: %d, want 2", got)
	}
	if got, _ := Step(9, true, Bit(8), 9); got != 25 {
		t.Errorf("right boundary: %d, want 25", got)
	}
}

func TestLemma81LabelCounts(t *testing.T) {
	// Lemma 8.1: after r rounds, exactly 3^r + 1 labels over all
	// executions — the positions of the subdivided path.
	for r := 1; r <= 5; r++ {
		labels, err := AllLabels(r)
		if err != nil {
			t.Fatal(err)
		}
		if want := Pow3(r) + 1; len(labels) != want {
			t.Fatalf("round %d: %d labels, want 3^%d+1 = %d", r, len(labels), r, want)
		}
		// Positions partition by parity: process 0 even, process 1 odd.
		for l := range labels {
			if l.Pos%2 != l.Pid {
				t.Fatalf("label %v: position parity does not match pid", l)
			}
			if l.Pos < 0 || l.Pos > Pow3(r) {
				t.Fatalf("label %v out of range", l)
			}
		}
	}
}

func TestLabelsAdjacentEveryExecution(t *testing.T) {
	// In every execution the two final positions are adjacent on the
	// round-r path (they form an edge of the protocol complex).
	iis.ForEachSchedule(2, 4, func(s iis.Schedule) bool {
		ls, err := RunIIS(s)
		if err != nil {
			t.Fatal(err)
		}
		d := ls[0].Pos - ls[1].Pos
		if d != 1 && d != -1 {
			t.Fatalf("schedule %v: positions %d, %d not adjacent", s, ls[0].Pos, ls[1].Pos)
		}
		return true
	})
}

func TestSoloEndpoints(t *testing.T) {
	// Process 0 solo every round stays at 0; process 1 solo reaches 3^r.
	r := 4
	soloP0 := make(iis.Schedule, r)
	soloP1 := make(iis.Schedule, r)
	for i := 0; i < r; i++ {
		soloP0[i] = iis.Blocks{{0}, {1}}
		soloP1[i] = iis.Blocks{{1}, {0}}
	}
	l0, err := RunIIS(soloP0)
	if err != nil {
		t.Fatal(err)
	}
	if l0[0].Pos != 0 {
		t.Errorf("p0 all-solo position = %d, want 0", l0[0].Pos)
	}
	l1, err := RunIIS(soloP1)
	if err != nil {
		t.Fatal(err)
	}
	if l1[1].Pos != Pow3(r) {
		t.Errorf("p1 all-solo position = %d, want %d", l1[1].Pos, Pow3(r))
	}
}

func TestDecideIISEpsAgreement(t *testing.T) {
	// §8.1: the labelling protocol + f solves 1/3^r-agreement in the IIS
	// model, verified over every schedule and input pair.
	r := 3
	den := Pow3(r)
	for _, inputs := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		iis.ForEachSchedule(2, r, func(s iis.Schedule) bool {
			ls, err := RunIIS(s)
			if err != nil {
				t.Fatal(err)
			}
			n0, d0 := DecideIIS(0, inputs[0], inputs[1], ls[0])
			n1, d1 := DecideIIS(1, inputs[1], inputs[0], ls[1])
			// |n0/d0 - n1/d1| ≤ 1/den
			lhs := n0*d1 - n1*d0
			if lhs < 0 {
				lhs = -lhs
			}
			if lhs*den > d0*d1 {
				t.Fatalf("inputs %v schedule %v: decisions %d/%d, %d/%d not 1/%d-close",
					inputs, s, n0, d0, n1, d1, den)
			}
			if inputs[0] == inputs[1] {
				if n0*1 != inputs[0]*d0 || n1*1 != inputs[1]*d1 {
					t.Fatalf("validity: inputs %v, decisions %d/%d, %d/%d", inputs, n0, d0, n1, d1)
				}
			}
			return true
		})
	}
}

func TestDecideIISSoloSeesNothing(t *testing.T) {
	// A process that saw neither the other's input decides its own input.
	l := Label{Pid: 0, Round: 3, Pos: 0}
	if n, d := DecideIIS(0, 1, -1, l); n != 1 || d != 1 {
		t.Errorf("decision %d/%d, want 1/1", n, d)
	}
}
