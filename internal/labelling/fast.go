package labelling

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/memory"
	"repro/internal/sched"
)

// FastAgreement is the wait-free ε-agreement protocol of Theorem 8.1: two
// processes, registers of constant size (6 bits for Δ = 2), step
// complexity O(R) = O(log 1/ε). Each process publishes its input in its
// write-once input register, runs Algorithm 6 to obtain a label of the
// simulated labelling protocol, reads the other input, and decides the
// label's position along the simulated protocol-complex path, oriented by
// the inputs (§8.1's decision rule).
type FastAgreement struct {
	Cfg Alg6Config
	VM  *ValueMap
}

// NewFastAgreement builds the protocol for R simulated rounds with solo
// budget Δ = 2 (6-bit registers). Its precision is 1/(VM.Len-1) ≤ 1/2^R
// (Lemma 8.7: at least 2^R simulated executions).
func NewFastAgreement(r int) (*FastAgreement, error) {
	cfg := Alg6Config{Delta: 2, R: r}
	vm, err := BuildValueMap(cfg)
	if err != nil {
		return nil, err
	}
	return &FastAgreement{Cfg: cfg, VM: vm}, nil
}

// EpsDen returns the denominator D of the protocol's precision 1/D.
func (fa *FastAgreement) EpsDen() int { return fa.VM.Len - 1 }

// Proc returns process me's code. The decision is stored through out.
func (fa *FastAgreement) Proc(m *memory.Shared, input uint64, out *agreement.Decision, decided *bool) sched.ProcFunc {
	return func(p *sched.Proc) error {
		d, err := fa.Inline(p, m, input)
		if err != nil {
			return err
		}
		*out = d
		*decided = true
		return nil
	}
}

// Inline runs the fast ε-agreement inside an already-scheduled process,
// on its dedicated 2-process memory m (6-bit registers plus the
// write-once input registers). Decisions are normalized to denominator
// EpsDen(): boundary decisions satisfy the Lemma 5.6 analogue (decide
// 0 or 1 only with that own input), which is what lets this protocol
// replace Algorithm 1 inside the universal construction.
func (fa *FastAgreement) Inline(p *sched.Proc, m *memory.Shared, input uint64) (agreement.Decision, error) {
	if input > 1 {
		return agreement.Decision{}, fmt.Errorf("fast: input %d not binary", input)
	}
	pm := memory.Bind(p, m)
	me, other := p.ID, 1-p.ID

	if err := pm.WriteInput(input); err != nil {
		return agreement.Decision{}, err
	}
	label, err := Alg6Inline(p, fa.Cfg, m)
	if err != nil {
		return agreement.Decision{}, err
	}
	xotherAny := pm.ReadInput(other)

	den := fa.EpsDen()

	// No other input, or equal inputs: decide own input.
	if xotherAny == nil {
		return agreement.Dec(int(input)*den, den), nil
	}
	xother, ok := xotherAny.(uint64)
	if !ok {
		return agreement.Decision{}, fmt.Errorf("fast: input register holds %T", xotherAny)
	}
	if xother == input {
		return agreement.Dec(int(input)*den, den), nil
	}

	// Inputs differ: decide the path position, oriented by x_0.
	num, _, err := fa.VM.Value(label)
	if err != nil {
		return agreement.Decision{}, err
	}
	x0 := input
	if me == 1 {
		x0 = xother
	}
	if x0 == 0 {
		return agreement.Dec(num, den), nil
	}
	return agreement.Dec(den-num, den), nil
}

// FastRun is one execution of the fast ε-agreement protocol.
type FastRun struct {
	Inputs  [2]uint64
	Outs    [2]agreement.Decision
	Decided [2]bool
	Result  *sched.Result
}

// Check validates the run against binary ε-agreement with ε = 1/EpsDen().
func (fa *FastAgreement) Check(fr *FastRun) error {
	return agreement.CheckBinaryEps(fr.Inputs[:], fr.Outs[:], fr.Decided[:], 1, fa.EpsDen())
}

// Run executes the protocol under the given scheduler.
func (fa *FastAgreement) Run(inputs [2]uint64, scheduler sched.Scheduler) (*FastRun, error) {
	fr := &FastRun{Inputs: inputs}
	m := NewAlg6Memory(fa.Cfg)
	procs := []sched.ProcFunc{
		fa.Proc(m, inputs[0], &fr.Outs[0], &fr.Decided[0]),
		fa.Proc(m, inputs[1], &fr.Outs[1], &fr.Decided[1]),
	}
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		return nil, err
	}
	fr.Result = res
	return fr, nil
}

// MaxSteps returns the protocol's worst-case step count per process:
// 2 input-register operations plus 2 per simulated round.
func (fa *FastAgreement) MaxSteps() int { return 2*fa.Cfg.R + 2 }
