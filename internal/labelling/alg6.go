package labelling

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
)

// Alg6Config parameterizes the constant-register simulation of §8.2.
type Alg6Config struct {
	// Delta is the solo budget Δ: a process quits after Δ consecutive
	// simulated solo rounds. Δ ≥ 2 per Lemma 8.7; Δ = 2 gives the 6-bit
	// registers of Theorem 8.1.
	Delta int
	// R is the maximum number of simulated IS rounds.
	R int
}

// RingSize returns the size 2Δ+1 of the position ring.
func (c Alg6Config) RingSize() int { return 2*c.Delta + 1 }

// RegisterBits returns the register width of the simulation:
// ⌈log2(2Δ+1)⌉ bits of ring position plus Δ+1 history bits (the labelling
// protocol writes b = 1 bit per round). For Δ = 2 this is 3 + 3 = 6 bits,
// matching Theorem 8.1.
func (c Alg6Config) RegisterBits() int {
	ringBits := 0
	for 1<<ringBits < c.RingSize() {
		ringBits++
	}
	return ringBits + c.Delta + 1
}

func (c Alg6Config) ringBits() int {
	b := 0
	for 1<<b < c.RingSize() {
		b++
	}
	return b
}

// encode packs (ring position x, history window H) into one bounded word.
// H[0] is the most recent bit.
func (c Alg6Config) encode(x int, h []uint64) uint64 {
	w := uint64(x)
	for j, bit := range h {
		w |= bit << (c.ringBits() + j)
	}
	return w
}

// decode unpacks a register word.
func (c Alg6Config) decode(w uint64) (x int, h []uint64) {
	x = int(w & ((1 << c.ringBits()) - 1))
	h = make([]uint64, c.Delta+1)
	for j := range h {
		h[j] = (w >> (c.ringBits() + j)) & 1
	}
	return x, h
}

// NewAlg6Memory returns the 2-process shared memory of the simulation,
// with registers of exactly RegisterBits() bits.
func NewAlg6Memory(cfg Alg6Config) *memory.Shared {
	return memory.New(2, cfg.RegisterBits())
}

// ringDist is ℓ(a,b): the length of the directed path from a to b on the
// oriented ring of size 2Δ+1.
func (c Alg6Config) ringDist(a, b int) int {
	return ((b-a)%c.RingSize() + c.RingSize()) % c.RingSize()
}

// Alg6Inline runs Algorithm 6 for process p on memory m, simulating the
// labelling protocol, and returns the process's final label. Each
// simulated round costs exactly one write and one read of a
// RegisterBits()-bit register.
func Alg6Inline(p *sched.Proc, cfg Alg6Config, m *memory.Shared) (Label, error) {
	pm := memory.Bind(p, m)
	me, other := p.ID, 1-p.ID

	estr := 0  // estimate of the other process's round
	xprec := 0 // last known ring position of the other process
	c := 0     // consecutive simulated solo rounds
	pos := InitialPos(me)
	h := make([]uint64, cfg.Delta+1)

	r := 0
	broke := false
	for r = 1; r <= cfg.R; r++ {
		x := r % cfg.RingSize()            // line 3: advance on the ring
		v := Bit(pos)                      // line 4: the labelling protocol's bit
		for j := len(h) - 1; j >= 1; j-- { // lines 5-6: slide the window
			h[j] = h[j-1]
		}
		h[0] = v
		if err := pm.Write(cfg.encode(x, h)); err != nil { // line 8
			return Label{}, err
		}
		word, ok := pm.Read(other).(uint64) // line 9
		if !ok {
			return Label{}, fmt.Errorf("alg6: register holds non-word")
		}
		xo, ho := cfg.decode(word)
		estr += cfg.ringDist(xprec, xo) // line 10
		xprec = xo                      // line 11

		sawOther := false
		var otherBit uint64
		if r <= estr { // lines 12-14
			idx := estr - r
			if idx > cfg.Delta {
				return Label{}, fmt.Errorf("alg6: history index %d > Δ (Corollary 8.2 violated)", idx)
			}
			sawOther = true
			otherBit = ho[idx]
			c = 0
		} else { // lines 15-17
			c++
		}
		np, err := Step(pos, sawOther, otherBit, Pow3(r-1))
		if err != nil {
			return Label{}, err
		}
		pos = np
		if c == cfg.Delta { // line 18
			broke = true
			break
		}
	}
	if !broke {
		r = cfg.R
	}
	return Label{Pid: me, Round: r, Pos: pos}, nil
}

// RunAlg6 runs the simulation for both processes under the scheduler.
// Labels[i] is process i's final label; Done[i] reports it finished.
func RunAlg6(cfg Alg6Config, scheduler sched.Scheduler) ([2]Label, [2]bool, *sched.Result, error) {
	var labels [2]Label
	var done [2]bool
	m := NewAlg6Memory(cfg)
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			l, err := Alg6Inline(p, cfg, m)
			if err != nil {
				return err
			}
			labels[0], done[0] = l, true
			return nil
		},
		func(p *sched.Proc) error {
			l, err := Alg6Inline(p, cfg, m)
			if err != nil {
				return err
			}
			labels[1], done[1] = l, true
			return nil
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
	if err != nil {
		return labels, done, nil, err
	}
	return labels, done, res, nil
}

// Lemma87Schedules constructs the 2^R schedules of Lemma 8.7, each
// simulating a distinct IS execution of length R: per round, either both
// processes write then both read (no solo), or the designated solo
// process writes and reads before the other (alternating the solo process
// so that no process accumulates Δ ≥ 2 consecutive solo rounds). The
// schedules are returned as pid step sequences for a Replay scheduler.
func Lemma87Schedules(r int) [][]int {
	var out [][]int
	total := 1 << r
	for mask := 0; mask < total; mask++ {
		var seq []int
		lastSolo := 1 // first solo round uses process 0
		for round := 0; round < r; round++ {
			if mask&(1<<round) == 0 {
				seq = append(seq, 0, 1, 0, 1) // w0 w1 r0 r1: both see both
			} else {
				s := 1 - lastSolo
				lastSolo = s
				seq = append(seq, s, s, 1-s, 1-s) // ws rs wo ro: s is solo
			}
		}
		out = append(out, seq)
	}
	return out
}
