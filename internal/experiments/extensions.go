package experiments

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/sched"
	"repro/internal/task"
)

// Theorem12Fast (E13) measures the §8-accelerated universal construction:
// Algorithm 2 with the Theorem 8.1 subprotocol — constant-size registers
// with O(log L) agreement steps instead of Θ(L).
func Theorem12Fast() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Thm 1.2 + Thm 8.1 — universal construction, classic (3-bit) vs fast (8-bit)",
		Headers: []string{"task (path length L)", "classic steps", "fast steps", "speedup", "verdict"},
	}
	for _, l := range []int{8, 16, 40, 80} {
		tk := task.DiscreteEpsAgreement(l)
		plan, err := tk.BuildPlan(tk.Outputs)
		if err != nil {
			return nil, err
		}
		input := task.Pair{0, 1}
		classic, resC, err := task.RunAlg2(plan, input, &sched.RoundRobin{})
		if err != nil {
			return nil, err
		}
		if err := task.CheckRun(tk, input, classic); err != nil {
			return nil, err
		}
		fast, resF, err := task.RunAlg2Fast(plan, input, &sched.RoundRobin{})
		if err != nil {
			return nil, err
		}
		if err := task.CheckFastRun(tk, input, fast); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (L=%d)", tk.Name, plan.L),
			itoa(resC.Steps[0]), itoa(resF.Steps[0]),
			fmt.Sprintf("%.1fx", float64(resC.Steps[0])/float64(resF.Steps[0])),
			"both legal",
		})
	}
	t.Notes = append(t.Notes,
		"the exponential agreement slowdown is not inherent to constant-size registers (§8 remark)")
	return t, nil
}

// Lemma23Substrates (E14) exercises the snapshot substrates: the
// Borowsky-Gafni immediate snapshot built from reads/writes powers the
// n-process midpoint ε-agreement of Lemma 2.2 in the non-iterated model.
func Lemma23Substrates() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Lemma 2.3 — IS-from-read/write powering Lemma 2.2 in shared memory",
		Headers: []string{"n", "rounds", "ε", "schedules", "worst pair distance", "verdict"},
	}
	for _, c := range []struct{ n, rounds int }{{2, 2}, {3, 2}, {4, 3}, {5, 2}} {
		worstNum, worstDen := 0, 1
		trials := 0
		for seed := int64(0); seed < 25; seed++ {
			inputs := make([]uint64, c.n)
			for i := range inputs {
				inputs[i] = uint64((int(seed) >> i) & 1)
			}
			mr, err := agreement.RunMidpoint(c.n, c.rounds, inputs, sched.NewRandom(seed))
			if err != nil {
				return nil, err
			}
			if e := mr.Result.Err(); e != nil {
				return nil, e
			}
			if err := mr.Check(c.rounds); err != nil {
				return nil, err
			}
			trials++
			for i := 0; i < c.n; i++ {
				for j := i + 1; j < c.n; j++ {
					dn := mr.Outs[i].Num - mr.Outs[j].Num
					if dn < 0 {
						dn = -dn
					}
					if dn*worstDen > worstNum*mr.Outs[i].Den {
						worstNum, worstDen = dn, mr.Outs[i].Den
					}
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.n), itoa(c.rounds), rat(1, 1<<c.rounds),
			itoa(trials), rat(worstNum, worstDen), "ε-agreement holds",
		})
	}
	t.Notes = append(t.Notes,
		"immediate snapshots implemented from plain registers (level descent); spread halves per IS round")
	return t, nil
}
