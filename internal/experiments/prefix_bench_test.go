package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// bigPrefixSet renders n disjoint depth-2 prefixes ("i.j" over a
// √n×√n grid) — the coordinator-scale input the O(n log n) overlap
// check is sized for.
func bigPrefixSet(n int) string {
	side := 1
	for side*side < n {
		side++
	}
	parts := make([]string, 0, n)
	for i := 0; len(parts) < n; i++ {
		for j := 0; j < side && len(parts) < n; j++ {
			parts = append(parts, fmt.Sprintf("%d.%d", i, j))
		}
	}
	return strings.Join(parts, ",")
}

// BenchmarkParsePrefixes1k measures the parse + overlap check at the
// ~1k-range scale a large fleet's coordinator emits. The overlap check
// is sort + adjacent-pair comparison, O(n log n); the quadratic
// reference below is kept for comparison.
func BenchmarkParsePrefixes1k(b *testing.B) {
	s := bigPrefixSet(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePrefixes(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParsePrefixes1kQuadraticReference re-runs the overlap
// check the way the pre-fix implementation did — every pair, O(n²) —
// over the same parsed roots, so `go test -bench ParsePrefixes1k`
// shows the two growth rates side by side.
func BenchmarkParsePrefixes1kQuadraticReference(b *testing.B) {
	roots, err := ParsePrefixes(bigPrefixSet(1024))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range roots {
			for y := range roots {
				if x != y && isIntPrefix(roots[x], roots[y]) {
					b.Fatal("disjoint set reported overlap")
				}
			}
		}
	}
}

// TestParsePrefixesLargeDisjointSet pins the benchmark input's
// validity and the overlap check's behaviour at scale: 1024 disjoint
// ranges parse, and planting a single covering prefix anywhere in the
// set is caught.
func TestParsePrefixesLargeDisjointSet(t *testing.T) {
	s := bigPrefixSet(1024)
	roots, err := ParsePrefixes(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1024 {
		t.Fatalf("parsed %d roots, want 1024", len(roots))
	}
	if _, err := ParsePrefixes(s + ",5"); err == nil {
		t.Fatal("covering prefix \"5\" not detected among 1024 ranges")
	}
	if _, err := ParsePrefixes("5," + s); err == nil {
		t.Fatal("leading covering prefix \"5\" not detected")
	}
}
