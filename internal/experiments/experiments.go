// Package experiments regenerates every figure and theorem-level claim of
// the paper (the E1..E15 experiment index of DESIGN.md): each experiment
// returns a printable table whose rows are the series the paper reports.
//
// The concurrent execution engine (Run) drives the registry on a bounded
// worker pool with per-experiment timeouts and panic isolation, returning
// results in request order so that concurrent runs emit byte-identical
// output to serial runs. EncodeText, EncodeJSON, and EncodeCSV render a
// result slice; the cmd/figures binary is the CLI over all of it, and the
// root benchmarks wrap the individual experiments.
//
// Two properties make the engine composable with the layers above it.
// First, the JSON wire form (EncodeJSON, inverted by DecodeJSON) is a
// pure function of an experiment's outputs — durations and cache
// provenance are excluded — so a result that travelled through the
// on-disk cache (internal/cache) or over HTTP (internal/server,
// internal/shard) re-encodes to exactly the bytes a fresh local run
// would have produced. Second, result order is always request order,
// never completion order. Together they are the merge-order guarantee:
// any distribution of the work — across goroutines (Jobs), cache hits,
// or a remote worker fleet — emits byte-identical output.
//
// Options.Cache is the storage seam: a two-method Get/Put interface
// consulted before each runner and updated after each success, with
// failed results never stored. RegistryVersion names the current
// experiment generation and must be bumped whenever output bytes could
// change; cache keys include it, so stale stores miss instead of lying.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment id of DESIGN.md (E1..E15).
	ID string
	// Title names the paper object reproduced.
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records the claim checked and the verdict.
	Notes []string
}

// Runner produces a table.
type Runner func() (*Table, error)

// RegistryVersion names the current generation of the experiment
// definitions and is part of every cache key (internal/cache). Bump it
// whenever any registered experiment's output bytes could change —
// new or removed experiments, parameter sweeps, wording of titles,
// headers, or notes — so stale cached tables are never served; old
// entries simply stop matching and age out of the store.
const RegistryVersion = "e1-e15/v1"

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  Figure1Summary,
		"E2":  Figure2Executions,
		"E3":  Theorem12Universal,
		"E4":  Theorem11Pigeonhole,
		"E5":  Theorem13Pipeline,
		"E6":  Theorem14IIS1Bit,
		"E7":  Figure4ISComplex,
		"E8":  Figure5Labels,
		"E9":  Figure6SimulatedIS,
		"E10": Theorem81Crossover,
		"E11": Figure3Ring,
		"E12": Lemma22Convergence,
		"E13": Theorem12Fast,
		"E14": Lemma23Substrates,
		"E15": Theorem12Exhaustive,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string { return sortIDs(Registry()) }

// IDsOf returns a registry's experiment ids in index order ("E2"
// before "E10"); nil means the built-in registry. Callers that accept
// a registry override (the shard coordinator, tests) use it to expand
// "run everything" the same way Run does.
func IDsOf(reg map[string]Runner) []string {
	if reg == nil {
		reg = Registry()
	}
	return sortIDs(reg)
}

// sortIDs returns a registry's ids sorted by numeric suffix ("E2" before
// "E10"), falling back to lexicographic order for ids without one.
func sortIDs(reg map[string]Runner) []string {
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, ea := strconv.Atoi(strings.TrimLeft(ids[a], "E"))
		nb, eb := strconv.Atoi(strings.TrimLeft(ids[b], "E"))
		if ea == nil && eb == nil && na != nb {
			return na < nb
		}
		if (ea == nil) != (eb == nil) {
			return ea == nil
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		out := ""
		for i, c := range cells {
			out += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return out + "\n"
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	out += line(t.Headers)
	for _, row := range t.Rows {
		out += line(row)
	}
	for _, n := range t.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}

func itoa(v int) string { return strconv.Itoa(v) }

func rat(num, den int) string { return fmt.Sprintf("%d/%d", num, den) }
