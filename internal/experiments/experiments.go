// Package experiments regenerates every figure and theorem-level claim of
// the paper (the experiment index of DESIGN.md): each experiment returns
// a printable table whose rows are the series the paper reports. The
// cmd/figures binary prints them all; the root benchmarks wrap them.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment id of DESIGN.md (E1..E12).
	ID string
	// Title names the paper object reproduced.
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records the claim checked and the verdict.
	Notes []string
}

// Runner produces a table.
type Runner func() (*Table, error)

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  Figure1Summary,
		"E2":  Figure2Executions,
		"E3":  Theorem12Universal,
		"E4":  Theorem11Pigeonhole,
		"E5":  Theorem13Pipeline,
		"E6":  Theorem14IIS1Bit,
		"E7":  Figure4ISComplex,
		"E8":  Figure5Labels,
		"E9":  Figure6SimulatedIS,
		"E10": Theorem81Crossover,
		"E11": Figure3Ring,
		"E12": Lemma22Convergence,
		"E13": Theorem12Fast,
		"E14": Lemma23Substrates,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, 14)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, _ := strconv.Atoi(ids[a][1:])
		nb, _ := strconv.Atoi(ids[b][1:])
		return na < nb
	})
	return ids
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		out := ""
		for i, c := range cells {
			out += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return out + "\n"
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	out += line(t.Headers)
	for _, row := range t.Rows {
		out += line(row)
	}
	for _, n := range t.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}

func itoa(v int) string { return strconv.Itoa(v) }

func rat(num, den int) string { return fmt.Sprintf("%d/%d", num, den) }
