package experiments

import (
	"repro/internal/agreement"
	"repro/internal/sched"
	"repro/internal/task"
)

// This file is the reduced-exploration seam: the experiments whose
// exhaustive schedule sweeps can run through the canonical-state
// memoized explorer (sched.ExploreMemo / sched.ExploreMemoParallel)
// instead of replaying every interleaving. A reduced runner must
// render *exactly* the bytes its exhaustive twin renders — it feeds
// the same aggregate into the same finish path — and additionally
// reports the explorer's counters, the observability the -reduce CLI
// flag and the server's /stats section surface. Reduction is opt-in
// per experiment (Options.Reduce) and never changes the Shardable
// partial-run forms: sharded ranges keep their exhaustive
// byte-identical contract.

// ReducedRunner produces the same table as the experiment's Runner,
// plus the memoized exploration's counters. workers is the memo
// explorer's goroutine fan-out: 1 runs the serial explorer, > 1 the
// sharded-table parallel one, <= 0 sched.DefaultExploreWorkers. The
// table bytes are identical at every worker count.
type ReducedRunner func(workers int) (*Table, sched.MemoStats, error)

// Reduced returns the experiments that support the memoized
// exploration mode, by id: the two exhaustive schedule sweeps, plus
// the reduced-only heavy sweeps (Heavy()).
func Reduced() map[string]ReducedRunner {
	return map[string]ReducedRunner{
		"E2":  Figure2ExecutionsReduced,
		"E15": Theorem12ExhaustiveReduced,
		"E16": AlgK5SweepReduced,
	}
}

// ReducedIDs returns the reduced-capable experiment ids in index order.
func ReducedIDs() []string {
	m := Reduced()
	ids := make(map[string]Runner, len(m))
	for id := range m {
		ids[id] = nil
	}
	return sortIDs(ids)
}

// alg1LeafAgg extracts one execution's contribution to E2's aggregate:
// a fresh single-run alg1SweepAgg, built through the same collector the
// exhaustive sweep uses. It is determined by the run's final state
// (outputs, per-process step counts) and invariant under process
// relabelling (set union, absolute difference, max), as the memo
// contract requires.
func alg1LeafAgg(ar *agreement.Alg1Run) any {
	c := newAlg1Collector()
	c.visit(ar)
	return c.agg()
}

// mergeAlg1Agg is the pure MemoOptions.Merge over E2 aggregates: it
// folds both into a fresh zero aggregate, leaving the arguments — live
// memo entries — untouched. (alg1SweepAgg.Merge mutates its receiver,
// which is exactly why the memoized path merges into a clone.)
func mergeAlg1Agg(a, b any) any {
	out := &alg1SweepAgg{}
	out.Merge(a.(*alg1SweepAgg))
	out.Merge(b.(*alg1SweepAgg))
	return out
}

// Figure2ExecutionsReduced is E2 through the memoized explorer: the
// same aggregate-and-finish path as Figure2Executions, with pruned
// subtrees contributing their memoized aggregates instead of being
// replayed — across workers goroutines when workers > 1.
func Figure2ExecutionsReduced(workers int) (*Table, sched.MemoStats, error) {
	agg, stats, err := agreement.ExploreAlg1MemoParallel(e2K, e2Inputs, workers, alg1LeafAgg, mergeAlg1Agg)
	if err != nil {
		return nil, stats, err
	}
	a, _ := agg.(*alg1SweepAgg)
	if a == nil {
		a = &alg1SweepAgg{}
	}
	tab, err := finishE2(a, e2K, e2Inputs)
	return tab, stats, err
}

// Theorem12ExhaustiveReduced is E15 through the memoized explorer:
// every visited execution validated by task.CheckRun, pruned subtrees
// vouched for by their memoized twins, and the exhaustive execution
// count recovered from the explorer's accounting.
func Theorem12ExhaustiveReduced(workers int) (*Table, sched.MemoStats, error) {
	plan, err := e15Plan(e15Choice)
	if err != nil {
		return nil, sched.MemoStats{}, err
	}
	stats, err := task.ExploreAlg2MemoParallel(plan, e15Input, workers)
	if err != nil {
		return nil, stats, err
	}
	tab, err := finishE15(&alg2SweepAgg{Execs: stats.Executions}, e15Choice, e15Input)
	return tab, stats, err
}
