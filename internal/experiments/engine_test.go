package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// engineTestIDs returns a sweep that is cheap under -short and complete
// otherwise.
func engineTestIDs(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"E1", "E7", "E8", "E11", "E12"}
	}
	return IDs()
}

// TestEngineConcurrentMatchesSerial is the core engine guarantee: a
// concurrent run emits byte-identical output to a serial run, in every
// format, regardless of completion order.
func TestEngineConcurrentMatchesSerial(t *testing.T) {
	ids := engineTestIDs(t)
	serial, err := Run(context.Background(), Options{IDs: ids, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(serial); err != nil {
		t.Fatal(err)
	}
	concurrent, err := Run(context.Background(), Options{IDs: ids, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for name, encode := range Encoders {
		var a, b bytes.Buffer
		if err := encode(&a, serial); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := encode(&b, concurrent); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: concurrent output differs from serial", name)
		}
	}
}

// TestEngineMatchesDirectRunners anchors the engine's text output to the
// pre-engine behavior: invoking each registered runner directly and
// formatting its table produces the same bytes.
func TestEngineMatchesDirectRunners(t *testing.T) {
	ids := engineTestIDs(t)
	var want strings.Builder
	reg := Registry()
	for _, id := range ids {
		tab, err := reg[id]()
		if err != nil {
			t.Fatal(err)
		}
		want.WriteString(tab.Format())
		want.WriteString("\n")
	}
	results, err := Run(context.Background(), Options{IDs: ids, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := EncodeText(&got, results); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("engine text output differs from direct runner output")
	}
}

func TestEngineTimeout(t *testing.T) {
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			time.Sleep(10 * time.Second)
			return &Table{ID: "E1"}, nil
		},
		"E2": func() (*Table, error) {
			return &Table{ID: "E2", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	start := time.Now()
	results, err := Run(context.Background(), Options{Registry: reg, Jobs: 2, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: run took %v", elapsed)
	}
	if results[0].ID != "E1" || results[0].Err == nil || !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("slow experiment: got %+v, want deadline error", results[0])
	}
	if results[0].Table != nil {
		t.Fatal("timed-out experiment still produced a table")
	}
	if results[1].Err != nil {
		t.Fatalf("fast experiment failed: %v", results[1].Err)
	}
}

// TestEnginePanicIsolation: a panicking runner becomes a failed Result;
// the process and the sibling experiments are unaffected.
func TestEnginePanicIsolation(t *testing.T) {
	reg := map[string]Runner{
		"E1": func() (*Table, error) { panic("boom") },
		"E2": func() (*Table, error) {
			return &Table{ID: "E2", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	results, err := Run(context.Background(), Options{Registry: reg, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !results[0].Panicked {
		t.Fatalf("panicking runner: got %+v, want panicked failure", results[0])
	}
	if !strings.Contains(results[0].Err.Error(), "boom") {
		t.Fatalf("panic value lost: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Panicked {
		t.Fatalf("sibling experiment affected: %+v", results[1])
	}
	if err := FirstError(results); err == nil || !strings.Contains(err.Error(), "E1") {
		t.Fatalf("FirstError = %v, want E1 failure", err)
	}
}

func TestEngineUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), Options{IDs: []string{"E999"}}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestEngineRequestOrderPreserved: results come back in request order
// even when completion order is reversed by experiment cost.
func TestEngineRequestOrderPreserved(t *testing.T) {
	reg := map[string]Runner{
		"slow": func() (*Table, error) {
			time.Sleep(100 * time.Millisecond)
			return &Table{ID: "slow"}, nil
		},
		"fast": func() (*Table, error) { return &Table{ID: "fast"}, nil },
	}
	results, err := Run(context.Background(), Options{Registry: reg, IDs: []string{"slow", "fast"}, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != "slow" || results[1].ID != "fast" {
		t.Fatalf("order not preserved: %s, %s", results[0].ID, results[1].ID)
	}
	if results[0].Duration < results[1].Duration {
		t.Fatalf("durations implausible: slow %v < fast %v", results[0].Duration, results[1].Duration)
	}
}

// TestEngineCancelledContext: a cancelled context fails pending
// experiments with the context's error instead of hanging.
func TestEngineCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			time.Sleep(10 * time.Second)
			return &Table{ID: "E1"}, nil
		},
	}
	start := time.Now()
	results, err := Run(ctx, Options{Registry: reg, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled run did not return promptly")
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", results[0].Err)
	}
}

func TestEngineRunnerErrorIsolated(t *testing.T) {
	reg := map[string]Runner{
		"E1": func() (*Table, error) { return nil, errors.New("bad data") },
		"E2": func() (*Table, error) {
			return &Table{ID: "E2", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	results, err := Run(context.Background(), Options{Registry: reg, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Panicked {
		t.Fatalf("runner error mishandled: %+v", results[0])
	}
	if results[1].Err != nil {
		t.Fatalf("sibling failed: %v", results[1].Err)
	}
}

// fakeCache is an in-memory experiments.Cache recording its traffic.
type fakeCache struct {
	entries map[string]Result
	puts    []string
	putErr  error
}

func newFakeCache() *fakeCache { return &fakeCache{entries: map[string]Result{}} }

func (c *fakeCache) Get(id string) (Result, bool) {
	r, ok := c.entries[id]
	return r, ok
}

func (c *fakeCache) Put(id string, r Result) error {
	c.puts = append(c.puts, id)
	if c.putErr != nil {
		return c.putErr
	}
	c.entries[id] = r
	return nil
}

// TestEngineCacheHitSkipsRunner: a cached experiment's runner never
// executes, and the served result carries the Cached mark.
func TestEngineCacheHitSkipsRunner(t *testing.T) {
	runs := 0
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			runs++
			return &Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	cache := newFakeCache()
	cache.entries["E1"] = Result{ID: "E1", Table: &Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}}
	results, err := Run(context.Background(), Options{Registry: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("runner executed %d times on a warm cache", runs)
	}
	if !results[0].Cached || results[0].Err != nil || results[0].Table == nil {
		t.Fatalf("cached result mangled: %+v", results[0])
	}
	if len(cache.puts) != 0 {
		t.Fatalf("hit re-stored: puts = %v", cache.puts)
	}
}

// TestEngineCacheMissRunsAndStores: a cold cache runs the experiment
// once and stores the success; a second run is then served cold-free.
func TestEngineCacheMissRunsAndStores(t *testing.T) {
	runs := 0
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			runs++
			return &Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	cache := newFakeCache()
	first, err := Run(context.Background(), Options{Registry: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 || first[0].Cached {
		t.Fatalf("cold run: runs = %d, result = %+v", runs, first[0])
	}
	if len(cache.puts) != 1 || cache.puts[0] != "E1" {
		t.Fatalf("success not stored: puts = %v", cache.puts)
	}
	second, err := Run(context.Background(), Options{Registry: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 || !second[0].Cached {
		t.Fatalf("warm run: runs = %d, result = %+v", runs, second[0])
	}
	var a, b bytes.Buffer
	if err := EncodeJSON(&a, first); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&b, second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("warm run encodes differently from cold run")
	}
}

// TestEngineCacheNeverStoresFailures: failed results are recomputed,
// not cached.
func TestEngineCacheNeverStoresFailures(t *testing.T) {
	reg := map[string]Runner{
		"E1": func() (*Table, error) { return nil, errors.New("flaky") },
		"E2": func() (*Table, error) { panic("boom") },
	}
	cache := newFakeCache()
	if _, err := Run(context.Background(), Options{Registry: reg, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if len(cache.puts) != 0 {
		t.Fatalf("failures stored: puts = %v", cache.puts)
	}
}

// TestEngineCachePutErrorIgnored: a cache that cannot persist is an
// optimisation that didn't happen, not a run failure.
func TestEngineCachePutErrorIgnored(t *testing.T) {
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			return &Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	cache := newFakeCache()
	cache.putErr = errors.New("disk full")
	results, err := Run(context.Background(), Options{Registry: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("Put failure surfaced: %v", results[0].Err)
	}
}

// TestEngineCacheIgnoresUnusableHits: a hit carrying an error or no
// table (a misbehaving cache) must not be served — the runner runs.
func TestEngineCacheIgnoresUnusableHits(t *testing.T) {
	runs := 0
	reg := map[string]Runner{
		"E1": func() (*Table, error) {
			runs++
			return &Table{ID: "E1", Headers: []string{"h"}, Rows: [][]string{{"v"}}}, nil
		},
	}
	cache := newFakeCache()
	cache.entries["E1"] = Result{ID: "E1", Err: errors.New("stored failure")}
	results, err := Run(context.Background(), Options{Registry: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 || results[0].Err != nil || results[0].Cached {
		t.Fatalf("unusable hit served: runs = %d, result = %+v", runs, results[0])
	}
}

func TestSortIDsNumericSuffix(t *testing.T) {
	reg := map[string]Runner{
		"E10": nil, "E2": nil, "E1": nil, "zeta": nil, "alpha": nil,
	}
	got := sortIDs(reg)
	want := []string{"E1", "E2", "E10", "alpha", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortIDs = %v, want %v", got, want)
		}
	}
}

func TestEncodersFailedResult(t *testing.T) {
	results := []Result{
		{ID: "E1", Err: errors.New("exploded")},
		{ID: "E2", Table: &Table{ID: "E2", Title: "t", Headers: []string{"h"}, Rows: [][]string{{"v"}}, Notes: []string{"n"}}},
	}
	for name, encode := range Encoders {
		var buf bytes.Buffer
		if err := encode(&buf, results); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		for _, want := range []string{"E1", "exploded", "E2", "v"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", name, want, out)
			}
		}
	}
}
