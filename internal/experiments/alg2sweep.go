package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/task"
)

// E15 is the exhaustive Algorithm 2 validation sweep in partial-run
// form: Theorem 1.2 checked constructively by enumerating every
// crash-free interleaving of the universal construction on one
// solvable task and validating every execution's outputs against the
// task specification (task.CheckRun). The space is a schedule tree
// like E2's, so it shards the same way — task.Alg2Roots carves it,
// task.ExploreAlg2Prefixes explores a slice, and the run count is the
// order-insensitive aggregate (a violation in any slice surfaces as
// that slice's error, so a merged success really did validate every
// interleaving).

// e15Choice and e15Input pin E15's instance: Algorithm 2 on the
// 2-value choice task with the mixed input (0, 1) — the input whose
// executions traverse every ε-agreement outcome class (full input
// seen, other input missing, and the 0 < d < 1 path walk).
// e15ShardDepth is the partition cut — depth 5 carves the
// ~28k-execution tree into ~2^5 ranges, the same grain as E2.
const (
	e15Choice     = 2
	e15ShardDepth = 5
)

var e15Input = task.Pair{0, 1}

// e15Plan builds E15's execution plan at one choice-task size. Plan
// construction is deterministic and cheap next to the exploration, so
// every caller (runner, roots, explore, finish) rebuilds it rather
// than sharing mutable state.
func e15Plan(choice int) (*task.Plan, error) {
	tk := task.ChoiceTask(choice)
	sub, ok := tk.FindSolvableSubset()
	if !ok {
		return nil, fmt.Errorf("experiments: task %s not solvable", tk.Name)
	}
	return tk.BuildPlan(sub)
}

// e15InputOf extracts E15's input pair from a point of its family.
func e15InputOf(ps ParamSet) task.Pair {
	return task.Pair{ps.Int("i0"), ps.Int("i1")}
}

// alg2SweepAgg is the order-insensitive aggregate of the exhaustive
// Algorithm 2 sweep: the number of interleavings explored and
// validated. Counts from any grouping of a partition sum to the
// whole-space total.
type alg2SweepAgg struct {
	Execs int `json:"execs"`
}

// Merge implements Aggregate.
func (a *alg2SweepAgg) Merge(other Aggregate) error {
	b, ok := other.(*alg2SweepAgg)
	if !ok {
		return fmt.Errorf("experiments: cannot merge %T into %T", other, a)
	}
	a.Execs += b.Execs
	return nil
}

// finishE15 renders the E15 family's table at one (choice, input)
// point from a fully-merged aggregate — the one rendering path shared
// by the local runner, the sharded merge, and every parameterized
// point, which is what makes their bytes identical. At the default
// point (e15Choice, e15Input) the rendering is byte-for-byte the fixed
// E15 table's.
func finishE15(a *alg2SweepAgg, choice int, input task.Pair) (*Table, error) {
	plan, err := e15Plan(choice)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E15",
		Title:   "Thm 1.2 exhaustive — Algorithm 2 on every interleaving, choice task",
		Headers: []string{"quantity", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"task", plan.Task.Name},
		[]string{"input", fmt.Sprintf("(%d, %d)", input[0], input[1])},
		[]string{"path length L", itoa(plan.L)},
		[]string{"ε-agreement k = L/2", itoa(plan.L / 2)},
		[]string{"interleavings validated", itoa(a.Execs)},
	)
	t.Notes = append(t.Notes,
		"every crash-free interleaving's outputs legal for the task (CheckRun); a violation anywhere fails the sweep")
	return t, nil
}

// runE15At evaluates the E15 family whole at one (choice, input) point
// — the Family.Run behind GET /experiments/E15?c=... Serial inner
// exploration, like every engine-driven runner: the engine owns the
// concurrency budget one level up.
func runE15At(choice int, input task.Pair) (*Table, error) {
	plan, err := e15Plan(choice)
	if err != nil {
		return nil, err
	}
	execs, err := task.ExploreAlg2Prefixes(plan, input, 1, [][]int{{}})
	if err != nil {
		return nil, err
	}
	return finishE15(&alg2SweepAgg{Execs: execs}, choice, input)
}

// Theorem12Exhaustive (E15) runs the whole sweep through the same
// aggregate-and-finish path a prefix-sharded run merges through.
func Theorem12Exhaustive() (*Table, error) {
	return runE15At(e15Choice, e15Input)
}

// e15Shardable is E15's partial-run form at the fixed registry point.
func e15Shardable() Shardable {
	return e15ShardableAt(e15Choice, e15Input)
}

// e15ShardableAt is the partial-run form at one (choice, input) point.
// Explore fans out in-process (the slice is this worker's whole job,
// so the concurrency budget is spent here, unlike the engine-driven
// serial runner).
func e15ShardableAt(choice int, input task.Pair) Shardable {
	return Shardable{
		Roots: func() ([][]int, error) {
			plan, err := e15Plan(choice)
			if err != nil {
				return nil, err
			}
			return task.Alg2Roots(plan, input, e15ShardDepth)
		},
		Explore: func(roots [][]int) (Aggregate, error) {
			plan, err := e15Plan(choice)
			if err != nil {
				return nil, err
			}
			execs, err := task.ExploreAlg2Prefixes(plan, input, 0, roots)
			if err != nil {
				return nil, err
			}
			return &alg2SweepAgg{Execs: execs}, nil
		},
		Decode: func(data []byte) (Aggregate, error) {
			var a alg2SweepAgg
			if err := json.Unmarshal(data, &a); err != nil {
				return nil, fmt.Errorf("experiments: decoding E15 aggregate: %w", err)
			}
			// A negative count would corrupt the merged total silently;
			// reject it like any other unusable response.
			if a.Execs < 0 {
				return nil, fmt.Errorf("experiments: E15 aggregate with negative count")
			}
			return &a, nil
		},
		Finish: func(agg Aggregate) (*Table, error) {
			a, ok := agg.(*alg2SweepAgg)
			if !ok {
				return nil, fmt.Errorf("experiments: E15 finish on %T", agg)
			}
			return finishE15(a, choice, input)
		},
	}
}
