package experiments

import "math/rand"

// newRng returns a seeded RNG for reproducible experiment sampling.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
