package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("%d experiments registered, want 15", len(ids))
	}
	if ids[0] != "E1" || ids[14] != "E15" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Registry()[id]()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Fatalf("%s: row width %d vs %d headers", id, len(row), len(tab.Headers))
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Headers[0]) {
				t.Fatalf("%s: malformed output", id)
			}
		})
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "test",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Notes:   []string{"n"},
	}
	out := tab.Format()
	for _, want := range []string{"EX", "a", "bb", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}
