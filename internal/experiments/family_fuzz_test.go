package experiments

import (
	"net/url"
	"testing"
)

// FuzzParseParams fuzzes the parameterized request surface: arbitrary
// query strings must never panic, and every accepted point must have a
// stable identity — canonicalization is idempotent (re-parsing the
// point's own Query lands on the same canonical string) and invariant
// under parameter order (url.Values map iteration is randomized, so
// parsing the same values twice exercises different orders).
func FuzzParseParams(f *testing.F) {
	f.Add("k=3&i0=0")
	f.Add("i0=0&k=3")
	f.Add("k=4&i0=0&i1=1")
	f.Add("c=3&i0=2")
	f.Add("k=2.5")
	f.Add("k=999999999999999999999")
	f.Add("q=1&k=3")
	f.Add("k=3&k=4")
	f.Add("k=%32")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		for _, fam := range []Family{Families()["E2"], Families()["E15"]} {
			ps, err := ParseParams(fam, q)
			if err != nil {
				continue
			}
			// Idempotence: the point's own explicit spelling re-parses
			// to the same identity.
			rq, err := url.ParseQuery(ps.Query())
			if err != nil {
				t.Fatalf("%s: Query() %q is not a parseable query: %v", fam.ID, ps.Query(), err)
			}
			again, err := ParseParams(fam, rq)
			if err != nil {
				t.Fatalf("%s: accepted point %q rejected on re-parse: %v", fam.ID, ps.Query(), err)
			}
			if again.Canonical() != ps.Canonical() {
				t.Fatalf("%s: canonicalization not idempotent: %q vs %q", fam.ID, again.Canonical(), ps.Canonical())
			}
			// Order invariance: same values, fresh (randomized) map
			// iteration order, same canonical string.
			reordered, err := ParseParams(fam, q)
			if err != nil || reordered.Canonical() != ps.Canonical() {
				t.Fatalf("%s: same query parsed to %q then %q (err %v)", fam.ID, ps.Canonical(), reordered.Canonical(), err)
			}
		}
	})
}
