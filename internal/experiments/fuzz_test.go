package experiments

import (
	"bytes"
	"testing"
)

// FuzzDecodeJSON: arbitrary bytes fed to the results decoder must
// never panic — they either decode or surface an error. When they do
// decode, the re-encode must be a fixed point: EncodeJSON of the
// decoded slice decodes again to the same bytes, the round-trip
// property the cache and the HTTP layers rely on to serve stored
// results byte-identically.
func FuzzDecodeJSON(f *testing.F) {
	// Seed with real wire forms: a success, a failure, an empty slice,
	// and near-miss garbage.
	var seed bytes.Buffer
	if err := EncodeJSON(&seed, []Result{
		{ID: "E1", Table: &Table{ID: "E1", Title: "t", Headers: []string{"h"},
			Rows: [][]string{{"v"}}, Notes: []string{"n"}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[{"id":"E2","error":"boom"}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":1}]`))
	f.Add([]byte(`{"id":"E1"}`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"id":"E1","rows":[["a",1]]}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		results, err := DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected, never panicked: the contract
		}
		var first bytes.Buffer
		if err := EncodeJSON(&first, results); err != nil {
			t.Fatalf("decoded results do not re-encode: %v", err)
		}
		again, err := DecodeJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		var second bytes.Buffer
		if err := EncodeJSON(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode∘decode not a fixed point:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
