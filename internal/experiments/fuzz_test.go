package experiments

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/agreement"
)

// FuzzDecodeJSON: arbitrary bytes fed to the results decoder must
// never panic — they either decode or surface an error. When they do
// decode, the re-encode must be a fixed point: EncodeJSON of the
// decoded slice decodes again to the same bytes, the round-trip
// property the cache and the HTTP layers rely on to serve stored
// results byte-identically.
func FuzzDecodeJSON(f *testing.F) {
	// Seed with real wire forms: a success, a failure, an empty slice,
	// and near-miss garbage.
	var seed bytes.Buffer
	if err := EncodeJSON(&seed, []Result{
		{ID: "E1", Table: &Table{ID: "E1", Title: "t", Headers: []string{"h"},
			Rows: [][]string{{"v"}}, Notes: []string{"n"}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`[{"id":"E2","error":"boom"}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":1}]`))
	f.Add([]byte(`{"id":"E1"}`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"id":"E1","rows":[["a",1]]}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		results, err := DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected, never panicked: the contract
		}
		var first bytes.Buffer
		if err := EncodeJSON(&first, results); err != nil {
			t.Fatalf("decoded results do not re-encode: %v", err)
		}
		again, err := DecodeJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		var second bytes.Buffer
		if err := EncodeJSON(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode∘decode not a fixed point:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// fuzzAlg1Full memoizes the whole-tree execution count of the small
// Algorithm 1 space the prefixes fuzzer slices into.
var fuzzAlg1Full = struct {
	sync.Once
	execs int
	err   error
}{}

// FuzzPrefixesMemoExplore: arbitrary ?prefixes= strings must never
// panic anywhere down the stack — the parser rejects them, or the
// parsed roots survive a FormatPrefixes round-trip and drive a
// memoized exploration that either rejects dead/overlapping-free
// prefixes (ErrPrefixNotLive and friends) or accounts for a subset of
// the whole tree's executions, never more.
func FuzzPrefixesMemoExplore(f *testing.F) {
	f.Add("-")
	f.Add("0")
	f.Add("1,0.0,0.1")
	f.Add("0.1.0.1")
	f.Add("2")
	f.Add("0..1")
	f.Add("0.1,")
	f.Add("-,-")
	f.Fuzz(func(t *testing.T, s string) {
		roots, err := ParsePrefixes(s)
		if err != nil {
			return // rejected, never panicked: the contract
		}
		back, err := ParsePrefixes(FormatPrefixes(roots))
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q rejected: %v", FormatPrefixes(roots), s, err)
		}
		if !reflect.DeepEqual(back, roots) {
			t.Fatalf("prefixes round-trip changed %v to %v", roots, back)
		}
		if len(roots) > 8 {
			roots = roots[:8] // bound the work, not the parse
		}
		for _, root := range roots {
			if len(root) > 12 {
				return // deeper than the k=1 tree; nothing new to learn
			}
		}

		fuzzAlg1Full.Do(func() {
			_, stats, err := agreement.ExploreAlg1Memo(1, [2]uint64{0, 1}, nil, nil)
			fuzzAlg1Full.execs, fuzzAlg1Full.err = stats.Executions, err
		})
		if fuzzAlg1Full.err != nil {
			t.Fatalf("whole-tree baseline failed: %v", fuzzAlg1Full.err)
		}

		_, stats, err := agreement.ExploreAlg1MemoPrefixes(1, [2]uint64{0, 1}, roots, nil, nil)
		if err != nil {
			return // dead or unreplayable prefix: rejected, not panicked
		}
		if stats.Executions < 1 || stats.Executions > fuzzAlg1Full.execs {
			t.Fatalf("prefixes %q account for %d executions, whole tree has %d",
				FormatPrefixes(roots), stats.Executions, fuzzAlg1Full.execs)
		}
	})
}
