package experiments

import (
	"bytes"
	"context"
	"testing"
)

// encodeAll renders a result slice in the three wire formats.
func encodeAll(t *testing.T, results []Result) (text, js, csv string) {
	t.Helper()
	var bt, bj, bc bytes.Buffer
	if err := EncodeText(&bt, results); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&bj, results); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCSV(&bc, results); err != nil {
		t.Fatal(err)
	}
	return bt.String(), bj.String(), bc.String()
}

// TestReducedMatchesExhaustiveBytes is the engine-level differential
// gate: the reduced runs of every reduced-capable experiment must
// encode byte-identically to the exhaustive runs in all three formats,
// while visiting strictly fewer states than executions.
func TestReducedMatchesExhaustiveBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	ids := ReducedIDs()
	if len(ids) == 0 {
		t.Fatal("no reduced-capable experiments registered")
	}

	full, err := Run(context.Background(), Options{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(full); err != nil {
		t.Fatal(err)
	}
	reduced, err := Run(context.Background(), Options{IDs: ids, Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(reduced); err != nil {
		t.Fatal(err)
	}

	ft, fj, fc := encodeAll(t, full)
	rt, rj, rc := encodeAll(t, reduced)
	if rt != ft {
		t.Errorf("text output diverges:\n--- exhaustive ---\n%s--- reduced ---\n%s", ft, rt)
	}
	if rj != fj {
		t.Errorf("json output diverges")
	}
	if rc != fc {
		t.Errorf("csv output diverges")
	}

	for _, r := range reduced {
		if !r.Reduced {
			t.Errorf("%s: Reduced not set", r.ID)
			continue
		}
		if r.Memo.Executions == 0 {
			t.Errorf("%s: no executions accounted", r.ID)
		}
		if r.Memo.Replays >= r.Memo.Executions {
			t.Errorf("%s: %d replays for %d executions — memoization saved nothing",
				r.ID, r.Memo.Replays, r.Memo.Executions)
		}
		if r.Memo.StatesPruned == 0 {
			t.Errorf("%s: no subtree pruned", r.ID)
		}
		if r.Memo.StatesVisited == 0 {
			t.Errorf("%s: no state recorded", r.ID)
		}
	}
	for _, r := range full {
		if r.Reduced {
			t.Errorf("%s: exhaustive run claims Reduced", r.ID)
		}
	}
}

// memCache is a minimal in-memory Cache for the bypass test.
type memCache map[string]Result

func (c memCache) Get(id string) (Result, bool) { r, ok := c[id]; return r, ok }
func (c memCache) Put(id string, r Result) error {
	c[id] = r
	return nil
}

// TestReducedBypassesCache pins the Reduce/Cache interaction: a
// reduced-capable experiment runs fresh (its counters are the point),
// while non-capable experiments still hit the cache.
func TestReducedBypassesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	cache := memCache{}
	seed, err := Run(context.Background(), Options{IDs: []string{"E2", "E1"}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(seed); err != nil {
		t.Fatal(err)
	}

	again, err := Run(context.Background(), Options{IDs: []string{"E2", "E1"}, Cache: cache, Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		switch r.ID {
		case "E2":
			if r.Cached || !r.Reduced {
				t.Errorf("E2 under Reduce: Cached=%v Reduced=%v, want fresh reduced run", r.Cached, r.Reduced)
			}
		case "E1":
			if !r.Cached || r.Reduced {
				t.Errorf("E1 under Reduce: Cached=%v Reduced=%v, want plain cache hit", r.Cached, r.Reduced)
			}
		}
	}
}
