package experiments

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/impossibility"
	"repro/internal/labelling"
	"repro/internal/msgpass"
	"repro/internal/sched"
	"repro/internal/task"
)

// Figure1Summary (E1) regenerates Figure 1: the universality
// classification over (n, t).
func Figure1Summary() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 — universality of bounded registers over (n, t)",
		Headers: []string{"n", "t", "regime", "universal", "sufficient bits", "theorem"},
	}
	for n := 2; n <= 9; n++ {
		for tt := 1; tt < n; tt++ {
			v, err := core.Classify(core.Model{N: n, T: tt})
			if err != nil {
				return nil, err
			}
			uni := "no"
			if v.Open {
				uni = "open"
			} else if v.Universal {
				uni = "yes"
			}
			bits := "-"
			if v.SufficientBits > 0 {
				bits = itoa(v.SufficientBits)
			}
			t.Rows = append(t.Rows, []string{
				itoa(n), itoa(tt), v.Regime.String(), uni, bits, v.Theorem,
			})
		}
	}
	t.Notes = append(t.Notes,
		"not universal for t>n/2 even with width f(n) (Thm 1.1); O(t) bits for t<n/2 (Thm 1.3); 1 bit for n=2 (Thm 1.2)")
	return t, nil
}

// Figure2Executions (E2) enumerates Algorithm 1 with k = 4 and inputs
// (0,1): the execution count, the decision range coverage, and the
// worst co-final distance — Figure 2's structure. The table derives
// from the same aggregate-and-finish path (shardable.go) a
// prefix-sharded run merges through, so both emit identical bytes.
func Figure2Executions() (*Table, error) {
	// Serial exploration: the engine already runs experiments
	// concurrently, so the concurrency budget is spent one level up —
	// this keeps -jobs 1 a true serial baseline and -jobs N free of
	// nested worker pools. Standalone callers wanting the fan-out use
	// agreement.ExploreAlg1Parallel directly; sharded slices go
	// through Shardables()["E2"].Explore.
	return runE2At(e2K, e2Inputs)
}

// Theorem12Universal (E3) runs Algorithm 2 (3-bit registers) on solvable
// tasks and shows the BMZ check rejecting consensus.
func Theorem12Universal() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 1.2 — universal construction with 3-bit registers",
		Headers: []string{"task", "solvable (BMZ)", "path length L", "runs checked", "verdict"},
	}
	for _, tk := range []*task.Task{
		task.DiscreteEpsAgreement(4),
		task.CycleAgreement(6),
		task.ChoiceTask(2),
		task.BinaryConsensus(),
	} {
		sub, ok := tk.FindSolvableSubset()
		if !ok {
			t.Rows = append(t.Rows, []string{tk.Name, "no", "-", "-", "correctly rejected"})
			continue
		}
		plan, err := tk.BuildPlan(sub)
		if err != nil {
			return nil, err
		}
		runs := 0
		for _, input := range tk.Inputs {
			for seed := int64(0); seed < 10; seed++ {
				sys, _, err := task.RunAlg2(plan, input, sched.NewRandom(seed))
				if err != nil {
					return nil, err
				}
				if err := task.CheckRun(tk, input, sys); err != nil {
					return nil, fmt.Errorf("%s: %w", tk.Name, err)
				}
				runs++
			}
		}
		t.Rows = append(t.Rows, []string{tk.Name, "yes", itoa(plan.L), itoa(runs), "all outputs legal"})
	}
	t.Notes = append(t.Notes, "3 register bits per process: 1-bit coordination + 2-bit {⊥,0,1} ε-input (§5.2.3)")
	return t, nil
}

// Theorem11Pigeonhole (E4) produces the Prop 4.1 counting table and the
// empirical register-content collisions of Algorithm 1.
func Theorem11Pigeonhole() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 1.1 / Prop 4.1 — pigeonhole on register contents",
		Headers: []string{"series", "s(bits)", "memory states", "k threshold", "empirical worst gap"},
	}
	rows, err := impossibility.CountingTable(3, 2, 6)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			"counting(n=3,t=2)", itoa(r.Bits),
			fmt.Sprintf("%d", r.States), fmt.Sprintf("%d", r.KThreshold), "-",
		})
	}
	for _, k := range []int{2, 3, 4} {
		c, err := impossibility.WorstCollision(k, 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("alg1 k=%d (ε=1/%d)", k, 2*k+1), "1", "4", "-",
			fmt.Sprintf("%d units of ε (mem %v)", c.Gap(), c.Mem),
		})
	}
	g, err := impossibility.BuildAlg1Graph(3, 1)
	if err != nil {
		return nil, err
	}
	path := g.Path()
	t.Rows = append(t.Rows, []string{"execution graph k=3", "1", "-", "-",
		fmt.Sprintf("solo-to-solo path of %d edges (≥ 1/ε = %d)", len(path)-1, g.Den)})
	t.Notes = append(t.Notes,
		"gap ≥ 2 forces a late third process ≥ 2ε from some decided output: ε-agreement unsolvable",
		"counting rows: with s-bit registers, ε < 1/(2·2^{s(n-t+1)}+1) is unattainable for t>n/2")
	return t, nil
}

// Theorem13Pipeline (E5) runs all four stages of the §6 compilation.
func Theorem13Pipeline() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 1.3 — pipeline A → A′ → A″ → B (binary ε-agreement, ε=1/4)",
		Headers: []string{"stage", "n", "t", "register bits", "msgs", "link bits", "total steps", "verdict"},
	}
	run := func(stage msgpass.PipelineStage, n, tt int) error {
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = int64(i % 2)
		}
		pr, err := msgpass.RunPipeline(msgpass.PipelineConfig{
			Stage: stage, N: n, T: tt, Rounds: 2,
			Inputs: inputs, Scheduler: sched.NewRandom(11), Seed: 3,
		})
		if err != nil {
			return err
		}
		if err := pr.Check(inputs, 2); err != nil {
			return fmt.Errorf("stage %v: %w", stage, err)
		}
		bits := "unbounded"
		if pr.RegisterBits > 0 {
			bits = itoa(pr.RegisterBits)
		}
		t.Rows = append(t.Rows, []string{
			stage.String(), itoa(n), itoa(tt), bits,
			itoa(pr.MsgsSent), itoa(pr.BitsDelivered), itoa(pr.Res.TotalSteps), "ε-agreement holds",
		})
		return nil
	}
	if err := run(msgpass.StageDirect, 5, 2); err != nil {
		return nil, err
	}
	if err := run(msgpass.StageABDComplete, 5, 2); err != nil {
		return nil, err
	}
	if err := run(msgpass.StageABDRing, 5, 2); err != nil {
		return nil, err
	}
	if err := run(msgpass.StageBitRing, 3, 1); err != nil {
		return nil, err
	}
	if err := run(msgpass.StageBitRing, 4, 1); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"width series", "-", "t", "3(t+1)", "-", "-", "-", "O(t) bits (Thm 1.3)"})
	t.Notes = append(t.Notes, "same algorithm on all stores; stage B coordinates only through 3(t+1)-bit registers")
	return t, nil
}

// Theorem14IIS1Bit (E6) runs Algorithm 4 — the IC full-information
// protocol simulated in IIS with 1-bit registers.
func Theorem14IIS1Bit() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 1.4 — IC protocols in IIS with 1-bit registers (Algorithm 4)",
		Headers: []string{"n", "rounds k", "iterations N", "schedules", "worst spread", "claim"},
	}
	type cfg struct {
		n, k, trials int
	}
	for _, c := range []cfg{{2, 1, 81}, {2, 2, 200}, {3, 1, 150}} {
		u := iis.NewUniverse(c.n, c.k, iis.BinaryInputVectors(c.n), iis.CollectOutcomes(c.n))
		n := iis.Alg4Iterations(u)
		worstNum, worstDen := 0, 1
		trials := 0
		check := func(s iis.Schedule, inputs []int) error {
			res, err := iis.RunAlg4(u, inputs, s)
			if err != nil {
				return err
			}
			num, den := u.EstimateSpread(res.Final)
			if num*worstDen > worstNum*den {
				worstNum, worstDen = num, den
			}
			trials++
			return nil
		}
		if c.n == 2 && c.k == 1 {
			var err error
			iis.ForEachSchedule(c.n, n, func(s iis.Schedule) bool {
				err = check(s, []int{0, 1})
				return err == nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			rng := newRng(7)
			for i := 0; i < c.trials; i++ {
				inputs := make([]int, c.n)
				for j := range inputs {
					inputs[j] = rng.Intn(2)
				}
				if err := check(iis.RandomSchedule(c.n, n, rng), inputs); err != nil {
					return nil, err
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.n), itoa(c.k), itoa(n), itoa(trials), rat(worstNum, worstDen),
			fmt.Sprintf("≤ 1/2^%d; all configs IC-reachable (Lemma 7.1)", c.k),
		})
	}
	return t, nil
}

// Figure4ISComplex (E7) regenerates Figure 4: the 2-process IS protocol
// complex triples each round.
func Figure4ISComplex() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Figure 4 — 2-process IS complex growth (single mixed input)",
		Headers: []string{"round r", "executions 3^r", "configurations", "path vertices 3^r+1"},
	}
	u := iis.NewUniverse(2, 6, [][]int{{0, 1}}, iis.ISOutcomes(2))
	for r := 0; r <= 6; r++ {
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(pow(3, r)), itoa(len(u.Configs[r])), itoa(pow(3, r) + 1),
		})
	}
	t.Notes = append(t.Notes, "configurations == executions: each IS schedule yields a distinct configuration")
	return t, nil
}

// Figure5Labels (E8) regenerates Figure 5 / Lemma 8.1: the 1-bit
// labelling protocol has 3^r+1 labels after r rounds.
func Figure5Labels() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Figure 5 / Lemma 8.1 — labels of the 1-bit labelling protocol",
		Headers: []string{"round r", "labels", "3^r+1", "bits/round", "adjacent f-distance"},
	}
	for r := 1; r <= 6; r++ {
		labels, err := labelling.AllLabels(r)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(len(labels)), itoa(labelling.Pow3(r) + 1), "1", rat(1, labelling.Pow3(r)),
		})
	}
	t.Notes = append(t.Notes, "f(λ_s0)=0, f(λ_s1)=1, co-final labels 1/3^r apart (§8.1)")
	return t, nil
}

// Figure6SimulatedIS (E9) regenerates Figure 6 / Lemma 8.7: Algorithm 6
// with Δ = 2 simulates at least 2^R distinct IS executions of length R.
func Figure6SimulatedIS() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Figure 6 / Lemma 8.7 — IS executions simulated by Algorithm 6 (Δ=2)",
		Headers: []string{"R", "path vertices", "distinct executions", "2^R", "3^R+1 (full)", "register bits"},
	}
	for r := 3; r <= 9; r++ {
		cfg := labelling.Alg6Config{Delta: 2, R: r}
		vm, err := labelling.BuildValueMap(cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(vm.Len), itoa(vm.PairCount), itoa(1 << r),
			itoa(labelling.Pow3(r) + 1), itoa(cfg.RegisterBits()),
		})
	}
	t.Notes = append(t.Notes, "Ω(2^R) simulated executions with constant-size registers (Prop 8.1)")
	return t, nil
}

// Theorem81Crossover (E10) measures the step-complexity separation
// between Algorithm 1 (Θ(1/ε)) and the fast protocol (O(log 1/ε)).
func Theorem81Crossover() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Theorem 8.1 — step complexity: Algorithm 1 vs fast 6-bit protocol",
		Headers: []string{"R", "ε denominator", "fast steps (6-bit)", "alg1 steps (1-bit)", "ratio"},
	}
	for _, r := range []int{4, 6, 8, 10} {
		fa, err := labelling.NewFastAgreement(r)
		if err != nil {
			return nil, err
		}
		fr, err := fa.Run([2]uint64{0, 1}, &sched.RoundRobin{})
		if err != nil {
			return nil, err
		}
		if e := fr.Result.Err(); e != nil {
			return nil, e
		}
		fastSteps := fr.Result.Steps[0]
		k := (fa.EpsDen() - 1) / 2
		ar, err := agreement.RunAlg1(k, [2]uint64{0, 1}, &sched.RoundRobin{})
		if err != nil {
			return nil, err
		}
		alg1Steps := ar.Result.Steps[0]
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(fa.EpsDen()), itoa(fastSteps), itoa(alg1Steps),
			fmt.Sprintf("%.1fx", float64(alg1Steps)/float64(fastSteps)),
		})
	}
	t.Notes = append(t.Notes, "exponential separation: the ratio doubles as ε halves (§8 remark)")
	return t, nil
}

// Figure3Ring (E11) regenerates Figure 3: the t-augmented ring and its
// connectivity.
func Figure3Ring() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Figure 3 — t-augmented ring connectivity",
		Headers: []string{"n", "t", "out-degree", "(t+1)-connected", "(t+2)-connected"},
	}
	for _, c := range [][2]int{{5, 1}, {6, 1}, {5, 2}, {7, 2}, {7, 3}, {9, 4}} {
		ring, err := msgpass.NewTAugmentedRing(c[0], c[1])
		if err != nil {
			return nil, err
		}
		k1 := msgpass.IsKConnected(ring, c[1]+1)
		k2 := msgpass.IsKConnected(ring, c[1]+2)
		t.Rows = append(t.Rows, []string{
			itoa(c[0]), itoa(c[1]), itoa(len(ring.Succ(0))),
			fmt.Sprintf("%v", k1), fmt.Sprintf("%v", k2),
		})
	}
	t.Notes = append(t.Notes, "exactly (t+1)-connected when n > 2(t+1): removing a node's t+1 successors cuts it off")
	return t, nil
}

// Lemma22Convergence (E12) measures the midpoint protocol's range
// contraction per round in the IS and IC one-round complexes.
func Lemma22Convergence() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Lemma 2.2 — midpoint ε-agreement contraction per iterated round",
		Headers: []string{"model", "n", "round", "max spread", "bound 1/2^r"},
	}
	add := func(name string, n, k int, outcomes []iis.CollectOutcome) {
		u := iis.NewUniverse(n, k, iis.BinaryInputVectors(n), outcomes)
		for r := 0; r <= k; r++ {
			num, den := u.MaxRoundSpread(r)
			t.Rows = append(t.Rows, []string{
				name, itoa(n), itoa(r), rat(num, den), rat(1, pow(2, r)),
			})
		}
	}
	add("IIS", 2, 5, iis.ISOutcomes(2))
	add("IIS", 3, 2, iis.ISOutcomes(3))
	add("IC", 3, 2, iis.CollectOutcomes(3))
	t.Notes = append(t.Notes,
		"spread halves per round in both models (every process sees the first writer), so any ε>0 is reachable wait-free")
	return t, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
