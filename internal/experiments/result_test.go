package experiments

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

// roundTripResults are the wire-form edge cases: a full table, a table
// with empty Rows and Notes, a table with nil slices, an empty-string
// cell, and a failed result.
func roundTripResults() []Result {
	return []Result{
		{ID: "E1", Table: &Table{
			ID:      "E1",
			Title:   "full table",
			Headers: []string{"a", "b"},
			Rows:    [][]string{{"1", "2"}, {"", "4"}},
			Notes:   []string{"first note", "second note"},
		}},
		{ID: "E2", Table: &Table{
			ID:      "E2",
			Title:   "empty rows and notes",
			Headers: []string{"only", "headers"},
			Rows:    [][]string{},
			Notes:   []string{},
		}},
		{ID: "E3", Table: &Table{ID: "E3", Title: "nil slices"}},
		{ID: "E4", Err: errors.New("runner exploded: giving up")},
	}
}

// TestEncodeDecodeJSONLossless: DecodeJSON inverts EncodeJSON up to
// the fields the wire form deliberately drops, so re-encoding the
// decoded slice reproduces the original bytes exactly — for every
// format, since text and CSV are functions of the same fields.
func TestEncodeDecodeJSONLossless(t *testing.T) {
	original := roundTripResults()
	var wire bytes.Buffer
	if err := EncodeJSON(&wire, original); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(original) {
		t.Fatalf("decoded %d results, want %d", len(decoded), len(original))
	}
	if decoded[3].Err == nil || decoded[3].Err.Error() != "runner exploded: giving up" {
		t.Fatalf("failed result's error lost: %v", decoded[3].Err)
	}
	for name, encode := range Encoders {
		var a, b bytes.Buffer
		if err := encode(&a, original); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := encode(&b, decoded); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: decoded slice encodes differently:\n--- original\n%s--- decoded\n%s",
				name, a.String(), b.String())
		}
	}
}

// TestDecodeJSONSetsTableID: the wire form stores the id once; the
// decoded table must get it back so text output keeps its header line.
func TestDecodeJSONSetsTableID(t *testing.T) {
	var wire bytes.Buffer
	if err := EncodeJSON(&wire, roundTripResults()[:1]); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Table.ID != "E1" {
		t.Fatalf("table id = %q, want E1", decoded[0].Table.ID)
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "not json", `{"object":"not an array"}`} {
		if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeJSON(%q) succeeded", bad)
		}
	}
}

// TestEncodeCSVEscaping: cell values containing commas, double
// quotes, and newlines must survive a CSV write/read cycle intact.
func TestEncodeCSVEscaping(t *testing.T) {
	tricky := []string{
		`comma, in value`,
		`say "quoted"`,
		"line\nbreak",
		`both, "at" once`,
	}
	results := []Result{{ID: "E1", Table: &Table{
		ID:      "E1",
		Title:   "escaping",
		Headers: []string{`header, with comma`},
		Rows:    [][]string{{tricky[0]}, {tricky[1]}, {tricky[2]}, {tricky[3]}},
		Notes:   []string{`note with , and "`},
	}}}
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("encoder emitted unparsable CSV: %v", err)
	}
	// Header record + 4 cells + 1 note.
	if len(records) != 6 {
		t.Fatalf("got %d records, want 6", len(records))
	}
	for i, want := range tricky {
		rec := records[i+1]
		if rec[3] != `header, with comma` || rec[4] != want {
			t.Errorf("record %d = %q, want value %q", i+1, rec, want)
		}
	}
	if note := records[5]; note[3] != "_note" || note[4] != `note with , and "` {
		t.Errorf("note record = %q", note)
	}
}
