package experiments

import (
	"context"
	"net/url"
	"reflect"
	"strings"
	"testing"
)

// withBumps replaces the link-time bump table for one test. The Once
// is forced first so familyVersion never re-parses over the override.
func withBumps(t *testing.T, m map[string]string) {
	t.Helper()
	bumpOnce.Do(func() { bumps = parseBumps(spaceVersionBump) })
	old := bumps
	bumps = m
	t.Cleanup(func() { bumps = old })
}

func TestParseBumps(t *testing.T) {
	got := parseBumps("E2=v2, E15=v3")
	want := map[string]string{"E2": "v2", "E15": "v3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBumps = %v, want %v", got, want)
	}
	// Malformed entries degrade to "no bump", never to a crash: a bad
	// ldflags value must not take down every binary built with it.
	for _, s := range []string{"", ",", "=v2", "E2=", "garbage", "E2"} {
		if m := parseBumps(s); len(m) != 0 {
			t.Errorf("parseBumps(%q) = %v, want empty", s, m)
		}
	}
}

// TestSpaceVersionByteCompat pins the tentpole's warm-store contract:
// an experiment without a declared code version keys exactly as the
// registry-wide scheme did, so every pre-existing fingerprint in every
// store stays valid.
func TestSpaceVersionByteCompat(t *testing.T) {
	withBumps(t, map[string]string{})
	for _, id := range IDs() {
		if got := SpaceVersion(id); got != RegistryVersion {
			t.Errorf("SpaceVersion(%q) = %q, want the pinned registry version %q", id, got, RegistryVersion)
		}
	}
}

// TestSpaceVersionBumpIsSurgical: bumping one family moves only that
// family's space — the cold-start blast radius the issue closes.
func TestSpaceVersionBumpIsSurgical(t *testing.T) {
	withBumps(t, map[string]string{"E2": "v2"})
	if got, want := SpaceVersion("E2"), RegistryVersion+"+E2/v2"; got != want {
		t.Fatalf("bumped SpaceVersion(E2) = %q, want %q", got, want)
	}
	for _, id := range []string{"E1", "E7", "E15"} {
		if got := SpaceVersion(id); got != RegistryVersion {
			t.Errorf("SpaceVersion(%q) moved to %q under an E2-only bump", id, got)
		}
	}
}

// TestSpaceVersionBumpBeatsFamilyVersion: the link-time bump must win
// over a registered Family.Version, or the cache-surgery gate could
// not simulate a deploy.
func TestSpaceVersionBumpBeatsFamilyVersion(t *testing.T) {
	withBumps(t, map[string]string{"E15": "surgery"})
	if got, want := SpaceVersion("E15"), RegistryVersion+"+E15/surgery"; got != want {
		t.Fatalf("SpaceVersion(E15) = %q, want %q", got, want)
	}
}

func TestFamiliesForOptIn(t *testing.T) {
	if got := FamiliesFor(nil); len(got) != 2 {
		t.Fatalf("real registry families = %d, want E2 and E15", len(got))
	}
	synthetic := map[string]Runner{"E2": Registry()["E2"]}
	if got := FamiliesFor(synthetic); len(got) != 0 {
		t.Fatalf("test registry inherited %d families; overrides must opt in", len(got))
	}
}

func TestParseParamsValidation(t *testing.T) {
	e2 := Families()["E2"]
	e15 := Families()["E15"]
	cases := []struct {
		name    string
		fam     Family
		query   string
		wantErr string
	}{
		{"unknown param", e2, "q=1", `unknown parameter "q"`},
		{"repeated param", e2, "k=2&k=3", `parameter "k" given 2 times`},
		{"not an integer", e2, "k=2.5", `parameter "k"`},
		{"below min", e2, "k=0", `parameter "k"`},
		{"above max", e2, "k=7", `parameter "k"`},
		{"bad int input", e2, "i0=x", `parameter "i0"`},
		{"cross check", e15, "c=2&i1=2", `parameter "i1"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ParseParams(tc.fam, q); err == nil {
				t.Fatalf("ParseParams(%q) succeeded, want error mentioning %q", tc.query, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseParams(%q) error %q does not name the field (%q)", tc.query, err, tc.wantErr)
			}
		})
	}
}

// TestParamSetOrderInvariance: ?k=7&i0=0 and ?i0=0&k=7 are one point —
// one canonical string, hence one cache entry and one singleflight key.
func TestParamSetOrderInvariance(t *testing.T) {
	fam := Families()["E2"]
	a, err := ParseParams(fam, url.Values{"k": {"3"}, "i0": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseParams(fam, url.Values{"i0": {"1"}, "k": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() || a.Canonical() == "" {
		t.Fatalf("order changed identity: %q vs %q", a.Canonical(), b.Canonical())
	}
	if want := "i0=1,i1=1,k=3"; a.Canonical() != want {
		t.Fatalf("canonical = %q, want sorted defaults-filled %q", a.Canonical(), want)
	}
}

// TestDefaultPointAliasesFixed: spelling out a family's defaults must
// canonicalize to "", the identity of the fixed registry experiment —
// so both spellings share a cache entry.
func TestDefaultPointAliasesFixed(t *testing.T) {
	for id, fam := range Families() {
		q := url.Values{}
		for _, spec := range fam.Params {
			q.Set(spec.Name, spec.Default)
		}
		ps, err := ParseParams(fam, q)
		if err != nil {
			t.Fatalf("%s defaults: %v", id, err)
		}
		if ps.Canonical() != "" {
			t.Errorf("%s spelled-out defaults canonicalize to %q, want \"\"", id, ps.Canonical())
		}
		dp, err := DefaultParams(fam)
		if err != nil {
			t.Fatalf("%s DefaultParams: %v", id, err)
		}
		if dp.Canonical() != "" || dp.Query() == "" {
			t.Errorf("%s DefaultParams: canonical %q query %q", id, dp.Canonical(), dp.Query())
		}
	}
}

func TestParamSetQueryRoundTrip(t *testing.T) {
	fam := Families()["E15"]
	ps, err := ParseParamList(fam, "c=3,i0=2")
	if err != nil {
		t.Fatal(err)
	}
	q, err := url.ParseQuery(ps.Query())
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseParams(fam, q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Canonical() != ps.Canonical() {
		t.Fatalf("Query round trip moved the point: %q vs %q", again.Canonical(), ps.Canonical())
	}
	if got, want := ps.Canonical(), "c=3,i0=2,i1=1"; got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
}

func TestParseParamListErrors(t *testing.T) {
	fam := Families()["E2"]
	for _, s := range []string{"k", "=3", "k=9", "zz=1", "k=1,k=2"} {
		if _, err := ParseParamList(fam, s); err == nil {
			t.Errorf("ParseParamList(%q) succeeded, want error", s)
		}
	}
}

// TestE2FamilyDifferentialDefaultPoint is the differential pin: the
// parameterized family evaluated at its default point must reproduce
// the fixed registry table byte-for-byte (same rendering path, same
// bytes — the alias is real, not approximate).
func TestE2FamilyDifferentialDefaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive k=4 sweep in -short mode")
	}
	fam := Families()["E2"]
	ps, err := DefaultParams(fam)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fam.Run(ps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Figure2Executions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("family default point differs from fixed E2:\n%s\nvs\n%s", got.Format(), want.Format())
	}
}

func TestE15FamilyDifferentialDefaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive Algorithm 2 sweep in -short mode")
	}
	fam := Families()["E15"]
	ps, err := DefaultParams(fam)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fam.Run(ps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Theorem12Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("family default point differs from fixed E15:\n%s\nvs\n%s", got.Format(), want.Format())
	}
}

// TestRunParamNonDefaultPoint exercises the off-default surface the
// fixed registry never reached: a cheap k=1 sweep through RunParam
// with a caching store, warm on the second call.
func TestRunParamNonDefaultPoint(t *testing.T) {
	fam := Families()["E2"]
	ps, err := ParseParamList(fam, "k=1")
	if err != nil {
		t.Fatal(err)
	}
	c := newMapParamCache()
	res := RunParam(context.Background(), fam, ps, Options{Cache: c})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Cached {
		t.Fatal("first evaluation reported cached")
	}
	again := RunParam(context.Background(), fam, ps, Options{Cache: c})
	if again.Err != nil || !again.Cached {
		t.Fatalf("second evaluation: cached=%v err=%v", again.Cached, again.Err)
	}
	if !reflect.DeepEqual(res.Table, again.Table) {
		t.Fatal("cached table differs from computed table")
	}
}

// mapParamCache is an in-memory ParamCache for engine tests.
type mapParamCache struct {
	whole map[string]Result
	param map[string]Result
}

func newMapParamCache() *mapParamCache {
	return &mapParamCache{whole: map[string]Result{}, param: map[string]Result{}}
}

func (c *mapParamCache) Get(id string) (Result, bool)  { r, ok := c.whole[id]; return r, ok }
func (c *mapParamCache) Put(id string, r Result) error { c.whole[id] = r; return nil }
func (c *mapParamCache) GetParam(id, params string) (Result, bool) {
	if params == "" {
		return c.Get(id)
	}
	r, ok := c.param[id+"?"+params]
	return r, ok
}
func (c *mapParamCache) PutParam(id, params string, r Result) error {
	if params == "" {
		c.Put(id, r)
		return nil
	}
	c.param[id+"?"+params] = r
	return nil
}

// TestRunParamDefaultPointSharesFixedEntry: at the default point
// RunParam reads and writes the fixed experiment's cache slot, so a
// parameterized request warms (and is warmed by) plain runs.
func TestRunParamDefaultPointSharesFixedEntry(t *testing.T) {
	fam := Families()["E2"]
	ps, err := DefaultParams(fam)
	if err != nil {
		t.Fatal(err)
	}
	c := newMapParamCache()
	seeded := Result{ID: "E2", Table: &Table{ID: "E2", Title: "seeded"}}
	c.Put("E2", seeded)
	res := RunParam(context.Background(), fam, ps, Options{Cache: c})
	if res.Err != nil || !res.Cached || res.Table.Title != "seeded" {
		t.Fatalf("default point missed the fixed entry: cached=%v table=%+v err=%v", res.Cached, res.Table, res.Err)
	}
}
