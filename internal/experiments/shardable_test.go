package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestE2ShardedMergeByteIdentical is the seam's core guarantee at the
// experiments layer: exploring E2's partition in slices and merging
// the aggregates renders exactly the table the whole-space runner
// produces — same struct, same encoded bytes.
func TestE2ShardedMergeByteIdentical(t *testing.T) {
	sh := Shardables()["E2"]
	whole, err := Figure2Executions()
	if err != nil {
		t.Fatal(err)
	}

	roots, err := sh.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 4 {
		t.Fatalf("E2 partition has %d roots, want enough to shard", len(roots))
	}
	// Carve the partition into three uneven ranges — the shape a
	// coordinator hands to an unevenly-loaded fleet.
	cuts := []int{len(roots) / 3, len(roots) / 2}
	ranges := [][][]int{roots[:cuts[0]], roots[cuts[0]:cuts[1]], roots[cuts[1]:]}
	var merged Aggregate
	for _, rng := range ranges {
		agg, err := sh.Explore(rng)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = agg
			continue
		}
		if err := merged.Merge(agg); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := sh.Finish(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, whole) {
		t.Fatalf("sharded merge differs from whole run:\n%s\nvs\n%s", tab.Format(), whole.Format())
	}

	// And through the wire form: encode each slice, decode, merge.
	var wireMerged Aggregate
	for _, rng := range ranges {
		agg, err := sh.Explore(rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeShard(&buf, "E2", "", rng, agg); err != nil {
			t.Fatal(err)
		}
		env, err := DecodeShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if env.ID != "E2" || env.SpaceVersion != RegistryVersion {
			t.Fatalf("envelope = %+v", env)
		}
		decoded, err := sh.Decode(env.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		if wireMerged == nil {
			wireMerged = decoded
			continue
		}
		if err := wireMerged.Merge(decoded); err != nil {
			t.Fatal(err)
		}
	}
	wireTab, err := sh.Finish(wireMerged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wireTab, whole) {
		t.Fatalf("wire-form merge differs from whole run:\n%s\nvs\n%s", wireTab.Format(), whole.Format())
	}
}

// TestPrefixCodecRoundTrip pins the ?prefixes= wire syntax.
func TestPrefixCodecRoundTrip(t *testing.T) {
	for _, roots := range [][][]int{
		{{}},
		{{0}, {1}},
		{{0, 1, 0}, {0, 2}, {1}},
		{{12, 3}, {0, 0, 0, 7}},
	} {
		s := FormatPrefixes(roots)
		got, err := ParsePrefixes(s)
		if err != nil {
			t.Fatalf("ParsePrefixes(%q): %v", s, err)
		}
		if len(got) != len(roots) {
			t.Fatalf("round trip of %v via %q = %v", roots, s, got)
		}
		for i := range roots {
			if len(got[i]) != len(roots[i]) {
				t.Fatalf("round trip of %v via %q = %v", roots, s, got)
			}
			for j := range roots[i] {
				if got[i][j] != roots[i][j] {
					t.Fatalf("round trip of %v via %q = %v", roots, s, got)
				}
			}
		}
	}
	if FormatPrefixes([][]int{{}}) != "-" {
		t.Fatalf("empty root spells %q, want -", FormatPrefixes([][]int{{}}))
	}
	// Overlapping roots double-count subtrees: duplicates, one root a
	// prefix of another, and the everything-prefix empty root.
	for _, bad := range []string{"", ",", "0..1", "a", "0.-1", "-1", "0,", "1.x",
		"-,-", "0,0", "0,0.1", "1.2,1.2.3", "-,0"} {
		if _, err := ParsePrefixes(bad); err == nil {
			t.Errorf("ParsePrefixes(%q) accepted", bad)
		}
	}
}

// TestDecodeShardRejectsGarbage: a shard envelope must carry an id and
// an aggregate, and non-JSON is an error, never a panic.
func TestDecodeShardRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{", `{"id":"E2"}`, `{"aggregate":{"execs":1}}`, "null"} {
		if _, err := DecodeShard(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("DecodeShard(%q) accepted", bad)
		}
	}
}

// TestE2DecodeRejectsCorruptAggregates: a 200 response whose payload
// violates the merge invariants (unsorted or duplicated seen set,
// negative counters) must be rejected, not folded into the table.
func TestE2DecodeRejectsCorruptAggregates(t *testing.T) {
	sh := Shardables()["E2"]
	if _, err := sh.Decode([]byte(`{"execs":2,"seen":[0,9],"worst_num":1,"max_steps":11}`)); err != nil {
		t.Fatalf("valid aggregate rejected: %v", err)
	}
	for _, bad := range []string{
		`{"seen":[9,0]}`,
		`{"seen":[3,3]}`,
		`{"execs":-1,"seen":[]}`,
		`{"max_steps":-2,"seen":[]}`,
		`not json`,
	} {
		if _, err := sh.Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%s) accepted", bad)
		}
	}
}

// TestShardablesForRestricts: only the real registry gets the default
// shardables — an override's "E2" is not the real E2, so it must opt
// in explicitly rather than inherit a seam that runs the real code.
func TestShardablesForRestricts(t *testing.T) {
	if _, ok := ShardablesFor(nil)["E2"]; !ok {
		t.Fatal("default shardables lack E2")
	}
	for _, reg := range []map[string]Runner{{"E1": nil}, {"E2": nil}} {
		if got := ShardablesFor(reg); len(got) != 0 {
			t.Fatalf("registry override inherited shardables: %v", got)
		}
	}
}

// TestAlg1SweepAggMergeGrouping: merging is associative and
// commutative over a partition — any grouping folds identically.
func TestAlg1SweepAggMergeGrouping(t *testing.T) {
	a := &alg1SweepAgg{Execs: 2, Seen: []int{0, 3}, WorstNum: 1, MaxSteps: 5}
	b := &alg1SweepAgg{Execs: 3, Seen: []int{1, 3, 9}, WorstNum: 0, MaxSteps: 7}
	c := &alg1SweepAgg{Execs: 1, Seen: []int{0, 9}, WorstNum: 2, MaxSteps: 2}

	clone := func(x *alg1SweepAgg) *alg1SweepAgg {
		cp := *x
		cp.Seen = append([]int(nil), x.Seen...)
		return &cp
	}
	fold := func(xs ...*alg1SweepAgg) *alg1SweepAgg {
		out := clone(xs[0])
		for _, x := range xs[1:] {
			if err := out.Merge(clone(x)); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	want := fold(a, b, c)
	for _, got := range []*alg1SweepAgg{fold(c, b, a), fold(b, a, c), fold(fold(a, b), c), fold(a, fold(b, c))} {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge grouping differs: %+v vs %+v", got, want)
		}
	}
	if want.Execs != 6 || !reflect.DeepEqual(want.Seen, []int{0, 1, 3, 9}) || want.WorstNum != 2 || want.MaxSteps != 7 {
		t.Fatalf("merged = %+v", want)
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merging a nil aggregate accepted")
	}
}

// TestE15ShardedMergeByteIdentical: the second real shardable
// workload (the exhaustive Algorithm 2 validation sweep) renders the
// same table whether explored whole or merged from wire-form slices.
func TestE15ShardedMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	sh := Shardables()["E15"]
	whole, err := Theorem12Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	roots, err := sh.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 4 {
		t.Fatalf("E15 partition has %d roots, want enough to shard", len(roots))
	}
	cut := len(roots) / 3
	var merged Aggregate
	for _, rng := range [][][]int{roots[:cut], roots[cut:]} {
		agg, err := sh.Explore(rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeShard(&buf, "E15", "", rng, agg); err != nil {
			t.Fatal(err)
		}
		env, err := DecodeShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := sh.Decode(env.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = decoded
			continue
		}
		if err := merged.Merge(decoded); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := sh.Finish(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, whole) {
		t.Fatalf("sharded merge differs from whole run:\n%s\nvs\n%s", tab.Format(), whole.Format())
	}
}

// TestAlg2SweepAggMerge: E15's aggregate folds identically under any
// grouping, and its Decode rejects counts that would corrupt the
// merged total.
func TestAlg2SweepAggMerge(t *testing.T) {
	a := &alg2SweepAgg{Execs: 2}
	if err := a.Merge(&alg2SweepAgg{Execs: 5}); err != nil {
		t.Fatal(err)
	}
	if a.Execs != 7 {
		t.Fatalf("merged execs = %d", a.Execs)
	}
	if err := a.Merge(&alg1SweepAgg{}); err == nil {
		t.Fatal("cross-type merge accepted")
	}
	sh := Shardables()["E15"]
	if _, err := sh.Decode([]byte(`{"execs":3}`)); err != nil {
		t.Fatalf("valid aggregate rejected: %v", err)
	}
	for _, bad := range []string{`{"execs":-1}`, `not json`} {
		if _, err := sh.Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%s) accepted", bad)
		}
	}
}

// TestShardEnvelopeCachedReencodeByteIdentical pins the invariant the
// slice cache rests on: an envelope that round-trips through a
// compact store form re-encodes to exactly the bytes of a fresh
// EncodeShard.
func TestShardEnvelopeCachedReencodeByteIdentical(t *testing.T) {
	roots := [][]int{{0, 1}, {1}}
	agg := &alg1SweepAgg{Execs: 4, Seen: []int{0, 9}, WorstNum: 1, MaxSteps: 11}
	var fresh bytes.Buffer
	if err := EncodeShard(&fresh, "E2", "", roots, agg); err != nil {
		t.Fatal(err)
	}
	env, err := NewShardEnvelope("E2", "", roots, agg)
	if err != nil {
		t.Fatal(err)
	}
	// The store keeps the envelope compact (json.Marshal) and decodes
	// it back before serving — simulate that round trip.
	compact, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := DecodeShard(bytes.NewReader(compact))
	if err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	if err := EncodeShardEnvelope(&served, stored); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), fresh.Bytes()) {
		t.Fatalf("cached re-encode differs:\n%q\nvs\n%q", served.Bytes(), fresh.Bytes())
	}
}
