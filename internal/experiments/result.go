package experiments

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EncodeText writes the aligned-text tables, one per successful result
// separated by a blank line — byte-identical to running each table's
// Format serially in result order, and independent of Jobs. Failed
// results are written as a one-line error marker.
func EncodeText(w io.Writer, results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			if _, err := fmt.Fprintf(w, "== %s: FAILED: %v ==\n\n", r.ID, r.Err); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, r.Table.Format()); err != nil {
			return err
		}
	}
	return nil
}

// jsonResult is the wire form of a Result. Durations are deliberately
// omitted so that the encoding is a pure function of the experiment
// outputs: two runs with different Jobs settings encode identically.
type jsonResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// EncodeJSON writes the results as one JSON array of table objects.
func EncodeJSON(w io.Writer, results []Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{ID: r.ID}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		} else {
			jr.Title = r.Table.Title
			jr.Headers = r.Table.Headers
			jr.Rows = r.Table.Rows
			jr.Notes = r.Table.Notes
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeJSON reads a result slice back from the wire form written by
// EncodeJSON. The wire form is a pure function of the experiment
// outputs, so decoding is lossy only in the fields EncodeJSON already
// drops: Duration is zero, Panicked is false, and a failed result's
// error is reconstructed as an opaque error with the encoded message.
// For every result slice rs, EncodeJSON(DecodeJSON(EncodeJSON(rs)))
// is byte-identical to EncodeJSON(rs) — the property the cache layer
// relies on to make warm runs emit the same bytes as cold runs.
func DecodeJSON(r io.Reader) ([]Result, error) {
	var in []jsonResult
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("experiments: decoding results: %w", err)
	}
	results := make([]Result, len(in))
	for i, jr := range in {
		if jr.Error != "" {
			results[i] = Result{ID: jr.ID, Err: errors.New(jr.Error)}
			continue
		}
		results[i] = Result{ID: jr.ID, Table: &Table{
			ID:      jr.ID,
			Title:   jr.Title,
			Headers: jr.Headers,
			Rows:    jr.Rows,
			Notes:   jr.Notes,
		}}
	}
	return results, nil
}

// EncodeCSV writes the results in long form, one record per table cell:
//
//	experiment,row,column,header,value
//
// The long form keeps the file rectangular even though each experiment
// has its own column set. Notes and errors are emitted with the
// pseudo-headers "_note" and "_error" (row numbering continues, column
// is 0).
func EncodeCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "row", "column", "header", "value"}); err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			if err := cw.Write([]string{r.ID, "0", "0", "_error", r.Err.Error()}); err != nil {
				return err
			}
			continue
		}
		for ri, row := range r.Table.Rows {
			for ci, cell := range row {
				header := ""
				if ci < len(r.Table.Headers) {
					header = r.Table.Headers[ci]
				}
				if err := cw.Write([]string{r.ID, itoa(ri), itoa(ci), header, cell}); err != nil {
					return err
				}
			}
		}
		for ni, note := range r.Table.Notes {
			if err := cw.Write([]string{r.ID, itoa(len(r.Table.Rows) + ni), "0", "_note", note}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Encoders maps the format names the CLI accepts to their encoder.
var Encoders = map[string]func(io.Writer, []Result) error{
	"text": EncodeText,
	"json": EncodeJSON,
	"csv":  EncodeCSV,
}

// LookupEncoder resolves a format name, naming the known formats in
// the error so every caller rejects bad input with the same message.
func LookupEncoder(format string) (func(io.Writer, []Result) error, error) {
	if encode, ok := Encoders[format]; ok {
		return encode, nil
	}
	known := make([]string, 0, len(Encoders))
	for name := range Encoders {
		known = append(known, name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("unknown format %q (have %s)", format, strings.Join(known, ", "))
}
