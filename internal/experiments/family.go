package experiments

import (
	"context"
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the parameterized-experiment seam. The paper's theorems
// are families over (k, inputs, choice size, ...); the fixed E1..E15
// registry pins one point per family. A Family lifts that point into a
// queryable surface: a validated parameter schema with types, ranges,
// and defaults, a canonical parameter rendering (so ?i0=0&k=7 and
// ?k=7&i0=0 are one cache entry and one singleflight key), and a Run /
// Shardable pair evaluated at any point of the space.
//
// It is also where cache identity is computed per experiment space
// rather than registry-wide: SpaceVersion(id) extends RegistryVersion
// with a per-family code version declared at registration, so editing
// one family's code cold-starts that family's artifacts and nothing
// else. For a family whose Version is empty the space version IS the
// registry version — byte-identical cache keys, so stores written
// before this seam existed stay warm.

// ParamKind is a parameter's wire type.
type ParamKind int

const (
	// ParamInt is an integer-valued parameter.
	ParamInt ParamKind = iota
	// ParamFloat is a float-valued parameter.
	ParamFloat
)

// String names the kind for schemas and error messages.
func (k ParamKind) String() string {
	if k == ParamInt {
		return "int"
	}
	return "float"
}

// ParamSpec declares one parameter of a family: name, type, inclusive
// range, default (in canonical rendering), and a one-line doc string
// served on the experiment index.
type ParamSpec struct {
	Name string
	Kind ParamKind
	// Default is the parameter's value at the family's fixed point, in
	// canonical rendering; a request omitting the parameter gets it.
	Default string
	// Min and Max bound the value inclusively.
	Min, Max float64
	Doc      string
}

// Family is one parameterized experiment space. Its fixed registry
// experiment (Registry()[ID]) is the space evaluated at every
// parameter's default — the table Run produces there is byte-identical
// to the fixed experiment's, which is what lets a default-point request
// share the fixed experiment's cache entry and singleflight.
type Family struct {
	// ID is the family's experiment id (the fixed point's registry id).
	ID string
	// Doc is a one-line description for the index and docs.
	Doc string
	// Version is the family's code version, "" for the generation this
	// seam landed in. Bump it whenever the family's output bytes could
	// change at any parameter point: only this family's cache
	// fingerprints move (SpaceVersion), every other family stays warm.
	Version string
	// Params is the parameter schema, in any order (canonicalization
	// sorts by name).
	Params []ParamSpec
	// Check, when non-nil, validates cross-parameter constraints that
	// per-spec ranges cannot express (e.g. an input bounded by another
	// parameter). Errors are field-level client messages.
	Check func(ps ParamSet) error
	// Run evaluates the family at one validated parameter point.
	Run func(ps ParamSet) (*Table, error)
	// Shardable, when non-nil, returns the partial-run seam at one
	// point, so parameterized spaces prefix-shard like fixed ones.
	Shardable func(ps ParamSet) Shardable
}

// Families returns the parameterized experiment families by id: the
// registry experiments whose spaces are open to ?param= requests.
func Families() map[string]Family {
	return map[string]Family{
		"E2":  e2Family(),
		"E15": e15Family(),
	}
}

// FamiliesFor returns the default family set for a registry choice:
// the full Families() when reg is nil (the real registry), and none
// otherwise — a family's Run executes the real experiment's code, so a
// registry override (tests, subset deployments) must opt in explicitly
// rather than silently serving spaces of experiments it replaced.
func FamiliesFor(reg map[string]Runner) map[string]Family {
	if reg == nil {
		return Families()
	}
	return map[string]Family{}
}

// spaceVersionBump is a link-time override of per-family code versions
// ("E2=v2" or "E2=v2,E15=v3"), settable with
//
//	go build -ldflags "-X repro/internal/experiments.spaceVersionBump=E2=v2"
//
// It exists for the cache-surgery CI gate: bumping one family's
// version at link time simulates deploying a surgical code edit
// without patching source, and the gate then asserts every other
// family's artifacts stayed warm.
var spaceVersionBump string

var (
	bumpOnce sync.Once
	bumps    map[string]string
)

// parseBumps parses the spaceVersionBump spelling ("E2=v2,E15=v3");
// malformed entries are dropped rather than failing the process — a
// bad ldflags value degrades to "no bump", never to a crash.
func parseBumps(s string) map[string]string {
	m := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		if name, v, ok := strings.Cut(strings.TrimSpace(part), "="); ok && name != "" && v != "" {
			m[name] = v
		}
	}
	return m
}

// familyVersion resolves one experiment's code version: the link-time
// bump wins, then the registered Family.Version, then "".
func familyVersion(id string) string {
	bumpOnce.Do(func() { bumps = parseBumps(spaceVersionBump) })
	if v, ok := bumps[id]; ok {
		return v
	}
	if f, ok := Families()[id]; ok {
		return f.Version
	}
	return ""
}

// SpaceVersion names the cache-identity generation of one experiment's
// space: RegistryVersion alone when the experiment declares no code
// version of its own (every pre-existing fingerprint is preserved
// byte-identically), and RegistryVersion+"+"+id+"/"+version otherwise
// — so bumping one family's Version moves only that family's
// fingerprints while a RegistryVersion bump still moves them all.
func SpaceVersion(id string) string {
	if v := familyVersion(id); v != "" {
		return RegistryVersion + "+" + id + "/" + v
	}
	return RegistryVersion
}

// ParamSet is one validated point of a family's parameter space, with
// every parameter present (defaults filled) in canonical order. The
// zero value is the no-parameters point of an unparameterized request;
// its Canonical and Query are "".
type ParamSet struct {
	family string
	// canonical is the sorted-by-name "i0=0,i1=1,k=7" rendering — the
	// cache and singleflight identity of the point — and "" at the
	// family's default point, which makes a spelled-out default request
	// (?k=4) the same identity as the fixed experiment.
	canonical string
	order     []string
	render    map[string]string
	vals      map[string]float64
}

// Canonical returns the point's identity string: parameters sorted by
// name, values in canonical rendering, "name=value" pairs joined with
// commas — and "" at the family's default point.
func (ps ParamSet) Canonical() string { return ps.canonical }

// Query returns the point as an explicit URL query fragment
// ("i0=0&i1=1&k=7", every parameter spelled out, values escaped), and
// "" for the zero ParamSet.
func (ps ParamSet) Query() string {
	if len(ps.order) == 0 {
		return ""
	}
	parts := make([]string, len(ps.order))
	for i, name := range ps.order {
		parts[i] = url.QueryEscape(name) + "=" + url.QueryEscape(ps.render[name])
	}
	return strings.Join(parts, "&")
}

// Int returns an integer parameter's value; 0 for an unknown name.
func (ps ParamSet) Int(name string) int { return int(ps.vals[name]) }

// Float returns a parameter's value; 0 for an unknown name.
func (ps ParamSet) Float(name string) float64 { return ps.vals[name] }

// String renders the point for logs and trace lines.
func (ps ParamSet) String() string {
	if ps.canonical == "" {
		return ps.family + " (defaults)"
	}
	return ps.family + "?" + ps.canonical
}

// paramNames lists a family's parameter names in sorted order, for
// error messages.
func paramNames(f Family) string {
	names := make([]string, len(f.Params))
	for i, spec := range f.Params {
		names[i] = spec.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// renderValue canonicalizes one parsed value: integers without
// exponent or sign noise, floats in shortest round-trip form — so
// "0.010", "1e-2", and "0.01" are one cache identity.
func renderValue(kind ParamKind, v float64) string {
	if kind == ParamInt {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseValue parses and range-checks one parameter value against its
// spec. Errors are field-level client messages.
func parseValue(spec ParamSpec, raw string) (float64, error) {
	var v float64
	switch spec.Kind {
	case ParamInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %q: %q is not an integer", spec.Name, raw)
		}
		v = float64(n)
	default:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("parameter %q: %q is not a finite number", spec.Name, raw)
		}
		v = f
	}
	if v < spec.Min || v > spec.Max {
		return 0, fmt.Errorf("parameter %q: %s out of range [%s, %s]",
			spec.Name, renderValue(spec.Kind, v), renderValue(spec.Kind, spec.Min), renderValue(spec.Kind, spec.Max))
	}
	return v, nil
}

// ParseParams validates one request's parameters against a family's
// schema and returns the canonical point: unknown names, repeated
// names, unparsable or out-of-range values, and Check violations are
// field-level errors (the 400 body internal/server returns); missing
// parameters take their defaults. Parameter order never matters — the
// canonical rendering is sorted by name — so every spelling of a point
// shares one cache entry and one singleflight key.
func ParseParams(f Family, q url.Values) (ParamSet, error) {
	specs := make(map[string]ParamSpec, len(f.Params))
	for _, spec := range f.Params {
		specs[spec.Name] = spec
	}
	for name, vals := range q {
		spec, ok := specs[name]
		if !ok {
			return ParamSet{}, fmt.Errorf("unknown parameter %q for %s (parameters: %s)", name, f.ID, paramNames(f))
		}
		if len(vals) != 1 {
			return ParamSet{}, fmt.Errorf("parameter %q given %d times, want once", spec.Name, len(vals))
		}
	}
	ps := ParamSet{
		family: f.ID,
		render: make(map[string]string, len(f.Params)),
		vals:   make(map[string]float64, len(f.Params)),
	}
	defaulted := true
	for _, spec := range f.Params {
		raw, given := spec.Default, false
		if vals := q[spec.Name]; len(vals) == 1 {
			raw, given = vals[0], true
		}
		v, err := parseValue(spec, raw)
		if err != nil {
			if !given {
				return ParamSet{}, fmt.Errorf("experiments: %s: bad default for %w", f.ID, err)
			}
			return ParamSet{}, err
		}
		render := renderValue(spec.Kind, v)
		ps.order = append(ps.order, spec.Name)
		ps.render[spec.Name] = render
		ps.vals[spec.Name] = v
		defaulted = defaulted && render == spec.Default
	}
	sort.Strings(ps.order)
	if f.Check != nil {
		if err := f.Check(ps); err != nil {
			return ParamSet{}, err
		}
	}
	if !defaulted {
		pairs := make([]string, len(ps.order))
		for i, name := range ps.order {
			pairs[i] = name + "=" + ps.render[name]
		}
		ps.canonical = strings.Join(pairs, ",")
	}
	return ps, nil
}

// DefaultParams returns a family's default point (Canonical "").
func DefaultParams(f Family) (ParamSet, error) {
	return ParseParams(f, url.Values{})
}

// ParseParamList parses the CLI parameter form "k=7,i0=0" (the -param
// flag) into a validated point.
func ParseParamList(f Family, s string) (ParamSet, error) {
	q := url.Values{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return ParamSet{}, fmt.Errorf("parameter %q: want name=value", part)
		}
		q.Add(name, val)
	}
	return ParseParams(f, q)
}

// ParamCache is the parameterized extension of Cache: a store that
// keys whole results by experiment id plus canonical parameter
// rendering. internal/cache.Store implements it; callers holding a
// plain Cache type-assert, so a store without parameter support
// degrades to cold non-default points, never to an error. The ""
// params key is the default point and aliases Get/Put — one entry
// serves the fixed experiment and every spelling of its defaults.
type ParamCache interface {
	Cache
	// GetParam returns the stored result for one parameter point of an
	// experiment family. Same trust contract as Get.
	GetParam(id, params string) (Result, bool)
	// PutParam stores a successful result for one parameter point.
	PutParam(id, params string, r Result) error
}

// getParam consults opts.Cache for one parameter point, degrading a
// plain Cache to the default point only.
func getParam(c Cache, id, params string) (Result, bool) {
	switch pc := c.(type) {
	case nil:
		return Result{}, false
	case ParamCache:
		return pc.GetParam(id, params)
	default:
		if params == "" {
			return c.Get(id)
		}
		return Result{}, false
	}
}

// putParam stores one parameter point's result, best-effort, with the
// same degradation as getParam.
func putParam(c Cache, id, params string, r Result) {
	switch pc := c.(type) {
	case nil:
	case ParamCache:
		pc.PutParam(id, params, r)
	default:
		if params == "" {
			c.Put(id, r)
		}
	}
}

// RunParam evaluates one family at one validated point with the
// engine's execution contract — cache read-through (ParamCache when
// the store supports it), panic isolation, timeout — and returns the
// point's Result. Only Timeout and Cache of opts are consulted: a
// parameter point is a single execution, so Jobs/IDs/Reduce do not
// apply (reduction is pinned to the fixed registry points).
func RunParam(ctx context.Context, f Family, ps ParamSet, opts Options) Result {
	id := f.ID
	params := ps.Canonical()
	if res, ok := getParam(opts.Cache, id, params); ok && res.Err == nil && res.Table != nil {
		res.ID = id
		res.Cached = true
		return res
	}
	res := runOne(ctx, id, func() (*Table, error) { return f.Run(ps) }, opts.Timeout)
	if res.Err == nil {
		putParam(opts.Cache, id, params, res) // best-effort, like the engine's Put
	}
	return res
}

// --- the registered families ---

// e2Family is E2's space: the exhaustive Algorithm 1 sweep over the
// ε-agreement parameter k and the two processes' input registers. The
// default point (k=4, inputs (0,1)) is Figure 2.
func e2Family() Family {
	return Family{
		ID:  "E2",
		Doc: "exhaustive Algorithm 1 sweep over k and the input registers",
		Params: []ParamSpec{
			{Name: "i0", Kind: ParamInt, Default: "0", Min: 0, Max: 1, Doc: "process 0's input register"},
			{Name: "i1", Kind: ParamInt, Default: "1", Min: 0, Max: 1, Doc: "process 1's input register"},
			// k=6's tree is ~30x k=4's; the cap keeps one request from
			// monopolizing a worker past any realistic timeout.
			{Name: "k", Kind: ParamInt, Default: "4", Min: 1, Max: 6, Doc: "ε-agreement parameter (ε = 1/(2k+1))"},
		},
		Run: func(ps ParamSet) (*Table, error) {
			return runE2At(ps.Int("k"), e2InputsOf(ps))
		},
		Shardable: func(ps ParamSet) Shardable {
			return e2ShardableAt(ps.Int("k"), e2InputsOf(ps))
		},
	}
}

// e2InputsOf extracts E2's input-register pair from a point.
func e2InputsOf(ps ParamSet) [2]uint64 {
	return [2]uint64{uint64(ps.Int("i0")), uint64(ps.Int("i1"))}
}

// e15Family is E15's space: the exhaustive Algorithm 2 validation
// sweep over the choice task's value count and the two inputs. The
// default point (c=2, inputs (0,1)) is Theorem 1.2's exhaustive check.
func e15Family() Family {
	return Family{
		ID:  "E15",
		Doc: "exhaustive Algorithm 2 validation over the choice task size and inputs",
		Params: []ParamSpec{
			{Name: "c", Kind: ParamInt, Default: "2", Min: 2, Max: 3, Doc: "choice task value count"},
			{Name: "i0", Kind: ParamInt, Default: "0", Min: 0, Max: 2, Doc: "process 0's input (0..c-1)"},
			{Name: "i1", Kind: ParamInt, Default: "1", Min: 0, Max: 2, Doc: "process 1's input (0..c-1)"},
		},
		Check: func(ps ParamSet) error {
			c := ps.Int("c")
			for _, name := range []string{"i0", "i1"} {
				if ps.Int(name) >= c {
					return fmt.Errorf("parameter %q: %d out of range for the %d-value choice task (want 0..%d)",
						name, ps.Int(name), c, c-1)
				}
			}
			return nil
		},
		Run: func(ps ParamSet) (*Table, error) {
			return runE15At(ps.Int("c"), e15InputOf(ps))
		},
		Shardable: func(ps ParamSet) Shardable {
			return e15ShardableAt(ps.Int("c"), e15InputOf(ps))
		},
	}
}
