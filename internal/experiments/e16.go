package experiments

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/sched"
)

// E16 — the k = 5 Algorithm 1 exhaustive sweep — is the first
// *heavy* experiment: registered for explicit -run requests but kept
// out of the default registry sweep, because its ~88k-execution space
// is only economical through the memoized explorer (the ROADMAP's
// "k ≥ 5 sweeps want registering as opt-in workloads" item). It is
// reduced-only: both the plain Runner and the ReducedRunner drive the
// canonical-state memo — there is no exhaustive twin to fall back to —
// so the reduced path is the single source of its bytes at every
// worker count.

// e16K pins E16's instance: Algorithm 1 with k = 5 on the same (0, 1)
// inputs as E2, one step up the k ladder from Figure 2.
const e16K = 5

var e16Inputs = [2]uint64{0, 1}

// Heavy returns the opt-in heavy experiments by id: runnable whenever
// named explicitly (-run E16, GET /experiments/E16) but excluded from
// the default all-experiments sweep and from IDs().
func Heavy() map[string]Runner {
	return map[string]Runner{
		"E16": AlgK5Sweep,
	}
}

// HeavyFor returns the default heavy set for a registry choice: the
// full Heavy() when reg is nil (the real registry), and nothing
// otherwise — the same opt-in rule as ShardablesFor, so a registry
// override never silently serves real heavy sweeps.
func HeavyFor(reg map[string]Runner) map[string]Runner {
	if reg == nil {
		return Heavy()
	}
	return map[string]Runner{}
}

// HeavyIDs returns the heavy experiment ids in index order.
func HeavyIDs() []string {
	m := Heavy()
	ids := make(map[string]Runner, len(m))
	for id := range m {
		ids[id] = nil
	}
	return sortIDs(ids)
}

// AlgK5Sweep is E16's Runner: the memoized k = 5 sweep at the default
// worker fan-out. The bytes are identical at every worker count (the
// parallel explorer's determinism contract), so the plain and reduced
// paths render the same table.
func AlgK5Sweep() (*Table, error) {
	tab, _, err := AlgK5SweepReduced(0)
	return tab, err
}

// AlgK5SweepReduced is E16's ReducedRunner: the k = 5 Algorithm 1
// sweep through the (parallel) memoized explorer, aggregated and
// rendered by the same collector/finish shape as E2.
func AlgK5SweepReduced(workers int) (*Table, sched.MemoStats, error) {
	agg, stats, err := agreement.ExploreAlg1MemoParallel(e16K, e16Inputs, workers, alg1LeafAgg, mergeAlg1Agg)
	if err != nil {
		return nil, stats, err
	}
	a, _ := agg.(*alg1SweepAgg)
	if a == nil {
		a = &alg1SweepAgg{}
	}
	tab, err := finishE16(a)
	return tab, stats, err
}

// finishE16 renders E16's table from a fully-merged sweep aggregate —
// the finishE2 shape at the k = 5 point, under E16's own id so the
// heavy sweep and the Figure 2 family stay distinct cache entries.
func finishE16(a *alg1SweepAgg) (*Table, error) {
	den := agreement.Alg1Den(e16K)
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("Heavy sweep — Algorithm 1 executions, k=%d, inputs (%d,%d), memoized", e16K, e16Inputs[0], e16Inputs[1]),
		Headers: []string{"quantity", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"interleavings", itoa(a.Execs)},
		[]string{"distinct decisions", itoa(len(a.Seen))},
		[]string{"decision range", fmt.Sprintf("0..%s by 1/%d", rat(den, den), den)},
		[]string{"worst co-final distance", rat(a.WorstNum, den)},
		[]string{"max steps per process", fmt.Sprintf("%d (bound 2k+3 = %d)", a.MaxSteps, agreement.Alg1MaxSteps(e16K))},
	)
	if a.WorstNum > 1 {
		t.Notes = append(t.Notes, "VIOLATION: co-final decisions exceed ε")
	} else {
		t.Notes = append(t.Notes, "all co-final decision pairs within ε = 1/(2k+1); full range covered")
	}
	t.Notes = append(t.Notes, "reduced-only: explored through the canonical-state memo (no exhaustive twin)")
	return t, nil
}
