package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/agreement"
)

// This file is the partial-run seam: the contract that lets one
// experiment's exhaustive exploration be split across machines. A
// prefix-shardable experiment decomposes into an order-insensitive
// Aggregate computed over any subset of its schedule-prefix partition
// (sched.PartitionRoots); aggregates merge associatively and
// commutatively, and Finish renders the merged aggregate into exactly
// the table the whole-space Runner produces — so a sharded run
// re-encodes byte-identically to a local one, the invariant
// internal/shard's differential tests and CI pin.

// Aggregate is an order-insensitive partial result of a shardable
// experiment. Implementations are JSON-marshalable (the wire form the
// ?prefixes= protocol carries) and must merge so that any grouping of
// a partition's slices folds to the same value.
type Aggregate interface {
	// Merge folds another slice's aggregate (same concrete type) into
	// the receiver.
	Merge(other Aggregate) error
}

// Shardable describes one prefix-shardable experiment: how to carve
// its exploration space, explore a slice of it, move an aggregate over
// the wire, and render the merged whole.
type Shardable struct {
	// Roots enumerates the partition of the experiment's exploration
	// space at its preferred cut depth, in deterministic order.
	Roots func() ([][]int, error)
	// Explore computes the aggregate over the subtrees under roots —
	// the whole experiment when roots is the full partition (or the
	// single empty prefix).
	Explore func(roots [][]int) (Aggregate, error)
	// Decode parses an aggregate from its JSON wire form.
	Decode func(data []byte) (Aggregate, error)
	// Finish renders the table from a fully-merged aggregate. It must
	// equal the whole-space Runner's table when the aggregate covers
	// the full partition.
	Finish func(agg Aggregate) (*Table, error)
}

// SliceCache is the artifact-store extension of Cache: a store that
// holds slice aggregates (the ShardEnvelope wire form of one prefix
// range's partial result) alongside whole results, keyed by
// experiment id + canonical prefix set. internal/cache.Store
// implements it; internal/server consults and populates it around
// slice explorations, and internal/shard does per-range read-through
// against it — the two halves that make a fleet a read-through cache
// hierarchy. Callers holding a plain Cache type-assert for it, so a
// store without slice support degrades to cold slices, never to an
// error.
type SliceCache interface {
	Cache
	// GetSlice returns the stored envelope for one slice. ok reports a
	// usable hit; implementations must return ok == false (never a
	// stale, corrupt, or wrong-generation envelope) otherwise. The
	// prefixes string is the canonical FormatPrefixes rendering;
	// params is the canonical ParamSet rendering of the space's
	// parameter point ("" for a fixed experiment or a default point).
	GetSlice(id, params, prefixes string) (ShardEnvelope, bool)
	// PutSlice stores one slice's envelope. Implementations may refuse
	// (incomplete or wrong-generation envelopes); callers treat errors
	// as a skipped optimisation, never a failure.
	PutSlice(env ShardEnvelope) error
}

// Shardables returns the prefix-shardable experiments by id — the
// subset of Registry() whose exploration spaces split across a fleet.
// internal/server serves their slices (GET /experiments/{id}?prefixes=)
// and internal/shard carves, distributes, and merges them.
func Shardables() map[string]Shardable {
	return map[string]Shardable{
		"E2":  e2Shardable(),
		"E15": e15Shardable(),
	}
}

// ShardablesFor returns the default shardable set for a registry
// choice: the full Shardables() when reg is nil (the real registry),
// and nothing otherwise — a shardable's Explore runs the real
// experiment's code, so a registry override (tests, subset
// deployments) must opt in explicitly rather than silently serving
// slices of experiments it replaced.
func ShardablesFor(reg map[string]Runner) map[string]Shardable {
	if reg == nil {
		return Shardables()
	}
	return map[string]Shardable{}
}

// FormatPrefixes renders a root set as the ?prefixes= parameter value:
// pids dot-separated within a root, roots comma-separated, the empty
// root (the whole tree) spelled "-". The inverse of ParsePrefixes.
func FormatPrefixes(roots [][]int) string {
	parts := make([]string, len(roots))
	for i, root := range roots {
		if len(root) == 0 {
			parts[i] = "-"
			continue
		}
		pids := make([]string, len(root))
		for j, pid := range root {
			pids[j] = strconv.Itoa(pid)
		}
		parts[i] = strings.Join(pids, ".")
	}
	return strings.Join(parts, ",")
}

// ParsePrefixes parses a ?prefixes= parameter value into a root set.
// The empty string is rejected: a caller that wants the whole space
// omits the parameter (or sends "-", the explicit empty prefix).
// Overlapping roots — duplicates, or one root a prefix of another —
// are rejected too: their subtrees would double-count executions, and
// a confidently wrong aggregate served with a 200 is exactly the
// silent corruption this protocol exists to prevent.
func ParsePrefixes(s string) ([][]int, error) {
	if s == "" {
		return nil, fmt.Errorf("experiments: empty prefixes parameter")
	}
	parts := strings.Split(s, ",")
	roots := make([][]int, len(parts))
	for i, part := range parts {
		if part == "-" {
			roots[i] = []int{}
			continue
		}
		if part == "" {
			return nil, fmt.Errorf("experiments: empty prefix in %q", s)
		}
		pids := strings.Split(part, ".")
		root := make([]int, len(pids))
		for j, p := range pids {
			pid, err := strconv.Atoi(p)
			if err != nil || pid < 0 {
				return nil, fmt.Errorf("experiments: bad pid %q in prefixes %q", p, s)
			}
			root[j] = pid
		}
		roots[i] = root
	}
	// Overlap check in O(n log n): sort an index view of the roots
	// lexicographically (a prefix sorts immediately before everything
	// it prefixes) and compare adjacent pairs. If root a is a prefix of
	// root b anywhere in the set, every root between them in sorted
	// order also extends a, so a is in particular a prefix of its own
	// successor — adjacent comparison misses nothing. The returned
	// slice keeps request order; only the check sorts.
	order := make([]int, len(roots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return lessIntSlice(roots[order[a]], roots[order[b]]) })
	for x := 0; x+1 < len(order); x++ {
		i, j := order[x], order[x+1]
		if isIntPrefix(roots[i], roots[j]) {
			return nil, fmt.Errorf("experiments: overlapping prefixes %q and %q in %q", parts[i], parts[j], s)
		}
	}
	return roots, nil
}

// lessIntSlice is lexicographic order on int slices, shorter prefixes
// first.
func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// isIntPrefix reports whether a is a (non-strict) prefix of b.
func isIntPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShardEnvelope is the wire form of one slice's aggregate: the body of
// a GET /experiments/{id}?prefixes=... response. SpaceVersion (kept
// under the pre-params "registry_version" wire key) lets a coordinator
// detect a fleet running a different generation of this experiment's
// space before trusting its numbers; Params and Prefixes echo the
// parameter point and the slice so a response cannot be silently
// credited to the wrong space or range.
type ShardEnvelope struct {
	ID           string          `json:"id"`
	SpaceVersion string          `json:"registry_version"`
	Params       string          `json:"params,omitempty"`
	Prefixes     string          `json:"prefixes"`
	Aggregate    json.RawMessage `json:"aggregate"`
}

// NewShardEnvelope builds the wire envelope of one slice's aggregate
// under the experiment's current space generation — the value
// EncodeShard writes, PutSlice stores, and the slice cache serves
// back. params is the canonical parameter rendering of the space's
// point, "" for a fixed experiment or a default point.
func NewShardEnvelope(id, params string, roots [][]int, agg Aggregate) (ShardEnvelope, error) {
	raw, err := json.Marshal(agg)
	if err != nil {
		return ShardEnvelope{}, err
	}
	return ShardEnvelope{
		ID:           id,
		SpaceVersion: SpaceVersion(id),
		Params:       params,
		Prefixes:     FormatPrefixes(roots),
		Aggregate:    raw,
	}, nil
}

// EncodeShardEnvelope writes an envelope in the slice endpoint's wire
// form. Because the encoder re-indents the raw aggregate bytes, a
// cached envelope (stored compact) re-encodes byte-identically to a
// freshly computed one — the invariant that lets the serving layer
// answer slice requests straight from the store.
func EncodeShardEnvelope(w io.Writer, env ShardEnvelope) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// EncodeShard writes the wire form of one slice's aggregate.
func EncodeShard(w io.Writer, id, params string, roots [][]int, agg Aggregate) error {
	env, err := NewShardEnvelope(id, params, roots, agg)
	if err != nil {
		return err
	}
	return EncodeShardEnvelope(w, env)
}

// DecodeShard reads one slice's wire envelope back. The aggregate
// stays raw: the caller resolves the experiment's Shardable.Decode.
func DecodeShard(r io.Reader) (ShardEnvelope, error) {
	var env ShardEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return env, fmt.Errorf("experiments: decoding shard envelope: %w", err)
	}
	if env.ID == "" || len(env.Aggregate) == 0 {
		return env, fmt.Errorf("experiments: shard envelope missing id or aggregate")
	}
	return env, nil
}

// --- E2: the Algorithm 1 exhaustive sweep, in partial-run form ---

// e2K and e2Inputs pin Figure 2's instance: Algorithm 1 with k = 4 on
// inputs (0, 1). e2ShardDepth is the partition cut — depth 5 carves
// the ~22k-execution tree into ~2^5 ranges, fine-grained enough to
// balance a small fleet, coarse enough that carving costs almost
// nothing.
const (
	e2K          = 4
	e2ShardDepth = 5
)

var e2Inputs = [2]uint64{0, 1}

// alg1SweepAgg is the order-insensitive aggregate of an exhaustive
// Algorithm 1 exploration — everything E2's table derives from. Seen
// is kept sorted; Merge is a union/sum/max fold, so slices combine in
// any grouping to the same value.
type alg1SweepAgg struct {
	Execs    int   `json:"execs"`
	Seen     []int `json:"seen"`
	WorstNum int   `json:"worst_num"`
	MaxSteps int   `json:"max_steps"`
}

// Merge implements Aggregate.
func (a *alg1SweepAgg) Merge(other Aggregate) error {
	b, ok := other.(*alg1SweepAgg)
	if !ok {
		return fmt.Errorf("experiments: cannot merge %T into %T", other, a)
	}
	a.Execs += b.Execs
	a.Seen = unionSorted(a.Seen, b.Seen)
	if b.WorstNum > a.WorstNum {
		a.WorstNum = b.WorstNum
	}
	if b.MaxSteps > a.MaxSteps {
		a.MaxSteps = b.MaxSteps
	}
	return nil
}

// unionSorted merges two sorted distinct-int slices into one.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// alg1Collector accumulates an alg1SweepAgg from explorer visits. The
// visit method is called under the explorer's lock (or serially), so
// no further synchronization is needed.
type alg1Collector struct {
	execs    int
	seen     map[int]bool
	worstNum int
	maxSteps int
}

func newAlg1Collector() *alg1Collector {
	return &alg1Collector{seen: make(map[int]bool)}
}

func (c *alg1Collector) visit(ar *agreement.Alg1Run) {
	c.execs++
	for i := 0; i < 2; i++ {
		c.seen[ar.Outs[i].Num] = true
		if ar.Result.Steps[i] > c.maxSteps {
			c.maxSteps = ar.Result.Steps[i]
		}
	}
	d := ar.Outs[0].Num - ar.Outs[1].Num
	if d < 0 {
		d = -d
	}
	if d > c.worstNum {
		c.worstNum = d
	}
}

func (c *alg1Collector) agg() *alg1SweepAgg {
	seen := make([]int, 0, len(c.seen))
	for n := range c.seen {
		seen = append(seen, n)
	}
	sort.Ints(seen)
	return &alg1SweepAgg{Execs: c.execs, Seen: seen, WorstNum: c.worstNum, MaxSteps: c.maxSteps}
}

// finishE2 renders the E2 family's table at one (k, inputs) point from
// a fully-merged aggregate — the one rendering path shared by the
// local runner, the sharded merge, and every parameterized point,
// which is what makes their bytes identical. At the default point
// (e2K, e2Inputs) the rendering is byte-for-byte Figure 2's.
func finishE2(a *alg1SweepAgg, k int, inputs [2]uint64) (*Table, error) {
	den := agreement.Alg1Den(k)
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("Figure 2 / Prop 5.1 — Algorithm 1 executions, k=%d, inputs (%d,%d)", k, inputs[0], inputs[1]),
		Headers: []string{"quantity", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"interleavings", itoa(a.Execs)},
		[]string{"distinct decisions", itoa(len(a.Seen))},
		[]string{"decision range", fmt.Sprintf("0..%s by 1/%d", rat(den, den), den)},
		[]string{"worst co-final distance", rat(a.WorstNum, den)},
		[]string{"max steps per process", fmt.Sprintf("%d (bound 2k+3 = %d)", a.MaxSteps, agreement.Alg1MaxSteps(k))},
	)
	if a.WorstNum > 1 {
		t.Notes = append(t.Notes, "VIOLATION: co-final decisions exceed ε")
	} else {
		t.Notes = append(t.Notes, "all co-final decision pairs within ε = 1/(2k+1); full range covered")
	}
	return t, nil
}

// runE2At evaluates the E2 family whole at one (k, inputs) point —
// the Family.Run behind GET /experiments/E2?k=...
func runE2At(k int, inputs [2]uint64) (*Table, error) {
	col := newAlg1Collector()
	if _, err := agreement.ExploreAlg1(k, inputs, col.visit); err != nil {
		return nil, err
	}
	return finishE2(col.agg(), k, inputs)
}

// e2Shardable is E2's partial-run form at the fixed registry point.
func e2Shardable() Shardable {
	return e2ShardableAt(e2K, e2Inputs)
}

// e2ShardableAt is the partial-run form at one (k, inputs) point.
// Explore fans out in-process (the slice is this worker's whole job,
// so the concurrency budget is spent here, unlike the engine-driven
// serial runner).
func e2ShardableAt(k int, inputs [2]uint64) Shardable {
	return Shardable{
		Roots: func() ([][]int, error) {
			return agreement.Alg1Roots(k, inputs, e2ShardDepth)
		},
		Explore: func(roots [][]int) (Aggregate, error) {
			col := newAlg1Collector()
			if _, err := agreement.ExploreAlg1Prefixes(k, inputs, 0, roots, col.visit); err != nil {
				return nil, err
			}
			return col.agg(), nil
		},
		Decode: func(data []byte) (Aggregate, error) {
			var a alg1SweepAgg
			if err := json.Unmarshal(data, &a); err != nil {
				return nil, fmt.Errorf("experiments: decoding E2 aggregate: %w", err)
			}
			// Merge's union depends on Seen being sorted and distinct,
			// and the counters being non-negative; a payload violating
			// either would corrupt the merged table silently, so it is
			// rejected like any other unusable response.
			if a.Execs < 0 || a.WorstNum < 0 || a.MaxSteps < 0 {
				return nil, fmt.Errorf("experiments: E2 aggregate with negative counters")
			}
			for i := 1; i < len(a.Seen); i++ {
				if a.Seen[i] <= a.Seen[i-1] {
					return nil, fmt.Errorf("experiments: E2 aggregate seen set not sorted and distinct")
				}
			}
			return &a, nil
		},
		Finish: func(agg Aggregate) (*Table, error) {
			a, ok := agg.(*alg1SweepAgg)
			if !ok {
				return nil, fmt.Errorf("experiments: E2 finish on %T", agg)
			}
			return finishE2(a, k, inputs)
		},
	}
}
