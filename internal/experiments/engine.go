package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sched"
)

// Options configures an engine run.
type Options struct {
	// IDs lists the experiments to run, in the order their results are
	// returned. Empty means every registered experiment in index order.
	IDs []string
	// Jobs is the number of experiments run concurrently; <= 0 means
	// GOMAXPROCS.
	Jobs int
	// Timeout bounds each experiment's wall-clock time; 0 means no limit.
	Timeout time.Duration
	// Registry overrides the experiment registry; nil means Registry().
	Registry map[string]Runner
	// Cache, when non-nil, is consulted before each runner executes and
	// updated after each success. A hit skips the runner entirely and
	// yields the stored Result with Cached set; failed results are never
	// stored, so errors are always recomputed. Cache write errors are
	// ignored: caching is an optimisation, never a reason to fail a run.
	Cache Cache
	// Reduce runs the experiments that support it (Reduced()) through
	// the canonical-state memoized explorer instead of the exhaustive
	// sweep. Tables stay byte-identical; Result.Memo carries the
	// explorer's counters. Reduced-capable experiments bypass Cache in
	// this mode — the counters are the point of asking for it — while
	// the rest of the registry runs (and caches) as usual.
	Reduce bool
}

// Cache is the engine's view of a result store, keyed by experiment id.
// Implementations (internal/cache.Store) own the full cache key —
// registry, Go, and module versions — so a stale store simply misses.
type Cache interface {
	// Get returns the stored result for an experiment id. ok reports a
	// usable hit; implementations must return ok == false (never a
	// stale or corrupted result) when the entry cannot be trusted.
	Get(id string) (Result, bool)
	// Put stores a successful result. Implementations may refuse
	// (e.g. failed results); the engine ignores the error.
	Put(id string, r Result) error
}

// Result is the outcome of one experiment run by the engine.
type Result struct {
	// ID is the experiment id.
	ID string
	// Table is the experiment's output; nil when Err is non-nil.
	Table *Table
	// Err reports a failed, timed-out, panicked, or cancelled run.
	Err error
	// Panicked reports that Err came from a recovered runner panic.
	Panicked bool
	// Cached reports that the result came from Options.Cache and no
	// runner executed. Like Duration it is not part of the wire form,
	// so cached and fresh runs encode byte-identically.
	Cached bool
	// Reduced reports that the run went through the memoized explorer
	// (Options.Reduce). Like Cached it is not part of the wire form:
	// reduced and exhaustive runs encode byte-identically.
	Reduced bool
	// Memo carries the memoized exploration's counters when Reduced.
	Memo sched.MemoStats
	// Duration is the experiment's wall-clock time.
	Duration time.Duration
}

// FirstError returns the first failed result's error in result order.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.ID, r.Err)
		}
	}
	return nil
}

// Run executes the selected experiments on a bounded worker pool and
// returns one Result per requested id, in request order regardless of
// completion order. A runner that returns an error, panics, or exceeds
// opts.Timeout yields a failed Result without affecting the other
// experiments or the process. Run itself errors only on configuration
// mistakes (an unknown experiment id); cancelling ctx marks the
// experiments not yet finished as failed with the context's error.
func Run(ctx context.Context, opts Options) ([]Result, error) {
	reg := opts.Registry
	if reg == nil {
		reg = Registry()
	}
	ids := opts.IDs
	if len(ids) == 0 {
		ids = sortIDs(reg)
	}
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, ok := reg[id]
		if !ok {
			// Heavy experiments resolve only when named explicitly —
			// the default sweep above (sortIDs over the registry) never
			// includes them — and only against the real registry.
			r, ok = HeavyFor(opts.Registry)[id]
		}
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		runners[i] = r
	}

	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(ids) {
		jobs = len(ids)
	}

	results := make([]Result, len(ids))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runCached(ctx, ids[i], runners[i], opts)
			}
		}()
	}
	for i := range ids {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, nil
}

// runCached serves one experiment from opts.Cache when possible and
// runs it (storing a success back) otherwise. Under Options.Reduce a
// reduced-capable experiment runs fresh through the memoized explorer
// — counters from a cache hit would be fiction — with the same panic
// isolation and timeout as any other runner.
func runCached(ctx context.Context, id string, r Runner, opts Options) Result {
	if opts.Reduce {
		if rr, ok := Reduced()[id]; ok {
			// The memo explorer fans out over Jobs worker goroutines
			// (<= 0 means GOMAXPROCS, the Options.Jobs default): -jobs
			// controls both the experiment-level pool and, in reduced
			// mode, the intra-exploration parallelism. Bytes are
			// identical at every worker count.
			workers := opts.Jobs
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			// The stats channel is buffered and written before the
			// wrapped runner returns, so a successful runOne implies the
			// value is already there; on timeout or cancellation it is
			// simply never read.
			statsCh := make(chan sched.MemoStats, 1)
			wrapped := func() (*Table, error) {
				tab, stats, err := rr(workers)
				statsCh <- stats
				return tab, err
			}
			res := runOne(ctx, id, wrapped, opts.Timeout)
			select {
			case stats := <-statsCh:
				res.Reduced = true
				res.Memo = stats
			default:
			}
			return res
		}
	}
	if opts.Cache != nil {
		if res, ok := opts.Cache.Get(id); ok && res.Err == nil && res.Table != nil {
			res.ID = id
			res.Cached = true
			return res
		}
	}
	res := runOne(ctx, id, r, opts.Timeout)
	if opts.Cache != nil && res.Err == nil {
		opts.Cache.Put(id, res) // best-effort; a failed write just means a future miss
	}
	return res
}

// runOne executes a single runner with panic isolation and a timeout.
// The runner executes in its own goroutine; on timeout or cancellation
// that goroutine is abandoned (runners take no context), which leaks it
// until it returns — acceptable for a CLI/test harness, and the reason
// timeouts should be generous rather than tight.
func runOne(ctx context.Context, id string, r Runner, timeout time.Duration) Result {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{ID: id, Err: err}
	}
	type outcome struct {
		tab      *Table
		err      error
		panicked bool
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- outcome{err: fmt.Errorf("runner panicked: %v", rec), panicked: true}
			}
		}()
		tab, err := r()
		if err == nil && tab == nil {
			err = fmt.Errorf("runner returned no table")
		}
		ch <- outcome{tab: tab, err: err}
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case o := <-ch:
		if o.err != nil {
			o.tab = nil
		}
		return Result{ID: id, Table: o.tab, Err: o.err, Panicked: o.panicked, Duration: time.Since(start)}
	case <-timer:
		return Result{ID: id, Err: fmt.Errorf("timed out after %v: %w", timeout, context.DeadlineExceeded),
			Duration: time.Since(start)}
	case <-ctx.Done():
		return Result{ID: id, Err: ctx.Err(), Duration: time.Since(start)}
	}
}
