package snapshot

import (
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/sched"
)

// scanRecord is what a test process observed: the per-process update
// counters visible in one scan (0 = unseen).
type scanRecord struct {
	pid  int
	vers []int
}

// versOf converts a scan's values (ints = update counters) to a vector.
func versOf(n int, view []memory.Value) []int {
	out := make([]int, n)
	for i, v := range view {
		if u, ok := v.(int); ok {
			out[i] = u
		}
	}
	return out
}

// atomicSystem builds n processes that each perform `updates` updates
// (writing their running counter) interleaved with scans, recording all
// scans.
func atomicSystem(n, updates int, scans *[]scanRecord) []sched.ProcFunc {
	mem := memory.New(n, 0)
	procs := make([]sched.ProcFunc, n)
	for i := 0; i < n; i++ {
		procs[i] = func(p *sched.Proc) error {
			obj := NewAtomic(memory.Bind(p, mem))
			for u := 1; u <= updates; u++ {
				if err := obj.Update(u); err != nil {
					return err
				}
				view, err := obj.Scan()
				if err != nil {
					return err
				}
				*scans = append(*scans, scanRecord{pid: p.ID, vers: versOf(n, view)})
			}
			return nil
		}
	}
	return procs
}

// checkScans verifies the linearizability witnesses: all scan version
// vectors pairwise comparable, and each process's own scans monotone and
// self-inclusive.
func checkScans(n, updates int, scans []scanRecord) error {
	for i := 0; i < len(scans); i++ {
		for j := i + 1; j < len(scans); j++ {
			if !Comparable(scans[i].vers, scans[j].vers) {
				return fmt.Errorf("scans %v and %v incomparable", scans[i], scans[j])
			}
		}
	}
	last := map[int][]int{}
	progress := map[int]int{}
	for _, s := range scans {
		progress[s.pid]++
		// Self-inclusion: a scan after my u-th update shows ≥ u for me.
		if s.vers[s.pid] < progress[s.pid] {
			return fmt.Errorf("process %d scan %v misses own update %d", s.pid, s.vers, progress[s.pid])
		}
		if prev, ok := last[s.pid]; ok {
			for c := 0; c < n; c++ {
				if s.vers[c] < prev[c] {
					return fmt.Errorf("process %d scans regressed: %v then %v", s.pid, prev, s.vers)
				}
			}
		}
		last[s.pid] = s.vers
	}
	return nil
}

func TestAtomicSnapshotExhaustiveTwoProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	var scans []scanRecord
	factory := func() []sched.ProcFunc {
		scans = nil
		return atomicSystem(2, 1, &scans)
	}
	runs, err := sched.ExploreAll(factory, 1<<16, func(r *sched.Result) {
		if e := r.Err(); e != nil {
			t.Fatalf("%v", e)
		}
		if err := checkScans(2, 1, scans); err != nil {
			t.Fatalf("schedule %v: %v", r.Decisions, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Fatal("no runs")
	}
}

func TestAtomicSnapshotRandomSchedules(t *testing.T) {
	for _, n := range []int{3, 4} {
		for seed := int64(0); seed < 40; seed++ {
			var scans []scanRecord
			procs := atomicSystem(n, 3, &scans)
			res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(seed)}, procs)
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, e)
			}
			if err := checkScans(n, 3, scans); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestAtomicSnapshotUnderCrashes(t *testing.T) {
	n := 3
	for seed := int64(0); seed < 20; seed++ {
		var scans []scanRecord
		procs := atomicSystem(n, 2, &scans)
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), map[int]int{int(seed) % n: int(seed * 3)})
		res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range res.Errs {
			if e != nil {
				t.Fatalf("seed %d: proc %d: %v", seed, i, e)
			}
		}
		// Scans of the surviving processes must still be comparable.
		for i := 0; i < len(scans); i++ {
			for j := i + 1; j < len(scans); j++ {
				if !Comparable(scans[i].vers, scans[j].vers) {
					t.Fatalf("seed %d: incomparable scans under crash", seed)
				}
			}
		}
	}
}

func TestAtomicSnapshotSequentialSemantics(t *testing.T) {
	// With processes running one after another, each later scan contains
	// every earlier update.
	n := 3
	var scans []scanRecord
	procs := atomicSystem(n, 2, &scans)
	res, err := sched.Run(sched.Config{Scheduler: sched.Sequential{Order: []int{0, 1, 2}}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	final := scans[len(scans)-1]
	for c := 0; c < n; c++ {
		if final.vers[c] != 2 {
			t.Fatalf("final scan %v missing updates", final.vers)
		}
	}
}

func TestComparable(t *testing.T) {
	tests := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{2, 2}, true},
		{[]int{2, 1}, []int{1, 2}, false},
		{[]int{0, 0}, []int{5, 9}, true},
	}
	for _, tc := range tests {
		if got := Comparable(tc.a, tc.b); got != tc.want {
			t.Errorf("Comparable(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

// --- immediate snapshot ----------------------------------------------------

// immediateSystem runs the one-shot object with values 10+pid.
func immediateSystem(n int, snaps [][]memory.Value) []sched.ProcFunc {
	mem := memory.New(n, 0)
	procs := make([]sched.ProcFunc, n)
	for i := 0; i < n; i++ {
		procs[i] = func(p *sched.Proc) error {
			obj := NewImmediate(memory.Bind(p, mem))
			view, err := obj.WriteSnapshot(10 + p.ID)
			if err != nil {
				return err
			}
			snaps[p.ID] = view
			return nil
		}
	}
	return procs
}

// checkIS verifies validity, self-containment, inclusion, and immediacy.
func checkIS(n int, snaps [][]memory.Value, have []bool) error {
	val := func(j int) memory.Value { return 10 + j }
	subset := func(a, b []memory.Value) bool {
		for j := 0; j < n; j++ {
			if a[j] != nil && b[j] != a[j] {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		if !have[i] {
			continue
		}
		s := snaps[i]
		if s[i] != val(i) {
			return fmt.Errorf("self-containment: S_%d = %v", i, s)
		}
		for j := 0; j < n; j++ {
			if s[j] != nil && s[j] != val(j) {
				return fmt.Errorf("validity: S_%d[%d] = %v", i, j, s[j])
			}
		}
		for j := 0; j < n; j++ {
			if i == j || !have[j] {
				continue
			}
			if !subset(s, snaps[j]) && !subset(snaps[j], s) {
				return fmt.Errorf("inclusion: S_%d=%v vs S_%d=%v", i, s, j, snaps[j])
			}
			if s[j] != nil && !subset(snaps[j], s) {
				return fmt.Errorf("immediacy: S_%d contains %d but S_%d ⊄ S_%d", i, j, j, i)
			}
		}
	}
	return nil
}

func TestImmediateSnapshotExhaustiveTwoProcs(t *testing.T) {
	outcomes := map[string]bool{}
	var snaps [][]memory.Value
	factory := func() []sched.ProcFunc {
		snaps = make([][]memory.Value, 2)
		return immediateSystem(2, snaps)
	}
	runs, err := sched.ExploreAll(factory, 1<<16, func(r *sched.Result) {
		if e := r.Err(); e != nil {
			t.Fatal(e)
		}
		if err := checkIS(2, snaps, []bool{true, true}); err != nil {
			t.Fatalf("schedule %v: %v", r.Decisions, err)
		}
		outcomes[fmt.Sprint(snaps)] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Fatal("no runs")
	}
	// The one-round 2-process IS complex has exactly 3 facets.
	if len(outcomes) != 3 {
		t.Fatalf("distinct outcomes = %d, want 3", len(outcomes))
	}
}

func TestImmediateSnapshotRandomSchedules(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		for seed := int64(0); seed < 60; seed++ {
			snaps := make([][]memory.Value, n)
			procs := immediateSystem(n, snaps)
			res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(seed)}, procs)
			if err != nil {
				t.Fatal(err)
			}
			if e := res.Err(); e != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, e)
			}
			have := make([]bool, n)
			for i := range have {
				have[i] = true
			}
			if err := checkIS(n, snaps, have); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestImmediateSnapshotSolo(t *testing.T) {
	// A solo process obtains the singleton snapshot of itself.
	n := 3
	snaps := make([][]memory.Value, n)
	procs := immediateSystem(n, snaps)
	res, err := sched.Run(sched.Config{Scheduler: sched.Solo{Pid: 1}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if snaps[1] == nil {
		t.Fatal("solo process got no snapshot")
	}
	for j := 0; j < n; j++ {
		want := memory.Value(nil)
		if j == 1 {
			want = 11
		}
		if snaps[1][j] != want {
			t.Fatalf("solo snapshot = %v", snaps[1])
		}
	}
}

func TestImmediateSnapshotUnderCrashes(t *testing.T) {
	n := 4
	for seed := int64(0); seed < 20; seed++ {
		snaps := make([][]memory.Value, n)
		procs := immediateSystem(n, snaps)
		victim := int(seed) % n
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), map[int]int{victim: int(seed)})
		res, err := sched.Run(sched.Config{Scheduler: scheduler}, procs)
		if err != nil {
			t.Fatal(err)
		}
		have := make([]bool, n)
		for i := range have {
			have[i] = res.Correct(i) && snaps[i] != nil
		}
		if err := checkIS(n, snaps, have); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Wait-freedom: every correct process obtained a snapshot.
		for i := 0; i < n; i++ {
			if res.Correct(i) && snaps[i] == nil {
				t.Fatalf("seed %d: correct process %d got no snapshot", seed, i)
			}
		}
	}
}

func BenchmarkAtomicScan(b *testing.B) {
	var scans []scanRecord
	for i := 0; i < b.N; i++ {
		scans = nil
		procs := atomicSystem(4, 2, &scans)
		if _, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(int64(i))}, procs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImmediateSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		snaps := make([][]memory.Value, 5)
		procs := immediateSystem(5, snaps)
		if _, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(int64(i))}, procs); err != nil {
			b.Fatal(err)
		}
	}
}
