// Package snapshot implements the snapshot objects the paper assumes as
// primitives, from plain read/write registers:
//
//   - the atomic snapshot of Afek, Attiya, Dolev, Gafni, Merritt, Shavit
//     [2] (§2 "Snapshots and Immediate Snapshots"): wait-free
//     linearizable scans via double collects with embedded views;
//   - the one-shot immediate snapshot of Borowsky and Gafni [11]
//     (Lemma 2.3): the recursive level-descent algorithm.
//
// Both run on the scheduler-gated shared memory, so their correctness is
// checked over exhaustively enumerated interleavings (n = 2) and large
// random schedule samples (n ≥ 3). The memory package's Snapshot
// primitive is thereby justified inside the model rather than assumed.
package snapshot

import (
	"fmt"

	"repro/internal/memory"
)

// cell is one register's content for the atomic snapshot object:
// the current value, its sequence number, and the view embedded by the
// writer's most recent update (the scan it performed while writing).
type cell struct {
	Val  memory.Value
	Seq  int
	View []memory.Value
}

// Atomic is a wait-free atomic snapshot object for n processes built on
// one unbounded SWMR register per process [2]. Each process may Update
// its component and Scan the whole array; scans are linearizable.
type Atomic struct {
	PM memory.Mem
	// seq is this process's update counter.
	seq int
}

// NewAtomic binds an atomic snapshot object to process pm.
func NewAtomic(pm memory.Mem) *Atomic { return &Atomic{PM: pm} }

// Update sets this process's component to v. It embeds a fresh scan in
// the written cell so that concurrent scanners who see this register
// move twice can borrow the view.
func (a *Atomic) Update(v memory.Value) error {
	view, err := a.Scan()
	if err != nil {
		return err
	}
	a.seq++
	return a.PM.Write(cell{Val: v, Seq: a.seq, View: view})
}

// Scan returns a linearizable view of all components (nil for components
// never updated). It repeats double collects; on two identical collects
// the view is direct, and once some register has moved twice the scanner
// returns that writer's embedded view, which was taken entirely within
// the scanner's interval.
func (a *Atomic) Scan() ([]memory.Value, error) {
	n := a.PM.S.N()
	moved := make([]int, n)
	var prev []cell
	for {
		cur, err := a.collect()
		if err != nil {
			return nil, err
		}
		if prev != nil && sameCollect(prev, cur) {
			out := make([]memory.Value, n)
			for i, c := range cur {
				out[i] = c.Val
			}
			return out, nil
		}
		if prev != nil {
			for i := range cur {
				if cur[i].Seq != prev[i].Seq {
					moved[i]++
					if moved[i] >= 2 {
						// This writer performed a complete Update inside
						// our scan: its embedded view is linearizable
						// within our interval.
						if cur[i].View == nil {
							return nil, fmt.Errorf("snapshot: register %d moved twice with no embedded view", i)
						}
						return append([]memory.Value(nil), cur[i].View...), nil
					}
				}
			}
		}
		prev = cur
	}
}

// collect reads all registers once (n steps), decoding cells.
func (a *Atomic) collect() ([]cell, error) {
	n := a.PM.S.N()
	out := make([]cell, n)
	for j := 0; j < n; j++ {
		v := a.PM.Read(j)
		if v == nil {
			out[j] = cell{}
			continue
		}
		c, ok := v.(cell)
		if !ok {
			return nil, fmt.Errorf("snapshot: register %d holds %T", j, v)
		}
		out[j] = c
	}
	return out, nil
}

func sameCollect(a, b []cell) bool {
	for i := range a {
		if a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}

// VersionVector extracts the sequence numbers of a collect-like view for
// linearizability checking: scans of an atomic snapshot object must have
// pairwise comparable version vectors.
func VersionVector(view []memory.Value) []int {
	out := make([]int, len(view))
	for i, v := range view {
		if c, ok := v.(cell); ok {
			out[i] = c.Seq
		}
	}
	return out
}

// Comparable reports whether two version vectors are componentwise
// comparable (a ≤ b or b ≤ a) — the linearizability witness for a pair
// of scans.
func Comparable(a, b []int) bool {
	le, ge := true, true
	for i := range a {
		if a[i] > b[i] {
			le = false
		}
		if a[i] < b[i] {
			ge = false
		}
	}
	return le || ge
}
