package snapshot

import (
	"fmt"

	"repro/internal/memory"
)

// isCell is one register's content for the one-shot immediate snapshot:
// the participant's value and its current level.
type isCell struct {
	Val   memory.Value
	Level int
}

// Immediate is the one-shot immediate snapshot object of Borowsky and
// Gafni [11] (Lemma 2.3), built on one SWMR register per process: the
// classic level-descent algorithm. Each process invokes WriteSnapshot
// once; the returned views satisfy validity, self-containment, inclusion
// and immediacy — the §7 "Preliminaries" properties.
type Immediate struct {
	PM memory.Mem
}

// NewImmediate binds the object to process pm.
func NewImmediate(pm memory.Mem) *Immediate { return &Immediate{PM: pm} }

// WriteSnapshot registers value v and returns an immediate snapshot:
// entry j holds process j's value or nil. The process descends from
// level n, announcing (v, level) and collecting, until the set S of
// processes at level ≤ its own has size ≥ level; S is its snapshot.
func (im *Immediate) WriteSnapshot(v memory.Value) ([]memory.Value, error) {
	n := im.PM.S.N()
	for level := n; level >= 1; level-- {
		if err := im.PM.Write(isCell{Val: v, Level: level}); err != nil {
			return nil, err
		}
		seen := make([]memory.Value, n)
		count := 0
		for j := 0; j < n; j++ {
			raw := im.PM.Read(j)
			if raw == nil {
				continue
			}
			c, ok := raw.(isCell)
			if !ok {
				return nil, fmt.Errorf("snapshot: register %d holds %T", j, raw)
			}
			if c.Level <= level {
				seen[j] = c.Val
				count++
			}
		}
		if count >= level {
			return seen, nil
		}
	}
	return nil, fmt.Errorf("snapshot: level descent exhausted (unreachable: self is at level 1)")
}
