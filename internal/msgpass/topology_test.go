package msgpass

import "testing"

func TestTAugmentedRingNeighbours(t *testing.T) {
	ring, err := NewTAugmentedRing(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	succ := ring.Succ(0)
	want := []int{1, 2, 3}
	if len(succ) != len(want) {
		t.Fatalf("Succ(0) = %v", succ)
	}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("Succ(0) = %v, want %v", succ, want)
		}
	}
	pred := ring.Pred(0)
	wantP := []int{4, 5, 6}
	for i := range wantP {
		if pred[i] != wantP[i] {
			t.Fatalf("Pred(0) = %v, want %v", pred, wantP)
		}
	}
}

func TestTAugmentedRingWraparound(t *testing.T) {
	ring, err := NewTAugmentedRing(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	succ := ring.Succ(4)
	want := []int{0, 1}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("Succ(4) = %v, want %v", succ, want)
		}
	}
}

func TestTAugmentedRingRejectsBadParams(t *testing.T) {
	cases := [][2]int{{2, 1}, {4, 2}, {5, 0}, {6, 3}}
	for _, c := range cases {
		if _, err := NewTAugmentedRing(c[0], c[1]); err == nil {
			t.Errorf("NewTAugmentedRing(%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestRingConnectivity(t *testing.T) {
	// Figure 3 / §6 phase 2: the t-augmented ring is (t+1)-connected.
	cases := [][2]int{{5, 1}, {5, 2}, {6, 2}, {7, 2}, {7, 3}, {9, 4}}
	for _, c := range cases {
		ring, err := NewTAugmentedRing(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if !IsKConnected(ring, c[1]+1) {
			t.Errorf("ring(n=%d,t=%d) not %d-connected", c[0], c[1], c[1]+1)
		}
	}
}

func TestRingConnectivityTight(t *testing.T) {
	// Removing a node's t+1 successors disconnects it, so the ring is not
	// (t+2)-connected when n is large enough for the successors to be a
	// cut.
	ring, err := NewTAugmentedRing(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if IsKConnected(ring, 3) {
		t.Error("ring(6,1) reported 3-connected; its vertex connectivity is 2")
	}
}

func TestCompleteConnectivity(t *testing.T) {
	if !IsKConnected(Complete{Nodes: 5}, 4) {
		t.Error("complete graph on 5 nodes not 4-connected")
	}
}

func TestStronglyConnectedWithout(t *testing.T) {
	ring, err := NewTAugmentedRing(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !StronglyConnectedWithout(ring, map[int]bool{3: true}) {
		t.Error("ring(6,1) minus one node should stay connected")
	}
	if StronglyConnectedWithout(ring, map[int]bool{1: true, 2: true}) {
		t.Error("removing both successors of node 0 must disconnect it")
	}
}
