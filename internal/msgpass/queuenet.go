package msgpass

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// LinkLayer is a point-to-point transport over a topology. Sends are only
// allowed along direct links; the routing above it (Node) handles
// multi-hop delivery. Implementations charge scheduler steps for their
// shared-state operations, so asynchrony and fairness come from the same
// adversary that drives everything else.
type LinkLayer interface {
	Topo() Topology
	// Send transmits m on the direct link p.ID → to (to ∈ Succ(p.ID)).
	Send(p *sched.Proc, to int, m *Message) error
	// RecvAny blocks until a message is available on any in-link of p.ID
	// and returns it.
	RecvAny(p *sched.Proc) (*Message, error)
}

// QueueNet is the plain asynchronous message-passing substrate: one
// unbounded FIFO queue per directed link, reliable, with delivery order
// across links chosen by a seeded RNG (the delivery adversary). Each send
// and each receive is one scheduler step.
type QueueNet struct {
	topo   Topology
	queues map[[2]int][]*Message
	rng    *rand.Rand

	// Sent and Delivered count link-level message events.
	Sent, Delivered int
}

var _ LinkLayer = (*QueueNet)(nil)

// NewQueueNet builds the substrate over the topology; seed drives the
// cross-link delivery choice.
func NewQueueNet(topo Topology, seed int64) *QueueNet {
	return &QueueNet{
		topo:   topo,
		queues: make(map[[2]int][]*Message),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Topo implements LinkLayer.
func (q *QueueNet) Topo() Topology { return q.topo }

// Send implements LinkLayer.
func (q *QueueNet) Send(p *sched.Proc, to int, m *Message) error {
	if !contains(q.topo.Succ(p.ID), to) {
		return fmt.Errorf("msgpass: no link %d→%d", p.ID, to)
	}
	p.Step()
	key := [2]int{p.ID, to}
	q.queues[key] = append(q.queues[key], m)
	q.Sent++
	return nil
}

// RecvAny implements LinkLayer: it blocks (disabled in the scheduler's
// enabled set) until some in-link queue is non-empty, then dequeues from
// a queue picked by the delivery adversary.
func (q *QueueNet) RecvAny(p *sched.Proc) (*Message, error) {
	me := p.ID
	p.StepWhen(func() bool { return len(q.nonEmptyIn(me)) > 0 })
	ready := q.nonEmptyIn(me)
	if len(ready) == 0 {
		return nil, fmt.Errorf("msgpass: RecvAny granted with no message")
	}
	from := ready[q.rng.Intn(len(ready))]
	key := [2]int{from, me}
	m := q.queues[key][0]
	q.queues[key] = q.queues[key][1:]
	q.Delivered++
	return m, nil
}

func (q *QueueNet) nonEmptyIn(me int) []int {
	var out []int
	for _, from := range q.topo.Pred(me) {
		if len(q.queues[[2]int{from, me}]) > 0 {
			out = append(out, from)
		}
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
