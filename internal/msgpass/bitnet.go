package msgpass

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
)

// BitNet is stage B of the Theorem 1.3 pipeline: every directed link of
// the (t+1)-connected topology is realized by the alternating-bit
// protocol over register fields — a 2-bit data field (data bit + sequence
// bit) owned by the sender and a 1-bit acknowledgement field owned by the
// receiver. All fields of one process are packed into its single SWMR
// register, so on the t-augmented ring each register has exactly
// 2(t+1) + (t+1) = 3(t+1) bits.
//
// Messages are serialized (Message.Encode) and framed with the paper's
// separator scheme (FrameBits) before transmission; each link bit costs
// one register write by the sender and, at the receiver, one register
// read plus its share of an acknowledgement write.
//
// Compared with the classical alternating-bit protocol the initial
// sequence values are shifted (the first bit travels with sequence 1, and
// registers start at 0) so that the all-zero initial registers do not
// look like a transmission.
type BitNet struct {
	topo  Topology
	mem   *memory.Shared
	nodes []*bitNode

	// Bits counts link-level data bits delivered.
	Bits int
}

var _ LinkLayer = (*BitNet)(nil)

type bitOutLink struct {
	to      int
	slot    int // index in my Succ list: data field at bits [2s, 2s+1]
	ackBit  int // bit position of my ack in the receiver's word
	pending []uint64
	seq     uint64
	await   bool
}

type bitInLink struct {
	from     int
	dataSlot int // index in from's Succ list
	ackBit   int // bit position of my ack field in my word
	lastSeq  uint64
	asm      BitAssembler
}

type bitNode struct {
	word  uint64
	outs  []*bitOutLink
	ins   []*bitInLink
	inbox []*Message
}

// NewBitNet builds the alternating-bit substrate over the topology. The
// register width is 2·outdeg + indeg bits (3(t+1) on the t-augmented
// ring).
func NewBitNet(topo Topology) *BitNet {
	n := topo.N()
	width := 0
	for i := 0; i < n; i++ {
		w := 2*len(topo.Succ(i)) + len(topo.Pred(i))
		if w > width {
			width = w
		}
	}
	b := &BitNet{
		topo:  topo,
		mem:   memory.New(n, width),
		nodes: make([]*bitNode, n),
	}
	for i := 0; i < n; i++ {
		nd := &bitNode{}
		for s, j := range topo.Succ(i) {
			// My ack bit in j's word: after j's 2·outdeg data bits, at
			// the index of i among j's predecessors.
			ackBit := 2 * len(topo.Succ(j))
			for k, pred := range topo.Pred(j) {
				if pred == i {
					ackBit += k
				}
			}
			nd.outs = append(nd.outs, &bitOutLink{to: j, slot: s, ackBit: ackBit})
		}
		for k, j := range topo.Pred(i) {
			dataSlot := 0
			for s, succ := range topo.Succ(j) {
				if succ == i {
					dataSlot = s
				}
			}
			nd.ins = append(nd.ins, &bitInLink{
				from:     j,
				dataSlot: dataSlot,
				ackBit:   2*len(topo.Succ(i)) + k,
			})
		}
		b.nodes[i] = nd
	}
	return b
}

// Topo implements LinkLayer.
func (b *BitNet) Topo() Topology { return b.topo }

// RegisterBits returns the width of each process's register.
func (b *BitNet) RegisterBits() int { return b.mem.Width() }

// Memory exposes the underlying bounded shared memory (for assertions).
func (b *BitNet) Memory() *memory.Shared { return b.mem }

// Send implements LinkLayer: it frames the message onto the link's bit
// queue. The register operations that transmit the bits happen during
// RecvAny pumping and are charged there.
func (b *BitNet) Send(p *sched.Proc, to int, m *Message) error {
	nd := b.nodes[p.ID]
	for _, ol := range nd.outs {
		if ol.to == to {
			ol.pending = append(ol.pending, FrameBits(m.Encode())...)
			return nil
		}
	}
	return fmt.Errorf("msgpass: no link %d→%d", p.ID, to)
}

func dataField(word uint64, slot int) (bit, seq uint64) {
	return (word >> (2*slot + 1)) & 1, (word >> (2 * slot)) & 1
}

// progress reports whether node me can make any pump progress.
func (b *BitNet) progress(me int) bool {
	nd := b.nodes[me]
	if len(nd.inbox) > 0 {
		return true
	}
	for _, ol := range nd.outs {
		if ol.await {
			w, _ := b.mem.Peek(ol.to).(uint64)
			if (w>>ol.ackBit)&1 == ol.seq {
				return true
			}
		} else if len(ol.pending) > 0 {
			return true
		}
	}
	for _, il := range nd.ins {
		w, _ := b.mem.Peek(il.from).(uint64)
		if _, s := dataField(w, il.dataSlot); s != il.lastSeq {
			return true
		}
	}
	return false
}

// pump performs every currently possible link action for node p.ID:
// confirm acknowledgements, transmit next bits, consume incoming bits,
// and acknowledge them — ending with at most one write of the node's own
// register (all its fields are updated in a single register operation).
func (b *BitNet) pump(p *sched.Proc) error {
	me := p.ID
	nd := b.nodes[me]
	pm := memory.Bind(p, b.mem)

	newWord := nd.word
	dirty := false

	for _, ol := range nd.outs {
		if ol.await {
			// Check the receiver's acknowledgement field (paid read),
			// but only when it can have flipped.
			w, _ := b.mem.Peek(ol.to).(uint64)
			if (w>>ol.ackBit)&1 != ol.seq {
				continue
			}
			word, ok := pm.Read(ol.to).(uint64)
			if !ok {
				return fmt.Errorf("msgpass: register %d holds non-word", ol.to)
			}
			if (word>>ol.ackBit)&1 == ol.seq {
				ol.await = false
			}
		}
		if !ol.await && len(ol.pending) > 0 {
			bit := ol.pending[0]
			ol.pending = ol.pending[1:]
			ol.seq = 1 - ol.seq
			field := ol.seq | (bit << 1)
			newWord = (newWord &^ (3 << (2 * ol.slot))) | (field << (2 * ol.slot))
			ol.await = true
			dirty = true
		}
	}

	for _, il := range nd.ins {
		w, _ := b.mem.Peek(il.from).(uint64)
		if _, s := dataField(w, il.dataSlot); s == il.lastSeq {
			continue
		}
		word, ok := pm.Read(il.from).(uint64)
		if !ok {
			return fmt.Errorf("msgpass: register %d holds non-word", il.from)
		}
		bit, s := dataField(word, il.dataSlot)
		if s == il.lastSeq {
			continue
		}
		il.lastSeq = s
		newWord = (newWord &^ (1 << il.ackBit)) | (s << il.ackBit)
		dirty = true
		b.Bits++
		payload, err := il.asm.Push(bit)
		if err != nil {
			return err
		}
		if payload != nil {
			m, err := DecodeMessage(payload)
			if err != nil {
				return err
			}
			nd.inbox = append(nd.inbox, m)
		}
	}

	if dirty {
		nd.word = newWord
		if err := pm.Write(newWord); err != nil {
			return err
		}
	}
	return nil
}

// RecvAny implements LinkLayer: it pumps the node's links until a full
// message has been assembled.
func (b *BitNet) RecvAny(p *sched.Proc) (*Message, error) {
	me := p.ID
	nd := b.nodes[me]
	for {
		if len(nd.inbox) > 0 {
			m := nd.inbox[0]
			nd.inbox = nd.inbox[1:]
			return m, nil
		}
		p.StepWhen(func() bool { return b.progress(me) })
		if err := b.pump(p); err != nil {
			return nil, err
		}
	}
}
