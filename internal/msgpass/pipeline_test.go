package msgpass

import (
	"testing"

	"repro/internal/sched"
)

func runStage(t *testing.T, cfg PipelineConfig) *PipelineResult {
	t.Helper()
	pr, err := RunPipeline(cfg)
	if err != nil {
		t.Fatalf("stage %v: %v", cfg.Stage, err)
	}
	for i, e := range pr.Res.Errs {
		if e != nil {
			t.Fatalf("stage %v: node %d: %v", cfg.Stage, i, e)
		}
	}
	if err := pr.Check(cfg.Inputs, cfg.Rounds); err != nil {
		t.Fatalf("stage %v: %v", cfg.Stage, err)
	}
	return pr
}

func mixedInputs(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 2)
	}
	return xs
}

func TestStageDirect(t *testing.T) {
	for _, scheduler := range []sched.Scheduler{&sched.RoundRobin{}, sched.NewRandom(3)} {
		pr := runStage(t, PipelineConfig{
			Stage: StageDirect, N: 5, T: 2, Rounds: 5,
			Inputs: mixedInputs(5), Scheduler: scheduler,
		})
		for i, d := range pr.Decided {
			if !d {
				t.Fatalf("process %d undecided", i)
			}
		}
	}
}

func TestStageDirectValidity(t *testing.T) {
	for _, x := range []int64{0, 1} {
		inputs := []int64{x, x, x, x}
		pr := runStage(t, PipelineConfig{
			Stage: StageDirect, N: 4, T: 1, Rounds: 4,
			Inputs: inputs, Scheduler: &sched.RoundRobin{},
		})
		for i, out := range pr.Outs {
			if int64(out.Num) != x*int64(out.Den) {
				t.Fatalf("validity: input %d, process %d decided %v", x, i, out)
			}
		}
	}
}

func TestStageDirectUnderCrashes(t *testing.T) {
	// t = 2 crashes at assorted points: survivors still decide within ε.
	n, tt := 5, 2
	for seed := int64(0); seed < 10; seed++ {
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), map[int]int{
			1: int(seed * 3), 3: int(seed * 7),
		})
		pr, err := RunPipeline(PipelineConfig{
			Stage: StageDirect, N: n, T: tt, Rounds: 4,
			Inputs: mixedInputs(n), Scheduler: scheduler,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Check(mixedInputs(n), 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, i := range []int{0, 2, 4} {
			if !pr.Decided[i] {
				t.Fatalf("seed %d: correct process %d undecided", seed, i)
			}
		}
	}
}

func TestStageABDComplete(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pr := runStage(t, PipelineConfig{
			Stage: StageABDComplete, N: 4, T: 1, Rounds: 4,
			Inputs: mixedInputs(4), Seed: seed, Scheduler: sched.NewRandom(seed),
		})
		if !pr.Res.Deadlocked {
			t.Fatal("expected quiescence (servers parked)")
		}
		if pr.MsgsSent == 0 {
			t.Fatal("no messages sent")
		}
		for i, d := range pr.Decided {
			if !d {
				t.Fatalf("node %d undecided", i)
			}
		}
	}
}

func TestStageABDCompleteWriteBack(t *testing.T) {
	withWB := runStage(t, PipelineConfig{
		Stage: StageABDComplete, N: 4, T: 1, Rounds: 3,
		Inputs: mixedInputs(4), WriteBack: true, Scheduler: sched.NewRandom(1),
	})
	withoutWB := runStage(t, PipelineConfig{
		Stage: StageABDComplete, N: 4, T: 1, Rounds: 3,
		Inputs: mixedInputs(4), WriteBack: false, Scheduler: sched.NewRandom(1),
	})
	if withWB.MsgsSent <= withoutWB.MsgsSent {
		t.Errorf("write-back ablation: %d msgs with, %d without", withWB.MsgsSent, withoutWB.MsgsSent)
	}
}

func TestStageABDCompleteUnderCrashes(t *testing.T) {
	n, tt := 4, 1
	for seed := int64(0); seed < 6; seed++ {
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), map[int]int{2: int(seed * 11)})
		pr, err := RunPipeline(PipelineConfig{
			Stage: StageABDComplete, N: n, T: tt, Rounds: 3,
			Inputs: mixedInputs(n), Seed: seed, Scheduler: scheduler,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Check(mixedInputs(n), 3); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, i := range []int{0, 1, 3} {
			if !pr.Decided[i] {
				t.Fatalf("seed %d: correct node %d undecided", seed, i)
			}
		}
	}
}

func TestStageABDRing(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pr := runStage(t, PipelineConfig{
			Stage: StageABDRing, N: 5, T: 2, Rounds: 3,
			Inputs: mixedInputs(5), Seed: seed, Scheduler: sched.NewRandom(seed),
		})
		for i, d := range pr.Decided {
			if !d {
				t.Fatalf("node %d undecided", i)
			}
		}
	}
}

func TestStageABDRingUnderCrashes(t *testing.T) {
	// Up to t = 2 nodes crash; flooding over the (t+1)-connected ring
	// still delivers and quorums of size n-t still form.
	n, tt := 5, 2
	for seed := int64(0); seed < 6; seed++ {
		scheduler := sched.NewCrashAt(sched.NewRandom(seed), map[int]int{
			1: int(seed * 5), 4: int(seed*2) + 3,
		})
		pr, err := RunPipeline(PipelineConfig{
			Stage: StageABDRing, N: n, T: tt, Rounds: 3,
			Inputs: mixedInputs(n), Seed: seed, Scheduler: scheduler,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Check(mixedInputs(n), 3); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, i := range []int{0, 2, 3} {
			if !pr.Decided[i] {
				t.Fatalf("seed %d: correct node %d undecided", seed, i)
			}
		}
	}
}

func TestStageBitRing(t *testing.T) {
	// The full Theorem 1.3 endpoint: coordination over registers of
	// exactly 3(t+1) bits.
	pr := runStage(t, PipelineConfig{
		Stage: StageBitRing, N: 3, T: 1, Rounds: 2,
		Inputs: []int64{0, 1, 1}, Scheduler: sched.NewRandom(7),
	})
	if pr.RegisterBits != 6 {
		t.Fatalf("register bits = %d, want 3(t+1) = 6", pr.RegisterBits)
	}
	if pr.BitsDelivered == 0 {
		t.Fatal("no link bits delivered")
	}
	for i, d := range pr.Decided {
		if !d {
			t.Fatalf("node %d undecided", i)
		}
	}
}

func TestStageBitRingFourNodes(t *testing.T) {
	pr := runStage(t, PipelineConfig{
		Stage: StageBitRing, N: 4, T: 1, Rounds: 2,
		Inputs: mixedInputs(4), Scheduler: sched.NewRandom(3),
	})
	if pr.RegisterBits != 6 {
		t.Fatalf("register bits = %d, want 6", pr.RegisterBits)
	}
}

func TestStageBitRingUnderCrash(t *testing.T) {
	n, tt := 3, 1
	inputs := []int64{1, 0, 1}
	scheduler := sched.NewCrashAt(sched.NewRandom(2), map[int]int{1: 40})
	pr, err := RunPipeline(PipelineConfig{
		Stage: StageBitRing, N: n, T: tt, Rounds: 2,
		Inputs: inputs, Scheduler: scheduler,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Check(inputs, 2); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if !pr.Decided[i] {
			t.Fatalf("correct node %d undecided", i)
		}
	}
}

func TestAllStagesAgreeOnSemantics(t *testing.T) {
	// The same algorithm runs on all four stores; under lockstep
	// schedules every stage must produce valid ε-agreement outputs for
	// the same inputs.
	inputs := []int64{0, 1, 0}
	for _, stage := range []PipelineStage{StageDirect, StageABDComplete, StageABDRing, StageBitRing} {
		pr := runStage(t, PipelineConfig{
			Stage: stage, N: 3, T: 1, Rounds: 2,
			Inputs: inputs, Scheduler: &sched.RoundRobin{},
		})
		for i, d := range pr.Decided {
			if !d {
				t.Fatalf("stage %v: node %d undecided", stage, i)
			}
		}
	}
}
