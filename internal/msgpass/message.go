package msgpass

import (
	"encoding/binary"
	"fmt"
)

// Kind enumerates the message types of the ABD register emulation.
type Kind uint8

// Message kinds.
const (
	KWrite Kind = iota + 1
	KWriteAck
	KRead
	KReadReply
	KWriteBack
	KWriteBackAck
)

// Message is one message of the emulation. Hist carries a register value:
// the history of estimate numerators written so far (the algorithm of
// §6 runs full-information over unbounded registers; boundedness enters
// only through the link encoding of stage B).
type Message struct {
	// UID identifies the message network-wide (origin node and sequence
	// number); flooding over the t-augmented ring dedupes on it.
	UID uint64
	// Src and Dst are the endpoints (Dst is the final destination; the
	// message may traverse intermediate nodes).
	Src, Dst int
	Kind     Kind
	// Reg is the register index (its single writer's id).
	Reg int
	// Ts is the writer's timestamp.
	Ts int64
	// Rid matches replies to the client operation that issued the request.
	Rid int64
	// Hist is the register value (nil when absent).
	Hist []int64
}

// Encode serializes the message into a compact byte string, the payload
// the alternating-bit links transmit bit by bit.
func (m *Message) Encode() []byte {
	buf := make([]byte, 0, 32+8*len(m.Hist))
	buf = binary.AppendUvarint(buf, m.UID)
	buf = binary.AppendUvarint(buf, uint64(m.Src))
	buf = binary.AppendUvarint(buf, uint64(m.Dst))
	buf = append(buf, byte(m.Kind))
	buf = binary.AppendUvarint(buf, uint64(m.Reg))
	buf = binary.AppendVarint(buf, m.Ts)
	buf = binary.AppendVarint(buf, m.Rid)
	buf = binary.AppendUvarint(buf, uint64(len(m.Hist)))
	for _, v := range m.Hist {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// DecodeMessage parses a byte string produced by Encode.
func DecodeMessage(buf []byte) (*Message, error) {
	m := &Message{}
	pos := 0
	uv := func() (uint64, error) {
		v, k := binary.Uvarint(buf[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("msgpass: truncated message")
		}
		pos += k
		return v, nil
	}
	sv := func() (int64, error) {
		v, k := binary.Varint(buf[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("msgpass: truncated message")
		}
		pos += k
		return v, nil
	}
	var err error
	if m.UID, err = uv(); err != nil {
		return nil, err
	}
	v, err := uv()
	if err != nil {
		return nil, err
	}
	m.Src = int(v)
	if v, err = uv(); err != nil {
		return nil, err
	}
	m.Dst = int(v)
	if pos >= len(buf) {
		return nil, fmt.Errorf("msgpass: truncated message")
	}
	m.Kind = Kind(buf[pos])
	pos++
	if v, err = uv(); err != nil {
		return nil, err
	}
	m.Reg = int(v)
	if m.Ts, err = sv(); err != nil {
		return nil, err
	}
	if m.Rid, err = sv(); err != nil {
		return nil, err
	}
	count, err := uv()
	if err != nil {
		return nil, err
	}
	if count > 0 {
		m.Hist = make([]int64, count)
		for i := range m.Hist {
			if m.Hist[i], err = sv(); err != nil {
				return nil, err
			}
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("msgpass: %d trailing bytes", len(buf)-pos)
	}
	return m, nil
}

// FrameBits converts a payload to the paper's link framing: the data bits
// b_1..b_k (LSB-first per byte) interleaved with separators — a 0 after
// every data bit except the last, which is followed by a 1 marking the
// end of the message (§6: "m is encoded by inserting 0 between each bit
// and adding a 1 at the end").
func FrameBits(payload []byte) []uint64 {
	var bits []uint64
	total := len(payload) * 8
	idx := 0
	for _, b := range payload {
		for j := 0; j < 8; j++ {
			bits = append(bits, uint64((b>>j)&1))
			idx++
			if idx == total {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
	}
	return bits
}

// BitAssembler reconstructs payloads from a framed bit stream.
type BitAssembler struct {
	data    []uint64
	haveBit bool
	pending uint64
}

// Push consumes one link bit and returns a completed payload when the
// end-of-message separator arrives.
func (a *BitAssembler) Push(bit uint64) ([]byte, error) {
	if !a.haveBit {
		a.pending = bit
		a.haveBit = true
		return nil, nil
	}
	a.haveBit = false
	a.data = append(a.data, a.pending)
	if bit == 0 {
		return nil, nil
	}
	// End of message: pack bits into bytes.
	if len(a.data)%8 != 0 {
		return nil, fmt.Errorf("msgpass: framed message of %d bits not byte-aligned", len(a.data))
	}
	payload := make([]byte, len(a.data)/8)
	for i, b := range a.data {
		payload[i/8] |= byte(b) << (i % 8)
	}
	a.data = nil
	return payload, nil
}
