// Package msgpass implements §6 of the paper — the universality of
// O(t)-bit registers when a minority of processes may crash — by building
// every stage of the Theorem 1.3 pipeline:
//
//  1. an asynchronous reliable-FIFO message-passing substrate with crash
//     failures, over an arbitrary directed topology;
//  2. the ABD emulation of SWMR shared registers on top of message
//     passing (Attiya-Bar-Noy-Dolev [4]), correct for t < n/2;
//  3. the t-augmented ring of Figure 3, a (t+1)-connected sparse network,
//     with flooding-based forwarding between non-neighbours;
//  4. the alternating-bit protocol (Bartlett-Scantlebury-Wilkinson [9],
//     Lynch [31]) implementing every directed ring link on register
//     fields of 2+1 bits, so that each process's whole communication
//     state fits in one SWMR register of 3(t+1) bits;
//  5. a t-resilient ε-agreement algorithm expressed against an abstract
//     register Store, so the same algorithm runs unchanged on plain
//     shared memory (stage A), ABD over the complete network (A′), ABD
//     over the t-augmented ring (A″), and ABD over alternating-bit ring
//     links with 3(t+1)-bit registers (B).
package msgpass

import "fmt"

// Topology is a directed communication graph over n nodes.
type Topology interface {
	N() int
	// Succ returns node i's out-neighbours in ascending order.
	Succ(i int) []int
	// Pred returns node i's in-neighbours in ascending order.
	Pred(i int) []int
}

// Complete is the complete network used by the plain message-passing
// model (§6 phase 1): every ordered pair is a link.
type Complete struct{ Nodes int }

// N implements Topology.
func (c Complete) N() int { return c.Nodes }

// Succ implements Topology.
func (c Complete) Succ(i int) []int { return allBut(c.Nodes, i) }

// Pred implements Topology.
func (c Complete) Pred(i int) []int { return allBut(c.Nodes, i) }

func allBut(n, i int) []int {
	out := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// TAugmentedRing is the sparse network of Figure 3: nodes 0..n-1 form a
// directed cycle and every node has t additional out-neighbours, so node
// i's successors are i+1, ..., i+t+1 (mod n). The graph is
// (t+1)-connected: removing any t nodes leaves it strongly connected,
// which is what lets the t-resilient message-passing model run on it
// (§6 phase 2).
type TAugmentedRing struct {
	Nodes int
	T     int
}

// NewTAugmentedRing validates the parameters (t < n/2 and at least one
// extra node so the ring is simple).
func NewTAugmentedRing(n, t int) (TAugmentedRing, error) {
	if n < 3 {
		return TAugmentedRing{}, fmt.Errorf("msgpass: ring needs n ≥ 3, got %d", n)
	}
	if t < 1 || 2*t >= n {
		return TAugmentedRing{}, fmt.Errorf("msgpass: need 1 ≤ t < n/2, got n=%d t=%d", n, t)
	}
	if t+1 >= n {
		return TAugmentedRing{}, fmt.Errorf("msgpass: degree t+1 = %d too large for n = %d", t+1, n)
	}
	return TAugmentedRing{Nodes: n, T: t}, nil
}

// N implements Topology.
func (r TAugmentedRing) N() int { return r.Nodes }

// Succ implements Topology.
func (r TAugmentedRing) Succ(i int) []int {
	out := make([]int, 0, r.T+1)
	for d := 1; d <= r.T+1; d++ {
		out = append(out, (i+d)%r.Nodes)
	}
	return sortedUnique(out)
}

// Pred implements Topology.
func (r TAugmentedRing) Pred(i int) []int {
	out := make([]int, 0, r.T+1)
	for d := 1; d <= r.T+1; d++ {
		out = append(out, (i-d+r.Nodes)%r.Nodes)
	}
	return sortedUnique(out)
}

func sortedUnique(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for v := 0; ; v++ {
		done := true
		for _, x := range xs {
			if x >= v {
				done = false
			}
			if x == v && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		if done {
			break
		}
	}
	return out
}

// StronglyConnectedWithout reports whether the topology restricted to the
// nodes outside removed is strongly connected. Used to verify
// (t+1)-connectivity by exhausting all subsets of at most t removals.
func StronglyConnectedWithout(topo Topology, removed map[int]bool) bool {
	n := topo.N()
	var nodes []int
	for i := 0; i < n; i++ {
		if !removed[i] {
			nodes = append(nodes, i)
		}
	}
	if len(nodes) == 0 {
		return true
	}
	reach := func(start int, succ func(int) []int) int {
		seen := map[int]bool{start: true}
		queue := []int{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, j := range succ(cur) {
				if !removed[j] && !seen[j] {
					seen[j] = true
					queue = append(queue, j)
				}
			}
		}
		return len(seen)
	}
	fwd := reach(nodes[0], topo.Succ)
	bwd := reach(nodes[0], topo.Pred)
	return fwd == len(nodes) && bwd == len(nodes)
}

// IsKConnected reports whether the topology stays strongly connected
// after removing any set of fewer than k nodes (i.e. vertex connectivity
// ≥ k), by brute force over removal subsets — fine for the small n of
// the experiments.
func IsKConnected(topo Topology, k int) bool {
	n := topo.N()
	var rec func(start, left int, removed map[int]bool) bool
	rec = func(start, left int, removed map[int]bool) bool {
		if !StronglyConnectedWithout(topo, removed) {
			return false
		}
		if left == 0 {
			return true
		}
		for i := start; i < n; i++ {
			removed[i] = true
			ok := rec(i+1, left-1, removed)
			delete(removed, i)
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, k-1, map[int]bool{})
}
