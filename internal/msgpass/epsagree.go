package msgpass

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/memory"
	"repro/internal/sched"
)

// Store is the abstract register interface the t-resilient algorithm A is
// written against: one full-information SWMR register per process holding
// the history of estimate numerators. Implementations realize the four
// pipeline stages of Theorem 1.3.
type Store interface {
	// N returns the number of processes/registers.
	N() int
	// WriteOwn replaces this process's register content.
	WriteOwn(hist []int64) error
	// ReadReg returns the content of register j (nil if never written).
	ReadReg(j int) ([]int64, error)
}

// DirectStore is stage A: plain unbounded shared memory.
type DirectStore struct {
	PM memory.Mem
}

// N implements Store.
func (s DirectStore) N() int { return s.PM.S.N() }

// WriteOwn implements Store.
func (s DirectStore) WriteOwn(hist []int64) error {
	return s.PM.Write(append([]int64(nil), hist...))
}

// ReadReg implements Store.
func (s DirectStore) ReadReg(j int) ([]int64, error) {
	v := s.PM.Read(j)
	if v == nil {
		return nil, nil
	}
	h, ok := v.([]int64)
	if !ok {
		return nil, fmt.Errorf("msgpass: register %d holds %T", j, v)
	}
	return h, nil
}

// NodeStore adapts a message-passing Node (stages A′, A″, B) to Store.
type NodeStore struct {
	Node *Node
}

// N implements Store.
func (s NodeStore) N() int { return s.Node.n() }

// WriteOwn implements Store.
func (s NodeStore) WriteOwn(hist []int64) error { return s.Node.ABDWrite(hist) }

// ReadReg implements Store.
func (s NodeStore) ReadReg(j int) ([]int64, error) {
	if j == s.Node.P.ID {
		return s.Node.copies[j].Hist, nil
	}
	return s.Node.ABDRead(j)
}

// EpsAgree is the t-resilient approximate-agreement algorithm A of the
// pipeline (the solvable task of Lemma 2.2, here in its t-resilient
// waiting form valid for t < n/2): in round r each process appends its
// estimate to its register, waits until n-t registers hold a round-r
// value, and adopts the midpoint of the observed round-r values. Any two
// round-r read sets of size n-t intersect (2(n-t) > n), so the estimate
// spread halves every round; after `rounds` rounds the decision solves
// binary 1/2^rounds-agreement. Estimates are exact: the numerator over
// denominator 2^r.
func EpsAgree(st Store, t, rounds int, input int64) (agreement.Decision, error) {
	if input != 0 && input != 1 {
		return agreement.Decision{}, fmt.Errorf("msgpass: input %d not binary", input)
	}
	n := st.N()
	est := input
	hist := make([]int64, 0, rounds)
	for r := 1; r <= rounds; r++ {
		hist = append(hist, est)
		if err := st.WriteOwn(hist); err != nil {
			return agreement.Decision{}, err
		}
		var vals []int64
		for {
			vals = vals[:0]
			for j := 0; j < n; j++ {
				h, err := st.ReadReg(j)
				if err != nil {
					return agreement.Decision{}, err
				}
				if len(h) >= r {
					vals = append(vals, h[r-1])
				}
			}
			if len(vals) >= n-t {
				break
			}
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		est = lo + hi // denominator doubles: (lo+hi)/2 over 2^r
	}
	return agreement.Dec(int(est), 1<<rounds), nil
}

// PipelineStage selects which realization of the register store runs.
type PipelineStage int

// The four stages of Theorem 1.3 (DESIGN.md E5).
const (
	StageDirect      PipelineStage = iota + 1 // A: unbounded shared memory
	StageABDComplete                          // A′: ABD over the complete network
	StageABDRing                              // A″: ABD over the t-augmented ring
	StageBitRing                              // B: ring links over 3(t+1)-bit registers
)

// String names the stage.
func (s PipelineStage) String() string {
	switch s {
	case StageDirect:
		return "A:shared-memory"
	case StageABDComplete:
		return "A':abd-complete"
	case StageABDRing:
		return "A'':abd-ring"
	case StageBitRing:
		return "B:alt-bit-ring"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// PipelineConfig configures one pipeline run.
type PipelineConfig struct {
	Stage     PipelineStage
	N, T      int
	Rounds    int
	Inputs    []int64
	WriteBack bool
	Seed      int64 // delivery adversary for queue networks
	Scheduler sched.Scheduler
	MaxSteps  int
}

// PipelineResult reports one pipeline run.
type PipelineResult struct {
	Outs    []agreement.Decision
	Decided []bool
	Res     *sched.Result
	// RegisterBits is the width of the coordination registers used
	// (0 = unbounded, for stages A/A′/A″ whose boundedness is not the
	// point; 3(t+1) for stage B).
	RegisterBits int
	// MsgsSent counts link-level sends (queue stages).
	MsgsSent int
	// BitsDelivered counts link bits (stage B).
	BitsDelivered int
}

// Check validates the outputs of the correct processes against binary
// ε-agreement with ε = 1/2^rounds.
func (pr *PipelineResult) Check(inputs []int64, rounds int) error {
	ins := make([]uint64, len(inputs))
	for i, v := range inputs {
		ins[i] = uint64(v)
	}
	return agreement.CheckBinaryEps(ins, pr.Outs, pr.Decided, 1, 1<<rounds)
}

// RunPipeline executes one stage of the Theorem 1.3 pipeline.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("msgpass: %d inputs for n=%d", len(cfg.Inputs), cfg.N)
	}
	if cfg.Stage != StageDirect && (cfg.T < 1 || 2*cfg.T >= cfg.N) {
		return nil, fmt.Errorf("msgpass: stage %v needs 1 ≤ t < n/2", cfg.Stage)
	}
	pr := &PipelineResult{
		Outs:    make([]agreement.Decision, cfg.N),
		Decided: make([]bool, cfg.N),
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4 << 20
	}

	var procs []sched.ProcFunc
	switch cfg.Stage {
	case StageDirect:
		mem := memory.New(cfg.N, 0)
		procs = make([]sched.ProcFunc, cfg.N)
		for i := 0; i < cfg.N; i++ {
			procs[i] = func(p *sched.Proc) error {
				st := DirectStore{PM: memory.Bind(p, mem)}
				d, err := EpsAgree(st, cfg.T, cfg.Rounds, cfg.Inputs[p.ID])
				if err != nil {
					return err
				}
				pr.Outs[p.ID] = d
				pr.Decided[p.ID] = true
				return nil
			}
		}
		res, err := sched.Run(sched.Config{Scheduler: cfg.Scheduler, MaxSteps: maxSteps}, procs)
		if err != nil {
			return nil, err
		}
		pr.Res = res
		return pr, nil

	case StageABDComplete, StageABDRing, StageBitRing:
		var topo Topology
		if cfg.Stage == StageABDComplete {
			topo = Complete{Nodes: cfg.N}
		} else {
			ring, err := NewTAugmentedRing(cfg.N, cfg.T)
			if err != nil {
				return nil, err
			}
			topo = ring
		}
		var ll LinkLayer
		var qn *QueueNet
		var bn *BitNet
		if cfg.Stage == StageBitRing {
			bn = NewBitNet(topo)
			ll = bn
			pr.RegisterBits = bn.RegisterBits()
		} else {
			qn = NewQueueNet(topo, cfg.Seed)
			ll = qn
		}
		procs = make([]sched.ProcFunc, cfg.N)
		for i := 0; i < cfg.N; i++ {
			procs[i] = func(p *sched.Proc) error {
				nd := NewNode(p, ll, cfg.T, cfg.WriteBack)
				d, err := EpsAgree(NodeStore{Node: nd}, cfg.T, cfg.Rounds, cfg.Inputs[p.ID])
				if err != nil {
					return nd.Errf(err)
				}
				pr.Outs[p.ID] = d
				pr.Decided[p.ID] = true
				// Keep serving until global quiescence (see ServeForever).
				return nd.Errf(nd.ServeForever())
			}
		}
		res, err := sched.Run(sched.Config{Scheduler: cfg.Scheduler, MaxSteps: maxSteps}, procs)
		if err != nil {
			return nil, err
		}
		pr.Res = res
		if qn != nil {
			pr.MsgsSent = qn.Sent
		}
		if bn != nil {
			pr.BitsDelivered = bn.Bits
		}
		if res.BudgetExceeded {
			return pr, fmt.Errorf("msgpass: stage %v exceeded step budget", cfg.Stage)
		}
		return pr, nil
	default:
		return nil, fmt.Errorf("msgpass: unknown stage %v", cfg.Stage)
	}
}
