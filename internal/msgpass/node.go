package msgpass

import (
	"fmt"

	"repro/internal/sched"
)

// Node is the per-process protocol stack above a LinkLayer: flooding
// router over the (t+1)-connected topology, ABD register-emulation
// server, and ABD client operations. One Node lives inside one scheduled
// process.
type Node struct {
	P  *sched.Proc
	LL LinkLayer
	// T is the resilience bound; quorums have size n-T.
	T int
	// WriteBack enables the read write-back phase of ABD (full
	// atomicity). The §6 pipeline only needs regular registers for the
	// full-information algorithm, so this is an ablation knob.
	WriteBack bool

	seen   map[uint64]bool
	seq    uint64
	copies []regCopy
	ts     int64
	rid    int64
}

type regCopy struct {
	Ts   int64
	Hist []int64
}

// NewNode builds the stack for process p.
func NewNode(p *sched.Proc, ll LinkLayer, t int, writeBack bool) *Node {
	return &Node{
		P:         p,
		LL:        ll,
		T:         t,
		WriteBack: writeBack,
		seen:      make(map[uint64]bool),
		copies:    make([]regCopy, ll.Topo().N()),
	}
}

func (nd *Node) n() int { return nd.LL.Topo().N() }

// quorum returns the reply threshold n-t (the sender itself included).
func (nd *Node) quorum() int { return nd.n() - nd.T }

func (nd *Node) newUID() uint64 {
	nd.seq++
	return uint64(nd.P.ID)<<32 | nd.seq
}

// forward sends m towards m.Dst: directly when the link exists, and by
// flooding all successors otherwise (§6 phase 2); UID-deduplication at
// every node keeps the flood finite.
func (nd *Node) forward(m *Message) error {
	succ := nd.LL.Topo().Succ(nd.P.ID)
	if contains(succ, m.Dst) {
		return nd.LL.Send(nd.P, m.Dst, m)
	}
	for _, j := range succ {
		if err := nd.LL.Send(nd.P, j, m); err != nil {
			return err
		}
	}
	return nil
}

// sendTo originates a fresh message to dst.
func (nd *Node) sendTo(dst int, m Message) error {
	m.UID = nd.newUID()
	m.Src = nd.P.ID
	m.Dst = dst
	nd.seen[m.UID] = true
	return nd.forward(&m)
}

// broadcast originates m to every other node.
func (nd *Node) broadcast(m Message) error {
	for j := 0; j < nd.n(); j++ {
		if j == nd.P.ID {
			continue
		}
		if err := nd.sendTo(j, m); err != nil {
			return err
		}
	}
	return nil
}

// recvApp receives, dedupes, forwards transit messages, serves register
// requests, and returns the next reply addressed to this node.
func (nd *Node) recvApp() (*Message, error) {
	for {
		m, err := nd.LL.RecvAny(nd.P)
		if err != nil {
			return nil, err
		}
		if nd.seen[m.UID] {
			continue
		}
		nd.seen[m.UID] = true
		if m.Dst != nd.P.ID {
			if err := nd.forward(m); err != nil {
				return nil, err
			}
			continue
		}
		switch m.Kind {
		case KWrite, KWriteBack:
			if m.Ts > nd.copies[m.Reg].Ts {
				nd.copies[m.Reg] = regCopy{Ts: m.Ts, Hist: m.Hist}
			}
			ack := KWriteAck
			if m.Kind == KWriteBack {
				ack = KWriteBackAck
			}
			if err := nd.sendTo(m.Src, Message{Kind: ack, Reg: m.Reg, Rid: m.Rid}); err != nil {
				return nil, err
			}
		case KRead:
			c := nd.copies[m.Reg]
			if err := nd.sendTo(m.Src, Message{
				Kind: KReadReply, Reg: m.Reg, Rid: m.Rid, Ts: c.Ts, Hist: c.Hist,
			}); err != nil {
				return nil, err
			}
		default:
			return m, nil
		}
	}
}

// awaitReplies consumes replies until count matching (kind, rid) arrive,
// returning them. Server requests arriving meanwhile are handled inside
// recvApp; stale replies are dropped.
func (nd *Node) awaitReplies(kind Kind, rid int64, count int) ([]*Message, error) {
	var got []*Message
	for len(got) < count {
		m, err := nd.recvApp()
		if err != nil {
			return nil, err
		}
		if m.Kind == kind && m.Rid == rid {
			got = append(got, m)
		}
	}
	return got, nil
}

// ABDWrite performs the ABD write of value hist into this node's own
// register: timestamp it, broadcast, await n-t-1 remote acknowledgements
// (plus itself).
func (nd *Node) ABDWrite(hist []int64) error {
	nd.ts++
	nd.rid++
	cp := append([]int64(nil), hist...)
	nd.copies[nd.P.ID] = regCopy{Ts: nd.ts, Hist: cp}
	if err := nd.broadcast(Message{Kind: KWrite, Reg: nd.P.ID, Ts: nd.ts, Rid: nd.rid, Hist: cp}); err != nil {
		return err
	}
	_, err := nd.awaitReplies(KWriteAck, nd.rid, nd.quorum()-1)
	return err
}

// ABDRead performs the ABD read of register reg: query all, take the
// highest-timestamped of n-t replies (itself included), optionally
// write it back, and return it.
func (nd *Node) ABDRead(reg int) ([]int64, error) {
	nd.rid++
	if err := nd.broadcast(Message{Kind: KRead, Reg: reg, Rid: nd.rid}); err != nil {
		return nil, err
	}
	replies, err := nd.awaitReplies(KReadReply, nd.rid, nd.quorum()-1)
	if err != nil {
		return nil, err
	}
	best := nd.copies[reg]
	for _, r := range replies {
		if r.Ts > best.Ts {
			best = regCopy{Ts: r.Ts, Hist: r.Hist}
		}
	}
	if best.Ts > nd.copies[reg].Ts {
		nd.copies[reg] = best
	}
	if nd.WriteBack && best.Ts > 0 {
		nd.rid++
		if err := nd.broadcast(Message{Kind: KWriteBack, Reg: reg, Ts: best.Ts, Rid: nd.rid, Hist: best.Hist}); err != nil {
			return nil, err
		}
		if _, err := nd.awaitReplies(KWriteBackAck, nd.rid, nd.quorum()-1); err != nil {
			return nil, err
		}
	}
	return best.Hist, nil
}

// ServeForever keeps the node serving register requests after its own
// computation has decided. The execution reaches quiescence (every node
// parked on an unsatisfiable receive) when all correct nodes are done —
// the runner reports it as Result.Deadlocked, which the pipeline treats
// as normal termination.
func (nd *Node) ServeForever() error {
	for {
		if _, err := nd.recvApp(); err != nil {
			return err
		}
	}
}

// Errf wraps an error with the node id.
func (nd *Node) Errf(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("node %d: %w", nd.P.ID, err)
}
