package msgpass

import (
	"testing"
	"testing/quick"
)

func TestMessageEncodeDecode(t *testing.T) {
	m := &Message{
		UID: 1<<32 | 7, Src: 2, Dst: 0, Kind: KReadReply,
		Reg: 1, Ts: -3, Rid: 42, Hist: []int64{0, 1, -5, 1 << 40},
	}
	got, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != m.UID || got.Src != m.Src || got.Dst != m.Dst ||
		got.Kind != m.Kind || got.Reg != m.Reg || got.Ts != m.Ts || got.Rid != m.Rid {
		t.Fatalf("got %+v, want %+v", got, m)
	}
	if len(got.Hist) != len(m.Hist) {
		t.Fatalf("hist = %v", got.Hist)
	}
	for i := range m.Hist {
		if got.Hist[i] != m.Hist[i] {
			t.Fatalf("hist[%d] = %d, want %d", i, got.Hist[i], m.Hist[i])
		}
	}
}

func TestMessageEncodeDecodeQuick(t *testing.T) {
	f := func(uid uint64, src, dst uint8, kind uint8, reg uint8, ts, rid int64, hist []int64) bool {
		m := &Message{
			UID: uid, Src: int(src), Dst: int(dst), Kind: Kind(kind%6 + 1),
			Reg: int(reg), Ts: ts, Rid: rid, Hist: hist,
		}
		got, err := DecodeMessage(m.Encode())
		if err != nil {
			return false
		}
		if got.UID != m.UID || got.Kind != m.Kind || got.Ts != m.Ts || len(got.Hist) != len(m.Hist) {
			return false
		}
		for i := range m.Hist {
			if got.Hist[i] != m.Hist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMessageRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeMessage([]byte{0x80}); err == nil {
		t.Error("truncated varint accepted")
	}
	m := &Message{Kind: KRead, Hist: []int64{1}}
	buf := m.Encode()
	if _, err := DecodeMessage(append(buf, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestFrameBitsStructure(t *testing.T) {
	payload := []byte{0b10110010}
	bits := FrameBits(payload)
	if len(bits) != 16 {
		t.Fatalf("frame length = %d, want 16", len(bits))
	}
	// Data bits at even indices, LSB first.
	wantData := []uint64{0, 1, 0, 0, 1, 1, 0, 1}
	for i, w := range wantData {
		if bits[2*i] != w {
			t.Errorf("data bit %d = %d, want %d", i, bits[2*i], w)
		}
	}
	// Separators 0 except the terminal 1.
	for i := 0; i < 7; i++ {
		if bits[2*i+1] != 0 {
			t.Errorf("separator %d = %d, want 0", i, bits[2*i+1])
		}
	}
	if bits[15] != 1 {
		t.Error("terminal separator not 1")
	}
}

func TestBitAssemblerRoundTrip(t *testing.T) {
	var asm BitAssembler
	payloads := [][]byte{{0xAB}, {0x00, 0xFF, 0x13}, {1, 2, 3, 4, 5}}
	var stream []uint64
	for _, p := range payloads {
		stream = append(stream, FrameBits(p)...)
	}
	var got [][]byte
	for _, b := range stream {
		p, err := asm.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			got = append(got, p)
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("assembled %d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if string(got[i]) != string(payloads[i]) {
			t.Fatalf("payload %d = %v, want %v", i, got[i], payloads[i])
		}
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		var asm BitAssembler
		for i, b := range FrameBits(payload) {
			p, err := asm.Push(b)
			if err != nil {
				return false
			}
			if p != nil {
				if i != len(FrameBits(payload))-1 {
					return false
				}
				return string(p) == string(payload)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
