package msgpass

import (
	"testing"

	"repro/internal/sched"
)

// TestQueueNetFIFOPerLink checks that a link delivers its messages in
// send order (the model's channels are FIFO, §6 phase 1).
func TestQueueNetFIFOPerLink(t *testing.T) {
	topo := Complete{Nodes: 2}
	qn := NewQueueNet(topo, 1)
	var got []int64
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			for i := int64(1); i <= 5; i++ {
				if err := qn.Send(p, 1, &Message{UID: uint64(i), Src: 0, Dst: 1, Kind: KRead, Rid: i}); err != nil {
					return err
				}
			}
			return nil
		},
		func(p *sched.Proc) error {
			for i := 0; i < 5; i++ {
				m, err := qn.RecvAny(p)
				if err != nil {
					return err
				}
				got = append(got, m.Rid)
			}
			return nil
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(9)}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(); e != nil {
		t.Fatal(e)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("delivery order %v not FIFO", got)
		}
	}
	if qn.Sent != 5 || qn.Delivered != 5 {
		t.Fatalf("Sent=%d Delivered=%d", qn.Sent, qn.Delivered)
	}
}

// TestQueueNetRejectsNonLink checks topology enforcement.
func TestQueueNetRejectsNonLink(t *testing.T) {
	ring, err := NewTAugmentedRing(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	qn := NewQueueNet(ring, 0)
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			// Node 0's successors are {1,2}; 4 is not a link.
			return qn.Send(p, 4, &Message{UID: 1, Src: 0, Dst: 4})
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.Lowest{}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errs[0] == nil {
		t.Fatal("send over non-existent link accepted")
	}
}

// TestABDSequentialSemantics: with processes running sequentially, a
// remote ABD read returns the last completed ABD write.
func TestABDSequentialSemantics(t *testing.T) {
	topo := Complete{Nodes: 3}
	qn := NewQueueNet(topo, 2)
	var got []int64
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			if err := nd.ABDWrite([]int64{7, 8}); err != nil {
				return err
			}
			return nd.ServeForever()
		},
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			// Wait until node 0's write has certainly completed: it
			// completes before node 1 starts under the Sequential order
			// below... node 0 blocks in ServeForever, so node 1 runs
			// after the write finished.
			h, err := nd.ABDRead(0)
			if err != nil {
				return err
			}
			got = h
			return nd.ServeForever()
		},
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			return nd.ServeForever()
		},
	}
	// Order: run 0 until it parks (write complete), then 1, with 2
	// serving in between as needed — a fair random scheduler realizes
	// this because 0's write blocks until quorum acks arrive.
	res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(4), MaxSteps: 1 << 16}, procs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("ABD read returned %v, want [7 8]", got)
	}
}

// TestABDTimestampsMonotone: repeated writes by the same writer carry
// strictly increasing timestamps, and a reader adopts the newest.
func TestABDTimestampsMonotone(t *testing.T) {
	topo := Complete{Nodes: 3}
	qn := NewQueueNet(topo, 3)
	var got []int64
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			for i := int64(1); i <= 3; i++ {
				if err := nd.ABDWrite([]int64{i}); err != nil {
					return err
				}
			}
			return nd.ServeForever()
		},
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			prev := int64(-1)
			for i := 0; i < 4; i++ {
				h, err := nd.ABDRead(0)
				if err != nil {
					return err
				}
				var cur int64
				if len(h) == 1 {
					cur = h[0]
				}
				if cur < prev {
					t.Errorf("reads regressed: %d after %d", cur, prev)
				}
				prev = cur
			}
			got = append(got, prev)
			return nd.ServeForever()
		},
		func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			return nd.ServeForever()
		},
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(8), MaxSteps: 1 << 18}, procs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	_ = got
}

// TestFloodingReachesNonNeighbor: on a sparse ring, a message to a
// non-neighbour is flooded and arrives exactly once (deduplication).
func TestFloodingReachesNonNeighbor(t *testing.T) {
	ring, err := NewTAugmentedRing(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	qn := NewQueueNet(ring, 5)
	delivered := 0
	procs := make([]sched.ProcFunc, 7)
	procs[0] = func(p *sched.Proc) error {
		nd := NewNode(p, qn, 1, false)
		// Node 4 is 4 hops away on the t=1 ring (successors {1,2}).
		if err := nd.sendTo(4, Message{Kind: KRead, Reg: 0, Rid: 99}); err != nil {
			return err
		}
		return nd.ServeForever()
	}
	for i := 1; i < 7; i++ {
		procs[i] = func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			for {
				m, err := nd.recvApp()
				if err != nil {
					return err
				}
				if m.Rid == 99 && p.ID == 4 {
					delivered++
				}
				_ = m
			}
		}
	}
	// recvApp never returns KRead (it serves it); intercept differently:
	// node 4's server replies to the read, so node 0's recvApp gets a
	// KReadReply with Rid 99.
	procs[0] = func(p *sched.Proc) error {
		nd := NewNode(p, qn, 1, false)
		if err := nd.sendTo(4, Message{Kind: KRead, Reg: 0, Rid: 99}); err != nil {
			return err
		}
		m, err := nd.recvApp()
		if err != nil {
			return err
		}
		if m.Kind == KReadReply && m.Rid == 99 && m.Src == 4 {
			delivered++
		}
		return nd.ServeForever()
	}
	for i := 1; i < 7; i++ {
		procs[i] = func(p *sched.Proc) error {
			nd := NewNode(p, qn, 1, false)
			return nd.ServeForever()
		}
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(6), MaxSteps: 1 << 18}, procs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	if delivered != 1 {
		t.Fatalf("reply delivered %d times, want exactly 1", delivered)
	}
}

// TestBitNetSingleLink transmits one message over an alternating-bit
// link and counts the exact number of link bits.
func TestBitNetSingleLink(t *testing.T) {
	ring, err := NewTAugmentedRing(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bn := NewBitNet(ring)
	if bn.RegisterBits() != 6 {
		t.Fatalf("register bits = %d", bn.RegisterBits())
	}
	want := &Message{UID: 42, Src: 0, Dst: 1, Kind: KWrite, Reg: 0, Ts: 5, Rid: 1, Hist: []int64{3, -4}}
	frameLen := len(FrameBits(want.Encode()))
	var got *Message
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			if err := bn.Send(p, 1, want); err != nil {
				return err
			}
			// Pump until the message has fully left (all bits acked).
			for {
				p.StepWhen(func() bool { return bn.progress(0) })
				if err := bn.pump(p); err != nil {
					return err
				}
			}
		},
		func(p *sched.Proc) error {
			m, err := bn.RecvAny(p)
			if err != nil {
				return err
			}
			got = m
			return nil
		},
		func(p *sched.Proc) error { return nil },
	}
	res, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(2), MaxSteps: 1 << 16}, procs)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // sender parks forever once drained; runner reports deadlock
	if got == nil {
		t.Fatal("message not delivered")
	}
	if got.UID != want.UID || got.Kind != want.Kind || got.Ts != want.Ts ||
		len(got.Hist) != 2 || got.Hist[0] != 3 || got.Hist[1] != -4 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if bn.Bits != frameLen {
		t.Fatalf("link bits = %d, want frame length %d", bn.Bits, frameLen)
	}
}

// TestBitNetBackToBackMessages checks framing across consecutive
// messages on the same link.
func TestBitNetBackToBackMessages(t *testing.T) {
	ring, err := NewTAugmentedRing(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bn := NewBitNet(ring)
	var got []int64
	procs := []sched.ProcFunc{
		func(p *sched.Proc) error {
			for i := int64(1); i <= 3; i++ {
				if err := bn.Send(p, 1, &Message{UID: uint64(i), Src: 0, Dst: 1, Kind: KRead, Rid: i}); err != nil {
					return err
				}
			}
			for {
				p.StepWhen(func() bool { return bn.progress(0) })
				if err := bn.pump(p); err != nil {
					return err
				}
			}
		},
		func(p *sched.Proc) error {
			for i := 0; i < 3; i++ {
				m, err := bn.RecvAny(p)
				if err != nil {
					return err
				}
				got = append(got, m.Rid)
			}
			return nil
		},
		func(p *sched.Proc) error { return nil },
	}
	if _, err := sched.Run(sched.Config{Scheduler: sched.NewRandom(3), MaxSteps: 1 << 18}, procs); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3] in order", got)
	}
}

// TestBitNetWidthNeverExceeded: the pipeline's stage B memory reports no
// width violations (they would surface as process errors) and the
// register word stays within 3(t+1) bits.
func TestBitNetWidthNeverExceeded(t *testing.T) {
	inputs := []int64{1, 0, 1}
	pr, err := RunPipeline(PipelineConfig{
		Stage: StageBitRing, N: 3, T: 1, Rounds: 1,
		Inputs: inputs, Scheduler: sched.NewRandom(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range pr.Res.Errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	if err := pr.Check(inputs, 1); err != nil {
		t.Fatal(err)
	}
}
