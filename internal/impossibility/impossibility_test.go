package impossibility

import (
	"testing"
)

func TestExecutionGraphConnected(t *testing.T) {
	// §3.1: the two solo vertices must be connected — otherwise the two
	// processes would solve consensus (Lemma 2.1).
	for k := 1; k <= 4; k++ {
		g, err := BuildAlg1Graph(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		path := g.Path()
		if path == nil {
			t.Fatalf("k=%d: solo vertices disconnected", k)
		}
		v1, v2 := g.SoloVertices()
		if path[0] != v1 || path[len(path)-1] != v2 {
			t.Fatalf("k=%d: path endpoints %v..%v", k, path[0], path[len(path)-1])
		}
	}
}

func TestExecutionGraphPathLength(t *testing.T) {
	// The path carries outputs from 0 to 1 in ε = 1/(2k+1) hops, so its
	// length is at least 1/ε = 2k+1.
	for k := 1; k <= 4; k++ {
		g, err := BuildAlg1Graph(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		path := g.Path()
		if len(path)-1 < g.Den {
			t.Errorf("k=%d: path length %d < 1/ε = %d", k, len(path)-1, g.Den)
		}
	}
}

func TestExecutionGraphEdgesRespectEps(t *testing.T) {
	// Every edge joins decisions at most ε apart (the protocol is
	// correct), so consecutive path outputs differ by ≤ 1 numerator unit.
	g, err := BuildAlg1Graph(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a, nbs := range g.Adj {
		for b := range nbs {
			d := a.Num - b.Num
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("edge %v-%v violates ε", a, b)
			}
		}
	}
	path := g.Path()
	for i := 1; i < len(path); i++ {
		d := path[i].Num - path[i-1].Num
		if d < 0 {
			d = -d
		}
		if d > 1 {
			t.Fatalf("path step %v→%v jumps by %d", path[i-1], path[i], d)
		}
	}
}

func TestCollisionsPigeonhole(t *testing.T) {
	// With 1-bit registers there are at most 2^2 = 4 memory states, so
	// for every k the executions fall into ≤ 4 buckets.
	for k := 1; k <= 4; k++ {
		cs, err := FindCollisions(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) > 4 {
			t.Fatalf("k=%d: %d memory states with 1-bit registers", k, len(cs))
		}
		for _, c := range cs {
			if c.Mem[0] > 1 || c.Mem[1] > 1 {
				t.Fatalf("k=%d: memory state %v exceeds 1 bit", k, c.Mem)
			}
		}
	}
}

func TestCollisionForcedBeyondThreshold(t *testing.T) {
	// Prop 4.1's mechanism: once the output classes outnumber the memory
	// states (2k+1 > 2^{2s+1} = 8, i.e. k ≥ 4), some memory state is
	// shared by executions whose outputs are ≥ 2 units apart — a late
	// third process is forced ≥ 2ε from one of them.
	c, err := WorstCollision(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gap() < 2 {
		t.Fatalf("k=4: worst collision gap %d < 2 (pairs %v)", c.Gap(), c.Pairs)
	}
}

func TestCollisionGapGrowsWithPrecision(t *testing.T) {
	// Fixing the register width at 1 bit and refining ε, the gap within
	// a single memory state keeps growing (measured: 3, 3, 5, 7 at
	// k = 2, 4, 6, 8): bounded registers cannot track the finer output
	// scale — the quantitative heart of Theorem 1.1.
	if testing.Short() {
		t.Skip("exhaustive exploration up to k=6")
	}
	gaps := map[int]int{}
	for _, k := range []int{2, 4, 6} {
		c, err := WorstCollision(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		gaps[k] = c.Gap()
	}
	if gaps[4] < gaps[2] || gaps[6] < gaps[4] {
		t.Fatalf("gaps decreased: %v", gaps)
	}
	if gaps[6] <= gaps[2] {
		t.Fatalf("gap did not grow from k=2 to k=6: %v", gaps)
	}
}

func TestCountingTable(t *testing.T) {
	rows, err := CountingTable(3, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// n=3, t=2: n-t+1 = 2 writers; s bits → 2^{2s} states, k = 2^{2s+1}+1.
	for i, r := range rows {
		s := i + 1
		if r.States != uint64(1)<<(2*s) {
			t.Errorf("s=%d: states %d", s, r.States)
		}
		if r.KThreshold != 2*r.States+1 {
			t.Errorf("s=%d: threshold %d", s, r.KThreshold)
		}
	}
	// The floor is strictly monotone in the width: wider registers allow
	// finer agreement before the pigeonhole bites.
	for i := 1; i < len(rows); i++ {
		if rows[i].EpsFloorDen() <= rows[i-1].EpsFloorDen() {
			t.Error("ε floor not monotone in register width")
		}
	}
}

func TestCountingTableRequiresMajorityFailures(t *testing.T) {
	if _, err := CountingTable(5, 2, 3); err == nil {
		t.Fatal("accepted t ≤ n/2 — the bound only holds for t > n/2")
	}
}

func TestClaim41AchievableOutputSets(t *testing.T) {
	// Claim 4.1's constructive half: every adjacent output pair {m, m+1}
	// is the exact output set of some 2-process execution — these are
	// the mutually exclusive classes the pigeonhole argument counts.
	for _, k := range []int{2, 3, 4} {
		achieved, err := AchievableOutputSets(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for m, ok := range achieved {
			if !ok {
				t.Errorf("k=%d: output set {%d,%d}/%d never achieved", k, m, m+1, 2*k+1)
			}
		}
	}
}

func TestCollisionReportsDeterministic(t *testing.T) {
	a, err := FindCollisions(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindCollisions(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic collision count")
	}
	for i := range a {
		if a[i].Mem != b[i].Mem || a[i].Gap() != b[i].Gap() {
			t.Fatal("nondeterministic collision ordering")
		}
	}
}
