// Package impossibility makes the Theorem 1.1 lower bound (§3.1, §4)
// constructive: when more than half of the processes may crash, bounded
// registers cap the achievable ε of approximate agreement.
//
// Impossibility cannot be "run", but the proof's combinatorial core can:
//
//   - the execution graph of a 2-process protocol restricted to inputs
//     (0,1) connects the two solo vertices by a path along which outputs
//     move by at most ε (else the processes would solve consensus,
//     contradicting Lemma 2.1);
//   - a register of s bits takes at most 2^s values, so across the path's
//     Ω(1/ε) output classes, two executions with far-apart outputs leave
//     identical register contents (pigeonhole on 2^{2s} memory states);
//   - a third process arriving after those executions reads only the
//     registers, cannot tell the two apart, and any decision it makes is
//     ≥ 2ε away from some already-decided output — violating
//     ε-agreement.
//
// The package exhibits all three steps on Algorithm 1 (whose coordination
// registers have s = 1 bit) and produces the counting table of
// Proposition 4.1 for general widths.
package impossibility

import (
	"fmt"
	"sort"

	"repro/internal/agreement"
)

// Vertex is a final protocol state in the execution graph: process Pid
// decided output Num (over the protocol's common denominator).
type Vertex struct {
	Pid int
	Num int
}

// ExecutionGraph is the graph G of §3.1 for Algorithm 1 with inputs
// (0,1): vertices are (process, decision) pairs, edges join decisions
// that co-occur in some execution.
type ExecutionGraph struct {
	// K is the Algorithm 1 parameter; Den = 2k+1.
	K, Den int
	// Adj is the adjacency structure.
	Adj map[Vertex]map[Vertex]bool
	// Executions counts the interleavings enumerated.
	Executions int
}

// explore enumerates every interleaving of Algorithm 1 with inputs
// (0,1) on a workers-wide goroutine fan-out: workers <= 0 uses every
// core, 1 is effectively serial. The concurrency budget is the caller's
// to spend — standalone analysis (and this package's tests) pass 0,
// while the experiment engine passes 1 because it already runs whole
// experiments concurrently. The visitors in this package only aggregate
// into maps, sets, and extrema — all order-insensitive — so the
// nondeterministic visit order of the parallel explorer cannot leak
// into any result.
func explore(k, workers int, visit func(*agreement.Alg1Run)) (int, error) {
	return agreement.ExploreAlg1Parallel(k, [2]uint64{0, 1}, workers, visit)
}

// BuildAlg1Graph enumerates every interleaving of Algorithm 1 with
// k rounds and inputs (0,1), building the execution graph. workers sets
// the exploration fan-out (see explore).
func BuildAlg1Graph(k, workers int) (*ExecutionGraph, error) {
	g := &ExecutionGraph{K: k, Den: agreement.Alg1Den(k), Adj: map[Vertex]map[Vertex]bool{}}
	runs, err := explore(k, workers, func(ar *agreement.Alg1Run) {
		if !ar.Decided[0] || !ar.Decided[1] {
			return
		}
		a := Vertex{Pid: 0, Num: ar.Outs[0].Num}
		b := Vertex{Pid: 1, Num: ar.Outs[1].Num}
		if g.Adj[a] == nil {
			g.Adj[a] = map[Vertex]bool{}
		}
		if g.Adj[b] == nil {
			g.Adj[b] = map[Vertex]bool{}
		}
		g.Adj[a][b] = true
		g.Adj[b][a] = true
	})
	if err != nil {
		return nil, err
	}
	g.Executions = runs
	return g, nil
}

// SoloVertices returns v1 = (p0 solo, 0) and v2 = (p1 solo, 1): the
// endpoints the connectivity argument needs (a solo process decides its
// own input, Lemma 5.6).
func (g *ExecutionGraph) SoloVertices() (Vertex, Vertex) {
	return Vertex{Pid: 0, Num: 0}, Vertex{Pid: 1, Num: g.Den}
}

// Path returns a path from v1 to v2 in the graph, or nil if disconnected
// (which would let the two processes solve consensus — impossible by
// Lemma 2.1).
func (g *ExecutionGraph) Path() []Vertex {
	v1, v2 := g.SoloVertices()
	prev := map[Vertex]Vertex{v1: v1}
	queue := []Vertex{v1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == v2 {
			var path []Vertex
			for at := v2; ; at = prev[at] {
				path = append([]Vertex{at}, path...)
				if prev[at] == at {
					return path
				}
			}
		}
		var nbs []Vertex
		for nb := range g.Adj[cur] {
			nbs = append(nbs, nb)
		}
		sort.Slice(nbs, func(a, b int) bool {
			if nbs[a].Pid != nbs[b].Pid {
				return nbs[a].Pid < nbs[b].Pid
			}
			return nbs[a].Num < nbs[b].Num
		})
		for _, nb := range nbs {
			if _, ok := prev[nb]; !ok {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	return nil
}

// MemoryState is the observable content of the coordination registers
// (R1, R2) after both processes decided. The input registers hold (0,1)
// in every enumerated execution, so they add no information.
type MemoryState [2]uint64

// Collision groups the output pairs of executions that end in the same
// memory state: everything a late third process can distinguish.
type Collision struct {
	Mem MemoryState
	// Pairs lists the distinct (p0, p1) output-numerator pairs observed.
	Pairs [][2]int
	// MinNum and MaxNum bound the outputs across all pairs.
	MinNum, MaxNum int
}

// Gap is MaxNum - MinNum: twice the error a third process is forced to
// make (in units of 1/(2k+1)), since its decision is fixed per memory
// state while outputs Gap apart are both possible.
func (c Collision) Gap() int { return c.MaxNum - c.MinNum }

// FindCollisions enumerates Algorithm 1 executions with inputs (0,1) and
// groups them by final memory state, sorted by descending gap. workers
// sets the exploration fan-out (see explore).
func FindCollisions(k, workers int) ([]Collision, error) {
	type bucket struct {
		pairs map[[2]int]bool
		lo    int
		hi    int
	}
	buckets := map[MemoryState]*bucket{}
	_, err := explore(k, workers, func(ar *agreement.Alg1Run) {
		if !ar.Decided[0] || !ar.Decided[1] {
			return
		}
		// Final coordination register contents.
		var mem MemoryState
		// ExploreAlg1 owns the memory internally; recover the state from
		// the last write of each process recorded in the run.
		mem = ar.FinalRegisters()
		b := buckets[mem]
		if b == nil {
			b = &bucket{pairs: map[[2]int]bool{}, lo: 1 << 30, hi: -1}
			buckets[mem] = b
		}
		pair := [2]int{ar.Outs[0].Num, ar.Outs[1].Num}
		b.pairs[pair] = true
		for _, v := range pair {
			if v < b.lo {
				b.lo = v
			}
			if v > b.hi {
				b.hi = v
			}
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]Collision, 0, len(buckets))
	for mem, b := range buckets {
		c := Collision{Mem: mem, MinNum: b.lo, MaxNum: b.hi}
		for p := range b.pairs {
			c.Pairs = append(c.Pairs, p)
		}
		sort.Slice(c.Pairs, func(a, b int) bool {
			if c.Pairs[a][0] != c.Pairs[b][0] {
				return c.Pairs[a][0] < c.Pairs[b][0]
			}
			return c.Pairs[a][1] < c.Pairs[b][1]
		})
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Gap() != out[b].Gap() {
			return out[a].Gap() > out[b].Gap()
		}
		return out[a].Mem[0]*2+out[a].Mem[1] < out[b].Mem[0]*2+out[b].Mem[1]
	})
	return out, nil
}

// WorstCollision returns the memory state with the largest output gap.
// workers sets the exploration fan-out (see explore).
func WorstCollision(k, workers int) (Collision, error) {
	cs, err := FindCollisions(k, workers)
	if err != nil {
		return Collision{}, err
	}
	if len(cs) == 0 {
		return Collision{}, fmt.Errorf("impossibility: no executions enumerated")
	}
	return cs[0], nil
}

// AchievableOutputSets verifies Claim 4.1 constructively for Algorithm 1
// with inputs (0,1): for every m ∈ {0..2k}, some execution's output set
// is exactly the adjacent pair {m, m+1} (over denominator 2k+1). This is
// the family of mutually exclusive output classes the pigeonhole
// argument counts. It returns achieved[m] for m = 0..2k-? — precisely,
// index m reports the pair {m, m+1}. workers sets the exploration
// fan-out (see explore).
func AchievableOutputSets(k, workers int) ([]bool, error) {
	den := agreement.Alg1Den(k)
	achieved := make([]bool, den) // pair {m, m+1} for m = 0..den-1
	_, err := explore(k, workers, func(ar *agreement.Alg1Run) {
		if !ar.Decided[0] || !ar.Decided[1] {
			return
		}
		a, b := ar.Outs[0].Num, ar.Outs[1].Num
		if a > b {
			a, b = b, a
		}
		if b == a+1 {
			achieved[a] = true
		}
	})
	if err != nil {
		return nil, err
	}
	return achieved, nil
}

// CountingRow is one row of the Proposition 4.1 pigeonhole table.
type CountingRow struct {
	// Bits is the register width f(n).
	Bits int
	// N and T are the system parameters (t > n/2 required for the bound).
	N, T int
	// States is the number of distinguishable memory contents of the
	// n-t+1 registers the early processes write: 2^{Bits·(n-t+1)}.
	States uint64
	// KThreshold is the paper's k = 2·States + 1: with ε = 1/k, the
	// k+1 mutually exclusive output classes outnumber the memory states
	// and a collision is forced.
	KThreshold uint64
}

// EpsFloorDen returns the denominator of the forced ε floor: ε-agreement
// with ε < 1/KThreshold is unsolvable with Bits-bit registers.
func (r CountingRow) EpsFloorDen() uint64 { return r.KThreshold }

// CountingTable builds the pigeonhole table for widths 1..maxBits.
func CountingTable(n, t, maxBits int) ([]CountingRow, error) {
	if 2*t <= n {
		return nil, fmt.Errorf("impossibility: need t > n/2, got n=%d t=%d", n, t)
	}
	rows := make([]CountingRow, 0, maxBits)
	for s := 1; s <= maxBits; s++ {
		writers := n - t + 1
		states := uint64(1) << (s * writers)
		rows = append(rows, CountingRow{
			Bits: s, N: n, T: t,
			States:     states,
			KThreshold: 2*states + 1,
		})
	}
	return rows, nil
}
