package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/trace"
)

// traceLine matches the grep-friendly per-request line -trace prints
// (the same pattern CI keys on to harvest an ID for `figures trace`).
var traceLine = regexp.MustCompile(`(?m)^figures: trace ([0-9a-f]{16}) (run \S+)$`)

// TestTraceFlagShardedRun is the CLI acceptance gate for -trace: a
// sharded run journals one span per experiment, prints its ID in
// grep-friendly form, and renders a timeline whose events carry the
// coordinator's selection and fetch decisions.
func TestTraceFlagShardedRun(t *testing.T) {
	hookRegistry(t, experiments.Registry())
	w1, w2 := shardWorker(t), shardWorker(t)
	fleet := strings.TrimPrefix(w1.URL, "http://") + "," + strings.TrimPrefix(w2.URL, "http://")

	var out, errOut bytes.Buffer
	if err := run([]string{"-run", "E1,E8", "-jobs", "1", "-workers", fleet, "-trace"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	matches := traceLine.FindAllStringSubmatch(errOut.String(), -1)
	if len(matches) != 2 {
		t.Fatalf("stderr holds %d trace lines, want 2:\n%s", len(matches), errOut.String())
	}
	whats := make(map[string]bool)
	for _, m := range matches {
		whats[m[2]] = true
	}
	if !whats["run E1"] || !whats["run E8"] {
		t.Fatalf("trace lines name %v, want run E1 and run E8", whats)
	}
	for _, kind := range []string{trace.KindWorkerSelected, trace.KindFetch} {
		if !strings.Contains(errOut.String(), kind) {
			t.Errorf("timeline has no %s event:\n%s", kind, errOut.String())
		}
	}
}

// TestTraceFlagRequiresWorkers: -trace on a purely local run is a
// configuration error, not a silent no-op.
func TestTraceFlagRequiresWorkers(t *testing.T) {
	err := run([]string{"-run", "E1", "-trace"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("err = %v, want the -workers requirement", err)
	}
}

// TestTraceSubcommand drives the full after-the-fact path: a request
// leaves a span in a worker's journal, and `figures trace` fetches it
// by ID and renders the timeline with the range summary block.
func TestTraceSubcommand(t *testing.T) {
	// A nil Registry means the real one plus its Shardables — the
	// ?prefixes= path needs E2 to be shardable on the worker.
	ts := httptest.NewServer(server.New(server.Options{
		Journal: trace.NewJournal(0, 0),
	}))
	t.Cleanup(ts.Close)

	roots, err := experiments.Shardables()["E2"].Roots()
	if err != nil {
		t.Fatal(err)
	}
	prefix := experiments.FormatPrefixes(roots[:1])
	resp, err := http.Get(ts.URL + "/experiments/E2?prefixes=" + url.QueryEscape(prefix) + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(trace.Header)
	if id == "" {
		t.Fatal("server echoed no trace ID")
	}

	var out, errOut bytes.Buffer
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := run([]string{"trace", "-addr", addr, id}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "trace "+id) {
		t.Fatalf("no trace header line:\n%s", text)
	}
	for _, want := range []string{trace.KindRequest, trace.KindExplore, trace.KindDone, "ranges:"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, text)
		}
	}
	// The per-range block annotates worker, cache outcome, and retry
	// count — the acceptance criteria for the rendered view.
	rangeLine := regexp.MustCompile(`(?m)^  \S+\s+\[[.#]+\]\s+\S+ms\s+worker=\S+ cache=\S+ retries=\d+$`)
	if !rangeLine.MatchString(text) {
		t.Errorf("no annotated range line:\n%s", text)
	}
}

// TestTraceSubcommandMissingEverywhere: an ID no listed journal holds
// (aged out or mistyped) is an error, with the per-target miss logged.
func TestTraceSubcommandMissingEverywhere(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{
		Journal: trace.NewJournal(0, 0),
	}))
	t.Cleanup(ts.Close)

	var errOut bytes.Buffer
	addr := strings.TrimPrefix(ts.URL, "http://")
	err := run([]string{"trace", "-addr", addr, "ffffffffffffffff"}, &bytes.Buffer{}, &errOut)
	if err == nil || !strings.Contains(err.Error(), "not found on any target") {
		t.Fatalf("err = %v, want not-found", err)
	}
	if !strings.Contains(errOut.String(), "status 404") {
		t.Errorf("stderr = %q, want the per-target 404", errOut.String())
	}
}

// TestTraceSubcommandRejects: configuration mistakes fail fast.
func TestTraceSubcommandRejects(t *testing.T) {
	for _, args := range [][]string{
		{"trace"},                         // no -addr
		{"trace", "-addr", "x"},           // no id
		{"trace", "-addr", "x", "a", "b"}, // two ids
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestDurationBar: the bar scales offset and duration into a fixed
// width without ever over- or under-flowing it.
func TestDurationBar(t *testing.T) {
	for _, tc := range []struct {
		offset, dur, total time.Duration
	}{
		{0, 0, 0},
		{0, time.Second, time.Second},
		{time.Second, 0, time.Second},
		{900 * time.Millisecond, 500 * time.Millisecond, time.Second},
	} {
		bar := durationBar(tc.offset, tc.dur, tc.total)
		if len([]rune(bar)) != barWidth+2 {
			t.Errorf("durationBar(%v,%v,%v) = %q, want width %d", tc.offset, tc.dur, tc.total, bar, barWidth+2)
		}
		if !strings.Contains(bar, "#") {
			t.Errorf("durationBar(%v,%v,%v) = %q, want at least one filled cell", tc.offset, tc.dur, tc.total, bar)
		}
	}
}
