package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/shard"
	"repro/internal/trace"
)

// sourcedTrace is one journal's view of a request, tagged with the
// process it was fetched from ("" for the local coordinator journal).
// A sharded request leaves one span in the coordinator's journal and
// one in each worker that served a piece of it; the renderer merges
// them into a single timeline keyed by the shared request ID.
type sourcedTrace struct {
	source string
	tr     trace.Trace
}

// runTrace is the `figures trace` subcommand: fetch one request's
// span from every listed process's /trace/{id} endpoint and render
// the merged timeline — the after-the-fact explanation of where a
// sharded request's time went and which decisions shaped it.
func runTrace(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "comma-separated figuresd targets (host:port) to fetch the trace from")
		timeout = fs.Duration("timeout", 10*time.Second, "per-target fetch limit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *addr == "" {
		return fmt.Errorf("trace: -addr is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: exactly one request id expected, got %d args", fs.NArg())
	}
	id := fs.Arg(0)
	client := &http.Client{Timeout: *timeout}
	var traces []sourcedTrace
	for _, target := range shard.SplitList(*addr) {
		base := traceBaseURL(target)
		tr, err := fetchTrace(client, base, id)
		if err != nil {
			// A journal that aged the ID out (or a dead worker) thins
			// the timeline; it does not invalidate the other journals.
			fmt.Fprintf(stderr, "figures: trace: %s: %v\n", base, err)
			continue
		}
		traces = append(traces, sourcedTrace{source: base, tr: tr})
	}
	if len(traces) == 0 {
		return fmt.Errorf("trace %s not found on any target", id)
	}
	renderTimeline(stdout, traces)
	return nil
}

// traceBaseURL normalizes a target address to a scheme-full base URL
// (the same form the shard coordinator and load harness use).
func traceBaseURL(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// fetchTrace retrieves one process's span for id.
func fetchTrace(client *http.Client, base, id string) (trace.Trace, error) {
	var tr trace.Trace
	resp, err := client.Get(base + "/trace/" + url.PathEscape(id))
	if err != nil {
		return tr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return tr, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return tr, err
	}
	return tr, nil
}

// sourcedEvent is one event of the merged timeline.
type sourcedEvent struct {
	trace.Event
	source string
}

// rangeSummary accumulates one prefix range's line of the per-range
// report: when it started and finished, who served it, its cache
// outcome, and how many times it was reassigned.
type rangeSummary struct {
	name        string
	first, last time.Time
	worker      string
	hit, miss   bool
	retries     int
}

// renderTimeline prints one request's merged span: the header, every
// event in timestamp order with its offset from the first, and — when
// any event names a prefix range — a per-range block with duration
// bars and worker/cache/retry annotations. Events from different
// journals are on different process clocks; on the single-host fleets
// this repo drives, the skew is far below the durations being read.
func renderTimeline(w io.Writer, traces []sourcedTrace) {
	var evs []sourcedEvent
	id, what := traces[0].tr.ID, ""
	dropped := 0
	for _, st := range traces {
		if what == "" {
			what = st.tr.What
		}
		dropped += st.tr.Dropped
		for _, ev := range st.tr.Events {
			evs = append(evs, sourcedEvent{Event: ev, source: st.source})
		}
	}
	if len(evs) == 0 {
		fmt.Fprintf(w, "trace %s — %s: no events recorded\n", id, what)
		return
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	base, end := evs[0].At, evs[0].At
	for _, ev := range evs {
		if ev.At.After(end) {
			end = ev.At
		}
	}
	total := end.Sub(base)
	fmt.Fprintf(w, "trace %s — %s (%d events from %d journals, %v)\n",
		id, what, len(evs), len(traces), total.Round(time.Microsecond))
	if dropped > 0 {
		fmt.Fprintf(w, "  (%d events dropped at the per-request cap)\n", dropped)
	}

	ranges := make(map[string]*rangeSummary)
	var order []string
	for _, ev := range evs {
		worker := ev.Worker
		if worker == "" {
			worker = ev.source
		}
		fmt.Fprintf(w, "  +%9.3fms  %-16s %-14s %-24s %s\n",
			float64(ev.At.Sub(base))/float64(time.Millisecond), ev.Kind, ev.Range, worker, ev.Detail)
		if ev.Range == "" {
			continue
		}
		r := ranges[ev.Range]
		if r == nil {
			r = &rangeSummary{name: ev.Range, first: ev.At, last: ev.At}
			ranges[ev.Range] = r
			order = append(order, ev.Range)
		}
		if ev.At.Before(r.first) {
			r.first = ev.At
		}
		if ev.At.After(r.last) {
			r.last = ev.At
		}
		switch ev.Kind {
		case trace.KindSliceCacheHit:
			r.hit = true
		case trace.KindSliceCacheMiss:
			r.miss = true
		case trace.KindRetry:
			r.retries++
		}
		if worker != "" && (ev.Kind == trace.KindWorkerSelected || ev.Kind == trace.KindFetch ||
			ev.Kind == trace.KindExplore || r.worker == "") {
			r.worker = worker
		}
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintf(w, "ranges:\n")
	for _, name := range order {
		r := ranges[name]
		cache := "uncached"
		switch {
		case r.hit:
			cache = "hit"
		case r.miss:
			cache = "miss"
		}
		fmt.Fprintf(w, "  %-14s %s %9.3fms  worker=%s cache=%s retries=%d\n",
			r.name, durationBar(r.first.Sub(base), r.last.Sub(r.first), total),
			float64(r.last.Sub(r.first))/float64(time.Millisecond), r.worker, cache, r.retries)
	}
}

// barWidth is the duration bar's fixed character budget; every range
// line scales into it so bars align and overlap is visible at a
// glance.
const barWidth = 24

// durationBar renders one range's share of the request's wall clock:
// leading dots up to its start offset, a solid bar for its duration,
// trailing dots to the request's end.
func durationBar(offset, dur, total time.Duration) string {
	if total <= 0 {
		return "[" + strings.Repeat("#", barWidth) + "]"
	}
	start := int(float64(offset) / float64(total) * barWidth)
	n := int(float64(dur) / float64(total) * barWidth)
	if n < 1 {
		n = 1
	}
	if start > barWidth-1 {
		start = barWidth - 1
	}
	if start+n > barWidth {
		n = barWidth - start
	}
	return "[" + strings.Repeat(".", start) + strings.Repeat("#", n) +
		strings.Repeat(".", barWidth-start-n) + "]"
}
